package repro

import (
	"os"
	"os/exec"
	"testing"
)

// TestSpecSmoke is the spec-path determinism gate: every cmd runs against
// its golden spec fixture (examples/specs/<cmd>.json) and must reproduce
// its committed golden output byte for byte — trace fingerprint line
// included. Same seed ⇒ same fingerprint, now across the Spec path too;
// CI runs the same check as a dedicated job.
//
// Regenerate a golden after an intentional behavior change with e.g.
//
//	go run ./cmd/fabricbench -spec examples/specs/fabricbench.json \
//	    > examples/specs/fabricbench.golden
//
// (scenario pins -j 2: its summary line reports the worker count).
func TestSpecSmoke(t *testing.T) {
	cases := []struct {
		cmd  string
		spec string // fixture basename; defaults to the cmd name
		args []string
	}{
		{cmd: "fabricbench"},
		{cmd: "scenario", args: []string{"-j", "2"}},
		{cmd: "arppath-sim"},
		{cmd: "arpvstp"},
		{cmd: "pathrepair"},
		// The All-Path variants run through the same simulator shell: the
		// registry, not the cmd, is what selects the protocol.
		{cmd: "arppath-sim", spec: "flowpath"},
		{cmd: "arppath-sim", spec: "tcppath"},
	}
	for _, c := range cases {
		c := c
		if c.spec == "" {
			c.spec = c.cmd
		}
		t.Run(c.spec, func(t *testing.T) {
			golden, err := os.ReadFile("examples/specs/" + c.spec + ".golden")
			if err != nil {
				t.Fatal(err)
			}
			args := append([]string{"run", "./cmd/" + c.cmd, "-spec", "examples/specs/" + c.spec + ".json"}, c.args...)
			out, err := exec.Command("go", args...).Output()
			if err != nil {
				t.Fatalf("go %v: %v", args, err)
			}
			if string(out) != string(golden) {
				t.Fatalf("output diverged from examples/specs/%s.golden.\ngot:\n%s\nwant:\n%s",
					c.spec, out, golden)
			}
		})
	}
}
