package repro

import (
	"os"
	"os/exec"
	"testing"
)

// TestSpecSmoke is the spec-path determinism gate: every cmd runs against
// its golden spec fixture (examples/specs/<cmd>.json) and must reproduce
// its committed golden output byte for byte — trace fingerprint line
// included. Same seed ⇒ same fingerprint, now across the Spec path too;
// CI runs the same check as a dedicated job.
//
// Regenerate a golden after an intentional behavior change with e.g.
//
//	go run ./cmd/fabricbench -spec examples/specs/fabricbench.json \
//	    > examples/specs/fabricbench.golden
//
// (scenario pins -j 2: its summary line reports the worker count).
func TestSpecSmoke(t *testing.T) {
	cases := []struct {
		cmd  string
		args []string
	}{
		{"fabricbench", nil},
		{"scenario", []string{"-j", "2"}},
		{"arppath-sim", nil},
		{"arpvstp", nil},
		{"pathrepair", nil},
	}
	for _, c := range cases {
		c := c
		t.Run(c.cmd, func(t *testing.T) {
			golden, err := os.ReadFile("examples/specs/" + c.cmd + ".golden")
			if err != nil {
				t.Fatal(err)
			}
			args := append([]string{"run", "./cmd/" + c.cmd, "-spec", "examples/specs/" + c.cmd + ".json"}, c.args...)
			out, err := exec.Command("go", args...).Output()
			if err != nil {
				t.Fatalf("go %v: %v", args, err)
			}
			if string(out) != string(golden) {
				t.Fatalf("output diverged from examples/specs/%s.golden.\ngot:\n%s\nwant:\n%s",
					c.cmd, out, golden)
			}
		})
	}
}
