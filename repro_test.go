package repro

import (
	"testing"
	"time"
)

// TestFacadeQuickstart runs the doc-comment example end to end.
func TestFacadeQuickstart(t *testing.T) {
	n := NewNetwork(1)
	b1 := NewBridge(n, "b1", 1)
	b2 := NewBridge(n, "b2", 2)
	h1, h2 := NewHost(n, "h1", 1), NewHost(n, "h2", 2)
	link := DefaultLinkConfig()
	n.Connect(h1, b1, link)
	n.Connect(b1, b2, link)
	n.Connect(b2, h2, link)
	b1.Start()
	b2.Start()
	n.RunFor(time.Millisecond)

	var rtt time.Duration
	n.Engine.At(n.Now(), func() {
		h1.Ping(h2.IP(), 56, time.Second, func(r PingResult) { rtt = r.RTT })
	})
	n.Run()
	if rtt <= 0 {
		t.Fatal("quickstart ping failed")
	}
}

func TestFacadeSTPBridge(t *testing.T) {
	n := NewNetwork(1)
	s1 := NewSTPBridge(n, "s1", 1)
	s2 := NewSTPBridge(n, "s2", 2)
	h1, h2 := NewHost(n, "h1", 1), NewHost(n, "h2", 2)
	link := DefaultLinkConfig()
	n.Connect(h1, s1, link)
	n.Connect(s1, s2, link)
	n.Connect(s2, h2, link)
	s1.Start()
	s2.Start()
	n.RunFor(35 * time.Second) // STP listening+learning delays

	ok := false
	n.Engine.At(n.Now(), func() {
		h1.Ping(h2.IP(), 56, time.Second, func(r PingResult) { ok = r.Err == nil })
	})
	n.RunFor(5 * time.Second)
	if !ok {
		t.Fatal("ping across STP bridges failed")
	}
	if !s1.IsRoot() && !s2.IsRoot() {
		t.Fatal("no root elected")
	}
}

func TestFacadeTopologies(t *testing.T) {
	f1 := Figure1Topology(1)
	if len(f1.Bridges) != 5 {
		t.Fatal("figure 1 shape")
	}
	f2 := Figure2Topology(1, "arppath", "slow-diagonal")
	if len(f2.Bridges) != 6 {
		t.Fatal("figure 2 shape")
	}
	var rtt time.Duration
	a, b := f2.Host("A"), f2.Host("B")
	f2.Engine.At(f2.Now(), func() {
		a.Ping(b.IP(), 56, time.Second, func(r PingResult) { rtt = r.RTT })
	})
	f2.RunFor(5 * time.Second)
	if rtt <= 0 {
		t.Fatal("figure 2 ping failed")
	}
}

func TestFacadeBridgeConfig(t *testing.T) {
	cfg := DefaultBridgeConfig()
	cfg.Proxy = true
	n := NewNetwork(1)
	b := NewBridgeConfig(n, "b", 1, cfg)
	if !b.Config().Proxy {
		t.Fatal("config not applied")
	}
}
