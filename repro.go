// Package repro is a Go reproduction of "Implementing ARP-Path Low
// Latency Bridges in NetFPGA" (Rojas et al., SIGCOMM 2011 demo): ARP-Path
// transparent bridges that discover minimum-latency paths by racing
// flooded ARP Request copies, plus everything needed to evaluate them —
// a deterministic Ethernet fabric simulator, an IEEE 802.1D STP baseline,
// simulated hosts with ARP/IPv4/ICMP/UDP and a TCP-like transport, the
// paper's demo topologies, and one experiment runner per figure.
//
// This package is the public facade: it re-exports the types a downstream
// user needs so simple programs import only this package. The full API
// lives in the internal packages (internal/core is the protocol,
// internal/experiments the evaluation); see README.md for the map.
//
// A minimal fabric:
//
//	n := repro.NewNetwork(1)
//	b1 := repro.NewBridge(n, "b1", 1)
//	b2 := repro.NewBridge(n, "b2", 2)
//	h1, h2 := repro.NewHost(n, "h1", 1), repro.NewHost(n, "h2", 2)
//	link := repro.DefaultLinkConfig()
//	n.Connect(h1, b1, link)
//	n.Connect(b1, b2, link)
//	n.Connect(b2, h2, link)
//	b1.Start()
//	b2.Start()
//	n.RunFor(time.Millisecond) // HELLO settle
//	h1.Ping(h2.IP(), 56, time.Second, func(r repro.PingResult) {
//		fmt.Println("rtt:", r.RTT)
//	})
//	n.Run()
package repro

import (
	"repro/internal/core"
	"repro/internal/host"
	"repro/internal/layers"
	"repro/internal/netsim"
	"repro/internal/stp"
	"repro/internal/topo"
)

// Core protocol types.
type (
	// Bridge is an ARP-Path bridge (the paper's contribution).
	Bridge = core.Bridge
	// BridgeConfig tunes an ARP-Path bridge.
	BridgeConfig = core.Config
	// BridgeStats are the protocol counters of an ARP-Path bridge.
	BridgeStats = core.Stats
	// STPBridge is the IEEE 802.1D baseline bridge.
	STPBridge = stp.Bridge
	// STPTimers groups the 802.1D protocol timers.
	STPTimers = stp.Timers
)

// Fabric types.
type (
	// Network is the simulated Ethernet fabric.
	Network = netsim.Network
	// LinkConfig describes a link's rate, delay and queue.
	LinkConfig = netsim.LinkConfig
	// Link is a full-duplex cable with failure injection (SetUp).
	Link = netsim.Link
	// Frame is the pooled, reference-counted frame buffer every node
	// receives; see its ownership contract (borrow by default, Retain to
	// keep) in DESIGN.md §3.
	Frame = netsim.Frame
)

// Host types.
type (
	// Host is a simulated end station (ARP, IPv4, ICMP, UDP, TCP-lite).
	Host = host.Host
	// PingResult is the outcome of one ICMP echo exchange.
	PingResult = host.PingResult
	// Conn is a TCP-lite connection.
	Conn = host.Conn
	// MAC is a 48-bit Ethernet address.
	MAC = layers.MAC
	// Addr4 is an IPv4 address.
	Addr4 = layers.Addr4
)

// NewNetwork creates an empty deterministic fabric seeded with seed.
func NewNetwork(seed int64) *Network { return netsim.NewNetwork(seed) }

// DefaultLinkConfig is a 1 Gb/s link with a short wire, like the demo's.
func DefaultLinkConfig() LinkConfig { return netsim.DefaultLinkConfig() }

// NewBridge creates an ARP-Path bridge with default configuration. Call
// Start after cabling, before running the simulation.
func NewBridge(n *Network, name string, id int) *Bridge {
	return core.New(n, name, id, core.DefaultConfig())
}

// NewBridgeConfig creates an ARP-Path bridge with an explicit config.
func NewBridgeConfig(n *Network, name string, id int, cfg BridgeConfig) *Bridge {
	return core.New(n, name, id, cfg)
}

// DefaultBridgeConfig returns the ARP-Path defaults used in the paper's
// experiments.
func DefaultBridgeConfig() BridgeConfig { return core.DefaultConfig() }

// NewSTPBridge creates an 802.1D baseline bridge with standard timers and
// priority 0x8000.
func NewSTPBridge(n *Network, name string, id int) *STPBridge {
	return stp.New(n, name, id, 0x8000, stp.DefaultTimers())
}

// NewHost creates host number id (MAC 02:00:00::id, IP 10.0.id).
func NewHost(n *Network, name string, id int) *Host { return host.New(n, name, id) }

// Demo topologies (paper §3). These return ready-to-run networks; see
// internal/topo for the full builder API.

// Figure1Topology builds the 5-bridge discovery-walkthrough mesh with
// hosts S and D, running ARP-Path.
func Figure1Topology(seed int64) *topo.Built {
	return topo.Figure1(topo.DefaultOptions(topo.ARPPath, seed))
}

// Figure2Topology builds the 4-NetFPGA + 2-NIC demo testbed with hosts A
// and B under the given protocol ("arppath", "stp" or "learning") and
// delay profile ("uniform", "slow-diagonal" or "asymmetric").
func Figure2Topology(seed int64, protocol, profile string) *topo.Built {
	return topo.Figure2(topo.DefaultOptions(topo.Protocol(protocol), seed), topo.Figure2Profile(profile))
}
