package repro

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestTrackedTablesReproduceGoldens is the capacity=∞ differential gate
// for the bounded-table machinery (DESIGN.md §12): turning on the
// recency tracker without a capacity that can bite — Capacity 0 with an
// eviction policy tracks every entry but never evicts — must reproduce
// each protocol golden fixture byte for byte, trace fingerprint
// included. The tracker's bookkeeping (arena inserts, touches on every
// hit, sweep scheduling) runs on every table operation of the whole
// simulation, so any behavioural leak of the bounding machinery into
// the dataplane shows up as a fingerprint diff. Fixtures without a
// protocol section (fabricbench, arpvstp, pathrepair run fixed demo
// workloads; scenario rejects protocol tuning) are covered indirectly:
// they build through the same defaulted configs the unbounded baseline
// uses.
func TestTrackedTablesReproduceGoldens(t *testing.T) {
	cases := []struct {
		spec   string // fixture basename under examples/specs/
		config map[string]any
	}{
		{"arppath-sim", map[string]any{"table_policy": "lru"}},
		{"arppath-sim", map[string]any{"table_policy": "clock"}},
		{"flowpath", map[string]any{"pair_policy": "lru"}},
		{"flowpath", map[string]any{"pair_policy": "clock"}},
		{"tcppath", map[string]any{"conn_policy": "lru"}},
		{"tcppath", map[string]any{"conn_policy": "clock"}},
	}
	for _, c := range cases {
		c := c
		var policy string
		for _, v := range c.config {
			policy = v.(string)
		}
		t.Run(c.spec+"/"+policy, func(t *testing.T) {
			golden, err := os.ReadFile("examples/specs/" + c.spec + ".golden")
			if err != nil {
				t.Fatal(err)
			}
			raw, err := os.ReadFile("examples/specs/" + c.spec + ".json")
			if err != nil {
				t.Fatal(err)
			}
			var spec map[string]any
			if err := json.Unmarshal(raw, &spec); err != nil {
				t.Fatal(err)
			}
			proto, _ := spec["protocol"].(map[string]any)
			if proto == nil {
				t.Fatalf("fixture %s has no protocol section", c.spec)
			}
			cfg, _ := proto["config"].(map[string]any)
			if cfg == nil {
				cfg = map[string]any{}
			}
			for k, v := range c.config {
				cfg[k] = v
			}
			proto["config"] = cfg
			mod, err := json.Marshal(spec)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(t.TempDir(), c.spec+".json")
			if err := os.WriteFile(path, mod, 0o644); err != nil {
				t.Fatal(err)
			}
			out, err := exec.Command("go", "run", "./cmd/arppath-sim", "-spec", path).Output()
			if err != nil {
				t.Fatalf("go run ./cmd/arppath-sim -spec %s: %v", path, err)
			}
			if string(out) != string(golden) {
				t.Fatalf("tracked-but-unbounded %s (%v) diverged from examples/specs/%s.golden.\ngot:\n%s\nwant:\n%s",
					c.spec, c.config, c.spec, out, golden)
			}
		})
	}
}
