package flowpath

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/tables"
	"repro/internal/topo"
)

// Registry names of the All-Path variants.
const (
	// ProtoFlowPath locks one path per {src, dst} host pair.
	ProtoFlowPath topo.Protocol = "flowpath"
	// ProtoTCPPath locks one path per TCP connection, ARP-Path otherwise.
	ProtoTCPPath topo.Protocol = "tcppath"
)

// flowConfigJSON is the spec-file form of Config.
type flowConfigJSON struct {
	LockTimeout   topo.Duration `json:"lock_timeout,omitempty"`
	PairTimeout   topo.Duration `json:"pair_timeout,omitempty"`
	HostTimeout   topo.Duration `json:"host_timeout,omitempty"`
	RepairTimeout topo.Duration `json:"repair_timeout,omitempty"`
	RepairBuffer  int           `json:"repair_buffer,omitempty"`
	PairCapacity  int           `json:"pair_capacity,omitempty"`
	PairPolicy    string        `json:"pair_policy,omitempty"`
}

// tcpConfigJSON is the spec-file form of TCPConfig. The embedded
// ARP-Path fallback keeps its defaults: the variant's own knobs are the
// extension surface, exactly like the in-tree protocols expose only what
// a spec can meaningfully sweep.
type tcpConfigJSON struct {
	ConnLockTimeout topo.Duration `json:"conn_lock_timeout,omitempty"`
	ConnTimeout     topo.Duration `json:"conn_timeout,omitempty"`
	ConnCapacity    int           `json:"conn_capacity,omitempty"`
	ConnPolicy      string        `json:"conn_policy,omitempty"`
}

// strictUnmarshal decodes JSON rejecting unknown fields (the registry's
// contract for config extensions).
func strictUnmarshal(raw []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON value")
	}
	return nil
}

func init() {
	topo.RegisterProtocol(topo.Definition{
		Name:      ProtoFlowPath,
		NewConfig: func() any { return new(Config) },
		ApplyDefaults: func(cfg any) {
			c := cfg.(*Config)
			*c = c.WithDefaults()
		},
		WarmUp: func(any) time.Duration { return 10 * time.Millisecond },
		New: func(net *netsim.Network, name string, numID int, cfg any) topo.Bridge {
			return New(net, name, numID, *cfg.(*Config))
		},
		DecodeConfig: func(raw []byte) (any, error) {
			var j flowConfigJSON
			if len(raw) > 0 {
				if err := strictUnmarshal(raw, &j); err != nil {
					return nil, err
				}
			}
			if _, err := tables.ParseConfig(j.PairCapacity, j.PairPolicy); err != nil {
				return nil, err
			}
			return &Config{
				LockTimeout:   j.LockTimeout.D(),
				PairTimeout:   j.PairTimeout.D(),
				HostTimeout:   j.HostTimeout.D(),
				RepairTimeout: j.RepairTimeout.D(),
				RepairBuffer:  j.RepairBuffer,
				PairCapacity:  j.PairCapacity,
				PairPolicy:    j.PairPolicy,
			}, nil
		},
		EncodeConfig: func(cfg any) ([]byte, error) {
			c := cfg.(*Config)
			return json.Marshal(flowConfigJSON{
				LockTimeout:   topo.Duration(c.LockTimeout),
				PairTimeout:   topo.Duration(c.PairTimeout),
				HostTimeout:   topo.Duration(c.HostTimeout),
				RepairTimeout: topo.Duration(c.RepairTimeout),
				RepairBuffer:  c.RepairBuffer,
				PairCapacity:  c.PairCapacity,
				PairPolicy:    c.PairPolicy,
			})
		},
	})

	topo.RegisterProtocol(topo.Definition{
		Name:      ProtoTCPPath,
		NewConfig: func() any { return new(TCPConfig) },
		ApplyDefaults: func(cfg any) {
			c := cfg.(*TCPConfig)
			*c = c.WithDefaults()
		},
		WarmUp: func(any) time.Duration { return 10 * time.Millisecond },
		New: func(net *netsim.Network, name string, numID int, cfg any) topo.Bridge {
			return NewTCPPath(net, name, numID, *cfg.(*TCPConfig))
		},
		DecodeConfig: func(raw []byte) (any, error) {
			var j tcpConfigJSON
			if len(raw) > 0 {
				if err := strictUnmarshal(raw, &j); err != nil {
					return nil, err
				}
			}
			if _, err := tables.ParseConfig(j.ConnCapacity, j.ConnPolicy); err != nil {
				return nil, err
			}
			return &TCPConfig{
				ARPPath:         core.Config{},
				ConnLockTimeout: j.ConnLockTimeout.D(),
				ConnTimeout:     j.ConnTimeout.D(),
				ConnCapacity:    j.ConnCapacity,
				ConnPolicy:      j.ConnPolicy,
			}, nil
		},
		EncodeConfig: func(cfg any) ([]byte, error) {
			c := cfg.(*TCPConfig)
			return json.Marshal(tcpConfigJSON{
				ConnLockTimeout: topo.Duration(c.ConnLockTimeout),
				ConnTimeout:     topo.Duration(c.ConnTimeout),
				ConnCapacity:    c.ConnCapacity,
				ConnPolicy:      c.ConnPolicy,
			})
		},
	})
}
