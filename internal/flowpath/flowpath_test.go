package flowpath

import (
	"testing"
	"time"

	"repro/internal/host"
	"repro/internal/topo"
)

// pingOK runs one ARP-initiated ping exchange and reports the answered
// count.
func pingOK(t *testing.T, built *topo.Built, a, b string, pings int, spacing time.Duration) int {
	t.Helper()
	ha, hb := built.Host(a), built.Host(b)
	answered := 0
	built.Engine.At(built.Now(), func() {
		ha.PingSeries(hb.IP(), pings, 56, spacing, time.Second, func(rs []host.PingResult) {
			for _, r := range rs {
				if r.Err == nil {
					answered++
				}
			}
		})
	})
	built.RunFor(time.Duration(pings)*spacing + 3*time.Second)
	return answered
}

// TestFlowPathDeliversAndKeysPerPair pins the protocol's basic shape on a
// ring: an ARP-initiated conversation delivers, the winning path's
// bridges hold both directed pair entries, and bridges off the path hold
// no confirmed state once the discovery race window has expired — the
// table-size trade-off the scalability study defines Flow-Path by.
func TestFlowPathDeliversAndKeysPerPair(t *testing.T) {
	built := topo.Ring(topo.DefaultOptions(ProtoFlowPath, 1), 5)
	if got := pingOK(t, built, "H1", "H3", 3, 10*time.Millisecond); got != 3 {
		t.Fatalf("answered %d of 3 pings", got)
	}

	a, b := built.Host("H1").MAC(), built.Host("H3").MAC()
	now := built.Now()
	onPath, confirmed := 0, 0
	for _, br := range built.Bridges {
		fb := br.(*Bridge)
		_, fwd := fb.FlowNextHop(a, b, now)
		_, rev := fb.FlowNextHop(b, a, now)
		if fwd != rev {
			t.Fatalf("bridge %s holds asymmetric pair state (fwd=%v rev=%v)", br.Name(), fwd, rev)
		}
		if fwd {
			onPath++
			confirmed += len(fb.Pairs().Snapshot(now))
		}
	}
	// H1 and H3 are two hops apart either way around the 5-ring: the
	// winning path crosses 3 bridges, each holding exactly the 2 directed
	// entries of this pair.
	if onPath != 3 {
		t.Fatalf("pair state on %d bridges, want 3 (one path, nowhere else)", onPath)
	}
	if confirmed != 6 {
		t.Fatalf("%d pair entries across the path, want 6 (2 per hop)", confirmed)
	}

	// Let the race window close: transient host locks must be gone
	// everywhere (no bridge holds foreign stations), while the speakers'
	// edge bridges durably remember their own attached stations.
	built.RunFor(time.Second)
	now = built.Now()
	for _, br := range built.Bridges {
		fb := br.(*Bridge)
		own := built.Host("H" + br.Name()[1:]).MAC() // S<i> hosts H<i>
		snap := fb.Hosts().Snapshot(now)
		for mac := range snap {
			if mac != own {
				t.Fatalf("bridge %s still holds foreign host %v after the race window", br.Name(), mac)
			}
		}
		if (br.Name() == "S1" || br.Name() == "S3") && len(snap) != 1 {
			t.Fatalf("edge bridge %s forgot its own station (snapshot %v)", br.Name(), snap)
		}
	}
}

// TestFlowPathWalkSymmetry walks the pair entries edge to edge in both
// directions: §2.1.2's symmetric-path property holds per pair.
func TestFlowPathWalkSymmetry(t *testing.T) {
	built := topo.Grid(topo.DefaultOptions(ProtoFlowPath, 3), 3, 3)
	if got := pingOK(t, built, "H1", "H4", 2, 10*time.Millisecond); got != 2 {
		t.Fatalf("answered %d of 2 pings", got)
	}
	a, b := built.Host("H1"), built.Host("H4")
	now := built.Now()
	walk := func(from *host.Host, dst *host.Host) []string {
		var chain []string
		cur := from.Port().Peer().Node()
		for steps := 0; steps <= len(built.Bridges); steps++ {
			fb, ok := cur.(*Bridge)
			if !ok {
				return chain // reached a host
			}
			chain = append(chain, fb.Name())
			p, ok := fb.FlowNextHop(from.MAC(), dst.MAC(), now)
			if !ok {
				t.Fatalf("walk %s->%s dead-ends at %s", from.Name(), dst.Name(), fb.Name())
			}
			cur = p.Peer().Node()
		}
		t.Fatalf("walk %s->%s did not terminate", from.Name(), dst.Name())
		return nil
	}
	toB := walk(a, b)
	toA := walk(b, a)
	if len(toB) != len(toA) {
		t.Fatalf("paths differ in length: %v vs %v", toB, toA)
	}
	for i := range toB {
		if toB[i] != toA[len(toA)-1-i] {
			t.Fatalf("path %v is not the reverse of %v", toB, toA)
		}
	}
}

// TestFlowPathRepairsWarmConversation wipes a bridge mid-path (total
// state loss, link bounce) and probes again WITHOUT flushing ARP caches:
// the pair miss at the restarted bridge must buffer, flood a pair
// PathRequest answered from the destination's durable edge entry, and
// unblock the conversation — Flow-Path's §2.1.4 analog.
func TestFlowPathRepairsWarmConversation(t *testing.T) {
	built := topo.Ring(topo.DefaultOptions(ProtoFlowPath, 2), 5)
	if got := pingOK(t, built, "H1", "H3", 2, 10*time.Millisecond); got != 2 {
		t.Fatalf("establishment failed")
	}

	// Restart every bridge holding pair state except the endpoints' edge
	// bridges, so the old path is guaranteed gone.
	a, b := built.Host("H1").MAC(), built.Host("H3").MAC()
	now := built.Now()
	restarted := 0
	built.Engine.At(built.Now(), func() {
		for _, br := range built.Bridges {
			fb := br.(*Bridge)
			if br.Name() == "S1" || br.Name() == "S3" {
				continue
			}
			if _, ok := fb.FlowNextHop(a, b, now); ok {
				fb.Restart()
				restarted++
			}
		}
	})
	built.RunFor(50 * time.Millisecond)
	if restarted == 0 {
		t.Fatal("no mid-path bridge found to restart")
	}

	// Warm probes: spacing wider than the lock window so repair guards
	// can expire between probes (same reasoning as the scenario engine's
	// warm wave).
	if got := pingOK(t, built, "H1", "H3", 4, 250*time.Millisecond); got < 1 {
		t.Fatalf("warm conversation stayed blocked after restart (answered %d)", got)
	}

	var repairs uint64
	for _, br := range built.Bridges {
		repairs += br.(*Bridge).Stats().RepairsStarted
	}
	if repairs == 0 {
		t.Fatal("conversation recovered without any pair repair — test is not exercising the machinery")
	}
}
