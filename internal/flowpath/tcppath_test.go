package flowpath

import (
	"testing"
	"time"

	"repro/internal/host/app"
	"repro/internal/topo"
)

// TestTCPPathConnectionPaths pins the per-connection machinery: a
// TCP-lite stream over a tcppath fabric completes, the opening SYN was
// flooded and race-filtered, the SYN|ACK confirmed connection entries hop
// by hop, and steady-state segments forward on those entries rather than
// the ARP-Path fallback.
func TestTCPPathConnectionPaths(t *testing.T) {
	built := topo.Ring(topo.DefaultOptions(ProtoTCPPath, 1), 5)
	server, client := built.Host("H1"), built.Host("H3")

	cfg := app.DefaultStreamConfig()
	cfg.Size = 64 << 10
	var rep *app.StreamReport
	built.Engine.At(built.Now(), func() {
		app.StartStream(server, client, cfg, func(r *app.StreamReport) { rep = r })
	})
	built.RunFor(30 * time.Second)
	if rep == nil || !rep.Complete {
		t.Fatalf("stream did not complete: %+v", rep)
	}

	var st TCPStats
	conns := 0
	for _, br := range built.Bridges {
		tb := br.(*TCPPath)
		s := tb.TCPStats()
		st.SynFloods += s.SynFloods
		st.SynRaceDrops += s.SynRaceDrops
		st.SynDelivered += s.SynDelivered
		st.ConnConfirmed += s.ConnConfirmed
		st.ConnForwarded += s.ConnForwarded
		conns += len(tb.Conns().Snapshot(built.Now()))
	}
	if st.SynDelivered == 0 {
		t.Fatal("no SYN terminated at the destination edge")
	}
	if st.ConnConfirmed == 0 {
		t.Fatal("no connection entry was ever confirmed")
	}
	if st.ConnForwarded == 0 {
		t.Fatal("no segment forwarded on a connection entry")
	}
	if conns == 0 {
		t.Fatal("no live connection entries after the stream")
	}
	// The ring has a cycle: the SYN flood must have been race-filtered
	// somewhere, or loop protection never engaged.
	if st.SynFloods == 0 || st.SynRaceDrops == 0 {
		t.Fatalf("SYN flood did not race around the ring: %+v", st)
	}
}

// TestTCPPathNonTCPFallsBackToARPPath pins the fallback half: ICMP and
// ARP traffic on a tcppath fabric behaves exactly like ARP-Path — the
// conversation delivers and the embedded core tables carry it.
func TestTCPPathNonTCPFallsBackToARPPath(t *testing.T) {
	built := topo.Ring(topo.DefaultOptions(ProtoTCPPath, 1), 5)
	if got := pingOK(t, built, "H2", "H5", 3, 10*time.Millisecond); got != 3 {
		t.Fatalf("answered %d of 3 pings", got)
	}
	a, b := built.Host("H2").MAC(), built.Host("H5").MAC()
	onPath := 0
	for _, br := range built.Bridges {
		tb := br.(*TCPPath)
		if _, ok := tb.EntryFor(a); ok {
			onPath++
		}
		if len(tb.Conns().Snapshot(built.Now())) != 0 {
			t.Fatalf("bridge %s grew connection state from ICMP traffic", br.Name())
		}
		_ = b
	}
	if onPath == 0 {
		t.Fatal("no ARP-Path entries learned")
	}
}

// TestTCPPathSurvivesMidPathRestart wipes a mid-path bridge during a
// transfer: lost connection entries fall back to the ARP-Path dataplane
// (whose own repair machinery restores the MAC path), so the transfer
// still completes.
func TestTCPPathSurvivesMidPathRestart(t *testing.T) {
	built := topo.Ring(topo.DefaultOptions(ProtoTCPPath, 4), 5)
	server, client := built.Host("H1"), built.Host("H3")

	cfg := app.DefaultStreamConfig()
	cfg.Size = 8 << 20 // ~64ms of line rate: the restart lands mid-transfer
	var rep *app.StreamReport
	built.Engine.At(built.Now(), func() {
		app.StartStream(server, client, cfg, func(r *app.StreamReport) { rep = r })
	})
	// Let the transfer get going, then power-cycle S2 (on the short path
	// between H1 and H3).
	built.RunFor(5 * time.Millisecond)
	built.Engine.At(built.Now(), func() {
		built.Bridge("S2").(*TCPPath).Restart()
	})
	built.RunFor(60 * time.Second)
	if rep == nil || !rep.Complete {
		t.Fatalf("stream did not survive the restart: %+v", rep)
	}
	var fallbacks uint64
	for _, br := range built.Bridges {
		fallbacks += br.(*TCPPath).TCPStats().Fallbacks
	}
	if fallbacks == 0 {
		t.Fatal("restart recovery never used the ARP-Path fallback")
	}
}
