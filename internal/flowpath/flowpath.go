package flowpath

import (
	"time"

	"repro/internal/bridge"
	"repro/internal/core"
	"repro/internal/layers"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/tables"
)

// repairWheelTick mirrors core's repair-timer granularity.
const repairWheelTick = time.Millisecond

// Config tunes a Flow-Path bridge. The zero value is not valid; use
// DefaultConfig (the builder defaults field-wise via WithDefaults).
type Config struct {
	// LockTimeout is the discovery race window, shared by the transient
	// per-host locks and the pair entries' guards.
	LockTimeout time.Duration
	// PairTimeout is the lifetime of confirmed pair entries; traffic
	// refreshes it.
	PairTimeout time.Duration
	// HostTimeout is the lifetime of the durable host entries an edge
	// bridge keeps for its own attached stations (the study's edge host
	// table); transit bridges hold hosts only for the race window.
	HostTimeout time.Duration
	// RepairTimeout bounds how long frames buffer per missing pair.
	RepairTimeout time.Duration
	// RepairBuffer caps buffered frames per missing pair.
	RepairBuffer int
	// PairCapacity bounds the pair table (0 = unbounded); the durable
	// edge host table is naturally bounded by the attached stations and
	// stays unbounded. See DESIGN.md §12.
	PairCapacity int
	// PairPolicy is the pair-table eviction policy: "lru" or "clock"
	// ("" / "timeout" is the unbounded baseline).
	PairPolicy string
}

// DefaultConfig matches ARP-Path's timing so the variants compare like
// for like.
func DefaultConfig() Config {
	return Config{
		LockTimeout:   200 * time.Millisecond,
		PairTimeout:   120 * time.Second,
		HostTimeout:   120 * time.Second,
		RepairTimeout: 500 * time.Millisecond,
		RepairBuffer:  64,
	}
}

// WithDefaults fills unset (zero) fields field-wise.
func (c Config) WithDefaults() Config {
	d := DefaultConfig()
	if c.LockTimeout == 0 {
		c.LockTimeout = d.LockTimeout
	}
	if c.PairTimeout == 0 {
		c.PairTimeout = d.PairTimeout
	}
	if c.HostTimeout == 0 {
		c.HostTimeout = d.HostTimeout
	}
	if c.RepairTimeout == 0 {
		c.RepairTimeout = d.RepairTimeout
	}
	if c.RepairBuffer == 0 {
		c.RepairBuffer = d.RepairBuffer
	}
	return c
}

// Stats counts Flow-Path protocol events.
type Stats struct {
	BroadcastLocked   uint64 // host race locks created by flood first copies
	BroadcastRelayed  uint64
	BroadcastRaceDrop uint64
	PairsConfirmed    uint64 // pair entries learned from establishing replies
	Forwarded         uint64 // unicasts forwarded along pair entries
	EdgeDelivered     uint64 // unicasts delivered off the durable edge host table
	HairpinDrop       uint64
	SrcPortDrop       uint64
	MissDrop          uint64 // unicasts with no pair, no edge entry, buffered or dropped
	RepairsStarted    uint64
	RepairReleased    uint64
	RepairDropped     uint64
	PathRequestsSent  uint64
	PathRepliesSent   uint64
	EntriesPurged     uint64
}

// pairRepair tracks one outstanding pair PathRequest.
type pairRepair struct {
	nonce    uint32
	buffered []*netsim.Frame
	timer    sim.WheelTimer
}

// Bridge is a Flow-Path bridge: discovery floods race per source host
// exactly as in ARP-Path (flood loop-freedom needs the per-source
// first-port rule regardless of how paths are keyed), but confirmed
// forwarding state is per directed {src, dst} pair, written by the reply
// as it retraces the winning path. Transit bridges therefore hold state
// only for the pairs whose paths cross them, while each edge bridge keeps
// durable entries for its own attached stations so it can keep answering
// discovery on their behalf.
type Bridge struct {
	*bridge.Chassis
	cfg     Config
	hosts   *core.LockTable // per-host: durable at edges, race-window elsewhere
	pairs   *PairTable      // per directed pair: the forwarding state proper
	repairs map[PairKey]*pairRepair
	wheel   *sim.Wheel
	stats   Stats
}

// New creates a Flow-Path bridge.
func New(net *netsim.Network, name string, numID int, cfg Config) *Bridge {
	if cfg.LockTimeout <= 0 || cfg.PairTimeout <= 0 || cfg.HostTimeout <= 0 {
		panic("flowpath: timeouts must be positive")
	}
	if cfg.RepairTimeout <= 0 || cfg.RepairBuffer <= 0 {
		panic("flowpath: repair timeout and buffer must be positive")
	}
	bound, err := tables.ParseConfig(cfg.PairCapacity, cfg.PairPolicy)
	if err != nil {
		panic("flowpath: " + err.Error())
	}
	b := &Bridge{
		cfg:   cfg,
		hosts: core.NewLockTable(cfg.LockTimeout, cfg.HostTimeout),
		// Pair keys are packed MACs in both halves: the junk-key guard
		// applies (multicast or zero halves never pin a slot).
		pairs:   NewBoundedPairTable(cfg.LockTimeout, cfg.PairTimeout, bound, true),
		repairs: make(map[PairKey]*pairRepair),
	}
	b.Chassis = bridge.NewChassis(net, name, numID, b)
	b.HelloEnabled = true
	return b
}

// pairOf builds the directed pair key for frames src→dst.
func pairOf(src, dst uint64) PairKey { return PairKey{Hi: src, Lo: dst} }

// Stats returns a snapshot of the protocol counters.
func (b *Bridge) Stats() Stats { return b.stats }

// Config returns the bridge configuration.
func (b *Bridge) Config() Config { return b.cfg }

// Pairs exposes the pair table (experiments, checker).
func (b *Bridge) Pairs() *PairTable { return b.pairs }

// Hosts exposes the host table (experiments, checker).
func (b *Bridge) Hosts() *core.LockTable { return b.hosts }

// ForwardingEntries reports the bridge's resident forwarding state: pair
// entries plus host entries — the table-size axis of the All-Path
// comparison.
func (b *Bridge) ForwardingEntries() int { return b.pairs.Len() + b.hosts.Len() }

// FlowNextHop returns the port frames src→dst leave on, if a live pair
// entry exists (the scenario checker's walk primitive).
func (b *Bridge) FlowNextHop(src, dst layers.MAC, now time.Duration) (*netsim.Port, bool) {
	e, ok := b.pairs.Get(pairOf(src.Uint64(), dst.Uint64()), now)
	if !ok {
		return nil, false
	}
	return e.Port, true
}

// PendingRepairs returns the number of outstanding pair repairs (tests).
func (b *Bridge) PendingRepairs() int { return len(b.repairs) }

// repairWheel lazily creates the repair-timeout wheel (the scheduling
// identity only resolves once the builder registered the bridge).
func (b *Bridge) repairWheel() *sim.Wheel {
	if b.wheel == nil {
		b.wheel = sim.NewWheelOn(b.Sched(), repairWheelTick)
	}
	return b.wheel
}

// OnStart implements bridge.Protocol.
func (b *Bridge) OnStart() {}

// OnPortStatus implements bridge.Protocol: a dead link invalidates every
// path through it, pair and host entries alike.
func (b *Bridge) OnPortStatus(p *netsim.Port, up bool) {
	if !up {
		b.stats.EntriesPurged += uint64(b.hosts.FlushPort(p)) + uint64(b.pairs.FlushPort(p))
	}
}

// Restart models a power-cycle with total table loss, mirroring
// core.Bridge.Restart: repairs abandoned (buffered frames released),
// tables emptied, chassis forgotten, every link bounced.
func (b *Bridge) Restart() {
	for k, r := range b.repairs {
		b.repairWheel().Stop(r.timer)
		b.stats.RepairDropped += uint64(len(r.buffered))
		for _, f := range r.buffered {
			f.Release()
		}
		r.buffered = nil
		delete(b.repairs, k)
	}
	b.hosts.Reset()
	b.pairs.Reset()
	b.Chassis.Restart()
	for _, p := range b.Ports() {
		if l := p.Link(); l.Up() {
			l.SetUp(false)
			l.SetUp(true)
		}
	}
}

// OnFrame implements bridge.Protocol.
//
//fabric:hotpath
func (b *Bridge) OnFrame(in *netsim.Port, f *netsim.Frame) {
	v := f.View()
	if v.IsMulticast() {
		b.handleBroadcast(in, f, v)
		return
	}
	b.handleUnicast(in, f, v)
}

// pathEstablishingBroadcast mirrors core: ARP Requests and PathRequests
// create or refresh discovery state.
func pathEstablishingBroadcast(v *layers.FrameView) bool {
	if v.HasARP {
		return v.ARP.Operation == layers.ARPRequest
	}
	return v.HasCtl && v.Ctl.Type == layers.PathCtlRequest
}

// pathEstablishingUnicast mirrors core: ARP Replies and PathReplies
// confirm a path.
func pathEstablishingUnicast(v *layers.FrameView) bool {
	if v.HasARP {
		return v.ARP.Operation == layers.ARPReply
	}
	return v.HasCtl && v.Ctl.Type == layers.PathCtlReply
}

// handleBroadcast is ARP-Path's §2.1.1/§2.1.3 discovery race, reused
// verbatim at the per-source level: flood loop-freedom and reply routing
// both need the first-port rule on the flood's source whatever keys the
// confirmed state. The one Flow-Path refinement: a broadcast arriving on
// an edge port learns the attached station durably, so this bridge can
// answer future PathRequests for it (the study's edge host table).
//
//fabric:hotpath
func (b *Bridge) handleBroadcast(in *netsim.Port, f *netsim.Frame, v *layers.FrameView) {
	now := b.Now()
	src := v.SrcKey
	establishing := pathEstablishingBroadcast(v)

	// Own returning PathRequest flood: statelessly dead (core's rule).
	if v.HasCtl && v.Ctl.Type == layers.PathCtlRequest && v.Ctl.BridgeID == uint64(b.NumID()) {
		b.stats.BroadcastRaceDrop++
		return
	}

	if e, ok := b.hosts.GetKey(src, now); ok {
		switch {
		case e.Port == in:
			if establishing {
				b.hosts.LockKey(src, in, now)
			}
		case e.Guarded(now):
			b.stats.BroadcastRaceDrop++
			return
		case establishing:
			b.hosts.LockKey(src, in, now)
			b.stats.BroadcastLocked++
		default:
			b.stats.BroadcastRaceDrop++
			return
		}
	} else {
		b.hosts.LockKey(src, in, now)
		b.stats.BroadcastLocked++
	}
	if b.IsEdge(in) {
		// Our own attached station: keep it past the race window (the
		// Learn preserves the freshly armed guard on the same port).
		b.hosts.LearnKey(src, in, now)
	}

	// Answer a PathRequest for one of our attached stations.
	if v.HasCtl {
		if b.answerPathRequest(in, v, now) {
			return
		}
	}

	b.stats.BroadcastRelayed++
	b.FloodExcept(in, f)
}

// handleUnicast forwards data on pair entries, confirms pairs from
// establishing replies, and triggers pair repair on misses.
//
//fabric:hotpath
func (b *Bridge) handleUnicast(in *netsim.Port, f *netsim.Frame, v *layers.FrameView) {
	now := b.Now()
	src, dst := v.SrcKey, v.DstKey
	establishing := pathEstablishingUnicast(v)

	// Flow-Path has no PathFail walk (repair always floods from the miss
	// bridge); a stray one is consumed, not forwarded.
	if v.EtherType == layers.EtherTypePathCtl && !establishing {
		return
	}

	// Source side: maintain the transient reverse-route state the reply
	// relies on, with the §2.1.1 filter intact.
	if e, ok := b.hosts.GetKey(src, now); ok {
		switch {
		case e.Port == in:
			if establishing && b.IsEdge(in) {
				b.hosts.LearnKey(src, in, now)
			} else {
				b.hosts.RefreshKey(src, now)
			}
		case e.Guarded(now):
			b.stats.SrcPortDrop++
			return
		case establishing:
			// A reply from a new direction re-establishes (repair).
			if b.IsEdge(in) {
				b.hosts.LearnKey(src, in, now)
			} else {
				b.hosts.LockKey(src, in, now)
			}
		default:
			// Data violating the source binding outside any race window:
			// unlike core there is no per-host forwarding state to
			// protect, so the stale binding is simply dropped — the pair
			// machinery below (miss → repair) restores the conversation.
			b.hosts.DeleteKey(src)
		}
	} else if b.IsEdge(in) {
		b.hosts.LearnKey(src, in, now)
	}

	if establishing {
		b.confirmPair(in, f, v, now)
		return
	}

	// Data: the pair table is the only forwarding state.
	pk := pairOf(src, dst)
	if e, ok := b.pairs.Get(pk, now); ok {
		if e.Port == in || b.SameNeighbor(e.Port, in) {
			b.stats.HairpinDrop++
			return
		}
		b.pairs.Refresh(pk, now)
		b.stats.Forwarded++
		e.Port.SendFrame(f)
		return
	}
	// Edge shortcut: the destination hangs off this bridge — deliver and
	// learn the pair (a one-hop path cannot loop).
	if he, ok := b.hosts.GetKey(dst, now); ok && b.IsEdge(he.Port) && he.Port != in {
		b.pairs.Learn(pk, he.Port, now)
		b.stats.EdgeDelivered++
		he.Port.SendFrame(f)
		return
	}
	b.startRepair(f, v, now)
}

// confirmPair routes an establishing reply (frame src = the answering
// station D, dst = the flow source S) toward S and writes the pair state
// for both directions: frames S→D leave where the reply arrived, frames
// D→S leave where it departs. This is the step that turns the discovery
// race's transient locks into per-pair forwarding state along exactly the
// winning path — and nowhere else.
func (b *Bridge) confirmPair(in *netsim.Port, f *netsim.Frame, v *layers.FrameView, now time.Duration) {
	src, dst := v.SrcKey, v.DstKey // src = D (answering), dst = S (requesting)
	var out *netsim.Port
	if e, ok := b.hosts.GetKey(dst, now); ok && e.Port != in && !b.SameNeighbor(e.Port, in) {
		out = e.Port
	} else if e, ok := b.pairs.Get(pairOf(src, dst), now); ok && e.Port != in && !b.SameNeighbor(e.Port, in) {
		// No live host lock (late reply): fall back to the existing
		// reverse-pair path if one survives.
		out = e.Port
	}
	if out == nil {
		// Nowhere to route the confirmation; the requester will retry.
		b.stats.MissDrop++
		return
	}
	b.pairs.Learn(pairOf(dst, src), in, now) // S→D exits via the reply's ingress
	b.pairs.Learn(pairOf(src, dst), out, now)
	b.stats.PairsConfirmed++
	// Release anything buffered for S→D now that the path exists.
	b.completeRepair(pairOf(dst, src), in, now)
	b.stats.Forwarded++
	out.SendFrame(f)
}

// startRepair buffers a missed frame and floods a PathRequest for the
// pair. Unlike core there is no PathFail walk toward the source: the
// request always floods from the miss bridge, sourced from the flow's
// source MAC so the per-source race relocks reply routing fabric-wide.
func (b *Bridge) startRepair(f *netsim.Frame, v *layers.FrameView, now time.Duration) {
	pk := pairOf(v.SrcKey, v.DstKey)
	r, pending := b.repairs[pk]
	if !pending {
		r = &pairRepair{nonce: b.Rand().Uint32()}
		b.repairs[pk] = r
		b.stats.RepairsStarted++
		r.timer = b.repairWheel().After(b.cfg.RepairTimeout, func() {
			b.stats.RepairDropped += uint64(len(r.buffered))
			for _, bf := range r.buffered {
				bf.Release()
			}
			r.buffered = nil
			delete(b.repairs, pk)
		})
		frame, err := layers.Serialize(
			// Sourced from the flow's source so the locking race works
			// unchanged; hosts never see it (bridges consume PathCtl).
			&layers.Ethernet{Dst: layers.BroadcastMAC, Src: v.Src, EtherType: layers.EtherTypePathCtl},
			&layers.PathCtl{Type: layers.PathCtlRequest, BridgeID: uint64(b.NumID()), Src: v.Src, Dst: v.Dst, Nonce: r.nonce},
		)
		if err != nil {
			panic("flowpath: serialize PathRequest: " + err.Error())
		}
		b.stats.PathRequestsSent++
		var except *netsim.Port
		if e, ok := b.hosts.GetKey(v.SrcKey, now); ok {
			// Guard the source's binding so our own returning flood
			// cannot steal it (core.originatePathRequest's rule).
			b.hosts.GuardKey(v.SrcKey, now)
			except = e.Port
		}
		b.stats.BroadcastRelayed++
		b.FloodBytesExcept(except, frame)
	}
	if len(r.buffered) >= b.cfg.RepairBuffer {
		b.stats.RepairDropped++
		return
	}
	r.buffered = append(r.buffered, f.Retain())
}

// completeRepair releases frames buffered for pk out the confirmed port.
func (b *Bridge) completeRepair(pk PairKey, out *netsim.Port, _ time.Duration) {
	r, ok := b.repairs[pk]
	if !ok {
		return
	}
	delete(b.repairs, pk)
	b.repairWheel().Stop(r.timer)
	for _, f := range r.buffered {
		b.stats.RepairReleased++
		b.stats.Forwarded++
		out.SendFrame(f)
		f.Release()
	}
	r.buffered = nil
}

// answerPathRequest replies to a pair PathRequest when the requested
// destination hangs off one of this bridge's edge ports — the durable
// edge host table is what makes this possible after the transient locks
// of the original exchange have long expired.
func (b *Bridge) answerPathRequest(in *netsim.Port, v *layers.FrameView, now time.Duration) bool {
	if v.Ctl.Type != layers.PathCtlRequest {
		return false
	}
	ctl := &v.Ctl
	e, ok := b.hosts.Get(ctl.Dst, now)
	if !ok || !b.IsEdge(e.Port) || e.Port == in {
		return false
	}
	reply, err := layers.Serialize(
		&layers.Ethernet{Dst: ctl.Src, Src: ctl.Dst, EtherType: layers.EtherTypePathCtl},
		&layers.PathCtl{Type: layers.PathCtlReply, BridgeID: uint64(b.NumID()), Src: ctl.Src, Dst: ctl.Dst, Nonce: ctl.Nonce},
	)
	if err != nil {
		panic("flowpath: serialize PathReply: " + err.Error())
	}
	b.stats.PathRepliesSent++
	// The request just locked Src to the ingress; the reply will retrace
	// it, confirming the pair at every hop. The terminal hops are ours:
	// write both directions now so data released upstream completes the
	// path (Src→Dst out the edge port, Dst→Src back out the ingress).
	b.pairs.Learn(pairOf(ctl.Src.Uint64(), ctl.Dst.Uint64()), e.Port, now)
	b.pairs.Learn(pairOf(ctl.Dst.Uint64(), ctl.Src.Uint64()), in, now)
	in.Send(reply)
	// Release anything we were buffering for the pair ourselves.
	b.completeRepair(pairOf(ctl.Src.Uint64(), ctl.Dst.Uint64()), e.Port, now)
	return true
}

var _ bridge.Protocol = (*Bridge)(nil)
var _ netsim.Node = (*Bridge)(nil)
