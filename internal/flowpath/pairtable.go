// Package flowpath implements the finer-grained members of the All-Path
// family from the scalability study (Rojas et al., "All-Path Routing
// Protocols: Analysis of Scalability and Load Balancing Capabilities for
// Ethernet Networks"; PAPERS.md): Flow-Path, which locks one path per
// {source, destination} host pair on the first frame of the flow, and
// TCP-Path, which additionally races a fresh path per TCP connection
// (keyed by the 4-tuple) and falls back to ARP-Path semantics for
// everything that is not TCP.
//
// Both register through the topo protocol registry in init() — the
// builder, the fabric Spec codec and every harness pick them up by name
// ("flowpath", "tcppath") with no switch anywhere — which is exactly the
// out-of-tree shape the registry exists for. See DESIGN.md §10 for the
// semantics and the table-size trade-off the allpath experiment measures.
package flowpath

import (
	"time"

	"repro/internal/netsim"
)

// PairKey is a directed forwarding key: two packed 64-bit halves. For
// Flow-Path pairs the halves are the packed source and destination MACs
// (layers.MAC.Uint64 — exact, no hashing); for TCP-Path connections they
// pack the IPv4 addresses and the TCP ports. Direction matters: (a, b)
// keys frames travelling a→b, and the reverse path is a separate entry.
type PairKey struct {
	Hi, Lo uint64
}

// EntryState mirrors the ARP-Path locking states for pair entries.
type EntryState uint8

// Pair entry states.
const (
	// StateLocked marks a pair bound to the port where the first copy of
	// a discovery flood arrived; the race window filters later copies.
	StateLocked EntryState = iota
	// StateLearned marks a confirmed pair path (a reply traversed it, or
	// traffic refreshed it).
	StateLearned
)

// Entry is one pair binding.
type Entry struct {
	Port    *netsim.Port
	State   EntryState
	Expires time.Duration
	// LockedUntil is the end of the race window; while it lies in the
	// future the binding must not move (§2.1.1 applied per pair).
	LockedUntil time.Duration
}

// Guarded reports whether the race window is still open at now.
func (e Entry) Guarded(now time.Duration) bool { return now < e.LockedUntil }

// pairEntry is the stored form: the public Entry plus the port generation
// at bind time, so FlushPort invalidates per-port in O(1) exactly like
// core.LockTable.
type pairEntry struct {
	Entry
	gen uint32
	ps  *pairPortState
}

type pairPortState struct {
	gen  uint32
	live int
}

// PairTable is the Flow-Path forwarding table: directed PairKey → (port,
// locked|learned, expiry). It reimplements core.LockTable's semantics
// over 128-bit keys — the whole point of the variant is that entries are
// per pair (or per connection), so the 64-bit-packed-MAC table cannot
// carry them.
type PairTable struct {
	lockTimeout    time.Duration
	learnedTimeout time.Duration
	entries        map[PairKey]pairEntry
	ports          map[*netsim.Port]*pairPortState
	resident       int
}

// NewPairTable builds an empty table with the race window and the
// confirmed-entry lifetime.
func NewPairTable(lockTimeout, learnedTimeout time.Duration) *PairTable {
	if lockTimeout <= 0 || learnedTimeout <= 0 {
		panic("flowpath: timeouts must be positive")
	}
	return &PairTable{
		lockTimeout:    lockTimeout,
		learnedTimeout: learnedTimeout,
		entries:        make(map[PairKey]pairEntry),
		ports:          make(map[*netsim.Port]*pairPortState),
	}
}

func (t *PairTable) port(p *netsim.Port) *pairPortState {
	st, ok := t.ports[p]
	if !ok {
		st = &pairPortState{}
		t.ports[p] = st
	}
	return st
}

func (t *PairTable) dead(e pairEntry, now time.Duration) bool {
	return e.Expires <= now || e.gen != e.ps.gen
}

func (t *PairTable) evict(k PairKey, e pairEntry) {
	if e.gen == e.ps.gen {
		e.ps.live--
		t.resident--
	}
	delete(t.entries, k)
}

func (t *PairTable) store(k PairKey, old pairEntry, hadOld bool, e Entry) {
	if hadOld && old.gen == old.ps.gen {
		old.ps.live--
		t.resident--
	}
	st := t.port(e.Port)
	st.live++
	t.resident++
	t.entries[k] = pairEntry{Entry: e, gen: st.gen, ps: st}
}

// Get returns the live entry for k, evicting lazily.
func (t *PairTable) Get(k PairKey, now time.Duration) (Entry, bool) {
	e, ok := t.entries[k]
	if !ok {
		return Entry{}, false
	}
	if t.dead(e, now) {
		t.evict(k, e)
		return Entry{}, false
	}
	return e.Entry, true
}

// Lock binds k to port in the locked state, (re)starting the race window.
func (t *PairTable) Lock(k PairKey, port *netsim.Port, now time.Duration) {
	old, hadOld := t.entries[k]
	t.store(k, old, hadOld, Entry{
		Port:        port,
		State:       StateLocked,
		Expires:     now + t.lockTimeout,
		LockedUntil: now + t.lockTimeout,
	})
}

// Learn binds k to port in the learned state. A confirmation on the
// entry's existing port preserves the remaining race window so late flood
// copies stay filtered (core.LockTable.LearnKey's rule).
func (t *PairTable) Learn(k PairKey, port *netsim.Port, now time.Duration) {
	old, hadOld := t.entries[k]
	lockedUntil := time.Duration(0)
	if hadOld && old.Port == port && !t.dead(old, now) {
		lockedUntil = old.LockedUntil
	}
	t.store(k, old, hadOld, Entry{
		Port:        port,
		State:       StateLearned,
		Expires:     now + t.learnedTimeout,
		LockedUntil: lockedUntil,
	})
}

// Refresh extends the current entry's lifetime without moving it.
func (t *PairTable) Refresh(k PairKey, now time.Duration) {
	e, ok := t.entries[k]
	if !ok {
		return
	}
	if t.dead(e, now) {
		t.evict(k, e)
		return
	}
	switch e.State {
	case StateLocked:
		e.Expires = now + t.lockTimeout
	case StateLearned:
		e.Expires = now + t.learnedTimeout
	}
	t.entries[k] = e
}

// Delete removes k's entry.
func (t *PairTable) Delete(k PairKey) {
	if e, ok := t.entries[k]; ok {
		t.evict(k, e)
	}
}

// FlushPort invalidates every entry bound to port in O(1) by advancing
// the port's generation; returns the number invalidated.
func (t *PairTable) FlushPort(port *netsim.Port) int {
	st := t.port(port)
	n := st.live
	st.gen++
	st.live = 0
	t.resident -= n
	return n
}

// Len returns the number of live-generation entries (expired-but-
// untouched included, like core.LockTable.Len).
func (t *PairTable) Len() int { return t.resident }

// Reset drops everything (bridge restart).
func (t *PairTable) Reset() {
	clear(t.entries)
	clear(t.ports)
	t.resident = 0
}

// Snapshot returns the live entries; the scenario checker walks them per
// directed pair, and the allpath experiment counts them.
func (t *PairTable) Snapshot(now time.Duration) map[PairKey]Entry {
	out := make(map[PairKey]Entry, len(t.entries))
	for k, e := range t.entries {
		if !t.dead(e, now) {
			out[k] = e.Entry
		}
	}
	return out
}
