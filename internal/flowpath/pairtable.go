// Package flowpath implements the finer-grained members of the All-Path
// family from the scalability study (Rojas et al., "All-Path Routing
// Protocols: Analysis of Scalability and Load Balancing Capabilities for
// Ethernet Networks"; PAPERS.md): Flow-Path, which locks one path per
// {source, destination} host pair on the first frame of the flow, and
// TCP-Path, which additionally races a fresh path per TCP connection
// (keyed by the 4-tuple) and falls back to ARP-Path semantics for
// everything that is not TCP.
//
// Both register through the topo protocol registry in init() — the
// builder, the fabric Spec codec and every harness pick them up by name
// ("flowpath", "tcppath") with no switch anywhere — which is exactly the
// out-of-tree shape the registry exists for. See DESIGN.md §10 for the
// semantics and the table-size trade-off the allpath experiment measures.
package flowpath

import (
	"time"

	"repro/internal/layers"
	"repro/internal/netsim"
	"repro/internal/tables"
)

// PairKey is a directed forwarding key: two packed 64-bit halves. For
// Flow-Path pairs the halves are the packed source and destination MACs
// (layers.MAC.Uint64 — exact, no hashing); for TCP-Path connections they
// pack the IPv4 addresses and the TCP ports. Direction matters: (a, b)
// keys frames travelling a→b, and the reverse path is a separate entry.
type PairKey struct {
	Hi, Lo uint64
}

// EntryState mirrors the ARP-Path locking states for pair entries.
type EntryState uint8

// Pair entry states.
const (
	// StateLocked marks a pair bound to the port where the first copy of
	// a discovery flood arrived; the race window filters later copies.
	StateLocked EntryState = iota
	// StateLearned marks a confirmed pair path (a reply traversed it, or
	// traffic refreshed it).
	StateLearned
)

// Entry is one pair binding.
type Entry struct {
	Port    *netsim.Port
	State   EntryState
	Expires time.Duration
	// LockedUntil is the end of the race window; while it lies in the
	// future the binding must not move (§2.1.1 applied per pair).
	LockedUntil time.Duration
}

// Guarded reports whether the race window is still open at now.
func (e Entry) Guarded(now time.Duration) bool { return now < e.LockedUntil }

// pairEntry is the stored form: the public Entry plus the port generation
// at bind time, so FlushPort invalidates per-port in O(1) exactly like
// core.LockTable.
type pairEntry struct {
	Entry
	gen uint32
	ps  *pairPortState
	th  tables.Handle // recency-tracker handle; 0 when untracked
}

type pairPortState struct {
	gen  uint32
	live int
}

// PairTable is the Flow-Path forwarding table: directed PairKey → (port,
// locked|learned, expiry). It reimplements core.LockTable's semantics
// over 128-bit keys — the whole point of the variant is that entries are
// per pair (or per connection), so the 64-bit-packed-MAC table cannot
// carry them.
//
// Like core.LockTable it supports a capacity bound with LRU/clock
// eviction and runs the amortized corpse sweep (DESIGN.md §12). Per-key
// state is where the All-Path scalability study says the memory bill
// arrives, so this table is the one the bound exists for.
type PairTable struct {
	lockTimeout    time.Duration
	learnedTimeout time.Duration
	capacity       int
	macKeys        bool // both key halves are packed MACs: reject junk halves
	tracker        *tables.Tracker[PairKey]
	entries        map[PairKey]pairEntry
	ports          map[*netsim.Port]*pairPortState
	resident       int

	evictions uint64
	peak      int
	nextSweep time.Duration

	// One-slot port cache, as in core.LockTable: stores land on a handful
	// of ports in runs.
	lastPort *netsim.Port
	lastPS   *pairPortState
}

// NewPairTable builds an empty unbounded table with the race window and
// the confirmed-entry lifetime, keys unchecked (TCP-Path packs IP/port
// tuples into PairKey, so MAC junk rules do not apply).
func NewPairTable(lockTimeout, learnedTimeout time.Duration) *PairTable {
	return NewBoundedPairTable(lockTimeout, learnedTimeout, tables.Config{}, false)
}

// NewBoundedPairTable builds an empty table with a capacity bound and
// eviction policy. macKeys declares that both key halves are packed MACs,
// enabling the junk-key guard core.LockTable applies (multicast or zero
// halves never pin a slot).
func NewBoundedPairTable(lockTimeout, learnedTimeout time.Duration, bound tables.Config, macKeys bool) *PairTable {
	if lockTimeout <= 0 || learnedTimeout <= 0 {
		panic("flowpath: timeouts must be positive")
	}
	if err := bound.Validate(); err != nil {
		panic("flowpath: " + err.Error())
	}
	t := &PairTable{
		lockTimeout:    lockTimeout,
		learnedTimeout: learnedTimeout,
		capacity:       bound.Capacity,
		macKeys:        macKeys,
		entries:        make(map[PairKey]pairEntry),
		ports:          make(map[*netsim.Port]*pairPortState),
	}
	if bound.Tracked() {
		t.tracker = tables.NewTracker[PairKey](bound.Policy)
	}
	return t
}

// junk reports whether a MAC-keyed pair contains a half no locking table
// may bind: a multicast/broadcast address or the zero MAC (LockTable's
// LockKey guard, applied to both halves).
func (t *PairTable) junk(k PairKey) bool {
	if !t.macKeys {
		return false
	}
	return layers.KeyIsMulticast(k.Hi) || k.Hi == 0 ||
		layers.KeyIsMulticast(k.Lo) || k.Lo == 0
}

func (t *PairTable) port(p *netsim.Port) *pairPortState {
	if p == t.lastPort {
		return t.lastPS
	}
	st, ok := t.ports[p]
	if !ok {
		st = &pairPortState{}
		t.ports[p] = st
	}
	t.lastPort, t.lastPS = p, st
	return st
}

func (t *PairTable) dead(e pairEntry, now time.Duration) bool {
	return e.Expires <= now || e.gen != e.ps.gen
}

func (t *PairTable) evict(k PairKey, e pairEntry) {
	if e.gen == e.ps.gen {
		e.ps.live--
		t.resident--
	}
	if t.tracker != nil {
		t.tracker.Remove(e.th)
	}
	delete(t.entries, k)
}

// maybeSweep runs the amortized corpse sweep (one full FlushExpired per
// learned timeout), called before the caller snapshots the previous entry.
func (t *PairTable) maybeSweep(now time.Duration) {
	if now >= t.nextSweep {
		t.FlushExpired(now)
		t.nextSweep = now + t.learnedTimeout
	}
}

// makeRoom enforces the capacity bound before a new key insert: reclaim
// dead victims for free, force-evict live unguarded ones, never touch an
// entry inside its race window (admit over capacity instead, after at
// most tables.RejectBudget guarded skips — see LockTable.makeRoom).
func (t *PairTable) makeRoom(now time.Duration) {
	if t.tracker == nil || t.capacity <= 0 {
		return
	}
	for rejects := tables.RejectBudget; len(t.entries) >= t.capacity; {
		h, ok := t.tracker.Victim()
		if !ok {
			return
		}
		k := t.tracker.Key(h)
		e := t.entries[k]
		switch {
		case t.dead(e, now):
			t.evict(k, e)
		case !e.Guarded(now):
			t.evictions++
			t.evict(k, e)
		default:
			t.tracker.Reject(h)
			if rejects--; rejects <= 0 {
				return
			}
		}
	}
}

func (t *PairTable) store(k PairKey, old pairEntry, hadOld bool, e Entry, now time.Duration) {
	if hadOld && old.gen == old.ps.gen {
		old.ps.live--
		t.resident--
	}
	if !hadOld && t.capacity > 0 && len(t.entries) >= t.capacity {
		t.makeRoom(now)
	}
	st := t.port(e.Port)
	st.live++
	t.resident++
	ne := pairEntry{Entry: e, gen: st.gen, ps: st}
	if t.tracker != nil {
		if hadOld {
			ne.th = old.th
			t.tracker.Touch(ne.th)
		} else {
			ne.th = t.tracker.Insert(k)
		}
	}
	t.entries[k] = ne
	if len(t.entries) > t.peak {
		t.peak = len(t.entries)
	}
}

// Get returns the live entry for k, evicting lazily.
func (t *PairTable) Get(k PairKey, now time.Duration) (Entry, bool) {
	e, ok := t.entries[k]
	if !ok {
		return Entry{}, false
	}
	if t.dead(e, now) {
		t.evict(k, e)
		return Entry{}, false
	}
	if t.tracker != nil {
		t.tracker.Touch(e.th)
	}
	return e.Entry, true
}

// Lock binds k to port in the locked state, (re)starting the race window.
func (t *PairTable) Lock(k PairKey, port *netsim.Port, now time.Duration) {
	if t.junk(k) {
		return
	}
	t.maybeSweep(now)
	old, hadOld := t.entries[k]
	t.store(k, old, hadOld, Entry{
		Port:        port,
		State:       StateLocked,
		Expires:     now + t.lockTimeout,
		LockedUntil: now + t.lockTimeout,
	}, now)
}

// Learn binds k to port in the learned state. A confirmation on the
// entry's existing port preserves the remaining race window so late flood
// copies stay filtered (core.LockTable.LearnKey's rule).
func (t *PairTable) Learn(k PairKey, port *netsim.Port, now time.Duration) {
	if t.junk(k) {
		return
	}
	t.maybeSweep(now)
	old, hadOld := t.entries[k]
	lockedUntil := time.Duration(0)
	if hadOld && old.Port == port && !t.dead(old, now) {
		lockedUntil = old.LockedUntil
	}
	t.store(k, old, hadOld, Entry{
		Port:        port,
		State:       StateLearned,
		Expires:     now + t.learnedTimeout,
		LockedUntil: lockedUntil,
	}, now)
}

// Refresh extends the current entry's lifetime without moving it.
func (t *PairTable) Refresh(k PairKey, now time.Duration) {
	e, ok := t.entries[k]
	if !ok {
		return
	}
	if t.dead(e, now) {
		t.evict(k, e)
		return
	}
	switch e.State {
	case StateLocked:
		e.Expires = now + t.lockTimeout
	case StateLearned:
		e.Expires = now + t.learnedTimeout
	}
	if t.tracker != nil {
		t.tracker.Touch(e.th)
	}
	t.entries[k] = e
}

// Delete removes k's entry.
func (t *PairTable) Delete(k PairKey) {
	if e, ok := t.entries[k]; ok {
		t.evict(k, e)
	}
}

// FlushPort invalidates every entry bound to port in O(1) by advancing
// the port's generation; returns the number invalidated.
func (t *PairTable) FlushPort(port *netsim.Port) int {
	st := t.port(port)
	n := st.live
	st.gen++
	st.live = 0
	t.resident -= n
	return n
}

// Len returns the number of live-generation entries (expired-but-
// untouched included, like core.LockTable.Len).
func (t *PairTable) Len() int { return t.resident }

// Entries returns the number of map entries including flushed-generation
// corpses: actual memory, the leak-regression quantity.
func (t *PairTable) Entries() int { return len(t.entries) }

// PortStates returns the number of per-port side-table records.
func (t *PairTable) PortStates() int { return len(t.ports) }

// Evictions returns the cumulative count of live entries force-evicted by
// the capacity bound.
func (t *PairTable) Evictions() uint64 { return t.evictions }

// PeakEntries returns the high-water mark of Entries().
func (t *PairTable) PeakEntries() int { return t.peak }

// Reset drops everything (bridge restart). Lifetime statistics survive.
func (t *PairTable) Reset() {
	clear(t.entries)
	clear(t.ports)
	t.resident = 0
	t.nextSweep = 0
	t.lastPort = nil
	t.lastPS = nil
	if t.tracker != nil {
		t.tracker.Reset()
	}
}

// FlushExpired sweeps all expired and flushed entries eagerly, then
// reclaims port-state records with no surviving entries (post-sweep a zero
// live count proves nothing references the record). This is the corpse
// reclamation core.LockTable always had and PairTable lacked — without it
// a long run of distinct TCP connections (keys that are never reused)
// plus FlushPort churn grows len(entries) without bound while Len()
// reports a small number.
func (t *PairTable) FlushExpired(now time.Duration) {
	for k, e := range t.entries {
		if t.dead(e, now) {
			t.evict(k, e)
		}
	}
	for p, st := range t.ports {
		if st.live == 0 {
			if t.lastPort == p {
				t.lastPort = nil
				t.lastPS = nil
			}
			delete(t.ports, p)
		}
	}
}

// Snapshot returns the live entries; the scenario checker walks them per
// directed pair, and the allpath experiment counts them.
func (t *PairTable) Snapshot(now time.Duration) map[PairKey]Entry {
	out := make(map[PairKey]Entry, len(t.entries))
	for k, e := range t.entries {
		if !t.dead(e, now) {
			out[k] = e.Entry
		}
	}
	return out
}
