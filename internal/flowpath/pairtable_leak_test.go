package flowpath

import (
	"fmt"
	"testing"
	"time"

	hostpkg "repro/internal/host"
	"repro/internal/layers"
	"repro/internal/netsim"
	"repro/internal/tables"
)

// leakPorts returns n distinct live ports (one hub host cabled to n
// peers; the hub's end of each link is the port).
func leakPorts(n int) []*netsim.Port {
	net := netsim.NewNetwork(1)
	hub := hostpkg.New(net, "hub", 1)
	ports := make([]*netsim.Port, n)
	for i := range ports {
		peer := hostpkg.New(net, fmt.Sprintf("p%d", i+1), i+2)
		ports[i] = net.Connect(hub, peer, netsim.DefaultLinkConfig()).A()
	}
	return ports
}

// TestPairTableCorpseSweepBoundsMap is the regression test for the
// table-leak bug: before PairTable had FlushExpired and the amortized
// sweep, a TCP-Path conversation mix of distinct connections plus
// FlushPort churn kept Len() honest while len(entries) grew without
// bound — every generation-killed and expired entry stayed resident as a
// map corpse forever. The sweep must keep the map itself (Entries(), not
// just Len()) bounded by the working set.
func TestPairTableCorpseSweepBoundsMap(t *testing.T) {
	ports := leakPorts(2)
	// Short confirmed lifetime so expiry churns quickly; the sweep period
	// equals it.
	const lifetime = 10 * time.Millisecond
	tb := NewPairTable(time.Millisecond, lifetime)

	now := time.Duration(0)
	maxEntries := 0
	for i := 0; i < 50_000; i++ {
		// Each iteration is a distinct connection (fresh key), as under
		// million-conversation churn.
		k := PairKey{Hi: uint64(i + 1), Lo: uint64(i) << 32}
		tb.Learn(k, ports[i%2], now)
		if i%100 == 99 {
			// Link flap: generation-kill everything on one port. The
			// corpses this creates are exactly what leaked.
			tb.FlushPort(ports[0])
		}
		now += 100 * time.Microsecond
		if tb.Entries() > maxEntries {
			maxEntries = tb.Entries()
		}
	}
	// The working set is at most lifetime/spacing = 100 live entries plus
	// one sweep period of corpses — far below the 50k keys inserted. Give
	// generous slack; the pre-fix behaviour was ~50k.
	if maxEntries > 1000 {
		t.Fatalf("map grew to %d entries under churn (want bounded ≈ working set); corpses are leaking", maxEntries)
	}
	if tb.Len() > tb.Entries() {
		t.Fatalf("resident %d exceeds map size %d", tb.Len(), tb.Entries())
	}
}

// TestPairTablePortStateReclaim is the side-table leak regression: the
// per-port generation records must be reclaimed once no live entry
// references them, both for ports that vanish from the workload and
// across repeated link flaps.
func TestPairTablePortStateReclaim(t *testing.T) {
	const n = 64
	ports := leakPorts(n)
	tb := NewPairTable(time.Millisecond, 10*time.Millisecond)

	// One entry per port, then let everything expire: a full sweep must
	// drop every port record along with the corpses.
	for i, p := range ports {
		tb.Learn(PairKey{Hi: uint64(i + 1), Lo: 1}, p, 0)
	}
	if got := tb.PortStates(); got != n {
		t.Fatalf("PortStates = %d, want %d", got, n)
	}
	tb.FlushExpired(time.Second)
	if got := tb.PortStates(); got != 0 {
		t.Fatalf("PortStates = %d after all entries expired, want 0 (port records leak)", got)
	}

	// Repeated flaps on one port: flush, re-learn, flush, ... The ports
	// map must stay at one record, not accumulate generations.
	for flap := 0; flap < 100; flap++ {
		tb.Learn(PairKey{Hi: 7, Lo: uint64(flap)}, ports[0], time.Second)
		tb.FlushPort(ports[0])
	}
	tb.FlushExpired(2 * time.Second)
	if got := tb.PortStates(); got != 0 {
		t.Fatalf("PortStates = %d after 100 flaps and a sweep, want 0", got)
	}
	// The one-slot port cache must not resurrect the reclaimed record.
	if tb.lastPS != nil || tb.lastPort != nil {
		t.Fatal("port cache still points at a reclaimed record")
	}
	tb.Learn(PairKey{Hi: 8, Lo: 8}, ports[0], 3*time.Second)
	if e, ok := tb.Get(PairKey{Hi: 8, Lo: 8}, 3*time.Second); !ok || e.Port != ports[0] {
		t.Fatal("learn after port-state reclaim failed")
	}
}

// TestPairTableJunkKeyGuard: MAC-keyed pair tables must reject the same
// halves LockTable.LockKey rejects — multicast/broadcast and the zero
// MAC — while tuple-keyed tables (TCP-Path connections) accept zero
// halves as legal encodings.
func TestPairTableJunkKeyGuard(t *testing.T) {
	ports := leakPorts(1)
	bcast := layers.BroadcastMAC.Uint64()
	mcast := layers.MAC{0x01, 0x00, 0x5E, 0, 0, 1}.Uint64()
	good := layers.HostMAC(1).Uint64()

	macTab := NewBoundedPairTable(time.Millisecond, time.Second, tables.Config{}, true)
	for _, k := range []PairKey{
		{Hi: bcast, Lo: good}, // broadcast source half
		{Hi: good, Lo: bcast}, // broadcast destination half
		{Hi: mcast, Lo: good},
		{Hi: good, Lo: mcast},
		{Hi: 0, Lo: good}, // zero MAC halves
		{Hi: good, Lo: 0},
	} {
		macTab.Lock(k, ports[0], 0)
		macTab.Learn(k, ports[0], 0)
		if _, ok := macTab.Get(k, 0); ok {
			t.Fatalf("junk pair %x/%x was admitted to a MAC-keyed table", k.Hi, k.Lo)
		}
	}
	if macTab.Len() != 0 || macTab.Entries() != 0 {
		t.Fatalf("junk keys pinned %d entries (%d resident)", macTab.Entries(), macTab.Len())
	}
	macTab.Learn(PairKey{Hi: good, Lo: layers.HostMAC(2).Uint64()}, ports[0], 0)
	if macTab.Len() != 1 {
		t.Fatal("legitimate MAC pair rejected")
	}

	// Tuple-keyed (TCP-Path): zero halves are legal 4-tuple encodings.
	connTab := NewBoundedPairTable(time.Millisecond, time.Second, tables.Config{}, false)
	connTab.Learn(PairKey{Hi: 0, Lo: 443}, ports[0], 0)
	if _, ok := connTab.Get(PairKey{Hi: 0, Lo: 443}, 0); !ok {
		t.Fatal("tuple-keyed table rejected a zero half")
	}
}
