package flowpath

import (
	"encoding/binary"
	"time"

	"repro/internal/bridge"
	"repro/internal/core"
	"repro/internal/layers"
	"repro/internal/netsim"
	"repro/internal/tables"
)

// TCPConfig tunes a TCP-Path bridge: the embedded ARP-Path config for the
// fallback dataplane plus the per-connection knobs.
type TCPConfig struct {
	// ARPPath configures the fallback dataplane (everything non-TCP, and
	// TCP segments whose connection has no entry and is not opening).
	ARPPath core.Config
	// ConnLockTimeout is the SYN flood's race window.
	ConnLockTimeout time.Duration
	// ConnTimeout is the lifetime of confirmed connection entries;
	// segments refresh it.
	ConnTimeout time.Duration
	// ConnCapacity bounds the connection table (0 = unbounded). Per-
	// connection keys are where state grows fastest in the All-Path
	// family, so this is the bound that bites first. See DESIGN.md §12.
	ConnCapacity int
	// ConnPolicy is the connection-table eviction policy: "lru" or
	// "clock" ("" / "timeout" is the unbounded baseline).
	ConnPolicy string
}

// DefaultTCPConfig matches ARP-Path's timing.
func DefaultTCPConfig() TCPConfig {
	return TCPConfig{
		ARPPath:         core.DefaultConfig(),
		ConnLockTimeout: 200 * time.Millisecond,
		ConnTimeout:     120 * time.Second,
	}
}

// WithDefaults fills unset fields field-wise.
func (c TCPConfig) WithDefaults() TCPConfig {
	c.ARPPath = c.ARPPath.WithDefaults()
	d := DefaultTCPConfig()
	if c.ConnLockTimeout == 0 {
		c.ConnLockTimeout = d.ConnLockTimeout
	}
	if c.ConnTimeout == 0 {
		c.ConnTimeout = d.ConnTimeout
	}
	return c
}

// TCPStats counts the TCP-Path-specific events (the embedded ARP-Path
// dataplane keeps its own core.Stats).
type TCPStats struct {
	SynFloods     uint64 // opening segments flooded to race a path
	SynRaceDrops  uint64 // duplicate flood copies filtered
	SynDelivered  uint64 // opening segments terminated at the destination edge
	ConnConfirmed uint64 // connection entries confirmed by SYN|ACK
	ConnForwarded uint64 // segments forwarded on connection entries
	Fallbacks     uint64 // TCP segments handed to the ARP-Path dataplane
	ConnPurged    uint64 // connection entries flushed by link failures
}

// TCPPath is a TCP-Path bridge: per-TCP-connection paths keyed by the
// 4-tuple, established by flooding the connection's opening SYN exactly
// like an ARP discovery (first copy locks the reverse path, duplicates
// race-dropped, the SYN|ACK confirms hop by hop) — so each connection
// races its own path under the congestion of the moment, the study's load
// balancing axis. Everything that is not TCP, and any segment whose
// connection has no entry and is not an opener, falls back to the
// embedded, unmodified ARP-Path dataplane.
type TCPPath struct {
	*core.Bridge
	cfg   TCPConfig
	conns *PairTable
	stats TCPStats
}

// NewTCPPath creates a TCP-Path bridge.
func NewTCPPath(net *netsim.Network, name string, numID int, cfg TCPConfig) *TCPPath {
	if cfg.ConnLockTimeout <= 0 || cfg.ConnTimeout <= 0 {
		panic("flowpath: connection timeouts must be positive")
	}
	bound, err := tables.ParseConfig(cfg.ConnCapacity, cfg.ConnPolicy)
	if err != nil {
		panic("flowpath: " + err.Error())
	}
	t := &TCPPath{
		cfg: cfg,
		// Connection keys pack IPs and TCP ports, not MACs: no junk-key
		// guard (a zero half is a legal tuple encoding).
		conns: NewBoundedPairTable(cfg.ConnLockTimeout, cfg.ConnTimeout, bound, false),
	}
	// The chassis dispatches to t; t consumes TCP segments and delegates
	// the rest to the embedded ARP-Path protocol.
	t.Bridge = core.NewWithProtocol(net, name, numID, cfg.ARPPath, t)
	return t
}

// connKey packs a directed 4-tuple into a PairKey: exact, no hashing.
func connKey(v *layers.FrameView) PairKey {
	return PairKey{
		Hi: uint64(binary.BigEndian.Uint32(v.IPSrc[:]))<<32 | uint64(binary.BigEndian.Uint32(v.IPDst[:])),
		Lo: uint64(v.TCPSrcPort)<<16 | uint64(v.TCPDstPort),
	}
}

// reverseKey is the opposite direction's key.
func reverseKey(k PairKey) PairKey {
	return PairKey{
		Hi: k.Hi<<32 | k.Hi>>32,
		Lo: k.Lo<<16&0xFFFF0000 | k.Lo>>16&0xFFFF,
	}
}

// TCPStats returns the TCP-Path counters.
func (t *TCPPath) TCPStats() TCPStats { return t.stats }

// Conns exposes the connection table (experiments, tests).
func (t *TCPPath) Conns() *PairTable { return t.conns }

// ForwardingEntries reports resident forwarding state: the ARP-Path table
// plus the connection table.
func (t *TCPPath) ForwardingEntries() int { return t.Table().Len() + t.conns.Len() }

// OnStart implements bridge.Protocol.
func (t *TCPPath) OnStart() { t.Bridge.OnStart() }

// OnPortStatus implements bridge.Protocol: flush connections through the
// dead link, then let ARP-Path flush its own table.
func (t *TCPPath) OnPortStatus(p *netsim.Port, up bool) {
	if !up {
		t.stats.ConnPurged += uint64(t.conns.FlushPort(p))
	}
	t.Bridge.OnPortStatus(p, up)
}

// Restart clears the connection table along with everything ARP-Path
// loses in a power-cycle.
func (t *TCPPath) Restart() {
	t.conns.Reset()
	t.Bridge.Restart()
}

// OnFrame implements bridge.Protocol.
//
//fabric:hotpath
func (t *TCPPath) OnFrame(in *netsim.Port, f *netsim.Frame) {
	v := f.View()
	if !v.HasTCP || v.IsMulticast() {
		t.Bridge.OnFrame(in, f)
		return
	}
	t.handleTCP(in, f, v)
}

// handleTCP is the per-connection dataplane.
func (t *TCPPath) handleTCP(in *netsim.Port, f *netsim.Frame, v *layers.FrameView) {
	now := t.Now()
	k := connKey(v)

	if v.IsTCPSYN() {
		t.handleSYN(in, f, v, k, now)
		return
	}

	if e, ok := t.conns.Get(k, now); ok {
		if e.Port == in || t.SameNeighbor(e.Port, in) {
			// Hairpin on the connection entry: let ARP-Path decide (it
			// has its own hairpin/repair handling for the MAC pair).
			t.stats.Fallbacks++
			t.Bridge.OnFrame(in, f)
			return
		}
		if v.TCPFlags&(layers.TCPFlagSYN|layers.TCPFlagACK) == layers.TCPFlagSYN|layers.TCPFlagACK {
			// The SYN|ACK confirms the connection path hop by hop: its
			// own direction out the locked port, the opener's direction
			// back where it arrived.
			t.conns.Learn(k, e.Port, now)
			t.conns.Learn(reverseKey(k), in, now)
			t.stats.ConnConfirmed++
		} else {
			t.conns.Refresh(k, now)
		}
		t.stats.ConnForwarded++
		e.Port.SendFrame(f)
		return
	}

	// No connection entry (expired, flushed, or a mid-stream segment of a
	// connection opened before a restart): ARP-Path semantics.
	t.stats.Fallbacks++
	t.Bridge.OnFrame(in, f)
}

// handleSYN floods a connection opener with the ARP-Path race applied to
// the connection key: the first copy locks the reverse direction (the
// path the SYN|ACK will retrace) to its arrival port, duplicates are
// filtered, and the flood terminates at the destination's edge bridge.
func (t *TCPPath) handleSYN(in *netsim.Port, f *netsim.Frame, v *layers.FrameView, k PairKey, now time.Duration) {
	rk := reverseKey(k)
	if e, ok := t.conns.Get(rk, now); ok {
		switch {
		case e.Port == in:
			// Same port: a retransmitted opener — restart the race.
			t.conns.Lock(rk, in, now)
		case e.Guarded(now):
			// A slower flood copy: discard (§2.1.1 on the connection).
			t.stats.SynRaceDrops++
			return
		default:
			t.conns.Lock(rk, in, now)
		}
	} else {
		t.conns.Lock(rk, in, now)
	}

	// The embedded ARP-Path table knows the destination from the ARP
	// exchange that necessarily preceded the connection; an edge entry
	// for it terminates the flood here.
	if e, ok := t.EntryFor(v.Dst); ok && t.IsEdge(e.Port) && e.Port != in {
		// The destination hangs off this bridge: deliver the first copy
		// and pre-learn the opener's direction — the SYN|ACK will confirm
		// the rest of the path.
		t.conns.Learn(k, e.Port, now)
		t.stats.SynDelivered++
		e.Port.SendFrame(f)
		return
	}
	t.stats.SynFloods++
	t.FloodExcept(in, f)
}

var _ bridge.Protocol = (*TCPPath)(nil)
var _ netsim.Node = (*TCPPath)(nil)
