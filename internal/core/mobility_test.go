package core

import (
	"testing"
	"time"

	hostpkg "repro/internal/host"
	"repro/internal/netsim"
)

// TestHostMobilityGratuitousARP models a station re-homing from one edge
// bridge to another (laptop moved to a different wall jack): the old link
// dies, the new one comes up, the station announces itself with a
// gratuitous ARP, and the fabric re-locks its position — no bridge
// configuration, no spanning-tree reconvergence.
func TestHostMobilityGratuitousARP(t *testing.T) {
	net := netsim.NewNetwork(1)
	mob := hostpkg.New(net, "mob", 1)
	peer := hostpkg.New(net, "peer", 2)
	b1 := New(net, "b1", 1, DefaultConfig())
	b2 := New(net, "b2", 2, DefaultConfig())
	b3 := New(net, "b3", 3, DefaultConfig())
	cfg := netsim.DefaultLinkConfig()
	// Triangle b1-b2-b3; peer on b3; mob pre-cabled to b1 (up) and b2
	// (down) — the "other wall jack".
	net.Connect(b1, b2, cfg)
	net.Connect(b2, b3, cfg)
	net.Connect(b1, b3, cfg)
	net.Connect(peer, b3, cfg)
	oldJack := net.Connect(mob, b1, cfg)
	newJack := net.Connect(mob, b2, cfg)
	newJack.SetUp(false)
	for _, b := range []*Bridge{b1, b2, b3} {
		b.Start()
	}
	net.RunFor(time.Millisecond)

	// Establish connectivity from the original location.
	var rtt1 time.Duration
	net.Engine.At(net.Now(), func() {
		mob.Ping(peer.IP(), 0, time.Second, func(r hostpkg.PingResult) { rtt1 = r.RTT })
	})
	net.RunFor(2 * time.Second)
	if rtt1 <= 0 {
		t.Fatal("no connectivity before the move")
	}
	if e, ok := b1.EntryFor(mob.MAC()); !ok || !b1.IsEdge(e.Port) {
		t.Fatal("b1 should hold mob on an edge port")
	}

	// Move: old jack dies, new jack comes up, station announces itself.
	net.Engine.At(net.Now(), func() {
		oldJack.SetUp(false)
		newJack.SetUp(true)
	})
	net.Engine.At(net.Now()+10*time.Millisecond, func() { mob.AnnounceLocation() })
	net.RunFor(50 * time.Millisecond) // within the lock window

	// The announcement's race must have re-locked mob behind b2. (Nobody
	// answers a gratuitous ARP, so these locks stay unconfirmed and would
	// expire without traffic — the pings below confirm them.)
	if e, ok := b2.EntryFor(mob.MAC()); !ok || !b2.IsEdge(e.Port) {
		t.Fatal("b2 did not learn mob's new position from the gratuitous ARP")
	}
	if _, ok := b3.EntryFor(mob.MAC()); !ok {
		t.Fatal("the announcement flood did not reach b3")
	}

	// Bidirectional traffic from the new location, without any host
	// flushing caches (the peer's ARP cache still maps mob's IP to the
	// same MAC — only the fabric's idea of "where" changed).
	var rtt2 time.Duration
	net.Engine.At(net.Now(), func() {
		mob.Ping(peer.IP(), 0, time.Second, func(r hostpkg.PingResult) { rtt2 = r.RTT })
	})
	net.RunFor(2 * time.Second)
	if rtt2 <= 0 {
		t.Fatal("no connectivity after the move")
	}
	var rtt3 time.Duration
	net.Engine.At(net.Now(), func() {
		peer.Ping(mob.IP(), 0, time.Second, func(r hostpkg.PingResult) { rtt3 = r.RTT })
	})
	net.RunFor(2 * time.Second)
	if rtt3 <= 0 {
		t.Fatal("peer cannot reach the moved station")
	}
}

// TestMobilityNeedsAnnouncement documents the protocol's conservative
// rule: unicast frames from a source bound to a *different* port are
// discarded (§2.1.1 — that rule is what makes flooding loop-free), so a
// silently moved station is unreachable until it re-announces (gratuitous
// ARP, as every real OS sends on link-up) or re-ARPs. The second half of
// the test shows the re-ARP healing the path.
func TestMobilityNeedsAnnouncement(t *testing.T) {
	net := netsim.NewNetwork(1)
	mob := hostpkg.New(net, "mob", 1)
	peer := hostpkg.New(net, "peer", 2)
	b1 := New(net, "b1", 1, DefaultConfig())
	b2 := New(net, "b2", 2, DefaultConfig())
	cfg := netsim.DefaultLinkConfig()
	net.Connect(b1, b2, cfg)
	net.Connect(peer, b2, cfg)
	oldJack := net.Connect(mob, b1, cfg)
	newJack := net.Connect(mob, b2, cfg)
	newJack.SetUp(false)
	b1.Start()
	b2.Start()
	net.RunFor(time.Millisecond)

	net.Engine.At(net.Now(), func() {
		mob.Ping(peer.IP(), 0, time.Second, func(hostpkg.PingResult) {})
	})
	net.RunFor(time.Second)

	net.Engine.At(net.Now(), func() {
		oldJack.SetUp(false)
		newJack.SetUp(true)
	})
	net.RunFor(time.Millisecond)

	// mob transmits from the new jack WITHOUT announcing: b2 still binds
	// mob toward b1, so the frames are discarded as path violations.
	dropsBefore := b2.Stats().SrcPortDrop
	var rtt time.Duration
	net.Engine.At(net.Now(), func() {
		mob.Ping(peer.IP(), 0, time.Second, func(r hostpkg.PingResult) { rtt = r.RTT })
	})
	net.RunFor(2 * time.Second)
	if rtt > 0 {
		t.Fatal("silent move should not be reachable — the first-port rule must hold")
	}
	if b2.Stats().SrcPortDrop == dropsBefore {
		t.Fatal("mismatched-source frames were not counted as drops")
	}

	// A re-ARP (establishing broadcast) re-locks mob's position and heals
	// everything — this is what a host's ARP cache expiry does naturally.
	net.Engine.At(net.Now(), func() {
		mob.ARP().Flush()
		mob.Ping(peer.IP(), 0, time.Second, func(r hostpkg.PingResult) { rtt = r.RTT })
	})
	net.RunFor(2 * time.Second)
	if rtt <= 0 {
		t.Fatal("re-ARP did not heal the path after the move")
	}
	if e, ok := b2.EntryFor(mob.MAC()); !ok || !b2.IsEdge(e.Port) {
		t.Fatal("b2 did not re-learn the moved station")
	}
}
