package core

import (
	"testing"
	"time"

	hostpkg "repro/internal/host"
	"repro/internal/netsim"
)

// TestStaleARPSrcPortBlackholeRepairs is the deterministic regression for
// the liveness gap the scenario engine surfaced (ROADMAP open item,
// DESIGN.md §7 finding 2): a host with a warm ARP cache is silently
// blackholed after a later flood moves its locked position — the src-port
// discipline discards its unicasts (SrcPortDrop) and, before the fix,
// nothing triggered repair until the ARP cache expired.
//
// Topology (diamond with a slow and a fast branch, C attached to the far
// bridge):
//
//	A—S1—S2—S4—B      S1—S2, S2—S4: 50µs (slow branch)
//	   S1—S3—S4—C     S1—S3, S3—S4: 5µs  (fast branch)
//
// Sequence:
//  1. With the fast branch down, A resolves and pings B: every bridge
//     learns A and B along the slow branch.
//  2. The fast branch comes back; all race windows expire.
//  3. A resolves C. The ARP flood reaches S4 via the fast branch first, so
//     S4 re-locks A onto its S3-facing port, and C's unicast reply
//     confirms that binding (learned, long expiry).
//  4. After the race window closes, A — ARP cache for B still warm — pings
//     B again. The echo requests arrive at S4 on the S2-facing port while
//     A's entry points at S3: a non-guarded src-port violation on every
//     frame. Pre-fix this was a permanent blackhole; post-fix the bridge
//     buffers the frame and triggers repair toward the source, and the
//     pings must succeed.
func TestStaleARPSrcPortBlackholeRepairs(t *testing.T) {
	net := netsim.NewNetwork(11)
	cfg := netsim.DefaultLinkConfig()
	s1 := New(net, "S1", 1, DefaultConfig())
	s2 := New(net, "S2", 2, DefaultConfig())
	s3 := New(net, "S3", 3, DefaultConfig())
	s4 := New(net, "S4", 4, DefaultConfig())
	a := hostpkg.New(net, "A", 1)
	b := hostpkg.New(net, "B", 2)
	c := hostpkg.New(net, "C", 3)

	net.Connect(a, s1, cfg.WithDelay(time.Microsecond))
	slow1 := net.Connect(s1, s2, cfg.WithDelay(50*time.Microsecond))
	slow2 := net.Connect(s2, s4, cfg.WithDelay(50*time.Microsecond))
	fast1 := net.Connect(s1, s3, cfg.WithDelay(5*time.Microsecond))
	fast2 := net.Connect(s3, s4, cfg.WithDelay(5*time.Microsecond))
	net.Connect(s4, b, cfg.WithDelay(time.Microsecond))
	net.Connect(s4, c, cfg.WithDelay(time.Microsecond))
	_ = slow1
	_ = slow2

	for _, br := range []*Bridge{s1, s2, s3, s4} {
		br.Start()
	}
	net.RunFor(time.Millisecond)

	// Phase 1: fast branch dark; A's and B's positions lock along the slow
	// branch.
	fast1.SetUp(false)
	fast2.SetUp(false)
	ok1 := 0
	net.Engine.At(net.Now(), func() {
		a.Ping(b.IP(), 56, time.Second, func(r hostpkg.PingResult) {
			if r.Err == nil {
				ok1++
			}
		})
	})
	net.RunFor(50 * time.Millisecond)
	if ok1 != 1 {
		t.Fatalf("phase 1 ping failed (%d/1)", ok1)
	}

	// Phase 2: fast branch returns; let every lock and guard expire.
	fast1.SetUp(true)
	fast2.SetUp(true)
	net.RunFor(300 * time.Millisecond)

	// Phase 3: A resolves C. The flood wins the race into S4 over the fast
	// branch and C's reply confirms A's position there — on the "wrong"
	// port for the established A<->B path.
	ok3 := 0
	net.Engine.At(net.Now(), func() {
		a.Ping(c.IP(), 56, time.Second, func(r hostpkg.PingResult) {
			if r.Err == nil {
				ok3++
			}
		})
	})
	net.RunFor(50 * time.Millisecond)
	if ok3 != 1 {
		t.Fatalf("phase 3 ping to C failed (%d/1)", ok3)
	}
	if e, found := s4.EntryFor(a.MAC()); !found || e.Port.Link() != fast2 {
		t.Fatalf("precondition lost: S4's entry for A should point at the fast branch (found=%v)", found)
	}

	// Phase 4: race window over, ARP cache still warm — pre-fix, these
	// frames die at S4 forever.
	net.RunFor(300 * time.Millisecond)
	ok4 := 0
	net.Engine.At(net.Now(), func() {
		a.PingSeries(b.IP(), 3, 56, 20*time.Millisecond, time.Second, func(rs []hostpkg.PingResult) {
			for _, r := range rs {
				if r.Err == nil {
					ok4++
				}
			}
		})
	})
	net.RunFor(2 * time.Second)
	net.Run()

	st := s4.Stats()
	if st.SrcPortDrop == 0 || st.SrcViolRepairs == 0 {
		t.Fatalf("expected src-port violations to be observed and routed into repair at S4, got %+v", st)
	}
	if ok4 != 3 {
		t.Fatalf("warm-cache pings blackholed: %d/3 answered (S4 stats %+v)", ok4, st)
	}
	if live := net.LiveFrames(); live != 0 {
		t.Fatalf("%d frames still live after drain", live)
	}
}
