package core

import (
	"time"

	"repro/internal/layers"
	"repro/internal/netsim"
)

// proxyCache is the in-switch ARP Proxy of §2.2 (after EtherProxy [5]):
// edge bridges snoop ARP traffic, and when a broadcast request arrives for
// a binding they already know — with a live path to the owner — they
// convert the broadcast into a unicast request forwarded along that path.
// The owner still answers (so both hosts' caches stay consistent and the
// path entries refresh end to end), but the network-wide flood is
// suppressed.
type proxyCache struct {
	timeout time.Duration
	ip2mac  map[layers.Addr4]proxyEntry
	// nextSweep is when learn next walks the whole map to drop expired
	// bindings. Lookups already evict lazily, but a binding that is never
	// looked up again (a host that went quiet, a station that moved away)
	// used to stay resident forever; on a long-running fabric the map only
	// ever grew. One full sweep per timeout period bounds the map to the
	// bindings snooped inside the last two timeout windows at O(1)
	// amortized cost per learn.
	nextSweep time.Duration
}

type proxyEntry struct {
	mac     layers.MAC
	expires time.Duration
}

func newProxyCache(timeout time.Duration) *proxyCache {
	if timeout <= 0 {
		panic("core: proxy timeout must be positive")
	}
	return &proxyCache{timeout: timeout, ip2mac: make(map[layers.Addr4]proxyEntry)}
}

// learn records a sender binding, sweeping expired bindings out of the
// map once per timeout period so quiet hosts' entries do not accumulate.
func (c *proxyCache) learn(ip layers.Addr4, mac layers.MAC, now time.Duration) {
	if ip.IsZero() || mac.IsZero() || mac.IsMulticast() {
		return
	}
	if now >= c.nextSweep {
		c.sweep(now)
		c.nextSweep = now + c.timeout
	}
	c.ip2mac[ip] = proxyEntry{mac: mac, expires: now + c.timeout}
}

// sweep drops every expired binding. Deletion order does not matter (the
// expired set is a pure function of now), so iterating the map directly is
// deterministic in effect even though Go randomizes its order.
func (c *proxyCache) sweep(now time.Duration) {
	for ip, e := range c.ip2mac {
		if e.expires <= now {
			delete(c.ip2mac, ip)
		}
	}
}

// SweepProxy eagerly drops every expired proxy binding at now. The
// amortized sweep in learn only runs while traffic arrives; a long-running
// fabric that quiesces between sessions calls this at drain points so a
// session ends with no corpses resident. No-op when the proxy is disabled.
func (b *Bridge) SweepProxy(now time.Duration) {
	if b.proxy != nil {
		b.proxy.sweep(now)
	}
}

// lookup returns a live binding.
func (c *proxyCache) lookup(ip layers.Addr4, now time.Duration) (layers.MAC, bool) {
	e, ok := c.ip2mac[ip]
	if !ok {
		return layers.MAC{}, false
	}
	if e.expires <= now {
		delete(c.ip2mac, ip)
		return layers.MAC{}, false
	}
	return e.mac, true
}

// ProxySnapshot returns the proxy cache's live IP→MAC bindings at now,
// or nil when the proxy is disabled. The scenario engine's
// proxy-consistency invariant checks every binding against the fabric's
// true ownership after a run quiesces: a stale or poisoned binding would
// silently convert floods into unicasts toward the wrong station.
func (b *Bridge) ProxySnapshot(now time.Duration) map[layers.Addr4]layers.MAC {
	if b.proxy == nil {
		return nil
	}
	out := make(map[layers.Addr4]layers.MAC, len(b.proxy.ip2mac))
	for ip, e := range b.proxy.ip2mac {
		if e.expires > now {
			out[ip] = e.mac
		}
	}
	return out
}

// PoisonProxy deliberately installs a binding in the proxy cache,
// bypassing snooping. It exists for the scenario engine's deliberate-bug
// regression (a poisoned cache must be caught by the proxy-consistency
// invariant) and panics when the proxy is disabled.
func (b *Bridge) PoisonProxy(ip layers.Addr4, mac layers.MAC) {
	if b.proxy == nil {
		panic("core: PoisonProxy on a bridge without the proxy enabled")
	}
	b.proxy.learn(ip, mac, b.Now())
}

// proxyHandleBroadcast intercepts a broadcast ARP Request arriving on an
// edge port. When the target's binding is cached and a live learned path
// entry for it exists, the request is rewritten into a unicast toward the
// target and forwarded on the established path — EtherProxy's
// broadcast-to-unicast conversion. It reports true when the flood was
// suppressed. Conversion (rather than answering locally) keeps the full
// ARP exchange between the end hosts, so the target learns the requester
// and the path entries refresh exactly as with a real exchange.
func (b *Bridge) proxyHandleBroadcast(in *netsim.Port, v *layers.FrameView, now time.Duration) bool {
	arp := v.ARP
	b.proxy.learn(arp.SenderIP, arp.SenderHW, now)
	if arp.Operation != layers.ARPRequest || !b.IsEdge(in) || arp.IsGratuitous() {
		return false
	}
	mac, ok := b.proxy.lookup(arp.TargetIP, now)
	if !ok {
		b.stats.ProxyMisses++
		return false
	}
	e, ok := b.table.Get(mac, now)
	if !ok || e.State != StateLearned || e.Port == in {
		b.stats.ProxyMisses++
		return false
	}
	unicast, err := layers.Serialize(
		&layers.Ethernet{Dst: mac, Src: arp.SenderHW, EtherType: layers.EtherTypeARP},
		&arp,
	)
	if err != nil {
		panic("core: serialize proxied ARP request: " + err.Error())
	}
	b.stats.ProxyConverted++
	// Hand the rewritten frame to the normal unicast dataplane as if it
	// had arrived this way: the source entry refreshes and the frame
	// follows the learned path to the target.
	uf := b.Net().NewFrame(unicast) // net-scoped: visible to the frame-drain balance
	b.handleUnicast(in, uf, uf.View())
	uf.Release()
	return true
}
