package core

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/layers"
	"repro/internal/netsim"
)

// host is a raw test endpoint speaking ARP and data frames.
type host struct {
	name string
	mac  layers.MAC
	ip   layers.Addr4
	port *netsim.Port
	got  [][]byte
	// autoReplyARP answers ARP requests for this host's IP.
	autoReplyARP bool
}

func newHost(name string, n int) *host {
	return &host{name: name, mac: layers.HostMAC(n), ip: layers.HostIP(n), autoReplyARP: true}
}

func (h *host) Name() string                             { return h.name }
func (h *host) AttachPort(p *netsim.Port)                { h.port = p }
func (h *host) PortStatusChanged(_ *netsim.Port, _ bool) {}

func (h *host) HandleFrame(_ *netsim.Port, f *netsim.Frame) {
	frame := append([]byte(nil), f.Bytes()...) // borrowed: copy to keep
	dst := layers.FrameDst(frame)
	if dst != h.mac && !dst.IsBroadcast() {
		return
	}
	if layers.FrameEtherType(frame) == layers.EtherTypePathCtl {
		return // hosts ignore bridge control traffic (transparency)
	}
	h.got = append(h.got, frame)
	if !h.autoReplyARP || layers.FrameEtherType(frame) != layers.EtherTypeARP {
		return
	}
	var eth layers.Ethernet
	var arp layers.ARP
	if eth.DecodeFromBytes(frame) != nil || arp.DecodeFromBytes(eth.Payload()) != nil {
		return
	}
	if arp.Operation == layers.ARPRequest && arp.TargetIP == h.ip {
		reply, err := layers.Serialize(
			&layers.Ethernet{Dst: arp.SenderHW, Src: h.mac, EtherType: layers.EtherTypeARP},
			&layers.ARP{Operation: layers.ARPReply, SenderHW: h.mac, SenderIP: h.ip,
				TargetHW: arp.SenderHW, TargetIP: arp.SenderIP},
		)
		if err != nil {
			panic(err)
		}
		h.port.Send(reply)
	}
}

// sendARPRequest broadcasts an ARP request for target's IP.
func (h *host) sendARPRequest(targetIP layers.Addr4) {
	frame, err := layers.Serialize(
		&layers.Ethernet{Dst: layers.BroadcastMAC, Src: h.mac, EtherType: layers.EtherTypeARP},
		&layers.ARP{Operation: layers.ARPRequest, SenderHW: h.mac, SenderIP: h.ip, TargetIP: targetIP},
	)
	if err != nil {
		panic(err)
	}
	h.port.Send(frame)
}

// sendData sends a unicast data frame to dst.
func (h *host) sendData(dst layers.MAC, tag byte) {
	frame, err := layers.Serialize(
		&layers.Ethernet{Dst: dst, Src: h.mac, EtherType: layers.EtherTypeIPv4},
		layers.Payload([]byte{tag}),
	)
	if err != nil {
		panic(err)
	}
	h.port.Send(frame)
}

// dataFrames returns the non-ARP frames received.
func (h *host) dataFrames() [][]byte {
	var out [][]byte
	for _, f := range h.got {
		if layers.FrameEtherType(f) == layers.EtherTypeIPv4 {
			out = append(out, f)
		}
	}
	return out
}

func link(delay time.Duration) netsim.LinkConfig {
	return netsim.DefaultLinkConfig().WithDelay(delay)
}

// paper5 builds the Figure 1 topology of the paper:
//
//	S - B2,  B2-B1, B2-B3, B1-B3, B1-B4, B3-B5, B4-B5, B5-D
//
// with uniform link delays, and starts all bridges.
func paper5(seed int64) (*netsim.Network, *host, *host, []*Bridge) {
	net := netsim.NewNetwork(seed)
	s, d := newHost("S", 1), newHost("D", 2)
	bs := make([]*Bridge, 6) // 1-indexed as in the figure
	for i := 1; i <= 5; i++ {
		bs[i] = New(net, "B"+string(rune('0'+i)), i, DefaultConfig())
	}
	dl := 5 * time.Microsecond
	net.Connect(s, bs[2], link(dl))
	net.Connect(bs[2], bs[1], link(dl))
	net.Connect(bs[2], bs[3], link(dl))
	net.Connect(bs[1], bs[3], link(dl))
	net.Connect(bs[1], bs[4], link(dl))
	net.Connect(bs[3], bs[5], link(dl))
	net.Connect(bs[4], bs[5], link(dl))
	net.Connect(bs[5], d, link(dl))
	for _, b := range bs[1:] {
		b.Start()
	}
	return net, s, d, bs[1:]
}

func TestDiscoveryLocksReversePath(t *testing.T) {
	net, s, d, bs := paper5(1)
	net.RunFor(time.Millisecond) // HELLOs settle
	net.Engine.At(net.Now(), func() { s.sendARPRequest(d.ip) })
	net.RunFor(50 * time.Millisecond)

	// Every bridge must have locked/learned S (the request floods
	// everywhere), forming a reverse path: following S-entries from any
	// bridge must reach S without loops.
	for _, b := range bs {
		e, ok := b.EntryFor(s.mac)
		if !ok {
			t.Fatalf("%s has no entry for S", b.Name())
		}
		_ = e
	}
	// The ARP Reply must have come back to S.
	if len(s.got) != 1 {
		t.Fatalf("S received %d frames, want 1 (the ARP reply)", len(s.got))
	}
	// Bridges on the S–D path now know D (learned); only they needed it.
	if _, ok := bsByName(bs, "B2").EntryFor(d.mac); !ok {
		t.Fatal("S's edge bridge did not learn D from the reply")
	}
	if _, ok := bsByName(bs, "B5").EntryFor(d.mac); !ok {
		t.Fatal("D's edge bridge did not learn D")
	}
}

func bsByName(bs []*Bridge, name string) *Bridge {
	for _, b := range bs {
		if b.Name() == name {
			return b
		}
	}
	panic("no bridge " + name)
}

func TestExactlyOneCopyDeliveredThroughMesh(t *testing.T) {
	net, s, d, _ := paper5(1)
	net.RunFor(time.Millisecond)
	net.Engine.At(net.Now(), func() { s.sendARPRequest(d.ip) })
	net.RunFor(50 * time.Millisecond)
	// Despite the looped mesh, D gets exactly one copy of the request.
	reqs := 0
	for _, f := range d.got {
		if layers.FrameEtherType(f) == layers.EtherTypeARP {
			reqs++
		}
	}
	if reqs != 1 {
		t.Fatalf("D received %d ARP request copies, want 1", reqs)
	}
}

func TestRaceSelectsLowerLatencyPath(t *testing.T) {
	// Diamond: S - A - {fast: F, slow: W} - Z - D. The fast branch has
	// 5µs links, the slow one 500µs. The lock at Z must point at the fast
	// branch, and data must flow over it.
	net := netsim.NewNetwork(1)
	s, d := newHost("S", 1), newHost("D", 2)
	a := New(net, "A", 1, DefaultConfig())
	f := New(net, "F", 2, DefaultConfig())
	w := New(net, "W", 3, DefaultConfig())
	z := New(net, "Z", 4, DefaultConfig())
	net.Connect(s, a, link(5*time.Microsecond))
	net.Connect(a, f, link(5*time.Microsecond))
	net.Connect(a, w, link(500*time.Microsecond))
	lf := net.Connect(f, z, link(5*time.Microsecond))
	net.Connect(w, z, link(500*time.Microsecond))
	net.Connect(z, d, link(5*time.Microsecond))
	for _, b := range []*Bridge{a, f, w, z} {
		b.Start()
	}
	net.RunFor(10 * time.Millisecond)
	net.Engine.At(net.Now(), func() { s.sendARPRequest(d.ip) })
	net.RunFor(50 * time.Millisecond)

	e, ok := z.EntryFor(s.mac)
	if !ok {
		t.Fatal("Z has no S entry")
	}
	if e.Port != lf.B() {
		t.Fatalf("Z locked S via %s, want fast port %s", e.Port, lf.B())
	}
	// Data S→D must transit the fast bridge, not the slow one.
	fFwd := f.Stats().Forwarded
	net.Engine.At(net.Now(), func() { s.sendData(d.mac, 1) })
	net.RunFor(10 * time.Millisecond)
	if len(d.dataFrames()) != 1 {
		t.Fatalf("D got %d data frames, want 1", len(d.dataFrames()))
	}
	if f.Stats().Forwarded <= fFwd {
		t.Fatal("data did not cross the fast branch")
	}
	if w.Stats().Forwarded != 0 {
		t.Fatal("data crossed the slow branch")
	}
}

func TestPathSymmetry(t *testing.T) {
	net, s, d, bs := paper5(3)
	net.RunFor(time.Millisecond)
	net.Engine.At(net.Now(), func() { s.sendARPRequest(d.ip) })
	net.RunFor(50 * time.Millisecond)
	net.Engine.At(net.Now(), func() {
		s.sendData(d.mac, 1)
		d.sendData(s.mac, 2)
	})
	net.RunFor(50 * time.Millisecond)
	if len(d.dataFrames()) != 1 || len(s.dataFrames()) != 1 {
		t.Fatalf("delivery failed: S=%d D=%d", len(s.dataFrames()), len(d.dataFrames()))
	}
	// Symmetry: on every bridge holding both entries, the S-entry port and
	// D-entry port must differ (traffic enters one way, leaves the other),
	// and a bridge on the path must see traffic both ways or not at all.
	for _, b := range bs {
		es, okS := b.EntryFor(s.mac)
		ed, okD := b.EntryFor(d.mac)
		if okS && okD && es.State == StateLearned && ed.State == StateLearned {
			if es.Port == ed.Port {
				t.Fatalf("%s: S and D learned on the same port %s", b.Name(), es.Port)
			}
		}
	}
}

func TestUnknownUnicastIsNeverFlooded(t *testing.T) {
	net, s, d, bs := paper5(1)
	net.RunFor(time.Millisecond)
	// No discovery at all: send data blind. It must not reach D by
	// flooding (repair can't find D either since D never spoke), and no
	// bridge may have flooded it.
	net.Engine.At(net.Now(), func() { s.sendData(d.mac, 9) })
	net.RunFor(time.Second)
	if len(d.dataFrames()) != 0 {
		t.Fatal("unknown unicast reached D — must have been flooded")
	}
	for _, b := range bs {
		if b.Stats().RepairsStarted == 0 && b.Name() == "B2" {
			t.Fatal("edge bridge did not attempt repair")
		}
	}
}

func TestLockExpiryOffPath(t *testing.T) {
	net, s, d, bs := paper5(1)
	net.RunFor(time.Millisecond)
	net.Engine.At(net.Now(), func() { s.sendARPRequest(d.ip) })
	net.RunFor(50 * time.Millisecond)
	// B4 is off the shortest path; its S entry is a lock that must expire
	// (no reply passed through it).
	b4 := bsByName(bs, "B4")
	if e, ok := b4.EntryFor(s.mac); ok && e.State == StateLearned {
		t.Fatal("off-path bridge has a learned S entry")
	}
	net.RunFor(DefaultConfig().LockTimeout + time.Millisecond)
	if _, ok := b4.EntryFor(s.mac); ok {
		t.Fatal("off-path lock did not expire")
	}
	// On-path bridges keep learned entries.
	if e, ok := bsByName(bs, "B2").EntryFor(s.mac); !ok || e.State != StateLearned {
		t.Fatal("on-path learned entry missing after lock window")
	}
}

func TestRepathingAfterLearnedEntry(t *testing.T) {
	// After a first exchange, make the previously fast branch slow and
	// re-ARP: the new race must move the path to the other branch.
	net := netsim.NewNetwork(1)
	s, d := newHost("S", 1), newHost("D", 2)
	a := New(net, "A", 1, DefaultConfig())
	f := New(net, "F", 2, DefaultConfig())
	w := New(net, "W", 3, DefaultConfig())
	z := New(net, "Z", 4, DefaultConfig())
	net.Connect(s, a, link(5*time.Microsecond))
	net.Connect(a, f, link(5*time.Microsecond))
	net.Connect(a, w, link(50*time.Microsecond))
	net.Connect(f, z, link(5*time.Microsecond))
	lw := net.Connect(w, z, link(50*time.Microsecond))
	net.Connect(z, d, link(5*time.Microsecond))
	for _, b := range []*Bridge{a, f, w, z} {
		b.Start()
	}
	net.RunFor(10 * time.Millisecond)
	net.Engine.At(net.Now(), func() { s.sendARPRequest(d.ip) })
	net.RunFor(300 * time.Millisecond)

	// Fast branch wins initially.
	if e, _ := z.EntryFor(s.mac); e.Port == lw.B() {
		t.Fatal("slow branch won the first race")
	}
	// Cut the fast branch entirely, then re-ARP.
	net.Engine.At(net.Now(), func() { f.Port(0).Link().SetUp(false) })
	net.RunFor(time.Millisecond)
	net.Engine.At(net.Now(), func() { s.sendARPRequest(d.ip) })
	net.RunFor(300 * time.Millisecond)
	e, ok := z.EntryFor(s.mac)
	if !ok || e.Port != lw.B() {
		t.Fatal("re-ARP did not move the path to the surviving branch")
	}
	net.Engine.At(net.Now(), func() { s.sendData(d.mac, 3) })
	net.RunFor(50 * time.Millisecond)
	if len(d.dataFrames()) != 1 {
		t.Fatal("data did not flow over the repathed route")
	}
}

func TestPathRepairAfterLinkFailure(t *testing.T) {
	// Diamond with two equal branches; cut the active one mid-flow. The
	// Path Repair exchange must restore connectivity without any host
	// re-ARPing, within well under a second (§3.2).
	net := netsim.NewNetwork(1)
	s, d := newHost("S", 1), newHost("D", 2)
	a := New(net, "A", 1, DefaultConfig())
	f := New(net, "F", 2, DefaultConfig())
	w := New(net, "W", 3, DefaultConfig())
	z := New(net, "Z", 4, DefaultConfig())
	net.Connect(s, a, link(5*time.Microsecond))
	net.Connect(a, f, link(5*time.Microsecond))
	net.Connect(a, w, link(20*time.Microsecond))
	lf := net.Connect(f, z, link(5*time.Microsecond))
	net.Connect(w, z, link(20*time.Microsecond))
	net.Connect(z, d, link(5*time.Microsecond))
	for _, b := range []*Bridge{a, f, w, z} {
		b.Start()
	}
	net.RunFor(10 * time.Millisecond)
	net.Engine.At(net.Now(), func() { s.sendARPRequest(d.ip) })
	net.RunFor(100 * time.Millisecond)
	net.Engine.At(net.Now(), func() { s.sendData(d.mac, 1) })
	net.RunFor(100 * time.Millisecond)
	if len(d.dataFrames()) != 1 {
		t.Fatal("no connectivity before failure")
	}

	// Cut the fast branch; the next frame hits a miss at F (its D entry
	// was purged with the link). F buffers it and reports a PathFail
	// toward S; A (S's edge bridge) floods a PathRequest; Z answers for D.
	// The new path S–A–W–Z–D bypasses F, so the buffered frame itself is
	// sacrificed (TCP retransmission recovers it in the Figure 3 demo) —
	// but the path must be restored for everything after it.
	net.Engine.At(net.Now(), func() { lf.SetUp(false) })
	net.RunFor(time.Millisecond)
	net.Engine.At(net.Now(), func() { s.sendData(d.mac, 2) })
	net.RunFor(300 * time.Millisecond)
	net.Engine.At(net.Now(), func() { s.sendData(d.mac, 3) })
	net.RunFor(time.Second)
	frames := d.dataFrames()
	if len(frames) < 2 {
		t.Fatalf("repair failed: D has %d data frames, want ≥ 2", len(frames))
	}
	var last layers.Ethernet
	if err := last.DecodeFromBytes(frames[len(frames)-1]); err != nil {
		t.Fatal(err)
	}
	if last.Payload()[0] != 3 {
		t.Fatalf("post-repair frame tag = %d, want 3", last.Payload()[0])
	}
	// The repair must have used control frames, not host ARP.
	repairs := a.Stats().RepairsStarted + z.Stats().RepairsStarted + f.Stats().RepairsStarted
	if repairs == 0 {
		t.Fatal("no repair was started")
	}
	replies := a.Stats().PathRepliesSent + z.Stats().PathRepliesSent +
		f.Stats().PathRepliesSent + w.Stats().PathRepliesSent
	if replies == 0 {
		t.Fatal("no PathReply was sent")
	}
	if countARP(d.got) != 1 {
		t.Fatal("repair leaked extra ARP traffic to the hosts")
	}
	// And the reverse direction must also work post-repair.
	net.Engine.At(net.Now(), func() { d.sendData(s.mac, 4) })
	net.RunFor(time.Second)
	if len(s.dataFrames()) != 1 {
		t.Fatal("reverse path broken after repair")
	}
}

func TestRepairTimeoutDropsBufferedFrames(t *testing.T) {
	// D never exists: repair can't succeed; buffered frames must be
	// dropped after RepairTimeout and the repair state cleaned up.
	net := netsim.NewNetwork(1)
	s := newHost("S", 1)
	a := New(net, "A", 1, DefaultConfig())
	b2 := New(net, "B", 2, DefaultConfig())
	net.Connect(s, a, link(5*time.Microsecond))
	net.Connect(a, b2, link(5*time.Microsecond))
	a.Start()
	b2.Start()
	net.RunFor(time.Millisecond)
	net.Engine.At(net.Now(), func() { s.sendARPRequest(layers.HostIP(9)) }) // locks S
	net.RunFor(10 * time.Millisecond)
	net.Engine.At(net.Now(), func() { s.sendData(layers.HostMAC(9), 1) })
	net.RunFor(2 * time.Second)
	if a.Stats().RepairDropped == 0 {
		t.Fatal("buffered frame not dropped on repair timeout")
	}
	if len(a.repairs) != 0 {
		t.Fatal("repair state leaked")
	}
}

func TestRepairBufferOverflow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RepairBuffer = 2
	cfg.RepairTimeout = 10 * time.Second
	net := netsim.NewNetwork(1)
	s := newHost("S", 1)
	a := New(net, "A", 1, cfg)
	b2 := New(net, "B", 2, cfg)
	net.Connect(s, a, link(5*time.Microsecond))
	net.Connect(a, b2, link(5*time.Microsecond))
	a.Start()
	b2.Start()
	net.RunFor(time.Millisecond)
	net.Engine.At(net.Now(), func() { s.sendARPRequest(layers.HostIP(9)) })
	net.RunFor(10 * time.Millisecond)
	net.Engine.At(net.Now(), func() {
		for i := 0; i < 5; i++ {
			s.sendData(layers.HostMAC(9), byte(i))
		}
	})
	net.RunFor(100 * time.Millisecond)
	if a.Stats().RepairDropped != 3 {
		t.Fatalf("RepairDropped = %d, want 3 (buffer cap 2)", a.Stats().RepairDropped)
	}
}

func TestLinkDownPurgesEntries(t *testing.T) {
	net, s, d, bs := paper5(1)
	net.RunFor(time.Millisecond)
	net.Engine.At(net.Now(), func() { s.sendARPRequest(d.ip) })
	net.RunFor(50 * time.Millisecond)
	b5 := bsByName(bs, "B5")
	// Cut B5's uplink used for S.
	e, ok := b5.EntryFor(s.mac)
	if !ok {
		t.Fatal("B5 has no S entry")
	}
	net.Engine.At(net.Now(), func() { e.Port.Link().SetUp(false) })
	net.RunFor(time.Millisecond)
	if _, ok := b5.EntryFor(s.mac); ok {
		t.Fatal("entry survived link failure")
	}
	if b5.Stats().EntriesPurged == 0 {
		t.Fatal("purge not counted")
	}
}

func TestHairpinDrop(t *testing.T) {
	// Two hosts on the same bridge port cannot exist in this model, so
	// synthesize: teach the bridge that X is on S's port, then let S send
	// to X; the bridge must filter, not loop it back.
	net := netsim.NewNetwork(1)
	s := newHost("S", 1)
	a := New(net, "A", 1, DefaultConfig())
	other := newHost("O", 3)
	net.Connect(s, a, link(5*time.Microsecond))
	net.Connect(a, other, link(5*time.Microsecond))
	a.Start()
	net.RunFor(time.Millisecond)
	net.Engine.At(net.Now(), func() {
		// X (HostMAC 7) announces itself from S's segment.
		frame, _ := layers.Serialize(
			&layers.Ethernet{Dst: layers.BroadcastMAC, Src: layers.HostMAC(7), EtherType: layers.EtherTypeARP},
			&layers.ARP{Operation: layers.ARPRequest, SenderHW: layers.HostMAC(7), SenderIP: layers.HostIP(7), TargetIP: layers.HostIP(8)},
		)
		s.port.Send(frame)
	})
	net.RunFor(10 * time.Millisecond)
	net.Engine.At(net.Now(), func() { s.sendData(layers.HostMAC(7), 1) })
	net.RunFor(10 * time.Millisecond)
	if a.Stats().HairpinDrop != 1 {
		t.Fatalf("HairpinDrop = %d, want 1", a.Stats().HairpinDrop)
	}
}

func TestLoopFreedomOnRandomTopologies(t *testing.T) {
	// Property (paper §1: "exhibits loop-freedom"): one broadcast on a
	// random connected multigraph yields at most one flood per bridge —
	// total transmitted copies ≤ 2·|links| — and the flood terminates.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 12; trial++ {
		n := 3 + rng.Intn(6)
		net := netsim.NewNetwork(int64(trial))
		bs := make([]*Bridge, n)
		for i := range bs {
			bs[i] = New(net, "r"+string(rune('a'+i)), i+1, DefaultConfig())
		}
		links := 0
		for i := 1; i < n; i++ {
			net.Connect(bs[i], bs[rng.Intn(i)], link(time.Duration(1+rng.Intn(50))*time.Microsecond))
			links++
		}
		for e := rng.Intn(2 * n); e > 0; e-- {
			i, j := rng.Intn(n), rng.Intn(n)
			if i != j {
				net.Connect(bs[i], bs[j], link(time.Duration(1+rng.Intn(50))*time.Microsecond))
				links++
			}
		}
		s := newHost("S", 1)
		net.Connect(s, bs[0], link(time.Microsecond))
		d := newHost("D", 2)
		net.Connect(d, bs[n-1], link(time.Microsecond))
		for _, b := range bs {
			b.Start()
		}
		var copies int
		net.Tap(func(ev netsim.TapEvent) {
			if ev.Kind == netsim.TapSend && layers.FrameEtherType(ev.Frame) == layers.EtherTypeARP {
				copies++
			}
		})
		net.RunFor(time.Millisecond)
		net.Engine.At(net.Now(), func() { s.sendARPRequest(d.ip) })
		net.RunFor(100 * time.Millisecond) // termination: event queue must drain in bounded copies
		// +1 for the host's own transmission; replies are unicast ARP too,
		// so allow the reply's hop count (≤ n+1).
		bound := 2*links + 1 + (n + 1)
		if copies > bound {
			t.Fatalf("trial %d: %d ARP copies for %d links (bound %d) — loop suspected",
				trial, copies, links, bound)
		}
		if len(d.got) == 0 {
			t.Fatalf("trial %d: request never reached D", trial)
		}
	}
}

func TestNoBlockedLinks(t *testing.T) {
	// Paper §1: ARP-Path "does not block links". After discovery, every
	// link must still accept and forward traffic — verified by checking
	// that no bridge port is administratively excluded: ARP-Path has no
	// such state at all, so we assert floods exit every up port.
	net, s, _, bs := paper5(1)
	net.RunFor(time.Millisecond)
	b2 := bsByName(bs, "B2")
	sent := map[string]bool{}
	net.Tap(func(ev netsim.TapEvent) {
		if ev.Kind == netsim.TapSend && ev.From.Node() == netsim.Node(b2) {
			sent[ev.From.String()] = true
		}
	})
	net.Engine.At(net.Now(), func() { s.sendARPRequest(layers.HostIP(99)) })
	net.RunFor(10 * time.Millisecond)
	// B2 has 3 ports (S, B1, B3); the request from S must leave both
	// trunk ports.
	if len(sent) != 2 {
		t.Fatalf("flood used %d of B2's ports, want 2 (no blocking)", len(sent))
	}
}

func TestTransparencyHostsSeeNoControlFrames(t *testing.T) {
	net, s, d, _ := paper5(1)
	net.RunFor(time.Millisecond)
	net.Engine.At(net.Now(), func() { s.sendARPRequest(d.ip) })
	net.RunFor(100 * time.Millisecond)
	for _, h := range []*host{s, d} {
		for _, f := range h.got {
			if layers.FrameEtherType(f) == layers.EtherTypePathCtl {
				t.Fatalf("%s received bridge control traffic", h.name)
			}
		}
	}
}

func TestProxySuppressesRepeatARP(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Proxy = true
	net := netsim.NewNetwork(1)
	s, d, x := newHost("S", 1), newHost("D", 2), newHost("X", 3)
	a := New(net, "A", 1, cfg)
	b2 := New(net, "B", 2, cfg)
	net.Connect(s, a, link(5*time.Microsecond))
	net.Connect(x, a, link(5*time.Microsecond))
	net.Connect(a, b2, link(5*time.Microsecond))
	net.Connect(b2, d, link(5*time.Microsecond))
	a.Start()
	b2.Start()
	net.RunFor(time.Millisecond)

	// First exchange: S↔D discovers normally and seeds the proxy cache.
	net.Engine.At(net.Now(), func() { s.sendARPRequest(d.ip) })
	net.RunFor(100 * time.Millisecond)
	if a.Stats().ProxyConverted != 0 {
		t.Fatal("proxy converted before any cache existed")
	}

	// X asks for D: the edge bridge holds D's binding and a learned path —
	// it must convert the broadcast to a unicast (EtherProxy style), so D
	// still sees the request and answers, but nothing floods.
	var broadcastARPs int
	net.Tap(func(ev netsim.TapEvent) {
		if ev.Kind == netsim.TapDeliver && layers.FrameDst(ev.Frame).IsBroadcast() &&
			layers.FrameEtherType(ev.Frame) == layers.EtherTypeARP {
			broadcastARPs++
		}
	})
	dARPBefore := countARP(d.got)
	net.Engine.At(net.Now(), func() { x.sendARPRequest(d.ip) })
	net.RunFor(100 * time.Millisecond)
	if a.Stats().ProxyConverted != 1 {
		t.Fatalf("ProxyConverted = %d, want 1", a.Stats().ProxyConverted)
	}
	// Only the X→bridge hop carries the broadcast; the fabric does not.
	if broadcastARPs != 1 {
		t.Fatalf("broadcast ARP deliveries = %d, want 1 (host link only)", broadcastARPs)
	}
	if got := countARP(d.got); got != dARPBefore+1 {
		t.Fatal("converted unicast request did not reach D")
	}
	if len(x.got) == 0 {
		t.Fatal("X never got D's reply")
	}
	// And X can now send data to D because source learning keeps the
	// return path alive along the forward route.
	net.Engine.At(net.Now(), func() { x.sendData(d.mac, 5) })
	net.RunFor(100 * time.Millisecond)
	if len(d.dataFrames()) != 1 {
		t.Fatal("data after proxied ARP failed")
	}
}

func countARP(frames [][]byte) int {
	n := 0
	for _, f := range frames {
		if layers.FrameEtherType(f) == layers.EtherTypeARP {
			n++
		}
	}
	return n
}

func TestProxyMissFloodsNormally(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Proxy = true
	net := netsim.NewNetwork(1)
	s, d := newHost("S", 1), newHost("D", 2)
	a := New(net, "A", 1, cfg)
	net.Connect(s, a, link(5*time.Microsecond))
	net.Connect(a, d, link(5*time.Microsecond))
	a.Start()
	net.RunFor(time.Millisecond)
	net.Engine.At(net.Now(), func() { s.sendARPRequest(d.ip) })
	net.RunFor(50 * time.Millisecond)
	if a.Stats().ProxyMisses == 0 {
		t.Fatal("first request should miss the proxy cache")
	}
	if countARP(d.got) != 1 {
		t.Fatal("missed request did not flood to D")
	}
}

func TestLockTableBasics(t *testing.T) {
	net := netsim.NewNetwork(1)
	a, b := newHost("a", 1), newHost("b", 2)
	l := net.Connect(a, b, link(0))
	tb := NewLockTable(100*time.Millisecond, time.Second)
	m := layers.HostMAC(1)

	tb.Lock(m, l.A(), 0)
	if e, ok := tb.Get(m, 50*time.Millisecond); !ok || e.State != StateLocked {
		t.Fatal("lock not stored")
	}
	if _, ok := tb.Get(m, 100*time.Millisecond); ok {
		t.Fatal("lock survived its window")
	}
	tb.Learn(m, l.A(), 0)
	if e, ok := tb.Get(m, 500*time.Millisecond); !ok || e.State != StateLearned {
		t.Fatal("learn not stored")
	}
	tb.Refresh(m, 900*time.Millisecond)
	if _, ok := tb.Get(m, 1800*time.Millisecond); !ok {
		t.Fatal("refresh did not extend learned entry")
	}
	tb.Delete(m)
	if tb.Len() != 0 {
		t.Fatal("delete failed")
	}
	tb.Lock(layers.BroadcastMAC, l.A(), 0)
	if tb.Len() != 0 {
		t.Fatal("multicast source locked")
	}
}

func TestLockTableSnapshotAndFlush(t *testing.T) {
	net := netsim.NewNetwork(1)
	a, b := newHost("a", 1), newHost("b", 2)
	l := net.Connect(a, b, link(0))
	tb := NewLockTable(100*time.Millisecond, time.Second)
	tb.Lock(layers.HostMAC(1), l.A(), 0)
	tb.Learn(layers.HostMAC(2), l.B(), 0)
	snap := tb.Snapshot(50 * time.Millisecond)
	if len(snap) != 2 {
		t.Fatalf("snapshot len %d", len(snap))
	}
	snap = tb.Snapshot(500 * time.Millisecond)
	if len(snap) != 1 {
		t.Fatalf("snapshot after lock expiry len %d", len(snap))
	}
	tb.FlushExpired(500 * time.Millisecond)
	if tb.Len() != 1 {
		t.Fatal("FlushExpired missed")
	}
	tb.FlushPort(l.B())
	if tb.Len() != 0 {
		t.Fatal("FlushPort missed")
	}
}

func TestEntryStateString(t *testing.T) {
	if StateLocked.String() != "locked" || StateLearned.String() != "learned" {
		t.Fatal("state strings")
	}
}

func TestConfigValidation(t *testing.T) {
	net := netsim.NewNetwork(1)
	bad := []Config{
		{LockTimeout: 0, LearnedTimeout: 1, RepairTimeout: 1, RepairBuffer: 1},
		{LockTimeout: 1, LearnedTimeout: 0, RepairTimeout: 1, RepairBuffer: 1},
		{LockTimeout: 1, LearnedTimeout: 1, RepairTimeout: 0, RepairBuffer: 1},
		{LockTimeout: 1, LearnedTimeout: 1, RepairTimeout: 1, RepairBuffer: 0},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("config %d accepted", i)
				}
			}()
			New(net, "x"+string(rune('0'+i)), i+1, cfg)
		}()
	}
}

func BenchmarkDiscoveryPaper5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		net, s, d, _ := paper5(1)
		net.RunFor(time.Millisecond)
		net.Engine.At(net.Now(), func() { s.sendARPRequest(d.ip) })
		net.RunFor(10 * time.Millisecond)
	}
}

func BenchmarkUnicastForwardingPath(b *testing.B) {
	net, s, d, _ := paper5(1)
	net.RunFor(time.Millisecond)
	net.Engine.At(net.Now(), func() { s.sendARPRequest(d.ip) })
	net.RunFor(10 * time.Millisecond)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		net.Engine.At(net.Now(), func() { s.sendData(d.mac, byte(i)) })
		net.RunFor(200 * time.Microsecond)
	}
}
