package core

import (
	"testing"
	"time"

	hostpkg "repro/internal/host"
	"repro/internal/layers"
	"repro/internal/netsim"
)

func TestLockTableGuard(t *testing.T) {
	net := netsim.NewNetwork(1)
	a, b := hostpkg.New(net, "a", 1), hostpkg.New(net, "b", 2)
	l := net.Connect(a, b, netsim.DefaultLinkConfig())
	tb := NewLockTable(100*time.Millisecond, time.Second)
	m := layers.HostMAC(1)

	// Guarding a learned entry re-arms the window without downgrading.
	tb.Learn(m, l.A(), 0)
	tb.Guard(m, 500*time.Millisecond)
	e, ok := tb.Get(m, 550*time.Millisecond)
	if !ok || e.State != StateLearned {
		t.Fatalf("entry after guard: %+v ok=%v", e, ok)
	}
	if !e.Guarded(550 * time.Millisecond) {
		t.Fatal("window not re-armed")
	}
	if e.Guarded(601 * time.Millisecond) {
		t.Fatal("window did not close")
	}
	// The learned lifetime must not shrink: still alive at 900ms.
	if _, ok := tb.Get(m, 900*time.Millisecond); !ok {
		t.Fatal("guard truncated the learned lifetime")
	}

	// Guarding near expiry extends life to at least the window's end.
	tb.Learn(m, l.A(), 0)
	tb.Guard(m, 990*time.Millisecond)
	if _, ok := tb.Get(m, 1050*time.Millisecond); !ok {
		t.Fatal("guard did not keep the entry alive through its window")
	}

	// Guarding a missing entry is a no-op.
	tb.Delete(m)
	tb.Guard(m, 0)
	if tb.Len() != 0 {
		t.Fatal("guard resurrected a deleted entry")
	}
}

// TestParallelLinkHairpinBlocked: with two links to the same neighbour, a
// frame must never be forwarded "back" over the sibling link even though
// the port differs — the generalized hairpin rule for multigraphs.
func TestParallelLinkHairpinBlocked(t *testing.T) {
	net := netsim.NewNetwork(1)
	h1 := hostpkg.New(net, "h1", 1)
	h2 := hostpkg.New(net, "h2", 2)
	b1 := New(net, "b1", 1, DefaultConfig())
	b2 := New(net, "b2", 2, DefaultConfig())
	cfg := netsim.DefaultLinkConfig()
	fast := net.Connect(b1, b2, cfg)                             // parallel link 1
	slow := net.Connect(b1, b2, cfg.WithDelay(time.Millisecond)) // parallel link 2
	net.Connect(h1, b1, cfg)
	net.Connect(h2, b2, cfg)
	b1.Start()
	b2.Start()
	net.RunFor(time.Millisecond)

	// Discovery: the fast link wins both directions.
	var rtt time.Duration
	net.Engine.At(net.Now(), func() {
		h1.Ping(h2.IP(), 0, time.Second, func(r hostpkg.PingResult) { rtt = r.RTT })
	})
	net.RunFor(2 * time.Second)
	if rtt <= 0 {
		t.Fatal("no connectivity over parallel links")
	}
	if e, _ := b1.EntryFor(h2.MAC()); e.Port.Link() != fast {
		t.Fatal("race did not pick the fast parallel link")
	}

	// Corrupt b2's view on purpose: bind h2 toward b1 over the slow link
	// (simulating the stale state a repair race could leave). A data frame
	// arriving from b1 must NOT bounce back over the sibling link.
	net.Engine.At(net.Now(), func() {
		b2.Table().Learn(h2.MAC(), slow.B(), net.Now())
	})
	drops := b2.Stats().HairpinDrop
	net.Engine.At(net.Now()+time.Millisecond, func() {
		frame, err := layers.Serialize(
			&layers.Ethernet{Dst: h2.MAC(), Src: h1.MAC(), EtherType: layers.EtherTypeIPv4},
			layers.Payload([]byte{0xAA}),
		)
		if err != nil {
			t.Fatal(err)
		}
		h1.Port().Send(frame)
	})
	net.RunFor(100 * time.Millisecond)
	if b2.Stats().HairpinDrop != drops+1 {
		t.Fatalf("parallel-link hairpin not dropped: drops=%d", b2.Stats().HairpinDrop)
	}
}
