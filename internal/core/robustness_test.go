package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	hostpkg "repro/internal/host"
	"repro/internal/layers"
	"repro/internal/netsim"
)

// buildRandomFabric wires n ARP-Path bridges into a random 2-edge-connected-ish
// multigraph (ring + extra chords) with one host per bridge, so single
// link failures usually leave an alternative path.
func buildRandomFabric(seed int64, n int) (*netsim.Network, []*Bridge, []*hostpkg.Host) {
	net := netsim.NewNetwork(seed)
	rng := rand.New(rand.NewSource(seed))
	bridges := make([]*Bridge, n)
	for i := range bridges {
		bridges[i] = New(net, fmt.Sprintf("b%d", i+1), i+1, DefaultConfig())
	}
	cfg := netsim.DefaultLinkConfig()
	// Ring backbone guarantees redundancy for any single failure.
	for i := range bridges {
		net.Connect(bridges[i], bridges[(i+1)%n], cfg.WithDelay(time.Duration(1+rng.Intn(20))*time.Microsecond))
	}
	// Random chords.
	for c := 0; c < n/2; c++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i != j {
			net.Connect(bridges[i], bridges[j], cfg.WithDelay(time.Duration(1+rng.Intn(20))*time.Microsecond))
		}
	}
	hosts := make([]*hostpkg.Host, n)
	for i := range hosts {
		hosts[i] = hostpkg.New(net, fmt.Sprintf("h%d", i+1), i+1)
		net.Connect(hosts[i], bridges[i], cfg)
	}
	for _, b := range bridges {
		b.Start()
	}
	net.RunFor(time.Millisecond)
	return net, bridges, hosts
}

// TestRandomFailureSchedulesStayConnected is the repository's broadest
// property test: on random redundant fabrics, repeatedly cut one random
// trunk link carrying live state, and verify that hosts re-reach each
// other after the fabric repairs (with a re-ARP fallback mirroring real
// host caches expiring). The event-limit backstop doubles as a
// loop-freedom check throughout.
func TestRandomFailureSchedulesStayConnected(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		seed := int64(100 + trial)
		net, bridges, hosts := buildRandomFabric(seed, 6)
		rng := rand.New(rand.NewSource(seed))
		a := hosts[0]
		b := hosts[3]

		ping := func() bool {
			done, ok := false, false
			net.Engine.At(net.Now(), func() {
				a.Ping(b.IP(), 0, time.Second, func(r hostpkg.PingResult) {
					done, ok = true, r.Err == nil
				})
			})
			net.RunFor(3 * time.Second)
			return done && ok
		}

		if !ping() {
			t.Fatalf("trial %d: no initial connectivity", trial)
		}

		for round := 0; round < 3; round++ {
			// Cut a random live trunk link.
			var trunks []*netsim.Link
			for _, l := range net.Links() {
				if !l.Up() {
					continue
				}
				if _, isHost := l.A().Node().(*hostpkg.Host); isHost {
					continue
				}
				if _, isHost := l.B().Node().(*hostpkg.Host); isHost {
					continue
				}
				trunks = append(trunks, l)
			}
			if len(trunks) <= 1 {
				break // keep the fabric connected
			}
			cut := trunks[rng.Intn(len(trunks))]
			net.Engine.At(net.Now(), func() { cut.SetUp(false) })
			net.RunFor(10 * time.Millisecond)

			if stillConnected(bridges, a, b) {
				if !ping() {
					// Repair may need a re-ARP when the miss bridge could
					// not reach the destination's edge (both directions
					// broken at once); hosts do this naturally on cache
					// expiry — emulate it and retry once.
					net.Engine.At(net.Now(), func() {
						a.ARP().Flush()
						b.ARP().Flush()
					})
					if !ping() {
						t.Fatalf("trial %d round %d: connectivity not restored after cutting %v",
							trial, round, cut)
					}
				}
			} else {
				cut.SetUp(true) // partitioned: restore and continue
				net.RunFor(10 * time.Millisecond)
			}
		}
	}
}

// stillConnected checks bridge-level connectivity between the two hosts'
// edge bridges over up links (BFS on the physical graph).
func stillConnected(bridges []*Bridge, a, b *hostpkg.Host) bool {
	start := a.Port().Link()
	var from, to netsim.Node
	if n := start.A().Node(); n != netsim.Node(a) {
		from = n
	} else {
		from = start.B().Node()
	}
	end := b.Port().Link()
	if n := end.A().Node(); n != netsim.Node(b) {
		to = n
	} else {
		to = end.B().Node()
	}
	visited := map[netsim.Node]bool{from: true}
	queue := []netsim.Node{from}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n == to {
			return true
		}
		br, ok := n.(*Bridge)
		if !ok {
			continue
		}
		for _, p := range br.Ports() {
			if !p.Up() {
				continue
			}
			peer := p.Peer().Node()
			if _, isBridge := peer.(*Bridge); isBridge && !visited[peer] {
				visited[peer] = true
				queue = append(queue, peer)
			}
		}
	}
	return false
}

// TestRepairWhenBothDirectionsBreak exercises simultaneous bidirectional
// repair: cut the single shared link of two active flows in opposite
// directions; both ends trigger repair at once and both must converge
// without interfering (nonces and per-destination repair state keep the
// exchanges apart).
func TestRepairWhenBothDirectionsBreak(t *testing.T) {
	net := netsim.NewNetwork(1)
	h1 := hostpkg.New(net, "h1", 1)
	h2 := hostpkg.New(net, "h2", 2)
	b1 := New(net, "b1", 1, DefaultConfig())
	b2 := New(net, "b2", 2, DefaultConfig())
	b3 := New(net, "b3", 3, DefaultConfig())
	cfg := netsim.DefaultLinkConfig()
	// Two disjoint b1→b2 routes: direct, and via b3.
	direct := net.Connect(b1, b2, cfg)
	net.Connect(b1, b3, cfg.WithDelay(20*time.Microsecond))
	net.Connect(b3, b2, cfg.WithDelay(20*time.Microsecond))
	net.Connect(h1, b1, cfg)
	net.Connect(h2, b2, cfg)
	for _, b := range []*Bridge{b1, b2, b3} {
		b.Start()
	}
	net.RunFor(time.Millisecond)

	// Bidirectional traffic establishes the direct path both ways.
	oks := 0
	net.Engine.At(net.Now(), func() {
		h1.Ping(h2.IP(), 0, time.Second, func(r hostpkg.PingResult) {
			if r.Err == nil {
				oks++
			}
		})
		h2.Ping(h1.IP(), 0, time.Second, func(r hostpkg.PingResult) {
			if r.Err == nil {
				oks++
			}
		})
	})
	net.RunFor(2 * time.Second)
	if oks != 2 {
		t.Fatal("initial bidirectional traffic failed")
	}

	// Cut the shared link, then fire traffic in BOTH directions in the
	// same instant: b1 misses h2 and b2 misses h1 simultaneously.
	net.Engine.At(net.Now(), func() { direct.SetUp(false) })
	net.RunFor(time.Millisecond)
	oks = 0
	net.Engine.At(net.Now(), func() {
		h1.Ping(h2.IP(), 0, time.Second, func(r hostpkg.PingResult) {
			if r.Err == nil {
				oks++
			}
		})
		h2.Ping(h1.IP(), 0, time.Second, func(r hostpkg.PingResult) {
			if r.Err == nil {
				oks++
			}
		})
	})
	net.RunFor(3 * time.Second)
	if oks != 2 {
		t.Fatalf("bidirectional repair failed: %d/2 pings", oks)
	}
	// Both repaired flows must ride the b3 detour now.
	if e, ok := b3.EntryFor(layers.HostMAC(1)); !ok || e.State != StateLearned {
		t.Fatal("b3 does not carry h1 after repair")
	}
	if _, ok := b3.EntryFor(layers.HostMAC(2)); !ok {
		t.Fatal("b3 does not carry h2 after repair")
	}
}

// TestRepairNeedsLiveDestinationEntry documents a protocol boundary: the
// emulated ARP exchange can only be answered by a bridge that still holds
// the destination on an edge port. If the whole fabric forgot a silent
// host, the PathRequest goes unanswered (hosts ignore PathCtl —
// transparency) and recovery falls to the requester's real ARP, exactly
// as the paper's §2.1.4 "emulates an ARP exchange" implies.
func TestRepairNeedsLiveDestinationEntry(t *testing.T) {
	cfgB := DefaultConfig()
	cfgB.LearnedTimeout = 50 * time.Millisecond // expire aggressively
	net := netsim.NewNetwork(1)
	h1 := hostpkg.New(net, "h1", 1)
	h2 := hostpkg.New(net, "h2", 2)
	b1 := New(net, "b1", 1, cfgB)
	b2 := New(net, "b2", 2, cfgB)
	cfg := netsim.DefaultLinkConfig()
	net.Connect(h1, b1, cfg)
	net.Connect(b1, b2, cfg)
	net.Connect(b2, h2, cfg)
	b1.Start()
	b2.Start()
	net.RunFor(time.Millisecond)

	net.Engine.At(net.Now(), func() {
		h1.Ping(h2.IP(), 0, time.Second, func(hostpkg.PingResult) {})
	})
	net.RunFor(time.Second) // everything expired now (50ms learned life)

	// h1's ARP cache still holds h2 (60s), so it sends data straight into
	// a fabric that has forgotten both hosts. The PathRequest is flooded
	// but nobody can answer for the silent h2: the ping fails.
	var rtt time.Duration
	net.Engine.At(net.Now(), func() {
		h1.Ping(h2.IP(), 0, time.Second, func(r hostpkg.PingResult) { rtt = r.RTT })
	})
	net.RunFor(3 * time.Second)
	if rtt > 0 {
		t.Fatal("repair succeeded without any live destination entry — who answered?")
	}
	if b1.Stats().PathRequestsSent == 0 && b2.Stats().PathRequestsSent == 0 {
		t.Fatal("no PathRequest was flooded")
	}
	// A real ARP from h1 (cache expiry is its natural trigger) reaches h2
	// itself, which answers — full recovery.
	net.Engine.At(net.Now(), func() {
		h1.ARP().Flush()
		h1.Ping(h2.IP(), 0, time.Second, func(r hostpkg.PingResult) { rtt = r.RTT })
	})
	net.RunFor(3 * time.Second)
	if rtt <= 0 {
		t.Fatal("host-level ARP did not recover the forgotten path")
	}
}
