package core

import (
	"time"

	"repro/internal/layers"
	"repro/internal/netsim"
)

// startRepair handles a unicast table miss for the frame's destination
// (§2.1.4): buffer the frame, then emulate an ARP exchange — tell src's
// edge bridge to flood a PathRequest (via PathFail), or flood it
// ourselves if we cannot reach src. It reports whether a new repair was
// actually created (false when one was already pending for dst, or when
// repair is disabled entirely).
func (b *Bridge) startRepair(f *netsim.Frame, v *layers.FrameView, now time.Duration) bool {
	if b.cfg.DisableRepair {
		b.stats.RepairDropped++
		return false
	}
	src, dst := v.SrcKey, v.DstKey
	r, pending := b.repairs[dst]
	if !pending {
		r = &repair{
			nonce: b.Rand().Uint32(), // per-bridge stream: shard-independent
			src:   v.Src,
		}
		b.repairs[dst] = r
		b.stats.RepairsStarted++
		r.timer = b.repairWheel().After(b.cfg.RepairTimeout, func() {
			b.stats.RepairDropped += uint64(len(r.buffered))
			for _, bf := range r.buffered {
				bf.Release()
			}
			r.buffered = nil
			delete(b.repairs, dst)
		})
		// Kick off the control exchange. On a transit bridge the frame
		// arrived on the very port that leads back to src, so the
		// PathFail goes out the ingress side; only src's edge bridge
		// converts the failure into the PathRequest flood.
		if e, ok := b.table.GetKey(src, now); ok {
			if b.IsEdge(e.Port) {
				// src hangs off this bridge: emulate its ARP Request.
				b.originatePathRequest(v.Src, v.Dst, r.nonce)
			} else {
				// Report the failure toward src's edge bridge, tearing
				// down stale dst entries en route.
				b.sendPathFail(e.Port, v.Src, v.Dst, r.nonce)
			}
		} else {
			// No route toward src at all: flood the request from here.
			b.originatePathRequest(v.Src, v.Dst, r.nonce)
		}
	}
	if len(r.buffered) >= b.cfg.RepairBuffer {
		b.stats.RepairDropped++
		return !pending
	}
	// Retain instead of copy: the buffered frame parks the pooled buffer
	// until the repair resolves (the explicit-Retain half of the netsim
	// ownership contract).
	r.buffered = append(r.buffered, f.Retain())
	return !pending
}

// completeRepair releases frames buffered for the packed destination dst
// now that a confirming reply has arrived via port out.
func (b *Bridge) completeRepair(dst uint64, out *netsim.Port, _ time.Duration) {
	r, ok := b.repairs[dst]
	if !ok {
		return
	}
	delete(b.repairs, dst)
	b.repairWheel().Stop(r.timer)
	for _, f := range r.buffered {
		b.stats.RepairReleased++
		b.stats.Forwarded++
		out.SendFrame(f)
		f.Release()
	}
	r.buffered = nil
}

// sendPathFail emits a PathFail toward src out the given port.
func (b *Bridge) sendPathFail(out *netsim.Port, src, dst layers.MAC, nonce uint32) {
	frame, err := layers.Serialize(
		&layers.Ethernet{Dst: src, Src: b.MAC(), EtherType: layers.EtherTypePathCtl},
		&layers.PathCtl{Type: layers.PathCtlFail, BridgeID: uint64(b.NumID()), Src: src, Dst: dst, Nonce: nonce},
	)
	if err != nil {
		panic("core: serialize PathFail: " + err.Error())
	}
	b.stats.PathFailsSent++
	out.Send(frame)
}

// handlePathFail processes a PathFail addressed toward Src: clear the
// stale Dst entry, then either relay the failure toward Src or — if Src
// hangs off one of our edge ports — convert it into a PathRequest flood.
func (b *Bridge) handlePathFail(in *netsim.Port, f *netsim.Frame, v *layers.FrameView, now time.Duration) {
	if !v.HasCtl || v.Ctl.Type != layers.PathCtlFail {
		return
	}
	ctl := &v.Ctl
	// Tear down the stale path toward the unreachable destination.
	b.table.Delete(ctl.Dst)

	e, ok := b.table.Get(ctl.Src, now)
	switch {
	case ok && b.IsEdge(e.Port):
		// We are Src's edge bridge: emulate Src's ARP Request (§2.1.4).
		b.originatePathRequest(ctl.Src, ctl.Dst, ctl.Nonce)
	case ok && e.Port != in:
		// Keep walking toward Src.
		b.stats.PathFailsRelayed++
		e.Port.SendFrame(f)
	default:
		// Cannot make progress toward Src (entry missing or it points back
		// where the failure came from): flood the request from here.
		b.originatePathRequest(ctl.Src, ctl.Dst, ctl.Nonce)
	}
}

// originatePathRequest floods a PathRequest that the whole fabric treats
// exactly like an ARP Request broadcast from src: every bridge re-locks
// src's position, rebuilding the minimum-latency reverse path.
func (b *Bridge) originatePathRequest(src, dst layers.MAC, nonce uint32) {
	frame, err := layers.Serialize(
		// The frame is sourced from src's own MAC so the locking race
		// works unchanged; hosts never see it (bridges consume PathCtl).
		&layers.Ethernet{Dst: layers.BroadcastMAC, Src: src, EtherType: layers.EtherTypePathCtl},
		&layers.PathCtl{Type: layers.PathCtlRequest, BridgeID: uint64(b.NumID()), Src: src, Dst: dst, Nonce: nonce},
	)
	if err != nil {
		panic("core: serialize PathRequest: " + err.Error())
	}
	b.stats.PathRequestsSent++
	now := b.Now()
	// Re-arm the race window on src's current binding before flooding.
	// Without the guard, a copy of this very flood can loop back here over
	// a parallel link and steal the lock — which once corrupted a pair of
	// bridges into a permanent unicast ping-pong (see
	// TestRandomFailureSchedulesStayConnected). Guard (not Lock): the
	// entry must survive an unanswered repair, or the edge bridge would
	// forget its own attached host.
	var except *netsim.Port
	if e, ok := b.table.Get(src, now); ok {
		b.table.Guard(src, now)
		except = e.Port
	}
	b.stats.BroadcastRelayed++
	b.FloodBytesExcept(except, frame)
}

// answerPathRequest replies to a PathRequest when the requested
// destination hangs off one of this bridge's edge ports, completing the
// emulated ARP exchange on the host's behalf. Reports whether the request
// was consumed.
func (b *Bridge) answerPathRequest(in *netsim.Port, v *layers.FrameView, now time.Duration) bool {
	if v.Ctl.Type != layers.PathCtlRequest {
		return false
	}
	ctl := &v.Ctl
	e, ok := b.table.Get(ctl.Dst, now)
	if !ok || !b.IsEdge(e.Port) || e.Port == in {
		return false
	}
	// The request just locked Src to the ingress port; reply along it in
	// Dst's name, which confirms Dst's path at every bridge on the way.
	reply, err := layers.Serialize(
		&layers.Ethernet{Dst: ctl.Src, Src: ctl.Dst, EtherType: layers.EtherTypePathCtl},
		&layers.PathCtl{Type: layers.PathCtlReply, BridgeID: uint64(b.NumID()), Src: ctl.Src, Dst: ctl.Dst, Nonce: ctl.Nonce},
	)
	if err != nil {
		panic("core: serialize PathReply: " + err.Error())
	}
	b.stats.PathRepliesSent++
	in.Send(reply)
	// Also release any frames we were buffering for Dst ourselves.
	b.completeRepair(ctl.Dst.Uint64(), e.Port, now)
	return true
}
