package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	hostpkg "repro/internal/host"
	"repro/internal/layers"
	"repro/internal/netsim"
	"repro/internal/tables"
)

// boundPorts returns n distinct live ports for bounded-table tests.
func boundPorts(n int) []*netsim.Port {
	net := netsim.NewNetwork(1)
	hub := hostpkg.New(net, "hub", 1)
	ports := make([]*netsim.Port, n)
	for i := range ports {
		peer := hostpkg.New(net, fmt.Sprintf("p%d", i+1), i+2)
		ports[i] = net.Connect(hub, peer, netsim.DefaultLinkConfig()).A()
	}
	return ports
}

// TestEvictionNeverTouchesGuardedEntries is the race-window property
// test: under randomized churn far above capacity, neither LRU nor clock
// may ever evict an entry whose §2.1.1 race window is still open —
// moving a binding mid-race would reopen the loop and duplication
// hazards the lock exists to prevent. The table admits over capacity
// instead.
func TestEvictionNeverTouchesGuardedEntries(t *testing.T) {
	const (
		lockTimeout = 100 * time.Millisecond
		capacity    = 32
		ops         = 20_000
	)
	for _, policy := range []tables.Policy{tables.PolicyLRU, tables.PolicyClock} {
		t.Run(policy.String(), func(t *testing.T) {
			ports := boundPorts(2)
			tb := NewBoundedLockTable(lockTimeout, time.Hour,
				tables.Config{Capacity: capacity, Policy: policy})
			rng := rand.New(rand.NewSource(int64(policy) + 42))

			// Shadow of every key's latest window-opening operation.
			lockedAt := map[uint64]time.Duration{}
			now := time.Duration(0)
			for i := 0; i < ops; i++ {
				now += time.Duration(rng.Intn(2000)) * time.Microsecond
				key := layers.HostMAC(rng.Intn(4096) + 1).Uint64()
				p := ports[rng.Intn(2)]
				switch rng.Intn(4) {
				case 0, 1: // lock opens a race window
					tb.LockKey(key, p, now)
					lockedAt[key] = now
				case 2:
					tb.LearnKey(key, p, now)
					// A learn on another port closes the window (the old
					// port's race is void), so the shadow must forget the
					// deadline — it only ever asserts on keys whose window
					// is provably still open, i.e. locked and untouched
					// since.
					delete(lockedAt, key)
				case 3:
					tb.GetKey(key, now)
				}
				if i%64 == 0 {
					for k, at := range lockedAt {
						if now-at >= lockTimeout {
							delete(lockedAt, k) // window closed
							continue
						}
						if _, ok := tb.entries[k]; !ok {
							t.Fatalf("op %d (%s): key %x evicted inside its race window (locked at %v, now %v)",
								i, policy, k, at, now)
						}
					}
				}
			}
			if tb.Evictions() == 0 {
				t.Fatalf("churn produced no evictions; the property was not exercised (resident %d, cap %d)",
					tb.Len(), capacity)
			}
		})
	}
}

// TestLockTablePortStateReclaim mirrors the PairTable side-table leak
// regression on the original per-host table: port generation records and
// the one-slot port cache must not outlive the entries referencing them.
func TestLockTablePortStateReclaim(t *testing.T) {
	const n = 64
	ports := boundPorts(n)
	tb := NewLockTable(time.Millisecond, 10*time.Millisecond)

	for i, p := range ports {
		tb.Learn(layers.HostMAC(i+1), p, 0)
	}
	if got := tb.PortStates(); got != n {
		t.Fatalf("PortStates = %d, want %d", got, n)
	}
	tb.FlushExpired(time.Second)
	if got := tb.PortStates(); got != 0 {
		t.Fatalf("PortStates = %d after all entries expired, want 0 (port records leak)", got)
	}

	// Repeated link flaps on one port must not accumulate records either.
	for flap := 0; flap < 100; flap++ {
		tb.Learn(layers.HostMAC(200), ports[0], time.Second)
		tb.FlushPort(ports[0])
	}
	tb.FlushExpired(2 * time.Second)
	if got := tb.PortStates(); got != 0 {
		t.Fatalf("PortStates = %d after 100 flaps and a sweep, want 0", got)
	}
	if tb.lastPS != nil || tb.lastPort != nil {
		t.Fatal("one-slot port cache still points at a reclaimed record")
	}
	tb.Learn(layers.HostMAC(201), ports[0], 3*time.Second)
	if e, ok := tb.Get(layers.HostMAC(201), 3*time.Second); !ok || e.Port != ports[0] {
		t.Fatal("learn after port-state reclaim failed")
	}
}

// TestLockTableCapacityBound: the bound holds under distinct-key churn
// once race windows close, evictions follow the policy's order, and the
// eviction/peak counters report what happened.
func TestLockTableCapacityBound(t *testing.T) {
	ports := boundPorts(1)
	const capacity = 16
	tb := NewBoundedLockTable(time.Millisecond, time.Hour,
		tables.Config{Capacity: capacity, Policy: tables.PolicyLRU})

	now := 10 * time.Millisecond
	for i := 1; i <= 200; i++ {
		tb.Learn(layers.HostMAC(i), ports[0], now)
		now += 2 * time.Millisecond // windows close between inserts
	}
	if got := tb.Entries(); got > capacity {
		t.Fatalf("Entries = %d, want ≤ %d", got, capacity)
	}
	if tb.Evictions() == 0 {
		t.Fatal("no evictions counted")
	}
	if tb.PeakEntries() > capacity {
		t.Fatalf("peak %d exceeded capacity %d without guarded entries", tb.PeakEntries(), capacity)
	}
	// LRU: the survivors are exactly the most recent inserts.
	if _, ok := tb.Get(layers.HostMAC(200), now); !ok {
		t.Fatal("most recent entry evicted")
	}
	if _, ok := tb.Get(layers.HostMAC(1), now); ok {
		t.Fatal("least recent entry survived 184 evictions")
	}
}

// BenchmarkTableChurn measures the bounded-table steady state the
// eviction-pressure experiment lives in: every op inserts a fresh key
// into a full table, forcing a policy eviction plus tracker recycling.
// The interesting number is allocs/op: it must be zero (the gate in
// ../../zeroalloc_test.go enforces this without -bench).
func BenchmarkTableChurn(b *testing.B) {
	for _, policy := range []tables.Policy{tables.PolicyLRU, tables.PolicyClock} {
		b.Run(policy.String(), func(b *testing.B) {
			ports := boundPorts(1)
			tb := NewBoundedLockTable(time.Millisecond, time.Hour,
				tables.Config{Capacity: 1024, Policy: policy})
			now := 10 * time.Millisecond
			for i := 0; i < 4096; i++ { // fill past capacity, warm the arena
				tb.LearnKey(uint64(i)+1<<32, ports[0], now)
				now += 2 * time.Millisecond
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tb.LearnKey(uint64(i)+1<<40, ports[0], now)
				now += 2 * time.Millisecond
			}
		})
	}
}
