package core

import (
	"testing"
	"time"

	realhost "repro/internal/host"
	"repro/internal/netsim"
)

// buildRestartLine cables H1—B1—B2—H2 with ARP-Path bridges and runs the
// warm-up HELLO exchange.
func buildRestartLine(t *testing.T) (*netsim.Network, *Bridge, *Bridge, *realhost.Host, *realhost.Host) {
	t.Helper()
	net := netsim.NewNetwork(1)
	b1 := New(net, "B1", 1, DefaultConfig())
	b2 := New(net, "B2", 2, DefaultConfig())
	h1 := realhost.New(net, "H1", 1)
	h2 := realhost.New(net, "H2", 2)
	net.Connect(h1, b1, netsim.DefaultLinkConfig())
	net.Connect(b1, b2, netsim.DefaultLinkConfig())
	net.Connect(b2, h2, netsim.DefaultLinkConfig())
	b1.Start()
	b2.Start()
	net.RunFor(10 * time.Millisecond)
	return net, b1, b2, h1, h2
}

// TestRestartLosesAllTables power-cycles a bridge and checks the lock
// table empties, the chassis forgets its neighbours, and both rebuild
// from live traffic without host involvement.
func TestRestartLosesAllTables(t *testing.T) {
	net, b1, b2, h1, h2 := buildRestartLine(t)

	ok := false
	net.Engine.At(net.Now(), func() {
		h1.Ping(h2.IP(), 56, time.Second, func(r realhost.PingResult) { ok = r.Err == nil })
	})
	net.RunFor(1500 * time.Millisecond)
	if !ok {
		t.Fatal("warmup ping failed")
	}
	if b1.Table().Len() == 0 {
		t.Fatal("warmup left no table entries")
	}
	trunk := b1.Port(1) // toward B2
	if !b1.IsTrunk(trunk) {
		t.Fatal("warmup did not classify the inter-bridge port as trunk")
	}

	net.Engine.At(net.Now(), func() { b1.Restart() })
	net.RunFor(time.Microsecond)
	if n := b1.Table().Len(); n != 0 {
		t.Fatalf("restart left %d table entries", n)
	}

	// The restart HELLO burst re-classifies ports on both sides.
	net.RunFor(10 * time.Millisecond)
	if !b1.IsTrunk(trunk) {
		t.Fatal("trunk classification did not rebuild after restart")
	}
	if !b2.IsTrunk(b2.Port(0)) {
		t.Fatal("peer lost its trunk classification")
	}

	// Traffic works again purely via relearning (ARP caches are warm, so
	// this exercises the unicast repair path through the blank bridge).
	ok = false
	net.Engine.At(net.Now(), func() {
		h1.Ping(h2.IP(), 56, 2*time.Second, func(r realhost.PingResult) { ok = r.Err == nil })
	})
	net.RunFor(3 * time.Second)
	if !ok {
		t.Fatal("ping after restart failed")
	}
}

// TestRestartReleasesBufferedRepairFrames checks the refcount contract
// across a crash: frames parked in repair buffers are released by
// Restart, so a drained network returns to its frame baseline.
func TestRestartReleasesBufferedRepairFrames(t *testing.T) {
	base := netsim.LiveFrames()
	net, b1, _, h1, h2 := buildRestartLine(t)

	ok := false
	net.Engine.At(net.Now(), func() {
		h1.Ping(h2.IP(), 56, time.Second, func(r realhost.PingResult) { ok = r.Err == nil })
	})
	net.RunFor(1500 * time.Millisecond)
	if !ok {
		t.Fatal("warmup ping failed")
	}

	// Force a repair with traffic in flight: blank B1's table, then let a
	// unicast miss buffer frames, and restart again mid-repair.
	net.Engine.At(net.Now(), func() {
		b1.Restart()
	})
	sock := h1.UDP(5000, nil)
	net.Engine.At(net.Now()+time.Millisecond, func() {
		sock.SendTo(h2.IP(), 5000, make([]byte, 100))
	})
	net.Engine.At(net.Now()+2*time.Millisecond, func() {
		if len(b1.repairs) > 0 {
			// A repair is pending with buffered frames; crash now.
			b1.Restart()
		}
	})
	net.Run()
	if got := netsim.LiveFrames(); got != base {
		t.Fatalf("live frames %d after drain, want baseline %d", got, base)
	}
	if n := len(b1.repairs); n != 0 {
		t.Fatalf("%d repairs survived restart", n)
	}
}

// TestLockTableReset checks Reset drops entries, port state and residency.
func TestLockTableReset(t *testing.T) {
	net := netsim.NewNetwork(1)
	a, b := realhost.New(net, "A", 1), realhost.New(net, "B", 2)
	l := net.Connect(a, b, netsim.DefaultLinkConfig())

	tbl := NewLockTable(time.Second, time.Minute)
	tbl.Lock(a.MAC(), l.A(), 0)
	tbl.Learn(b.MAC(), l.B(), 0)
	if tbl.Len() != 2 {
		t.Fatalf("Len=%d, want 2", tbl.Len())
	}
	tbl.Reset()
	if tbl.Len() != 0 {
		t.Fatalf("Len=%d after Reset", tbl.Len())
	}
	if _, ok := tbl.Get(a.MAC(), 0); ok {
		t.Fatal("entry survived Reset")
	}
	// The table is fully usable after Reset (fresh generations).
	tbl.Learn(a.MAC(), l.A(), 0)
	if e, ok := tbl.Get(a.MAC(), 0); !ok || e.Port != l.A() {
		t.Fatal("table unusable after Reset")
	}
}
