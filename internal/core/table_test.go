package core

import (
	"testing"
	"time"

	hostpkg "repro/internal/host"
	"repro/internal/layers"
	"repro/internal/netsim"
)

// twoPorts returns two distinct live ports for table tests.
func twoPorts() (*netsim.Port, *netsim.Port) {
	net := netsim.NewNetwork(1)
	a, b := hostpkg.New(net, "a", 1), hostpkg.New(net, "b", 2)
	c := hostpkg.New(net, "c", 3)
	l1 := net.Connect(a, b, netsim.DefaultLinkConfig())
	l2 := net.Connect(a, c, netsim.DefaultLinkConfig())
	return l1.A(), l2.A()
}

// TestGuardOnExpiredEntry: Guard must not resurrect an entry whose
// lifetime already ran out — the expired entry is evicted instead, and a
// later Get confirms it is gone.
func TestGuardOnExpiredEntry(t *testing.T) {
	p, _ := twoPorts()
	tb := NewLockTable(100*time.Millisecond, time.Second)
	m := layers.HostMAC(1)

	tb.Learn(m, p, 0) // expires at 1s
	tb.Guard(m, 1100*time.Millisecond)
	if _, ok := tb.Get(m, 1100*time.Millisecond); ok {
		t.Fatal("guard resurrected an expired entry")
	}
	if tb.Len() != 0 {
		t.Fatalf("Len = %d after guarding an expired entry, want 0", tb.Len())
	}

	// Same via the keyed API: locked entry expires, GuardKey is a no-op.
	tb.LockKey(m.Uint64(), p, 2*time.Second) // expires at 2.1s
	tb.GuardKey(m.Uint64(), 3*time.Second)
	if _, ok := tb.GetKey(m.Uint64(), 3*time.Second); ok {
		t.Fatal("GuardKey resurrected an expired lock")
	}
}

// TestLearnOnDifferentPortMidWindow: a Learn that moves the binding to
// another port while the race window is still open must reset the guard
// (the window belonged to the old port's race) — otherwise the moved
// entry would filter floods with a window it never won.
func TestLearnOnDifferentPortMidWindow(t *testing.T) {
	p1, p2 := twoPorts()
	tb := NewLockTable(100*time.Millisecond, time.Second)
	m := layers.HostMAC(1)

	tb.Lock(m, p1, 0) // window open until 100ms
	tb.Learn(m, p2, 50*time.Millisecond)
	e, ok := tb.Get(m, 60*time.Millisecond)
	if !ok {
		t.Fatal("entry lost")
	}
	if e.Port != p2 || e.State != StateLearned {
		t.Fatalf("entry = %+v, want learned on p2", e)
	}
	if e.Guarded(60 * time.Millisecond) {
		t.Fatal("race window survived a port move")
	}

	// Learning on the SAME port mid-window preserves the window.
	tb.Lock(m, p1, time.Second)
	tb.Learn(m, p1, 1050*time.Millisecond)
	e, _ = tb.Get(m, 1060*time.Millisecond)
	if !e.Guarded(1060 * time.Millisecond) {
		t.Fatal("same-port confirm dropped the race window")
	}
	if e.Guarded(1101 * time.Millisecond) {
		t.Fatal("window did not close at the original deadline")
	}
}

// TestSnapshotExcludesExpiredUnswept: entries past their deadline stay
// resident until touched (lazy expiry), but Snapshot must not report
// them; flush-killed corpses are equally invisible.
func TestSnapshotExcludesExpiredUnswept(t *testing.T) {
	p1, p2 := twoPorts()
	tb := NewLockTable(100*time.Millisecond, time.Second)
	live, stale, flushed := layers.HostMAC(1), layers.HostMAC(2), layers.HostMAC(3)

	tb.Learn(live, p1, 500*time.Millisecond) // expires 1.5s
	tb.Lock(stale, p1, 0)                    // expires 100ms, never touched again
	tb.Learn(flushed, p2, 500*time.Millisecond)
	tb.FlushPort(p2)

	snap := tb.Snapshot(time.Second)
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d entries, want 1: %v", len(snap), snap)
	}
	if _, ok := snap[live]; !ok {
		t.Fatal("live entry missing from snapshot")
	}
	if _, ok := snap[stale]; ok {
		t.Fatal("expired-but-unswept entry leaked into snapshot")
	}
	if _, ok := snap[flushed]; ok {
		t.Fatal("flushed entry leaked into snapshot")
	}
}

// TestFlushPortIsGenerationBased: FlushPort must kill every binding on
// the port in O(1), report the count, leave other ports untouched, and
// keep the map consistent when corpses are overwritten later.
func TestFlushPortIsGenerationBased(t *testing.T) {
	p1, p2 := twoPorts()
	tb := NewLockTable(100*time.Millisecond, time.Minute)
	for i := 1; i <= 10; i++ {
		tb.Learn(layers.HostMAC(i), p1, 0)
	}
	tb.Learn(layers.HostMAC(11), p2, 0)
	if tb.Len() != 11 {
		t.Fatalf("Len = %d, want 11", tb.Len())
	}
	if purged := tb.FlushPort(p1); purged != 10 {
		t.Fatalf("FlushPort purged %d, want 10", purged)
	}
	if tb.Len() != 1 {
		t.Fatalf("Len = %d after flush, want 1", tb.Len())
	}
	if _, ok := tb.Get(layers.HostMAC(3), time.Millisecond); ok {
		t.Fatal("flushed entry still visible")
	}
	if _, ok := tb.Get(layers.HostMAC(11), time.Millisecond); !ok {
		t.Fatal("entry on the surviving port was lost")
	}
	// Re-learning a flushed MAC on the same port works (new generation).
	tb.Learn(layers.HostMAC(3), p1, time.Millisecond)
	if e, ok := tb.Get(layers.HostMAC(3), 2*time.Millisecond); !ok || e.Port != p1 {
		t.Fatal("re-learn after flush failed")
	}
	if tb.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tb.Len())
	}
	// A second flush only counts the re-learned entry.
	if purged := tb.FlushPort(p1); purged != 1 {
		t.Fatalf("second FlushPort purged %d, want 1", purged)
	}
	// FlushExpired reclaims all corpses left behind by both flushes.
	tb.FlushExpired(2 * time.Millisecond)
	if got := len(tb.Snapshot(2 * time.Millisecond)); got != 1 {
		t.Fatalf("after sweep: %d live entries, want 1", got)
	}
}

// TestRefreshExtendsByState: refresh keeps a locked entry on the short
// clock and a learned entry on the long one, and drops expired entries.
func TestRefreshExtendsByState(t *testing.T) {
	p, _ := twoPorts()
	tb := NewLockTable(100*time.Millisecond, time.Second)
	m := layers.HostMAC(1)

	tb.Lock(m, p, 0)
	tb.Refresh(m, 50*time.Millisecond) // locked: now +100ms = 150ms
	if _, ok := tb.Get(m, 140*time.Millisecond); !ok {
		t.Fatal("refresh did not extend the lock window lifetime")
	}
	if _, ok := tb.Get(m, 151*time.Millisecond); ok {
		t.Fatal("locked refresh extended past the lock timeout")
	}

	tb.Learn(m, p, time.Second)
	tb.Refresh(m, 1500*time.Millisecond) // learned: now +1s
	if _, ok := tb.Get(m, 2400*time.Millisecond); !ok {
		t.Fatal("refresh did not extend the learned lifetime")
	}
	// Refreshing an expired entry is a no-op eviction.
	tb.Refresh(m, 10*time.Second)
	if tb.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tb.Len())
	}
}
