package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/layers"
	"repro/internal/netsim"
)

// TestProxyCacheSweepsExpired is the unit-level half of the unbounded-
// growth regression: bindings learned in one timeout window must leave the
// map once a later learn arrives after they expired, without anyone ever
// looking them up again.
func TestProxyCacheSweepsExpired(t *testing.T) {
	const timeout = 50 * time.Millisecond
	c := newProxyCache(timeout)
	mac := layers.HostMAC(1)

	// Fill several whole windows with one-shot bindings, never looked up.
	now := time.Duration(0)
	for win := 0; win < 6; win++ {
		for i := 0; i < 100; i++ {
			c.learn(layers.HostIP(win*100+i+1), mac, now)
			now += timeout / 100
		}
	}
	// The map may hold at most the bindings of the last two windows (the
	// sweep fires once per timeout period); six windows' worth resident
	// means expired entries are accumulating.
	if len(c.ip2mac) > 250 {
		t.Fatalf("proxy cache holds %d bindings; expired entries are never evicted", len(c.ip2mac))
	}
	// And the live tail must still be resident.
	if _, ok := c.lookup(layers.HostIP(600), now); !ok {
		t.Fatal("freshest binding was swept")
	}
}

// TestProxyCacheBoundedAcrossTimeouts drives a real proxy-enabled fabric
// past several proxy timeouts: a set of hosts each speaks once, then goes
// quiet while one chatty host keeps the edge bridge's learn path hot. The
// quiet hosts' bindings must leave the cache once expired — before the
// sweep, the ip2mac map only ever grew for the lifetime of the fabric.
func TestProxyCacheBoundedAcrossTimeouts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Proxy = true
	cfg.ProxyTimeout = 50 * time.Millisecond
	net := netsim.NewNetwork(1)
	a := New(net, "A", 1, cfg)

	chatty := newHost("S", 1)
	net.Connect(chatty, a, link(5*time.Microsecond))
	const quiet = 8
	others := make([]*host, quiet)
	for i := range others {
		others[i] = newHost(fmt.Sprintf("Q%d", i+2), i+2)
		net.Connect(others[i], a, link(5*time.Microsecond))
	}
	a.Start()
	net.RunFor(time.Millisecond)

	// Window 0: every quiet host announces itself once.
	for _, h := range others {
		h := h
		net.Engine.At(net.Now(), func() { h.sendARPRequest(chatty.ip) })
	}
	net.RunFor(10 * time.Millisecond)
	if got := len(a.proxy.ip2mac); got < quiet {
		t.Fatalf("cache seeded with %d bindings, want >= %d", got, quiet)
	}

	// Several timeout windows of nothing but the chatty host: its periodic
	// requests keep learn() firing, which must sweep the stale bindings.
	for i := 0; i < 20; i++ {
		net.Engine.At(net.Now(), func() { chatty.sendARPRequest(others[0].ip) })
		net.RunFor(20 * time.Millisecond)
	}

	// Resident set: the chatty host, its target, and nothing stale.
	if got := len(a.proxy.ip2mac); got > 3 {
		t.Fatalf("cache still holds %d bindings after %v of quiet; expired entries never evicted",
			got, net.Now())
	}
}
