// Package core implements the paper's contribution: ARP-Path (FastPath)
// low-latency transparent bridges. Bridges exploit the race between flooded
// copies of an ARP Request to lock the minimum-latency path toward the
// source (§2.1.1), confirm it with the unicast ARP Reply (§2.1.2), forward
// all traffic over the established symmetric paths (§2.1.3), and repair
// broken paths with PathFail / PathRequest / PathReply control frames
// (§2.1.4). The optional in-switch ARP Proxy (§2.2, EtherProxy [5])
// suppresses redundant ARP floods.
package core

import (
	"time"

	"repro/internal/layers"
	"repro/internal/netsim"
)

// EntryState is the state of a locking-table entry.
type EntryState uint8

// Entry states.
const (
	// StateLocked marks an address locked to the port where the first copy
	// of a broadcast arrived; the race window. Frames from that address
	// arriving on other ports are discarded while the lock is live.
	StateLocked EntryState = iota
	// StateLearned marks a confirmed path entry (the ARP/Path Reply passed
	// through, or traffic refreshed it).
	StateLearned
)

// String names the state.
func (s EntryState) String() string {
	switch s {
	case StateLocked:
		return "locked"
	case StateLearned:
		return "learned"
	default:
		return "state(?)"
	}
}

// Entry is one locking-table binding.
type Entry struct {
	Port    *netsim.Port
	State   EntryState
	Expires time.Duration
	// LockedUntil is the end of the race window. While it lies in the
	// future, the binding's port must not move: copies of the flood
	// arriving on other ports are discarded even if the entry has already
	// been confirmed (learned) by the returning reply. Without this guard
	// a slow race copy arriving after confirmation would steal the lock
	// and drag the path onto the slower branch.
	LockedUntil time.Duration
}

// Guarded reports whether the race window is still open at time now.
func (e Entry) Guarded(now time.Duration) bool { return now < e.LockedUntil }

// LockTable is the ARP-Path locking table: MAC → (port, locked|learned,
// expiry). It is the bridge's only forwarding state — there is no routing
// protocol and no tree (§1).
type LockTable struct {
	lockTimeout    time.Duration
	learnedTimeout time.Duration
	entries        map[layers.MAC]Entry
}

// NewLockTable builds an empty table with the two ARP-Path timeouts: the
// short race window for locked entries and the long lifetime for
// confirmed (learned) entries.
func NewLockTable(lockTimeout, learnedTimeout time.Duration) *LockTable {
	if lockTimeout <= 0 || learnedTimeout <= 0 {
		panic("core: timeouts must be positive")
	}
	return &LockTable{
		lockTimeout:    lockTimeout,
		learnedTimeout: learnedTimeout,
		entries:        make(map[layers.MAC]Entry),
	}
}

// Get returns the live entry for mac, evicting it lazily if expired.
func (t *LockTable) Get(mac layers.MAC, now time.Duration) (Entry, bool) {
	e, ok := t.entries[mac]
	if !ok {
		return Entry{}, false
	}
	if e.Expires <= now {
		delete(t.entries, mac)
		return Entry{}, false
	}
	return e, true
}

// Lock binds mac to port in the locked state, starting (or restarting)
// the race window.
func (t *LockTable) Lock(mac layers.MAC, port *netsim.Port, now time.Duration) {
	if mac.IsMulticast() || mac.IsZero() {
		return
	}
	t.entries[mac] = Entry{
		Port:        port,
		State:       StateLocked,
		Expires:     now + t.lockTimeout,
		LockedUntil: now + t.lockTimeout,
	}
}

// Learn binds mac to port in the learned state (path confirmed). A
// confirmation on the entry's existing port preserves the remaining race
// window so late flood copies stay filtered.
func (t *LockTable) Learn(mac layers.MAC, port *netsim.Port, now time.Duration) {
	if mac.IsMulticast() || mac.IsZero() {
		return
	}
	lockedUntil := time.Duration(0)
	if old, ok := t.entries[mac]; ok && old.Port == port {
		lockedUntil = old.LockedUntil
	}
	t.entries[mac] = Entry{
		Port:        port,
		State:       StateLearned,
		Expires:     now + t.learnedTimeout,
		LockedUntil: lockedUntil,
	}
}

// Guard re-arms the race window on mac's current binding without moving
// the port, shortening the entry's remaining lifetime, or downgrading a
// learned entry. Used when a bridge originates a PathRequest on a host's
// behalf: copies of that flood returning over other ports must be
// filtered exactly as for a host-sent request, but the bridge must not
// forget its own attached host if the repair goes unanswered.
func (t *LockTable) Guard(mac layers.MAC, now time.Duration) {
	e, ok := t.Get(mac, now)
	if !ok {
		return
	}
	e.LockedUntil = now + t.lockTimeout
	if e.Expires < e.LockedUntil {
		e.Expires = e.LockedUntil
	}
	t.entries[mac] = e
}

// Refresh extends the current entry's lifetime without changing its state
// or port. Refreshing a missing or expired entry is a no-op.
func (t *LockTable) Refresh(mac layers.MAC, now time.Duration) {
	e, ok := t.Get(mac, now)
	if !ok {
		return
	}
	switch e.State {
	case StateLocked:
		e.Expires = now + t.lockTimeout
	case StateLearned:
		e.Expires = now + t.learnedTimeout
	}
	t.entries[mac] = e
}

// Delete removes mac's entry (stale-path teardown during repair).
func (t *LockTable) Delete(mac layers.MAC) { delete(t.entries, mac) }

// FlushPort removes every entry bound to port (link failure).
func (t *LockTable) FlushPort(port *netsim.Port) {
	for mac, e := range t.entries {
		if e.Port == port {
			delete(t.entries, mac)
		}
	}
}

// Len returns the number of stored entries including not-yet-swept ones.
func (t *LockTable) Len() int { return len(t.entries) }

// FlushExpired sweeps all expired entries eagerly.
func (t *LockTable) FlushExpired(now time.Duration) {
	for mac, e := range t.entries {
		if e.Expires <= now {
			delete(t.entries, mac)
		}
	}
}

// Snapshot returns a copy of the live entries; used by experiments to
// reconstruct the path a flow has locked (Figure 1's bubbles).
func (t *LockTable) Snapshot(now time.Duration) map[layers.MAC]Entry {
	out := make(map[layers.MAC]Entry, len(t.entries))
	for mac, e := range t.entries {
		if e.Expires > now {
			out[mac] = e
		}
	}
	return out
}
