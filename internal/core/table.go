// Package core implements the paper's contribution: ARP-Path (FastPath)
// low-latency transparent bridges. Bridges exploit the race between flooded
// copies of an ARP Request to lock the minimum-latency path toward the
// source (§2.1.1), confirm it with the unicast ARP Reply (§2.1.2), forward
// all traffic over the established symmetric paths (§2.1.3), and repair
// broken paths with PathFail / PathRequest / PathReply control frames
// (§2.1.4). The optional in-switch ARP Proxy (§2.2, EtherProxy [5])
// suppresses redundant ARP floods.
package core

import (
	"time"

	"repro/internal/layers"
	"repro/internal/netsim"
	"repro/internal/tables"
)

// EntryState is the state of a locking-table entry.
type EntryState uint8

// Entry states.
const (
	// StateLocked marks an address locked to the port where the first copy
	// of a broadcast arrived; the race window. Frames from that address
	// arriving on other ports are discarded while the lock is live.
	StateLocked EntryState = iota
	// StateLearned marks a confirmed path entry (the ARP/Path Reply passed
	// through, or traffic refreshed it).
	StateLearned
)

// String names the state.
func (s EntryState) String() string {
	switch s {
	case StateLocked:
		return "locked"
	case StateLearned:
		return "learned"
	default:
		return "state(?)"
	}
}

// Entry is one locking-table binding.
type Entry struct {
	Port    *netsim.Port
	State   EntryState
	Expires time.Duration
	// LockedUntil is the end of the race window. While it lies in the
	// future, the binding's port must not move: copies of the flood
	// arriving on other ports are discarded even if the entry has already
	// been confirmed (learned) by the returning reply. Without this guard
	// a slow race copy arriving after confirmation would steal the lock
	// and drag the path onto the slower branch.
	LockedUntil time.Duration
}

// Guarded reports whether the race window is still open at time now.
func (e Entry) Guarded(now time.Duration) bool { return now < e.LockedUntil }

// tableEntry is the stored form: the public Entry plus the generation of
// its port at bind time. A port's generation advances on FlushPort, which
// kills every entry bound to it in O(1) without touching the map. The
// portState pointer is cached in the entry so the hot-path liveness check
// costs a pointer chase, not a second map lookup.
type tableEntry struct {
	Entry
	gen uint32
	ps  *portState
	th  tables.Handle // recency-tracker handle; 0 when untracked
}

// portState is the per-port side table backing constant-time flushes.
type portState struct {
	gen  uint32 // current generation; entries with an older gen are dead
	live int    // resident entries bound to this port at the current gen
}

// LockTable is the ARP-Path locking table: MAC → (port, locked|learned,
// expiry). It is the bridge's only forwarding state — there is no routing
// protocol and no tree (§1).
//
// The table is keyed by the uint64-packed MAC (layers.MAC.Uint64): the
// simulator decodes the packed keys once per frame into the FrameView, and
// an 8-byte integer key hashes faster than a [6]byte array. Expiry is
// lazy (checked on access) and link failures are handled by per-port
// generation counters, so no operation on the hot path scans the table.
//
// Production bounds (DESIGN.md §12): the table may be capacity-bounded
// with an LRU or clock eviction policy (internal/tables). The bound counts
// map entries — live bindings and flushed-generation corpses alike — so it
// bounds actual memory, not just Len(). Corpses and expired entries are
// additionally reclaimed by an amortized sweep (one full pass per learned
// timeout, proxyCache-style) so even the unbounded configuration cannot
// leak under churn.
type LockTable struct {
	lockTimeout    time.Duration
	learnedTimeout time.Duration
	capacity       int
	tracker        *tables.Tracker[uint64] // nil for the timeout baseline
	entries        map[uint64]tableEntry
	ports          map[*netsim.Port]*portState
	resident       int // entries in the map whose port generation is current

	evictions uint64        // capacity evictions of live entries (not corpse reclaim)
	peak      int           // high-water mark of len(entries)
	nextSweep time.Duration // next amortized FlushExpired deadline

	// One-slot cache for the port side table: a bridge stores runs of
	// entries against the same handful of ports, so this turns the
	// per-store ports-map lookup into a pointer compare.
	lastPort *netsim.Port
	lastPS   *portState
}

// NewLockTable builds an empty unbounded table with the two ARP-Path
// timeouts: the short race window for locked entries and the long lifetime
// for confirmed (learned) entries.
func NewLockTable(lockTimeout, learnedTimeout time.Duration) *LockTable {
	return NewBoundedLockTable(lockTimeout, learnedTimeout, tables.Config{})
}

// NewBoundedLockTable builds an empty table with a capacity bound and
// eviction policy on top of the timeouts. The zero Config is the unbounded
// timeout baseline (exactly NewLockTable).
func NewBoundedLockTable(lockTimeout, learnedTimeout time.Duration, bound tables.Config) *LockTable {
	if lockTimeout <= 0 || learnedTimeout <= 0 {
		panic("core: timeouts must be positive")
	}
	if err := bound.Validate(); err != nil {
		panic("core: " + err.Error())
	}
	t := &LockTable{
		lockTimeout:    lockTimeout,
		learnedTimeout: learnedTimeout,
		capacity:       bound.Capacity,
		entries:        make(map[uint64]tableEntry),
		ports:          make(map[*netsim.Port]*portState),
	}
	if bound.Tracked() {
		t.tracker = tables.NewTracker[uint64](bound.Policy)
	}
	return t
}

func (t *LockTable) port(p *netsim.Port) *portState {
	if p == t.lastPort {
		return t.lastPS
	}
	st, ok := t.ports[p]
	if !ok {
		st = &portState{}
		t.ports[p] = st
	}
	t.lastPort, t.lastPS = p, st
	return st
}

// dead reports whether a stored entry is no longer valid at now: past its
// expiry, or bound to a port generation that has been flushed.
func (t *LockTable) dead(e tableEntry, now time.Duration) bool {
	return e.Expires <= now || e.gen != e.ps.gen
}

// evict removes a stored entry, maintaining the residency counters.
func (t *LockTable) evict(key uint64, e tableEntry) {
	if e.gen == e.ps.gen {
		e.ps.live--
		t.resident--
	}
	if t.tracker != nil {
		t.tracker.Remove(e.th)
	}
	delete(t.entries, key)
}

// maybeSweep runs the amortized corpse sweep: at most one full
// FlushExpired per learned timeout, charged to the write that crossed the
// deadline (proxyCache's discipline). Callers must invoke it before
// snapshotting the previous entry — the sweep may evict the very key about
// to be overwritten.
func (t *LockTable) maybeSweep(now time.Duration) {
	if now >= t.nextSweep {
		t.FlushExpired(now)
		t.nextSweep = now + t.learnedTimeout
	}
}

// makeRoom enforces the capacity bound before a new key is inserted.
// Victims come from the recency tracker in deterministic order; dead
// entries (corpses, expired) are reclaimed for free, live unguarded
// entries are force-evicted (counted), and entries inside their §2.1.1
// race window are never evicted — moving a binding mid-race would reopen
// the loop/duplication hazards the lock exists to prevent. Guarded
// rejections are budgeted (tables.RejectBudget): when the budget runs out
// the table admits over capacity, keeping each insert O(1) even when open
// race windows dominate the table; the overshoot is bounded by the number
// of concurrently open windows.
func (t *LockTable) makeRoom(now time.Duration) {
	if t.tracker == nil || t.capacity <= 0 {
		return
	}
	for rejects := tables.RejectBudget; len(t.entries) >= t.capacity; {
		h, ok := t.tracker.Victim()
		if !ok {
			return
		}
		key := t.tracker.Key(h)
		e := t.entries[key]
		switch {
		case t.dead(e, now):
			t.evict(key, e)
		case !e.Guarded(now):
			t.evictions++
			t.evict(key, e)
		default:
			t.tracker.Reject(h)
			if rejects--; rejects <= 0 {
				return
			}
		}
	}
}

// store writes e under key given the previous entry (old, hadOld) from a
// lookup the caller already paid for, maintaining the residency counters,
// the recency tracker and the capacity bound.
func (t *LockTable) store(key uint64, old tableEntry, hadOld bool, e Entry, now time.Duration) {
	if hadOld && old.gen == old.ps.gen {
		old.ps.live--
		t.resident--
	}
	if !hadOld && t.capacity > 0 && len(t.entries) >= t.capacity {
		t.makeRoom(now)
	}
	st := t.port(e.Port)
	st.live++
	t.resident++
	ne := tableEntry{Entry: e, gen: st.gen, ps: st}
	if t.tracker != nil {
		if hadOld {
			ne.th = old.th
			t.tracker.Touch(ne.th)
		} else {
			ne.th = t.tracker.Insert(key)
		}
	}
	t.entries[key] = ne
	if len(t.entries) > t.peak {
		t.peak = len(t.entries)
	}
}

// GetKey returns the live entry for a packed key, evicting it lazily if
// expired or flushed.
func (t *LockTable) GetKey(key uint64, now time.Duration) (Entry, bool) {
	e, ok := t.entries[key]
	if !ok {
		return Entry{}, false
	}
	if t.dead(e, now) {
		t.evict(key, e)
		return Entry{}, false
	}
	if t.tracker != nil {
		t.tracker.Touch(e.th)
	}
	return e.Entry, true
}

// Get returns the live entry for mac, evicting it lazily if expired.
func (t *LockTable) Get(mac layers.MAC, now time.Duration) (Entry, bool) {
	return t.GetKey(mac.Uint64(), now)
}

// LockKey binds a packed key to port in the locked state, starting (or
// restarting) the race window.
func (t *LockTable) LockKey(key uint64, port *netsim.Port, now time.Duration) {
	if layers.KeyIsMulticast(key) || key == 0 {
		return
	}
	t.maybeSweep(now)
	old, hadOld := t.entries[key]
	t.store(key, old, hadOld, Entry{
		Port:        port,
		State:       StateLocked,
		Expires:     now + t.lockTimeout,
		LockedUntil: now + t.lockTimeout,
	}, now)
}

// Lock binds mac to port in the locked state, starting (or restarting)
// the race window.
func (t *LockTable) Lock(mac layers.MAC, port *netsim.Port, now time.Duration) {
	t.LockKey(mac.Uint64(), port, now)
}

// LearnKey binds a packed key to port in the learned state (path
// confirmed). A confirmation on the entry's existing port preserves the
// remaining race window so late flood copies stay filtered.
func (t *LockTable) LearnKey(key uint64, port *netsim.Port, now time.Duration) {
	if layers.KeyIsMulticast(key) || key == 0 {
		return
	}
	t.maybeSweep(now)
	old, hadOld := t.entries[key]
	lockedUntil := time.Duration(0)
	if hadOld && old.Port == port && !t.dead(old, now) {
		lockedUntil = old.LockedUntil
	}
	t.store(key, old, hadOld, Entry{
		Port:        port,
		State:       StateLearned,
		Expires:     now + t.learnedTimeout,
		LockedUntil: lockedUntil,
	}, now)
}

// Learn binds mac to port in the learned state (path confirmed).
func (t *LockTable) Learn(mac layers.MAC, port *netsim.Port, now time.Duration) {
	t.LearnKey(mac.Uint64(), port, now)
}

// GuardKey re-arms the race window on the current binding without moving
// the port, shortening the entry's remaining lifetime, or downgrading a
// learned entry. Used when a bridge originates a PathRequest on a host's
// behalf: copies of that flood returning over other ports must be
// filtered exactly as for a host-sent request, but the bridge must not
// forget its own attached host if the repair goes unanswered.
func (t *LockTable) GuardKey(key uint64, now time.Duration) {
	e, ok := t.entries[key]
	if !ok {
		return
	}
	if t.dead(e, now) {
		t.evict(key, e)
		return
	}
	// The port does not move, so the residency counters are unchanged and
	// the entry can be rewritten in place.
	e.LockedUntil = now + t.lockTimeout
	if e.Expires < e.LockedUntil {
		e.Expires = e.LockedUntil
	}
	if t.tracker != nil {
		t.tracker.Touch(e.th)
	}
	t.entries[key] = e
}

// Guard re-arms the race window on mac's current binding.
func (t *LockTable) Guard(mac layers.MAC, now time.Duration) {
	t.GuardKey(mac.Uint64(), now)
}

// RefreshKey extends the current entry's lifetime without changing its
// state or port. Refreshing a missing or expired entry is a no-op.
func (t *LockTable) RefreshKey(key uint64, now time.Duration) {
	e, ok := t.entries[key]
	if !ok {
		return
	}
	if t.dead(e, now) {
		t.evict(key, e)
		return
	}
	switch e.State {
	case StateLocked:
		e.Expires = now + t.lockTimeout
	case StateLearned:
		e.Expires = now + t.learnedTimeout
	}
	if t.tracker != nil {
		t.tracker.Touch(e.th)
	}
	// Same port, same generation: rewrite in place, counters unchanged.
	t.entries[key] = e
}

// Refresh extends the current entry's lifetime without changing its state
// or port.
func (t *LockTable) Refresh(mac layers.MAC, now time.Duration) {
	t.RefreshKey(mac.Uint64(), now)
}

// DeleteKey removes a packed key's entry (stale-path teardown during
// repair).
func (t *LockTable) DeleteKey(key uint64) {
	if e, ok := t.entries[key]; ok {
		t.evict(key, e)
	}
}

// Delete removes mac's entry.
func (t *LockTable) Delete(mac layers.MAC) { t.DeleteKey(mac.Uint64()) }

// FlushPort invalidates every entry bound to port (link failure) in O(1)
// by advancing the port's generation; the map corpses are reclaimed
// lazily on access or by FlushExpired. It returns the number of entries
// invalidated.
func (t *LockTable) FlushPort(port *netsim.Port) int {
	st := t.port(port)
	n := st.live
	st.gen++
	st.live = 0
	t.resident -= n
	return n
}

// Len returns the number of live-generation entries, including expired
// ones that have not been touched since their deadline.
func (t *LockTable) Len() int { return t.resident }

// Entries returns the number of map entries including flushed-generation
// corpses awaiting reclamation: the table's actual memory footprint, the
// quantity the capacity bound and the leak regression tests are about.
func (t *LockTable) Entries() int { return len(t.entries) }

// PortStates returns the number of per-port side-table records, live and
// idle. Idle records are reclaimed by FlushExpired.
func (t *LockTable) PortStates() int { return len(t.ports) }

// Evictions returns the cumulative count of live entries force-evicted by
// the capacity bound (corpse reclamation is not an eviction).
func (t *LockTable) Evictions() uint64 { return t.evictions }

// PeakEntries returns the high-water mark of Entries() over the table's
// lifetime: the occupancy figure the eviction-pressure experiment plots.
func (t *LockTable) PeakEntries() int { return t.peak }

// Reset drops every entry and every port generation: the table is as
// empty as at construction. This is total state loss (a bridge restart),
// not a link event — use FlushPort for those. Lifetime statistics
// (evictions, peak occupancy) survive.
func (t *LockTable) Reset() {
	clear(t.entries)
	clear(t.ports)
	t.resident = 0
	t.nextSweep = 0
	t.lastPort = nil
	t.lastPS = nil
	if t.tracker != nil {
		t.tracker.Reset()
	}
}

// FlushExpired sweeps all expired and flushed entries eagerly, then
// reclaims port-state records with no surviving entries (after the sweep,
// a zero live count proves no entry references the record — everything
// left is live-generation). The dataplane never calls this directly; the
// amortized sweep does, bounding memory for long-lived tables, and
// experiments call it for exact counts.
func (t *LockTable) FlushExpired(now time.Duration) {
	for key, e := range t.entries {
		if t.dead(e, now) {
			t.evict(key, e)
		}
	}
	for p, st := range t.ports {
		if st.live == 0 {
			if t.lastPort == p {
				t.lastPort = nil
				t.lastPS = nil
			}
			delete(t.ports, p)
		}
	}
}

// Snapshot returns a copy of the live entries; used by experiments to
// reconstruct the path a flow has locked (Figure 1's bubbles).
func (t *LockTable) Snapshot(now time.Duration) map[layers.MAC]Entry {
	out := make(map[layers.MAC]Entry, len(t.entries))
	for key, e := range t.entries {
		if !t.dead(e, now) {
			out[layers.MACFromUint64(key)] = e.Entry
		}
	}
	return out
}
