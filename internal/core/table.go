// Package core implements the paper's contribution: ARP-Path (FastPath)
// low-latency transparent bridges. Bridges exploit the race between flooded
// copies of an ARP Request to lock the minimum-latency path toward the
// source (§2.1.1), confirm it with the unicast ARP Reply (§2.1.2), forward
// all traffic over the established symmetric paths (§2.1.3), and repair
// broken paths with PathFail / PathRequest / PathReply control frames
// (§2.1.4). The optional in-switch ARP Proxy (§2.2, EtherProxy [5])
// suppresses redundant ARP floods.
package core

import (
	"time"

	"repro/internal/layers"
	"repro/internal/netsim"
)

// EntryState is the state of a locking-table entry.
type EntryState uint8

// Entry states.
const (
	// StateLocked marks an address locked to the port where the first copy
	// of a broadcast arrived; the race window. Frames from that address
	// arriving on other ports are discarded while the lock is live.
	StateLocked EntryState = iota
	// StateLearned marks a confirmed path entry (the ARP/Path Reply passed
	// through, or traffic refreshed it).
	StateLearned
)

// String names the state.
func (s EntryState) String() string {
	switch s {
	case StateLocked:
		return "locked"
	case StateLearned:
		return "learned"
	default:
		return "state(?)"
	}
}

// Entry is one locking-table binding.
type Entry struct {
	Port    *netsim.Port
	State   EntryState
	Expires time.Duration
	// LockedUntil is the end of the race window. While it lies in the
	// future, the binding's port must not move: copies of the flood
	// arriving on other ports are discarded even if the entry has already
	// been confirmed (learned) by the returning reply. Without this guard
	// a slow race copy arriving after confirmation would steal the lock
	// and drag the path onto the slower branch.
	LockedUntil time.Duration
}

// Guarded reports whether the race window is still open at time now.
func (e Entry) Guarded(now time.Duration) bool { return now < e.LockedUntil }

// tableEntry is the stored form: the public Entry plus the generation of
// its port at bind time. A port's generation advances on FlushPort, which
// kills every entry bound to it in O(1) without touching the map. The
// portState pointer is cached in the entry so the hot-path liveness check
// costs a pointer chase, not a second map lookup.
type tableEntry struct {
	Entry
	gen uint32
	ps  *portState
}

// portState is the per-port side table backing constant-time flushes.
type portState struct {
	gen  uint32 // current generation; entries with an older gen are dead
	live int    // resident entries bound to this port at the current gen
}

// LockTable is the ARP-Path locking table: MAC → (port, locked|learned,
// expiry). It is the bridge's only forwarding state — there is no routing
// protocol and no tree (§1).
//
// The table is keyed by the uint64-packed MAC (layers.MAC.Uint64): the
// simulator decodes the packed keys once per frame into the FrameView, and
// an 8-byte integer key hashes faster than a [6]byte array. Expiry is
// lazy (checked on access) and link failures are handled by per-port
// generation counters, so no operation on the hot path scans the table.
type LockTable struct {
	lockTimeout    time.Duration
	learnedTimeout time.Duration
	entries        map[uint64]tableEntry
	ports          map[*netsim.Port]*portState
	resident       int // entries in the map whose port generation is current

	// One-slot cache for the port side table: a bridge stores runs of
	// entries against the same handful of ports, so this turns the
	// per-store ports-map lookup into a pointer compare.
	lastPort *netsim.Port
	lastPS   *portState
}

// NewLockTable builds an empty table with the two ARP-Path timeouts: the
// short race window for locked entries and the long lifetime for
// confirmed (learned) entries.
func NewLockTable(lockTimeout, learnedTimeout time.Duration) *LockTable {
	if lockTimeout <= 0 || learnedTimeout <= 0 {
		panic("core: timeouts must be positive")
	}
	return &LockTable{
		lockTimeout:    lockTimeout,
		learnedTimeout: learnedTimeout,
		entries:        make(map[uint64]tableEntry),
		ports:          make(map[*netsim.Port]*portState),
	}
}

func (t *LockTable) port(p *netsim.Port) *portState {
	if p == t.lastPort {
		return t.lastPS
	}
	st, ok := t.ports[p]
	if !ok {
		st = &portState{}
		t.ports[p] = st
	}
	t.lastPort, t.lastPS = p, st
	return st
}

// dead reports whether a stored entry is no longer valid at now: past its
// expiry, or bound to a port generation that has been flushed.
func (t *LockTable) dead(e tableEntry, now time.Duration) bool {
	return e.Expires <= now || e.gen != e.ps.gen
}

// evict removes a stored entry, maintaining the residency counters.
func (t *LockTable) evict(key uint64, e tableEntry) {
	if e.gen == e.ps.gen {
		e.ps.live--
		t.resident--
	}
	delete(t.entries, key)
}

// store writes e under key given the previous entry (old, hadOld) from a
// lookup the caller already paid for, maintaining the residency counters.
func (t *LockTable) store(key uint64, old tableEntry, hadOld bool, e Entry) {
	if hadOld && old.gen == old.ps.gen {
		old.ps.live--
		t.resident--
	}
	st := t.port(e.Port)
	st.live++
	t.resident++
	t.entries[key] = tableEntry{Entry: e, gen: st.gen, ps: st}
}

// GetKey returns the live entry for a packed key, evicting it lazily if
// expired or flushed.
func (t *LockTable) GetKey(key uint64, now time.Duration) (Entry, bool) {
	e, ok := t.entries[key]
	if !ok {
		return Entry{}, false
	}
	if t.dead(e, now) {
		t.evict(key, e)
		return Entry{}, false
	}
	return e.Entry, true
}

// Get returns the live entry for mac, evicting it lazily if expired.
func (t *LockTable) Get(mac layers.MAC, now time.Duration) (Entry, bool) {
	return t.GetKey(mac.Uint64(), now)
}

// LockKey binds a packed key to port in the locked state, starting (or
// restarting) the race window.
func (t *LockTable) LockKey(key uint64, port *netsim.Port, now time.Duration) {
	if layers.KeyIsMulticast(key) || key == 0 {
		return
	}
	old, hadOld := t.entries[key]
	t.store(key, old, hadOld, Entry{
		Port:        port,
		State:       StateLocked,
		Expires:     now + t.lockTimeout,
		LockedUntil: now + t.lockTimeout,
	})
}

// Lock binds mac to port in the locked state, starting (or restarting)
// the race window.
func (t *LockTable) Lock(mac layers.MAC, port *netsim.Port, now time.Duration) {
	t.LockKey(mac.Uint64(), port, now)
}

// LearnKey binds a packed key to port in the learned state (path
// confirmed). A confirmation on the entry's existing port preserves the
// remaining race window so late flood copies stay filtered.
func (t *LockTable) LearnKey(key uint64, port *netsim.Port, now time.Duration) {
	if layers.KeyIsMulticast(key) || key == 0 {
		return
	}
	old, hadOld := t.entries[key]
	lockedUntil := time.Duration(0)
	if hadOld && old.Port == port && !t.dead(old, now) {
		lockedUntil = old.LockedUntil
	}
	t.store(key, old, hadOld, Entry{
		Port:        port,
		State:       StateLearned,
		Expires:     now + t.learnedTimeout,
		LockedUntil: lockedUntil,
	})
}

// Learn binds mac to port in the learned state (path confirmed).
func (t *LockTable) Learn(mac layers.MAC, port *netsim.Port, now time.Duration) {
	t.LearnKey(mac.Uint64(), port, now)
}

// GuardKey re-arms the race window on the current binding without moving
// the port, shortening the entry's remaining lifetime, or downgrading a
// learned entry. Used when a bridge originates a PathRequest on a host's
// behalf: copies of that flood returning over other ports must be
// filtered exactly as for a host-sent request, but the bridge must not
// forget its own attached host if the repair goes unanswered.
func (t *LockTable) GuardKey(key uint64, now time.Duration) {
	e, ok := t.entries[key]
	if !ok {
		return
	}
	if t.dead(e, now) {
		t.evict(key, e)
		return
	}
	// The port does not move, so the residency counters are unchanged and
	// the entry can be rewritten in place.
	e.LockedUntil = now + t.lockTimeout
	if e.Expires < e.LockedUntil {
		e.Expires = e.LockedUntil
	}
	t.entries[key] = e
}

// Guard re-arms the race window on mac's current binding.
func (t *LockTable) Guard(mac layers.MAC, now time.Duration) {
	t.GuardKey(mac.Uint64(), now)
}

// RefreshKey extends the current entry's lifetime without changing its
// state or port. Refreshing a missing or expired entry is a no-op.
func (t *LockTable) RefreshKey(key uint64, now time.Duration) {
	e, ok := t.entries[key]
	if !ok {
		return
	}
	if t.dead(e, now) {
		t.evict(key, e)
		return
	}
	switch e.State {
	case StateLocked:
		e.Expires = now + t.lockTimeout
	case StateLearned:
		e.Expires = now + t.learnedTimeout
	}
	// Same port, same generation: rewrite in place, counters unchanged.
	t.entries[key] = e
}

// Refresh extends the current entry's lifetime without changing its state
// or port.
func (t *LockTable) Refresh(mac layers.MAC, now time.Duration) {
	t.RefreshKey(mac.Uint64(), now)
}

// DeleteKey removes a packed key's entry (stale-path teardown during
// repair).
func (t *LockTable) DeleteKey(key uint64) {
	if e, ok := t.entries[key]; ok {
		t.evict(key, e)
	}
}

// Delete removes mac's entry.
func (t *LockTable) Delete(mac layers.MAC) { t.DeleteKey(mac.Uint64()) }

// FlushPort invalidates every entry bound to port (link failure) in O(1)
// by advancing the port's generation; the map corpses are reclaimed
// lazily on access or by FlushExpired. It returns the number of entries
// invalidated.
func (t *LockTable) FlushPort(port *netsim.Port) int {
	st := t.port(port)
	n := st.live
	st.gen++
	st.live = 0
	t.resident -= n
	return n
}

// Len returns the number of live-generation entries, including expired
// ones that have not been touched since their deadline.
func (t *LockTable) Len() int { return t.resident }

// Reset drops every entry and every port generation: the table is as
// empty as at construction. This is total state loss (a bridge restart),
// not a link event — use FlushPort for those.
func (t *LockTable) Reset() {
	clear(t.entries)
	clear(t.ports)
	t.resident = 0
	t.lastPort = nil
	t.lastPS = nil
}

// FlushExpired sweeps all expired and flushed entries eagerly. The
// dataplane never calls this; it bounds memory for long-lived tables and
// gives experiments exact counts.
func (t *LockTable) FlushExpired(now time.Duration) {
	for key, e := range t.entries {
		if t.dead(e, now) {
			t.evict(key, e)
		}
	}
}

// Snapshot returns a copy of the live entries; used by experiments to
// reconstruct the path a flow has locked (Figure 1's bubbles).
func (t *LockTable) Snapshot(now time.Duration) map[layers.MAC]Entry {
	out := make(map[layers.MAC]Entry, len(t.entries))
	for key, e := range t.entries {
		if !t.dead(e, now) {
			out[layers.MACFromUint64(key)] = e.Entry
		}
	}
	return out
}
