package core

import (
	"time"

	"repro/internal/bridge"
	"repro/internal/layers"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/tables"
)

// repairWheelTick is the granularity of the repair-timeout timer wheel.
// Repair timers are armed per outstanding destination and almost always
// canceled (the PathReply wins); the wheel makes arm/cancel allocation-
// free at the cost of firing a timeout up to one tick late.
const repairWheelTick = time.Millisecond

// Config tunes an ARP-Path bridge. The zero value is not valid; use
// DefaultConfig.
type Config struct {
	// LockTimeout is the race window: how long a locked entry filters
	// duplicate flood copies and may carry the returning reply. It must
	// exceed the network's flood traversal time.
	LockTimeout time.Duration
	// LearnedTimeout is the lifetime of confirmed path entries; traffic
	// refreshes it.
	LearnedTimeout time.Duration
	// RepairTimeout bounds how long frames buffer while a PathRequest is
	// outstanding before they are dropped.
	RepairTimeout time.Duration
	// RepairBuffer is the maximum number of frames buffered per unknown
	// destination during repair.
	RepairBuffer int
	// Proxy enables the in-switch ARP Proxy (§2.2, EtherProxy [5]).
	Proxy bool
	// ProxyTimeout is the proxy cache lifetime for snooped IP→MAC
	// bindings.
	ProxyTimeout time.Duration
	// DisableRepair turns §2.1.4 off entirely: unicast table misses are
	// silently dropped. Exists only for the repair ablation (T4), which
	// shows the dataplane blackholes without it.
	DisableRepair bool
	// TableCapacity bounds the locking table's entry count (0 =
	// unbounded). A bound requires TablePolicy. See DESIGN.md §12.
	TableCapacity int
	// TablePolicy selects the eviction policy for a bounded table:
	// "lru" or "clock" ("" / "timeout" is the unbounded baseline).
	TablePolicy string
}

// DefaultConfig returns the defaults used throughout the experiments.
func DefaultConfig() Config {
	return Config{
		LockTimeout:    200 * time.Millisecond,
		LearnedTimeout: 120 * time.Second,
		RepairTimeout:  500 * time.Millisecond,
		RepairBuffer:   64,
		Proxy:          false,
		ProxyTimeout:   60 * time.Second,
	}
}

// WithDefaults fills every unset (zero) field with its default, field by
// field: a caller who tunes only LockTimeout keeps that value and inherits
// the rest. Proxy and DisableRepair are booleans whose zero value is the
// default, so they always pass through unchanged.
func (c Config) WithDefaults() Config {
	d := DefaultConfig()
	if c.LockTimeout == 0 {
		c.LockTimeout = d.LockTimeout
	}
	if c.LearnedTimeout == 0 {
		c.LearnedTimeout = d.LearnedTimeout
	}
	if c.RepairTimeout == 0 {
		c.RepairTimeout = d.RepairTimeout
	}
	if c.RepairBuffer == 0 {
		c.RepairBuffer = d.RepairBuffer
	}
	if c.ProxyTimeout == 0 {
		c.ProxyTimeout = d.ProxyTimeout
	}
	return c
}

// Stats counts every protocol event an ARP-Path bridge takes part in.
type Stats struct {
	// Discovery.
	BroadcastLocked   uint64 // new locks created by broadcast first copies
	BroadcastRelayed  uint64 // broadcast frames flooded onward
	BroadcastRaceDrop uint64 // duplicate copies discarded (slower paths)
	PathsConfirmed    uint64 // locked→learned upgrades by replies

	// Unicast dataplane.
	Forwarded      uint64 // unicast frames forwarded along the path
	HairpinDrop    uint64 // destination resolved to the ingress port
	SrcPortDrop    uint64 // unicast from a source locked to another port
	SrcViolRepairs uint64 // new repairs created by non-guarded src-port violations

	// Repair (§2.1.4).
	RepairsStarted   uint64
	PathFailsSent    uint64
	PathFailsRelayed uint64
	PathRequestsSent uint64
	PathRepliesSent  uint64
	RepairReleased   uint64 // buffered frames released after repair
	RepairDropped    uint64 // buffered frames dropped (timeout/overflow)
	EntriesPurged    uint64 // entries flushed by link failures

	// Proxy (§2.2).
	ProxyConverted uint64 // broadcast requests converted to unicast
	ProxyMisses    uint64 // requests that had to flood anyway
}

// repair tracks one outstanding PathRequest for a destination. Buffered
// frames are retained (not copied) under the netsim ownership contract
// and released when forwarded or dropped.
type repair struct {
	nonce    uint32
	src      layers.MAC
	buffered []*netsim.Frame
	timer    sim.WheelTimer
}

// Bridge is an ARP-Path bridge. It is fully transparent: hosts run
// unmodified ARP/IP stacks (§2.2 "zero configuration").
type Bridge struct {
	*bridge.Chassis
	cfg     Config
	table   *LockTable
	repairs map[uint64]*repair // keyed by packed destination MAC
	wheel   *sim.Wheel
	proxy   *proxyCache
	stats   Stats
}

// New creates an ARP-Path bridge. HELLO neighbour discovery is enabled so
// Path Repair can identify edge (host-facing) ports.
func New(net *netsim.Network, name string, numID int, cfg Config) *Bridge {
	return NewWithProtocol(net, name, numID, cfg, nil)
}

// NewWithProtocol creates an ARP-Path bridge whose chassis dispatches
// frames to proto instead of the bridge itself. This is the extension
// seam for All-Path variants that refine ARP-Path rather than replace it
// (TCP-Path handles TCP segments itself and hands everything else to the
// embedded ARP-Path dataplane): proto typically embeds the returned
// *Bridge and delegates the frames it does not consume to its OnFrame.
// proto may be nil (plain ARP-Path); it may also still be partially
// constructed at call time — the chassis only invokes it once traffic
// flows.
func NewWithProtocol(net *netsim.Network, name string, numID int, cfg Config, proto bridge.Protocol) *Bridge {
	if cfg.LockTimeout <= 0 || cfg.LearnedTimeout <= 0 {
		panic("core: lock and learned timeouts must be positive")
	}
	if cfg.RepairTimeout <= 0 || cfg.RepairBuffer <= 0 {
		panic("core: repair timeout and buffer must be positive")
	}
	bound, err := tables.ParseConfig(cfg.TableCapacity, cfg.TablePolicy)
	if err != nil {
		panic("core: " + err.Error())
	}
	b := &Bridge{
		cfg:     cfg,
		table:   NewBoundedLockTable(cfg.LockTimeout, cfg.LearnedTimeout, bound),
		repairs: make(map[uint64]*repair),
	}
	if proto == nil {
		proto = b
	}
	b.Chassis = bridge.NewChassis(net, name, numID, proto)
	b.HelloEnabled = true
	if cfg.Proxy {
		b.proxy = newProxyCache(cfg.ProxyTimeout)
	}
	return b
}

// Table exposes the locking table; experiments use it to reconstruct
// locked paths (Figure 1) and to measure table sizes.
func (b *Bridge) Table() *LockTable { return b.table }

// ForwardingEntries reports the resident forwarding state — the
// All-Path comparison's table-size axis (variants add their own pair or
// connection tables on top).
func (b *Bridge) ForwardingEntries() int { return b.table.Len() }

// repairWheel returns the bridge's repair-timeout wheel, created on first
// use: the wheel ticks under the bridge's scheduling identity, which is
// only resolvable once the topology builder has registered the bridge
// (and, in a sharded fabric, after partitioning bound it to its shard).
func (b *Bridge) repairWheel() *sim.Wheel {
	if b.wheel == nil {
		b.wheel = sim.NewWheelOn(b.Sched(), repairWheelTick)
	}
	return b.wheel
}

// Stats returns a snapshot of the protocol counters.
func (b *Bridge) Stats() Stats { return b.stats }

// Config returns the bridge configuration.
func (b *Bridge) Config() Config { return b.cfg }

// OnStart implements bridge.Protocol.
func (b *Bridge) OnStart() {}

// Restart models a bridge power-cycle with total table loss: every
// outstanding repair is abandoned (buffered frames released — the
// refcounts must balance even across a crash), the locking table and
// proxy cache are emptied, the chassis forgets its neighbours, and every
// attached link bounces — a rebooting chassis drops carrier, which is how
// the neighbours learn anything happened: they purge paths through this
// bridge (OnPortStatus) and re-HELLO on the up transition, while this
// bridge relearns everything from live traffic and the repair machinery
// alone. That recovery is exactly the property the scenario engine's
// fault schedules probe. Must be called from the simulation goroutine.
func (b *Bridge) Restart() {
	for dst, r := range b.repairs {
		b.repairWheel().Stop(r.timer)
		b.stats.RepairDropped += uint64(len(r.buffered))
		for _, f := range r.buffered {
			f.Release()
		}
		r.buffered = nil
		delete(b.repairs, dst)
	}
	b.table.Reset()
	if b.proxy != nil {
		b.proxy = newProxyCache(b.cfg.ProxyTimeout)
	}
	b.Chassis.Restart()
	for _, p := range b.Ports() {
		if l := p.Link(); l.Up() {
			l.SetUp(false)
			l.SetUp(true)
		}
	}
}

// OnPortStatus implements bridge.Protocol: a dead link invalidates every
// path through it immediately — the next unicast miss triggers repair.
func (b *Bridge) OnPortStatus(p *netsim.Port, up bool) {
	if !up {
		b.stats.EntriesPurged += uint64(b.table.FlushPort(p))
	}
}

// OnFrame implements bridge.Protocol: the ARP-Path dataplane (§2.1). The
// frame arrives with its view already decoded, so no header is parsed
// here or anywhere below — the whole forwarding decision runs on the
// flat FrameView fields.
//
//fabric:hotpath
func (b *Bridge) OnFrame(in *netsim.Port, f *netsim.Frame) {
	v := f.View()
	if v.IsMulticast() {
		b.handleBroadcast(in, f, v)
		return
	}
	b.handleUnicast(in, f, v)
}

// pathEstablishingBroadcast classifies broadcast frames that create or
// refresh paths: ARP Requests and PathRequests (§2.1.3: "other multicast
// and broadcast frames do not establish new paths").
func pathEstablishingBroadcast(v *layers.FrameView) bool {
	if v.HasARP {
		return v.ARP.Operation == layers.ARPRequest
	}
	return v.HasCtl && v.Ctl.Type == layers.PathCtlRequest
}

// handleBroadcast implements §2.1.1's locking race and §2.1.3's loop-free
// flooding.
//
//fabric:hotpath
func (b *Bridge) handleBroadcast(in *netsim.Port, f *netsim.Frame, v *layers.FrameView) {
	now := b.Now()
	src := v.SrcKey
	establishing := pathEstablishingBroadcast(v)

	// A copy of our own PathRequest flood returning around a cycle is
	// never new information: the originator stamps its BridgeID into the
	// control header, so it can be dropped statelessly. Normally the
	// guard on src's entry filters these copies anyway; this check also
	// covers the bridge that originated a request with no entry for src
	// at all (a restarted bridge mid-repair), which otherwise would treat
	// its own returning flood as a first copy and flood it a second time.
	if v.HasCtl && v.Ctl.Type == layers.PathCtlRequest && v.Ctl.BridgeID == uint64(b.NumID()) {
		b.stats.BroadcastRaceDrop++
		return
	}

	if e, ok := b.table.GetKey(src, now); ok {
		switch {
		case e.Port == in:
			// Frames from the bound port pass. A fresh establishing frame
			// restarts the race window on this port.
			if establishing {
				b.table.LockKey(src, in, now)
			}
		case e.Guarded(now):
			// A slower copy of the flood (or a loop copy) inside the race
			// window: discard (§2.1.1). This holds even after the reply
			// confirmed the entry — the window outlives confirmation.
			b.stats.BroadcastRaceDrop++
			return
		case establishing:
			// Race window over, learned entry, new ARP/Path Request from
			// another direction: start a new race. The first copy wins
			// the lock (possibly moving the port — that is how paths can
			// change between exchanges); its window filters duplicates.
			b.table.LockKey(src, in, now)
			b.stats.BroadcastLocked++
		default:
			// Non-establishing broadcast must still respect the
			// first-port rule (§2.1.3).
			b.stats.BroadcastRaceDrop++
			return
		}
	} else {
		// First copy from this source: lock it to the arrival port. The
		// first-port rule applies to every broadcast (§2.1.3), but only
		// path-establishing frames create new races afterwards.
		b.table.LockKey(src, in, now)
		b.stats.BroadcastLocked++
	}

	// ARP Proxy interception (before flooding).
	if b.proxy != nil && v.HasARP {
		if b.proxyHandleBroadcast(in, v, now) {
			return
		}
	}

	// If this is a PathRequest for a host attached to one of our edge
	// ports, answer with a PathReply on the destination's behalf.
	if v.HasCtl {
		if b.answerPathRequest(in, v, now) {
			return
		}
	}

	b.stats.BroadcastRelayed++
	b.FloodExcept(in, f)
}

// pathEstablishingUnicast classifies unicasts that confirm a path: ARP
// Replies and PathReplies (§2.1.2).
func pathEstablishingUnicast(v *layers.FrameView) bool {
	if v.HasARP {
		return v.ARP.Operation == layers.ARPReply
	}
	return v.HasCtl && v.Ctl.Type == layers.PathCtlReply
}

// handleUnicast implements §2.1.2 (reply confirmation), §2.1.3 (path
// forwarding) and the §2.1.4 repair trigger.
//
//fabric:hotpath
func (b *Bridge) handleUnicast(in *netsim.Port, f *netsim.Frame, v *layers.FrameView) {
	now := b.Now()
	src, dst := v.SrcKey, v.DstKey
	establishing := pathEstablishingUnicast(v)

	// PathFail is control traffic for the bridges themselves.
	if v.EtherType == layers.EtherTypePathCtl && !establishing {
		b.handlePathFail(in, f, v, now)
		return
	}

	// Source side: maintain the reverse half of the symmetric path.
	if e, ok := b.table.GetKey(src, now); ok {
		switch {
		case e.Port == in:
			if establishing {
				// Reply confirms the sender's position: lock → learned.
				if e.State == StateLocked {
					b.stats.PathsConfirmed++
				}
				b.table.LearnKey(src, in, now)
			} else {
				b.table.RefreshKey(src, now)
			}
		case e.Guarded(now):
			// The sender's position is still race-locked elsewhere:
			// discard the duplicate from the slower path (§2.1.1).
			b.stats.SrcPortDrop++
			return
		case establishing:
			// A reply on a new port re-establishes the path (repair).
			b.table.LearnKey(src, in, now)
		default:
			// Data violating the symmetric path outside any race window.
			// This used to be a silent discard — and a silent discard is
			// exactly the stale-ARP blackhole the scenario engine surfaced
			// (DESIGN.md §7 finding 2): a host with a warm ARP cache whose
			// position was moved by a later flood keeps sending along the
			// old path, every frame dies here, and nothing ever repairs.
			// The frame still must not be forwarded (that is the loop
			// protection, unweakened), but a persistent violation on a
			// non-guarded entry is evidence the source's path is stale:
			// buffer the frame and trigger repair toward the source — the
			// PathFail/PathRequest/PathReply exchange re-locks the
			// source's position and the buffered frames are released along
			// the confirmed path. Guarded entries above stay pure drops:
			// inside the race window a wrong-port copy is the §2.1.1
			// filter working as designed.
			b.stats.SrcPortDrop++
			if b.startRepair(f, v, now) {
				b.stats.SrcViolRepairs++
			}
			return
		}
	} else {
		// Unknown source: learn it so the reverse path stays alive.
		b.table.LearnKey(src, in, now)
	}

	// Proxy snooping of unicast ARP replies.
	if b.proxy != nil && v.HasARP {
		b.proxy.learn(v.ARP.SenderIP, v.ARP.SenderHW, now)
	}

	// A PathReply releases frames that were buffered awaiting this path.
	if v.HasCtl && establishing {
		b.completeRepair(src, in, now)
	}

	// Destination side.
	e, ok := b.table.GetKey(dst, now)
	switch {
	case !ok:
		// Table miss: the entry expired or a link/bridge failed (§2.1.4).
		// Never flood unknown unicast — without a spanning tree that loops.
		b.startRepair(f, v, now)
	case e.Port == in || b.SameNeighbor(e.Port, in):
		// Hairpin: the frame would go back where it came from — including
		// over a parallel link to the same neighbouring bridge, which a
		// port comparison alone cannot see on multigraphs.
		b.stats.HairpinDrop++
	default:
		if establishing {
			if e.State == StateLocked {
				b.stats.PathsConfirmed++
			}
			b.table.LearnKey(dst, e.Port, now)
		} else {
			b.table.RefreshKey(dst, now)
		}
		b.stats.Forwarded++
		e.Port.SendFrame(f)
	}
}

// EntryFor reports the port and state the bridge currently binds mac to.
func (b *Bridge) EntryFor(mac layers.MAC) (Entry, bool) {
	return b.table.Get(mac, b.Now())
}

var _ bridge.Protocol = (*Bridge)(nil)
var _ netsim.Node = (*Bridge)(nil)

// PendingRepairs returns the number of outstanding repairs (tests).
func (b *Bridge) PendingRepairs() int { return len(b.repairs) }
