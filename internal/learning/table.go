// Package learning implements the classic transparent learning switch: a
// MAC forwarding table with aging, and a bridge that floods unknown
// destinations. It is both a baseline on its own (safe only on loop-free
// topologies) and the forwarding core the STP baseline gates with port
// states.
package learning

import (
	"time"

	"repro/internal/layers"
	"repro/internal/netsim"
)

// DefaultAging matches 802.1D's default filtering-database aging time.
const DefaultAging = 300 * time.Second

// Entry is one forwarding-table binding.
type Entry struct {
	Port    *netsim.Port
	Expires time.Duration
}

// Table is a MAC learning table with lazy aging: expired entries are
// dropped when touched, and FlushExpired sweeps eagerly when needed.
type Table struct {
	aging   time.Duration
	entries map[layers.MAC]Entry
}

// NewTable returns an empty table with the given aging time.
func NewTable(aging time.Duration) *Table {
	if aging <= 0 {
		aging = DefaultAging
	}
	return &Table{aging: aging, entries: make(map[layers.MAC]Entry)}
}

// Aging returns the current aging time.
func (t *Table) Aging() time.Duration { return t.aging }

// SetAging changes the aging time for future learns. 802.1D shortens it to
// ForwardDelay during topology changes; existing entries keep their
// deadlines until relearned or flushed.
func (t *Table) SetAging(d time.Duration) {
	if d <= 0 {
		panic("learning: aging must be positive")
	}
	t.aging = d
}

// Learn binds mac to port, refreshing the expiry. Multicast source
// addresses are invalid on the wire and ignored.
func (t *Table) Learn(mac layers.MAC, port *netsim.Port, now time.Duration) {
	if mac.IsMulticast() || mac.IsZero() {
		return
	}
	t.entries[mac] = Entry{Port: port, Expires: now + t.aging}
}

// Lookup returns the live binding for mac, if any.
func (t *Table) Lookup(mac layers.MAC, now time.Duration) (*netsim.Port, bool) {
	e, ok := t.entries[mac]
	if !ok {
		return nil, false
	}
	if e.Expires <= now {
		delete(t.entries, mac)
		return nil, false
	}
	return e.Port, true
}

// Len returns the number of stored entries, including any not yet swept.
func (t *Table) Len() int { return len(t.entries) }

// FlushPort drops every binding pointing at port (used on link failure).
func (t *Table) FlushPort(port *netsim.Port) {
	for mac, e := range t.entries {
		if e.Port == port {
			delete(t.entries, mac)
		}
	}
}

// FlushAll clears the table.
func (t *Table) FlushAll() { clear(t.entries) }

// FlushExpired removes every entry at or past its deadline.
func (t *Table) FlushExpired(now time.Duration) {
	for mac, e := range t.entries {
		if e.Expires <= now {
			delete(t.entries, mac)
		}
	}
}

// Macs returns the currently stored addresses (unswept); test helper.
func (t *Table) Macs() []layers.MAC {
	out := make([]layers.MAC, 0, len(t.entries))
	for mac := range t.entries {
		out = append(out, mac)
	}
	return out
}
