// Package learning implements the classic transparent learning switch: a
// MAC forwarding table with aging, and a bridge that floods unknown
// destinations. It is both a baseline on its own (safe only on loop-free
// topologies) and the forwarding core the STP baseline gates with port
// states.
package learning

import (
	"time"

	"repro/internal/layers"
	"repro/internal/netsim"
	"repro/internal/tables"
)

// DefaultAging matches 802.1D's default filtering-database aging time.
const DefaultAging = 300 * time.Second

// Entry is one forwarding-table binding.
type Entry struct {
	Port    *netsim.Port
	Expires time.Duration
}

// tableEntry adds the bind-time port generation and a cached pointer to
// the port's side-table record, mirroring core.LockTable: the liveness
// check is a pointer chase, not a second map lookup.
type tableEntry struct {
	Entry
	gen uint32
	ps  *portState
	th  tables.Handle // recency-tracker handle; 0 when untracked
}

// portState backs the O(1) generation-based FlushPort.
type portState struct {
	gen  uint32 // current generation; entries with an older gen are dead
	live int    // resident entries bound to this port at the current gen
}

// Table is a MAC learning table keyed by the uint64-packed address
// (layers.MAC.Uint64 — the same packed keys the FrameView pre-computes).
// Aging is lazy: expired entries are dropped when touched. Port flushes
// are O(1) via per-port generation counters, the same design as
// core.LockTable.
//
// Like the ARP-Path tables it may be capacity-bounded with LRU or clock
// eviction (DESIGN.md §12); a learning switch has no race windows, so
// every victim is evictable. An amortized sweep (one pass per aging
// period) reclaims corpses and idle port-state records.
type Table struct {
	aging    time.Duration
	capacity int
	tracker  *tables.Tracker[uint64]
	entries  map[uint64]tableEntry
	ports    map[*netsim.Port]*portState
	resident int // entries in the map whose port generation is current

	evictions uint64
	peak      int
	nextSweep time.Duration

	// One-slot cache for the port side table (switches learn runs of
	// entries against the same ingress port).
	lastPort *netsim.Port
	lastPS   *portState
}

// NewTable returns an empty unbounded table with the given aging time.
func NewTable(aging time.Duration) *Table {
	return NewBoundedTable(aging, tables.Config{})
}

// NewBoundedTable returns an empty table with a capacity bound and
// eviction policy on top of aging. The zero Config is the unbounded
// aging-only baseline.
func NewBoundedTable(aging time.Duration, bound tables.Config) *Table {
	if aging <= 0 {
		aging = DefaultAging
	}
	if err := bound.Validate(); err != nil {
		panic("learning: " + err.Error())
	}
	t := &Table{
		aging:    aging,
		capacity: bound.Capacity,
		entries:  make(map[uint64]tableEntry),
		ports:    make(map[*netsim.Port]*portState),
	}
	if bound.Tracked() {
		t.tracker = tables.NewTracker[uint64](bound.Policy)
	}
	return t
}

// Aging returns the current aging time.
func (t *Table) Aging() time.Duration { return t.aging }

// SetAging changes the aging time for future learns. 802.1D shortens it to
// ForwardDelay during topology changes; existing entries keep their
// deadlines until relearned or flushed.
func (t *Table) SetAging(d time.Duration) {
	if d <= 0 {
		panic("learning: aging must be positive")
	}
	t.aging = d
}

func (t *Table) port(p *netsim.Port) *portState {
	if p == t.lastPort {
		return t.lastPS
	}
	st, ok := t.ports[p]
	if !ok {
		st = &portState{}
		t.ports[p] = st
	}
	t.lastPort, t.lastPS = p, st
	return st
}

// dead reports whether a stored entry is expired or was flushed with its
// port.
func (t *Table) dead(e tableEntry, now time.Duration) bool {
	return e.Expires <= now || e.gen != e.ps.gen
}

// drop removes a stored entry, maintaining residency counts.
func (t *Table) drop(key uint64, e tableEntry) {
	if e.gen == e.ps.gen {
		e.ps.live--
		t.resident--
	}
	if t.tracker != nil {
		t.tracker.Remove(e.th)
	}
	delete(t.entries, key)
}

// maybeSweep runs the amortized corpse sweep: at most one FlushExpired per
// aging period, charged to the learn that crossed the deadline.
func (t *Table) maybeSweep(now time.Duration) {
	if now >= t.nextSweep {
		t.FlushExpired(now)
		t.nextSweep = now + t.aging
	}
}

// makeRoom enforces the capacity bound before a new key insert. Dead
// victims are reclaimed for free; live ones are evicted in tracker order
// (a learning table has no race windows, so nothing is exempt).
func (t *Table) makeRoom(now time.Duration) {
	if t.tracker == nil || t.capacity <= 0 {
		return
	}
	for len(t.entries) >= t.capacity {
		h, ok := t.tracker.Victim()
		if !ok {
			return
		}
		key := t.tracker.Key(h)
		e := t.entries[key]
		if !t.dead(e, now) {
			t.evictions++
		}
		t.drop(key, e)
	}
}

// LearnKey binds a packed key to port, refreshing the expiry. Multicast
// source addresses are invalid on the wire and ignored.
func (t *Table) LearnKey(key uint64, port *netsim.Port, now time.Duration) {
	if layers.KeyIsMulticast(key) || key == 0 {
		return
	}
	t.maybeSweep(now)
	old, hadOld := t.entries[key]
	if hadOld && old.gen == old.ps.gen {
		old.ps.live--
		t.resident--
	}
	if !hadOld && t.capacity > 0 && len(t.entries) >= t.capacity {
		t.makeRoom(now)
	}
	st := t.port(port)
	st.live++
	t.resident++
	ne := tableEntry{
		Entry: Entry{Port: port, Expires: now + t.aging},
		gen:   st.gen,
		ps:    st,
	}
	if t.tracker != nil {
		if hadOld {
			ne.th = old.th
			t.tracker.Touch(ne.th)
		} else {
			ne.th = t.tracker.Insert(key)
		}
	}
	t.entries[key] = ne
	if len(t.entries) > t.peak {
		t.peak = len(t.entries)
	}
}

// Learn binds mac to port, refreshing the expiry.
func (t *Table) Learn(mac layers.MAC, port *netsim.Port, now time.Duration) {
	t.LearnKey(mac.Uint64(), port, now)
}

// LookupKey returns the live binding for a packed key, if any.
func (t *Table) LookupKey(key uint64, now time.Duration) (*netsim.Port, bool) {
	e, ok := t.entries[key]
	if !ok {
		return nil, false
	}
	if t.dead(e, now) {
		t.drop(key, e)
		return nil, false
	}
	if t.tracker != nil {
		t.tracker.Touch(e.th)
	}
	return e.Port, true
}

// Lookup returns the live binding for mac, if any.
func (t *Table) Lookup(mac layers.MAC, now time.Duration) (*netsim.Port, bool) {
	return t.LookupKey(mac.Uint64(), now)
}

// Len returns the number of live-generation entries, including any whose
// deadline passed but which have not been touched since.
func (t *Table) Len() int { return t.resident }

// Entries returns the number of map entries including flushed-generation
// corpses: actual memory, the leak-regression quantity.
func (t *Table) Entries() int { return len(t.entries) }

// PortStates returns the number of per-port side-table records.
func (t *Table) PortStates() int { return len(t.ports) }

// Evictions returns the cumulative count of live entries force-evicted by
// the capacity bound.
func (t *Table) Evictions() uint64 { return t.evictions }

// PeakEntries returns the high-water mark of Entries().
func (t *Table) PeakEntries() int { return t.peak }

// FlushPort drops every binding pointing at port (used on link failure)
// in O(1) by advancing the port's generation.
func (t *Table) FlushPort(port *netsim.Port) {
	st := t.port(port)
	t.resident -= st.live
	st.gen++
	st.live = 0
}

// FlushAll clears the table.
func (t *Table) FlushAll() {
	clear(t.entries)
	for _, st := range t.ports {
		st.gen++
		st.live = 0
	}
	t.resident = 0
	if t.tracker != nil {
		t.tracker.Reset()
	}
}

// FlushExpired removes every entry at or past its deadline, plus any
// corpses left by FlushPort, then reclaims port-state records with no
// surviving entries (post-sweep a zero live count proves nothing
// references the record).
func (t *Table) FlushExpired(now time.Duration) {
	for key, e := range t.entries {
		if t.dead(e, now) {
			t.drop(key, e)
		}
	}
	for p, st := range t.ports {
		if st.live == 0 {
			if t.lastPort == p {
				t.lastPort = nil
				t.lastPS = nil
			}
			delete(t.ports, p)
		}
	}
}

// Macs returns the currently stored live-generation addresses (including
// expired-but-unswept ones); test helper.
func (t *Table) Macs() []layers.MAC {
	out := make([]layers.MAC, 0, len(t.entries))
	for key, e := range t.entries {
		if e.gen == e.ps.gen {
			out = append(out, layers.MACFromUint64(key))
		}
	}
	return out
}
