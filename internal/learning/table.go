// Package learning implements the classic transparent learning switch: a
// MAC forwarding table with aging, and a bridge that floods unknown
// destinations. It is both a baseline on its own (safe only on loop-free
// topologies) and the forwarding core the STP baseline gates with port
// states.
package learning

import (
	"time"

	"repro/internal/layers"
	"repro/internal/netsim"
)

// DefaultAging matches 802.1D's default filtering-database aging time.
const DefaultAging = 300 * time.Second

// Entry is one forwarding-table binding.
type Entry struct {
	Port    *netsim.Port
	Expires time.Duration
}

// tableEntry adds the bind-time port generation and a cached pointer to
// the port's side-table record, mirroring core.LockTable: the liveness
// check is a pointer chase, not a second map lookup.
type tableEntry struct {
	Entry
	gen uint32
	ps  *portState
}

// portState backs the O(1) generation-based FlushPort.
type portState struct {
	gen  uint32 // current generation; entries with an older gen are dead
	live int    // resident entries bound to this port at the current gen
}

// Table is a MAC learning table keyed by the uint64-packed address
// (layers.MAC.Uint64 — the same packed keys the FrameView pre-computes).
// Aging is lazy: expired entries are dropped when touched. Port flushes
// are O(1) via per-port generation counters, the same design as
// core.LockTable.
type Table struct {
	aging    time.Duration
	entries  map[uint64]tableEntry
	ports    map[*netsim.Port]*portState
	resident int // entries in the map whose port generation is current

	// One-slot cache for the port side table (switches learn runs of
	// entries against the same ingress port).
	lastPort *netsim.Port
	lastPS   *portState
}

// NewTable returns an empty table with the given aging time.
func NewTable(aging time.Duration) *Table {
	if aging <= 0 {
		aging = DefaultAging
	}
	return &Table{
		aging:   aging,
		entries: make(map[uint64]tableEntry),
		ports:   make(map[*netsim.Port]*portState),
	}
}

// Aging returns the current aging time.
func (t *Table) Aging() time.Duration { return t.aging }

// SetAging changes the aging time for future learns. 802.1D shortens it to
// ForwardDelay during topology changes; existing entries keep their
// deadlines until relearned or flushed.
func (t *Table) SetAging(d time.Duration) {
	if d <= 0 {
		panic("learning: aging must be positive")
	}
	t.aging = d
}

func (t *Table) port(p *netsim.Port) *portState {
	if p == t.lastPort {
		return t.lastPS
	}
	st, ok := t.ports[p]
	if !ok {
		st = &portState{}
		t.ports[p] = st
	}
	t.lastPort, t.lastPS = p, st
	return st
}

// dead reports whether a stored entry is expired or was flushed with its
// port.
func (t *Table) dead(e tableEntry, now time.Duration) bool {
	return e.Expires <= now || e.gen != e.ps.gen
}

// drop removes a stored entry, maintaining residency counts.
func (t *Table) drop(key uint64, e tableEntry) {
	if e.gen == e.ps.gen {
		e.ps.live--
		t.resident--
	}
	delete(t.entries, key)
}

// LearnKey binds a packed key to port, refreshing the expiry. Multicast
// source addresses are invalid on the wire and ignored.
func (t *Table) LearnKey(key uint64, port *netsim.Port, now time.Duration) {
	if layers.KeyIsMulticast(key) || key == 0 {
		return
	}
	if old, ok := t.entries[key]; ok && old.gen == old.ps.gen {
		old.ps.live--
		t.resident--
	}
	st := t.port(port)
	st.live++
	t.resident++
	t.entries[key] = tableEntry{
		Entry: Entry{Port: port, Expires: now + t.aging},
		gen:   st.gen,
		ps:    st,
	}
}

// Learn binds mac to port, refreshing the expiry.
func (t *Table) Learn(mac layers.MAC, port *netsim.Port, now time.Duration) {
	t.LearnKey(mac.Uint64(), port, now)
}

// LookupKey returns the live binding for a packed key, if any.
func (t *Table) LookupKey(key uint64, now time.Duration) (*netsim.Port, bool) {
	e, ok := t.entries[key]
	if !ok {
		return nil, false
	}
	if t.dead(e, now) {
		t.drop(key, e)
		return nil, false
	}
	return e.Port, true
}

// Lookup returns the live binding for mac, if any.
func (t *Table) Lookup(mac layers.MAC, now time.Duration) (*netsim.Port, bool) {
	return t.LookupKey(mac.Uint64(), now)
}

// Len returns the number of live-generation entries, including any whose
// deadline passed but which have not been touched since.
func (t *Table) Len() int { return t.resident }

// FlushPort drops every binding pointing at port (used on link failure)
// in O(1) by advancing the port's generation.
func (t *Table) FlushPort(port *netsim.Port) {
	st := t.port(port)
	t.resident -= st.live
	st.gen++
	st.live = 0
}

// FlushAll clears the table.
func (t *Table) FlushAll() {
	clear(t.entries)
	for _, st := range t.ports {
		st.gen++
		st.live = 0
	}
	t.resident = 0
}

// FlushExpired removes every entry at or past its deadline, plus any
// corpses left by FlushPort.
func (t *Table) FlushExpired(now time.Duration) {
	for key, e := range t.entries {
		if t.dead(e, now) {
			t.drop(key, e)
		}
	}
}

// Macs returns the currently stored live-generation addresses (including
// expired-but-unswept ones); test helper.
func (t *Table) Macs() []layers.MAC {
	out := make([]layers.MAC, 0, len(t.entries))
	for key, e := range t.entries {
		if e.gen == e.ps.gen {
			out = append(out, layers.MACFromUint64(key))
		}
	}
	return out
}
