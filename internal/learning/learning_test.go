package learning

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/layers"
	"repro/internal/netsim"
)

// endpoint is a minimal host for dataplane tests: it records frames
// addressed to it (or broadcast) and can transmit.
type endpoint struct {
	name string
	mac  layers.MAC
	port *netsim.Port
	got  [][]byte
}

func newEndpoint(name string, n int) *endpoint {
	return &endpoint{name: name, mac: layers.HostMAC(n)}
}

func (e *endpoint) Name() string                             { return e.name }
func (e *endpoint) AttachPort(p *netsim.Port)                { e.port = p }
func (e *endpoint) PortStatusChanged(_ *netsim.Port, _ bool) {}
func (e *endpoint) HandleFrame(_ *netsim.Port, f *netsim.Frame) {
	frame := append([]byte(nil), f.Bytes()...) // borrowed: copy to keep
	dst := layers.FrameDst(frame)
	if dst == e.mac || dst.IsMulticast() {
		e.got = append(e.got, frame)
	}
}

// send emits a frame from this endpoint to dst with a tagged payload.
func (e *endpoint) send(dst layers.MAC, tag byte) {
	frame, err := layers.Serialize(
		&layers.Ethernet{Dst: dst, Src: e.mac, EtherType: layers.EtherTypeIPv4},
		layers.Payload([]byte{tag}),
	)
	if err != nil {
		panic(err)
	}
	e.port.Send(frame)
}

func cfg() netsim.LinkConfig { return netsim.DefaultLinkConfig() }

// lineTopo builds h1 - sw1 - sw2 - h2 and returns the pieces.
func lineTopo(t *testing.T) (*netsim.Network, *endpoint, *endpoint, *Switch, *Switch) {
	t.Helper()
	net := netsim.NewNetwork(1)
	h1, h2 := newEndpoint("h1", 1), newEndpoint("h2", 2)
	sw1, sw2 := New(net, "sw1", 1), New(net, "sw2", 2)
	net.Connect(h1, sw1, cfg())
	net.Connect(sw1, sw2, cfg())
	net.Connect(sw2, h2, cfg())
	sw1.Start()
	sw2.Start()
	return net, h1, h2, sw1, sw2
}

func TestUnknownUnicastFloodsThenLearns(t *testing.T) {
	net, h1, h2, sw1, _ := lineTopo(t)
	net.Engine.At(0, func() { h1.send(layers.HostMAC(2), 1) })
	net.Run()
	if len(h2.got) != 1 {
		t.Fatalf("h2 got %d frames, want 1", len(h2.got))
	}
	if sw1.ForwardingStats().FloodedUnknown != 1 {
		t.Fatalf("sw1 flooded = %d, want 1", sw1.ForwardingStats().FloodedUnknown)
	}
	// Reply: now both switches know h2, so no new floods.
	net.Engine.At(net.Now(), func() { h2.send(layers.HostMAC(1), 2) })
	net.Run()
	if len(h1.got) != 1 {
		t.Fatalf("h1 got %d frames, want 1", len(h1.got))
	}
	if sw1.ForwardingStats().FloodedUnknown != 1 {
		t.Fatal("reply flooded despite learned table")
	}
	// Third frame h1→h2 is a pure unicast forward.
	before := sw1.ForwardingStats().Forwarded
	net.Engine.At(net.Now(), func() { h1.send(layers.HostMAC(2), 3) })
	net.Run()
	if sw1.ForwardingStats().Forwarded != before+1 {
		t.Fatal("learned unicast not forwarded directly")
	}
}

func TestBroadcastFloods(t *testing.T) {
	net, h1, h2, _, _ := lineTopo(t)
	net.Engine.At(0, func() { h1.send(layers.BroadcastMAC, 9) })
	net.Run()
	if len(h2.got) != 1 {
		t.Fatalf("broadcast not delivered: %d", len(h2.got))
	}
}

func TestFilterSameSegment(t *testing.T) {
	// h1 and h2 on the same switch port side: h1 - sw - h2, then traffic
	// h1→h1's own MAC arriving at sw from h1's port must be filtered once
	// learned. Simulate by having h1 send to a MAC learned on its own port.
	net := netsim.NewNetwork(1)
	h1 := newEndpoint("h1", 1)
	sw := New(net, "sw", 1)
	net.Connect(h1, sw, cfg())
	h2 := newEndpoint("h2", 2)
	net.Connect(sw, h2, cfg())
	sw.Start()
	// Teach the switch that MAC 3 lives behind port 0 (h1's port).
	ghost := newEndpoint("ghost", 3)
	_ = ghost
	net.Engine.At(0, func() {
		frame, _ := layers.Serialize(
			&layers.Ethernet{Dst: layers.HostMAC(99), Src: layers.HostMAC(3), EtherType: layers.EtherTypeIPv4},
			layers.Payload([]byte{0}),
		)
		h1.port.Send(frame) // ghost speaks from h1's segment
	})
	net.RunFor(time.Millisecond)
	net.Engine.At(net.Now(), func() { h1.send(layers.HostMAC(3), 1) })
	net.Run()
	if sw.ForwardingStats().Filtered != 1 {
		t.Fatalf("Filtered = %d, want 1", sw.ForwardingStats().Filtered)
	}
	// The ghost's flood carried an alien destination MAC, so h2's NIC
	// filter dropped it; nothing else may have reached h2.
	if len(h2.got) != 0 {
		t.Fatalf("h2 got %d frames, want 0", len(h2.got))
	}
}

func TestLinkDownFlushesPort(t *testing.T) {
	net, h1, _, sw1, _ := lineTopo(t)
	net.Engine.At(0, func() { h1.send(layers.HostMAC(2), 1) })
	net.RunFor(time.Millisecond)
	if _, ok := sw1.FIB().Lookup(layers.HostMAC(1), net.Now()); !ok {
		t.Fatal("h1 not learned")
	}
	net.Engine.At(net.Now(), func() { sw1.Port(0).Link().SetUp(false) })
	net.Run()
	if _, ok := sw1.FIB().Lookup(layers.HostMAC(1), net.Now()); ok {
		t.Fatal("binding survived link down")
	}
}

func TestLoopMeltdown(t *testing.T) {
	// Two learning switches joined by two parallel links: a single
	// broadcast circulates forever. The event limit must trip — this is
	// the failure mode STP and ARP-Path exist to prevent.
	net := netsim.NewNetwork(1)
	h := newEndpoint("h", 1)
	sw1, sw2 := New(net, "sw1", 1), New(net, "sw2", 2)
	net.Connect(h, sw1, cfg())
	net.Connect(sw1, sw2, cfg())
	net.Connect(sw1, sw2, cfg())
	sw1.Start()
	sw2.Start()
	net.Engine.SetEventLimit(20_000)
	net.Engine.At(0, func() { h.send(layers.BroadcastMAC, 1) })
	defer func() {
		if recover() == nil {
			t.Fatal("loop did not melt down — learning switch gained loop protection?")
		}
	}()
	net.Run()
}

func TestTableAging(t *testing.T) {
	tb := NewTable(time.Second)
	net := netsim.NewNetwork(1)
	a, b := newEndpoint("a", 1), newEndpoint("b", 2)
	l := net.Connect(a, b, cfg())
	tb.Learn(layers.HostMAC(1), l.A(), 0)
	if _, ok := tb.Lookup(layers.HostMAC(1), 999*time.Millisecond); !ok {
		t.Fatal("entry expired early")
	}
	if _, ok := tb.Lookup(layers.HostMAC(1), time.Second); ok {
		t.Fatal("entry survived expiry")
	}
	if tb.Len() != 0 {
		t.Fatal("lazy eviction did not remove the entry")
	}
}

func TestTableRefreshOnRelearn(t *testing.T) {
	tb := NewTable(time.Second)
	net := netsim.NewNetwork(1)
	a, b := newEndpoint("a", 1), newEndpoint("b", 2)
	l := net.Connect(a, b, cfg())
	tb.Learn(layers.HostMAC(1), l.A(), 0)
	tb.Learn(layers.HostMAC(1), l.A(), 900*time.Millisecond)
	if _, ok := tb.Lookup(layers.HostMAC(1), 1500*time.Millisecond); !ok {
		t.Fatal("refresh did not extend expiry")
	}
}

func TestTableIgnoresMulticastAndZeroSource(t *testing.T) {
	tb := NewTable(time.Second)
	net := netsim.NewNetwork(1)
	a, b := newEndpoint("a", 1), newEndpoint("b", 2)
	l := net.Connect(a, b, cfg())
	tb.Learn(layers.BroadcastMAC, l.A(), 0)
	tb.Learn(layers.ZeroMAC, l.A(), 0)
	if tb.Len() != 0 {
		t.Fatal("invalid source learned")
	}
}

func TestTableFlushes(t *testing.T) {
	tb := NewTable(time.Second)
	net := netsim.NewNetwork(1)
	a, b := newEndpoint("a", 1), newEndpoint("b", 2)
	l := net.Connect(a, b, cfg())
	tb.Learn(layers.HostMAC(1), l.A(), 0)
	tb.Learn(layers.HostMAC(2), l.B(), 0)
	tb.FlushPort(l.A())
	if _, ok := tb.Lookup(layers.HostMAC(1), 0); ok {
		t.Fatal("FlushPort missed")
	}
	if _, ok := tb.Lookup(layers.HostMAC(2), 0); !ok {
		t.Fatal("FlushPort overreached")
	}
	tb.FlushAll()
	if tb.Len() != 0 {
		t.Fatal("FlushAll missed")
	}
}

func TestTableFlushExpired(t *testing.T) {
	tb := NewTable(time.Second)
	net := netsim.NewNetwork(1)
	a, b := newEndpoint("a", 1), newEndpoint("b", 2)
	l := net.Connect(a, b, cfg())
	tb.Learn(layers.HostMAC(1), l.A(), 0)
	tb.Learn(layers.HostMAC(2), l.A(), 500*time.Millisecond)
	tb.FlushExpired(time.Second)
	if tb.Len() != 1 {
		t.Fatalf("Len = %d after sweep, want 1", tb.Len())
	}
}

// TestTableGenerationFlush exercises the O(1) generation-based FlushPort:
// corpses stay in the map but are invisible to Lookup, Len and Macs, and
// re-learning on a flushed port starts a fresh generation.
func TestTableGenerationFlush(t *testing.T) {
	tb := NewTable(time.Second)
	net := netsim.NewNetwork(1)
	a, b := newEndpoint("a", 1), newEndpoint("b", 2)
	l := net.Connect(a, b, cfg())
	for i := 1; i <= 5; i++ {
		tb.Learn(layers.HostMAC(i), l.A(), 0)
	}
	tb.Learn(layers.HostMAC(6), l.B(), 0)
	tb.FlushPort(l.A())
	if tb.Len() != 1 {
		t.Fatalf("Len = %d after flush, want 1", tb.Len())
	}
	if got := tb.Macs(); len(got) != 1 || got[0] != layers.HostMAC(6) {
		t.Fatalf("Macs = %v, want only host 6", got)
	}
	// Re-learn two of the flushed MACs; one on each port.
	tb.Learn(layers.HostMAC(1), l.A(), 0)
	tb.Learn(layers.HostMAC(2), l.B(), 0)
	if tb.Len() != 3 {
		t.Fatalf("Len = %d after re-learn, want 3", tb.Len())
	}
	if p, ok := tb.Lookup(layers.HostMAC(1), 0); !ok || p != l.A() {
		t.Fatal("re-learned entry on flushed port not visible")
	}
	// A second flush kills only the re-learned entry on A.
	tb.FlushPort(l.A())
	if _, ok := tb.Lookup(layers.HostMAC(1), 0); ok {
		t.Fatal("second flush missed the re-learned entry")
	}
	if _, ok := tb.Lookup(layers.HostMAC(2), 0); !ok {
		t.Fatal("second flush overreached onto port B")
	}
	// FlushExpired clears every corpse from the map itself.
	tb.FlushExpired(0)
	if len(tb.entries) != 2 {
		t.Fatalf("map holds %d entries after sweep, want 2", len(tb.entries))
	}
}

func TestSetAgingValidation(t *testing.T) {
	tb := NewTable(time.Second)
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive aging accepted")
		}
	}()
	tb.SetAging(0)
}

// Property: the table never returns an expired entry and never holds more
// than one port per MAC.
func TestQuickTableConsistency(t *testing.T) {
	net := netsim.NewNetwork(1)
	a, b := newEndpoint("a", 1), newEndpoint("b", 2)
	l := net.Connect(a, b, cfg())
	ports := []*netsim.Port{l.A(), l.B()}
	f := func(ops []struct {
		Mac     uint8
		PortSel bool
		AtMs    uint16
	}) bool {
		tb := NewTable(time.Second)
		now := time.Duration(0)
		for _, op := range ops {
			at := time.Duration(op.AtMs) * time.Millisecond
			if at > now {
				now = at
			}
			mac := layers.HostMAC(int(op.Mac % 8))
			port := ports[0]
			if op.PortSel {
				port = ports[1]
			}
			tb.Learn(mac, port, now)
			got, ok := tb.Lookup(mac, now)
			if !ok || got != port {
				return false // a fresh learn must be visible on its port
			}
			if _, ok := tb.Lookup(mac, now+2*time.Second); ok {
				return false // must be gone after aging
			}
			tb.Learn(mac, port, now) // lookup at future evicted it; restore
		}
		return true
	}
	qc := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(9))}
	if err := quick.Check(f, qc); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTableLearnLookup(b *testing.B) {
	net := netsim.NewNetwork(1)
	x, y := newEndpoint("a", 1), newEndpoint("b", 2)
	l := net.Connect(x, y, cfg())
	tb := NewTable(time.Hour)
	macs := make([]layers.MAC, 256)
	for i := range macs {
		macs[i] = layers.HostMAC(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := macs[i%len(macs)]
		tb.Learn(m, l.A(), time.Duration(i))
		tb.Lookup(m, time.Duration(i))
	}
}
