package learning

import (
	"time"

	"repro/internal/bridge"
	"repro/internal/netsim"
	"repro/internal/tables"
)

// Config tunes a learning switch. It exists mostly so the protocol
// registry can carry learning-switch settings the same way it carries
// ARP-Path and STP ones.
type Config struct {
	// Aging is the filtering-database aging time.
	Aging time.Duration
	// TableCapacity bounds the filtering database (0 = unbounded). A
	// bound requires TablePolicy. See DESIGN.md §12.
	TableCapacity int
	// TablePolicy selects the eviction policy for a bounded table:
	// "lru" or "clock" ("" / "timeout" is the unbounded baseline).
	TablePolicy string
}

// DefaultConfig returns the standard aging time.
func DefaultConfig() Config { return Config{Aging: DefaultAging} }

// WithDefaults fills unset (zero) fields field-wise.
func (c Config) WithDefaults() Config {
	if c.Aging == 0 {
		c.Aging = DefaultAging
	}
	return c
}

// Stats counts forwarding decisions of a learning switch.
type Stats struct {
	Forwarded      uint64 // unicast hits sent out one port
	FloodedUnknown uint64 // unknown unicast floods
	FloodedGroup   uint64 // broadcast/multicast floods
	Filtered       uint64 // frames whose FIB entry pointed at the ingress port
}

// Switch is a plain IEEE 802.1D-style transparent learning bridge with no
// loop protection. On loop-free topologies it behaves like the demo's NIC
// bridges with STP converged; on looped topologies it melts down — which
// the tests demonstrate on purpose.
type Switch struct {
	*bridge.Chassis
	fib   *Table
	stats Stats
}

// New creates a learning switch named name with the default aging time.
func New(net *netsim.Network, name string, numID int) *Switch {
	return NewWithConfig(net, name, numID, DefaultConfig())
}

// NewWithConfig creates a learning switch with an explicit configuration.
func NewWithConfig(net *netsim.Network, name string, numID int, cfg Config) *Switch {
	cfg = cfg.WithDefaults()
	bound, err := tables.ParseConfig(cfg.TableCapacity, cfg.TablePolicy)
	if err != nil {
		panic("learning: " + err.Error())
	}
	s := &Switch{}
	s.Chassis = bridge.NewChassis(net, name, numID, s)
	s.fib = NewBoundedTable(cfg.Aging, bound)
	return s
}

// FIB exposes the forwarding table (tests and the STP baseline reuse it).
func (s *Switch) FIB() *Table { return s.fib }

// Stats returns a snapshot of the forwarding counters.
func (s *Switch) ForwardingStats() Stats { return s.stats }

// OnStart implements bridge.Protocol.
func (s *Switch) OnStart() {}

// OnPortStatus implements bridge.Protocol: dead ports forget their hosts.
func (s *Switch) OnPortStatus(p *netsim.Port, up bool) {
	if !up {
		s.fib.FlushPort(p)
	}
}

// OnFrame implements bridge.Protocol: the whole decision runs on the
// frame's pre-decoded view and packed keys; nothing is parsed or copied.
//
//fabric:hotpath
func (s *Switch) OnFrame(in *netsim.Port, f *netsim.Frame) {
	now := s.Now()
	v := f.View()
	s.fib.LearnKey(v.SrcKey, in, now)
	if v.IsMulticast() {
		s.stats.FloodedGroup++
		s.FloodExcept(in, f)
		return
	}
	out, ok := s.fib.LookupKey(v.DstKey, now)
	switch {
	case !ok:
		s.stats.FloodedUnknown++
		s.FloodExcept(in, f)
	case out == in:
		// Destination is on the segment the frame came from: filter.
		s.stats.Filtered++
	default:
		s.stats.Forwarded++
		out.SendFrame(f)
	}
}

var _ bridge.Protocol = (*Switch)(nil)
var _ netsim.Node = (*Switch)(nil)
