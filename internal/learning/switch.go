package learning

import (
	"repro/internal/bridge"
	"repro/internal/layers"
	"repro/internal/netsim"
)

// Stats counts forwarding decisions of a learning switch.
type Stats struct {
	Forwarded      uint64 // unicast hits sent out one port
	FloodedUnknown uint64 // unknown unicast floods
	FloodedGroup   uint64 // broadcast/multicast floods
	Filtered       uint64 // frames whose FIB entry pointed at the ingress port
}

// Switch is a plain IEEE 802.1D-style transparent learning bridge with no
// loop protection. On loop-free topologies it behaves like the demo's NIC
// bridges with STP converged; on looped topologies it melts down — which
// the tests demonstrate on purpose.
type Switch struct {
	*bridge.Chassis
	fib   *Table
	stats Stats
}

// New creates a learning switch named name with the default aging time.
func New(net *netsim.Network, name string, numID int) *Switch {
	s := &Switch{}
	s.Chassis = bridge.NewChassis(net, name, numID, s)
	s.fib = NewTable(DefaultAging)
	return s
}

// FIB exposes the forwarding table (tests and the STP baseline reuse it).
func (s *Switch) FIB() *Table { return s.fib }

// Stats returns a snapshot of the forwarding counters.
func (s *Switch) ForwardingStats() Stats { return s.stats }

// OnStart implements bridge.Protocol.
func (s *Switch) OnStart() {}

// OnPortStatus implements bridge.Protocol: dead ports forget their hosts.
func (s *Switch) OnPortStatus(p *netsim.Port, up bool) {
	if !up {
		s.fib.FlushPort(p)
	}
}

// OnFrame implements bridge.Protocol.
func (s *Switch) OnFrame(in *netsim.Port, frame []byte) {
	now := s.Now()
	src, dst := layers.FrameSrc(frame), layers.FrameDst(frame)
	s.fib.Learn(src, in, now)
	if dst.IsMulticast() {
		s.stats.FloodedGroup++
		s.FloodExcept(in, frame)
		return
	}
	out, ok := s.fib.Lookup(dst, now)
	switch {
	case !ok:
		s.stats.FloodedUnknown++
		s.FloodExcept(in, frame)
	case out == in:
		// Destination is on the segment the frame came from: filter.
		s.stats.Filtered++
	default:
		s.stats.Forwarded++
		out.Send(frame)
	}
}

var _ bridge.Protocol = (*Switch)(nil)
var _ netsim.Node = (*Switch)(nil)
