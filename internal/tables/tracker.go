package tables

// Handle names a tracked entry. The zero Handle is invalid (it indexes the
// list sentinel); table entries store their handle inline so every tracker
// operation on a known entry is O(1) with no map lookup.
type Handle int32

type node[K comparable] struct {
	key        K
	prev, next int32
	ref        bool // clock reference bit (second chance)
}

// Tracker maintains recency order over a set of keys for victim selection.
// It is an arena of nodes threaded into one circular doubly-linked list
// through a sentinel at index 0; freed nodes go on a free list (threaded
// through next) and are reused before the arena grows, so churn at steady
// occupancy allocates nothing.
//
// List order is recency: sentinel.next is the coldest entry (LRU side),
// sentinel.prev the hottest (MRU side). Under PolicyLRU a Touch relinks to
// the MRU side; under PolicyClock it just sets the reference bit and the
// hand does the aging.
type Tracker[K comparable] struct {
	policy Policy
	nodes  []node[K]
	free   int32 // free-list head, 0 = empty
	hand   int32 // clock hand, 0 = park at LRU side
	n      int
}

// NewTracker returns a tracker for the given policy. PolicyTimeout has no
// victim order; asking for a tracker with it is a programming error.
func NewTracker[K comparable](p Policy) *Tracker[K] {
	if p == PolicyTimeout {
		panic("tables: NewTracker with PolicyTimeout (timeout tables are untracked)")
	}
	t := &Tracker[K]{policy: p}
	t.nodes = make([]node[K], 1, 64) // index 0 is the sentinel
	return t
}

// Len returns the number of tracked keys.
func (t *Tracker[K]) Len() int { return t.n }

// Key returns the key stored under h.
func (t *Tracker[K]) Key(h Handle) K { return t.nodes[h].key }

// alloc takes a node off the free list, growing the arena when empty.
func (t *Tracker[K]) alloc() int32 {
	if t.free != 0 {
		i := t.free
		t.free = t.nodes[i].next
		return i
	}
	t.nodes = append(t.nodes, node[K]{})
	return int32(len(t.nodes) - 1)
}

// linkMRU inserts node i at the hot end of the list.
func (t *Tracker[K]) linkMRU(i int32) {
	tail := t.nodes[0].prev
	t.nodes[i].prev = tail
	t.nodes[i].next = 0
	t.nodes[tail].next = i
	t.nodes[0].prev = i
}

// unlink removes node i from the list (not the arena).
func (t *Tracker[K]) unlink(i int32) {
	p, n := t.nodes[i].prev, t.nodes[i].next
	t.nodes[p].next = n
	t.nodes[n].prev = p
}

// Insert starts tracking k as the most recently used key.
func (t *Tracker[K]) Insert(k K) Handle {
	i := t.alloc()
	t.nodes[i] = node[K]{key: k}
	t.linkMRU(i)
	t.n++
	return Handle(i)
}

// Touch records a use of h: LRU relinks it hot, clock sets its reference
// bit and leaves the ring order alone.
func (t *Tracker[K]) Touch(h Handle) {
	i := int32(h)
	if t.policy == PolicyClock {
		t.nodes[i].ref = true
		return
	}
	if t.nodes[0].prev == i {
		return // already MRU
	}
	t.unlink(i)
	t.linkMRU(i)
}

// Remove stops tracking h and recycles its node.
func (t *Tracker[K]) Remove(h Handle) {
	i := int32(h)
	if t.hand == i {
		t.hand = t.nodes[i].next // keep the clock hand on a live node
	}
	t.unlink(i)
	var zero K
	t.nodes[i] = node[K]{key: zero, next: t.free}
	t.free = i
	t.n--
}

// Victim proposes the next eviction candidate without removing it. The
// caller evicts it (Remove) or vetoes it (Reject) — for instance when the
// entry is inside its §2.1.1 race window (Guarded) and must not be
// evicted. Returns false when nothing is tracked.
//
// LRU proposes the cold end. Clock walks the ring from the hand, clearing
// reference bits, and proposes the first unreferenced node; the walk is
// bounded by 2·Len (one full lap clears every bit, the next node then
// qualifies).
func (t *Tracker[K]) Victim() (Handle, bool) {
	if t.n == 0 {
		return 0, false
	}
	if t.policy == PolicyLRU {
		return Handle(t.nodes[0].next), true
	}
	i := t.hand
	if i == 0 {
		i = t.nodes[0].next
	}
	for steps := 2 * t.n; steps > 0; steps-- {
		if i == 0 { // skip the sentinel when wrapping
			i = t.nodes[0].next
		}
		if !t.nodes[i].ref {
			t.hand = i
			return Handle(i), true
		}
		t.nodes[i].ref = false
		i = t.nodes[i].next
	}
	// Unreachable: one lap clears every bit. Keep a defined answer anyway.
	return Handle(t.nodes[0].next), true
}

// Reject gives the proposed victim a reprieve: LRU relinks it hot (so the
// next Victim proposes the next-coldest key); clock re-arms its reference
// bit and advances the hand past it.
func (t *Tracker[K]) Reject(h Handle) {
	i := int32(h)
	if t.policy == PolicyClock {
		t.nodes[i].ref = true
		t.hand = t.nodes[i].next
		return
	}
	t.unlink(i)
	t.linkMRU(i)
}

// Reset forgets every key but keeps the arena for reuse.
func (t *Tracker[K]) Reset() {
	t.nodes = t.nodes[:1]
	t.nodes[0] = node[K]{}
	t.free = 0
	t.hand = 0
	t.n = 0
}
