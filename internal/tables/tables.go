// Package tables provides the shared bounding machinery for the fabric's
// forwarding tables (core.LockTable, flowpath.PairTable, learning.Table):
// an eviction policy enum, a capacity/policy Config carried through the
// protocol codecs, and a deterministic recency Tracker implementing LRU
// and clock (second-chance) victim selection.
//
// Determinism contract: victim order is a pure function of the sequence of
// Insert/Touch/Remove/Reject calls — never of Go map iteration order, the
// shard count, or GOMAXPROCS. The tracker is an intrusive doubly-linked
// list over a slice arena with a free list, so steady-state churn
// (remove + insert at equal occupancy) allocates nothing.
package tables

import "fmt"

// Policy selects how a bounded table picks eviction victims.
type Policy uint8

const (
	// PolicyTimeout is the unbounded baseline: entries die only by
	// timeout or flush (lazy expiry plus the amortized sweep). It has no
	// deterministic victim order, so it cannot be combined with a
	// capacity bound.
	PolicyTimeout Policy = iota
	// PolicyLRU evicts the least-recently-used entry first.
	PolicyLRU
	// PolicyClock is the classic second-chance approximation: a hand
	// sweeps a ring of entries, clearing reference bits, and evicts the
	// first entry found unreferenced. Cheaper metadata traffic than LRU
	// (a touch sets a bit instead of relinking), near-LRU behaviour.
	PolicyClock
)

// String returns the codec spelling of the policy.
func (p Policy) String() string {
	switch p {
	case PolicyTimeout:
		return "timeout"
	case PolicyLRU:
		return "lru"
	case PolicyClock:
		return "clock"
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// ParsePolicy parses a codec spelling. The empty string means the timeout
// baseline, so absent JSON fields decode to the unbounded default.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "timeout":
		return PolicyTimeout, nil
	case "lru":
		return PolicyLRU, nil
	case "clock":
		return PolicyClock, nil
	}
	return PolicyTimeout, fmt.Errorf("tables: unknown eviction policy %q (want timeout, lru or clock)", s)
}

// Config bounds one table. The zero value is today's behaviour: unbounded,
// timeout-only expiry.
type Config struct {
	// Capacity is the maximum number of map entries (live or corpse)
	// before the table evicts. 0 means unbounded.
	Capacity int
	// Policy selects the victim order. Capacity > 0 requires LRU or
	// clock; timeout has no victim order to offer.
	Policy Policy
}

// Validate rejects configurations with no defined eviction order.
func (c Config) Validate() error {
	if c.Capacity < 0 {
		return fmt.Errorf("tables: negative capacity %d", c.Capacity)
	}
	if c.Capacity > 0 && c.Policy == PolicyTimeout {
		return fmt.Errorf("tables: capacity %d needs an eviction policy (lru or clock); timeout is unbounded-only", c.Capacity)
	}
	return nil
}

// ParseConfig builds and validates a Config from the codec representation.
func ParseConfig(capacity int, policy string) (Config, error) {
	p, err := ParsePolicy(policy)
	if err != nil {
		return Config{}, err
	}
	cfg := Config{Capacity: capacity, Policy: p}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// Tracked reports whether a table with this config maintains a recency
// tracker. A tracker without a capacity (Capacity 0, Policy lru/clock)
// is legal: it orders entries but never forces an eviction — the
// configuration used by the capacity=∞ differential golden tests.
func (c Config) Tracked() bool { return c.Policy != PolicyTimeout }

// RejectBudget bounds how many race-guarded victims one insert may skip
// over before admitting the new entry above capacity. Guarded entries
// must never be evicted (moving a binding mid-race reopens the §2.1.1
// hazards), but scanning past all of them on every insert would make an
// over-capacity table quadratic when open race windows dominate — the
// exact regime an eviction-pressure workload creates. Rejected victims
// are re-ranked (LRU: moved most-recent; clock: hand advanced), so
// successive inserts probe fresh candidates and the budget stays
// effective without a full walk. Evictions themselves are not budgeted:
// each one makes progress toward the bound.
const RejectBudget = 8
