package tables

import (
	"math/rand"
	"testing"
)

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in   string
		want Policy
		ok   bool
	}{
		{"", PolicyTimeout, true},
		{"timeout", PolicyTimeout, true},
		{"lru", PolicyLRU, true},
		{"clock", PolicyClock, true},
		{"LRU", 0, false},
		{"random", 0, false},
	}
	for _, c := range cases {
		got, err := ParsePolicy(c.in)
		if (err == nil) != c.ok {
			t.Fatalf("ParsePolicy(%q): err=%v, want ok=%v", c.in, err, c.ok)
		}
		if err == nil && got != c.want {
			t.Fatalf("ParsePolicy(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, p := range []Policy{PolicyTimeout, PolicyLRU, PolicyClock} {
		back, err := ParsePolicy(p.String())
		if err != nil || back != p {
			t.Fatalf("round trip %v: got %v, err %v", p, back, err)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config: %v", err)
	}
	if err := (Config{Capacity: 4, Policy: PolicyLRU}).Validate(); err != nil {
		t.Fatalf("bounded lru: %v", err)
	}
	if err := (Config{Capacity: 0, Policy: PolicyClock}).Validate(); err != nil {
		t.Fatalf("unbounded clock (tracked, never evicts): %v", err)
	}
	if err := (Config{Capacity: 4}).Validate(); err == nil {
		t.Fatal("capacity without policy must be rejected")
	}
	if err := (Config{Capacity: -1}).Validate(); err == nil {
		t.Fatal("negative capacity must be rejected")
	}
	if _, err := ParseConfig(8, "bogus"); err == nil {
		t.Fatal("ParseConfig must reject unknown policies")
	}
}

func TestLRUOrder(t *testing.T) {
	tr := NewTracker[int](PolicyLRU)
	h := map[int]Handle{}
	for i := 1; i <= 4; i++ {
		h[i] = tr.Insert(i)
	}
	tr.Touch(h[1]) // order now 2,3,4,1 cold→hot

	want := []int{2, 3, 4, 1}
	for _, k := range want {
		v, ok := tr.Victim()
		if !ok || tr.Key(v) != k {
			t.Fatalf("victim: got %d ok=%v, want %d", tr.Key(v), ok, k)
		}
		tr.Remove(v)
	}
	if _, ok := tr.Victim(); ok || tr.Len() != 0 {
		t.Fatal("tracker should be empty")
	}
}

func TestLRURejectMovesOn(t *testing.T) {
	tr := NewTracker[int](PolicyLRU)
	a := tr.Insert(1)
	tr.Insert(2)
	v, _ := tr.Victim()
	if v != a {
		t.Fatalf("expected 1 coldest")
	}
	tr.Reject(v)
	v2, _ := tr.Victim()
	if tr.Key(v2) != 2 {
		t.Fatalf("after reject, victim = %d, want 2", tr.Key(v2))
	}
}

func TestClockSecondChance(t *testing.T) {
	tr := NewTracker[int](PolicyClock)
	h := map[int]Handle{}
	for i := 1; i <= 3; i++ {
		h[i] = tr.Insert(i)
	}
	tr.Touch(h[1]) // 1 gets a second chance

	v, ok := tr.Victim()
	if !ok || tr.Key(v) != 2 {
		t.Fatalf("clock victim = %d, want 2 (1 is referenced)", tr.Key(v))
	}
	tr.Remove(v)
	// 1's bit was cleared by the pass above; next victim is 3 only if the
	// hand moved past 1. The hand sits where the last victim was found, so
	// the walk resumes from 3: 3 unreferenced → victim.
	v, _ = tr.Victim()
	if tr.Key(v) != 3 {
		t.Fatalf("clock victim = %d, want 3", tr.Key(v))
	}
	tr.Remove(v)
	v, _ = tr.Victim()
	if tr.Key(v) != 1 {
		t.Fatalf("clock victim = %d, want 1", tr.Key(v))
	}
}

func TestClockRejectAdvancesHand(t *testing.T) {
	tr := NewTracker[int](PolicyClock)
	a := tr.Insert(1)
	tr.Insert(2)
	v, _ := tr.Victim()
	if v != a {
		t.Fatal("expected 1 first")
	}
	tr.Reject(v) // re-arms 1, hand moves to 2
	v2, _ := tr.Victim()
	if tr.Key(v2) != 2 {
		t.Fatalf("after reject, victim = %d, want 2", tr.Key(v2))
	}
}

// TestTrackerChurnReusesArena drives heavy insert/remove churn and checks
// the arena does not grow past occupancy + 1 slack: the free list recycles
// every node, which is what makes bounded tables zero-alloc at steady
// state.
func TestTrackerChurnReusesArena(t *testing.T) {
	for _, p := range []Policy{PolicyLRU, PolicyClock} {
		tr := NewTracker[uint64](p)
		live := []Handle{}
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 20000; i++ {
			switch {
			case len(live) < 64:
				live = append(live, tr.Insert(uint64(i)))
			default:
				j := rng.Intn(len(live))
				switch rng.Intn(3) {
				case 0:
					tr.Touch(live[j])
				case 1:
					if v, ok := tr.Victim(); ok {
						tr.Reject(v)
					}
				default:
					tr.Remove(live[j])
					live[j] = live[len(live)-1]
					live = live[:len(live)-1]
				}
			}
		}
		if got := len(tr.nodes); got > 64+2 {
			t.Fatalf("%v: arena grew to %d nodes for 64 live keys", p, got)
		}
		// Exhaustive drain must return every live key exactly once.
		seen := map[uint64]bool{}
		for tr.Len() > 0 {
			v, ok := tr.Victim()
			if !ok {
				t.Fatalf("%v: Len=%d but no victim", p, tr.Len())
			}
			k := tr.Key(v)
			if seen[k] {
				t.Fatalf("%v: key %d proposed twice", p, k)
			}
			seen[k] = true
			tr.Remove(v)
		}
		if len(seen) != len(live) {
			t.Fatalf("%v: drained %d keys, want %d", p, len(seen), len(live))
		}
	}
}

func TestTrackerReset(t *testing.T) {
	tr := NewTracker[int](PolicyLRU)
	for i := 0; i < 10; i++ {
		tr.Insert(i)
	}
	tr.Reset()
	if tr.Len() != 0 {
		t.Fatal("reset should empty the tracker")
	}
	h := tr.Insert(42)
	if v, ok := tr.Victim(); !ok || v != h || tr.Key(v) != 42 {
		t.Fatal("tracker unusable after reset")
	}
}
