package bridge

import (
	"testing"
	"time"

	"repro/internal/layers"
	"repro/internal/netsim"
)

// stubProto records protocol callbacks.
type stubProto struct {
	frames  int
	status  []bool
	started int
}

func (s *stubProto) OnFrame(_ *netsim.Port, _ *netsim.Frame) { s.frames++ }
func (s *stubProto) OnPortStatus(_ *netsim.Port, up bool)    { s.status = append(s.status, up) }
func (s *stubProto) OnStart()                                { s.started++ }

// stubBridge couples a chassis with a stub protocol as a netsim.Node.
type stubBridge struct {
	*Chassis
	proto *stubProto
}

func newStubBridge(net *netsim.Network, name string, id int, hello bool) *stubBridge {
	p := &stubProto{}
	b := &stubBridge{proto: p}
	b.Chassis = NewChassis(net, name, id, p)
	b.HelloEnabled = hello
	return b
}

// sink is a dumb endpoint that records received frames.
type sink struct {
	name string
	got  [][]byte
	port *netsim.Port
}

func (s *sink) Name() string              { return s.name }
func (s *sink) AttachPort(p *netsim.Port) { s.port = p }
func (s *sink) HandleFrame(_ *netsim.Port, f *netsim.Frame) {
	s.got = append(s.got, append([]byte(nil), f.Bytes()...))
}
func (s *sink) PortStatusChanged(_ *netsim.Port, _ bool) {}

func cfg() netsim.LinkConfig { return netsim.DefaultLinkConfig() }

func TestChassisIdentity(t *testing.T) {
	net := netsim.NewNetwork(1)
	b := newStubBridge(net, "br", 7, false)
	if b.Name() != "br" || b.NumID() != 7 || b.MAC() != layers.BridgeMAC(7) {
		t.Fatal("identity mismatch")
	}
	if b.Net() != net {
		t.Fatal("network accessor")
	}
}

func TestStartRunsProtocolOnce(t *testing.T) {
	net := netsim.NewNetwork(1)
	b := newStubBridge(net, "br", 1, false)
	other := newStubBridge(net, "o", 2, false)
	net.Connect(b, other, cfg())
	b.Start()
	net.RunFor(time.Millisecond)
	if b.proto.started != 1 {
		t.Fatalf("OnStart ran %d times", b.proto.started)
	}
}

func TestHelloMarksTrunks(t *testing.T) {
	net := netsim.NewNetwork(1)
	b1 := newStubBridge(net, "b1", 1, true)
	b2 := newStubBridge(net, "b2", 2, true)
	h := &sink{name: "h"}
	net.Connect(b1, b2, cfg())
	net.Connect(b1, h, cfg())
	b1.Start()
	b2.Start()
	net.RunFor(time.Millisecond)
	if !b1.IsTrunk(b1.Port(0)) || b1.IsEdge(b1.Port(0)) {
		t.Fatal("bridge-facing port not marked trunk")
	}
	if b1.IsTrunk(b1.Port(1)) || !b1.IsEdge(b1.Port(1)) {
		t.Fatal("host-facing port marked trunk")
	}
	// HELLOs are consumed by the chassis, never passed to the protocol.
	if b1.proto.frames != 0 {
		t.Fatalf("protocol saw %d frames, want 0", b1.proto.frames)
	}
	if b1.Stats().HellosReceived == 0 || b1.Stats().HellosSent == 0 {
		t.Fatal("hello counters not bumped")
	}
}

func TestHelloDisabledSendsNothing(t *testing.T) {
	net := netsim.NewNetwork(1)
	b1 := newStubBridge(net, "b1", 1, false)
	b2 := newStubBridge(net, "b2", 2, false)
	net.Connect(b1, b2, cfg())
	b1.Start()
	b2.Start()
	net.RunFor(time.Millisecond)
	if b1.Stats().HellosSent != 0 || b2.Stats().HellosReceived != 0 {
		t.Fatal("hello sent despite being disabled")
	}
	if b2.IsTrunk(b2.Port(0)) {
		t.Fatal("trunk marked without hello")
	}
}

func TestTrunkClearedOnLinkDownAndRediscovered(t *testing.T) {
	net := netsim.NewNetwork(1)
	b1 := newStubBridge(net, "b1", 1, true)
	b2 := newStubBridge(net, "b2", 2, true)
	l := net.Connect(b1, b2, cfg())
	b1.Start()
	b2.Start()
	net.RunFor(time.Millisecond)
	if !b1.IsTrunk(b1.Port(0)) {
		t.Fatal("precondition: trunk")
	}
	net.Engine.At(net.Now(), func() { l.SetUp(false) })
	net.RunFor(time.Millisecond)
	if b1.IsTrunk(b1.Port(0)) {
		t.Fatal("trunk flag survived link down")
	}
	net.Engine.At(net.Now(), func() { l.SetUp(true) })
	net.RunFor(time.Millisecond)
	if !b1.IsTrunk(b1.Port(0)) {
		t.Fatal("trunk not rediscovered after link up")
	}
	// Protocol saw both transitions.
	if len(b1.proto.status) != 2 || b1.proto.status[0] || !b1.proto.status[1] {
		t.Fatalf("status callbacks %v", b1.proto.status)
	}
}

func TestFloodExceptSkipsIngressAndDownPorts(t *testing.T) {
	net := netsim.NewNetwork(1)
	b := newStubBridge(net, "b", 1, false)
	s1, s2, s3 := &sink{name: "s1"}, &sink{name: "s2"}, &sink{name: "s3"}
	net.Connect(b, s1, cfg())
	l2 := net.Connect(b, s2, cfg())
	net.Connect(b, s3, cfg())
	b.Start()
	frame, _ := layers.Serialize(
		&layers.Ethernet{Dst: layers.BroadcastMAC, Src: layers.HostMAC(1), EtherType: layers.EtherTypeIPv4},
		layers.Payload([]byte{1}),
	)
	net.Engine.At(0, func() { l2.SetUp(false) })
	net.Engine.At(time.Millisecond, func() { b.FloodBytesExcept(b.Port(0), frame) })
	net.Run()
	if len(s1.got) != 0 {
		t.Fatal("flood echoed out the ingress port")
	}
	if len(s2.got) != 0 {
		t.Fatal("flood used a down port")
	}
	if len(s3.got) != 1 {
		t.Fatalf("s3 got %d frames, want 1", len(s3.got))
	}
	if b.Stats().Flooded != 1 {
		t.Fatalf("Flooded = %d, want 1", b.Stats().Flooded)
	}
}

func TestFloodExceptNilFloodsEverywhere(t *testing.T) {
	net := netsim.NewNetwork(1)
	b := newStubBridge(net, "b", 1, false)
	s1, s2 := &sink{name: "s1"}, &sink{name: "s2"}
	net.Connect(b, s1, cfg())
	net.Connect(b, s2, cfg())
	b.Start()
	frame, _ := layers.Serialize(
		&layers.Ethernet{Dst: layers.BroadcastMAC, Src: layers.HostMAC(1), EtherType: layers.EtherTypeIPv4},
		layers.Payload([]byte{1}),
	)
	net.Engine.At(0, func() { b.FloodBytesExcept(nil, frame) })
	net.Run()
	if len(s1.got) != 1 || len(s2.got) != 1 {
		t.Fatal("nil-except flood missed a port")
	}
}

func TestNonHelloFramesReachProtocol(t *testing.T) {
	net := netsim.NewNetwork(1)
	b := newStubBridge(net, "b", 1, true)
	s := &sink{name: "s"}
	net.Connect(b, s, cfg())
	b.Start()
	frame, _ := layers.Serialize(
		&layers.Ethernet{Dst: layers.HostMAC(9), Src: layers.HostMAC(1), EtherType: layers.EtherTypeIPv4},
		layers.Payload([]byte{1}),
	)
	net.Engine.At(0, func() { s.port.Send(frame) })
	net.Run()
	if b.proto.frames != 1 {
		t.Fatalf("protocol frames = %d, want 1", b.proto.frames)
	}
}

func TestPortsAccessors(t *testing.T) {
	net := netsim.NewNetwork(1)
	b := newStubBridge(net, "b", 1, false)
	s1, s2 := &sink{name: "s1"}, &sink{name: "s2"}
	net.Connect(b, s1, cfg())
	net.Connect(b, s2, cfg())
	if len(b.Ports()) != 2 {
		t.Fatalf("Ports() = %d", len(b.Ports()))
	}
	if b.Port(0).Index() != 0 || b.Port(1).Index() != 1 {
		t.Fatal("port order broken")
	}
}
