// Package bridge provides the chassis shared by every bridge protocol in
// this repository (ARP-Path, 802.1D STP, plain learning). The chassis owns
// the ports, gives the bridge a MAC identity, floods frames
// deterministically, and — when enabled — runs the HELLO neighbour
// discovery that lets ARP-Path bridges tell trunk (bridge-facing) ports
// from edge (host-facing) ports without configuring hosts (DESIGN.md §2).
package bridge

import (
	"math/rand"
	"time"

	"repro/internal/layers"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// Protocol is the per-frame logic a concrete bridge plugs into its Chassis.
// All callbacks run on the simulation goroutine.
type Protocol interface {
	// OnFrame handles a received frame that the chassis did not consume
	// (everything except HELLOs). The frame follows the netsim borrow
	// contract: valid until return, Retain to keep, and its FrameView is
	// already decoded — protocols should not re-parse the headers.
	OnFrame(in *netsim.Port, f *netsim.Frame)
	// OnPortStatus reports a link transition after the chassis has updated
	// its own bookkeeping.
	OnPortStatus(p *netsim.Port, up bool)
	// OnStart runs once when the bridge is started, before any traffic.
	OnStart()
}

// Chassis implements netsim.Node on behalf of a bridge protocol.
type Chassis struct {
	net   *netsim.Network
	name  string
	numID int
	mac   layers.MAC
	proto Protocol

	ports []*netsim.Port
	trunk map[*netsim.Port]bool
	nbr   map[*netsim.Port]uint64

	// HelloEnabled turns on neighbour discovery. ARP-Path bridges enable
	// it; the STP and learning baselines do not need it.
	HelloEnabled bool

	sched *sim.Proc
	rng   *rand.Rand
	stats ChassisStats
}

// ChassisStats counts chassis-level events.
type ChassisStats struct {
	HellosSent     uint64
	HellosReceived uint64
	Flooded        uint64 // frames flooded by FloodExcept
}

// NewChassis builds a chassis for the named bridge. numID seeds the bridge
// MAC (layers.BridgeMAC) and the PathCtl bridge identifier.
func NewChassis(net *netsim.Network, name string, numID int, proto Protocol) *Chassis {
	return &Chassis{
		net:   net,
		name:  name,
		numID: numID,
		mac:   layers.BridgeMAC(numID),
		proto: proto,
		trunk: make(map[*netsim.Port]bool),
		nbr:   make(map[*netsim.Port]uint64),
	}
}

// Name implements netsim.Node.
func (c *Chassis) Name() string { return c.name }

// MAC returns the bridge's own address (source of HELLO/PathFail frames).
func (c *Chassis) MAC() layers.MAC { return c.mac }

// NumID returns the numeric bridge identifier.
func (c *Chassis) NumID() int { return c.numID }

// Net returns the owning network.
func (c *Chassis) Net() *netsim.Network { return c.net }

// Sched returns the bridge's scheduling identity: every timer and event a
// bridge protocol creates must go through it so the event order stays
// independent of how the fabric is sharded (sim.Proc). Resolved lazily —
// the topology builder registers the bridge with the network after the
// chassis is constructed.
func (c *Chassis) Sched() *sim.Proc {
	if c.sched == nil {
		c.sched = c.net.Proc(c.name)
	}
	return c.sched
}

// After schedules fn d from now under the bridge's identity.
func (c *Chassis) After(d time.Duration, fn func()) *sim.Timer {
	return c.Sched().After(d, fn)
}

// Rand returns the bridge's own deterministic random source, seeded from
// the network seed and the bridge id. Per-bridge streams (rather than the
// engine's) keep draws a function of this bridge's history alone, which
// the sharded engine's determinism depends on.
func (c *Chassis) Rand() *rand.Rand {
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(c.net.Seed() ^ (int64(c.numID)+1)*0x5851F42D4C957F2D))
	}
	return c.rng
}

// Now returns the current virtual time as this bridge observes it: its
// own shard's clock. (The network's control clock only advances at
// barriers, so reading it from inside a parallel window would freeze
// every lazy expiry check for the window's duration.)
func (c *Chassis) Now() time.Duration { return c.Sched().Now() }

// Stats returns a snapshot of the chassis counters.
func (c *Chassis) Stats() ChassisStats { return c.stats }

// AttachPort implements netsim.Node.
func (c *Chassis) AttachPort(p *netsim.Port) { c.ports = append(c.ports, p) }

// Ports returns the bridge's ports in cabling order.
func (c *Chassis) Ports() []*netsim.Port { return c.ports }

// Port returns the i-th port.
func (c *Chassis) Port(i int) *netsim.Port { return c.ports[i] }

// Start announces the bridge: it runs the protocol's OnStart and sends the
// initial HELLO burst. Call once after cabling, before running the
// simulation (the topology builder does this).
func (c *Chassis) Start() {
	c.Sched().At(c.net.Now(), func() {
		c.proto.OnStart()
		if c.HelloEnabled {
			for _, p := range c.ports {
				c.sendHello(p)
			}
		}
	})
}

// Restart models a chassis power-cycle: everything learned from the wire
// (trunk/edge classification, neighbour identities) is forgotten. It does
// not re-HELLO by itself — a real reboot drops carrier, and the caller's
// link bounce re-sends HELLOs from both ends via PortStatusChanged, which
// is the only way the *peer* learns anything happened (a one-sided burst
// would be dropped by the bounce anyway). Protocol-level state loss is
// the protocol's job — see core.Bridge.Restart, which calls this before
// bouncing its links.
func (c *Chassis) Restart() {
	clear(c.trunk)
	clear(c.nbr)
}

// IsTrunk reports whether p faces another bridge (a HELLO was seen since
// the last down transition). Meaningless unless HelloEnabled.
func (c *Chassis) IsTrunk(p *netsim.Port) bool { return c.trunk[p] }

// IsEdge reports whether p faces a host.
func (c *Chassis) IsEdge(p *netsim.Port) bool { return !c.trunk[p] }

// Neighbor returns the bridge ID learned from HELLOs on trunk port p.
// Two ports with the same neighbor are parallel links to one bridge —
// forwarding a frame "back" over a parallel link is still a hairpin.
func (c *Chassis) Neighbor(p *netsim.Port) (uint64, bool) {
	id, ok := c.nbr[p]
	return id, ok
}

// SameNeighbor reports whether two ports lead to the same neighbouring
// bridge (the same port, or parallel trunks, which a port comparison
// alone cannot see on multigraphs). Every protocol's hairpin rule goes
// through this one definition.
func (c *Chassis) SameNeighbor(p, q *netsim.Port) bool {
	if p == q {
		return true
	}
	pn, ok1 := c.Neighbor(p)
	qn, ok2 := c.Neighbor(q)
	return ok1 && ok2 && pn == qn
}

// HandleFrame implements netsim.Node: HELLOs are consumed here, everything
// else goes to the protocol. The frame's pre-decoded view makes the HELLO
// check a pair of field reads instead of a parse.
//
//fabric:hotpath
func (c *Chassis) HandleFrame(p *netsim.Port, f *netsim.Frame) {
	if v := f.View(); v.IsHello() {
		c.stats.HellosReceived++
		c.trunk[p] = true
		c.nbr[p] = v.Ctl.BridgeID
		return
	}
	c.proto.OnFrame(p, f)
}

// PortStatusChanged implements netsim.Node.
func (c *Chassis) PortStatusChanged(p *netsim.Port, up bool) {
	if !up {
		// The neighbour may be replaced while the link is down; rediscover.
		delete(c.trunk, p)
		delete(c.nbr, p)
	} else if c.HelloEnabled {
		c.sendHello(p)
	}
	c.proto.OnPortStatus(p, up)
}

// sendHello emits one HELLO on p.
func (c *Chassis) sendHello(p *netsim.Port) {
	frame, err := layers.Serialize(
		&layers.Ethernet{Dst: layers.PathCtlMulticast, Src: c.mac, EtherType: layers.EtherTypePathCtl},
		&layers.PathCtl{Type: layers.PathCtlHello, BridgeID: uint64(c.numID)},
	)
	if err != nil {
		panic("bridge: cannot serialize HELLO: " + err.Error())
	}
	c.stats.HellosSent++
	p.Send(frame)
}

// FloodExcept sends f on every up port except in (which may be nil to
// flood everywhere) without copying — every egress shares the one pooled
// buffer. Ports transmit in cabling order, keeping the race between
// flooded copies deterministic for a given topology and seed.
//
//fabric:hotpath
func (c *Chassis) FloodExcept(in *netsim.Port, f *netsim.Frame) {
	for _, p := range c.ports {
		if p != in && p.Up() {
			p.SendFrame(f)
			c.stats.Flooded++
		}
	}
}

// FloodBytesExcept wraps a locally built frame in one pooled buffer and
// floods it (the origination-side counterpart of FloodExcept).
func (c *Chassis) FloodBytesExcept(in *netsim.Port, frame []byte) {
	f := c.net.NewFrame(frame)
	c.FloodExcept(in, f)
	f.Release()
}
