package topo

import (
	"testing"
	"time"

	"repro/internal/host"
	"repro/internal/layers"
	"repro/internal/stp"
)

func TestFigure1Wiring(t *testing.T) {
	n := Figure1(DefaultOptions(ARPPath, 1))
	if len(n.Bridges) != 5 || len(n.Hosts) != 2 || len(n.Links) != 8 {
		t.Fatalf("bridges=%d hosts=%d links=%d", len(n.Bridges), len(n.Hosts), len(n.Links))
	}
	// S and D can talk after discovery.
	s, d := n.Host("S"), n.Host("D")
	var rtt time.Duration
	n.Engine.At(n.Now(), func() {
		s.Ping(d.IP(), 56, time.Second, func(r host.PingResult) { rtt = r.RTT })
	})
	n.RunFor(2 * time.Second)
	if rtt <= 0 {
		t.Fatal("ping across Figure 1 failed")
	}
}

func TestFigure2AllProfilesConnect(t *testing.T) {
	for _, prof := range []Figure2Profile{ProfileUniform, ProfileSlowDiagonal, ProfileAsymmetric} {
		for _, proto := range []Protocol{ARPPath, STP} {
			n := Figure2(DefaultOptions(proto, 1), prof)
			a, b := n.Host("A"), n.Host("B")
			ok := false
			n.Engine.At(n.Now(), func() {
				a.Ping(b.IP(), 56, 2*time.Second, func(r host.PingResult) { ok = r.Err == nil })
			})
			n.RunFor(5 * time.Second)
			if !ok {
				t.Fatalf("%s/%s: A cannot reach B", proto, prof)
			}
		}
	}
}

func TestFigure2STPUsesDiagonal(t *testing.T) {
	// With default priorities NIC1 is root and NF4's root port is the
	// diagonal — regardless of its delay. This is the premise of the
	// Figure 2 comparison.
	n := Figure2(DefaultOptions(STP, 1), ProfileSlowDiagonal)
	nf4 := n.STPBridge("NF4")
	diag := n.Link("NF1-NF4")
	var rootPort int
	for _, p := range nf4.Ports() {
		if nf4.Role(p) == stp.RoleRoot {
			rootPort = p.Index()
		}
	}
	want := -1
	for _, p := range nf4.Ports() {
		if p.Link() == diag {
			want = p.Index()
		}
	}
	if rootPort != want {
		t.Fatalf("NF4 root port %d, want diagonal %d", rootPort, want)
	}
}

func TestLineRingGrid(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Built
		h1    string
		h2    string
	}{
		{"line", func() *Built { return Line(DefaultOptions(Learning, 1), 4) }, "H1", "H2"},
		{"ring", func() *Built { return Ring(DefaultOptions(ARPPath, 1), 5) }, "H1", "H3"},
		{"grid", func() *Built { return Grid(DefaultOptions(ARPPath, 1), 3, 3) }, "H1", "H4"},
	}
	for _, c := range cases {
		n := c.build()
		ok := false
		a, b := n.Host(c.h1), n.Host(c.h2)
		n.Engine.At(n.Now(), func() {
			a.Ping(b.IP(), 56, 2*time.Second, func(r host.PingResult) { ok = r.Err == nil })
		})
		n.RunFor(5 * time.Second)
		if !ok {
			t.Fatalf("%s: %s cannot reach %s", c.name, c.h1, c.h2)
		}
	}
}

func TestFatTreeShape(t *testing.T) {
	n := FatTree(DefaultOptions(ARPPath, 1), 4)
	if len(n.Hosts) != 16 {
		t.Fatalf("hosts = %d, want 16", len(n.Hosts))
	}
	if len(n.Bridges) != 20 { // 4 cores + 4 pods × (2+2)
		t.Fatalf("bridges = %d, want 20", len(n.Bridges))
	}
	// Cross-pod connectivity.
	ok := false
	a, b := n.Host("H1"), n.Host("H16")
	n.Engine.At(n.Now(), func() {
		a.Ping(b.IP(), 56, 2*time.Second, func(r host.PingResult) { ok = r.Err == nil })
	})
	n.RunFor(5 * time.Second)
	if !ok {
		t.Fatal("cross-pod ping failed")
	}
}

func TestRandomTopologyDeterministic(t *testing.T) {
	a := Random(DefaultOptions(ARPPath, 7), 8, 5)
	b := Random(DefaultOptions(ARPPath, 7), 8, 5)
	if len(a.Links) != len(b.Links) {
		t.Fatal("same seed produced different topologies")
	}
	for name := range a.Links {
		if _, ok := b.Links[name]; !ok {
			t.Fatalf("link %q missing in twin build", name)
		}
	}
	c := Random(DefaultOptions(ARPPath, 8), 8, 5)
	same := len(c.Links) == len(a.Links)
	if same {
		for name := range a.Links {
			if _, ok := c.Links[name]; !ok {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical random topologies")
	}
}

func TestRandomConnectivityUnderARPPath(t *testing.T) {
	n := Random(DefaultOptions(ARPPath, 3), 10, 8)
	ok := false
	a, b := n.Host("H1"), n.Host("H10")
	n.Engine.At(n.Now(), func() {
		a.Ping(b.IP(), 56, 2*time.Second, func(r host.PingResult) { ok = r.Err == nil })
	})
	n.RunFor(5 * time.Second)
	if !ok {
		t.Fatal("random topology not connected end to end")
	}
}

func TestBridgeAccessors(t *testing.T) {
	n := Figure2(DefaultOptions(ARPPath, 1), ProfileUniform)
	if n.ARPPathBridge("NF1").Name() != "NF1" {
		t.Fatal("ARPPathBridge accessor")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("missing bridge did not panic")
		}
	}()
	n.Bridge("nope")
}

func TestBadParamsPanic(t *testing.T) {
	for name, f := range map[string]func(){
		"line0":    func() { Line(DefaultOptions(ARPPath, 1), 0) },
		"ring2":    func() { Ring(DefaultOptions(ARPPath, 1), 2) },
		"grid1":    func() { Grid(DefaultOptions(ARPPath, 1), 1, 5) },
		"fatodd":   func() { FatTree(DefaultOptions(ARPPath, 1), 3) },
		"random1":  func() { Random(DefaultOptions(ARPPath, 1), 1, 0) },
		"badproto": func() { NewBuilder(Options{Protocol: "nope"}).AddBridge("x") },
		"badprof":  func() { Figure2(DefaultOptions(ARPPath, 1), "nope") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestHostMACsUnique(t *testing.T) {
	n := FatTree(DefaultOptions(ARPPath, 1), 4)
	seen := map[layers.MAC]bool{}
	for _, h := range n.Hosts {
		if seen[h.MAC()] {
			t.Fatalf("duplicate MAC %s", h.MAC())
		}
		seen[h.MAC()] = true
	}
}
