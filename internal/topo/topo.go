// Package topo builds the networks the experiments run on: the paper's
// Figure 1 and Figure 2/3 topologies, plus parametric fabrics (line, ring,
// grid, fat-tree, seeded random graphs) for the extended experiments. A
// Builder assembles hosts, bridges of a selectable protocol, and links,
// then starts every bridge.
package topo

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/learning"
	"repro/internal/netsim"
	"repro/internal/stp"
)

// Protocol selects the bridging protocol a topology is built with.
type Protocol string

// Supported protocols.
const (
	// ARPPath is the paper's contribution (internal/core).
	ARPPath Protocol = "arppath"
	// STP is the 802.1D baseline the demo compares against.
	STP Protocol = "stp"
	// Learning is a plain learning switch (loop-free topologies only).
	Learning Protocol = "learning"
)

// Options configures a build.
type Options struct {
	// Protocol selects the bridge implementation.
	Protocol Protocol
	// Seed feeds the simulation engine.
	Seed int64
	// Link is the default link configuration; topology constructors
	// override Delay per link where the scenario calls for it.
	Link netsim.LinkConfig
	// ARPPathConfig tunes ARP-Path bridges (DefaultConfig if zero).
	ARPPathConfig core.Config
	// STPTimers tunes STP bridges (DefaultTimers if zero).
	STPTimers stp.Timers
	// WarmUp is how long to run the fabric before the experiment starts
	// (STP needs its listening/learning delays; ARP-Path needs HELLOs).
	WarmUp time.Duration
	// Shards splits the simulation across that many parallel engine
	// shards (one worker each): the bridge graph is partitioned by
	// PartitionAssign and the run is synchronized by netsim's conservative
	// coordinator. 0 or 1 keeps the classic single-engine run. Results are
	// bit-identical for every value — see DESIGN.md §8.
	Shards int
}

// DefaultOptions returns a gigabit ARP-Path build.
func DefaultOptions(p Protocol, seed int64) Options {
	return Options{
		Protocol:      p,
		Seed:          seed,
		Link:          netsim.DefaultLinkConfig(),
		ARPPathConfig: core.DefaultConfig(),
		STPTimers:     stp.DefaultTimers(),
		WarmUp:        defaultWarmUp(p, stp.DefaultTimers()),
	}
}

// defaultWarmUp returns the convergence budget for a protocol.
func defaultWarmUp(p Protocol, t stp.Timers) time.Duration {
	if p == STP {
		// Listening + learning on every port, plus hello propagation.
		return 2*t.ForwardDelay + 5*t.Hello
	}
	return 10 * time.Millisecond
}

// Bridge is the protocol-independent view of a built bridge.
type Bridge interface {
	netsim.Node
	Start()
	Ports() []*netsim.Port
}

// Net is a built network: the simulation plus name-indexed hosts and
// bridges.
type Net struct {
	*netsim.Network
	Opts    Options
	Bridges []Bridge
	byName  map[string]Bridge
}

// Bridge returns the named bridge, panicking if absent (topologies are
// static; a missing name is a programming error).
func (n *Net) Bridge(name string) Bridge {
	b, ok := n.byName[name]
	if !ok {
		panic(fmt.Sprintf("topo: no bridge %q", name))
	}
	return b
}

// ARPPathBridge returns the named bridge as an ARP-Path bridge.
func (n *Net) ARPPathBridge(name string) *core.Bridge { return n.Bridge(name).(*core.Bridge) }

// STPBridge returns the named bridge as an STP bridge.
func (n *Net) STPBridge(name string) *stp.Bridge { return n.Bridge(name).(*stp.Bridge) }

// Builder incrementally assembles a network.
type Builder struct {
	net    *Net
	nextID int
}

// NewBuilder starts a build with the given options (zero-value fields are
// replaced by defaults).
func NewBuilder(opts Options) *Builder {
	if opts.Protocol == "" {
		opts.Protocol = ARPPath
	}
	if opts.Link.Rate == 0 {
		opts.Link = netsim.DefaultLinkConfig()
	}
	if opts.ARPPathConfig.LockTimeout == 0 {
		opts.ARPPathConfig = core.DefaultConfig()
	}
	if opts.STPTimers.Hello == 0 {
		opts.STPTimers = stp.DefaultTimers()
	}
	if opts.WarmUp == 0 {
		opts.WarmUp = defaultWarmUp(opts.Protocol, opts.STPTimers)
	}
	return &Builder{
		net: &Net{
			Network: netsim.NewNetwork(opts.Seed),
			Opts:    opts,
			byName:  make(map[string]Bridge),
		},
	}
}

// AddBridge creates a bridge of the configured protocol.
func (b *Builder) AddBridge(name string) Bridge {
	b.nextID++
	var br Bridge
	switch b.net.Opts.Protocol {
	case ARPPath:
		br = core.New(b.net.Network, name, b.nextID, b.net.Opts.ARPPathConfig)
	case STP:
		br = stp.New(b.net.Network, name, b.nextID, 0x8000, b.net.Opts.STPTimers)
	case Learning:
		br = learning.New(b.net.Network, name, b.nextID)
	default:
		panic(fmt.Sprintf("topo: unknown protocol %q", b.net.Opts.Protocol))
	}
	b.net.Network.AddNode(br)
	b.net.Bridges = append(b.net.Bridges, br)
	b.net.byName[name] = br
	return br
}

// Connect cables two nodes with the default link configuration.
func (b *Builder) Connect(x, y netsim.Node) *netsim.Link {
	return b.net.Connect(x, y, b.net.Opts.Link)
}

// ConnectDelay cables two nodes with a specific propagation delay.
func (b *Builder) ConnectDelay(x, y netsim.Node, delay time.Duration) *netsim.Link {
	return b.net.Connect(x, y, b.net.Opts.Link.WithDelay(delay))
}

// Build partitions the fabric when sharding is requested, then starts
// every bridge and runs the warm-up period. Partitioning must precede
// Start: the first HELLO is already simulation traffic.
func (b *Builder) Build() *Net {
	if k := b.net.Opts.Shards; k > 1 {
		assign := PartitionAssign(b.net, k)
		// The partitioner clamps k (never more shards than bridges, and
		// sparse graphs may seed fewer); size the engine pool to what was
		// actually assigned so no empty shard ever joins a window.
		eff := 1
		for _, s := range assign {
			if s+1 > eff {
				eff = s + 1
			}
		}
		b.net.Network.Partition(eff, func(nd netsim.Node) int { return assign[nd.Name()] })
	}
	for _, br := range b.net.Bridges {
		br.Start()
	}
	b.net.RunFor(b.net.Opts.WarmUp)
	return b.net
}

// Rand returns the build's deterministic random source.
func (b *Builder) Rand() *rand.Rand { return b.net.Engine.Rand() }

// Net exposes the partially built network (for attaching hosts).
func (b *Builder) Net() *netsim.Network { return b.net.Network }
