// Package topo builds the networks the experiments run on: the paper's
// Figure 1 and Figure 2/3 topologies, plus parametric fabrics (line, ring,
// grid, fat-tree, seeded random graphs) for the extended experiments. A
// Builder assembles hosts, bridges of a selectable protocol, and links,
// then starts every bridge.
//
// Protocols are pluggable: the builder holds no protocol knowledge beyond
// the registry (RegisterProtocol). ARP-Path, STP and the plain learning
// switch register themselves in this package's init; variants register
// from their own packages (or through pkg/fabric, the public surface).
package topo

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/stp"
)

// Protocol selects the bridging protocol a topology is built with. The
// set of valid values is the protocol registry (Protocols lists it).
type Protocol string

// In-tree protocols, registered in init().
const (
	// ARPPath is the paper's contribution (internal/core).
	ARPPath Protocol = "arppath"
	// STP is the 802.1D baseline the demo compares against.
	STP Protocol = "stp"
	// Learning is a plain learning switch (loop-free topologies only).
	Learning Protocol = "learning"
)

// Options configures a build.
type Options struct {
	// Protocol selects the bridge implementation by registry name.
	Protocol Protocol
	// ProtocolConfig is the per-protocol configuration: a pointer to the
	// protocol's config type (*core.Config for arppath, *stp.Timers for
	// stp, *learning.Config for learning, or whatever a registered variant
	// declares). nil selects the registered defaults; unset (zero) fields
	// of a partially filled config are defaulted field-wise by the builder
	// — setting only LockTimeout no longer discards the rest.
	ProtocolConfig any
	// Seed feeds the simulation engine.
	Seed int64
	// Link is the default link configuration; topology constructors
	// override Delay per link where the scenario calls for it. Zero fields
	// default field-wise.
	Link netsim.LinkConfig
	// WarmUp is how long to run the fabric before the experiment starts
	// (0 = the protocol's registered convergence budget).
	WarmUp time.Duration
	// Shards splits the simulation across that many parallel engine
	// shards (one worker each): the bridge graph is partitioned by
	// PartitionAssign and the run is synchronized by netsim's conservative
	// coordinator. 0 or 1 keeps the classic single-engine run. Results are
	// bit-identical for every value — see DESIGN.md §8.
	Shards int
	// SpareJacks pre-cables every host of the host-per-bridge families
	// (ErdosRenyi, RingOfRings, RandomRegular) with a second, initially
	// down access link to the next bridge — the "other wall jack" the
	// scenario engine's host-mobility schedules move stations to.
	SpareJacks bool
}

// DefaultOptions returns a gigabit build of the given protocol with its
// registered default configuration.
func DefaultOptions(p Protocol, seed int64) Options {
	def, ok := LookupProtocol(p)
	if !ok {
		panic(fmt.Sprintf("topo: unknown protocol %q (registered: %v)", p, Protocols()))
	}
	cfg := def.NewConfig()
	def.ApplyDefaults(cfg)
	return Options{
		Protocol:       p,
		ProtocolConfig: cfg,
		Seed:           seed,
		Link:           netsim.DefaultLinkConfig(),
		WarmUp:         def.WarmUp(cfg),
	}
}

// ARPPath returns the build's ARP-Path config for tuning, allocating the
// defaults on first use. It panics when the build is not an arppath one —
// per-protocol knobs only make sense for their own protocol.
func (o *Options) ARPPath() *core.Config {
	if o.Protocol != ARPPath {
		panic(fmt.Sprintf("topo: Options.ARPPath on a %q build", o.Protocol))
	}
	if o.ProtocolConfig == nil {
		c := core.DefaultConfig()
		o.ProtocolConfig = &c
	}
	return o.ProtocolConfig.(*core.Config)
}

// STP returns the build's STP timers for tuning, allocating the defaults
// on first use. It panics when the build is not an stp one.
func (o *Options) STP() *stp.Timers {
	if o.Protocol != STP {
		panic(fmt.Sprintf("topo: Options.STP on a %q build", o.Protocol))
	}
	if o.ProtocolConfig == nil {
		t := stp.DefaultTimers()
		o.ProtocolConfig = &t
	}
	return o.ProtocolConfig.(*stp.Timers)
}

// Bridge is the protocol-independent view of a built bridge.
type Bridge interface {
	netsim.Node
	Start()
	Ports() []*netsim.Port
}

// Net is a built network: the simulation plus name-indexed hosts and
// bridges.
type Net struct {
	*netsim.Network
	Opts    Options
	Bridges []Bridge
	byName  map[string]Bridge
}

// Bridge returns the named bridge, panicking if absent (topologies are
// static; a missing name is a programming error).
func (n *Net) Bridge(name string) Bridge {
	b, ok := n.byName[name]
	if !ok {
		panic(fmt.Sprintf("topo: no bridge %q", name))
	}
	return b
}

// ARPPathBridge returns the named bridge as an ARP-Path bridge.
func (n *Net) ARPPathBridge(name string) *core.Bridge { return n.Bridge(name).(*core.Bridge) }

// STPBridge returns the named bridge as an STP bridge.
func (n *Net) STPBridge(name string) *stp.Bridge { return n.Bridge(name).(*stp.Bridge) }

// OnBuilt, when non-nil, is invoked by Build for every network right
// after partitioning and before any bridge starts — early enough to
// attach taps that must observe the complete trace (warm-up HELLOs
// included). The fabric Runner uses it to collect trace fingerprints
// across harnesses whose runners build their own fabrics. It is driver
// state: set it only from single-threaded driver code, never while
// builds may be running concurrently.
var OnBuilt func(*Net)

// Builder incrementally assembles a network.
type Builder struct {
	net    *Net
	def    Definition
	nextID int
}

// NewBuilder starts a build with the given options. Zero-value fields
// default field-wise: a partially filled protocol config or link config
// keeps what the caller set and inherits the rest (the whole-struct
// clobber of earlier revisions is gone).
func NewBuilder(opts Options) *Builder {
	if opts.Protocol == "" {
		opts.Protocol = ARPPath
	}
	def, ok := LookupProtocol(opts.Protocol)
	if !ok {
		panic(fmt.Sprintf("topo: unknown protocol %q (registered: %v)", opts.Protocol, Protocols()))
	}
	if opts.ProtocolConfig == nil {
		opts.ProtocolConfig = def.NewConfig()
	}
	def.ApplyDefaults(opts.ProtocolConfig)
	d := netsim.DefaultLinkConfig()
	if opts.Link.Rate == 0 {
		opts.Link.Rate = d.Rate
	}
	if opts.Link.Delay == 0 {
		opts.Link.Delay = d.Delay
	}
	if opts.Link.Queue == 0 {
		opts.Link.Queue = d.Queue
	}
	if opts.WarmUp == 0 {
		opts.WarmUp = def.WarmUp(opts.ProtocolConfig)
	}
	return &Builder{
		def: def,
		net: &Net{
			Network: netsim.NewNetwork(opts.Seed),
			Opts:    opts,
			byName:  make(map[string]Bridge),
		},
	}
}

// AddBridge creates a bridge of the configured protocol through the
// registry.
func (b *Builder) AddBridge(name string) Bridge {
	b.nextID++
	br := b.def.New(b.net.Network, name, b.nextID, b.net.Opts.ProtocolConfig)
	b.net.Network.AddNode(br)
	b.net.Bridges = append(b.net.Bridges, br)
	b.net.byName[name] = br
	return br
}

// Connect cables two nodes with the default link configuration.
func (b *Builder) Connect(x, y netsim.Node) *netsim.Link {
	return b.net.Connect(x, y, b.net.Opts.Link)
}

// ConnectDelay cables two nodes with a specific propagation delay.
func (b *Builder) ConnectDelay(x, y netsim.Node, delay time.Duration) *netsim.Link {
	return b.net.Connect(x, y, b.net.Opts.Link.WithDelay(delay))
}

// Build partitions the fabric when sharding is requested, then starts
// every bridge and runs the warm-up period. Partitioning must precede
// Start: the first HELLO is already simulation traffic.
func (b *Builder) Build() *Net {
	if k := b.net.Opts.Shards; k > 1 {
		assign := PartitionAssign(b.net, k)
		// The partitioner clamps k (never more shards than bridges, and
		// sparse graphs may seed fewer); size the engine pool to what was
		// actually assigned so no empty shard ever joins a window.
		eff := 1
		for _, s := range assign {
			if s+1 > eff {
				eff = s + 1
			}
		}
		b.net.Network.Partition(eff, func(nd netsim.Node) int { return assign[nd.Name()] })
	}
	if OnBuilt != nil {
		OnBuilt(b.net)
	}
	for _, br := range b.net.Bridges {
		br.Start()
	}
	b.net.RunFor(b.net.Opts.WarmUp)
	return b.net
}

// Rand returns the build's deterministic random source.
func (b *Builder) Rand() *rand.Rand { return b.net.Engine.Rand() }

// Net exposes the partially built network (for attaching hosts).
func (b *Builder) Net() *netsim.Network { return b.net.Network }
