package topo

// Adversarial gate for the coordinator's barrier protocol (DESIGN.md §8):
// a ring whose trunks all sit at near-minimum lookahead (the narrowest
// legal windows), every host bursting at the same virtual instant so
// same-timestamp keys straddle shard boundaries in both directions, and
// driver code slicing time into sub-millisecond steps while root-engine
// fault events (trunk flaps at off-grid timestamps) land inside the
// bursts. Every shard count from 1 through one-shard-per-bridge must
// produce the byte-identical trace — and the run is part of the -race
// job, so the epoch barrier, the worker-side exchange and the tap merge
// are exercised under the race detector at maximum window frequency.

import (
	"testing"
	"time"

	"repro/internal/host"
	"repro/internal/netsim"
)

// runBarrierStress returns the trace fingerprint, tap event count and
// answered-ping count of one stress run at the given shard count.
func runBarrierStress(t *testing.T, shards int) (uint64, uint64, int) {
	t.Helper()
	opts := DefaultOptions(ARPPath, 7)
	opts.Shards = shards
	// Near-minimum boundary lookahead: windows as narrow as the protocol
	// allows, so the coordinator dispatches orders of magnitude more
	// epochs than any realistic fabric would.
	opts.Link.Delay = 500 * time.Nanosecond
	built := Ring(opts, 8)
	fp := netsim.NewTapFingerprint()
	built.Network.Tap(fp.Observe)

	// Every host pings its ring neighbour and its antipode at the SAME
	// instant: ARP floods from all eight edges at once, with trunk frames
	// carrying identical timestamps into both neighbouring shards.
	// Callbacks fire on the source host's shard worker, so each series
	// gets its own counter slot; the total is summed after the run joins.
	const n = 8
	type pair struct{ src, dst int }
	var pairs []pair
	for i := 0; i < n; i++ {
		pairs = append(pairs, pair{i, (i + 1) % n}, pair{i, (i + n/2) % n})
	}
	answered := make([]int, len(pairs))
	hostOf := func(i int) *host.Host { return built.Host([]string{"H1", "H2", "H3", "H4", "H5", "H6", "H7", "H8"}[i]) }
	start := func() {
		for i, pr := range pairs {
			i := i
			a, b := hostOf(pr.src), hostOf(pr.dst)
			built.Engine.At(built.Now(), func() {
				a.PingSeries(b.IP(), 3, 56, time.Millisecond, time.Second, func(rs []host.PingResult) {
					for _, r := range rs {
						if r.Err == nil {
							answered[i]++
						}
					}
				})
			})
		}
	}

	// Two trunk flaps at off-grid timestamps (…+100ns) so the root
	// barriers land between shard events mid-burst, not on tidy
	// millisecond boundaries; the second burst re-races every path after
	// repair has rerouted around the dead trunks.
	base := built.Now()
	built.Network.ScheduleLinkDown(base+2*time.Millisecond+100*time.Nanosecond, built.Link("S1-S2"))
	built.Network.ScheduleLinkDown(base+3*time.Millisecond+700*time.Nanosecond, built.Link("S5-S6"))
	built.Network.ScheduleLinkUp(base+9*time.Millisecond+300*time.Nanosecond, built.Link("S1-S2"))
	built.Network.ScheduleLinkUp(base+11*time.Millisecond+900*time.Nanosecond, built.Link("S5-S6"))

	start()
	// Drive the virtual clock in sub-millisecond slices: every RunFor
	// boundary is a full coordinator drain-and-return, interleaving
	// bounded windows with the flap barriers above.
	for i := 0; i < 30; i++ {
		built.RunFor(500 * time.Microsecond)
	}
	start() // second same-instant burst on the repaired ring
	built.RunFor(20 * time.Millisecond)
	built.Run() // drain ping timeouts and stragglers

	if live := built.Network.LiveFrames(); live != 0 {
		t.Fatalf("shards=%d: %d frames still live after drain", shards, live)
	}
	if shards > 1 {
		cs := built.Network.CoordStats()
		if cs.Windows == 0 || cs.Exchanged == 0 {
			t.Fatalf("shards=%d: degenerate coordination counters %+v", shards, cs)
		}
		if k, _ := built.Network.Sharded(); cs.Wakes != cs.Windows*uint64(k) {
			t.Fatalf("shards=%d: %d wakes for %d windows on %d shards", shards, cs.Wakes, cs.Windows, k)
		}
		if cs.Barriers != built.Network.Barriers() {
			t.Fatalf("shards=%d: CoordStats barriers %d != Barriers() %d", shards, cs.Barriers, built.Network.Barriers())
		}
	}
	total := 0
	for _, a := range answered {
		total += a
	}
	return fp.Sum(), fp.Events(), total
}

// TestBarrierStressMatchesSingleEngine asserts byte-identical traces from
// shards 1 through 8 on the stress workload above.
func TestBarrierStressMatchesSingleEngine(t *testing.T) {
	baseFP, baseEv, baseOK := runBarrierStress(t, 1)
	if baseOK == 0 || baseEv == 0 {
		t.Fatalf("degenerate base run: answered=%d events=%d", baseOK, baseEv)
	}
	for k := 2; k <= 8; k++ {
		fp, ev, ok := runBarrierStress(t, k)
		if fp != baseFP || ev != baseEv || ok != baseOK {
			t.Fatalf("shards=%d diverged: fp=%#x events=%d answered=%d, want fp=%#x events=%d answered=%d",
				k, fp, ev, ok, baseFP, baseEv, baseOK)
		}
	}
}
