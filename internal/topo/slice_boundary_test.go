package topo

// Slice-boundary equivalence gate for driver-paced runs (DESIGN.md §8,
// §13): fabricserve's replay guarantee rests on RunUntil(T1); …;
// RunUntil(Tn) producing the byte-identical trace to a single
// RunUntil(Tn), for ANY slicing — boundaries landing exactly on event
// timestamps, zero-duration slices, and slices narrower than the
// coordinator's lookahead — at any shard count. This file pins that
// equivalence on a hostile fixture: same-instant ARP bursts scheduled
// both exactly ON future slice boundaries and just off them, plus trunk
// flaps on and off the grid, over near-minimum-lookahead trunks.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/host"
	"repro/internal/netsim"
)

type sliceRun struct {
	fp       uint64
	events   uint64
	answered int
}

// runSliceFixture builds the fixture, lets drive pace the clock from base
// however it wants, then drains and returns the trace identity.
func runSliceFixture(t *testing.T, shards int, drive func(b *Built, base time.Duration)) sliceRun {
	t.Helper()
	opts := DefaultOptions(ARPPath, 13)
	opts.Shards = shards
	// Near-minimum boundary lookahead, as in the barrier stress: slices
	// below 500ns undercut every trunk's lookahead window.
	opts.Link.Delay = 500 * time.Nanosecond
	built := Ring(opts, 6)
	fp := netsim.NewTapFingerprint()
	built.Network.Tap(fp.Observe)

	const n = 6
	base := built.Now()
	answered := make([]int, 2*n)
	for i := 0; i < n; i++ {
		i := i
		a := built.Host(fmt.Sprintf("H%d", i+1))
		b := built.Host(fmt.Sprintf("H%d", (i+1)%n+1))
		c := built.Host(fmt.Sprintf("H%d", (i+n/2)%n+1))
		// One burst exactly ON a future millisecond boundary — the grid
		// every slicing strategy below cuts at — and one 133ns off it.
		onGrid := base + time.Duration(i+1)*time.Millisecond
		offGrid := onGrid + 133*time.Nanosecond
		built.Engine.At(onGrid, func() {
			a.PingSeries(b.IP(), 2, 56, time.Millisecond, time.Second, func(rs []host.PingResult) {
				for _, r := range rs {
					if r.Err == nil {
						answered[2*i]++
					}
				}
			})
		})
		built.Engine.At(offGrid, func() {
			a.PingSeries(c.IP(), 2, 56, time.Millisecond, time.Second, func(rs []host.PingResult) {
				for _, r := range rs {
					if r.Err == nil {
						answered[2*i+1]++
					}
				}
			})
		})
	}
	// One flap exactly on slice boundaries, one straddling them off-grid.
	built.Network.ScheduleLinkDown(base+2*time.Millisecond, built.Link("S2-S3"))
	built.Network.ScheduleLinkUp(base+4*time.Millisecond, built.Link("S2-S3"))
	built.Network.ScheduleLinkDown(base+3*time.Millisecond+701*time.Nanosecond, built.Link("S5-S6"))
	built.Network.ScheduleLinkUp(base+6*time.Millisecond+299*time.Nanosecond, built.Link("S5-S6"))

	drive(built, base)
	built.Run() // drain timeouts and stragglers past the paced horizon

	if live := built.Network.LiveFrames(); live != 0 {
		t.Fatalf("shards=%d: %d frames still live after drain", shards, live)
	}
	total := 0
	for _, a := range answered {
		total += a
	}
	return sliceRun{fp: fp.Sum(), events: fp.Events(), answered: total}
}

const sliceHorizon = 20 * time.Millisecond

// sliceStrategies are the pacings under test; every one must reach
// base+sliceHorizon, and every one must trace identically to "unbounded".
var sliceStrategies = []struct {
	name  string
	drive func(b *Built, base time.Duration)
}{
	{"unbounded", func(b *Built, base time.Duration) {
		b.RunUntil(base + sliceHorizon)
	}},
	{"uniform-1ms", func(b *Built, base time.Duration) {
		// Boundaries land exactly on the on-grid burst and flap times.
		for at := base + time.Millisecond; at <= base+sliceHorizon; at += time.Millisecond {
			b.RunUntil(at)
		}
	}},
	{"zero-width", func(b *Built, base time.Duration) {
		// Every boundary hit twice, plus explicit zero-duration slices:
		// re-running to the current time must be a no-op, never a replay
		// or a skip.
		for at := base + time.Millisecond; at <= base+sliceHorizon; at += time.Millisecond {
			b.RunUntil(at)
			b.RunUntil(at)
			b.RunFor(0)
		}
	}},
	{"sub-lookahead", func(b *Built, base time.Duration) {
		// 40 slices of 200ns — well under the 500ns trunk lookahead, so
		// each RunFor spans less than one coordinator window — then
		// coarse slices to the horizon.
		for i := 0; i < 40; i++ {
			b.RunFor(200 * time.Nanosecond)
		}
		// Coarse slices to (past) the horizon; the overshoot is legal
		// because every strategy ends with a full drain anyway.
		for b.Now() < base+sliceHorizon {
			b.RunFor(3 * time.Millisecond)
		}
	}},
}

// TestSliceBoundaryEquivalence asserts that every slicing strategy, at
// every shard count, produces the byte-identical trace of the unsharded
// unbounded run — the exact invariant fabricserve's live-vs-replay
// fingerprint equality is built on.
func TestSliceBoundaryEquivalence(t *testing.T) {
	ref := runSliceFixture(t, 1, sliceStrategies[0].drive)
	if ref.answered == 0 || ref.events == 0 {
		t.Fatalf("degenerate reference run: %+v", ref)
	}
	for _, shards := range []int{1, 2, 3, 6} {
		for _, strat := range sliceStrategies {
			got := runSliceFixture(t, shards, strat.drive)
			if got != ref {
				t.Errorf("shards=%d %s diverged: fp=%#016x events=%d answered=%d, want fp=%#016x events=%d answered=%d",
					shards, strat.name, got.fp, got.events, got.answered, ref.fp, ref.events, ref.answered)
			}
		}
	}
}

// TestSliceQuiescent pins the parking predicate fabricserve's serving
// loop uses: false while anything is scheduled anywhere (control engine
// or shard engines), true after a full drain.
func TestSliceQuiescent(t *testing.T) {
	for _, shards := range []int{1, 3} {
		opts := DefaultOptions(ARPPath, 5)
		opts.Shards = shards
		built := Ring(opts, 6)
		if !built.Network.Quiescent() {
			t.Fatalf("shards=%d: not quiescent after warm-up drain", shards)
		}
		a, b := built.Host("H1"), built.Host("H4")
		done := false
		built.Engine.At(built.Now()+time.Millisecond, func() {
			a.PingSeries(b.IP(), 1, 56, time.Millisecond, time.Second, func([]host.PingResult) { done = true })
		})
		if built.Network.Quiescent() {
			t.Fatalf("shards=%d: quiescent with a scheduled burst", shards)
		}
		// Advance into the ping exchange: pending state now lives on the
		// shard engines, not the control engine.
		built.RunFor(time.Millisecond + 10*time.Microsecond)
		if built.Network.Quiescent() {
			t.Fatalf("shards=%d: quiescent mid-exchange", shards)
		}
		built.Run()
		if !done {
			t.Fatalf("shards=%d: ping never completed", shards)
		}
		if !built.Network.Quiescent() {
			t.Fatalf("shards=%d: not quiescent after Run", shards)
		}
		if live := built.Network.LiveFrames(); live != 0 {
			t.Fatalf("shards=%d: %d live frames after drain", shards, live)
		}
	}
}
