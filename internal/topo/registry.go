package topo

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/learning"
	"repro/internal/netsim"
	"repro/internal/stp"
	"repro/internal/tables"
)

// Definition describes a bridging protocol to the builder. Registering one
// is all it takes to make a protocol buildable by every harness: the
// builder, the fabric Spec codec and the cmds consult the registry instead
// of switching on known names, so out-of-tree variants (Flow-Path,
// TCP-Path, wARP-Path, ...) plug in without touching this package.
type Definition struct {
	// Name is the protocol's registry key ("arppath", "stp", ...).
	Name Protocol

	// NewConfig returns a pointer to a zero value of the protocol's config
	// type. The Spec codec decodes JSON extensions into it; the builder
	// fills unset fields with ApplyDefaults.
	NewConfig func() any

	// ApplyDefaults fills unset (zero) fields of cfg field-wise, in place.
	// cfg is always a pointer produced by NewConfig (or a caller-supplied
	// pointer of the same type).
	ApplyDefaults func(cfg any)

	// WarmUp returns the convergence budget for a fabric built with cfg
	// (STP needs its listening/learning delays; ARP-Path needs HELLOs).
	WarmUp func(cfg any) time.Duration

	// New constructs one bridge on net. cfg is a pointer of the config
	// type, already defaulted.
	New func(net *netsim.Network, name string, numID int, cfg any) Bridge

	// DecodeConfig parses a JSON config extension (strictly: unknown
	// fields are rejected) into a config pointer. nil raw yields the
	// defaults. Optional; when nil, any non-empty extension is an error.
	DecodeConfig func(raw []byte) (any, error)

	// EncodeConfig renders cfg back to canonical JSON for spec
	// round-trips. Optional; when nil, specs encode no extension.
	EncodeConfig func(cfg any) ([]byte, error)
}

var protocolRegistry = map[Protocol]Definition{}

// RegisterProtocol adds a protocol to the registry. It panics on a
// duplicate name or an incomplete definition — registration happens in
// init() where a panic is a build-time error.
func RegisterProtocol(def Definition) {
	if def.Name == "" {
		panic("topo: RegisterProtocol with empty name")
	}
	if def.NewConfig == nil || def.ApplyDefaults == nil || def.WarmUp == nil || def.New == nil {
		panic(fmt.Sprintf("topo: protocol %q registered without NewConfig/ApplyDefaults/WarmUp/New", def.Name))
	}
	if _, dup := protocolRegistry[def.Name]; dup {
		panic(fmt.Sprintf("topo: protocol %q registered twice", def.Name))
	}
	protocolRegistry[def.Name] = def
}

// LookupProtocol returns the named protocol's definition.
func LookupProtocol(name Protocol) (Definition, bool) {
	def, ok := protocolRegistry[name]
	return def, ok
}

// Protocols lists every registered protocol name, sorted.
func Protocols() []Protocol {
	names := make([]Protocol, 0, len(protocolRegistry))
	for name := range protocolRegistry {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	return names
}

// strictUnmarshal decodes JSON rejecting unknown fields.
func strictUnmarshal(raw []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	// A config extension is a single JSON value; trailing data is a typo.
	if dec.More() {
		return fmt.Errorf("trailing data after JSON value")
	}
	return nil
}

// --- in-tree protocol registrations ------------------------------------

// arpPathConfigJSON is the spec-file form of core.Config.
type arpPathConfigJSON struct {
	LockTimeout    Duration `json:"lock_timeout,omitempty"`
	LearnedTimeout Duration `json:"learned_timeout,omitempty"`
	RepairTimeout  Duration `json:"repair_timeout,omitempty"`
	RepairBuffer   int      `json:"repair_buffer,omitempty"`
	Proxy          bool     `json:"proxy,omitempty"`
	ProxyTimeout   Duration `json:"proxy_timeout,omitempty"`
	DisableRepair  bool     `json:"disable_repair,omitempty"`
	TableCapacity  int      `json:"table_capacity,omitempty"`
	TablePolicy    string   `json:"table_policy,omitempty"`
}

// stpTimersJSON is the spec-file form of stp.Timers.
type stpTimersJSON struct {
	Hello           Duration `json:"hello,omitempty"`
	MaxAge          Duration `json:"max_age,omitempty"`
	ForwardDelay    Duration `json:"forward_delay,omitempty"`
	MsgAgeIncrement Duration `json:"msg_age_increment,omitempty"`
	Aging           Duration `json:"aging,omitempty"`
}

// learningConfigJSON is the spec-file form of learning.Config.
type learningConfigJSON struct {
	Aging         Duration `json:"aging,omitempty"`
	TableCapacity int      `json:"table_capacity,omitempty"`
	TablePolicy   string   `json:"table_policy,omitempty"`
}

func init() {
	RegisterProtocol(Definition{
		Name:      ARPPath,
		NewConfig: func() any { return new(core.Config) },
		ApplyDefaults: func(cfg any) {
			c := cfg.(*core.Config)
			*c = c.WithDefaults()
		},
		WarmUp: func(any) time.Duration { return 10 * time.Millisecond },
		New: func(net *netsim.Network, name string, numID int, cfg any) Bridge {
			return core.New(net, name, numID, *cfg.(*core.Config))
		},
		DecodeConfig: func(raw []byte) (any, error) {
			var j arpPathConfigJSON
			if len(raw) > 0 {
				if err := strictUnmarshal(raw, &j); err != nil {
					return nil, err
				}
			}
			if _, err := tables.ParseConfig(j.TableCapacity, j.TablePolicy); err != nil {
				return nil, err
			}
			return &core.Config{
				LockTimeout:    j.LockTimeout.D(),
				LearnedTimeout: j.LearnedTimeout.D(),
				RepairTimeout:  j.RepairTimeout.D(),
				RepairBuffer:   j.RepairBuffer,
				Proxy:          j.Proxy,
				ProxyTimeout:   j.ProxyTimeout.D(),
				DisableRepair:  j.DisableRepair,
				TableCapacity:  j.TableCapacity,
				TablePolicy:    j.TablePolicy,
			}, nil
		},
		EncodeConfig: func(cfg any) ([]byte, error) {
			c := cfg.(*core.Config)
			return json.Marshal(arpPathConfigJSON{
				LockTimeout:    Duration(c.LockTimeout),
				LearnedTimeout: Duration(c.LearnedTimeout),
				RepairTimeout:  Duration(c.RepairTimeout),
				RepairBuffer:   c.RepairBuffer,
				Proxy:          c.Proxy,
				ProxyTimeout:   Duration(c.ProxyTimeout),
				DisableRepair:  c.DisableRepair,
				TableCapacity:  c.TableCapacity,
				TablePolicy:    c.TablePolicy,
			})
		},
	})

	RegisterProtocol(Definition{
		Name:      STP,
		NewConfig: func() any { return new(stp.Timers) },
		ApplyDefaults: func(cfg any) {
			t := cfg.(*stp.Timers)
			*t = t.WithDefaults()
		},
		WarmUp: func(cfg any) time.Duration {
			t := cfg.(*stp.Timers)
			// Listening + learning on every port, plus hello propagation.
			return 2*t.ForwardDelay + 5*t.Hello
		},
		New: func(net *netsim.Network, name string, numID int, cfg any) Bridge {
			return stp.New(net, name, numID, 0x8000, *cfg.(*stp.Timers))
		},
		DecodeConfig: func(raw []byte) (any, error) {
			var j stpTimersJSON
			if len(raw) > 0 {
				if err := strictUnmarshal(raw, &j); err != nil {
					return nil, err
				}
			}
			return &stp.Timers{
				Hello:           j.Hello.D(),
				MaxAge:          j.MaxAge.D(),
				ForwardDelay:    j.ForwardDelay.D(),
				MsgAgeIncrement: j.MsgAgeIncrement.D(),
				Aging:           j.Aging.D(),
			}, nil
		},
		EncodeConfig: func(cfg any) ([]byte, error) {
			t := cfg.(*stp.Timers)
			return json.Marshal(stpTimersJSON{
				Hello:           Duration(t.Hello),
				MaxAge:          Duration(t.MaxAge),
				ForwardDelay:    Duration(t.ForwardDelay),
				MsgAgeIncrement: Duration(t.MsgAgeIncrement),
				Aging:           Duration(t.Aging),
			})
		},
	})

	RegisterProtocol(Definition{
		Name:      Learning,
		NewConfig: func() any { return new(learning.Config) },
		ApplyDefaults: func(cfg any) {
			c := cfg.(*learning.Config)
			*c = c.WithDefaults()
		},
		WarmUp: func(any) time.Duration { return 10 * time.Millisecond },
		New: func(net *netsim.Network, name string, numID int, cfg any) Bridge {
			return learning.NewWithConfig(net, name, numID, *cfg.(*learning.Config))
		},
		DecodeConfig: func(raw []byte) (any, error) {
			var j learningConfigJSON
			if len(raw) > 0 {
				if err := strictUnmarshal(raw, &j); err != nil {
					return nil, err
				}
			}
			if _, err := tables.ParseConfig(j.TableCapacity, j.TablePolicy); err != nil {
				return nil, err
			}
			return &learning.Config{
				Aging:         j.Aging.D(),
				TableCapacity: j.TableCapacity,
				TablePolicy:   j.TablePolicy,
			}, nil
		},
		EncodeConfig: func(cfg any) ([]byte, error) {
			c := cfg.(*learning.Config)
			return json.Marshal(learningConfigJSON{
				Aging:         Duration(c.Aging),
				TableCapacity: c.TableCapacity,
				TablePolicy:   c.TablePolicy,
			})
		},
	})
}
