package topo

import (
	"testing"
)

// connected verifies the bridge+host graph of a Built is one component.
func connected(t *testing.T, b *Built) {
	t.Helper()
	adj := make(map[string][]string)
	for _, l := range b.Links {
		x, y := l.A().Node().Name(), l.B().Node().Name()
		adj[x] = append(adj[x], y)
		adj[y] = append(adj[y], x)
	}
	if len(adj) == 0 {
		t.Fatal("no links")
	}
	var start string
	for n := range adj {
		start = n
		break
	}
	seen := map[string]bool{start: true}
	stack := []string{start}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, m := range adj[n] {
			if !seen[m] {
				seen[m] = true
				stack = append(stack, m)
			}
		}
	}
	want := len(b.Bridges) + len(b.Hosts)
	if len(seen) != want {
		t.Fatalf("graph not connected: reached %d of %d nodes", len(seen), want)
	}
}

func TestErdosRenyiShape(t *testing.T) {
	for _, p := range []float64{0, 0.2, 1} {
		b := ErdosRenyi(DefaultOptions(ARPPath, 1), 10, p)
		if len(b.Bridges) != 10 || len(b.Hosts) != 10 {
			t.Fatalf("p=%v: got %d bridges, %d hosts", p, len(b.Bridges), len(b.Hosts))
		}
		// Spanning tree (9) + hosts (10) is the floor; the complete graph
		// (45) + hosts the ceiling.
		if n := len(b.Links); n < 19 || n > 55 {
			t.Fatalf("p=%v: %d links out of range", p, n)
		}
		connected(t, b)
	}
	// p=1 must yield the complete graph.
	if n := len(ErdosRenyi(DefaultOptions(ARPPath, 1), 6, 1).Links); n != 15+6 {
		t.Fatalf("complete K6: %d links, want 21", n)
	}
}

func TestRingOfRingsShape(t *testing.T) {
	b := RingOfRings(DefaultOptions(ARPPath, 1), 3, 4)
	if len(b.Bridges) != 12 || len(b.Hosts) != 12 {
		t.Fatalf("got %d bridges, %d hosts", len(b.Bridges), len(b.Hosts))
	}
	// 3 rings × 4 inner links + 3 outer + 12 host links.
	if n := len(b.Links); n != 12+3+12 {
		t.Fatalf("%d links, want 27", n)
	}
	connected(t, b)
}

func TestRandomRegularShape(t *testing.T) {
	b := RandomRegular(DefaultOptions(ARPPath, 1), 10, 3)
	if len(b.Bridges) != 10 || len(b.Hosts) != 10 {
		t.Fatalf("got %d bridges, %d hosts", len(b.Bridges), len(b.Hosts))
	}
	// Ring (10) + one matching (5) + host links (10).
	if n := len(b.Links); n != 25 {
		t.Fatalf("%d links, want 25", n)
	}
	// Every bridge carries degree 3 (+1 host link); matchings may create
	// parallel links but never change the degree sum.
	for _, br := range b.Bridges {
		if d := len(br.Ports()); d != 4 {
			t.Fatalf("%s has %d ports, want 4", br.Name(), d)
		}
	}
	connected(t, b)
}

// TestFamiliesDeterministic pins seed → wiring: two builds from one seed
// have identical link name sets, and a different seed differs (for the
// families that randomize their shape).
func TestFamiliesDeterministic(t *testing.T) {
	names := func(b *Built) map[string]bool {
		m := make(map[string]bool, len(b.Links))
		for n := range b.Links {
			m[n] = true
		}
		return m
	}
	build := func(seed int64) *Built { return ErdosRenyi(DefaultOptions(ARPPath, seed), 12, 0.25) }
	a, b := names(build(5)), names(build(5))
	if len(a) != len(b) {
		t.Fatalf("same seed, different link counts: %d vs %d", len(a), len(b))
	}
	for n := range a {
		if !b[n] {
			t.Fatalf("same seed, link %s missing from second build", n)
		}
	}
	c := names(build(6))
	same := len(a) == len(c)
	if same {
		for n := range a {
			if !c[n] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 5 and 6 produced identical wiring (suspicious)")
	}
}
