package topo

import (
	"repro/internal/netsim"
)

// This file implements the topology-aware graph partitioner behind
// Options.Shards: it cuts the bridge graph into k balanced, connected-ish
// regions so the parallel engine (netsim.Partition, DESIGN.md §8) gets few
// boundary links — every cut trunk costs a frame clone per crossing and
// bounds the synchronization window by its latency. Hosts always follow
// their edge bridge, so host access links are never cut.
//
// The algorithm is deliberately simple and fully deterministic (iteration
// in registration/creation order only): k seed bridges chosen
// farthest-first by hop distance, then balanced multi-source BFS growth
// with a per-shard capacity of ceil(bridges/k).

// PartitionAssign computes a shard assignment (node name → shard) for a
// built, not-yet-started fabric. It is exported for the scenario engine
// and tests; topology users normally just set Options.Shards and let
// Builder.Build apply it. k is clamped to the bridge count; the returned
// assignment covers every registered node.
func PartitionAssign(n *Net, k int) map[string]int {
	nb := len(n.Bridges)
	if k > nb {
		k = nb
	}
	idx := make(map[string]int, nb)
	for i, b := range n.Bridges {
		idx[b.Name()] = i
	}
	adj := make([][]int, nb)
	for _, l := range n.Network.Links() {
		a, ok1 := idx[l.A().Node().Name()]
		b, ok2 := idx[l.B().Node().Name()]
		if ok1 && ok2 && a != b {
			adj[a] = append(adj[a], b)
			adj[b] = append(adj[b], a)
		}
	}

	// Farthest-first seeds: spread the growth origins across the graph.
	seeds := []int{0}
	for len(seeds) < k {
		dist := bfsDistances(adj, seeds)
		far, fd := -1, -1
		for i, d := range dist {
			if !contains(seeds, i) && d > fd {
				far, fd = i, d
			}
		}
		if far < 0 {
			break
		}
		seeds = append(seeds, far)
	}
	k = len(seeds)

	// Balanced multi-source BFS: shards claim one bridge per round-robin
	// turn until their capacity fills; stranded bridges (everything
	// reachable already claimed) go to the smallest shard.
	shard := make([]int, nb)
	for i := range shard {
		shard[i] = -1
	}
	capacity := (nb + k - 1) / k
	count := make([]int, k)
	queues := make([][]int, k)
	for s, b := range seeds {
		shard[b] = s
		count[s] = 1
		queues[s] = append(queues[s], b)
	}
	assigned := k
	for assigned < nb {
		progress := false
		for s := 0; s < k && assigned < nb; s++ {
			if count[s] >= capacity {
				continue
			}
			for len(queues[s]) > 0 {
				cur := queues[s][0]
				queues[s] = queues[s][1:]
				claimed := false
				for _, nb2 := range adj[cur] {
					if shard[nb2] != -1 {
						continue
					}
					shard[nb2] = s
					count[s]++
					assigned++
					queues[s] = append(queues[s], cur, nb2) // revisit cur for its other neighbours
					claimed = true
					break
				}
				if claimed {
					progress = true
					break
				}
			}
		}
		if !progress {
			// Remaining bridges are walled off by full shards (or in
			// another component): put each on the currently smallest shard.
			for i := range shard {
				if shard[i] != -1 {
					continue
				}
				small := 0
				for s := 1; s < k; s++ {
					if count[s] < count[small] {
						small = s
					}
				}
				shard[i] = small
				count[small]++
				assigned++
			}
		}
	}

	assign := make(map[string]int, len(n.Network.Nodes()))
	for name, i := range idx {
		assign[name] = shard[i]
	}
	// Non-bridge nodes (hosts) follow the first bridge they are cabled to.
	for _, node := range n.Network.Nodes() {
		if _, isBridge := idx[node.Name()]; isBridge {
			continue
		}
		s := 0
		for _, l := range n.Network.Links() {
			var peer netsim.Node
			switch node {
			case l.A().Node():
				peer = l.B().Node()
			case l.B().Node():
				peer = l.A().Node()
			default:
				continue
			}
			if bi, ok := idx[peer.Name()]; ok {
				s = shard[bi]
				break
			}
		}
		assign[node.Name()] = s
	}
	return assign
}

// bfsDistances returns hop distances from the seed set (-1 unreachable).
func bfsDistances(adj [][]int, seeds []int) []int {
	dist := make([]int, len(adj))
	for i := range dist {
		dist[i] = -1
	}
	var queue []int
	for _, s := range seeds {
		dist[s] = 0
		queue = append(queue, s)
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range adj[cur] {
			if dist[nb] == -1 {
				dist[nb] = dist[cur] + 1
				queue = append(queue, nb)
			}
		}
	}
	return dist
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
