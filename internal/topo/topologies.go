package topo

import (
	"fmt"
	"time"

	"repro/internal/host"
	"repro/internal/netsim"
)

// Built is a named topology: the network plus its hosts and the links the
// experiments fail by name.
type Built struct {
	*Net
	Hosts map[string]*host.Host
	Links map[string]*netsim.Link
}

// Host returns the named host, panicking if absent.
func (b *Built) Host(name string) *host.Host {
	h, ok := b.Hosts[name]
	if !ok {
		panic(fmt.Sprintf("topo: no host %q", name))
	}
	return h
}

// Link returns the named link, panicking if absent.
func (b *Built) Link(name string) *netsim.Link {
	l, ok := b.Links[name]
	if !ok {
		panic(fmt.Sprintf("topo: no link %q", name))
	}
	return l
}

// Figure1 builds the 5-bridge mesh of the paper's Figure 1 with hosts S
// and D:
//
//	S—B2, B2—B1, B2—B3, B1—B3, B1—B4, B3—B5, B4—B5, B5—D
//
// All links share the default delay; the discovery walkthrough depends
// only on the wiring.
func Figure1(opts Options) *Built {
	b := NewBuilder(opts)
	s := host.New(b.Net(), "S", 1)
	d := host.New(b.Net(), "D", 2)
	var br [6]Bridge
	for i := 1; i <= 5; i++ {
		br[i] = b.AddBridge(fmt.Sprintf("B%d", i))
	}
	links := map[string]*netsim.Link{
		"S-B2":  b.Connect(s, br[2]),
		"B2-B1": b.Connect(br[2], br[1]),
		"B2-B3": b.Connect(br[2], br[3]),
		"B1-B3": b.Connect(br[1], br[3]),
		"B1-B4": b.Connect(br[1], br[4]),
		"B3-B5": b.Connect(br[3], br[5]),
		"B4-B5": b.Connect(br[4], br[5]),
		"B5-D":  b.Connect(br[5], d),
	}
	return &Built{Net: b.Build(), Hosts: map[string]*host.Host{"S": s, "D": d}, Links: links}
}

// Figure2Profile selects the link-delay profile of the Figure 2 testbed.
type Figure2Profile string

// Delay profiles for Figure2. The demo's point is that STP picks paths by
// hop cost and bridge IDs while ARP-Path races actual latency; the
// profiles differ in how much the two disagree.
const (
	// ProfileUniform gives every link 5µs: the tree path and the
	// latency-optimal path coincide.
	ProfileUniform Figure2Profile = "uniform"
	// ProfileSlowDiagonal makes the NF1—NF4 shortcut a long cable
	// (250µs). STP still prefers it (fewer hops, same per-link cost);
	// ARP-Path routes around it.
	ProfileSlowDiagonal Figure2Profile = "slow-diagonal"
	// ProfileAsymmetric mixes fast and slow links so the minimum-latency
	// path is the NF3 branch while the hop-count path is the diagonal.
	ProfileAsymmetric Figure2Profile = "asymmetric"
)

// Figure2 builds the demo testbed of the paper's Figures 2 and 3: hosts A
// and B behind NIC bridges, four NetFPGA bridges in a redundant mesh.
//
//	A—NIC1—NF1, NF1—NF2, NF1—NF3, NF1—NF4 (diagonal), NF2—NF4,
//	NF3—NF4, NF4—NIC2—B
//
// Link delays come from the profile.
func Figure2(opts Options, profile Figure2Profile) *Built {
	d := func(fast, slow time.Duration) map[string]time.Duration {
		return map[string]time.Duration{
			"A-NIC1":   fast,
			"NIC1-NF1": fast,
			"NF1-NF2":  fast,
			"NF1-NF3":  fast,
			"NF1-NF4":  slow, // the diagonal shortcut
			"NF2-NF4":  fast,
			"NF3-NF4":  fast,
			"NF4-NIC2": fast,
			"NIC2-B":   fast,
		}
	}
	var delays map[string]time.Duration
	switch profile {
	case ProfileUniform:
		delays = d(5*time.Microsecond, 5*time.Microsecond)
	case ProfileSlowDiagonal:
		delays = d(5*time.Microsecond, 250*time.Microsecond)
	case ProfileAsymmetric:
		delays = d(5*time.Microsecond, 100*time.Microsecond)
		delays["NF1-NF2"] = 50 * time.Microsecond
		delays["NF2-NF4"] = 50 * time.Microsecond
	default:
		panic(fmt.Sprintf("topo: unknown Figure 2 profile %q", profile))
	}

	b := NewBuilder(opts)
	a := host.New(b.Net(), "A", 1)
	hb := host.New(b.Net(), "B", 2)
	nic1 := b.AddBridge("NIC1")
	nf1 := b.AddBridge("NF1")
	nf2 := b.AddBridge("NF2")
	nf3 := b.AddBridge("NF3")
	nf4 := b.AddBridge("NF4")
	nic2 := b.AddBridge("NIC2")

	ends := map[string][2]netsim.Node{
		"A-NIC1":   {a, nic1},
		"NIC1-NF1": {nic1, nf1},
		"NF1-NF2":  {nf1, nf2},
		"NF1-NF3":  {nf1, nf3},
		"NF1-NF4":  {nf1, nf4},
		"NF2-NF4":  {nf2, nf4},
		"NF3-NF4":  {nf3, nf4},
		"NF4-NIC2": {nf4, nic2},
		"NIC2-B":   {nic2, hb},
	}
	// Deterministic cabling order (port indices matter for tie-breaks).
	order := []string{"A-NIC1", "NIC1-NF1", "NF1-NF2", "NF1-NF3", "NF1-NF4", "NF2-NF4", "NF3-NF4", "NF4-NIC2", "NIC2-B"}
	links := make(map[string]*netsim.Link, len(order))
	for _, name := range order {
		links[name] = b.ConnectDelay(ends[name][0], ends[name][1], delays[name])
	}
	return &Built{
		Net:   b.Build(),
		Hosts: map[string]*host.Host{"A": a, "B": hb},
		Links: links,
	}
}

// Line builds n bridges in a row with a host at each end.
func Line(opts Options, n int) *Built {
	if n < 1 {
		panic("topo: Line needs at least one bridge")
	}
	b := NewBuilder(opts)
	h1 := host.New(b.Net(), "H1", 1)
	h2 := host.New(b.Net(), "H2", 2)
	links := make(map[string]*netsim.Link)
	var prev Bridge
	for i := 1; i <= n; i++ {
		br := b.AddBridge(fmt.Sprintf("S%d", i))
		if prev != nil {
			links[fmt.Sprintf("S%d-S%d", i-1, i)] = b.Connect(prev, br)
		}
		prev = br
	}
	links["H1-S1"] = b.Connect(h1, b.Net().NodeByName("S1"))
	links[fmt.Sprintf("S%d-H2", n)] = b.Connect(prev, h2)
	return &Built{Net: b.Build(), Hosts: map[string]*host.Host{"H1": h1, "H2": h2}, Links: links}
}

// Ring builds n bridges in a cycle, each with one attached host H<i>.
func Ring(opts Options, n int) *Built {
	if n < 3 {
		panic("topo: Ring needs at least three bridges")
	}
	b := NewBuilder(opts)
	hosts := make(map[string]*host.Host, n)
	links := make(map[string]*netsim.Link)
	brs := make([]Bridge, n)
	for i := range brs {
		brs[i] = b.AddBridge(fmt.Sprintf("S%d", i+1))
	}
	for i := range brs {
		j := (i + 1) % n
		links[fmt.Sprintf("S%d-S%d", i+1, j+1)] = b.Connect(brs[i], brs[j])
	}
	for i := range brs {
		h := host.New(b.Net(), fmt.Sprintf("H%d", i+1), i+1)
		hosts[h.Name()] = h
		links[fmt.Sprintf("H%d-S%d", i+1, i+1)] = b.Connect(h, brs[i])
	}
	return &Built{Net: b.Build(), Hosts: hosts, Links: links}
}

// Grid builds a rows×cols bridge mesh with hosts on the four corners.
func Grid(opts Options, rows, cols int) *Built {
	if rows < 2 || cols < 2 {
		panic("topo: Grid needs at least 2x2")
	}
	b := NewBuilder(opts)
	brs := make([][]Bridge, rows)
	links := make(map[string]*netsim.Link)
	for r := range brs {
		brs[r] = make([]Bridge, cols)
		for c := range brs[r] {
			brs[r][c] = b.AddBridge(fmt.Sprintf("S%d%d", r+1, c+1))
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				links[fmt.Sprintf("S%d%d-S%d%d", r+1, c+1, r+1, c+2)] = b.Connect(brs[r][c], brs[r][c+1])
			}
			if r+1 < rows {
				links[fmt.Sprintf("S%d%d-S%d%d", r+1, c+1, r+2, c+1)] = b.Connect(brs[r][c], brs[r+1][c])
			}
		}
	}
	hosts := make(map[string]*host.Host)
	corner := func(name string, id int, br Bridge) {
		h := host.New(b.Net(), name, id)
		hosts[name] = h
		links[name+"-edge"] = b.Connect(h, br)
	}
	corner("H1", 1, brs[0][0])
	corner("H2", 2, brs[0][cols-1])
	corner("H3", 3, brs[rows-1][0])
	corner("H4", 4, brs[rows-1][cols-1])
	return &Built{Net: b.Build(), Hosts: hosts, Links: links}
}

// FatTree builds a k-ary fat tree (k even): k pods of k/2 edge and k/2
// aggregation switches, (k/2)² cores, and (k²·k/4) hosts, the data-center
// fabric the paper's introduction motivates ([4]).
func FatTree(opts Options, k int) *Built {
	if k < 2 || k%2 != 0 {
		panic("topo: FatTree needs an even k ≥ 2")
	}
	b := NewBuilder(opts)
	half := k / 2
	links := make(map[string]*netsim.Link)
	hosts := make(map[string]*host.Host)

	cores := make([]Bridge, half*half)
	for i := range cores {
		cores[i] = b.AddBridge(fmt.Sprintf("C%d", i+1))
	}
	hostID := 0
	for p := 0; p < k; p++ {
		aggs := make([]Bridge, half)
		edges := make([]Bridge, half)
		for i := 0; i < half; i++ {
			aggs[i] = b.AddBridge(fmt.Sprintf("A%d_%d", p+1, i+1))
			edges[i] = b.AddBridge(fmt.Sprintf("E%d_%d", p+1, i+1))
		}
		for ai, agg := range aggs {
			for _, edge := range edges {
				links[fmt.Sprintf("%s-%s", agg.Name(), edge.Name())] = b.Connect(agg, edge)
			}
			for ci := 0; ci < half; ci++ {
				core := cores[ai*half+ci]
				links[fmt.Sprintf("%s-%s", core.Name(), agg.Name())] = b.Connect(core, agg)
			}
		}
		for _, edge := range edges {
			for hi := 0; hi < half; hi++ {
				hostID++
				h := host.New(b.Net(), fmt.Sprintf("H%d", hostID), hostID)
				hosts[h.Name()] = h
				links[fmt.Sprintf("%s-%s", h.Name(), edge.Name())] = b.Connect(h, edge)
			}
		}
	}
	return &Built{Net: b.Build(), Hosts: hosts, Links: links}
}

// Random builds a connected random multigraph of n bridges (spanning tree
// plus extra random edges) with one host per bridge. Delays are uniform in
// [1µs, 50µs). The build's seed fully determines the topology.
func Random(opts Options, n, extraEdges int) *Built {
	if n < 2 {
		panic("topo: Random needs at least two bridges")
	}
	b := NewBuilder(opts)
	rng := b.Rand()
	brs := make([]Bridge, n)
	for i := range brs {
		brs[i] = b.AddBridge(fmt.Sprintf("S%d", i+1))
	}
	links := make(map[string]*netsim.Link)
	edge := 0
	add := func(x, y Bridge) {
		edge++
		delay := time.Duration(1+rng.Intn(49)) * time.Microsecond
		links[fmt.Sprintf("L%d:%s-%s", edge, x.Name(), y.Name())] = b.ConnectDelay(x, y, delay)
	}
	for i := 1; i < n; i++ {
		add(brs[i], brs[rng.Intn(i)])
	}
	for e := 0; e < extraEdges; e++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i != j {
			add(brs[i], brs[j])
		}
	}
	hosts := make(map[string]*host.Host, n)
	for i, br := range brs {
		h := host.New(b.Net(), fmt.Sprintf("H%d", i+1), i+1)
		hosts[h.Name()] = h
		links[fmt.Sprintf("H%d-%s", i+1, br.Name())] = b.ConnectDelay(h, br, time.Microsecond)
	}
	return &Built{Net: b.Build(), Hosts: hosts, Links: links}
}
