package topo

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/stp"
)

// TestPartialConfigKeepsSetFields is the regression test for the
// zero-value clobber footgun: a caller who tunes one field of a protocol
// config but leaves the "sentinel" fields (LockTimeout / Hello) zero used
// to get the entire struct silently replaced by the defaults. Defaulting
// is field-wise now.
func TestPartialConfigKeepsSetFields(t *testing.T) {
	opts := Options{Protocol: ARPPath, Seed: 1}
	opts.ARPPath().Proxy = true                      // set a knob...
	opts.ARPPath().RepairBuffer = 7                  // ...and another
	b := NewBuilder(opts)                            // LockTimeout left zero
	got := *b.net.Opts.ProtocolConfig.(*core.Config) // post-defaulting view
	if !got.Proxy || got.RepairBuffer != 7 {
		t.Fatalf("set fields were clobbered by defaulting: %+v", got)
	}
	if got.LockTimeout != core.DefaultConfig().LockTimeout {
		t.Fatalf("unset LockTimeout not defaulted: %+v", got)
	}

	sopts := Options{Protocol: STP, Seed: 1}
	sopts.STP().MaxAge = 7 * time.Second // Hello left zero
	sb := NewBuilder(sopts)
	gt := *sb.net.Opts.ProtocolConfig.(*stp.Timers)
	if gt.MaxAge != 7*time.Second {
		t.Fatalf("set MaxAge was clobbered: %+v", gt)
	}
	if gt.Hello != stp.DefaultTimers().Hello {
		t.Fatalf("unset Hello not defaulted: %+v", gt)
	}
	// The warm-up budget must follow the (partially custom) timers.
	want := 2*gt.ForwardDelay + 5*gt.Hello
	if sb.net.Opts.WarmUp != want {
		t.Fatalf("warm-up %v, want %v from defaulted timers", sb.net.Opts.WarmUp, want)
	}
}

// TestLinkConfigFieldWiseDefaults pins the same fix for the link config:
// setting only the delay keeps the delay.
func TestLinkConfigFieldWiseDefaults(t *testing.T) {
	opts := DefaultOptions(ARPPath, 1)
	opts.Link.Rate = 0
	opts.Link.Delay = 42 * time.Microsecond
	b := NewBuilder(opts)
	if b.net.Opts.Link.Delay != 42*time.Microsecond {
		t.Fatalf("set Delay was clobbered: %+v", b.net.Opts.Link)
	}
	if b.net.Opts.Link.Rate == 0 || b.net.Opts.Link.Queue == 0 {
		t.Fatalf("unset Rate/Queue not defaulted: %+v", b.net.Opts.Link)
	}
}

// TestRegistryDrivesBuilder verifies every registered protocol builds
// through the registry alone (no switch left anywhere): a two-bridge line
// of each protocol starts and runs its warm-up.
func TestRegistryDrivesBuilder(t *testing.T) {
	for _, p := range Protocols() {
		p := p
		t.Run(string(p), func(t *testing.T) {
			n := Line(DefaultOptions(p, 1), 2)
			if len(n.Bridges) != 2 {
				t.Fatalf("built %d bridges", len(n.Bridges))
			}
			// A tick past warm-up; no drain — STP BPDUs are periodic.
			n.RunFor(time.Millisecond)
		})
	}
}

// TestUnknownProtocolPanics pins the registry's error surface.
func TestUnknownProtocolPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBuilder with an unregistered protocol did not panic")
		}
	}()
	NewBuilder(Options{Protocol: "flow-path-not-registered"})
}
