package topo

import (
	"encoding/json"
	"fmt"
	"time"
)

// Duration is a time.Duration that marshals as a human-readable string
// ("200ms", "2s") and accepts both that form and raw integer nanoseconds
// on decode. The fabric Spec and every per-protocol config extension use
// it so spec files stay legible.
type Duration time.Duration

// D converts back to the standard library type.
func (d Duration) D() time.Duration { return time.Duration(d) }

// String renders like time.Duration.
func (d Duration) String() string { return time.Duration(d).String() }

// MarshalJSON renders the duration as its String form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "250ms"-style strings and integer nanoseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("invalid duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("duration must be a string like \"250ms\" or integer nanoseconds: %w", err)
	}
	*d = Duration(n)
	return nil
}
