package topo

import (
	"fmt"
	"time"

	"repro/internal/host"
	"repro/internal/netsim"
)

// This file holds the seeded random topology families the scenario engine
// sweeps (beyond the paper's fixed figures): Erdős–Rényi graphs,
// rings-of-rings and near-regular random graphs. All of them attach one
// host per bridge, draw every random choice from the build's deterministic
// RNG (the seed fully determines the wiring and the delays), and are
// guaranteed connected so "eventual delivery" is a meaningful invariant.

// familyDelay draws a per-link propagation delay in [1µs, 50µs), the same
// spread Random uses, so race outcomes differ link to link.
func familyDelay(b *Builder) time.Duration {
	return time.Duration(1+b.Rand().Intn(49)) * time.Microsecond
}

// attachHosts gives every bridge one host (H<i> on bridge i) over a fast
// uniform access link and returns the host map. With Options.SpareJacks
// each host is additionally pre-cabled to the next bridge over an
// initially-down link named "spare:H<i>-<bridge>" — the other wall jack a
// host-mobility schedule moves the station to (the cabling exists from
// the start so a sharded build partitions it like any other link; only
// SetUp toggles at fault time).
func attachHosts(b *Builder, brs []Bridge, links map[string]*netsim.Link) map[string]*host.Host {
	hosts := make(map[string]*host.Host, len(brs))
	for i, br := range brs {
		h := host.New(b.Net(), fmt.Sprintf("H%d", i+1), i+1)
		hosts[h.Name()] = h
		links[fmt.Sprintf("H%d-%s", i+1, br.Name())] = b.ConnectDelay(h, br, time.Microsecond)
		if b.net.Opts.SpareJacks {
			alt := brs[(i+1)%len(brs)]
			spare := b.ConnectDelay(h, alt, time.Microsecond)
			spare.SetUp(false)
			links[fmt.Sprintf("spare:H%d-%s", i+1, alt.Name())] = spare
		}
	}
	return hosts
}

// ErdosRenyi builds a connected G(n, p) graph of n bridges: every bridge
// pair is linked independently with probability p, and a uniform random
// spanning tree is unioned in so the graph is connected at any p (the
// sparse regimes are exactly where ARP-Path's repair gets interesting).
// One host hangs off each bridge.
func ErdosRenyi(opts Options, n int, p float64) *Built {
	if n < 2 {
		panic("topo: ErdosRenyi needs at least two bridges")
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("topo: ErdosRenyi probability %v out of [0,1]", p))
	}
	b := NewBuilder(opts)
	rng := b.Rand()
	brs := make([]Bridge, n)
	for i := range brs {
		brs[i] = b.AddBridge(fmt.Sprintf("S%d", i+1))
	}
	links := make(map[string]*netsim.Link)
	connect := func(i, j int) {
		links[fmt.Sprintf("%s-%s", brs[i].Name(), brs[j].Name())] = b.ConnectDelay(brs[i], brs[j], familyDelay(b))
	}
	// Random attachment tree first (connectivity), then the ER coin flips
	// over the remaining pairs.
	inTree := make(map[[2]int]bool, n-1)
	for i := 1; i < n; i++ {
		j := rng.Intn(i)
		inTree[[2]int{j, i}] = true
		connect(j, i)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !inTree[[2]int{i, j}] && rng.Float64() < p {
				connect(i, j)
			}
		}
	}
	hosts := attachHosts(b, brs, links)
	return &Built{Net: b.Build(), Hosts: hosts, Links: links}
}

// RingOfRings builds rings sub-rings of size bridges each, with the first
// bridge of every sub-ring joined into an outer ring — a hierarchical
// metro-style topology whose every frame has exactly two disjoint ways
// around each level. Bridges are named R<i>S<j>; one host per bridge.
func RingOfRings(opts Options, rings, size int) *Built {
	if rings < 2 || size < 3 {
		panic("topo: RingOfRings needs ≥ 2 rings of ≥ 3 bridges")
	}
	b := NewBuilder(opts)
	brs := make([]Bridge, 0, rings*size)
	gateways := make([]Bridge, rings)
	links := make(map[string]*netsim.Link)
	connect := func(x, y Bridge) {
		links[fmt.Sprintf("%s-%s", x.Name(), y.Name())] = b.ConnectDelay(x, y, familyDelay(b))
	}
	for r := 0; r < rings; r++ {
		ring := make([]Bridge, size)
		for s := 0; s < size; s++ {
			ring[s] = b.AddBridge(fmt.Sprintf("R%dS%d", r+1, s+1))
		}
		for s := range ring {
			connect(ring[s], ring[(s+1)%size])
		}
		gateways[r] = ring[0]
		brs = append(brs, ring...)
	}
	for r := range gateways {
		connect(gateways[r], gateways[(r+1)%rings])
	}
	hosts := attachHosts(b, brs, links)
	return &Built{Net: b.Build(), Hosts: hosts, Links: links}
}

// RandomRegular builds an approximately d-regular connected random graph
// of n bridges: a Hamiltonian ring (degree 2, connectivity for free) plus
// d−2 random perfect matchings. Matchings may occasionally duplicate an
// existing edge; netsim supports parallel links and ARP-Path must treat
// them as hairpins, so the duplicates are a feature of the family, not a
// defect. n must be even for the matchings to pair up; d ≥ 2.
func RandomRegular(opts Options, n, d int) *Built {
	if n < 4 || n%2 != 0 {
		panic("topo: RandomRegular needs an even n ≥ 4")
	}
	if d < 2 || d >= n {
		panic(fmt.Sprintf("topo: RandomRegular degree %d out of [2, n)", d))
	}
	b := NewBuilder(opts)
	rng := b.Rand()
	brs := make([]Bridge, n)
	for i := range brs {
		brs[i] = b.AddBridge(fmt.Sprintf("S%d", i+1))
	}
	links := make(map[string]*netsim.Link)
	edge := 0
	connect := func(i, j int) {
		edge++
		links[fmt.Sprintf("L%d:%s-%s", edge, brs[i].Name(), brs[j].Name())] = b.ConnectDelay(brs[i], brs[j], familyDelay(b))
	}
	for i := 0; i < n; i++ {
		connect(i, (i+1)%n)
	}
	perm := make([]int, n)
	for m := 2; m < d; m++ {
		for i := range perm {
			perm[i] = i
		}
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		for i := 0; i < n; i += 2 {
			connect(perm[i], perm[i+1])
		}
	}
	hosts := attachHosts(b, brs, links)
	return &Built{Net: b.Build(), Hosts: hosts, Links: links}
}
