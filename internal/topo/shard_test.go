package topo

import (
	"testing"
	"time"

	"repro/internal/host"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// runShardedGrid builds a 3x4 grid with corner hosts, pumps a few ARP-initiated
// ping exchanges across it, and returns the trace fingerprint plus the
// delivered echo count.
func runShardedGrid(t *testing.T, shards int) (uint64, uint64, int) {
	t.Helper()
	opts := DefaultOptions(ARPPath, 42)
	opts.Shards = shards
	built := Grid(opts, 3, 4)
	fp := netsim.NewTapFingerprint()
	built.Network.Tap(fp.Observe)

	answered := 0
	pairs := [][2]string{{"H1", "H4"}, {"H2", "H3"}, {"H3", "H1"}, {"H4", "H2"}}
	for i, pr := range pairs {
		a := built.Host(pr[0])
		b := built.Host(pr[1])
		built.Engine.At(built.Now()+time.Duration(i)*3*time.Millisecond, func() {
			a.PingSeries(b.IP(), 3, 56, 10*time.Millisecond, time.Second, func(rs []host.PingResult) {
				for _, r := range rs {
					if r.Err == nil {
						answered++
					}
				}
			})
		})
	}
	built.RunFor(3 * time.Second)
	built.Run()
	if live := built.Network.LiveFrames(); live != 0 {
		t.Fatalf("shards=%d: %d frames still live after drain", shards, live)
	}
	return fp.Sum(), fp.Events(), answered
}

// TestShardedRunMatchesSingleEngine is the tentpole determinism gate at
// the topology layer: the same seed must produce the identical tap trace,
// event for event and byte for byte, whether the fabric runs on one engine
// or is partitioned across parallel shards.
func TestShardedRunMatchesSingleEngine(t *testing.T) {
	baseFP, baseEv, baseOK := runShardedGrid(t, 1)
	if baseOK == 0 {
		t.Fatal("no pings answered on the unsharded run")
	}
	for _, k := range []int{2, 3, 4} {
		fp, ev, ok := runShardedGrid(t, k)
		if fp != baseFP || ev != baseEv || ok != baseOK {
			t.Fatalf("shards=%d diverged: fp=%#x events=%d answered=%d, want fp=%#x events=%d answered=%d",
				k, fp, ev, ok, baseFP, baseEv, baseOK)
		}
	}
}

// runShardedGridBurst is the adversarial variant of runShardedGrid for
// the batched hot path: every ordered host pair starts a ping series at
// the SAME virtual instant, so the run opens with a dense burst of events
// sharing one key window — ARP floods from all four corners at once, with
// boundary-link frames landing mid-batch in neighbouring shards. batched
// selects the engine execution mode for every engine the fabric builds
// (control and shards alike).
func runShardedGridBurst(t *testing.T, shards int, batched bool) (uint64, uint64, int) {
	t.Helper()
	prev := sim.SetDefaultBatched(batched)
	defer sim.SetDefaultBatched(prev)
	opts := DefaultOptions(ARPPath, 99)
	opts.Shards = shards
	built := Grid(opts, 3, 4)
	fp := netsim.NewTapFingerprint()
	built.Network.Tap(fp.Observe)

	// Callbacks fire on the source host's shard worker; with every series
	// starting at the same instant, two completions can share one
	// coordinator window (no barrier between them), so each pair gets its
	// own counter slot and the total is summed after the run joins.
	hosts := []string{"H1", "H2", "H3", "H4"}
	var pairs [][2]string
	for _, an := range hosts {
		for _, bn := range hosts {
			if an != bn {
				pairs = append(pairs, [2]string{an, bn})
			}
		}
	}
	perPair := make([]int, len(pairs))
	for i, pr := range pairs {
		a := built.Host(pr[0])
		b := built.Host(pr[1])
		slot := &perPair[i]
		built.Engine.At(built.Now()+5*time.Millisecond, func() {
			a.PingSeries(b.IP(), 4, 120, 5*time.Millisecond, time.Second, func(rs []host.PingResult) {
				for _, r := range rs {
					if r.Err == nil {
						*slot++
					}
				}
			})
		})
	}
	built.RunFor(3 * time.Second)
	built.Run()
	answered := 0
	for _, n := range perPair {
		answered += n
	}
	if live := built.Network.LiveFrames(); live != 0 {
		t.Fatalf("shards=%d batched=%v: %d frames still live after drain", shards, batched, live)
	}
	return fp.Sum(), fp.Events(), answered
}

// TestShardedBurstMatchesUnbatchedSingleEngine extends the determinism
// gate along both new axes at once: the same-instant burst workload must
// produce the identical tap trace on one engine or four, batched
// window-drain or unbatched one-pop reference — every combination byte
// for byte.
func TestShardedBurstMatchesUnbatchedSingleEngine(t *testing.T) {
	baseFP, baseEv, baseOK := runShardedGridBurst(t, 1, false)
	if baseOK == 0 {
		t.Fatal("no pings answered on the unbatched unsharded run")
	}
	for _, k := range []int{1, 2, 3, 4} {
		for _, batched := range []bool{true, false} {
			if k == 1 && !batched {
				continue // the reference run itself
			}
			fp, ev, ok := runShardedGridBurst(t, k, batched)
			if fp != baseFP || ev != baseEv || ok != baseOK {
				t.Fatalf("shards=%d batched=%v diverged: fp=%#x events=%d answered=%d, want fp=%#x events=%d answered=%d",
					k, batched, fp, ev, ok, baseFP, baseEv, baseOK)
			}
		}
	}
}

// TestPartitionAssignCoversFabric sanity-checks the partitioner: every
// node assigned, shards within range and roughly balanced, hosts co-located
// with their edge bridge.
func TestPartitionAssignCoversFabric(t *testing.T) {
	built := Grid(DefaultOptions(ARPPath, 7), 4, 4)
	const k = 4
	assign := PartitionAssign(built.Net, k)
	counts := make([]int, k)
	for _, nd := range built.Network.Nodes() {
		s, ok := assign[nd.Name()]
		if !ok {
			t.Fatalf("node %s unassigned", nd.Name())
		}
		if s < 0 || s >= k {
			t.Fatalf("node %s out of range shard %d", nd.Name(), s)
		}
		counts[s]++
	}
	for s, c := range counts {
		if c == 0 {
			t.Fatalf("shard %d empty: %v", s, counts)
		}
	}
	for name, h := range built.Hosts {
		edge := h.Port().Peer().Node().Name()
		if assign[name] != assign[edge] {
			t.Fatalf("host %s on shard %d but edge bridge %s on shard %d", name, assign[name], edge, assign[edge])
		}
	}
}
