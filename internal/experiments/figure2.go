package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/host"
	"repro/internal/metrics"
	"repro/internal/topo"
)

// Figure2Row is one (profile, protocol) cell of the Figure 2 comparison:
// ARP-Path vs STP latency between hosts A and B on the demo testbed.
type Figure2Row struct {
	Profile  topo.Figure2Profile
	Protocol topo.Protocol
	// FirstRTT includes ARP resolution and, for ARP-Path, the path
	// discovery race.
	FirstRTT time.Duration
	// RTTs summarizes the steady-state pings after the first.
	RTTs metrics.Distribution
	Lost int
	// Path is the node sequence the echo request traverses at steady
	// state.
	Path []string
	// Series is the per-ping latency over time — the demo UI's graph.
	Series *metrics.Series
}

// Figure2Config tunes the experiment.
type Figure2Config struct {
	Seed     int64
	Pings    int
	Interval time.Duration
	Profiles []topo.Figure2Profile
}

// DefaultFigure2Config mirrors the demo: a short ping train per scenario.
func DefaultFigure2Config() Figure2Config {
	return Figure2Config{
		Seed:     1,
		Pings:    20,
		Interval: 100 * time.Millisecond,
		Profiles: []topo.Figure2Profile{topo.ProfileUniform, topo.ProfileSlowDiagonal, topo.ProfileAsymmetric},
	}
}

// RunFigure2 runs the ARP-Path vs STP latency comparison for every
// profile and both protocols.
func RunFigure2(cfg Figure2Config) []Figure2Row {
	var rows []Figure2Row
	for _, profile := range cfg.Profiles {
		for _, proto := range []topo.Protocol{topo.ARPPath, topo.STP} {
			rows = append(rows, runFigure2Cell(cfg, profile, proto))
		}
	}
	return rows
}

func runFigure2Cell(cfg Figure2Config, profile topo.Figure2Profile, proto topo.Protocol) Figure2Row {
	n := topo.Figure2(expOptions(proto, cfg.Seed), profile)
	defer finishNet(n)
	a, b := n.Host("A"), n.Host("B")
	row := Figure2Row{
		Profile:  profile,
		Protocol: proto,
		Series:   metrics.NewSeries(fmt.Sprintf("%s/%s", proto, profile), "µs"),
	}
	tracer := TraceEchoRequests(n.Network, a.IP(), b.IP())

	done := false
	n.Engine.At(n.Now(), func() {
		a.PingSeries(b.IP(), cfg.Pings, 56, cfg.Interval, 2*time.Second, func(results []host.PingResult) {
			for i, r := range results {
				if r.Err != nil {
					row.Lost++
					continue
				}
				row.Series.Add(r.Sent, float64(r.RTT)/float64(time.Microsecond))
				if i == 0 {
					row.FirstRTT = r.RTT
				} else {
					row.RTTs.Add(r.RTT)
				}
			}
			done = true
		})
	})
	n.RunFor(time.Duration(cfg.Pings)*cfg.Interval + 10*time.Second)
	if !done {
		panic("experiments: figure 2 ping series did not finish")
	}

	// Steady-state path: trace one more echo.
	tracer.Reset()
	n.Engine.At(n.Now(), func() {
		a.Ping(b.IP(), 56, 2*time.Second, func(host.PingResult) {})
	})
	n.RunFor(5 * time.Second)
	row.Path = tracer.Hops()
	return row
}

// Figure2Table renders the comparison the demo showed on its UI.
func Figure2Table(rows []Figure2Row) *metrics.Table {
	t := metrics.NewTable("Figure 2 — ARP-Path vs STP, hosts A↔B on the 4-NetFPGA demo testbed",
		"profile", "protocol", "first RTT", "mean RTT", "min RTT", "max RTT", "lost", "hops", "path")
	for _, r := range rows {
		hops := max(0, len(r.Path)-1)
		t.AddRow(string(r.Profile), string(r.Protocol),
			r.FirstRTT.Round(time.Microsecond),
			r.RTTs.Mean().Round(time.Microsecond),
			r.RTTs.Min().Round(time.Microsecond),
			r.RTTs.Max().Round(time.Microsecond),
			r.Lost, hops, strings.Join(r.Path, "→"))
	}
	return t
}

// Figure2Speedups summarizes the headline number per profile: how much
// lower ARP-Path's steady-state latency is than STP's.
func Figure2Speedups(rows []Figure2Row) *metrics.Table {
	t := metrics.NewTable("Figure 2 — latency ratio (STP mean RTT / ARP-Path mean RTT)",
		"profile", "arp-path", "stp", "ratio")
	byProfile := map[topo.Figure2Profile]map[topo.Protocol]time.Duration{}
	for _, r := range rows {
		if byProfile[r.Profile] == nil {
			byProfile[r.Profile] = map[topo.Protocol]time.Duration{}
		}
		byProfile[r.Profile][r.Protocol] = r.RTTs.Mean()
	}
	for _, r := range rows {
		if r.Protocol != topo.ARPPath {
			continue
		}
		ap := byProfile[r.Profile][topo.ARPPath]
		st := byProfile[r.Profile][topo.STP]
		ratio := "n/a"
		if ap > 0 {
			ratio = fmt.Sprintf("%.2fx", float64(st)/float64(ap))
		}
		t.AddRow(string(r.Profile), ap.Round(time.Microsecond), st.Round(time.Microsecond), ratio)
	}
	return t
}
