package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/topo"
)

func TestFigure1LocksAndPath(t *testing.T) {
	res := RunFigure1(1)
	// Every bridge locked S somewhere (the request floods the mesh).
	for _, name := range []string{"B1", "B2", "B3", "B4", "B5"} {
		if _, ok := res.Locks[name]; !ok {
			t.Fatalf("no lock recorded at %s", name)
		}
	}
	// B2 is S's edge bridge: its lock must point at S itself.
	if !strings.Contains(res.Locks["B2"], "toward S") {
		t.Fatalf("B2 lock = %q, want toward S", res.Locks["B2"])
	}
	// The confirmed path runs S → B2 → ... → B5 → D.
	if len(res.Path) < 4 || res.Path[0] != "B2" || res.Path[len(res.Path)-1] != "D" {
		t.Fatalf("path = %v", res.Path)
	}
	if res.DiscoveryTime <= 0 || res.DiscoveryTime > 10*time.Millisecond {
		t.Fatalf("discovery time = %v", res.DiscoveryTime)
	}
	if res.Table().Rows() != 5 {
		t.Fatal("table rows")
	}
}

func TestFigure2ShapeHolds(t *testing.T) {
	cfg := DefaultFigure2Config()
	cfg.Pings = 10
	rows := RunFigure2(cfg)
	if len(rows) != 6 { // 3 profiles × 2 protocols
		t.Fatalf("rows = %d", len(rows))
	}
	get := func(p topo.Figure2Profile, proto topo.Protocol) Figure2Row {
		for _, r := range rows {
			if r.Profile == p && r.Protocol == proto {
				return r
			}
		}
		t.Fatalf("missing row %s/%s", p, proto)
		return Figure2Row{}
	}

	for _, r := range rows {
		if r.Lost != 0 {
			t.Fatalf("%s/%s lost %d pings", r.Protocol, r.Profile, r.Lost)
		}
		if len(r.Path) == 0 {
			t.Fatalf("%s/%s no path traced", r.Protocol, r.Profile)
		}
	}

	// The headline claim: with a latency-blind tree (slow diagonal), STP's
	// steady-state RTT is far above ARP-Path's.
	ap := get(topo.ProfileSlowDiagonal, topo.ARPPath)
	st := get(topo.ProfileSlowDiagonal, topo.STP)
	if ap.RTTs.Mean() >= st.RTTs.Mean() {
		t.Fatalf("ARP-Path (%v) not faster than STP (%v) on slow-diagonal",
			ap.RTTs.Mean(), st.RTTs.Mean())
	}
	if ratio := float64(st.RTTs.Mean()) / float64(ap.RTTs.Mean()); ratio < 3 {
		t.Fatalf("slow-diagonal ratio %.2f, want ≥ 3 (the diagonal is 50x slower)", ratio)
	}
	// STP's path must use the diagonal (NF1→NF4 directly); ARP-Path's must
	// detour through NF2 or NF3.
	stPath := strings.Join(st.Path, "→")
	if !strings.Contains(stPath, "NF1→NF4") {
		t.Fatalf("STP path %q does not use the diagonal", stPath)
	}
	apPath := strings.Join(ap.Path, "→")
	if !strings.Contains(apPath, "NF2") && !strings.Contains(apPath, "NF3") {
		t.Fatalf("ARP-Path path %q did not route around the slow diagonal", apPath)
	}

	// Uniform profile: both protocols find 4-bridge-hop paths; RTTs within
	// 2x of each other.
	apU := get(topo.ProfileUniform, topo.ARPPath)
	stU := get(topo.ProfileUniform, topo.STP)
	if apU.RTTs.Mean() > 2*stU.RTTs.Mean() || stU.RTTs.Mean() > 2*apU.RTTs.Mean() {
		t.Fatalf("uniform profile diverged: ap=%v stp=%v", apU.RTTs.Mean(), stU.RTTs.Mean())
	}

	// Asymmetric profile: ARP-Path at least as fast as STP.
	apA := get(topo.ProfileAsymmetric, topo.ARPPath)
	stA := get(topo.ProfileAsymmetric, topo.STP)
	if apA.RTTs.Mean() > stA.RTTs.Mean() {
		t.Fatalf("asymmetric: ARP-Path (%v) slower than STP (%v)", apA.RTTs.Mean(), stA.RTTs.Mean())
	}

	// Render paths don't crash and carry the data.
	if Figure2Table(rows).Rows() != 6 || Figure2Speedups(rows).Rows() != 3 {
		t.Fatal("table rendering")
	}
}

func TestFigure2FirstPingIncludesDiscovery(t *testing.T) {
	cfg := DefaultFigure2Config()
	cfg.Pings = 5
	cfg.Profiles = []topo.Figure2Profile{topo.ProfileUniform}
	rows := RunFigure2(cfg)
	for _, r := range rows {
		if r.FirstRTT <= r.RTTs.Mean() {
			t.Fatalf("%s first RTT %v not above steady-state %v (no ARP cost?)",
				r.Protocol, r.FirstRTT, r.RTTs.Mean())
		}
	}
}

func TestFigure3ARPPathRepairsFast(t *testing.T) {
	cfg := DefaultFigure3Config()
	cfg.StreamSize = 8 << 20
	res := RunFigure3(cfg, topo.ARPPath)
	if res.Report == nil || !res.Report.Complete {
		t.Fatal("stream did not complete under ARP-Path")
	}
	if len(res.Failures) == 0 {
		t.Fatal("no failures were injected")
	}
	// §3.2: repair is fast with minimal effect on the video. Every repair
	// completes well under a second.
	for _, f := range res.Failures {
		if f.RepairTime > time.Second {
			t.Fatalf("repair after %s took %v", f.Link, f.RepairTime)
		}
	}
	if res.Report.TotalStall > 2*time.Second {
		t.Fatalf("total stall %v too high for ARP-Path", res.Report.TotalStall)
	}
}

func TestFigure3STPContrastSlower(t *testing.T) {
	cfg := DefaultFigure3Config()
	cfg.StreamSize = 8 << 20
	cfg.FailureTimes = []time.Duration{50 * time.Millisecond}
	ap := RunFigure3(cfg, topo.ARPPath)
	st := RunFigure3(cfg, topo.STP)
	if len(st.Failures) == 0 {
		t.Fatal("STP run injected no failure")
	}
	if st.Report == nil {
		t.Fatal("no STP report")
	}
	// STP reconvergence is tens of seconds; ARP-Path repair is not. The
	// shape claim: at least a 50x gap in recovery time.
	if len(ap.Failures) == 0 || ap.Failures[0].RepairTime == 0 {
		t.Fatal("ARP-Path failure not observed")
	}
	if st.Failures[0].RepairTime < 10*time.Second {
		t.Fatalf("STP recovered in %v — implausibly fast for 802.1D defaults", st.Failures[0].RepairTime)
	}
	if ratio := float64(st.Failures[0].RepairTime) / float64(ap.Failures[0].RepairTime); ratio < 50 {
		t.Fatalf("recovery ratio %.1f, want ≥ 50", ratio)
	}
	if Figure3Table([]*Figure3Result{ap, st}).Rows() != 2 {
		t.Fatal("table rendering")
	}
}

func TestT1PropertiesHold(t *testing.T) {
	rows := RunT1Properties(1, 4)
	if len(rows) != 4 {
		t.Fatalf("trials = %d", len(rows))
	}
	for _, r := range rows {
		// Loop freedom: flood copies within the bound (trunk copies ≤ 2L,
		// plus one delivery per host link).
		bound := r.CopyBound + uint64(r.Bridges)
		if r.FloodCopies > bound {
			t.Fatalf("trial %d: %d copies exceed bound %d", r.Trial, r.FloodCopies, bound)
		}
		if r.CopiesToHost != 1 {
			t.Fatalf("trial %d: destination saw %d request copies", r.Trial, r.CopiesToHost)
		}
		if r.BlockedPorts != 0 {
			t.Fatal("ARP-Path blocked a port")
		}
		// STP must block when the random graph has loops (extra ≥ 2).
		if r.Links >= r.Bridges && r.STPBlocked == 0 {
			t.Fatalf("trial %d: STP blocked nothing on a looped graph", r.Trial)
		}
	}
	if T1Table(rows).Rows() != 4 {
		t.Fatal("table rendering")
	}
}

func TestT2LoadDistribution(t *testing.T) {
	ap := RunT2Load(1, topo.ARPPath)
	st := RunT2Load(1, topo.STP)
	// ARP-Path's spreading must deliver the large majority; STP funnels
	// four flows per pod through one aggregation uplink and tail-drops —
	// that concentration is exactly the §2.2 claim.
	if ap.Delivered < ap.Sent*90/100 {
		t.Fatalf("ARP-Path delivered %d/%d", ap.Delivered, ap.Sent)
	}
	if st.Delivered >= ap.Delivered {
		t.Fatalf("STP delivered %d ≥ ARP-Path %d — no concentration loss", st.Delivered, ap.Delivered)
	}
	// Path diversity: ARP-Path must use strictly more links than STP's
	// tree (whose active edges are at most bridges-1 plus host links).
	if ap.UsedLinks <= st.UsedLinks {
		t.Fatalf("ARP-Path used %d links, STP used %d — no diversity gain",
			ap.UsedLinks, st.UsedLinks)
	}
	// And spread load more evenly.
	if ap.Jain <= st.Jain {
		t.Fatalf("Jain: arp-path %.3f ≤ stp %.3f", ap.Jain, st.Jain)
	}
	if T2Table([]*T2Result{ap, st}).Rows() != 2 {
		t.Fatal("table rendering")
	}
}

func TestT3ProxySuppression(t *testing.T) {
	rows := RunT3Proxy(1, []int{4, 8})
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byKey := map[[2]any]T3Row{}
	for _, r := range rows {
		byKey[[2]any{r.Hosts, r.Proxy}] = r
	}
	for _, n := range []int{4, 8} {
		off := byKey[[2]any{n, false}]
		on := byKey[[2]any{n, true}]
		if on.ProxyReplies == 0 {
			t.Fatalf("n=%d: proxy never answered", n)
		}
		// §2.2: "ARP broadcast traffic can be reduced dramatically".
		if float64(on.WarmBroadcasts) > 0.5*float64(off.WarmBroadcasts) {
			t.Fatalf("n=%d: proxy cut broadcasts only %d→%d", n, off.WarmBroadcasts, on.WarmBroadcasts)
		}
	}
	// Suppression matters more as the fabric grows.
	off4 := byKey[[2]any{4, false}]
	off8 := byKey[[2]any{8, false}]
	if off8.PerARP <= off4.PerARP {
		t.Fatal("flood volume did not grow with fabric size")
	}
	if T3Table(rows).Rows() != 4 {
		t.Fatal("table rendering")
	}
}

func TestT4RepairAblation(t *testing.T) {
	rows := RunT4Repair(1)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]T4Row{}
	for _, r := range rows {
		byName[r.Variant] = r
	}
	on := byName["arp-path (repair on)"]
	off := byName["arp-path (repair off)"]
	slow := byName["stp (default timers)"]
	fast := byName["stp (fast timers)"]

	if !on.Completed {
		t.Fatal("repair-on stream failed")
	}
	if off.Completed {
		t.Fatal("repair-off stream completed — blackhole did not blackhole")
	}
	if !slow.Completed || !fast.Completed {
		t.Fatal("STP streams should complete eventually")
	}
	// Ordering: arp-path ≪ stp-fast < stp-default.
	if on.RepairTime >= fast.RepairTime {
		t.Fatalf("arp-path repair %v not faster than fast STP %v", on.RepairTime, fast.RepairTime)
	}
	if fast.RepairTime >= slow.RepairTime {
		t.Fatalf("fast STP %v not faster than default STP %v", fast.RepairTime, slow.RepairTime)
	}
	if T4Table(rows).Rows() != 4 {
		t.Fatal("table rendering")
	}
}

func TestWithinHelper(t *testing.T) {
	if !within(5, 1, 10) || within(0, 1, 10) || within(11, 1, 10) {
		t.Fatal("within() broken")
	}
}
