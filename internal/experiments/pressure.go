package experiments

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/flowpath"
	"repro/internal/layers"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/topo"
)

// This file is the eviction-pressure experiment behind fabricbench
// -exp tables: the All-Path variants driven through 10⁵–10⁶ distinct
// host conversations over a small fixed fabric, with the variant's
// per-path table (per-host for ARP-Path, per-pair for Flow-Path,
// per-connection for TCP-Path) swept through capacity bounds and
// eviction policies (DESIGN.md §12). Each conversation is one short
// exchange — ARP discovery, a TCP open, one data segment, and a delayed
// revisit probe that lands after eviction may have removed the path —
// so the sweep exposes exactly the axes a bounded table trades:
// occupancy (resident entries vs the corpse-inclusive map size),
// re-discovery storms (repairs and fallbacks triggered when a revisit
// misses), flood amplification, and completion.
//
// The conversation population is far larger than any plausible station
// count, so stations multiplex: each of the 8 edge stations impersonates
// many synthetic hosts, deriving every identity (MAC, IP, owning
// station) as a pure function of the conversation number. No per-
// conversation state is kept anywhere but in the bridges under test —
// which is the point. Everything reported is deterministic: a function
// of the seed alone, bit-identical at any shard count, so CI diffs the
// JSON artifact across -shards 1 and 4.

// tablesStations is the fixed station/bridge count of the pressure
// fabric (a ring of 8 with 4 chords; degree 3, diameter 2).
const tablesStations = 8

// Synthetic host numbering: conversation c runs from host 2c (the
// opener) to host 2c+1 (the responder).
const (
	tablesFirstDataSeq = 100 // the segment that completes a conversation
	tablesRevisitSeq   = 200 // the delayed re-discovery probe
)

// TablesConfig parameterizes the eviction-pressure experiment.
type TablesConfig struct {
	Seed int64
	// Conversations is the number of distinct host conversations (each
	// contributes two synthetic hosts and one TCP connection).
	Conversations int
	// Arrival is the mean inter-arrival spacing of conversation starts
	// (exponential, drawn from the plan stream).
	Arrival time.Duration
	// Revisit is the delay before each conversation's re-discovery
	// probe: long enough for eviction pressure to have recycled the
	// path, far shorter than any timeout.
	Revisit time.Duration
}

// DefaultTablesConfig is the fabricbench default.
func DefaultTablesConfig(seed int64, conversations int) TablesConfig {
	return TablesConfig{Seed: seed, Conversations: conversations}.WithDefaults()
}

// WithDefaults fills unset fields.
func (c TablesConfig) WithDefaults() TablesConfig {
	if c.Conversations == 0 {
		c.Conversations = 100_000
	}
	if c.Arrival == 0 {
		c.Arrival = 100 * time.Microsecond
	}
	if c.Revisit == 0 {
		c.Revisit = time.Second
	}
	return c
}

// TablesPoint is one cell of the capacity sweep: a per-bridge bound on
// the variant's path table plus the eviction policy enforcing it.
type TablesPoint struct {
	Policy   string
	Capacity int
}

// tablesPoints is the sweep: the unbounded lazy-timeout baseline, then
// LRU at two pressure levels, then clock at the harsher one (so the two
// policies are directly comparable where it hurts).
func tablesPoints(conversations int) []TablesPoint {
	lo, hi := conversations/8, conversations/32
	return []TablesPoint{
		{Policy: "timeout", Capacity: 0},
		{Policy: "lru", Capacity: lo},
		{Policy: "lru", Capacity: hi},
		{Policy: "clock", Capacity: hi},
	}
}

// tablesProtocolConfig builds the variant's protocol config carrying the
// sweep point — the same table_capacity/…_policy extensions a fabric
// Spec can set (pkg/fabric).
func tablesProtocolConfig(proto topo.Protocol, pt TablesPoint) any {
	policy := pt.Policy
	if policy == "timeout" {
		policy = "" // the registry's spelling of the baseline
	}
	switch proto {
	case topo.ARPPath:
		return &core.Config{TableCapacity: pt.Capacity, TablePolicy: policy}
	case flowpath.ProtoFlowPath:
		return &flowpath.Config{PairCapacity: pt.Capacity, PairPolicy: policy}
	case flowpath.ProtoTCPPath:
		return &flowpath.TCPConfig{ConnCapacity: pt.Capacity, ConnPolicy: policy}
	default:
		panic(fmt.Sprintf("experiments: no tables config for protocol %q", proto))
	}
}

// --- synthetic host identities -----------------------------------------

// tablesMix is the SplitMix64 finalizer: the pure hash every identity
// derivation goes through, so station assignment needs no tables.
func tablesMix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// tablesSrcStation is the station originating conversation c.
func tablesSrcStation(c int) int {
	return int(tablesMix(uint64(c)*2+1) % tablesStations)
}

// tablesDstStation is the station answering conversation c — by
// construction never the originating one (a same-station conversation
// would never leave its edge port).
func tablesDstStation(c int) int {
	s := tablesSrcStation(c)
	return (s + 1 + int(tablesMix(uint64(c)*2+2)%(tablesStations-1))) % tablesStations
}

// tablesMAC is synthetic host id's MAC: a locally administered unicast
// prefix over the 32-bit id.
func tablesMAC(id int) layers.MAC {
	return layers.MAC{0x0A, 0xFA, byte(id >> 24), byte(id >> 16), byte(id >> 8), byte(id)}
}

// tablesIP packs id into 10/8 (ids stay below 2²⁴: 8M conversations).
func tablesIP(id int) layers.Addr4 {
	return layers.Addr4{10, byte(id >> 16), byte(id >> 8), byte(id)}
}

// tablesID recovers a synthetic host id from its IP.
func tablesID(ip layers.Addr4) (int, bool) {
	if ip[0] != 10 {
		return 0, false
	}
	return int(ip[1])<<16 | int(ip[2])<<8 | int(ip[3]), true
}

// tablesPort gives openers and responders fixed TCP ports; connection
// keys are unique through the IP pair alone.
func tablesPort(id int) uint16 {
	if id&1 == 0 {
		return 40000
	}
	return 443
}

// tablesStart is one conversation origination: which conversation, when
// (offset from the drive's base time).
type tablesStart struct {
	conv  int
	start time.Duration
}

// tablesSchedule compiles the arrival schedule once per sweep: the plan
// stream is independent of any build, so every (variant, point) run
// drives the identical workload. Starts are appended in conversation
// order, so each station's slice is sorted by start time.
func tablesSchedule(cfg TablesConfig) [][]tablesStart {
	plan := rand.New(rand.NewSource(cfg.Seed*0x9E3779B9 + 11))
	perStation := make([][]tablesStart, tablesStations)
	at := time.Duration(0)
	for c := 0; c < cfg.Conversations; c++ {
		at += time.Duration(plan.ExpFloat64() * float64(cfg.Arrival))
		s := tablesSrcStation(c)
		perStation[s] = append(perStation[s], tablesStart{conv: c, start: at})
	}
	return perStation
}

// --- the multiplexing edge station -------------------------------------

// muxStation is an edge node impersonating many synthetic hosts. It
// keeps no per-conversation state: every frame it receives carries
// enough identity (via the pure-function numbering) to derive the
// conversation, the role and the owning station, so a million
// conversations cost the station nothing — all growth lands in the
// bridge tables under test.
type muxStation struct {
	name    string
	id      int
	proc    *sim.Proc
	port    *netsim.Port
	revisit time.Duration

	starts []tablesStart
	next   int
	base   time.Duration

	txBuf *layers.SerializeBuffer

	completed int
	revisited int
	finished  time.Duration // virtual time of the last completion
}

// newMuxStation creates station i on net (cable it afterwards).
func newMuxStation(net *netsim.Network, i int, revisit time.Duration) *muxStation {
	m := &muxStation{
		name:    fmt.Sprintf("M%d", i+1),
		id:      i,
		revisit: revisit,
		txBuf:   layers.NewSerializeBuffer(),
	}
	net.AddNode(m)
	m.proc = net.Proc(m.name)
	return m
}

// Name implements netsim.Node.
func (m *muxStation) Name() string { return m.name }

// AttachPort implements netsim.Node.
func (m *muxStation) AttachPort(p *netsim.Port) { m.port = p }

// PortStatusChanged implements netsim.Node.
func (m *muxStation) PortStatusChanged(*netsim.Port, bool) {}

// begin starts the station's origination chain (call under the engine at
// the drive's base time). Only the next origination is ever scheduled,
// so a million pending conversations never hold a million timers.
func (m *muxStation) begin(starts []tablesStart) {
	m.starts, m.next = starts, 0
	m.base = m.proc.Now()
	m.pump()
}

// pump schedules the next origination.
func (m *muxStation) pump() {
	if m.next >= len(m.starts) {
		return
	}
	st := m.starts[m.next]
	m.next++
	d := m.base + st.start - m.proc.Now()
	if d < 0 {
		d = 0
	}
	m.proc.After(d, func() {
		m.open(st.conv)
		m.pump()
	})
}

// open originates conversation c: a textbook ARP request for the
// responder's IP, from the opener's synthetic identity.
func (m *muxStation) open(c int) {
	src := 2 * c
	m.send(
		&layers.Ethernet{Dst: layers.BroadcastMAC, Src: tablesMAC(src), EtherType: layers.EtherTypeARP},
		&layers.ARP{
			Operation: layers.ARPRequest,
			SenderHW:  tablesMAC(src), SenderIP: tablesIP(src),
			TargetIP: tablesIP(src + 1),
		},
	)
}

// send serializes into the reusable scratch and transmits; Port.Send
// copies into a pooled frame before returning.
func (m *muxStation) send(ls ...layers.SerializableLayer) {
	if err := layers.SerializeLayers(m.txBuf, layers.FixAll, ls...); err != nil {
		panic(fmt.Sprintf("experiments: %s serialize: %v", m.name, err))
	}
	m.port.Send(m.txBuf.Bytes())
}

// sendSeg emits one TCP-lite segment from synthetic host `from` to `to`.
func (m *muxStation) sendSeg(from, to int, seq, ack uint32, flags uint8) {
	m.send(
		&layers.Ethernet{Dst: tablesMAC(to), Src: tablesMAC(from), EtherType: layers.EtherTypeIPv4},
		&layers.IPv4{TTL: 64, Protocol: layers.IPProtoTCPLite, Src: tablesIP(from), Dst: tablesIP(to)},
		&layers.TCPLite{
			SrcPort: tablesPort(from), DstPort: tablesPort(to),
			Seq: seq, Ack: ack, Flags: flags, Window: 65535,
		},
	)
}

// HandleFrame implements netsim.Node: derive the conversation from the
// frame's addresses, check ownership, answer. Frames for hosts homed
// elsewhere (flood copies) and bridge control traffic are ignored.
func (m *muxStation) HandleFrame(_ *netsim.Port, f *netsim.Frame) {
	var eth layers.Ethernet
	if eth.DecodeFromBytes(f.Bytes()) != nil {
		return
	}
	switch eth.EtherType {
	case layers.EtherTypeARP:
		var a layers.ARP
		if a.DecodeFromBytes(eth.Payload()) == nil {
			m.handleARP(&a)
		}
	case layers.EtherTypeIPv4:
		var ip layers.IPv4
		if ip.DecodeFromBytes(eth.Payload()) != nil || ip.Protocol != layers.IPProtoTCPLite {
			return
		}
		var t layers.TCPLite
		if t.DecodeFromBytes(ip.Payload()) == nil {
			m.handleTCP(&ip, &t)
		}
	}
}

// handleARP answers discovery: requests for responders we home get a
// unicast reply; replies to openers we home advance to the TCP open.
func (m *muxStation) handleARP(a *layers.ARP) {
	switch a.Operation {
	case layers.ARPRequest:
		id, ok := tablesID(a.TargetIP)
		if !ok || id&1 != 1 || tablesDstStation(id>>1) != m.id {
			return
		}
		m.send(
			&layers.Ethernet{Dst: a.SenderHW, Src: tablesMAC(id), EtherType: layers.EtherTypeARP},
			&layers.ARP{
				Operation: layers.ARPReply,
				SenderHW:  tablesMAC(id), SenderIP: a.TargetIP,
				TargetHW: a.SenderHW, TargetIP: a.SenderIP,
			},
		)
	case layers.ARPReply:
		id, ok := tablesID(a.TargetIP) // the opener the reply answers
		if !ok || id&1 != 0 || tablesSrcStation(id>>1) != m.id {
			return
		}
		m.sendSeg(id, id+1, 1, 0, layers.TCPFlagSYN)
	}
}

// handleTCP runs the rest of a conversation statelessly off the segment.
func (m *muxStation) handleTCP(ip *layers.IPv4, t *layers.TCPLite) {
	did, ok := tablesID(ip.Dst)
	if !ok {
		return
	}
	c := did >> 1
	syn := t.Flags&layers.TCPFlagSYN != 0
	ack := t.Flags&layers.TCPFlagACK != 0
	switch {
	case syn && !ack: // opener's SYN, terminating at the responder
		if did&1 != 1 || tablesDstStation(c) != m.id {
			return
		}
		m.sendSeg(did, did^1, 1, t.Seq+1, layers.TCPFlagSYN|layers.TCPFlagACK)
	case syn && ack: // SYN|ACK back at the opener: send data, arm the probe
		if did&1 != 0 || tablesSrcStation(c) != m.id {
			return
		}
		m.sendSeg(did, did^1, tablesFirstDataSeq, 0, layers.TCPFlagACK)
		m.proc.After(m.revisit, func() {
			m.sendSeg(did, did^1, tablesRevisitSeq, 0, layers.TCPFlagACK)
		})
	case t.Seq == tablesFirstDataSeq: // the completing segment
		if did&1 != 1 || tablesDstStation(c) != m.id {
			return
		}
		m.completed++
		if now := m.proc.Now(); now > m.finished {
			m.finished = now
		}
	case t.Seq == tablesRevisitSeq: // the re-discovery probe survived
		if did&1 != 1 || tablesDstStation(c) != m.id {
			return
		}
		m.revisited++
	}
}

var _ netsim.Node = (*muxStation)(nil)

// --- the fabric and the drive ------------------------------------------

// tablesFabric builds the fixed pressure fabric: 8 bridges in a ring
// with 4 chords (degree 3), one mux station per bridge. The wiring is
// deterministic by construction; only the protocol and its table bound
// vary across the sweep.
func tablesFabric(proto topo.Protocol, seed int64, pcfg any, revisit time.Duration) (*topo.Built, []*muxStation) {
	o := expOptions(proto, seed)
	o.ProtocolConfig = pcfg
	b := topo.NewBuilder(o)
	brs := make([]topo.Bridge, tablesStations)
	for i := range brs {
		brs[i] = b.AddBridge(fmt.Sprintf("S%d", i+1))
	}
	for i := range brs {
		b.Connect(brs[i], brs[(i+1)%tablesStations])
	}
	for i := 0; i < tablesStations/2; i++ {
		b.Connect(brs[i], brs[i+tablesStations/2])
	}
	stations := make([]*muxStation, tablesStations)
	for i := range stations {
		stations[i] = newMuxStation(b.Net(), i, revisit)
		b.Connect(stations[i], brs[i])
	}
	return &topo.Built{Net: b.Build()}, stations
}

// TablesRun is the outcome of one (variant, point) drive. All fields
// are deterministic (a function of the seed alone).
type TablesRun struct {
	Conversations int
	Completed     int           // conversations whose first data segment arrived
	Revisited     int           // revisit probes that still found a path
	FinishedAt    time.Duration // virtual time of the last completion (from base)
	EntriesTotal  int           // map sizes incl. expired corpses, summed over bridges
	ResidentTotal int           // live entries, summed over bridges
	PeakMax       int           // largest single-bridge occupancy seen
	Evictions     uint64        // capacity evictions of live entries
	Floods        uint64        // flood relays (broadcast + SYN races)
	Rediscoveries uint64        // repairs, path requests and fallbacks after misses
	Events        uint64
}

// driveTables runs the compiled schedule over a built pressure fabric.
func driveTables(built *topo.Built, stations []*muxStation, schedule [][]tablesStart, cfg TablesConfig) *TablesRun {
	run := &TablesRun{Conversations: cfg.Conversations}
	eventsBefore := built.Network.Processed()
	base := built.Now()
	for i, m := range stations {
		i, m := i, m
		built.Engine.At(base, func() { m.begin(schedule[i]) })
	}
	span := time.Duration(0)
	for _, sts := range schedule {
		if n := len(sts); n > 0 && sts[n-1].start > span {
			span = sts[n-1].start
		}
	}
	built.RunFor(span + cfg.Revisit + time.Second)
	built.Run()

	for _, m := range stations {
		run.Completed += m.completed
		run.Revisited += m.revisited
		if m.finished > base && m.finished-base > run.FinishedAt {
			run.FinishedAt = m.finished - base
		}
	}
	for _, br := range built.Bridges {
		collectTables(run, br)
	}
	run.Events = built.Network.Processed() - eventsBefore
	return run
}

// collectTables folds one bridge's primary path table and storm counters
// into the run. The "primary" table is the one the sweep bounds: the
// per-host table for ARP-Path, the pair table for Flow-Path, the
// connection table for TCP-Path.
func collectTables(run *TablesRun, br topo.Bridge) {
	switch b := br.(type) {
	case *flowpath.TCPPath:
		t := b.Conns()
		run.EntriesTotal += t.Entries()
		run.ResidentTotal += t.Len()
		if t.PeakEntries() > run.PeakMax {
			run.PeakMax = t.PeakEntries()
		}
		run.Evictions += t.Evictions()
		ts, cs := b.TCPStats(), b.Stats()
		run.Floods += cs.BroadcastRelayed + ts.SynFloods
		run.Rediscoveries += ts.Fallbacks + cs.RepairsStarted + cs.PathRequestsSent
	case *flowpath.Bridge:
		t := b.Pairs()
		run.EntriesTotal += t.Entries()
		run.ResidentTotal += t.Len()
		if t.PeakEntries() > run.PeakMax {
			run.PeakMax = t.PeakEntries()
		}
		run.Evictions += t.Evictions()
		s := b.Stats()
		run.Floods += s.BroadcastRelayed
		run.Rediscoveries += s.RepairsStarted + s.PathRequestsSent
	case *core.Bridge:
		t := b.Table()
		run.EntriesTotal += t.Entries()
		run.ResidentTotal += t.Len()
		if t.PeakEntries() > run.PeakMax {
			run.PeakMax = t.PeakEntries()
		}
		run.Evictions += t.Evictions()
		s := b.Stats()
		run.Floods += s.BroadcastRelayed
		run.Rediscoveries += s.RepairsStarted + s.PathRequestsSent
	}
}

// TablesResult is one cell of the sweep.
type TablesResult struct {
	Variant  topo.Protocol
	Policy   string
	Capacity int
	Run      *TablesRun
}

// RunTables drives the full sweep: every All-Path variant through every
// capacity point, identical workload everywhere.
func RunTables(cfg TablesConfig) []*TablesResult {
	cfg = cfg.WithDefaults()
	schedule := tablesSchedule(cfg)
	var results []*TablesResult
	for _, proto := range AllPathProtocols() {
		for _, pt := range tablesPoints(cfg.Conversations) {
			built, stations := tablesFabric(proto, cfg.Seed, tablesProtocolConfig(proto, pt), cfg.Revisit)
			run := driveTables(built, stations, schedule, cfg)
			finishNet(built)
			results = append(results, &TablesResult{
				Variant: proto, Policy: pt.Policy, Capacity: pt.Capacity, Run: run,
			})
		}
	}
	return results
}

// TablesTable renders the sweep. Every cell is deterministic:
// bit-identical at any shard count and GOMAXPROCS.
func TablesTable(rs []*TablesResult) *metrics.Table {
	t := metrics.NewTable("Bounded path tables under conversation churn (per-bridge capacity × eviction policy; same seed, same schedule, only the bound differs)",
		"variant", "policy", "capacity", "convs", "completed", "revisited", "finish (virt)",
		"entries Σ", "resident Σ", "peak max", "evictions", "floods", "rediscoveries")
	for _, r := range rs {
		t.AddRow(string(r.Variant), r.Policy, r.Capacity, r.Run.Conversations,
			r.Run.Completed, r.Run.Revisited, r.Run.FinishedAt.Round(time.Microsecond),
			r.Run.EntriesTotal, r.Run.ResidentTotal, r.Run.PeakMax,
			r.Run.Evictions, r.Run.Floods, r.Run.Rediscoveries)
	}
	return t
}

// tablesRecord is the JSON artifact's row. Deliberately free of any
// machine- or shard-dependent field: CI diffs this file byte for byte
// between -shards 1 and -shards 4.
type tablesRecord struct {
	Variant       string  `json:"variant"`
	Policy        string  `json:"policy"`
	Capacity      int     `json:"capacity"`
	Conversations int     `json:"conversations"`
	Completed     int     `json:"completed"`
	Revisited     int     `json:"revisited"`
	FinishedNS    int64   `json:"finished_virtual_ns"`
	EntriesTotal  int     `json:"entries_total"`
	ResidentTotal int     `json:"resident_total"`
	PeakMax       int     `json:"peak_entries_max"`
	Evictions     uint64  `json:"evictions_total"`
	Floods        uint64  `json:"floods_relayed"`
	FloodAmp      float64 `json:"flood_amplification"`
	Rediscoveries uint64  `json:"rediscoveries"`
	Events        uint64  `json:"events"`
}

// TablesJSON renders the sweep as the deterministic bench artifact.
func TablesJSON(rs []*TablesResult) ([]byte, error) {
	records := make([]tablesRecord, 0, len(rs))
	for _, r := range rs {
		rec := tablesRecord{
			Variant: string(r.Variant), Policy: r.Policy, Capacity: r.Capacity,
			Conversations: r.Run.Conversations, Completed: r.Run.Completed,
			Revisited: r.Run.Revisited, FinishedNS: int64(r.Run.FinishedAt),
			EntriesTotal: r.Run.EntriesTotal, ResidentTotal: r.Run.ResidentTotal,
			PeakMax: r.Run.PeakMax, Evictions: r.Run.Evictions,
			Floods: r.Run.Floods, Rediscoveries: r.Run.Rediscoveries,
			Events: r.Run.Events,
		}
		if r.Run.Conversations > 0 {
			rec.FloodAmp = float64(r.Run.Floods) / float64(r.Run.Conversations)
		}
		records = append(records, rec)
	}
	out, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
