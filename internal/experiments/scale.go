package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/host"
	"repro/internal/host/app"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/topo"
)

// The scale experiment is the reproduction's answer to the All-Path
// scalability study (PAPERS.md, arXiv:1703.08744): flood cost, repair
// churn and load balancing only get interesting at fabric sizes a
// single-threaded event loop cannot reach in reasonable wall-clock. It
// builds a large random-regular fabric, drives many concurrent UDP
// conversations across it, and measures the simulator's wall-clock
// throughput — single engine versus the sharded parallel engine
// (DESIGN.md §8). The protocol-side numbers (delivery, events, trace
// fingerprint) are bit-identical at every shard count; only the wall
// clock may differ, which is the whole point.

// ScaleConfig parameterizes one scaling run.
type ScaleConfig struct {
	Seed    int64
	Bridges int // random-regular fabric size (even, one host per bridge)
	Degree  int // trunk degree
	Shards  int
	Flows   int           // concurrent UDP conversations
	Window  time.Duration // traffic phase length (virtual time)
	// Trace attaches the fingerprint tap. It costs throughput (every tap
	// is observed and, sharded, buffered + merged), so benchmark runs
	// leave it off and determinism runs turn it on.
	Trace bool
}

// DefaultScaleConfig is the fabricbench default: a 256-bridge fabric, 64
// conversations, 200ms of virtual traffic.
func DefaultScaleConfig(seed int64, shards int) ScaleConfig {
	return ScaleConfig{
		Seed: seed, Bridges: 256, Degree: 3, Shards: shards,
		Flows: 64, Window: 200 * time.Millisecond,
	}
}

// ScaleResult reports one scaling run. Everything except Wall and the
// derived rates is a deterministic function of (Seed, Bridges, Degree,
// Flows, Window) — independent of Shards and GOMAXPROCS.
type ScaleResult struct {
	Config                ScaleConfig
	Bridges, Hosts, Links int
	Lookahead             time.Duration // coordinator window (0 unsharded)
	Offered, Delivered    int           // UDP datagrams
	Events                uint64        // events executed across all engines
	Fingerprint           uint64        // merged-trace digest (Trace runs)
	TraceEvents           uint64        // tap events folded into the fingerprint
	Wall                  time.Duration
	EventsPerSec          float64
	FramesPerSec          float64 // delivered datagrams per wall second
	// Coordination overhead over the traffic phase (zero unsharded).
	// Windows, Barriers and Exchanged are deterministic for a given
	// (seed, shards); WakeNS is wall clock, like Wall.
	Windows   uint64 // parallel windows the coordinator dispatched
	Barriers  uint64 // control events run with all shards paused
	Exchanged uint64 // cross-shard arrivals moved between engines
	WakeNS    int64  // total worker wake latency
}

// RunScale executes one scaling run.
func RunScale(cfg ScaleConfig) *ScaleResult {
	opts := topo.DefaultOptions(topo.ARPPath, cfg.Seed)
	opts.Shards = cfg.Shards
	built := topo.RandomRegular(opts, cfg.Bridges, cfg.Degree)
	defer finishNet(built)

	var fp *netsim.TapFingerprint
	if cfg.Trace {
		fp = netsim.NewTapFingerprint()
		built.Network.Tap(fp.Observe)
	}

	// Draw the conversation pairs from a plan RNG, independent of the
	// build stream, so the traffic matrix is a function of the seed alone.
	plan := rand.New(rand.NewSource(cfg.Seed * 7919))
	type flow struct{ src, dst int }
	flows := make([]flow, 0, cfg.Flows)
	for len(flows) < cfg.Flows {
		s, d := plan.Intn(cfg.Bridges), plan.Intn(cfg.Bridges)
		if s != d {
			flows = append(flows, flow{s, d})
		}
	}
	hostOf := func(i int) *host.Host { return built.Host(fmt.Sprintf("H%d", i+1)) }

	// Establish every conversation's path with one ARP-initiated ping.
	for _, f := range flows {
		src, dst := hostOf(f.src), hostOf(f.dst)
		built.Engine.At(built.Now(), func() {
			src.Ping(dst.IP(), 0, time.Second, func(host.PingResult) {})
		})
	}
	built.RunFor(2 * time.Second)

	// Traffic phase: every conversation streams concurrently.
	const interval = 100 * time.Microsecond
	count := int(cfg.Window / interval)
	offered := 0
	sinks := make([]*app.Sink, len(flows))
	port := uint16(9000)
	for i, f := range flows {
		port++
		p := port
		sinks[i] = app.NewSink(hostOf(f.dst), p)
		src, dstIP := hostOf(f.src), hostOf(f.dst).IP()
		offered += count
		built.Engine.At(built.Now(), func() {
			app.StartFlow(src, app.FlowConfig{
				DstIP: dstIP, DstPort: p, SrcPort: p,
				PayloadSize: 512, Interval: interval, Count: count,
			}, nil)
		})
	}

	eventsBefore := built.Network.Processed()
	coordBefore := built.Network.CoordStats()
	start := time.Now() //fabriclint:wallclock measures wall speedup of the same virtual workload; traces are compared separately
	built.RunFor(cfg.Window + 10*time.Millisecond)
	built.Run()
	wall := time.Since(start)
	coord := built.Network.CoordStats()

	res := &ScaleResult{
		Config:    cfg,
		Bridges:   len(built.Bridges),
		Hosts:     len(built.Hosts),
		Links:     len(built.Links),
		Lookahead: built.Network.Lookahead(),
		Offered:   offered,
		Events:    built.Network.Processed() - eventsBefore,
		Wall:      wall,
		Windows:   coord.Windows - coordBefore.Windows,
		Barriers:  coord.Barriers - coordBefore.Barriers,
		Exchanged: coord.Exchanged - coordBefore.Exchanged,
		WakeNS:    coord.WakeNS - coordBefore.WakeNS,
	}
	for _, s := range sinks {
		res.Delivered += s.Count()
	}
	if fp != nil {
		res.Fingerprint = fp.Sum()
		res.TraceEvents = fp.Events()
	}
	if wall > 0 {
		res.EventsPerSec = float64(res.Events) / wall.Seconds()
		res.FramesPerSec = float64(res.Delivered) / wall.Seconds()
	}
	return res
}

// ScaleTable renders the deterministic half of scaling runs: every cell
// is bit-identical for a given seed at any shard count and GOMAXPROCS.
// Wall-clock rates are reported separately (ScaleBenchLine, BENCH json)
// precisely because they are the one machine-dependent output.
func ScaleTable(rs []*ScaleResult) *metrics.Table {
	t := metrics.NewTable("Scaling fabric (random-regular, one host per bridge) — deterministic outputs",
		"bridges", "links", "shards", "flows", "offered", "delivered", "events", "trace events", "fingerprint")
	for _, r := range rs {
		fpCell := "-"
		if r.TraceEvents > 0 {
			fpCell = fmt.Sprintf("%#016x", r.Fingerprint)
		}
		t.AddRow(r.Bridges, r.Links, r.Config.Shards, r.Config.Flows, r.Offered, r.Delivered, r.Events, r.TraceEvents, fpCell)
	}
	return t
}

// ScaleBenchLine renders one run's wall-clock figures for stderr / bench
// artifacts.
func ScaleBenchLine(r *ScaleResult) string {
	return fmt.Sprintf("scale: bridges=%d shards=%d lookahead=%v wall=%v events/s=%.0f frames/s=%.0f windows=%d barriers=%d exchanged=%d",
		r.Bridges, r.Config.Shards, r.Lookahead, r.Wall.Round(time.Millisecond), r.EventsPerSec, r.FramesPerSec,
		r.Windows, r.Barriers, r.Exchanged)
}
