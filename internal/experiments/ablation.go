package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/host"
	"repro/internal/metrics"
	"repro/internal/stp"
	"repro/internal/topo"
)

// --- T5: lock-window ablation ------------------------------------------

// T5Row measures discovery health for one lock-timeout setting.
type T5Row struct {
	LockTimeout time.Duration
	// FloodTime is the worst-case flood traversal of the fabric (the
	// quantity the lock window must exceed; DESIGN.md §5).
	FloodTime time.Duration
	Sent      int
	Lost      int
	// Repairs counts PathRequests triggered because entries expired under
	// the returning replies.
	Repairs uint64
	// SrcPortDrops counts unicasts discarded for violating expired or
	// flapped bindings.
	SrcPortDrops uint64
}

// RunT5LockWindow sweeps the ARP-Path lock timeout on a high-delay ring
// (8 bridges, 1 ms links → flood traversal ≈ 8 ms round the long arc).
// Windows shorter than the traversal let the race guard lapse while
// copies are still in flight and let entries expire under the returning
// replies; the row captures the resulting repair storms and losses.
func RunT5LockWindow(seed int64, windows []time.Duration) []T5Row {
	const ringSize = 8
	const linkDelay = time.Millisecond
	floodTime := time.Duration(ringSize) * linkDelay // long-arc bound
	var rows []T5Row
	for _, w := range windows {
		opts := expOptions(topo.ARPPath, seed)
		opts.ARPPath().LockTimeout = w
		opts.Link = opts.Link.WithDelay(linkDelay)
		built := topo.Ring(opts, ringSize)
		row := T5Row{LockTimeout: w, FloodTime: floodTime}

		// Hosts on opposite sides of the ring ping each other repeatedly,
		// flushing ARP caches so every round re-runs the discovery race.
		a := built.Host("H1")
		b := built.Host(fmt.Sprintf("H%d", ringSize/2+1))
		const rounds = 10
		at := built.Now()
		for i := 0; i < rounds; i++ {
			built.Engine.At(at, func() {
				a.ARP().Flush()
				b.ARP().Flush()
				a.Ping(b.IP(), 0, 500*time.Millisecond, func(r host.PingResult) {
					row.Sent++
					if r.Err != nil {
						row.Lost++
					}
				})
			})
			at += 600 * time.Millisecond
		}
		built.RunFor(at - built.Now() + 2*time.Second)

		for _, br := range built.Bridges {
			s := br.(*core.Bridge).Stats()
			row.Repairs += s.PathRequestsSent
			row.SrcPortDrops += s.SrcPortDrop
		}
		finishNet(built)
		rows = append(rows, row)
	}
	return rows
}

// T5Table renders the lock-window sweep.
func T5Table(rows []T5Row) *metrics.Table {
	t := metrics.NewTable("T5 — lock-window ablation on an 8-bridge / 1 ms-link ring (flood traversal ≈ 8 ms)",
		"lock timeout", "sent", "lost", "path requests", "src-port drops")
	for _, r := range rows {
		t.AddRow(r.LockTimeout, r.Sent, r.Lost, r.Repairs, r.SrcPortDrops)
	}
	return t
}

// --- T6: forwarding-state scalability -----------------------------------

// T6Row compares per-bridge forwarding-table sizes for one fabric size.
type T6Row struct {
	Hosts int
	// ARPPathMax/Mean are live locking-table entries per bridge after the
	// lock windows expire — proportional to the paths crossing a bridge.
	ARPPathMax  int
	ARPPathMean float64
	// STPMax/Mean are live FIB entries per bridge — learning switches
	// remember every address whose flood they saw.
	STPMax  int
	STPMean float64
}

// RunT6TableSize runs star traffic (every host talks to host 1) on rings
// of growing size and snapshots forwarding state per bridge.
func RunT6TableSize(seed int64, sizes []int) []T6Row {
	var rows []T6Row
	for _, n := range sizes {
		row := T6Row{Hosts: n}
		row.ARPPathMax, row.ARPPathMean = t6Measure(topo.ARPPath, seed, n)
		row.STPMax, row.STPMean = t6Measure(topo.STP, seed, n)
		rows = append(rows, row)
	}
	return rows
}

func t6Measure(proto topo.Protocol, seed int64, n int) (maxLen int, meanLen float64) {
	built := topo.Ring(expOptions(proto, seed), n)
	defer finishNet(built)
	server := built.Host("H1")
	at := built.Now()
	for i := 2; i <= n; i++ {
		h := built.Host(fmt.Sprintf("H%d", i))
		built.Engine.At(at, func() {
			h.Ping(server.IP(), 0, 2*time.Second, func(host.PingResult) {})
		})
		at += 2 * time.Millisecond
	}
	// Let the exchanges finish and the ARP-Path lock windows lapse, so
	// only confirmed state remains.
	built.RunFor(at - built.Now() + time.Second)

	total := 0
	for _, br := range built.Bridges {
		var live int
		switch b := br.(type) {
		case *core.Bridge:
			b.Table().FlushExpired(built.Now())
			live = b.Table().Len()
		case *stp.Bridge:
			b.FIB().FlushExpired(built.Now())
			live = b.FIB().Len()
		}
		total += live
		if live > maxLen {
			maxLen = live
		}
	}
	return maxLen, float64(total) / float64(len(built.Bridges))
}

// T6Table renders the state-size comparison.
func T6Table(rows []T6Row) *metrics.Table {
	t := metrics.NewTable("T6 — forwarding state per bridge, star traffic on a ring (after lock expiry)",
		"hosts", "arp-path max", "arp-path mean", "stp max", "stp mean")
	for _, r := range rows {
		t.AddRow(r.Hosts, r.ARPPathMax, fmt.Sprintf("%.1f", r.ARPPathMean),
			r.STPMax, fmt.Sprintf("%.1f", r.STPMean))
	}
	return t
}
