package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/host"
	"repro/internal/layers"
	"repro/internal/metrics"
	"repro/internal/topo"
)

// Figure1Result reproduces the paper's Figure 1: which port of every
// bridge locked S's address during the broadcast race (the figure's
// bubbles), the confirmed S–D path, and how long discovery took.
type Figure1Result struct {
	// Locks maps bridge name → the port (as "name[index]", peer in
	// parentheses) that locked S during the ARP Request flood.
	Locks map[string]string
	// Path is the node sequence the first data frame S→D traverses.
	Path []string
	// DiscoveryTime is S's ARP request→reply round trip — the path
	// set-up cost, which ARP-Path hides inside an exchange hosts perform
	// anyway (§2.2 "zero configuration").
	DiscoveryTime time.Duration
}

// RunFigure1 executes the discovery walkthrough on the Figure 1 topology.
func RunFigure1(seed int64) *Figure1Result {
	n := topo.Figure1(expOptions(topo.ARPPath, seed))
	defer finishNet(n)
	s, d := n.Host("S"), n.Host("D")

	res := &Figure1Result{Locks: make(map[string]string)}
	n.Engine.At(n.Now(), func() {
		start := n.Now()
		// Resolving D's address triggers exactly the ARP exchange of
		// Figure 1; hosts are unmodified (transparency).
		s.Resolve(d.IP(), func(_ layers.MAC, err error) {
			if err == nil {
				res.DiscoveryTime = n.Now() - start
			}
		})
	})
	n.RunFor(50 * time.Millisecond)

	// Read the bubbles: every bridge's entry for S.
	for _, br := range n.Bridges {
		b := br.(*core.Bridge)
		if e, ok := b.EntryFor(s.MAC()); ok {
			res.Locks[b.Name()] = fmt.Sprintf("%s (toward %s, %s)",
				e.Port, e.Port.Peer().Node().Name(), e.State)
		}
	}

	// Trace the path of a data-plane probe S→D.
	tracer := TraceEchoRequests(n.Network, s.IP(), d.IP())
	n.Engine.At(n.Now(), func() {
		s.Ping(d.IP(), 0, time.Second, func(host.PingResult) {})
	})
	n.RunFor(50 * time.Millisecond)
	res.Path = tracer.Hops()
	return res
}

// Table renders the result for terminal output.
func (r *Figure1Result) Table() *metrics.Table {
	t := metrics.NewTable("Figure 1 — ARP-Path discovery from S to D (lock positions)",
		"bridge", "port locking S")
	names := make([]string, 0, len(r.Locks))
	for name := range r.Locks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t.AddRow(name, r.Locks[name])
	}
	return t
}
