// Package experiments contains one runner per figure and table of the
// paper's evaluation (see DESIGN.md §4 for the index). The cmd/ tools,
// the examples and the root benchmark harness all call into this package,
// so a result is computed exactly one way everywhere.
package experiments

import (
	"time"

	"repro/internal/layers"
	"repro/internal/netsim"
	"repro/internal/topo"
)

// Shards is the shard count applied to every experiment topology
// (fabricbench -shards): >1 runs each simulation on the partitioned
// parallel engine. Every figure and table is bit-identical for any value
// — that equivalence is enforced by TestExperimentsShardInvariant.
var Shards = 1

// expOptions is topo.DefaultOptions plus the package shard setting; every
// experiment builds its topology through it.
func expOptions(p topo.Protocol, seed int64) topo.Options {
	o := topo.DefaultOptions(p, seed)
	o.Shards = Shards
	return o
}

// OnNetworkDone is a test hook: when set, every runner invokes it with
// each network it built, after that network's measurements are complete.
// The pooled-frame leak gate uses it to drain every figure/table
// experiment's network and assert the frame refcounts balance; it is nil
// (and free) outside tests.
var OnNetworkDone func(n *topo.Built)

// finishNet reports a network the current runner is done measuring.
func finishNet(n *topo.Built) {
	if OnNetworkDone != nil {
		OnNetworkDone(n)
	}
}

// PathTracer reconstructs the bridge path a probe takes by watching
// deliveries network-wide. Attach it before sending the probe; the hop
// list is the sequence of nodes that received the matching frames.
type PathTracer struct {
	match func(frame []byte) bool
	hops  []string
}

// TraceEchoRequests returns a tracer matching ICMP echo requests from src
// to dst.
func TraceEchoRequests(net *netsim.Network, src, dst layers.Addr4) *PathTracer {
	t := &PathTracer{match: func(frame []byte) bool {
		var eth layers.Ethernet
		if eth.DecodeFromBytes(frame) != nil || eth.EtherType != layers.EtherTypeIPv4 {
			return false
		}
		var ip layers.IPv4
		if ip.DecodeFromBytes(eth.Payload()) != nil || ip.Protocol != layers.IPProtoICMP {
			return false
		}
		if ip.Src != src || ip.Dst != dst {
			return false
		}
		var echo layers.ICMPEcho
		return echo.DecodeFromBytes(ip.Payload()) == nil && echo.Type == layers.ICMPEchoRequest
	}}
	net.Tap(func(ev netsim.TapEvent) {
		if ev.Kind != netsim.TapDeliver || !t.match(ev.Frame) {
			return
		}
		name := ev.To.Node().Name()
		if n := len(t.hops); n == 0 || t.hops[n-1] != name {
			t.hops = append(t.hops, name)
		}
	})
	return t
}

// Reset clears the recorded hops (between probes).
func (t *PathTracer) Reset() { t.hops = nil }

// Hops returns the nodes the probe visited, in order.
func (t *PathTracer) Hops() []string { return append([]string(nil), t.hops...) }

// countBroadcastDeliveries attaches a counter of broadcast ARP/PathRequest
// deliveries — the flood volume measure of T1/T3.
func countBroadcastDeliveries(net *netsim.Network) *uint64 {
	var n uint64
	net.Tap(func(ev netsim.TapEvent) {
		if ev.Kind != netsim.TapDeliver {
			return
		}
		if !layers.FrameDst(ev.Frame).IsBroadcast() {
			return
		}
		switch layers.FrameEtherType(ev.Frame) {
		case layers.EtherTypeARP, layers.EtherTypePathCtl:
			n++
		}
	})
	return &n
}

// within reports whether d lands inside [lo, hi].
func within(d, lo, hi time.Duration) bool { return d >= lo && d <= hi }
