package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/host/app"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/topo"

	_ "repro/internal/flowpath" // registers flowpath/tcppath for the comparison
)

// This file is the All-Path comparative experiment: the same seeded
// traffic matrix driven over fabrics bridged by ARP-Path, Flow-Path and
// TCP-Path, measuring the axes the scalability study trades against each
// other — forwarding-table size (per-host vs per-pair vs per-connection
// state), path diversity (how many distinct trunks carry the load and
// how evenly), and delivered throughput. Everything reported here is
// deterministic: a function of the seed alone, bit-identical at any
// shard count, which is what lets CI diff the JSON artifact across
// -shards 1 and 4.

// MatrixPattern names a spec-level traffic matrix shape.
type MatrixPattern string

// Matrix patterns.
const (
	// MatrixHotspot concentrates flows on a few hot destinations (the
	// incast-flavoured worst case for per-host tables).
	MatrixHotspot MatrixPattern = "hotspot"
	// MatrixPermutation pairs every host with exactly one partner (the
	// classic bisection-stress matrix).
	MatrixPermutation MatrixPattern = "permutation"
	// MatrixPairs draws weighted random pairs with a Zipf-like skew
	// (heavy talkers over a long tail).
	MatrixPairs MatrixPattern = "pairs"
)

// MatrixPatterns lists the patterns, sweep order.
func MatrixPatterns() []MatrixPattern {
	return []MatrixPattern{MatrixHotspot, MatrixPermutation, MatrixPairs}
}

// MatrixConfig parameterizes a traffic matrix over hosts 0..Hosts-1.
type MatrixConfig struct {
	Pattern MatrixPattern
	Hosts   int
	// Flows is the flow count for hotspot/pairs (permutation always has
	// exactly Hosts flows).
	Flows int
	// Hotspots is how many hot destinations the hotspot pattern uses.
	Hotspots int
	// Skew is the pairs pattern's Zipf exponent (rank weight ∝ 1/r^Skew).
	Skew float64
	// Bytes is the per-flow transfer size.
	Bytes int
	// Arrival is the mean spacing of the seeded flow arrival schedule
	// (exponential inter-arrivals drawn from the plan stream).
	Arrival time.Duration
}

// WithDefaults fills unset fields.
func (c MatrixConfig) WithDefaults() MatrixConfig {
	if c.Pattern == "" {
		c.Pattern = MatrixHotspot
	}
	if c.Flows == 0 {
		c.Flows = c.Hosts
	}
	if c.Hotspots == 0 {
		c.Hotspots = 2
	}
	if c.Skew == 0 {
		c.Skew = 1.5
	}
	if c.Bytes == 0 {
		c.Bytes = 256 << 10
	}
	if c.Arrival == 0 {
		c.Arrival = time.Millisecond
	}
	return c
}

// MatrixFlow is one flow of a compiled matrix: host indices, a start
// offset from the matrix's seeded arrival schedule, and a size.
type MatrixFlow struct {
	Src, Dst int
	Start    time.Duration
	Bytes    int
}

// BuildMatrix compiles a matrix deterministically from the seed. The
// plan stream is independent of any build or protocol, so the same
// (config, seed) drives the identical workload over every fabric of the
// comparison.
func BuildMatrix(cfg MatrixConfig, seed int64) []MatrixFlow {
	cfg = cfg.WithDefaults()
	if cfg.Hosts < 2 {
		panic("experiments: matrix needs at least two hosts")
	}
	plan := rand.New(rand.NewSource(seed*0x9E3779B9 + 7))
	var flows []MatrixFlow
	switch cfg.Pattern {
	case MatrixHotspot:
		hot := plan.Perm(cfg.Hosts)[:min(cfg.Hotspots, cfg.Hosts/2+1)]
		for i := 0; i < cfg.Flows; i++ {
			dst := hot[plan.Intn(len(hot))]
			src := plan.Intn(cfg.Hosts)
			if src == dst {
				src = (src + 1) % cfg.Hosts
			}
			flows = append(flows, MatrixFlow{Src: src, Dst: dst})
		}
	case MatrixPermutation:
		perm := plan.Perm(cfg.Hosts)
		// Repair fixed points by swapping with the next slot: a swap
		// keeps the map a bijection (every host exactly one partner, in
		// and out), where redirecting the self-map alone would give one
		// host two incoming flows and another none. The swap cannot
		// create a new fixed point: perm[j] ≠ i while perm[i] == i.
		for i := range perm {
			if perm[i] == i {
				j := (i + 1) % cfg.Hosts
				perm[i], perm[j] = perm[j], perm[i]
			}
		}
		for i, p := range perm {
			flows = append(flows, MatrixFlow{Src: i, Dst: p})
		}
	case MatrixPairs:
		// Zipf-like rank weights over a seeded host ordering.
		order := plan.Perm(cfg.Hosts)
		weights := make([]float64, cfg.Hosts)
		total := 0.0
		for r := range weights {
			weights[r] = 1 / math.Pow(float64(r+1), cfg.Skew)
			total += weights[r]
		}
		draw := func() int {
			x := plan.Float64() * total
			for r, w := range weights {
				if x -= w; x <= 0 {
					return order[r]
				}
			}
			return order[len(order)-1]
		}
		for i := 0; i < cfg.Flows; i++ {
			src, dst := draw(), draw()
			if src == dst {
				dst = (dst + 1) % cfg.Hosts
			}
			flows = append(flows, MatrixFlow{Src: src, Dst: dst})
		}
	default:
		panic(fmt.Sprintf("experiments: unknown matrix pattern %q", cfg.Pattern))
	}
	at := time.Duration(0)
	for i := range flows {
		at += time.Duration(plan.ExpFloat64() * float64(cfg.Arrival))
		flows[i].Start = at
		flows[i].Bytes = cfg.Bytes
	}
	return flows
}

// MatrixRun is the outcome of driving one matrix over one fabric. All
// fields are deterministic.
type MatrixRun struct {
	Flows          int
	Completed      int           // TCP transfers that ran to completion
	DeliveredBytes int           // client-side received bytes
	FinishedAt     time.Duration // virtual time the last transfer completed
	TableEntries   int           // resident forwarding entries, summed over bridges
	TableMax       int           // largest single bridge table
	TrunksUsed     int           // trunk links that carried any traffic
	TrunkShareMax  float64       // busiest trunk's share of total trunk busy time
	EffTrunks      float64       // effective trunk count: 1 / Σ share² (inverse Herfindahl)
	Events         uint64
}

// tableSizer is any bridge reporting its resident forwarding state.
type tableSizer interface{ ForwardingEntries() int }

// DriveMatrix runs a compiled matrix as TCP-lite transfers over a built
// fabric (each flow a connection src→dst on its own port, started per
// the arrival schedule) and collects the deterministic outcome.
func DriveMatrix(built *topo.Built, flows []MatrixFlow) *MatrixRun {
	hostOf := func(i int) string { return fmt.Sprintf("H%d", i+1) }
	run := &MatrixRun{Flows: len(flows)}
	eventsBefore := built.Network.Processed()

	// Trunk utilization is measured as the delta over the run, so warm-up
	// HELLOs (which touch every trunk once) do not drown the diversity
	// signal.
	busyBefore := make(map[*netsim.Link]time.Duration, len(built.Links))
	for _, l := range built.Links {
		busyBefore[l] = l.BusyTime(l.A()) + l.BusyTime(l.B())
	}

	reports := make([]*app.StreamReport, len(flows))
	base := built.Now()
	for i, fl := range flows {
		i, fl := i, fl
		srv := built.Host(hostOf(fl.Src))
		cli := built.Host(hostOf(fl.Dst))
		cfg := app.StreamConfig{
			Port:           uint16(20000 + i),
			Size:           fl.Bytes,
			Bucket:         50 * time.Millisecond,
			StallThreshold: 100 * time.Millisecond,
		}
		built.Engine.At(base+fl.Start, func() {
			app.StartStream(srv, cli, cfg, func(r *app.StreamReport) { reports[i] = r })
		})
	}
	built.RunFor(30 * time.Second)
	built.Run()

	for _, r := range reports {
		if r == nil {
			continue
		}
		run.DeliveredBytes += r.Received
		if r.Complete {
			run.Completed++
			if r.Finished > run.FinishedAt {
				run.FinishedAt = r.Finished
			}
		}
	}
	for _, br := range built.Bridges {
		if ts, ok := br.(tableSizer); ok {
			n := ts.ForwardingEntries()
			run.TableEntries += n
			if n > run.TableMax {
				run.TableMax = n
			}
		}
	}
	bridges := make(map[string]bool, len(built.Bridges))
	for _, br := range built.Bridges {
		bridges[br.Name()] = true
	}
	// Links is a map: iterate in sorted name order so the floating-point
	// share accumulation below is bit-identical run to run.
	names := make([]string, 0, len(built.Links))
	for name := range built.Links {
		names = append(names, name)
	}
	sort.Strings(names)
	var total, max time.Duration
	var trunkBusy []time.Duration
	for _, name := range names {
		l := built.Links[name]
		if !bridges[l.A().Node().Name()] || !bridges[l.B().Node().Name()] {
			continue
		}
		busy := l.BusyTime(l.A()) + l.BusyTime(l.B()) - busyBefore[l]
		if busy > 0 {
			run.TrunksUsed++
			trunkBusy = append(trunkBusy, busy)
			total += busy
			if busy > max {
				max = busy
			}
		}
	}
	if total > 0 {
		run.TrunkShareMax = float64(max) / float64(total)
		hhi := 0.0
		for _, b := range trunkBusy {
			share := float64(b) / float64(total)
			hhi += share * share
		}
		run.EffTrunks = 1 / hhi
	}
	run.Events = built.Network.Processed() - eventsBefore
	return run
}

// AllPathProtocols is the comparison set, report order.
func AllPathProtocols() []topo.Protocol {
	return []topo.Protocol{"arppath", "flowpath", "tcppath"}
}

// AllPathResult is one protocol's leg of the comparison.
type AllPathResult struct {
	Protocol topo.Protocol
	Pattern  MatrixPattern
	Run      *MatrixRun
}

// AllPathConfig parameterizes the comparative experiment.
type AllPathConfig struct {
	Seed    int64
	Bridges int // random-regular fabric size (even)
	Degree  int
	Flows   int
}

// DefaultAllPathConfig is the fabricbench default: a 24-bridge 3-regular
// fabric, 24 flows per pattern.
func DefaultAllPathConfig(seed int64) AllPathConfig {
	return AllPathConfig{Seed: seed, Bridges: 24, Degree: 3, Flows: 24}
}

// RunAllPath drives every (protocol, pattern) pairing: same seed, same
// wiring, same matrix — only the bridging protocol differs.
func RunAllPath(cfg AllPathConfig) []*AllPathResult {
	var results []*AllPathResult
	for _, pattern := range MatrixPatterns() {
		flows := BuildMatrix(MatrixConfig{
			Pattern: pattern, Hosts: cfg.Bridges, Flows: cfg.Flows,
		}, cfg.Seed)
		for _, proto := range AllPathProtocols() {
			built := topo.RandomRegular(expOptions(proto, cfg.Seed), cfg.Bridges, cfg.Degree)
			run := DriveMatrix(built, flows)
			finishNet(built)
			results = append(results, &AllPathResult{Protocol: proto, Pattern: pattern, Run: run})
		}
	}
	return results
}

// AllPathTable renders the comparison. Every cell is deterministic:
// bit-identical at any shard count and GOMAXPROCS.
func AllPathTable(rs []*AllPathResult) *metrics.Table {
	t := metrics.NewTable("All-Path family under spec-level traffic matrices (random-regular fabric; same seed, same matrix, only the protocol differs)",
		"pattern", "protocol", "flows", "completed", "delivered B", "finish (virt)", "table Σ", "table max", "eff trunks", "max trunk share")
	for _, r := range rs {
		t.AddRow(string(r.Pattern), string(r.Protocol), r.Run.Flows, r.Run.Completed,
			r.Run.DeliveredBytes, r.Run.FinishedAt.Round(time.Microsecond),
			r.Run.TableEntries, r.Run.TableMax, fmt.Sprintf("%.1f", r.Run.EffTrunks),
			fmt.Sprintf("%.3f", r.Run.TrunkShareMax))
	}
	return t
}

// allPathRecord is the JSON artifact's row. Deliberately free of any
// machine- or shard-dependent field: CI diffs this file byte for byte
// between -shards 1 and -shards 4.
type allPathRecord struct {
	Pattern        string  `json:"pattern"`
	Protocol       string  `json:"protocol"`
	Bridges        int     `json:"bridges"`
	Flows          int     `json:"flows"`
	Completed      int     `json:"completed"`
	DeliveredBytes int     `json:"delivered_bytes"`
	FinishedNS     int64   `json:"finished_virtual_ns"`
	TableEntries   int     `json:"table_entries_total"`
	TableMax       int     `json:"table_entries_max"`
	TrunksUsed     int     `json:"trunks_used"`
	TrunkShareMax  float64 `json:"max_trunk_share"`
	EffTrunks      float64 `json:"effective_trunks"`
	Events         uint64  `json:"events"`
}

// AllPathJSON renders the comparison as the deterministic bench artifact.
func AllPathJSON(cfg AllPathConfig, rs []*AllPathResult) ([]byte, error) {
	records := make([]allPathRecord, 0, len(rs))
	for _, r := range rs {
		records = append(records, allPathRecord{
			Pattern: string(r.Pattern), Protocol: string(r.Protocol),
			Bridges: cfg.Bridges, Flows: r.Run.Flows, Completed: r.Run.Completed,
			DeliveredBytes: r.Run.DeliveredBytes, FinishedNS: int64(r.Run.FinishedAt),
			TableEntries: r.Run.TableEntries, TableMax: r.Run.TableMax,
			TrunksUsed: r.Run.TrunksUsed, TrunkShareMax: r.Run.TrunkShareMax,
			EffTrunks: r.Run.EffTrunks,
			Events:    r.Run.Events,
		})
	}
	out, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
