package experiments

import (
	"fmt"

	"time"

	"repro/internal/core"
	"repro/internal/host"
	"repro/internal/host/app"
	"repro/internal/layers"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/stp"
	"repro/internal/topo"
)

// --- T1: §1/§2.2 properties — loop freedom, no blocked links ----------

// T1Row is one random-topology trial of the properties table.
type T1Row struct {
	Trial        int
	Bridges      int
	Links        int
	FloodCopies  uint64 // broadcast deliveries for one ARP exchange
	CopyBound    uint64 // 2·links (the loop-freedom bound)
	CopiesToHost int    // copies the destination host saw (must be 1)
	BlockedPorts int    // ARP-Path has no port blocking at all
	STPBlocked   int    // same topology under STP, for contrast
}

// RunT1Properties measures flood containment on seeded random topologies.
func RunT1Properties(seed int64, trials int) []T1Row {
	var rows []T1Row
	for trial := 0; trial < trials; trial++ {
		n := 4 + int(seed+int64(trial))%5
		extra := 2 + trial%3
		row := T1Row{Trial: trial}

		built := topo.Random(expOptions(topo.ARPPath, seed+int64(trial)), n, extra)
		row.Bridges = len(built.Bridges)
		trunkLinks := 0
		for _, l := range built.Network.Links() {
			if _, aIsHost := l.A().Node().(*host.Host); aIsHost {
				continue
			}
			if _, bIsHost := l.B().Node().(*host.Host); bIsHost {
				continue
			}
			trunkLinks++
		}
		row.Links = trunkLinks
		row.CopyBound = uint64(2 * trunkLinks)

		copies := countBroadcastDeliveries(built.Network)
		h1 := built.Host("H1")
		hN := built.Host(fmt.Sprintf("H%d", n))
		// Count broadcast ARP copies delivered to the destination host's
		// port: the first-port rule must reduce the looped flood to one.
		toHost := 0
		built.Network.Tap(func(ev netsim.TapEvent) {
			if ev.Kind == netsim.TapDeliver && ev.To.Node() == netsim.Node(hN) &&
				layers.FrameDst(ev.Frame).IsBroadcast() &&
				layers.FrameEtherType(ev.Frame) == layers.EtherTypeARP {
				toHost++
			}
		})
		built.Engine.At(built.Now(), func() {
			h1.Ping(hN.IP(), 0, time.Second, func(host.PingResult) {})
		})
		built.RunFor(2 * time.Second)
		row.FloodCopies = *copies
		row.CopiesToHost = toHost
		row.BlockedPorts = 0 // ARP-Path has no blocking state, by construction
		finishNet(built)

		// Same wiring under STP: count blocked ports after convergence.
		stpBuilt := topo.Random(expOptions(topo.STP, seed+int64(trial)), n, extra)
		for _, br := range stpBuilt.Bridges {
			sb := br.(*stp.Bridge)
			for _, p := range sb.Ports() {
				if sb.State(p) == stp.StateBlocking {
					row.STPBlocked++
				}
			}
		}
		// The warm-up horizon falls exactly on a hello tick, so BPDUs sent
		// at that instant are still in flight; land them before the net is
		// dropped or their pooled frames stay referenced forever.
		stpBuilt.RunFor(time.Millisecond)
		finishNet(stpBuilt)
		rows = append(rows, row)
	}
	return rows
}

// T1Table renders the properties comparison.
func T1Table(rows []T1Row) *metrics.Table {
	t := metrics.NewTable("T1 — loop-freedom and link usage on random topologies (one ARP exchange)",
		"trial", "bridges", "trunk links", "flood copies", "bound 2·L+hosts", "dst copies", "arp-path blocked", "stp blocked")
	for _, r := range rows {
		t.AddRow(r.Trial, r.Bridges, r.Links, r.FloodCopies,
			r.CopyBound+uint64(r.Bridges), r.CopiesToHost, r.BlockedPorts, r.STPBlocked)
	}
	return t
}

// --- T2: §2.2 load distribution and path diversity --------------------

// T2Result compares link utilization of concurrent flows on a fat-tree.
type T2Result struct {
	Protocol topo.Protocol
	Flows    int
	// TrunkLinks is the number of bridge-bridge links in the fabric.
	TrunkLinks int
	// UsedLinks carried at least one data frame.
	UsedLinks int
	// MaxBusy and MeanBusy summarize per-direction serialization time on
	// trunk links.
	MaxBusy, MeanBusy time.Duration
	// Jain is the fairness index of per-link busy time (1 = even).
	Jain float64
	// Delivered counts datagrams that reached their sinks.
	Delivered int
	Sent      int
}

// RunT2Load runs 8 cross-pod UDP flows on a k=4 fat tree.
func RunT2Load(seed int64, proto topo.Protocol) *T2Result {
	built := topo.FatTree(expOptions(proto, seed), 4)
	defer finishNet(built)
	res := &T2Result{Protocol: proto}

	// Account *data* wire time per trunk-link direction via a tap: link
	// BusyTime alone would also count BPDUs and HELLOs, hiding the
	// contrast between the protocols.
	dataBusy := make(map[*netsim.Port]time.Duration)
	built.Network.Tap(func(ev netsim.TapEvent) {
		if ev.Kind != netsim.TapSend || layers.FrameEtherType(ev.Frame) != layers.EtherTypeIPv4 {
			return
		}
		if _, ok := ev.From.Node().(*host.Host); ok {
			return
		}
		if _, ok := ev.To.Node().(*host.Host); ok {
			return
		}
		wire := layers.WireBytes(len(ev.Frame))
		rate := ev.From.Link().Config().Rate
		dataBusy[ev.From] += time.Duration(wire) * 8 * time.Duration(time.Second) / time.Duration(rate)
	})

	// Pair host i with host i+8 (always cross-pod on k=4: hosts 1..4 are
	// pod 1, 5..8 pod 2, ...).
	type pair struct{ src, dst int }
	var pairs []pair
	for i := 1; i <= 8; i++ {
		pairs = append(pairs, pair{i, i + 8})
	}
	res.Flows = len(pairs)

	sinks := make([]*app.Sink, len(pairs))
	for i, p := range pairs {
		sinks[i] = app.NewSink(built.Host(fmt.Sprintf("H%d", p.dst)), 7000)
	}
	// Stagger flow starts so each discovery race sees the queues built up
	// by earlier flows — the mechanism behind ARP-Path's load spreading.
	start := built.Now()
	for i, p := range pairs {
		i, p := i, p
		built.Engine.At(start+time.Duration(i)*2*time.Millisecond, func() {
			app.StartFlow(built.Host(fmt.Sprintf("H%d", p.src)), app.FlowConfig{
				DstIP:       built.Host(fmt.Sprintf("H%d", p.dst)).IP(),
				DstPort:     7000,
				SrcPort:     7001,
				PayloadSize: 1400,
				Interval:    25 * time.Microsecond, // ~450 Mb/s per flow
				Count:       4000,
			}, func(r app.FlowResult) { res.Sent += r.Sent })
		})
	}
	built.RunFor(2 * time.Second)
	for _, s := range sinks {
		res.Delivered += s.Count()
	}

	// Per-direction data wire time on trunk links.
	var busies []float64
	var total, maxBusy time.Duration
	for _, l := range built.Network.Links() {
		if _, ok := l.A().Node().(*host.Host); ok {
			continue
		}
		if _, ok := l.B().Node().(*host.Host); ok {
			continue
		}
		res.TrunkLinks++
		used := false
		for _, p := range []*netsim.Port{l.A(), l.B()} {
			busy := dataBusy[p]
			busies = append(busies, busy.Seconds())
			total += busy
			if busy > maxBusy {
				maxBusy = busy
			}
			if busy > 0 {
				used = true
			}
		}
		if used {
			res.UsedLinks++
		}
	}
	if len(busies) > 0 {
		res.MeanBusy = total / time.Duration(len(busies))
	}
	res.MaxBusy = maxBusy
	res.Jain = metrics.Jain(busies)
	return res
}

// T2Table renders the load-distribution comparison.
func T2Table(results []*T2Result) *metrics.Table {
	t := metrics.NewTable("T2 — load distribution: 8 cross-pod UDP flows on a k=4 fat tree",
		"protocol", "trunk links", "links used", "max busy", "mean busy", "jain", "delivered/sent")
	for _, r := range results {
		t.AddRow(string(r.Protocol), r.TrunkLinks, r.UsedLinks,
			r.MaxBusy.Round(time.Microsecond), r.MeanBusy.Round(time.Microsecond),
			fmt.Sprintf("%.3f", r.Jain),
			fmt.Sprintf("%d/%d", r.Delivered, r.Sent))
	}
	return t
}

// --- T3: §2.2 scalability via the ARP Proxy ---------------------------

// T3Row measures broadcast suppression for one fabric size.
type T3Row struct {
	Hosts int
	Proxy bool
	// WarmBroadcasts is the broadcast deliveries during the steady-state
	// re-ARP phase (after every edge bridge has snooped the server).
	WarmBroadcasts uint64
	// PerARP is WarmBroadcasts divided by the number of re-ARPs.
	PerARP float64
	// ProxyReplies counts locally answered requests.
	ProxyReplies uint64
}

// RunT3Proxy measures ARP broadcast volume with and without the in-switch
// proxy on rings of increasing size, with every host periodically
// re-resolving one server.
func RunT3Proxy(seed int64, sizes []int) []T3Row {
	var rows []T3Row
	for _, n := range sizes {
		for _, proxy := range []bool{false, true} {
			rows = append(rows, runT3Cell(seed, n, proxy))
		}
	}
	return rows
}

func runT3Cell(seed int64, n int, proxy bool) T3Row {
	opts := expOptions(topo.ARPPath, seed)
	opts.ARPPath().Proxy = proxy
	built := topo.Ring(opts, n)
	defer finishNet(built)
	row := T3Row{Hosts: n, Proxy: proxy}

	server := built.Host("H1")
	// Phase 1 (seeding): every host resolves the server once; the replies
	// seed each edge bridge's proxy cache.
	at := built.Now()
	for i := 2; i <= n; i++ {
		h := built.Host(fmt.Sprintf("H%d", i))
		built.Engine.At(at, func() {
			h.Ping(server.IP(), 0, 2*time.Second, func(host.PingResult) {})
		})
		at += 5 * time.Millisecond
	}
	built.RunFor(at - built.Now() + 2*time.Second)

	// Phase 2 (steady state): flush host caches and re-resolve — the
	// periodic re-ARP traffic EtherProxy [5] suppresses.
	counter := countBroadcastDeliveries(built.Network)
	reARPs := 0
	at = built.Now()
	for i := 2; i <= n; i++ {
		h := built.Host(fmt.Sprintf("H%d", i))
		reARPs++
		built.Engine.At(at, func() {
			h.ARP().Flush()
			h.Ping(server.IP(), 0, 2*time.Second, func(host.PingResult) {})
		})
		at += 5 * time.Millisecond
	}
	built.RunFor(at - built.Now() + 2*time.Second)

	row.WarmBroadcasts = *counter
	if reARPs > 0 {
		row.PerARP = float64(row.WarmBroadcasts) / float64(reARPs)
	}
	for _, br := range built.Bridges {
		row.ProxyReplies += br.(*core.Bridge).Stats().ProxyConverted
	}
	return row
}

// T3Table renders the proxy-scaling comparison.
func T3Table(rows []T3Row) *metrics.Table {
	t := metrics.NewTable("T3 — ARP broadcast suppression by the in-switch proxy (steady-state re-ARPs)",
		"hosts", "proxy", "broadcast deliveries", "per re-ARP", "proxy replies")
	for _, r := range rows {
		t.AddRow(r.Hosts, r.Proxy, r.WarmBroadcasts, fmt.Sprintf("%.1f", r.PerARP), r.ProxyReplies)
	}
	return t
}

// --- T4: §2.1.4 repair ablation ----------------------------------------

// T4Row is one variant's recovery from a single mid-stream failure.
type T4Row struct {
	Variant    string
	Completed  bool
	RepairTime time.Duration // first stall after the failure
	TotalStall time.Duration
	Transfer   time.Duration
}

// RunT4Repair compares recovery mechanisms after one failure on the demo
// fabric: ARP-Path repair, ARP-Path with repair disabled (blackhole),
// and STP with default and fast timers.
func RunT4Repair(seed int64) []T4Row {
	variants := []struct {
		name  string
		proto topo.Protocol
		mod   func(*topo.Options)
	}{
		{"arp-path (repair on)", topo.ARPPath, nil},
		{"arp-path (repair off)", topo.ARPPath, func(o *topo.Options) { o.ARPPath().DisableRepair = true }},
		{"stp (default timers)", topo.STP, nil},
		{"stp (fast timers)", topo.STP, func(o *topo.Options) { *o.STP() = stp.FastTimers() }},
	}
	var rows []T4Row
	for _, v := range variants {
		opts := expOptions(v.proto, seed)
		if v.mod != nil {
			v.mod(&opts)
			opts.WarmUp = 0 // recomputed by the builder from the modified config
		}
		rows = append(rows, runT4Cell(opts, v.name))
	}
	return rows
}

func runT4Cell(opts topo.Options, name string) T4Row {
	built := topo.Figure2(opts, topo.ProfileUniform)
	defer finishNet(built)
	a, b := built.Host("A"), built.Host("B")
	row := T4Row{Variant: name}

	scfg := app.DefaultStreamConfig()
	scfg.Size = 16 << 20
	meter := attachStreamMeter(built, b)
	var finished *app.StreamReport
	var streamer *app.Streamer
	start := built.Now()
	built.Engine.At(start, func() {
		streamer = app.StartStream(a, b, scfg, func(r *app.StreamReport) { finished = r })
	})
	failAt := start + 50*time.Millisecond
	built.Engine.At(failAt, func() {
		if l := activeUplink(built, a.MAC()); l != nil && l.Up() {
			meter.onFail(built.Now())
			l.SetUp(false)
		}
	})
	built.RunFor(3 * time.Minute)
	if finished == nil && streamer != nil {
		finished = streamer.Report()
	}
	if finished == nil {
		return row
	}
	row.Completed = finished.Complete
	row.TotalStall = finished.TotalStall
	end := built.Now()
	if finished.Complete {
		row.Transfer = finished.Finished - finished.Connected
		end = finished.Finished
	}
	if repairs := meter.repairTimes(end); len(repairs) > 0 {
		row.RepairTime = repairs[0]
	}
	return row
}

// T4Table renders the ablation.
func T4Table(rows []T4Row) *metrics.Table {
	t := metrics.NewTable("T4 — recovery after one mid-stream link failure (16 MiB stream)",
		"variant", "completed", "repair time", "total stall", "transfer time")
	for _, r := range rows {
		completed := "no"
		var tt any = "-"
		if r.Completed {
			completed = "yes"
			tt = r.Transfer.Round(time.Millisecond)
		}
		t.AddRow(r.Variant, completed, r.RepairTime.Round(time.Microsecond),
			r.TotalStall.Round(time.Millisecond), tt)
	}
	return t
}
