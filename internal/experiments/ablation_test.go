package experiments

import (
	"testing"
	"time"
)

func TestT5LockWindowSweep(t *testing.T) {
	rows := RunT5LockWindow(1, []time.Duration{
		time.Millisecond,       // far below the 8ms flood traversal
		20 * time.Millisecond,  // above traversal, below reply RTT margin
		200 * time.Millisecond, // the default
	})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	short, mid, deflt := rows[0], rows[1], rows[2]
	if short.Sent != 10 || mid.Sent != 10 || deflt.Sent != 10 {
		t.Fatalf("sent counts: %d/%d/%d", short.Sent, mid.Sent, deflt.Sent)
	}
	// The default window must be clean: no losses, no repair storms.
	if deflt.Lost != 0 {
		t.Fatalf("default window lost %d pings", deflt.Lost)
	}
	// A window below the flood traversal must visibly degrade discovery:
	// replies meet expired entries, triggering repairs (path requests) or
	// drops; the fabric works noticeably harder than at the default.
	if short.Repairs+short.SrcPortDrops <= deflt.Repairs+deflt.SrcPortDrops {
		t.Fatalf("short window showed no degradation: short=%d+%d default=%d+%d",
			short.Repairs, short.SrcPortDrops, deflt.Repairs, deflt.SrcPortDrops)
	}
	if T5Table(rows).Rows() != 3 {
		t.Fatal("table rendering")
	}
}

func TestT6TableSizeScaling(t *testing.T) {
	rows := RunT6TableSize(1, []int{8, 16})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// STP learning switches remember every host they saw flood —
		// state grows with the host count at every bridge.
		if r.STPMean < float64(r.Hosts)/2 {
			t.Fatalf("n=%d: STP mean %v implausibly small", r.Hosts, r.STPMean)
		}
		// ARP-Path keeps only confirmed paths after the lock windows
		// expire; off-path bridges hold nothing about remote exchanges.
		if r.ARPPathMean >= r.STPMean {
			t.Fatalf("n=%d: ARP-Path state %v not smaller than STP %v",
				r.Hosts, r.ARPPathMean, r.STPMean)
		}
	}
	// And the gap should widen with fabric size.
	gapSmall := rows[0].STPMean - rows[0].ARPPathMean
	gapLarge := rows[1].STPMean - rows[1].ARPPathMean
	if gapLarge <= gapSmall {
		t.Fatalf("state gap did not grow: %v then %v", gapSmall, gapLarge)
	}
	if T6Table(rows).Rows() != 2 {
		t.Fatal("table rendering")
	}
}
