package experiments

import (
	"bytes"
	"testing"
)

// smallTables keeps the eviction-pressure gates fast: a few hundred
// conversations still exercise every capacity point (n/32 ≥ 12) and all
// three protocol variants.
func smallTables(seed int64) TablesConfig {
	return DefaultTablesConfig(seed, 400)
}

// TestTablesShardInvariant is the determinism gate for the
// eviction-pressure experiment: the sweep's deterministic table and its
// BENCH_tables.json payload must be byte-identical at shards=1 and
// shards=4 — eviction decisions, re-discovery storms and flood counts
// included.
func TestTablesShardInvariant(t *testing.T) {
	render := func() (string, []byte) {
		rs := RunTables(smallTables(13))
		js, err := TablesJSON(rs)
		if err != nil {
			t.Fatal(err)
		}
		return TablesTable(rs).String(), js
	}
	Shards = 1
	singleTable, singleJSON := render()
	Shards = 4
	shardedTable, shardedJSON := render()
	Shards = 1
	if singleTable != shardedTable {
		t.Fatalf("tables sweep diverged between shards=1 and shards=4:\n%s\nvs\n%s",
			singleTable, shardedTable)
	}
	if !bytes.Equal(singleJSON, shardedJSON) {
		t.Fatalf("BENCH_tables.json diverged between shards=1 and shards=4:\n%s\nvs\n%s",
			singleJSON, shardedJSON)
	}
}

// TestTablesPressureSignals pins the experiment's semantic contract: the
// unbounded baseline completes and revisits every conversation with zero
// evictions, and every bounded row that does evict stays within its
// configured capacity at peak (modulo entries admitted over capacity
// while race-guarded).
func TestTablesPressureSignals(t *testing.T) {
	rs := RunTables(smallTables(29))
	if len(rs) != 12 {
		t.Fatalf("sweep produced %d rows, want 12 (3 variants × 4 points)", len(rs))
	}
	for _, r := range rs {
		run := r.Run
		if run.Completed == 0 {
			t.Fatalf("%s %s/%d: no conversation completed", r.Variant, r.Policy, r.Capacity)
		}
		if r.Capacity == 0 {
			if run.Evictions != 0 {
				t.Fatalf("%s unbounded baseline evicted %d entries", r.Variant, run.Evictions)
			}
			if run.Completed != run.Conversations || run.Revisited != run.Conversations {
				t.Fatalf("%s unbounded baseline dropped work: completed %d revisited %d of %d",
					r.Variant, run.Completed, run.Revisited, run.Conversations)
			}
		} else if run.Evictions == 0 {
			t.Fatalf("%s %s/%d: bounded run under churn produced no evictions; pressure not exercised",
				r.Variant, r.Policy, r.Capacity)
		}
	}
}
