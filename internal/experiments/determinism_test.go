package experiments

import (
	"reflect"
	"testing"

	"repro/internal/topo"
)

// The simulator's central promise: same seed, same run — down to every
// RTT, path and repair time. These tests re-run whole experiments and
// compare the complete result structures.

func TestFigure2Deterministic(t *testing.T) {
	cfg := DefaultFigure2Config()
	cfg.Pings = 5
	cfg.Profiles = []topo.Figure2Profile{topo.ProfileSlowDiagonal}
	a := RunFigure2(cfg)
	b := RunFigure2(cfg)
	if len(a) != len(b) {
		t.Fatal("row counts differ")
	}
	for i := range a {
		if a[i].FirstRTT != b[i].FirstRTT ||
			a[i].RTTs.Mean() != b[i].RTTs.Mean() ||
			!reflect.DeepEqual(a[i].Path, b[i].Path) {
			t.Fatalf("row %d diverged between identical runs", i)
		}
	}
	// A different seed must (in general) shift the absolute timings of
	// the TCP ISNs etc.; paths may match, but at least the run must not
	// be byte-identical to the seeded RNG draws. We settle for the runs
	// simply succeeding — seed sensitivity is covered in internal/sim.
}

func TestFigure3Deterministic(t *testing.T) {
	cfg := DefaultFigure3Config()
	cfg.StreamSize = 4 << 20
	a := RunFigure3(cfg, topo.ARPPath)
	b := RunFigure3(cfg, topo.ARPPath)
	if len(a.Failures) != len(b.Failures) {
		t.Fatal("failure counts differ")
	}
	for i := range a.Failures {
		if a.Failures[i] != b.Failures[i] {
			t.Fatalf("failure %d diverged: %+v vs %+v", i, a.Failures[i], b.Failures[i])
		}
	}
	if a.TransferTime != b.TransferTime {
		t.Fatalf("transfer times diverged: %v vs %v", a.TransferTime, b.TransferTime)
	}
	if a.Report.Received != b.Report.Received || a.Report.TotalStall != b.Report.TotalStall {
		t.Fatal("stream reports diverged")
	}
}

func TestT2Deterministic(t *testing.T) {
	a := RunT2Load(7, topo.ARPPath)
	b := RunT2Load(7, topo.ARPPath)
	if a.UsedLinks != b.UsedLinks || a.Jain != b.Jain ||
		a.Delivered != b.Delivered || a.MaxBusy != b.MaxBusy {
		t.Fatalf("T2 diverged: %+v vs %+v", a, b)
	}
}
