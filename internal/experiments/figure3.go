package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/host"
	"repro/internal/host/app"
	"repro/internal/layers"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/stp"
	"repro/internal/topo"
)

// FailureEvent is one injected link failure and the recovery the stream
// observed for it.
type FailureEvent struct {
	At   time.Duration
	Link string
	// RepairTime is the playback interruption attributed to this failure
	// (zero if the stream never noticed).
	RepairTime time.Duration
}

// Figure3Result is one protocol's run of the path-repair demo: host A
// streams video over HTTP to host B while links on the active path fail
// one after another (§3.2).
type Figure3Result struct {
	Protocol topo.Protocol
	Failures []FailureEvent
	Report   *app.StreamReport
	// TransferTime is connection establishment to completion.
	TransferTime time.Duration
}

// Figure3Config tunes the experiment.
type Figure3Config struct {
	Seed int64
	// StreamSize is the video size in bytes.
	StreamSize int
	// FailureTimes are when to cut the link currently carrying the
	// stream, measured from stream start.
	FailureTimes []time.Duration
	// Budget bounds the run (STP needs tens of seconds to reconverge).
	Budget time.Duration
	// STPTimers selects the baseline's timer profile.
	STPTimers stp.Timers
}

// DefaultFigure3Config mirrors the demo: a clip long enough to survive
// two failures, cut while streaming.
func DefaultFigure3Config() Figure3Config {
	return Figure3Config{
		Seed:         1,
		StreamSize:   32 << 20,
		FailureTimes: []time.Duration{50 * time.Millisecond, 150 * time.Millisecond},
		Budget:       5 * time.Minute,
		STPTimers:    stp.DefaultTimers(),
	}
}

// RunFigure3 runs the streaming-under-failures demo for one protocol.
func RunFigure3(cfg Figure3Config, proto topo.Protocol) *Figure3Result {
	opts := expOptions(proto, cfg.Seed)
	if proto == topo.STP {
		// The warm-up stays the default-timer budget on purpose: the demo
		// pulls cables against a fabric that converged on standard timing.
		*opts.STP() = cfg.STPTimers
	}
	n := topo.Figure2(opts, topo.ProfileUniform)
	defer finishNet(n)
	a, b := n.Host("A"), n.Host("B")

	res := &Figure3Result{Protocol: proto}
	scfg := app.DefaultStreamConfig()
	scfg.Size = cfg.StreamSize

	// Repair time is measured on the wire: the largest silence in stream
	// payload deliveries at the client after each failure. (The streamer's
	// stall accounting uses a human-scale threshold; ARP-Path repairs far
	// below it, which is the point of the demo.)
	meter := attachStreamMeter(n, b)

	var streamer *app.Streamer
	var finished *app.StreamReport
	start := n.Now()
	n.Engine.At(start, func() {
		streamer = app.StartStream(a, b, scfg, func(r *app.StreamReport) { finished = r })
	})

	// Schedule the successive failures: each cuts whatever link NF4 is
	// currently using toward A — i.e. the link the stream is riding,
	// exactly like pulling cables in the live demo.
	for _, ft := range cfg.FailureTimes {
		at := start + ft
		n.Engine.At(at, func() {
			l := activeUplink(n, a.MAC())
			if l == nil || !l.Up() {
				return // stream already moved or fabric exhausted
			}
			res.Failures = append(res.Failures, FailureEvent{At: n.Now(), Link: linkName(n, l)})
			meter.onFail(n.Now())
			l.SetUp(false)
		})
	}

	n.RunFor(cfg.Budget)
	if finished == nil && streamer != nil {
		finished = streamer.Report() // partial report (stream still stuck)
	}
	res.Report = finished
	if finished != nil && finished.Complete {
		res.TransferTime = finished.Finished - finished.Connected
	}
	// Attach the measured delivery gaps to the failure events. The last
	// window ends when the stream completed (afterwards silence is just
	// the stream being over, not an outage).
	end := n.Now()
	if finished != nil && finished.Complete {
		end = finished.Finished
	}
	repairs := meter.repairTimes(end)
	for i := range res.Failures {
		if i < len(repairs) {
			res.Failures[i].RepairTime = repairs[i]
		}
	}
	return res
}

// attachStreamMeter taps payload-bearing TCP-lite deliveries to client
// and returns a gapMeter fed by them.
func attachStreamMeter(n *topo.Built, client *host.Host) *gapMeter {
	meter := &gapMeter{}
	var p layers.Parser // preallocated decode, gopacket-parser style
	mac := client.MAC()
	n.Network.Tap(func(ev netsim.TapEvent) {
		if ev.Kind != netsim.TapDeliver || ev.To.Node() != netsim.Node(client) {
			return
		}
		if p.Parse(ev.Frame) == nil && p.IsStreamData(mac) {
			meter.onDeliver(ev.At)
		}
	})
	return meter
}

// gapMeter measures stream interruptions: for each failure, the largest
// silence between payload deliveries at the client in the window from the
// failure to the next failure (or the end of the run). Frames already in
// flight past the cut still drain for a moment, so "time to first
// delivery" would under-report; the largest gap is the actual playback
// interruption.
type gapMeter struct {
	failAts    []time.Duration
	deliveries []time.Duration
}

func (m *gapMeter) onFail(at time.Duration) { m.failAts = append(m.failAts, at) }

func (m *gapMeter) onDeliver(at time.Duration) { m.deliveries = append(m.deliveries, at) }

// repairTimes computes the per-failure interruption; end bounds the last
// window.
func (m *gapMeter) repairTimes(end time.Duration) []time.Duration {
	out := make([]time.Duration, len(m.failAts))
	for i, failAt := range m.failAts {
		windowEnd := end
		if i+1 < len(m.failAts) {
			windowEnd = m.failAts[i+1]
		}
		prev := failAt
		var maxGap time.Duration
		for _, d := range m.deliveries {
			if d <= failAt {
				continue
			}
			if d > windowEnd {
				break
			}
			if gap := d - prev; gap > maxGap {
				maxGap = gap
			}
			prev = d
		}
		// Silence reaching the window end (stream never recovered there).
		if gap := windowEnd - prev; gap > maxGap {
			maxGap = gap
		}
		out[i] = maxGap
	}
	return out
}

// activeUplink returns the link NF4 currently uses to reach mac (the
// stream's A-ward direction), protocol-independently.
func activeUplink(n *topo.Built, mac layers.MAC) *netsim.Link {
	br := n.Bridge("NF4")
	switch b := br.(type) {
	case *core.Bridge:
		if e, ok := b.EntryFor(mac); ok {
			return e.Port.Link()
		}
	case *stp.Bridge:
		if p, ok := b.FIB().Lookup(mac, n.Now()); ok {
			return p.Link()
		}
	}
	return nil
}

// linkName finds the topology name of l.
func linkName(n *topo.Built, l *netsim.Link) string {
	for name, cand := range n.Links {
		if cand == l {
			return name
		}
	}
	return l.String()
}

// Figure3Table renders both protocols' runs side by side.
func Figure3Table(results []*Figure3Result) *metrics.Table {
	t := metrics.NewTable("Figure 3 — video streaming A→B under successive link failures",
		"protocol", "completed", "transfer time", "failures", "repair times", "total stall", "bytes")
	for _, r := range results {
		repairs := ""
		for i, f := range r.Failures {
			if i > 0 {
				repairs += ", "
			}
			repairs += fmt.Sprintf("%s:%v", f.Link, f.RepairTime.Round(time.Microsecond))
		}
		completed := "no"
		var tt any = "-"
		if r.Report != nil && r.Report.Complete {
			completed = "yes"
			tt = r.TransferTime.Round(time.Millisecond)
		}
		received := 0
		var stall time.Duration
		if r.Report != nil {
			received = r.Report.Received
			stall = r.Report.TotalStall
		}
		t.AddRow(string(r.Protocol), completed, tt, len(r.Failures), repairs,
			stall.Round(time.Millisecond), received)
	}
	return t
}
