package experiments

import (
	"fmt"
	"time"

	"repro/internal/host"
	"repro/internal/layers"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/topo"
)

// ForwardResult reports the raw dataplane throughput of the simulator on
// the fabricbench fat-tree mesh: how many simulated unicast frames per
// wall-clock second the stack pushes once every path is established. It is
// an engineering benchmark of the reproduction itself (DESIGN.md §5), not
// a paper figure — the paper's NetFPGA forwards in hardware; this number
// tracks how close the software fabric gets per CPU.
type ForwardResult struct {
	// Frames is the number of injected data frames.
	Frames int
	// Hops is the total number of bridge forwarding decisions taken.
	Hops uint64
	// Wall is the wall-clock time spent inside the simulation.
	Wall time.Duration
	// FramesPerSec is Frames divided by Wall.
	FramesPerSec float64
	// HopsPerSec is Hops divided by Wall.
	HopsPerSec float64
}

// RunForwardBench builds the T2 fat-tree (k=4, 16 hosts), establishes
// paths between eight disjoint host pairs with one ping each, then pumps
// frames data frames round-robin across the pairs and measures the
// wall-clock forwarding rate. Protocol results are deterministic for a
// given seed; only the wall-clock figures vary between machines.
func RunForwardBench(seed int64, frames int) *ForwardResult {
	built := topo.FatTree(expOptions(topo.ARPPath, seed), 4)
	defer finishNet(built)

	type pair struct{ src, dst int }
	var pairs []pair
	for i := 1; i <= 8; i++ {
		pairs = append(pairs, pair{i, i + 8})
	}
	// Establish every pair's path (ARP + ICMP echo) before timing.
	for _, p := range pairs {
		src := built.Host(fmt.Sprintf("H%d", p.src))
		dst := built.Host(fmt.Sprintf("H%d", p.dst))
		built.Engine.At(built.Now(), func() {
			src.Ping(dst.IP(), 0, time.Second, func(host.PingResult) {})
		})
	}
	built.RunFor(2 * time.Second)

	// Pre-serialize one data frame per pair (unknown IP protocol: the
	// receiving host counts and drops it; no replies disturb the run).
	frameFor := make([][]byte, len(pairs))
	for i, p := range pairs {
		src := built.Host(fmt.Sprintf("H%d", p.src))
		dst := built.Host(fmt.Sprintf("H%d", p.dst))
		f, err := layers.Serialize(
			&layers.Ethernet{Dst: dst.MAC(), Src: src.MAC(), EtherType: layers.EtherTypeIPv4},
			&layers.IPv4{TTL: 64, Protocol: 253, Src: src.IP(), Dst: dst.IP()},
			layers.Payload(make([]byte, 64)),
		)
		if err != nil {
			panic("experiments: serialize forward frame: " + err.Error())
		}
		frameFor[i] = f
	}

	var hopsBefore uint64
	for _, br := range built.Bridges {
		hopsBefore += built.ARPPathBridge(br.Name()).Stats().Forwarded
	}

	// Resolve sender ports once; the pump loop itself must not allocate.
	senders := make([]*netsim.Port, len(pairs))
	for i, p := range pairs {
		senders[i] = built.Host(fmt.Sprintf("H%d", p.src)).Port()
	}

	start := time.Now() //fabriclint:wallclock wall-clock throughput report; event order is driven by Run, not this stamp
	for i := 0; i < frames; i++ {
		j := i % len(pairs)
		senders[j].Send(frameFor[j])
		built.Net.Network.Run()
	}
	wall := time.Since(start)

	var hops uint64
	for _, br := range built.Bridges {
		hops += built.ARPPathBridge(br.Name()).Stats().Forwarded
	}
	hops -= hopsBefore

	res := &ForwardResult{Frames: frames, Hops: hops, Wall: wall}
	if wall > 0 {
		res.FramesPerSec = float64(frames) / wall.Seconds()
		res.HopsPerSec = float64(hops) / wall.Seconds()
	}
	return res
}

// ForwardTable renders the forwarding-rate benchmark.
func ForwardTable(r *ForwardResult) *metrics.Table {
	t := metrics.NewTable("Forwarding throughput (fat-tree k=4, established paths)",
		"frames", "bridge hops", "wall", "frames/s", "hops/s")
	t.AddRow(r.Frames, r.Hops, r.Wall.Round(time.Millisecond),
		fmt.Sprintf("%.0f", r.FramesPerSec), fmt.Sprintf("%.0f", r.HopsPerSec))
	return t
}
