package experiments

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/topo"
)

// smallScale keeps the determinism gates fast: a 32-bridge fabric with a
// short traffic window and the fingerprint tap attached.
func smallScale(seed int64, shards int) ScaleConfig {
	cfg := DefaultScaleConfig(seed, shards)
	cfg.Bridges = 32
	cfg.Flows = 16
	cfg.Window = 30 * time.Millisecond
	cfg.Trace = true
	return cfg
}

// TestScaleDeterministicAcrossShards is the PR's central acceptance gate:
// the same seed must produce the identical trace fingerprint, delivery
// count, event count — and byte-identical table output — at every shard
// count.
func TestScaleDeterministicAcrossShards(t *testing.T) {
	base := RunScale(smallScale(3, 1))
	if base.Delivered == 0 || base.TraceEvents == 0 {
		t.Fatalf("degenerate base run: %+v", base)
	}
	baseTable := ScaleTable([]*ScaleResult{base}).String()
	for _, k := range []int{2, 4} {
		r := RunScale(smallScale(3, k))
		if r.Fingerprint != base.Fingerprint || r.TraceEvents != base.TraceEvents {
			t.Fatalf("shards=%d trace diverged: fp=%#x/%d events, want %#x/%d",
				k, r.Fingerprint, r.TraceEvents, base.Fingerprint, base.TraceEvents)
		}
		if r.Delivered != base.Delivered || r.Events != base.Events {
			t.Fatalf("shards=%d accounting diverged: delivered=%d events=%d, want %d/%d",
				k, r.Delivered, r.Events, base.Delivered, base.Events)
		}
		// The deterministic table must be byte-identical modulo the shard
		// column itself; compare by re-rendering the base with k patched in.
		patched := *base
		patched.Config.Shards = k
		if got := ScaleTable([]*ScaleResult{r}).String(); got != ScaleTable([]*ScaleResult{&patched}).String() {
			t.Fatalf("shards=%d table bytes diverged:\n%s\nvs\n%s", k, got, baseTable)
		}
	}
}

// TestScaleDeterministicAcrossGOMAXPROCS pins the other axis: with a
// fixed shard count, the worker scheduling (1 OS thread vs many) must not
// leak into any result.
func TestScaleDeterministicAcrossGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	one := RunScale(smallScale(5, 4))
	runtime.GOMAXPROCS(4)
	many := RunScale(smallScale(5, 4))
	runtime.GOMAXPROCS(prev)
	if one.Fingerprint != many.Fingerprint || one.TraceEvents != many.TraceEvents ||
		one.Delivered != many.Delivered || one.Events != many.Events {
		t.Fatalf("GOMAXPROCS changed the run: %+v vs %+v", one, many)
	}
}

// TestScaleBatchedUnbatchedFuzz is the workload-level differential gate
// for the batched hot path: across a seed sweep, the full scale workload
// (synchronized CBR flows — the worst case for same-timestamp key
// windows) must produce byte-identical fingerprints on the unbatched
// reference engine, the batched single engine, and the batched sharded
// fabric.
func TestScaleBatchedUnbatchedFuzz(t *testing.T) {
	for seed := int64(11); seed <= 15; seed++ {
		prev := sim.SetDefaultBatched(false)
		ref := RunScale(smallScale(seed, 1))
		sim.SetDefaultBatched(true)
		batched1 := RunScale(smallScale(seed, 1))
		batched4 := RunScale(smallScale(seed, 4))
		sim.SetDefaultBatched(prev)
		if ref.Delivered == 0 || ref.TraceEvents == 0 {
			t.Fatalf("seed %d: degenerate reference run: %+v", seed, ref)
		}
		for name, r := range map[string]*ScaleResult{"batched/1": batched1, "batched/4": batched4} {
			if r.Fingerprint != ref.Fingerprint || r.TraceEvents != ref.TraceEvents ||
				r.Delivered != ref.Delivered || r.Events != ref.Events {
				t.Fatalf("seed %d: %s diverged from unbatched reference: fp=%#x/%d delivered=%d events=%d, want fp=%#x/%d delivered=%d events=%d",
					seed, name, r.Fingerprint, r.TraceEvents, r.Delivered, r.Events,
					ref.Fingerprint, ref.TraceEvents, ref.Delivered, ref.Events)
			}
		}
	}
}

// TestExperimentsShardInvariant runs paper experiments through the global
// -shards plumbing and requires byte-identical table output: the sharded
// engine must be invisible in every figure/table artifact.
func TestExperimentsShardInvariant(t *testing.T) {
	render := func() []string {
		return []string{
			RunFigure1(9).Table().String(),
			T1Table(RunT1Properties(9, 3)).String(),
			T5Table(RunT5LockWindow(9, []time.Duration{time.Millisecond, 20 * time.Millisecond})).String(),
		}
	}
	Shards = 1
	single := render()
	Shards = 4
	sharded := render()
	Shards = 1
	for i := range single {
		if single[i] != sharded[i] {
			t.Fatalf("table %d diverged between shards=1 and shards=4:\n%s\nvs\n%s", i, single[i], sharded[i])
		}
	}
	_ = topo.ARPPath
}
