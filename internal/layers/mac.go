package layers

import (
	"encoding/binary"
	"fmt"
)

// MAC is a 48-bit IEEE 802 MAC address. Being an array, it is comparable
// and usable as a map key, which the bridges' forwarding tables rely on
// (same rationale as gopacket's fixed-size Endpoint).
type MAC [6]byte

// Well-known addresses.
var (
	// BroadcastMAC is the all-ones broadcast address.
	BroadcastMAC = MAC{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}
	// ZeroMAC is the unset address.
	ZeroMAC = MAC{}
	// BPDUMulticast is the 802.1D bridge group address BPDUs are sent to.
	BPDUMulticast = MAC{0x01, 0x80, 0xC2, 0x00, 0x00, 0x00}
	// PathCtlMulticast is the reserved multicast address ARP-Path bridges
	// use for HELLO neighbour discovery. Like BPDUs, frames to this address
	// are consumed by bridges and never forwarded, so hosts stay untouched.
	PathCtlMulticast = MAC{0x01, 0x80, 0xC2, 0x00, 0x0A, 0x70}
)

// String formats the address in the canonical aa:bb:cc:dd:ee:ff form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsBroadcast reports whether m is the all-ones broadcast address.
func (m MAC) IsBroadcast() bool { return m == BroadcastMAC }

// IsMulticast reports whether the group bit (LSB of the first octet) is set.
// Broadcast is a multicast address.
func (m MAC) IsMulticast() bool { return m[0]&0x01 != 0 }

// IsUnicast reports whether m addresses a single station.
func (m MAC) IsUnicast() bool { return !m.IsMulticast() }

// IsZero reports whether m is the unset address.
func (m MAC) IsZero() bool { return m == ZeroMAC }

// Uint64 returns the address as a 64-bit integer (upper 16 bits zero),
// useful for compact logging and bridge-ID construction.
func (m MAC) Uint64() uint64 {
	var b [8]byte
	copy(b[2:], m[:])
	return binary.BigEndian.Uint64(b[:])
}

// KeyIsMulticast reports whether a uint64-packed MAC (MAC.Uint64) has the
// I/G multicast bit set — bit 40, the LSB of the first octet in the
// big-endian packing. The bridges' packed-key tables use this to reject
// invalid source addresses without unpacking.
func KeyIsMulticast(key uint64) bool { return key>>40&1 != 0 }

// MACFromUint64 builds an address from the low 48 bits of v.
func MACFromUint64(v uint64) MAC {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	var m MAC
	copy(m[:], b[2:])
	return m
}

// HostMAC returns the locally-administered unicast address assigned to the
// n-th simulated host (02:00:00:xx:xx:xx).
func HostMAC(n int) MAC {
	return MAC{0x02, 0x00, 0x00, byte(n >> 16), byte(n >> 8), byte(n)}
}

// BridgeMAC returns the locally-administered unicast address assigned to
// the n-th simulated bridge (02:42:42:xx:xx:xx). Bridges source PathFail
// frames and HELLOs from this address.
func BridgeMAC(n int) MAC {
	return MAC{0x02, 0x42, 0x42, byte(n >> 16), byte(n >> 8), byte(n)}
}

// ParseMAC parses the aa:bb:cc:dd:ee:ff (or aa-bb-...) form.
func ParseMAC(s string) (MAC, error) {
	var m MAC
	if len(s) != 17 {
		return m, fmt.Errorf("layers: bad MAC %q", s)
	}
	for i := 0; i < 6; i++ {
		hi, ok1 := fromHex(s[i*3])
		lo, ok2 := fromHex(s[i*3+1])
		if !ok1 || !ok2 {
			return MAC{}, fmt.Errorf("layers: bad MAC %q", s)
		}
		m[i] = hi<<4 | lo
		if i < 5 && s[i*3+2] != ':' && s[i*3+2] != '-' {
			return MAC{}, fmt.Errorf("layers: bad MAC %q", s)
		}
	}
	return m, nil
}

func fromHex(c byte) (byte, bool) {
	switch {
	case '0' <= c && c <= '9':
		return c - '0', true
	case 'a' <= c && c <= 'f':
		return c - 'a' + 10, true
	case 'A' <= c && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// Addr4 is an IPv4 address. Comparable, map-key friendly.
type Addr4 [4]byte

// String formats the address in dotted-quad form.
func (a Addr4) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// IsZero reports whether a is 0.0.0.0.
func (a Addr4) IsZero() bool { return a == Addr4{} }

// IsBroadcast reports whether a is 255.255.255.255.
func (a Addr4) IsBroadcast() bool { return a == Addr4{255, 255, 255, 255} }

// HostIP returns the address 10.0.x.y assigned to the n-th simulated host.
func HostIP(n int) Addr4 {
	return Addr4{10, 0, byte(n >> 8), byte(n)}
}

// ParseAddr4 parses dotted-quad form.
func ParseAddr4(s string) (Addr4, error) {
	var a Addr4
	part, idx := 0, 0
	seen := false
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '.' {
			if !seen || idx > 3 {
				return Addr4{}, fmt.Errorf("layers: bad IPv4 %q", s)
			}
			a[idx] = byte(part)
			idx++
			part, seen = 0, false
			continue
		}
		c := s[i]
		if c < '0' || c > '9' {
			return Addr4{}, fmt.Errorf("layers: bad IPv4 %q", s)
		}
		part = part*10 + int(c-'0')
		if part > 255 {
			return Addr4{}, fmt.Errorf("layers: bad IPv4 %q", s)
		}
		seen = true
	}
	if idx != 4 {
		return Addr4{}, fmt.Errorf("layers: bad IPv4 %q", s)
	}
	return a, nil
}
