package layers

import "encoding/binary"

// ICMPv4 message types carried by the simulated hosts.
const (
	ICMPEchoReply   uint8 = 0
	ICMPEchoRequest uint8 = 8
)

// icmpEchoLen is the fixed part of an echo message.
const icmpEchoLen = 8

// ICMPEcho is an ICMPv4 echo request/reply (RFC 792), the workload of the
// Figure 2 latency comparison.
type ICMPEcho struct {
	Type     uint8 // ICMPEchoRequest or ICMPEchoReply
	Checksum uint16
	Ident    uint16
	Seq      uint16

	payload []byte
}

// LayerName implements SerializableLayer and DecodingLayer.
func (*ICMPEcho) LayerName() string { return "ICMPEcho" }

// Payload returns the echo data from the last decode.
func (ic *ICMPEcho) Payload() []byte { return ic.payload }

// DecodeFromBytes resets ic from data and verifies the checksum.
func (ic *ICMPEcho) DecodeFromBytes(data []byte) error {
	if len(data) < icmpEchoLen {
		return ErrTruncated
	}
	if t := data[0]; t != ICMPEchoRequest && t != ICMPEchoReply {
		return ErrBadVersion
	}
	if data[1] != 0 {
		return ErrBadVersion // echo code must be 0
	}
	if Checksum(data) != 0 {
		return ErrBadChecksum
	}
	ic.Type = data[0]
	ic.Checksum = binary.BigEndian.Uint16(data[2:4])
	ic.Ident = binary.BigEndian.Uint16(data[4:6])
	ic.Seq = binary.BigEndian.Uint16(data[6:8])
	ic.payload = data[icmpEchoLen:]
	return nil
}

// SerializeTo prepends the echo header, computing the checksum over the
// message when requested.
func (ic *ICMPEcho) SerializeTo(b *SerializeBuffer, opts SerializeOptions) error {
	h := b.PrependBytes(icmpEchoLen)
	h[0] = ic.Type
	h[1] = 0
	binary.BigEndian.PutUint16(h[2:4], 0)
	binary.BigEndian.PutUint16(h[4:6], ic.Ident)
	binary.BigEndian.PutUint16(h[6:8], ic.Seq)
	if opts.ComputeChecksums {
		ic.Checksum = Checksum(b.Bytes())
	}
	binary.BigEndian.PutUint16(h[2:4], ic.Checksum)
	return nil
}
