package layers

import "encoding/binary"

// IP protocol numbers carried in this repository.
const (
	IPProtoICMP    = 1
	IPProtoTCPLite = 6 // TCP's number; our TCP-lite occupies its slot
	IPProtoUDP     = 17
)

// ipv4MinLen is the header length without options.
const ipv4MinLen = 20

// IPv4 is an IPv4 header (RFC 791) without options support; the simulated
// hosts never emit options, and decoding rejects them explicitly rather
// than misparsing.
type IPv4 struct {
	TOS      uint8
	Length   uint16 // total length; fixed up when FixLengths is set
	ID       uint16
	Flags    uint8  // upper 3 bits of the fragment word (DF=0b010)
	FragOff  uint16 // 13-bit fragment offset in 8-byte units
	TTL      uint8
	Protocol uint8
	Checksum uint16 // fixed up when ComputeChecksums is set
	Src, Dst Addr4

	payload []byte
}

// LayerName implements SerializableLayer and DecodingLayer.
func (*IPv4) LayerName() string { return "IPv4" }

// Payload returns the bytes after the header from the last decode,
// truncated to the header's Length field (stripping Ethernet padding).
func (ip *IPv4) Payload() []byte { return ip.payload }

// DecodeFromBytes resets ip from data and verifies the header checksum.
func (ip *IPv4) DecodeFromBytes(data []byte) error {
	if len(data) < ipv4MinLen {
		return ErrTruncated
	}
	if data[0]>>4 != 4 {
		return ErrBadVersion
	}
	ihl := int(data[0]&0x0F) * 4
	if ihl != ipv4MinLen {
		return ErrBadVersion // options unsupported
	}
	if Checksum(data[:ihl]) != 0 {
		return ErrBadChecksum
	}
	ip.TOS = data[1]
	ip.Length = binary.BigEndian.Uint16(data[2:4])
	ip.ID = binary.BigEndian.Uint16(data[4:6])
	frag := binary.BigEndian.Uint16(data[6:8])
	ip.Flags = uint8(frag >> 13)
	ip.FragOff = frag & 0x1FFF
	ip.TTL = data[8]
	ip.Protocol = data[9]
	ip.Checksum = binary.BigEndian.Uint16(data[10:12])
	copy(ip.Src[:], data[12:16])
	copy(ip.Dst[:], data[16:20])
	if int(ip.Length) < ihl || int(ip.Length) > len(data) {
		return ErrTruncated
	}
	ip.payload = data[ihl:ip.Length]
	return nil
}

// SerializeTo prepends the 20-byte header, fixing Length and Checksum per
// opts.
func (ip *IPv4) SerializeTo(b *SerializeBuffer, opts SerializeOptions) error {
	if opts.FixLengths {
		ip.Length = uint16(ipv4MinLen + b.Len())
	}
	h := b.PrependBytes(ipv4MinLen)
	h[0] = 4<<4 | ipv4MinLen/4
	h[1] = ip.TOS
	binary.BigEndian.PutUint16(h[2:4], ip.Length)
	binary.BigEndian.PutUint16(h[4:6], ip.ID)
	binary.BigEndian.PutUint16(h[6:8], uint16(ip.Flags)<<13|ip.FragOff&0x1FFF)
	h[8] = ip.TTL
	h[9] = ip.Protocol
	binary.BigEndian.PutUint16(h[10:12], 0)
	copy(h[12:16], ip.Src[:])
	copy(h[16:20], ip.Dst[:])
	if opts.ComputeChecksums {
		ip.Checksum = Checksum(h)
	}
	binary.BigEndian.PutUint16(h[10:12], ip.Checksum)
	return nil
}

// sum16 accumulates data as big-endian 16-bit words onto sum (RFC 1071,
// no folding). The 8-byte strides read four words per load; since the sum
// is a plain integer total — folding happens only at the end — the result
// is bit-identical to the byte-pair loop. Overflow needs 64 KiB of 0xFFFF
// words to threaten uint32, far beyond any frame here.
func sum16(data []byte, sum uint32) uint32 {
	for len(data) >= 8 {
		w := binary.BigEndian.Uint64(data)
		sum += uint32(w>>48) + uint32(w>>32)&0xFFFF + uint32(w>>16)&0xFFFF + uint32(w)&0xFFFF
		data = data[8:]
	}
	for len(data) >= 2 {
		sum += uint32(data[0])<<8 | uint32(data[1])
		data = data[2:]
	}
	if len(data) == 1 {
		sum += uint32(data[0]) << 8
	}
	return sum
}

// Checksum computes the RFC 1071 Internet checksum of data.
func Checksum(data []byte) uint16 {
	sum := sum16(data, 0)
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}

// pseudoHeaderSum folds an IPv4 pseudo-header (RFC 768/793) into a partial
// sum for transport checksums.
func pseudoHeaderSum(src, dst Addr4, proto uint8, length int) uint32 {
	var sum uint32
	sum += uint32(src[0])<<8 | uint32(src[1])
	sum += uint32(src[2])<<8 | uint32(src[3])
	sum += uint32(dst[0])<<8 | uint32(dst[1])
	sum += uint32(dst[2])<<8 | uint32(dst[3])
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}

// transportChecksum computes a transport checksum over seg with the
// pseudo-header for src/dst/proto.
func transportChecksum(seg []byte, src, dst Addr4, proto uint8) uint16 {
	sum := sum16(seg, pseudoHeaderSum(src, dst, proto, len(seg)))
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}
