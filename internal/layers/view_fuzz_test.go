package layers

import (
	"bytes"
	"testing"
)

// FuzzFrameViewAgreesWithDecoder feeds arbitrary bytes to the parse-once
// FrameView and cross-checks every field against the full codec stack
// (Ethernet/ARP/PathCtl decoders and the Parser). The two paths are
// written independently — the view for the bridge fast path, the decoders
// for hosts and tools — so any disagreement is a real dataplane bug, and
// neither side may ever panic on hostile input.
func FuzzFrameViewAgreesWithDecoder(f *testing.F) {
	seed := func(ls ...SerializableLayer) []byte {
		frame, err := Serialize(ls...)
		if err != nil {
			f.Fatal(err)
		}
		return frame
	}
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x02, 0x03})
	f.Add(seed(
		&Ethernet{Dst: BroadcastMAC, Src: HostMAC(1), EtherType: EtherTypeARP},
		&ARP{Operation: ARPRequest, SenderHW: HostMAC(1), SenderIP: HostIP(1), TargetIP: HostIP(2)},
	))
	f.Add(seed(
		&Ethernet{Dst: HostMAC(2), Src: HostMAC(1), EtherType: EtherTypeARP},
		&ARP{Operation: ARPReply, SenderHW: HostMAC(1), SenderIP: HostIP(1), TargetHW: HostMAC(2), TargetIP: HostIP(2)},
	))
	f.Add(seed(
		&Ethernet{Dst: PathCtlMulticast, Src: BridgeMAC(3), EtherType: EtherTypePathCtl},
		&PathCtl{Type: PathCtlHello, BridgeID: 3},
	))
	f.Add(seed(
		&Ethernet{Dst: BroadcastMAC, Src: HostMAC(1), EtherType: EtherTypePathCtl},
		&PathCtl{Type: PathCtlRequest, BridgeID: 7, Src: HostMAC(1), Dst: HostMAC(2), Nonce: 0xDEADBEEF},
	))
	f.Add(seed(
		&Ethernet{Dst: HostMAC(2), Src: HostMAC(1), EtherType: EtherTypeIPv4},
		&IPv4{TTL: 64, Protocol: IPProtoUDP, Src: HostIP(1), Dst: HostIP(2)},
		&UDP{SrcPort: 9, DstPort: 9},
		Payload("fuzz"),
	))
	f.Add(seed(
		&Ethernet{Dst: HostMAC(2), Src: HostMAC(1), EtherType: EtherTypeIPv4},
		&IPv4{TTL: 64, Protocol: IPProtoTCPLite, Src: HostIP(1), Dst: HostIP(2)},
		&TCPLite{SrcPort: 3000, DstPort: 80, Seq: 1, Flags: TCPFlagSYN, Window: 65535,
			SrcIP: HostIP(1), DstIP: HostIP(2)},
	))

	f.Fuzz(func(t *testing.T, data []byte) {
		var v FrameView
		v.Decode(data) // must never panic

		var eth Ethernet
		ethErr := eth.DecodeFromBytes(data)
		if v.OK != (ethErr == nil) {
			t.Fatalf("view.OK=%v, Ethernet decoder err=%v", v.OK, ethErr)
		}
		if !v.OK {
			if v.HasARP || v.HasCtl || v.HasIP || v.HasTCP || v.SrcKey != 0 || v.DstKey != 0 {
				t.Fatalf("failed view carries fields: %+v", v)
			}
			return
		}
		if v.Dst != eth.Dst || v.Src != eth.Src || v.EtherType != eth.EtherType {
			t.Fatalf("view header %v/%v/%v, decoder %v/%v/%v", v.Dst, v.Src, v.EtherType, eth.Dst, eth.Src, eth.EtherType)
		}
		if v.SrcKey != eth.Src.Uint64() || v.DstKey != eth.Dst.Uint64() {
			t.Fatalf("packed keys disagree with MAC.Uint64")
		}
		if MACFromUint64(v.SrcKey) != eth.Src || MACFromUint64(v.DstKey) != eth.Dst {
			t.Fatalf("packed keys do not round-trip")
		}

		var arp ARP
		wantARP := eth.EtherType == EtherTypeARP && arp.DecodeFromBytes(eth.Payload()) == nil
		if v.HasARP != wantARP {
			t.Fatalf("HasARP=%v, decoder says %v", v.HasARP, wantARP)
		}
		if wantARP && v.ARP != arp {
			t.Fatalf("ARP fields diverge: view %+v, decoder %+v", v.ARP, arp)
		}

		var ctl PathCtl
		wantCtl := eth.EtherType == EtherTypePathCtl && ctl.DecodeFromBytes(eth.Payload()) == nil
		if v.HasCtl != wantCtl {
			t.Fatalf("HasCtl=%v, decoder says %v", v.HasCtl, wantCtl)
		}
		if wantCtl && v.Ctl != ctl {
			t.Fatalf("PathCtl fields diverge: view %+v, decoder %+v", v.Ctl, ctl)
		}

		var ip IPv4
		wantIP := eth.EtherType == EtherTypeIPv4 && ip.DecodeFromBytes(eth.Payload()) == nil
		if v.HasIP != wantIP {
			t.Fatalf("HasIP=%v, decoder says %v", v.HasIP, wantIP)
		}
		if wantIP && (v.IPSrc != ip.Src || v.IPDst != ip.Dst || v.IPProto != ip.Protocol) {
			t.Fatalf("IPv4 fields diverge: view %v->%v/%d, decoder %v->%v/%d",
				v.IPSrc, v.IPDst, v.IPProto, ip.Src, ip.Dst, ip.Protocol)
		}
		var tcp TCPLite
		wantTCP := wantIP && ip.Protocol == IPProtoTCPLite && tcp.DecodeFromBytes(ip.Payload()) == nil
		if v.HasTCP != wantTCP {
			t.Fatalf("HasTCP=%v, decoder says %v", v.HasTCP, wantTCP)
		}
		if wantTCP && (v.TCPSrcPort != tcp.SrcPort || v.TCPDstPort != tcp.DstPort || v.TCPFlags != tcp.Flags) {
			t.Fatalf("TCP fields diverge: view %d->%d/%#x, decoder %d->%d/%#x",
				v.TCPSrcPort, v.TCPDstPort, v.TCPFlags, tcp.SrcPort, tcp.DstPort, tcp.Flags)
		}

		// The Parser (gopacket-style full stack) must agree on the layers
		// the view models, and must not panic while going deeper.
		var p Parser
		if err := p.Parse(data); err != nil {
			t.Fatalf("view.OK but Parser rejects Ethernet: %v", err)
		}
		if p.Has(LayerARP) != v.HasARP {
			t.Fatalf("Parser ARP=%v, view=%v", p.Has(LayerARP), v.HasARP)
		}
		if p.Has(LayerPathCtl) != v.HasCtl {
			t.Fatalf("Parser PathCtl=%v, view=%v", p.Has(LayerPathCtl), v.HasCtl)
		}
		if v.HasARP && p.ARP != v.ARP {
			t.Fatalf("Parser ARP fields diverge from view")
		}
		if v.HasCtl && p.Ctl != v.Ctl {
			t.Fatalf("Parser PathCtl fields diverge from view")
		}

		// The convenience header peekers agree too.
		if FrameDst(data) != eth.Dst || FrameEtherType(data) != eth.EtherType {
			t.Fatalf("FrameDst/FrameEtherType disagree with decoder")
		}
		if !bytes.Equal(eth.Payload(), data[EthernetHeaderLen:]) {
			t.Fatalf("Ethernet payload does not alias the frame tail")
		}
	})
}
