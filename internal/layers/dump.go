package layers

import (
	"fmt"
	"strings"
)

// Summarize renders a one-line human-readable description of a raw frame,
// decoding as many layers as it recognizes. It is the repository's
// LayerString equivalent, used by traces and the -trace flags of the demo
// binaries. Undecodable content degrades gracefully to a byte count.
func Summarize(frame []byte) string {
	var sb strings.Builder
	var eth Ethernet
	if err := eth.DecodeFromBytes(frame); err != nil {
		return fmt.Sprintf("malformed frame (%d bytes)", len(frame))
	}
	fmt.Fprintf(&sb, "%s > %s %s", eth.Src, eth.Dst, eth.EtherType)
	body := eth.Payload()
	switch eth.EtherType {
	case EtherTypeARP:
		var a ARP
		if a.DecodeFromBytes(body) == nil {
			if a.Operation == ARPRequest {
				fmt.Fprintf(&sb, " who-has %s tell %s(%s)", a.TargetIP, a.SenderIP, a.SenderHW)
			} else {
				fmt.Fprintf(&sb, " %s is-at %s", a.SenderIP, a.SenderHW)
			}
		}
	case EtherTypePathCtl:
		var p PathCtl
		if p.DecodeFromBytes(body) == nil {
			fmt.Fprintf(&sb, " %s src=%s dst=%s nonce=%d", p.Type, p.Src, p.Dst, p.Nonce)
		}
	case EtherTypeBPDU:
		var b BPDU
		if b.DecodeFromBytes(body) == nil {
			if b.Type == BPDUTypeTCN {
				sb.WriteString(" TCN")
			} else {
				fmt.Fprintf(&sb, " root=%016x cost=%d sender=%016x age=%v",
					uint64(b.RootID), b.RootCost, uint64(b.SenderID), b.MessageAge)
			}
		}
	case EtherTypeIPv4:
		var ip IPv4
		if ip.DecodeFromBytes(body) != nil {
			break
		}
		fmt.Fprintf(&sb, " %s > %s", ip.Src, ip.Dst)
		switch ip.Protocol {
		case IPProtoICMP:
			var ic ICMPEcho
			if ic.DecodeFromBytes(ip.Payload()) == nil {
				kind := "echo-request"
				if ic.Type == ICMPEchoReply {
					kind = "echo-reply"
				}
				fmt.Fprintf(&sb, " %s id=%d seq=%d", kind, ic.Ident, ic.Seq)
			}
		case IPProtoUDP:
			var u UDP
			if u.DecodeFromBytes(ip.Payload()) == nil {
				fmt.Fprintf(&sb, " udp %d>%d len=%d", u.SrcPort, u.DstPort, len(u.Payload()))
			}
		case IPProtoTCPLite:
			var t TCPLite
			if t.DecodeFromBytes(ip.Payload()) == nil {
				fmt.Fprintf(&sb, " tcpl %d>%d [%s] seq=%d ack=%d len=%d",
					t.SrcPort, t.DstPort, t.FlagString(), t.Seq, t.Ack, len(t.Payload()))
			}
		default:
			fmt.Fprintf(&sb, " proto=%d", ip.Protocol)
		}
	}
	return sb.String()
}
