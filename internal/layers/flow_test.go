package layers

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEndpointKindsAndStrings(t *testing.T) {
	m := MACEndpoint(HostMAC(3))
	if m.Kind() != EndpointMAC || m.String() != HostMAC(3).String() {
		t.Fatalf("MAC endpoint: %v %q", m.Kind(), m.String())
	}
	ip := IPv4Endpoint(HostIP(3))
	if ip.Kind() != EndpointIPv4 || ip.String() != "10.0.0.3" {
		t.Fatalf("IPv4 endpoint: %v %q", ip.Kind(), ip.String())
	}
	p := PortEndpoint(8080)
	if p.Kind() != EndpointPort || p.String() != "8080" {
		t.Fatalf("port endpoint: %v %q", p.Kind(), p.String())
	}
	var zero Endpoint
	if zero.Kind() != EndpointInvalid || zero.String() != "invalid" {
		t.Fatal("zero endpoint not invalid")
	}
	for k, want := range map[EndpointKind]string{
		EndpointMAC: "MAC", EndpointIPv4: "IPv4", EndpointPort: "Port", EndpointInvalid: "invalid",
	} {
		if k.String() != want {
			t.Fatalf("%d.String() = %q", k, k.String())
		}
	}
}

func TestEndpointsAsMapKeys(t *testing.T) {
	m := map[Endpoint]int{}
	m[MACEndpoint(HostMAC(1))] = 1
	m[MACEndpoint(HostMAC(1))] = 2 // same key
	m[IPv4Endpoint(HostIP(1))] = 3 // different kind, different key
	if len(m) != 2 || m[MACEndpoint(HostMAC(1))] != 2 {
		t.Fatalf("map semantics broken: %v", m)
	}
}

func TestNewFlowValidation(t *testing.T) {
	if _, err := NewFlow(MACEndpoint(HostMAC(1)), IPv4Endpoint(HostIP(2))); err == nil {
		t.Fatal("mixed-kind flow accepted")
	}
	if _, err := NewFlow(Endpoint{}, Endpoint{}); err == nil {
		t.Fatal("invalid flow accepted")
	}
	f, err := NewFlow(MACEndpoint(HostMAC(1)), MACEndpoint(HostMAC(2)))
	if err != nil || f.Src() != MACEndpoint(HostMAC(1)) || f.Dst() != MACEndpoint(HostMAC(2)) {
		t.Fatalf("flow construction: %v %v", f, err)
	}
}

func TestFlowReverseAndString(t *testing.T) {
	f := IPv4Flow(HostIP(1), HostIP(2))
	r := f.Reverse()
	if r.Src() != f.Dst() || r.Dst() != f.Src() {
		t.Fatal("reverse broken")
	}
	if f.String() != "10.0.0.1->10.0.0.2" {
		t.Fatalf("String() = %q", f.String())
	}
	if f == r {
		t.Fatal("flow and reverse compare equal")
	}
	if f != IPv4Flow(HostIP(1), HostIP(2)) {
		t.Fatal("equal flows do not compare equal")
	}
}

func TestFlowFastHashSymmetric(t *testing.T) {
	f := MACFlow(HostMAC(1), HostMAC(2))
	if f.FastHash() != f.Reverse().FastHash() {
		t.Fatal("FastHash not symmetric")
	}
	g := MACFlow(HostMAC(1), HostMAC(3))
	if f.FastHash() == g.FastHash() {
		t.Fatal("distinct flows collide (unlucky but deterministic — pick new test data)")
	}
}

// Property: flow hash symmetry holds for arbitrary addresses, and the
// hash is invariant under double reversal.
func TestQuickFlowHashSymmetry(t *testing.T) {
	f := func(a, b MAC) bool {
		fl := MACFlow(a, b)
		return fl.FastHash() == fl.Reverse().FastHash() && fl.Reverse().Reverse() == fl
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(31))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestParserFlowExtraction(t *testing.T) {
	raw, err := Serialize(
		&Ethernet{Dst: HostMAC(2), Src: HostMAC(1), EtherType: EtherTypeIPv4},
		&IPv4{TTL: 64, Protocol: IPProtoUDP, Src: HostIP(1), Dst: HostIP(2)},
		&UDP{SrcPort: 1, DstPort: 2, SrcIP: HostIP(1), DstIP: HostIP(2)},
	)
	if err != nil {
		t.Fatal(err)
	}
	var p Parser
	if err := p.Parse(raw); err != nil {
		t.Fatal(err)
	}
	if p.LinkFlow() != MACFlow(HostMAC(1), HostMAC(2)) {
		t.Fatalf("LinkFlow = %v", p.LinkFlow())
	}
	if p.NetworkFlow() != IPv4Flow(HostIP(1), HostIP(2)) {
		t.Fatalf("NetworkFlow = %v", p.NetworkFlow())
	}
}

func BenchmarkFlowFastHash(b *testing.B) {
	f := MACFlow(HostMAC(1), HostMAC(2))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = f.FastHash()
	}
}
