package layers

import "testing"

func TestFrameViewDecodesARP(t *testing.T) {
	frame, err := Serialize(
		&Ethernet{Dst: BroadcastMAC, Src: HostMAC(1), EtherType: EtherTypeARP},
		&ARP{Operation: ARPRequest, SenderHW: HostMAC(1), SenderIP: HostIP(1), TargetIP: HostIP(2)},
	)
	if err != nil {
		t.Fatal(err)
	}
	var v FrameView
	v.Decode(frame)
	if !v.OK || !v.HasARP || v.HasCtl {
		t.Fatalf("view flags: %+v", v)
	}
	if v.ARP.Operation != ARPRequest || v.ARP.SenderIP != HostIP(1) || v.ARP.TargetIP != HostIP(2) {
		t.Fatalf("ARP fields: %+v", v.ARP)
	}
	if v.SrcKey != HostMAC(1).Uint64() || v.DstKey != BroadcastMAC.Uint64() {
		t.Fatal("packed keys wrong")
	}
	if !v.IsMulticast() {
		t.Fatal("broadcast not classified multicast")
	}
}

func TestFrameViewDecodesPathCtl(t *testing.T) {
	frame, err := Serialize(
		&Ethernet{Dst: PathCtlMulticast, Src: BridgeMAC(3), EtherType: EtherTypePathCtl},
		&PathCtl{Type: PathCtlHello, BridgeID: 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	var v FrameView
	v.Decode(frame)
	if !v.OK || !v.HasCtl || v.HasARP {
		t.Fatalf("view flags: %+v", v)
	}
	if v.Ctl.Type != PathCtlHello || v.Ctl.BridgeID != 3 {
		t.Fatalf("Ctl fields: %+v", v.Ctl)
	}
	if !v.IsHello() {
		t.Fatal("HELLO not recognized")
	}
	// A PathFail to a unicast address is not a HELLO.
	fail, err := Serialize(
		&Ethernet{Dst: HostMAC(1), Src: BridgeMAC(3), EtherType: EtherTypePathCtl},
		&PathCtl{Type: PathCtlFail, BridgeID: 3, Src: HostMAC(1), Dst: HostMAC(2), Nonce: 42},
	)
	if err != nil {
		t.Fatal(err)
	}
	v.Decode(fail)
	if v.IsHello() {
		t.Fatal("PathFail misclassified as HELLO")
	}
	if v.Ctl.Nonce != 42 || v.Ctl.Src != HostMAC(1) || v.Ctl.Dst != HostMAC(2) {
		t.Fatalf("Ctl fields: %+v", v.Ctl)
	}
}

func TestFrameViewTruncatedAndForeign(t *testing.T) {
	var v FrameView
	v.Decode([]byte{1, 2, 3}) // shorter than an Ethernet header
	if v.OK {
		t.Fatal("truncated frame decoded")
	}

	// An IPv4 frame: Ethernet fields decode, no ARP/Ctl flags.
	frame, err := Serialize(
		&Ethernet{Dst: HostMAC(2), Src: HostMAC(1), EtherType: EtherTypeIPv4},
		&IPv4{TTL: 64, Protocol: 253, Src: HostIP(1), Dst: HostIP(2)},
		Payload([]byte{1}),
	)
	if err != nil {
		t.Fatal(err)
	}
	v.Decode(frame)
	if !v.OK || v.HasARP || v.HasCtl {
		t.Fatalf("view flags: %+v", v)
	}
	if v.EtherType != EtherTypeIPv4 {
		t.Fatalf("EtherType = %v", v.EtherType)
	}

	// A mangled ARP body: Ethernet decodes, HasARP stays false, and a
	// stale view from the previous decode must not leak through.
	bad := append([]byte(nil), frame...)
	bad[12], bad[13] = 0x08, 0x06 // claim ARP, body is IPv4 junk
	v.Decode(bad)
	if !v.OK || v.HasARP {
		t.Fatalf("mangled ARP: %+v", v)
	}
}

func TestFrameViewDecodeDoesNotAllocate(t *testing.T) {
	frame, err := Serialize(
		&Ethernet{Dst: BroadcastMAC, Src: HostMAC(1), EtherType: EtherTypeARP},
		&ARP{Operation: ARPRequest, SenderHW: HostMAC(1), SenderIP: HostIP(1), TargetIP: HostIP(2)},
	)
	if err != nil {
		t.Fatal(err)
	}
	var v FrameView
	if allocs := testing.AllocsPerRun(1000, func() { v.Decode(frame) }); allocs != 0 {
		t.Fatalf("Decode allocates %.1f/op, want 0", allocs)
	}
}

// TestFrameViewDecodesTCPTuple pins the TCP-Path fields: an IPv4/TCP-lite
// frame yields the 4-tuple and flags, IsTCPSYN classifies opening
// segments only, and the decode stays allocation-free.
func TestFrameViewDecodesTCPTuple(t *testing.T) {
	mk := func(flags uint8) []byte {
		frame, err := Serialize(
			&Ethernet{Dst: HostMAC(2), Src: HostMAC(1), EtherType: EtherTypeIPv4},
			&IPv4{TTL: 64, Protocol: IPProtoTCPLite, Src: HostIP(1), Dst: HostIP(2)},
			&TCPLite{SrcPort: 3000, DstPort: 80, Seq: 7, Flags: flags, Window: 4096,
				SrcIP: HostIP(1), DstIP: HostIP(2)},
		)
		if err != nil {
			t.Fatal(err)
		}
		return frame
	}

	var v FrameView
	v.Decode(mk(TCPFlagSYN))
	if !v.OK || !v.HasIP || !v.HasTCP {
		t.Fatalf("view flags: %+v", v)
	}
	if v.IPSrc != HostIP(1) || v.IPDst != HostIP(2) || v.IPProto != IPProtoTCPLite {
		t.Fatalf("IP fields: %+v", v)
	}
	if v.TCPSrcPort != 3000 || v.TCPDstPort != 80 || v.TCPFlags != TCPFlagSYN {
		t.Fatalf("TCP fields: %+v", v)
	}
	if !v.IsTCPSYN() {
		t.Fatal("SYN not classified as a connection opener")
	}
	v.Decode(mk(TCPFlagSYN | TCPFlagACK))
	if v.IsTCPSYN() {
		t.Fatal("SYN|ACK misclassified as a connection opener")
	}
	v.Decode(mk(TCPFlagACK))
	if v.IsTCPSYN() {
		t.Fatal("plain ACK misclassified as a connection opener")
	}

	frame := mk(TCPFlagSYN)
	if allocs := testing.AllocsPerRun(1000, func() { v.Decode(frame) }); allocs != 0 {
		t.Fatalf("TCP decode allocates %.1f/op, want 0", allocs)
	}

	// A stale TCP view must not leak into a following non-IP decode.
	arp, err := Serialize(
		&Ethernet{Dst: BroadcastMAC, Src: HostMAC(1), EtherType: EtherTypeARP},
		&ARP{Operation: ARPRequest, SenderHW: HostMAC(1), SenderIP: HostIP(1), TargetIP: HostIP(2)},
	)
	if err != nil {
		t.Fatal(err)
	}
	v.Decode(arp)
	if v.HasIP || v.HasTCP {
		t.Fatalf("stale TCP fields leaked: %+v", v)
	}
}
