package layers

import (
	"encoding/binary"
	"time"
)

// BPDU types (IEEE 802.1D-1998 §9.3).
const (
	BPDUTypeConfig uint8 = 0x00
	BPDUTypeTCN    uint8 = 0x80
)

// BPDU flag bits.
const (
	BPDUFlagTopologyChange    uint8 = 0x01
	BPDUFlagTopologyChangeAck uint8 = 0x80
)

const (
	configBPDULen = 35
	tcnBPDULen    = 4
)

// BridgeID is a 802.1D bridge identifier: 16-bit priority and 48-bit MAC,
// compared as a single big-endian 64-bit value (lower wins the election).
type BridgeID uint64

// MakeBridgeID combines a priority and a bridge MAC.
func MakeBridgeID(priority uint16, mac MAC) BridgeID {
	return BridgeID(uint64(priority)<<48 | mac.Uint64())
}

// Priority extracts the priority half.
func (id BridgeID) Priority() uint16 { return uint16(id >> 48) }

// MAC extracts the address half.
func (id BridgeID) MAC() MAC { return MACFromUint64(uint64(id) & 0xFFFF_FFFF_FFFF) }

// BPDU is an 802.1D bridge protocol data unit. Real BPDUs ride LLC
// (DSAP/SSAP 0x42); we carry them under EtherTypeBPDU instead — see
// DESIGN.md for the substitution note. Field semantics follow the standard.
type BPDU struct {
	Type  uint8 // BPDUTypeConfig or BPDUTypeTCN
	Flags uint8

	// Config-BPDU fields (ignored for TCN):
	RootID   BridgeID
	RootCost uint32
	SenderID BridgeID
	PortID   uint16
	// Timer fields; the standard transmits them in 1/256 s units, and the
	// codec performs that conversion.
	MessageAge   time.Duration
	MaxAge       time.Duration
	HelloTime    time.Duration
	ForwardDelay time.Duration
}

// LayerName implements SerializableLayer and DecodingLayer.
func (*BPDU) LayerName() string { return "BPDU" }

// durTo256ths converts a duration to 1/256-second wire units.
func durTo256ths(d time.Duration) uint16 {
	return uint16(d * 256 / time.Second)
}

// durFrom256ths converts 1/256-second wire units to a duration.
func durFrom256ths(v uint16) time.Duration {
	return time.Duration(v) * time.Second / 256
}

// DecodeFromBytes resets b from data.
func (b *BPDU) DecodeFromBytes(data []byte) error {
	if len(data) < tcnBPDULen {
		return ErrTruncated
	}
	if binary.BigEndian.Uint16(data[0:2]) != 0 || data[2] != 0 {
		return ErrBadVersion // protocol ID and version must be 0 (STP)
	}
	b.Type = data[3]
	switch b.Type {
	case BPDUTypeTCN:
		*b = BPDU{Type: BPDUTypeTCN}
		return nil
	case BPDUTypeConfig:
	default:
		return ErrBadVersion
	}
	if len(data) < configBPDULen {
		return ErrTruncated
	}
	b.Flags = data[4]
	b.RootID = BridgeID(binary.BigEndian.Uint64(data[5:13]))
	b.RootCost = binary.BigEndian.Uint32(data[13:17])
	b.SenderID = BridgeID(binary.BigEndian.Uint64(data[17:25]))
	b.PortID = binary.BigEndian.Uint16(data[25:27])
	b.MessageAge = durFrom256ths(binary.BigEndian.Uint16(data[27:29]))
	b.MaxAge = durFrom256ths(binary.BigEndian.Uint16(data[29:31]))
	b.HelloTime = durFrom256ths(binary.BigEndian.Uint16(data[31:33]))
	b.ForwardDelay = durFrom256ths(binary.BigEndian.Uint16(data[33:35]))
	return nil
}

// SerializeTo prepends the BPDU.
func (b *BPDU) SerializeTo(sb *SerializeBuffer, _ SerializeOptions) error {
	if b.Type == BPDUTypeTCN {
		h := sb.PrependBytes(tcnBPDULen)
		binary.BigEndian.PutUint16(h[0:2], 0)
		h[2] = 0
		h[3] = BPDUTypeTCN
		return nil
	}
	h := sb.PrependBytes(configBPDULen)
	binary.BigEndian.PutUint16(h[0:2], 0)
	h[2] = 0
	h[3] = BPDUTypeConfig
	h[4] = b.Flags
	binary.BigEndian.PutUint64(h[5:13], uint64(b.RootID))
	binary.BigEndian.PutUint32(h[13:17], b.RootCost)
	binary.BigEndian.PutUint64(h[17:25], uint64(b.SenderID))
	binary.BigEndian.PutUint16(h[25:27], b.PortID)
	binary.BigEndian.PutUint16(h[27:29], durTo256ths(b.MessageAge))
	binary.BigEndian.PutUint16(h[29:31], durTo256ths(b.MaxAge))
	binary.BigEndian.PutUint16(h[31:33], durTo256ths(b.HelloTime))
	binary.BigEndian.PutUint16(h[33:35], durTo256ths(b.ForwardDelay))
	return nil
}
