package layers

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustSerialize(t testing.TB, ls ...SerializableLayer) []byte {
	t.Helper()
	raw, err := Serialize(ls...)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestParserARPStack(t *testing.T) {
	raw := mustSerialize(t,
		&Ethernet{Dst: BroadcastMAC, Src: HostMAC(1), EtherType: EtherTypeARP},
		&ARP{Operation: ARPRequest, SenderHW: HostMAC(1), SenderIP: HostIP(1), TargetIP: HostIP(2)},
	)
	var p Parser
	if err := p.Parse(raw); err != nil {
		t.Fatal(err)
	}
	if !p.Has(LayerEthernet) || !p.Has(LayerARP) {
		t.Fatalf("decoded = %v", p.Decoded)
	}
	if p.ARP.TargetIP != HostIP(2) || p.Eth.Src != HostMAC(1) {
		t.Fatal("fields not populated")
	}
	if p.Truncated {
		t.Fatal("spurious truncation")
	}
}

func TestParserUDPStack(t *testing.T) {
	payload := []byte("data")
	raw := mustSerialize(t,
		&Ethernet{Dst: HostMAC(2), Src: HostMAC(1), EtherType: EtherTypeIPv4},
		&IPv4{TTL: 64, Protocol: IPProtoUDP, Src: HostIP(1), Dst: HostIP(2)},
		&UDP{SrcPort: 5, DstPort: 6, SrcIP: HostIP(1), DstIP: HostIP(2)},
		Payload(payload),
	)
	var p Parser
	if err := p.Parse(raw); err != nil {
		t.Fatal(err)
	}
	want := []LayerKind{LayerEthernet, LayerIPv4, LayerUDP, LayerPayload}
	if len(p.Decoded) != len(want) {
		t.Fatalf("decoded = %v", p.Decoded)
	}
	for i, k := range want {
		if p.Decoded[i] != k {
			t.Fatalf("decoded = %v, want %v", p.Decoded, want)
		}
	}
	if !bytes.Equal(p.Payload, payload) {
		t.Fatalf("payload = %q", p.Payload)
	}
}

func TestParserTCPStreamPredicate(t *testing.T) {
	raw := mustSerialize(t,
		&Ethernet{Dst: HostMAC(2), Src: HostMAC(1), EtherType: EtherTypeIPv4},
		&IPv4{TTL: 64, Protocol: IPProtoTCPLite, Src: HostIP(1), Dst: HostIP(2)},
		&TCPLite{SrcPort: 80, DstPort: 5000, Flags: TCPFlagACK | TCPFlagPSH, SrcIP: HostIP(1), DstIP: HostIP(2)},
		Payload([]byte("segment")),
	)
	var p Parser
	if err := p.Parse(raw); err != nil {
		t.Fatal(err)
	}
	if !p.IsStreamData(HostMAC(2)) {
		t.Fatal("stream-data predicate missed")
	}
	if p.IsStreamData(HostMAC(3)) {
		t.Fatal("stream-data predicate matched the wrong host")
	}
	// Pure ACK: no payload → not stream data.
	ack := mustSerialize(t,
		&Ethernet{Dst: HostMAC(2), Src: HostMAC(1), EtherType: EtherTypeIPv4},
		&IPv4{TTL: 64, Protocol: IPProtoTCPLite, Src: HostIP(1), Dst: HostIP(2)},
		&TCPLite{SrcPort: 80, DstPort: 5000, Flags: TCPFlagACK, SrcIP: HostIP(1), DstIP: HostIP(2)},
	)
	if err := p.Parse(ack); err != nil {
		t.Fatal(err)
	}
	if p.IsStreamData(HostMAC(2)) {
		t.Fatal("pure ACK classified as stream data")
	}
}

func TestParserTruncatedInner(t *testing.T) {
	raw := mustSerialize(t,
		&Ethernet{Dst: HostMAC(2), Src: HostMAC(1), EtherType: EtherTypeIPv4},
		Payload([]byte{0xDE, 0xAD}), // not a valid IPv4 header
	)
	var p Parser
	if err := p.Parse(raw); err != nil {
		t.Fatal(err)
	}
	if !p.Truncated {
		t.Fatal("truncation not flagged")
	}
	if !p.Has(LayerEthernet) || p.Has(LayerIPv4) {
		t.Fatalf("decoded = %v", p.Decoded)
	}
}

func TestParserBadEthernet(t *testing.T) {
	var p Parser
	if err := p.Parse([]byte{1, 2, 3}); err == nil {
		t.Fatal("bad frame accepted")
	}
}

func TestParserReuseResets(t *testing.T) {
	var p Parser
	arp := mustSerialize(t,
		&Ethernet{Dst: BroadcastMAC, Src: HostMAC(1), EtherType: EtherTypeARP},
		&ARP{Operation: ARPRequest, SenderHW: HostMAC(1), SenderIP: HostIP(1), TargetIP: HostIP(2)},
	)
	icmp := mustSerialize(t,
		&Ethernet{Dst: HostMAC(2), Src: HostMAC(1), EtherType: EtherTypeIPv4},
		&IPv4{TTL: 64, Protocol: IPProtoICMP, Src: HostIP(1), Dst: HostIP(2)},
		&ICMPEcho{Type: ICMPEchoRequest, Ident: 1, Seq: 2},
	)
	if err := p.Parse(arp); err != nil {
		t.Fatal(err)
	}
	if err := p.Parse(icmp); err != nil {
		t.Fatal(err)
	}
	if p.Has(LayerARP) {
		t.Fatal("stale ARP kind survived reuse")
	}
	if !p.Has(LayerICMPEcho) {
		t.Fatalf("decoded = %v", p.Decoded)
	}
}

func TestLayerKindStrings(t *testing.T) {
	kinds := []LayerKind{LayerEthernet, LayerARP, LayerIPv4, LayerICMPEcho,
		LayerUDP, LayerTCPLite, LayerPathCtl, LayerBPDU, LayerPayload}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || s == "Layer(?)" || seen[s] {
			t.Fatalf("bad kind string %q", s)
		}
		seen[s] = true
	}
}

// Property: the parser never panics and always starts with Ethernet when
// it succeeds.
func TestQuickParserRobust(t *testing.T) {
	f := func(data []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		var p Parser
		if err := p.Parse(data); err == nil {
			if len(p.Decoded) == 0 || p.Decoded[0] != LayerEthernet {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(21))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkParserFullStack(b *testing.B) {
	raw, err := Serialize(
		&Ethernet{Dst: HostMAC(2), Src: HostMAC(1), EtherType: EtherTypeIPv4},
		&IPv4{TTL: 64, Protocol: IPProtoTCPLite, Src: HostIP(1), Dst: HostIP(2)},
		&TCPLite{SrcPort: 80, DstPort: 5000, Flags: TCPFlagACK | TCPFlagPSH, SrcIP: HostIP(1), DstIP: HostIP(2)},
		Payload(make([]byte, 1000)),
	)
	if err != nil {
		b.Fatal(err)
	}
	var p Parser
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := p.Parse(raw); err != nil {
			b.Fatal(err)
		}
	}
}
