package layers

import "encoding/binary"

// TCP-lite flag bits.
const (
	TCPFlagSYN uint8 = 1 << 0
	TCPFlagACK uint8 = 1 << 1
	TCPFlagFIN uint8 = 1 << 2
	TCPFlagRST uint8 = 1 << 3
	TCPFlagPSH uint8 = 1 << 4
)

// tcpLiteHeaderLen is the fixed TCP-lite header length.
const tcpLiteHeaderLen = 18

// TCPLite is the segment header of the repository's simplified reliable
// transport. It keeps TCP's essential machinery — byte sequence numbers,
// cumulative ACKs, SYN/FIN handshakes, a receive window — and drops options,
// urgent data and selective acknowledgment. The Figure 3 experiment streams
// "HTTP video" over it; only ordered reliable delivery and loss-driven
// retransmission behaviour matter there (see DESIGN.md substitutions).
type TCPLite struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
	Checksum         uint16
	SrcIP, DstIP     Addr4

	payload []byte
	raw     []byte
}

// LayerName implements SerializableLayer and DecodingLayer.
func (*TCPLite) LayerName() string { return "TCPLite" }

// Payload returns the segment body from the last decode.
func (t *TCPLite) Payload() []byte { return t.payload }

// HasFlag reports whether all bits of f are set.
func (t *TCPLite) HasFlag(f uint8) bool { return t.Flags&f == f }

// DecodeFromBytes resets t from data.
func (t *TCPLite) DecodeFromBytes(data []byte) error {
	if len(data) < tcpLiteHeaderLen {
		return ErrTruncated
	}
	t.SrcPort = binary.BigEndian.Uint16(data[0:2])
	t.DstPort = binary.BigEndian.Uint16(data[2:4])
	t.Seq = binary.BigEndian.Uint32(data[4:8])
	t.Ack = binary.BigEndian.Uint32(data[8:12])
	t.Flags = data[12]
	if data[13] != 0 {
		return ErrBadVersion // reserved byte must be zero
	}
	t.Window = binary.BigEndian.Uint16(data[14:16])
	t.Checksum = binary.BigEndian.Uint16(data[16:18])
	t.raw = data
	t.payload = data[tcpLiteHeaderLen:]
	return nil
}

// VerifyChecksum checks the segment checksum with the IPv4 pseudo-header.
func (t *TCPLite) VerifyChecksum(src, dst Addr4) error {
	if transportChecksum(t.raw, src, dst, IPProtoTCPLite) != 0 {
		return ErrBadChecksum
	}
	return nil
}

// SerializeTo prepends the segment header; ComputeChecksums needs
// SrcIP/DstIP set.
func (t *TCPLite) SerializeTo(b *SerializeBuffer, opts SerializeOptions) error {
	h := b.PrependBytes(tcpLiteHeaderLen)
	binary.BigEndian.PutUint16(h[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(h[2:4], t.DstPort)
	binary.BigEndian.PutUint32(h[4:8], t.Seq)
	binary.BigEndian.PutUint32(h[8:12], t.Ack)
	h[12] = t.Flags
	h[13] = 0
	binary.BigEndian.PutUint16(h[14:16], t.Window)
	binary.BigEndian.PutUint16(h[16:18], 0)
	if opts.ComputeChecksums {
		t.Checksum = transportChecksum(b.Bytes(), t.SrcIP, t.DstIP, IPProtoTCPLite)
	}
	binary.BigEndian.PutUint16(h[16:18], t.Checksum)
	return nil
}

// FlagString renders the flag bits ("SYN|ACK").
func (t *TCPLite) FlagString() string {
	s := ""
	add := func(name string) {
		if s != "" {
			s += "|"
		}
		s += name
	}
	if t.HasFlag(TCPFlagSYN) {
		add("SYN")
	}
	if t.HasFlag(TCPFlagACK) {
		add("ACK")
	}
	if t.HasFlag(TCPFlagFIN) {
		add("FIN")
	}
	if t.HasFlag(TCPFlagRST) {
		add("RST")
	}
	if t.HasFlag(TCPFlagPSH) {
		add("PSH")
	}
	if s == "" {
		s = "none"
	}
	return s
}
