package layers

// FrameView is the parse-once decoded view of a frame: a flat struct of
// typed fields with no pointers into (or out of) the backing array. The
// simulator decodes a FrameView once when a frame enters the network and
// the view then rides along with the pooled frame buffer, so a frame
// crossing N bridges is parsed once instead of N times — every field a
// forwarding decision needs (addresses, EtherType, ARP operation, the
// full ARP-Path control message) is already broken out.
//
// The view only covers the layers bridges inspect. Hosts still run the
// full Parser/DecodeFromBytes stack on frames addressed to them; a view
// is to a Parser what a TCAM pre-classifier is to a software slow path.
type FrameView struct {
	// OK is set when the Ethernet header was present. A view with OK
	// false has no other valid field.
	OK        bool
	Dst, Src  MAC
	EtherType EtherType
	// SrcKey and DstKey are the uint64-packed addresses (MAC.Uint64),
	// precomputed because they key every bridge table lookup on the path.
	SrcKey, DstKey uint64

	// HasARP is set when the payload decoded as an Ethernet/IPv4 ARP
	// packet; ARP then holds it.
	HasARP bool
	ARP    ARP

	// HasCtl is set when the payload decoded as an ARP-Path control
	// message; Ctl then holds it.
	HasCtl bool
	Ctl    PathCtl

	// HasIP is set when the payload decoded as an options-free IPv4
	// header with a valid checksum; the address/protocol fields then
	// hold. Only the fields a forwarding decision can key on are broken
	// out — the view stays a flat, comparable struct with no slices.
	HasIP        bool
	IPSrc, IPDst Addr4
	IPProto      uint8

	// HasTCP is set when the IPv4 payload decoded as a TCP-lite segment;
	// the 4-tuple ports and flag bits then hold. TCP-Path bridges key
	// per-connection paths on (IPSrc, IPDst, TCPSrcPort, TCPDstPort).
	HasTCP                 bool
	TCPSrcPort, TCPDstPort uint16
	TCPFlags               uint8
}

// Decode resets v from frame. It never allocates; undecodable inner
// layers simply leave their Has flag clear.
//
//fabric:hotpath
func (v *FrameView) Decode(frame []byte) {
	*v = FrameView{}
	if len(frame) < EthernetHeaderLen {
		return
	}
	var eth Ethernet
	if eth.DecodeFromBytes(frame) != nil {
		return
	}
	v.OK = true
	v.Dst, v.Src, v.EtherType = eth.Dst, eth.Src, eth.EtherType
	v.SrcKey, v.DstKey = eth.Src.Uint64(), eth.Dst.Uint64()
	switch eth.EtherType {
	case EtherTypeARP:
		v.HasARP = v.ARP.DecodeFromBytes(eth.Payload()) == nil
	case EtherTypePathCtl:
		v.HasCtl = v.Ctl.DecodeFromBytes(eth.Payload()) == nil
	case EtherTypeIPv4:
		var ip IPv4
		if ip.DecodeFromBytes(eth.Payload()) != nil {
			return
		}
		v.HasIP = true
		v.IPSrc, v.IPDst, v.IPProto = ip.Src, ip.Dst, ip.Protocol
		if ip.Protocol == IPProtoTCPLite {
			var tcp TCPLite
			if tcp.DecodeFromBytes(ip.Payload()) == nil {
				v.HasTCP = true
				v.TCPSrcPort, v.TCPDstPort = tcp.SrcPort, tcp.DstPort
				v.TCPFlags = tcp.Flags
			}
		}
	}
}

// IsMulticast reports whether the frame is group-addressed (the branch
// every bridge takes first).
func (v *FrameView) IsMulticast() bool { return v.Dst.IsMulticast() }

// IsHello reports whether the frame is a HELLO on the reserved bridge
// multicast — the chassis consumes these before the protocol sees them.
func (v *FrameView) IsHello() bool {
	return v.HasCtl && v.Ctl.Type == PathCtlHello && v.Dst == PathCtlMulticast
}

// IsTCPSYN reports whether the frame is the opening segment of a TCP-lite
// connection (SYN set, ACK clear) — the frame TCP-Path floods to race a
// fresh per-connection path.
func (v *FrameView) IsTCPSYN() bool {
	return v.HasTCP && v.TCPFlags&TCPFlagSYN != 0 && v.TCPFlags&TCPFlagACK == 0
}
