package layers

// FrameView is the parse-once decoded view of a frame: a flat struct of
// typed fields with no pointers into (or out of) the backing array. The
// simulator decodes a FrameView once when a frame enters the network and
// the view then rides along with the pooled frame buffer, so a frame
// crossing N bridges is parsed once instead of N times — every field a
// forwarding decision needs (addresses, EtherType, ARP operation, the
// full ARP-Path control message) is already broken out.
//
// The view only covers the layers bridges inspect. Hosts still run the
// full Parser/DecodeFromBytes stack on frames addressed to them; a view
// is to a Parser what a TCAM pre-classifier is to a software slow path.
type FrameView struct {
	// OK is set when the Ethernet header was present. A view with OK
	// false has no other valid field.
	OK        bool
	Dst, Src  MAC
	EtherType EtherType
	// SrcKey and DstKey are the uint64-packed addresses (MAC.Uint64),
	// precomputed because they key every bridge table lookup on the path.
	SrcKey, DstKey uint64

	// HasARP is set when the payload decoded as an Ethernet/IPv4 ARP
	// packet; ARP then holds it.
	HasARP bool
	ARP    ARP

	// HasCtl is set when the payload decoded as an ARP-Path control
	// message; Ctl then holds it.
	HasCtl bool
	Ctl    PathCtl
}

// Decode resets v from frame. It never allocates; undecodable inner
// layers simply leave their Has flag clear.
func (v *FrameView) Decode(frame []byte) {
	*v = FrameView{}
	if len(frame) < EthernetHeaderLen {
		return
	}
	var eth Ethernet
	if eth.DecodeFromBytes(frame) != nil {
		return
	}
	v.OK = true
	v.Dst, v.Src, v.EtherType = eth.Dst, eth.Src, eth.EtherType
	v.SrcKey, v.DstKey = eth.Src.Uint64(), eth.Dst.Uint64()
	switch eth.EtherType {
	case EtherTypeARP:
		v.HasARP = v.ARP.DecodeFromBytes(eth.Payload()) == nil
	case EtherTypePathCtl:
		v.HasCtl = v.Ctl.DecodeFromBytes(eth.Payload()) == nil
	}
}

// IsMulticast reports whether the frame is group-addressed (the branch
// every bridge takes first).
func (v *FrameView) IsMulticast() bool { return v.Dst.IsMulticast() }

// IsHello reports whether the frame is a HELLO on the reserved bridge
// multicast — the chassis consumes these before the protocol sees them.
func (v *FrameView) IsHello() bool {
	return v.HasCtl && v.Ctl.Type == PathCtlHello && v.Dst == PathCtlMulticast
}
