package layers

import "encoding/binary"

// Ethernet is an Ethernet II header. The FCS is not carried in the byte
// representation; its wire cost is accounted for by WireBytes.
type Ethernet struct {
	Dst       MAC
	Src       MAC
	EtherType EtherType
	// payload references the bytes after the header after a decode.
	payload []byte
}

// LayerName implements SerializableLayer and DecodingLayer.
func (*Ethernet) LayerName() string { return "Ethernet" }

// DecodeFromBytes resets e from data. The payload aliases data.
func (e *Ethernet) DecodeFromBytes(data []byte) error {
	if len(data) < EthernetHeaderLen {
		return ErrTruncated
	}
	copy(e.Dst[:], data[0:6])
	copy(e.Src[:], data[6:12])
	e.EtherType = EtherType(binary.BigEndian.Uint16(data[12:14]))
	e.payload = data[EthernetHeaderLen:]
	return nil
}

// Payload returns the bytes following the Ethernet header from the last
// decode. Padding added to reach the minimum frame size is included; upper
// layers carry explicit lengths and ignore it.
func (e *Ethernet) Payload() []byte { return e.payload }

// SerializeTo prepends the header and, with FixLengths, pads the frame to
// the 60-byte minimum. Frames beyond MaxFrameLen are rejected.
func (e *Ethernet) SerializeTo(b *SerializeBuffer, opts SerializeOptions) error {
	if opts.FixLengths {
		if short := MinFrameLen - (EthernetHeaderLen + b.Len()); short > 0 {
			pad := b.AppendBytes(short)
			for i := range pad {
				pad[i] = 0
			}
		}
	}
	hdr := b.PrependBytes(EthernetHeaderLen)
	copy(hdr[0:6], e.Dst[:])
	copy(hdr[6:12], e.Src[:])
	binary.BigEndian.PutUint16(hdr[12:14], uint16(e.EtherType))
	if b.Len() > MaxFrameLen {
		return ErrFrameTooBig
	}
	return nil
}

// Fast-path accessors used by the bridge dataplane. They avoid a full
// decode (and any allocation) for the three fields every forwarding
// decision needs, in the spirit of gopacket's DecodingLayerParser.

// FrameDst returns the destination MAC of a raw frame. The frame must be at
// least EthernetHeaderLen bytes; shorter input returns the zero MAC.
func FrameDst(frame []byte) MAC {
	var m MAC
	if len(frame) >= 6 {
		copy(m[:], frame[0:6])
	}
	return m
}

// FrameSrc returns the source MAC of a raw frame.
func FrameSrc(frame []byte) MAC {
	var m MAC
	if len(frame) >= 12 {
		copy(m[:], frame[6:12])
	}
	return m
}

// FrameEtherType returns the EtherType of a raw frame, or 0 if truncated.
func FrameEtherType(frame []byte) EtherType {
	if len(frame) < EthernetHeaderLen {
		return 0
	}
	return EtherType(binary.BigEndian.Uint16(frame[12:14]))
}
