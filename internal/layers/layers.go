// Package layers implements wire codecs for every protocol this repository
// speaks: Ethernet II, ARP, IPv4, ICMPv4 echo, UDP, the TCP-lite reliable
// transport, IEEE 802.1D BPDUs, and the ARP-Path control frames (HELLO,
// PathFail, PathRequest, PathReply).
//
// The package follows the gopacket conventions: each layer is a struct whose
// DecodeFromBytes method resets it in place from a byte slice without
// allocating, and whose SerializeTo method prepends itself onto a
// SerializeBuffer so a whole packet is built innermost-layer-first. Length
// and checksum fields are fixed up during serialization when
// SerializeOptions request it.
package layers

import (
	"errors"
	"fmt"
)

// EtherType identifies the payload protocol of an Ethernet II frame.
type EtherType uint16

// EtherTypes used in this repository. PathCtl and BPDU use the IEEE local
// experimental EtherTypes; real 802.1D uses LLC encapsulation, which we do
// not model (documented substitution — the demo's bridges only need BPDUs to
// be distinguishable and non-forwardable).
const (
	EtherTypeIPv4    EtherType = 0x0800
	EtherTypeARP     EtherType = 0x0806
	EtherTypePathCtl EtherType = 0x88B5 // IEEE Std 802 local experimental 1
	EtherTypeBPDU    EtherType = 0x88B6 // IEEE Std 802 local experimental 2
)

// String returns the conventional name of the EtherType.
func (t EtherType) String() string {
	switch t {
	case EtherTypeIPv4:
		return "IPv4"
	case EtherTypeARP:
		return "ARP"
	case EtherTypePathCtl:
		return "PathCtl"
	case EtherTypeBPDU:
		return "BPDU"
	default:
		return fmt.Sprintf("EtherType(0x%04x)", uint16(t))
	}
}

// Ethernet framing constants.
const (
	// EthernetHeaderLen is the length of an Ethernet II header (dst, src,
	// EtherType), excluding the FCS which we account for in WireBytes.
	EthernetHeaderLen = 14
	// MinFrameLen is the minimum frame length excluding FCS; shorter frames
	// are padded on serialization, as the standard requires.
	MinFrameLen = 60
	// MaxFrameLen is the maximum standard frame length excluding FCS.
	MaxFrameLen = 1514
	// EthernetPerFrameOverhead counts the bytes a frame occupies on the wire
	// beyond its header+payload: preamble+SFD (8), FCS (4) and the minimum
	// inter-frame gap (12). Serialization delay uses WireBytes, so 1 Gb/s
	// links in the simulator pace frames exactly like the NetFPGA's MACs.
	EthernetPerFrameOverhead = 8 + 4 + 12
)

// WireBytes returns the number of byte times frameLen occupies on the wire,
// including padding to the minimum frame size, preamble, FCS and IFG.
func WireBytes(frameLen int) int {
	if frameLen < MinFrameLen {
		frameLen = MinFrameLen
	}
	return frameLen + EthernetPerFrameOverhead
}

// Errors shared by the decoders.
var (
	ErrTruncated   = errors.New("layers: truncated packet")
	ErrBadChecksum = errors.New("layers: bad checksum")
	ErrBadVersion  = errors.New("layers: unsupported version")
	ErrFrameTooBig = errors.New("layers: frame exceeds maximum size")
)

// SerializeOptions mirrors gopacket.SerializeOptions.
type SerializeOptions struct {
	// FixLengths recomputes length fields that depend on the payload.
	FixLengths bool
	// ComputeChecksums recomputes checksum fields from the serialized data.
	ComputeChecksums bool
}

// FixAll is the common case: fix lengths and checksums.
var FixAll = SerializeOptions{FixLengths: true, ComputeChecksums: true}

// SerializableLayer is any layer that can write itself onto a
// SerializeBuffer, prepending its header to whatever the buffer holds.
type SerializableLayer interface {
	SerializeTo(b *SerializeBuffer, opts SerializeOptions) error
	LayerName() string
}

// DecodingLayer is any layer that can reset itself from bytes. Decoded
// layers may alias the input slice; callers that mutate the input must copy
// first (gopacket NoCopy semantics).
type DecodingLayer interface {
	DecodeFromBytes(data []byte) error
	LayerName() string
}

// Serialize builds a packet from the given layers (outermost first) with
// FixAll options and returns the bytes.
func Serialize(ls ...SerializableLayer) ([]byte, error) {
	buf := NewSerializeBuffer()
	if err := SerializeLayers(buf, FixAll, ls...); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// SerializeLayers clears buf and writes the layers innermost-last so they
// wrap each other, mirroring gopacket.SerializeLayers.
func SerializeLayers(buf *SerializeBuffer, opts SerializeOptions, ls ...SerializableLayer) error {
	buf.Clear()
	for i := len(ls) - 1; i >= 0; i-- {
		if err := ls[i].SerializeTo(buf, opts); err != nil {
			return fmt.Errorf("serializing %s: %w", ls[i].LayerName(), err)
		}
	}
	return nil
}

// Payload is a raw application payload layer.
type Payload []byte

// LayerName implements SerializableLayer and DecodingLayer.
func (Payload) LayerName() string { return "Payload" }

// SerializeTo appends the payload bytes.
func (p Payload) SerializeTo(b *SerializeBuffer, _ SerializeOptions) error {
	dst := b.PrependBytes(len(p))
	copy(dst, p)
	return nil
}

// DecodeFromBytes stores data as the payload. The slice is aliased.
func (p *Payload) DecodeFromBytes(data []byte) error {
	*p = data
	return nil
}
