package layers

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSerializeBufferEmpty(t *testing.T) {
	b := NewSerializeBuffer()
	if b.Len() != 0 || len(b.Bytes()) != 0 {
		t.Fatalf("new buffer not empty: len=%d", b.Len())
	}
}

func TestSerializeBufferGopacketExample(t *testing.T) {
	// Mirrors the documented gopacket SerializeBuffer example.
	b := NewSerializeBuffer()
	copy(b.PrependBytes(3), []byte{1, 2, 3})
	copy(b.AppendBytes(2), []byte{4, 5})
	copy(b.PrependBytes(1), []byte{0})
	copy(b.AppendBytes(3), []byte{6, 7, 8})
	want := []byte{0, 1, 2, 3, 4, 5, 6, 7, 8}
	if !bytes.Equal(b.Bytes(), want) {
		t.Fatalf("Bytes() = %v, want %v", b.Bytes(), want)
	}
	b.Clear()
	if b.Len() != 0 {
		t.Fatalf("Len after Clear = %d", b.Len())
	}
	copy(b.PrependBytes(2), []byte{9, 9})
	if !bytes.Equal(b.Bytes(), []byte{9, 9}) {
		t.Fatalf("Bytes() after Clear = %v", b.Bytes())
	}
}

func TestSerializeBufferHeadroomGrowth(t *testing.T) {
	b := NewSerializeBufferExpectedSize(2, 2)
	copy(b.PrependBytes(128), bytes.Repeat([]byte{0xAA}, 128))
	copy(b.PrependBytes(128), bytes.Repeat([]byte{0xBB}, 128))
	got := b.Bytes()
	if len(got) != 256 {
		t.Fatalf("len = %d, want 256", len(got))
	}
	if got[0] != 0xBB || got[255] != 0xAA {
		t.Fatalf("growth scrambled contents: %x ... %x", got[0], got[255])
	}
}

func TestSerializeBufferClearAfterFullConsumption(t *testing.T) {
	b := NewSerializeBufferExpectedSize(4, 0)
	b.PrependBytes(4) // consume all headroom
	b.Clear()
	copy(b.PrependBytes(3), []byte{1, 2, 3})
	if !bytes.Equal(b.Bytes(), []byte{1, 2, 3}) {
		t.Fatalf("Bytes() = %v", b.Bytes())
	}
}

func TestSerializeBufferNegativePanics(t *testing.T) {
	b := NewSerializeBuffer()
	for _, f := range []func(){
		func() { b.PrependBytes(-1) },
		func() { b.AppendBytes(-1) },
		func() { NewSerializeBufferExpectedSize(-1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("negative size did not panic")
				}
			}()
			f()
		}()
	}
}

// Property: any interleaving of prepends and appends yields the bytes in
// the obvious order (prepends reversed, then appends).
func TestQuickSerializeBufferInterleaving(t *testing.T) {
	f := func(ops []int16) bool {
		b := NewSerializeBuffer()
		var front, back []byte
		next := byte(1)
		for _, op := range ops {
			n := int(op%32) + 1
			if n < 0 {
				n = -n
			}
			chunk := bytes.Repeat([]byte{next}, n)
			next++
			if op%2 == 0 {
				copy(b.PrependBytes(n), chunk)
				front = append(chunk, front...)
			} else {
				copy(b.AppendBytes(n), chunk)
				back = append(back, chunk...)
			}
		}
		return bytes.Equal(b.Bytes(), append(front, back...))
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSerializeBufferReuse(b *testing.B) {
	buf := NewSerializeBuffer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Clear()
		buf.PrependBytes(20)
		buf.AppendBytes(1000)
		buf.PrependBytes(14)
	}
}
