package layers

import "fmt"

// EndpointKind tells how an Endpoint's bytes are interpreted.
type EndpointKind uint8

// Endpoint kinds.
const (
	EndpointInvalid EndpointKind = iota
	EndpointMAC
	EndpointIPv4
	EndpointPort
)

// String names the kind.
func (k EndpointKind) String() string {
	switch k {
	case EndpointMAC:
		return "MAC"
	case EndpointIPv4:
		return "IPv4"
	case EndpointPort:
		return "Port"
	default:
		return "invalid"
	}
}

// Endpoint is a hashable address at some layer, usable as a map key —
// the gopacket Endpoint idiom with a fixed-size array to stay
// allocation-free.
type Endpoint struct {
	kind EndpointKind
	len  uint8
	raw  [6]byte
}

// MACEndpoint wraps a MAC address.
func MACEndpoint(m MAC) Endpoint {
	e := Endpoint{kind: EndpointMAC, len: 6}
	copy(e.raw[:], m[:])
	return e
}

// IPv4Endpoint wraps an IPv4 address.
func IPv4Endpoint(a Addr4) Endpoint {
	e := Endpoint{kind: EndpointIPv4, len: 4}
	copy(e.raw[:], a[:])
	return e
}

// PortEndpoint wraps a transport port.
func PortEndpoint(p uint16) Endpoint {
	return Endpoint{kind: EndpointPort, len: 2, raw: [6]byte{byte(p >> 8), byte(p)}}
}

// Kind returns the endpoint's kind.
func (e Endpoint) Kind() EndpointKind { return e.kind }

// String renders the endpoint per its kind.
func (e Endpoint) String() string {
	switch e.kind {
	case EndpointMAC:
		var m MAC
		copy(m[:], e.raw[:])
		return m.String()
	case EndpointIPv4:
		var a Addr4
		copy(a[:], e.raw[:4])
		return a.String()
	case EndpointPort:
		return fmt.Sprintf("%d", uint16(e.raw[0])<<8|uint16(e.raw[1]))
	default:
		return "invalid"
	}
}

// FastHash returns a quick non-cryptographic hash (FNV-1a over kind and
// bytes), suitable for load balancing.
func (e Endpoint) FastHash() uint64 {
	h := uint64(fnvOffset)
	h = (h ^ uint64(e.kind)) * fnvPrime
	for i := uint8(0); i < e.len; i++ {
		h = (h ^ uint64(e.raw[i])) * fnvPrime
	}
	return h
}

const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// Flow is a directed (src, dst) endpoint pair, comparable and map-key
// friendly. Its FastHash is symmetric: A→B hashes like B→A, so both
// directions of a conversation land in the same bucket (the gopacket
// guarantee the load-distribution experiment relies on).
type Flow struct {
	src, dst Endpoint
}

// NewFlow builds a flow from two endpoints of the same kind.
func NewFlow(src, dst Endpoint) (Flow, error) {
	if src.kind != dst.kind || src.kind == EndpointInvalid {
		return Flow{}, fmt.Errorf("layers: flow endpoints %v/%v mismatch", src.kind, dst.kind)
	}
	return Flow{src: src, dst: dst}, nil
}

// MACFlow is the link-layer flow of a frame.
func MACFlow(src, dst MAC) Flow { return Flow{src: MACEndpoint(src), dst: MACEndpoint(dst)} }

// IPv4Flow is the network-layer flow of a packet.
func IPv4Flow(src, dst Addr4) Flow { return Flow{src: IPv4Endpoint(src), dst: IPv4Endpoint(dst)} }

// Src returns the source endpoint.
func (f Flow) Src() Endpoint { return f.src }

// Dst returns the destination endpoint.
func (f Flow) Dst() Endpoint { return f.dst }

// Reverse returns the flow with endpoints swapped.
func (f Flow) Reverse() Flow { return Flow{src: f.dst, dst: f.src} }

// String renders "src->dst".
func (f Flow) String() string { return f.src.String() + "->" + f.dst.String() }

// FastHash returns a direction-independent hash: f and f.Reverse() hash
// identically (XOR of the endpoint hashes, as in gopacket).
func (f Flow) FastHash() uint64 { return f.src.FastHash() ^ f.dst.FastHash() }

// LinkFlow extracts the MAC flow from the last parsed frame.
func (p *Parser) LinkFlow() Flow { return MACFlow(p.Eth.Src, p.Eth.Dst) }

// NetworkFlow extracts the IPv4 flow from the last parsed frame; only
// valid when Has(LayerIPv4).
func (p *Parser) NetworkFlow() Flow { return IPv4Flow(p.IP.Src, p.IP.Dst) }
