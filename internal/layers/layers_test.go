package layers

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestMACString(t *testing.T) {
	m := MAC{0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01}
	if got := m.String(); got != "de:ad:be:ef:00:01" {
		t.Fatalf("String() = %q", got)
	}
}

func TestParseMACRoundTrip(t *testing.T) {
	m := HostMAC(77)
	got, err := ParseMAC(m.String())
	if err != nil || got != m {
		t.Fatalf("ParseMAC(%q) = %v, %v", m.String(), got, err)
	}
	if _, err := ParseMAC("not-a-mac"); err == nil {
		t.Fatal("ParseMAC accepted garbage")
	}
	if _, err := ParseMAC("zz:00:00:00:00:00"); err == nil {
		t.Fatal("ParseMAC accepted bad hex")
	}
}

func TestMACClassification(t *testing.T) {
	if !BroadcastMAC.IsBroadcast() || !BroadcastMAC.IsMulticast() || BroadcastMAC.IsUnicast() {
		t.Fatal("broadcast misclassified")
	}
	if !PathCtlMulticast.IsMulticast() || PathCtlMulticast.IsBroadcast() {
		t.Fatal("PathCtlMulticast misclassified")
	}
	if !HostMAC(1).IsUnicast() || HostMAC(1).IsMulticast() {
		t.Fatal("host MAC misclassified")
	}
	if !ZeroMAC.IsZero() || HostMAC(0).IsZero() {
		t.Fatal("IsZero misclassified")
	}
}

func TestMACUint64RoundTrip(t *testing.T) {
	m := MAC{0x12, 0x34, 0x56, 0x78, 0x9A, 0xBC}
	if MACFromUint64(m.Uint64()) != m {
		t.Fatalf("round trip failed: %x", m.Uint64())
	}
}

func TestHostAndBridgeMACDistinct(t *testing.T) {
	seen := map[MAC]bool{}
	for i := 0; i < 100; i++ {
		for _, m := range []MAC{HostMAC(i), BridgeMAC(i)} {
			if seen[m] {
				t.Fatalf("duplicate MAC %s", m)
			}
			seen[m] = true
		}
	}
}

func TestAddr4(t *testing.T) {
	a := Addr4{10, 0, 1, 2}
	if a.String() != "10.0.1.2" {
		t.Fatalf("String() = %q", a.String())
	}
	got, err := ParseAddr4("10.0.1.2")
	if err != nil || got != a {
		t.Fatalf("ParseAddr4 = %v, %v", got, err)
	}
	for _, bad := range []string{"", "1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "1..2.3"} {
		if _, err := ParseAddr4(bad); err == nil {
			t.Fatalf("ParseAddr4 accepted %q", bad)
		}
	}
	if !(Addr4{255, 255, 255, 255}).IsBroadcast() || a.IsBroadcast() {
		t.Fatal("IsBroadcast misclassified")
	}
}

func TestWireBytes(t *testing.T) {
	if got := WireBytes(10); got != 60+EthernetPerFrameOverhead {
		t.Fatalf("WireBytes(10) = %d", got)
	}
	if got := WireBytes(1514); got != 1514+EthernetPerFrameOverhead {
		t.Fatalf("WireBytes(1514) = %d", got)
	}
}

func TestEthernetRoundTrip(t *testing.T) {
	e := &Ethernet{Dst: HostMAC(2), Src: HostMAC(1), EtherType: EtherTypeIPv4}
	payload := bytes.Repeat([]byte{0x55}, 100)
	raw, err := Serialize(e, Payload(payload))
	if err != nil {
		t.Fatal(err)
	}
	var d Ethernet
	if err := d.DecodeFromBytes(raw); err != nil {
		t.Fatal(err)
	}
	if d.Dst != e.Dst || d.Src != e.Src || d.EtherType != e.EtherType {
		t.Fatalf("decoded %+v", d)
	}
	if !bytes.Equal(d.Payload(), payload) {
		t.Fatal("payload mismatch")
	}
}

func TestEthernetMinimumPadding(t *testing.T) {
	e := &Ethernet{Dst: BroadcastMAC, Src: HostMAC(1), EtherType: EtherTypeARP}
	raw, err := Serialize(e, Payload([]byte{1}))
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != MinFrameLen {
		t.Fatalf("frame len = %d, want %d", len(raw), MinFrameLen)
	}
}

func TestEthernetTooBig(t *testing.T) {
	e := &Ethernet{Dst: HostMAC(2), Src: HostMAC(1), EtherType: EtherTypeIPv4}
	_, err := Serialize(e, Payload(make([]byte, MaxFrameLen)))
	if err == nil {
		t.Fatal("oversize frame accepted")
	}
}

func TestEthernetTruncated(t *testing.T) {
	var d Ethernet
	if err := d.DecodeFromBytes(make([]byte, 13)); err != ErrTruncated {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func TestFastPathAccessors(t *testing.T) {
	e := &Ethernet{Dst: HostMAC(9), Src: HostMAC(4), EtherType: EtherTypePathCtl}
	raw, err := Serialize(e, Payload([]byte{0}))
	if err != nil {
		t.Fatal(err)
	}
	if FrameDst(raw) != HostMAC(9) || FrameSrc(raw) != HostMAC(4) || FrameEtherType(raw) != EtherTypePathCtl {
		t.Fatal("fast accessors disagree with encoder")
	}
	if FrameEtherType([]byte{1, 2}) != 0 || !FrameDst(nil).IsZero() {
		t.Fatal("fast accessors on truncated input")
	}
}

func TestARPRoundTrip(t *testing.T) {
	a := &ARP{
		Operation: ARPRequest,
		SenderHW:  HostMAC(1), SenderIP: HostIP(1),
		TargetHW: ZeroMAC, TargetIP: HostIP(2),
	}
	raw, err := Serialize(a)
	if err != nil {
		t.Fatal(err)
	}
	var d ARP
	if err := d.DecodeFromBytes(raw); err != nil {
		t.Fatal(err)
	}
	if d != *a {
		t.Fatalf("decoded %+v, want %+v", d, *a)
	}
}

func TestARPGratuitous(t *testing.T) {
	a := &ARP{Operation: ARPRequest, SenderIP: HostIP(1), TargetIP: HostIP(1)}
	if !a.IsGratuitous() {
		t.Fatal("gratuitous ARP not detected")
	}
}

func TestARPRejectsNonEthernetIPv4(t *testing.T) {
	a := &ARP{Operation: ARPRequest}
	raw, _ := Serialize(a)
	raw[1] = 9 // htype = 9 (not Ethernet)
	var d ARP
	if err := d.DecodeFromBytes(raw); err == nil {
		t.Fatal("bad htype accepted")
	}
}

func TestIPv4RoundTripAndChecksum(t *testing.T) {
	ip := &IPv4{TTL: 64, Protocol: IPProtoUDP, Src: HostIP(1), Dst: HostIP(2), ID: 42}
	payload := []byte("hello world")
	raw, err := Serialize(ip, Payload(payload))
	if err != nil {
		t.Fatal(err)
	}
	var d IPv4
	if err := d.DecodeFromBytes(raw); err != nil {
		t.Fatal(err)
	}
	if d.Src != ip.Src || d.Dst != ip.Dst || d.TTL != 64 || d.Protocol != IPProtoUDP || d.ID != 42 {
		t.Fatalf("decoded %+v", d)
	}
	if !bytes.Equal(d.Payload(), payload) {
		t.Fatal("payload mismatch")
	}
	raw[8] = 63 // corrupt TTL → checksum must fail
	if err := d.DecodeFromBytes(raw); err != ErrBadChecksum {
		t.Fatalf("corruption not detected: %v", err)
	}
}

func TestIPv4PaddingStripped(t *testing.T) {
	// A short IPv4 packet inside a padded minimum-size Ethernet frame must
	// come back with only its true payload.
	ip := &IPv4{TTL: 64, Protocol: IPProtoUDP, Src: HostIP(1), Dst: HostIP(2)}
	eth := &Ethernet{Dst: HostMAC(2), Src: HostMAC(1), EtherType: EtherTypeIPv4}
	raw, err := Serialize(eth, ip, Payload([]byte{0xAB}))
	if err != nil {
		t.Fatal(err)
	}
	var de Ethernet
	if err := de.DecodeFromBytes(raw); err != nil {
		t.Fatal(err)
	}
	var dip IPv4
	if err := dip.DecodeFromBytes(de.Payload()); err != nil {
		t.Fatal(err)
	}
	if len(dip.Payload()) != 1 || dip.Payload()[0] != 0xAB {
		t.Fatalf("payload = %v, want [ab]", dip.Payload())
	}
}

func TestIPv4RejectsOptionsAndV6(t *testing.T) {
	ip := &IPv4{TTL: 1, Protocol: IPProtoICMP, Src: HostIP(1), Dst: HostIP(2)}
	raw, _ := Serialize(ip)
	bad := append([]byte(nil), raw...)
	bad[0] = 4<<4 | 6 // IHL 6 → options
	var d IPv4
	if err := d.DecodeFromBytes(bad); err == nil {
		t.Fatal("options accepted")
	}
	bad = append([]byte(nil), raw...)
	bad[0] = 6<<4 | 5
	if err := d.DecodeFromBytes(bad); err == nil {
		t.Fatal("IPv6 version accepted")
	}
}

func TestInternetChecksumKnownVector(t *testing.T) {
	// RFC 1071 example data.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != ^uint16(0xddf2) {
		t.Fatalf("Checksum = %#04x, want %#04x", got, ^uint16(0xddf2))
	}
}

func TestChecksumOddLength(t *testing.T) {
	if Checksum([]byte{0xFF}) != ^uint16(0xFF00) {
		t.Fatal("odd-length checksum wrong")
	}
}

func TestICMPEchoRoundTrip(t *testing.T) {
	ic := &ICMPEcho{Type: ICMPEchoRequest, Ident: 7, Seq: 3}
	payload := []byte("ping payload")
	raw, err := Serialize(ic, Payload(payload))
	if err != nil {
		t.Fatal(err)
	}
	var d ICMPEcho
	if err := d.DecodeFromBytes(raw); err != nil {
		t.Fatal(err)
	}
	if d.Type != ICMPEchoRequest || d.Ident != 7 || d.Seq != 3 || !bytes.Equal(d.Payload(), payload) {
		t.Fatalf("decoded %+v", d)
	}
	raw[9] ^= 0xFF
	if err := d.DecodeFromBytes(raw); err != ErrBadChecksum {
		t.Fatalf("corruption not detected: %v", err)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	u := &UDP{SrcPort: 1000, DstPort: 2000, SrcIP: HostIP(1), DstIP: HostIP(2)}
	payload := []byte("datagram")
	raw, err := Serialize(u, Payload(payload))
	if err != nil {
		t.Fatal(err)
	}
	var d UDP
	if err := d.DecodeFromBytes(raw); err != nil {
		t.Fatal(err)
	}
	if d.SrcPort != 1000 || d.DstPort != 2000 || !bytes.Equal(d.Payload(), payload) {
		t.Fatalf("decoded %+v", d)
	}
	if err := d.VerifyChecksum(HostIP(1), HostIP(2)); err != nil {
		t.Fatalf("checksum: %v", err)
	}
	if err := d.VerifyChecksum(HostIP(1), HostIP(3)); err == nil {
		t.Fatal("wrong pseudo-header accepted")
	}
}

func TestUDPZeroChecksumPasses(t *testing.T) {
	u := &UDP{SrcPort: 1, DstPort: 2}
	buf := NewSerializeBuffer()
	if err := SerializeLayers(buf, SerializeOptions{FixLengths: true}, u); err != nil {
		t.Fatal(err)
	}
	var d UDP
	if err := d.DecodeFromBytes(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := d.VerifyChecksum(HostIP(1), HostIP(2)); err != nil {
		t.Fatalf("zero checksum should pass: %v", err)
	}
}

func TestTCPLiteRoundTrip(t *testing.T) {
	seg := &TCPLite{
		SrcPort: 80, DstPort: 5000,
		Seq: 0xDEADBEEF, Ack: 0x01020304,
		Flags: TCPFlagSYN | TCPFlagACK, Window: 65535,
		SrcIP: HostIP(1), DstIP: HostIP(2),
	}
	payload := []byte("segment data")
	raw, err := Serialize(seg, Payload(payload))
	if err != nil {
		t.Fatal(err)
	}
	var d TCPLite
	if err := d.DecodeFromBytes(raw); err != nil {
		t.Fatal(err)
	}
	if d.Seq != seg.Seq || d.Ack != seg.Ack || !d.HasFlag(TCPFlagSYN|TCPFlagACK) ||
		d.Window != 65535 || !bytes.Equal(d.Payload(), payload) {
		t.Fatalf("decoded %+v", d)
	}
	if err := d.VerifyChecksum(HostIP(1), HostIP(2)); err != nil {
		t.Fatalf("checksum: %v", err)
	}
	raw[20] ^= 0x01
	d = TCPLite{}
	if err := d.DecodeFromBytes(raw); err != nil {
		t.Fatal(err)
	}
	if err := d.VerifyChecksum(HostIP(1), HostIP(2)); err == nil {
		t.Fatal("corruption not detected")
	}
}

func TestTCPLiteFlagString(t *testing.T) {
	seg := &TCPLite{Flags: TCPFlagFIN | TCPFlagACK}
	s := seg.FlagString()
	if !strings.Contains(s, "FIN") || !strings.Contains(s, "ACK") {
		t.Fatalf("FlagString = %q", s)
	}
	if (&TCPLite{}).FlagString() != "none" {
		t.Fatal("empty flags not rendered as none")
	}
}

func TestPathCtlRoundTrip(t *testing.T) {
	for _, typ := range []PathCtlType{PathCtlHello, PathCtlFail, PathCtlRequest, PathCtlReply} {
		p := &PathCtl{Type: typ, BridgeID: 0xAABB, Src: HostMAC(1), Dst: HostMAC(2), Nonce: 99}
		raw, err := Serialize(p)
		if err != nil {
			t.Fatal(err)
		}
		var d PathCtl
		if err := d.DecodeFromBytes(raw); err != nil {
			t.Fatal(err)
		}
		if d != *p {
			t.Fatalf("decoded %+v, want %+v", d, *p)
		}
	}
}

func TestPathCtlRejectsBadTypeAndVersion(t *testing.T) {
	p := &PathCtl{Type: PathCtlHello}
	raw, _ := Serialize(p)
	bad := append([]byte(nil), raw...)
	bad[0] = 200
	var d PathCtl
	if err := d.DecodeFromBytes(bad); err == nil {
		t.Fatal("bad type accepted")
	}
	bad = append([]byte(nil), raw...)
	bad[1] = 9
	if err := d.DecodeFromBytes(bad); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestBPDUConfigRoundTrip(t *testing.T) {
	b := &BPDU{
		Type:       BPDUTypeConfig,
		Flags:      BPDUFlagTopologyChange,
		RootID:     MakeBridgeID(0x8000, BridgeMAC(1)),
		RootCost:   19,
		SenderID:   MakeBridgeID(0x8000, BridgeMAC(2)),
		PortID:     0x8003,
		MessageAge: 250 * time.Millisecond, MaxAge: 20 * time.Second,
		HelloTime: 2 * time.Second, ForwardDelay: 15 * time.Second,
	}
	raw, err := Serialize(b)
	if err != nil {
		t.Fatal(err)
	}
	var d BPDU
	if err := d.DecodeFromBytes(raw); err != nil {
		t.Fatal(err)
	}
	if d.RootID != b.RootID || d.SenderID != b.SenderID || d.RootCost != 19 ||
		d.PortID != 0x8003 || d.MaxAge != 20*time.Second || d.HelloTime != 2*time.Second ||
		d.ForwardDelay != 15*time.Second || d.MessageAge != 250*time.Millisecond ||
		d.Flags != BPDUFlagTopologyChange {
		t.Fatalf("decoded %+v", d)
	}
}

func TestBPDUTCNRoundTrip(t *testing.T) {
	b := &BPDU{Type: BPDUTypeTCN}
	raw, err := Serialize(b)
	if err != nil {
		t.Fatal(err)
	}
	var d BPDU
	if err := d.DecodeFromBytes(raw); err != nil {
		t.Fatal(err)
	}
	if d.Type != BPDUTypeTCN {
		t.Fatalf("decoded type %#x", d.Type)
	}
}

func TestBridgeIDOrdering(t *testing.T) {
	lowPrio := MakeBridgeID(0x1000, BridgeMAC(9))
	highPrio := MakeBridgeID(0x8000, BridgeMAC(1))
	if !(lowPrio < highPrio) {
		t.Fatal("priority must dominate MAC in bridge ID comparison")
	}
	a := MakeBridgeID(0x8000, BridgeMAC(1))
	b := MakeBridgeID(0x8000, BridgeMAC(2))
	if !(a < b) {
		t.Fatal("MAC must break priority ties")
	}
	if a.Priority() != 0x8000 || a.MAC() != BridgeMAC(1) {
		t.Fatalf("decompose: prio=%#x mac=%s", a.Priority(), a.MAC())
	}
}

func TestSummarize(t *testing.T) {
	arp := &ARP{Operation: ARPRequest, SenderHW: HostMAC(1), SenderIP: HostIP(1), TargetIP: HostIP(2)}
	eth := &Ethernet{Dst: BroadcastMAC, Src: HostMAC(1), EtherType: EtherTypeARP}
	raw, _ := Serialize(eth, arp)
	s := Summarize(raw)
	if !strings.Contains(s, "who-has") || !strings.Contains(s, "10.0.0.2") {
		t.Fatalf("Summarize = %q", s)
	}
	if !strings.Contains(Summarize([]byte{1}), "malformed") {
		t.Fatal("malformed frame not reported")
	}
}

func TestSummarizeAllTypes(t *testing.T) {
	mk := func(et EtherType, inner SerializableLayer) string {
		eth := &Ethernet{Dst: HostMAC(2), Src: HostMAC(1), EtherType: et}
		raw, err := Serialize(eth, inner)
		if err != nil {
			t.Fatal(err)
		}
		return Summarize(raw)
	}
	cases := []struct {
		got, want string
	}{
		{mk(EtherTypePathCtl, &PathCtl{Type: PathCtlFail, Src: HostMAC(1), Dst: HostMAC(2)}), "PathFail"},
		{mk(EtherTypeBPDU, &BPDU{Type: BPDUTypeTCN}), "TCN"},
		{mk(EtherTypeBPDU, &BPDU{Type: BPDUTypeConfig, RootID: 1}), "root="},
	}
	for _, c := range cases {
		if !strings.Contains(c.got, c.want) {
			t.Errorf("Summarize = %q, want substring %q", c.got, c.want)
		}
	}
}

// Property-based round trips over randomized field values.

func TestQuickARPRoundTrip(t *testing.T) {
	f := func(op bool, shw, thw MAC, sip, tip Addr4) bool {
		a := &ARP{Operation: ARPRequest, SenderHW: shw, SenderIP: sip, TargetHW: thw, TargetIP: tip}
		if !op {
			a.Operation = ARPReply
		}
		raw, err := Serialize(a)
		if err != nil {
			return false
		}
		var d ARP
		return d.DecodeFromBytes(raw) == nil && d == *a
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIPv4RoundTrip(t *testing.T) {
	f := func(tos, ttl, proto uint8, id uint16, src, dst Addr4, payload []byte) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		ip := &IPv4{TOS: tos, TTL: ttl, Protocol: proto, ID: id, Src: src, Dst: dst}
		raw, err := Serialize(ip, Payload(payload))
		if err != nil {
			return false
		}
		var d IPv4
		if err := d.DecodeFromBytes(raw); err != nil {
			return false
		}
		return d.TOS == tos && d.TTL == ttl && d.Protocol == proto && d.ID == id &&
			d.Src == src && d.Dst == dst && bytes.Equal(d.Payload(), payload)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(12))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTCPLiteRoundTrip(t *testing.T) {
	f := func(sp, dp uint16, seq, ack uint32, window uint16, payload []byte) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		seg := &TCPLite{SrcPort: sp, DstPort: dp, Seq: seq, Ack: ack,
			Flags: TCPFlagACK | TCPFlagPSH, Window: window,
			SrcIP: HostIP(1), DstIP: HostIP(2)}
		raw, err := Serialize(seg, Payload(payload))
		if err != nil {
			return false
		}
		var d TCPLite
		if err := d.DecodeFromBytes(raw); err != nil {
			return false
		}
		return d.SrcPort == sp && d.DstPort == dp && d.Seq == seq && d.Ack == ack &&
			d.Window == window && bytes.Equal(d.Payload(), payload) &&
			d.VerifyChecksum(HostIP(1), HostIP(2)) == nil
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(13))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPathCtlRoundTrip(t *testing.T) {
	f := func(typ uint8, bid uint64, src, dst MAC, nonce uint32) bool {
		p := &PathCtl{Type: PathCtlType(typ%4 + 1), BridgeID: bid, Src: src, Dst: dst, Nonce: nonce}
		raw, err := Serialize(p)
		if err != nil {
			return false
		}
		var d PathCtl
		return d.DecodeFromBytes(raw) == nil && d == *p
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(14))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: decoders never panic on random garbage.
func TestQuickDecodersDontPanic(t *testing.T) {
	decoders := func() []DecodingLayer {
		return []DecodingLayer{&Ethernet{}, &ARP{}, &IPv4{}, &ICMPEcho{}, &UDP{}, &TCPLite{}, &PathCtl{}, &BPDU{}}
	}
	f := func(data []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		for _, d := range decoders() {
			_ = d.DecodeFromBytes(data) // error is fine, panic is not
		}
		_ = Summarize(data)
		return true
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(15))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeEthernetIPv4UDP(b *testing.B) {
	eth := &Ethernet{Dst: HostMAC(2), Src: HostMAC(1), EtherType: EtherTypeIPv4}
	ip := &IPv4{TTL: 64, Protocol: IPProtoUDP, Src: HostIP(1), Dst: HostIP(2)}
	u := &UDP{SrcPort: 1, DstPort: 2, SrcIP: ip.Src, DstIP: ip.Dst}
	payload := Payload(make([]byte, 1000))
	buf := NewSerializeBuffer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := SerializeLayers(buf, FixAll, eth, ip, u, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeEthernetIPv4UDP(b *testing.B) {
	eth := &Ethernet{Dst: HostMAC(2), Src: HostMAC(1), EtherType: EtherTypeIPv4}
	ip := &IPv4{TTL: 64, Protocol: IPProtoUDP, Src: HostIP(1), Dst: HostIP(2)}
	u := &UDP{SrcPort: 1, DstPort: 2, SrcIP: ip.Src, DstIP: ip.Dst}
	raw, err := Serialize(eth, ip, u, Payload(make([]byte, 1000)))
	if err != nil {
		b.Fatal(err)
	}
	var de Ethernet
	var dip IPv4
	var du UDP
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if de.DecodeFromBytes(raw) != nil || dip.DecodeFromBytes(de.Payload()) != nil ||
			du.DecodeFromBytes(dip.Payload()) != nil {
			b.Fatal("decode failed")
		}
	}
}
