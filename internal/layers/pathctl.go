package layers

import "encoding/binary"

// PathCtlType discriminates ARP-Path control messages (§2.1.4 of the paper
// plus the HELLO neighbour discovery documented in DESIGN.md).
type PathCtlType uint8

// Control message types.
const (
	// PathCtlHello is exchanged between adjacent bridges so each side can
	// tell trunk (bridge-facing) ports from edge (host-facing) ports. Hosts
	// never see HELLOs: they ride a reserved multicast that bridges consume.
	PathCtlHello PathCtlType = 1
	// PathCtlFail reports a table miss for Dst back toward Src. Bridges on
	// the way clear their stale Dst entries; the edge bridge of Src turns
	// it into a PathRequest.
	PathCtlFail PathCtlType = 2
	// PathCtlRequest re-discovers a path: it is flooded and processed
	// exactly like an ARP Request sourced by Src (frame src MAC = Src).
	PathCtlRequest PathCtlType = 3
	// PathCtlReply confirms the recovered path: unicast from Dst's edge
	// bridge to Src, processed exactly like an ARP Reply from Dst.
	PathCtlReply PathCtlType = 4
)

// String names the control type.
func (t PathCtlType) String() string {
	switch t {
	case PathCtlHello:
		return "HELLO"
	case PathCtlFail:
		return "PathFail"
	case PathCtlRequest:
		return "PathRequest"
	case PathCtlReply:
		return "PathReply"
	default:
		return "PathCtl(?)"
	}
}

// pathCtlLen is the fixed message length.
const pathCtlLen = 26

// pathCtlVersion is the only protocol version in existence.
const pathCtlVersion = 1

// PathCtl is the ARP-Path control message body, carried under
// EtherTypePathCtl.
type PathCtl struct {
	Type PathCtlType
	// BridgeID identifies the originating bridge (HELLO, PathFail).
	BridgeID uint64
	// Src is the host whose path is being repaired (the flow's source).
	Src MAC
	// Dst is the host whose table entry was missing (the flow's target).
	Dst MAC
	// Nonce correlates a PathRequest with its PathReply and de-duplicates
	// retries.
	Nonce uint32
}

// LayerName implements SerializableLayer and DecodingLayer.
func (*PathCtl) LayerName() string { return "PathCtl" }

// DecodeFromBytes resets p from data.
func (p *PathCtl) DecodeFromBytes(data []byte) error {
	if len(data) < pathCtlLen {
		return ErrTruncated
	}
	if data[1] != pathCtlVersion {
		return ErrBadVersion
	}
	p.Type = PathCtlType(data[0])
	if p.Type < PathCtlHello || p.Type > PathCtlReply {
		return ErrBadVersion
	}
	p.BridgeID = binary.BigEndian.Uint64(data[2:10])
	copy(p.Src[:], data[10:16])
	copy(p.Dst[:], data[16:22])
	p.Nonce = binary.BigEndian.Uint32(data[22:26])
	return nil
}

// SerializeTo prepends the 26-byte message.
func (p *PathCtl) SerializeTo(b *SerializeBuffer, _ SerializeOptions) error {
	h := b.PrependBytes(pathCtlLen)
	h[0] = byte(p.Type)
	h[1] = pathCtlVersion
	binary.BigEndian.PutUint64(h[2:10], p.BridgeID)
	copy(h[10:16], p.Src[:])
	copy(h[16:22], p.Dst[:])
	binary.BigEndian.PutUint32(h[22:26], p.Nonce)
	return nil
}
