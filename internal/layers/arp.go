package layers

import "encoding/binary"

// ARP operation codes.
const (
	ARPRequest uint16 = 1
	ARPReply   uint16 = 2
)

// arpLen is the length of an Ethernet/IPv4 ARP packet.
const arpLen = 28

// ARP is an Ethernet/IPv4 ARP packet (RFC 826). Only htype=1 (Ethernet),
// ptype=IPv4 is supported, which is all the paper's network carries.
type ARP struct {
	Operation uint16
	SenderHW  MAC
	SenderIP  Addr4
	TargetHW  MAC
	TargetIP  Addr4
}

// LayerName implements SerializableLayer and DecodingLayer.
func (*ARP) LayerName() string { return "ARP" }

// DecodeFromBytes resets a from data.
func (a *ARP) DecodeFromBytes(data []byte) error {
	if len(data) < arpLen {
		return ErrTruncated
	}
	if binary.BigEndian.Uint16(data[0:2]) != 1 ||
		EtherType(binary.BigEndian.Uint16(data[2:4])) != EtherTypeIPv4 ||
		data[4] != 6 || data[5] != 4 {
		return ErrBadVersion
	}
	a.Operation = binary.BigEndian.Uint16(data[6:8])
	copy(a.SenderHW[:], data[8:14])
	copy(a.SenderIP[:], data[14:18])
	copy(a.TargetHW[:], data[18:24])
	copy(a.TargetIP[:], data[24:28])
	return nil
}

// SerializeTo prepends the 28-byte ARP packet.
func (a *ARP) SerializeTo(b *SerializeBuffer, _ SerializeOptions) error {
	p := b.PrependBytes(arpLen)
	binary.BigEndian.PutUint16(p[0:2], 1) // htype: Ethernet
	binary.BigEndian.PutUint16(p[2:4], uint16(EtherTypeIPv4))
	p[4], p[5] = 6, 4
	binary.BigEndian.PutUint16(p[6:8], a.Operation)
	copy(p[8:14], a.SenderHW[:])
	copy(p[14:18], a.SenderIP[:])
	copy(p[18:24], a.TargetHW[:])
	copy(p[24:28], a.TargetIP[:])
	return nil
}

// IsGratuitous reports whether the packet announces the sender's own
// binding (sender IP == target IP).
func (a *ARP) IsGratuitous() bool { return a.SenderIP == a.TargetIP }
