package layers

import "encoding/binary"

// udpHeaderLen is the UDP header length.
const udpHeaderLen = 8

// UDP is a UDP header (RFC 768). Transport checksums need the enclosing
// IPv4 addresses; set SrcIP/DstIP before serializing with ComputeChecksums
// (the caller-side analogue of gopacket's SetNetworkLayerForChecksum), and
// pass them to VerifyChecksum after decoding.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16
	SrcIP, DstIP     Addr4

	payload []byte
	raw     []byte
}

// LayerName implements SerializableLayer and DecodingLayer.
func (*UDP) LayerName() string { return "UDP" }

// Payload returns the datagram body from the last decode.
func (u *UDP) Payload() []byte { return u.payload }

// DecodeFromBytes resets u from data. Checksum verification is separate
// (VerifyChecksum) because it needs the IPv4 pseudo-header.
func (u *UDP) DecodeFromBytes(data []byte) error {
	if len(data) < udpHeaderLen {
		return ErrTruncated
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:2])
	u.DstPort = binary.BigEndian.Uint16(data[2:4])
	u.Length = binary.BigEndian.Uint16(data[4:6])
	u.Checksum = binary.BigEndian.Uint16(data[6:8])
	if int(u.Length) < udpHeaderLen || int(u.Length) > len(data) {
		return ErrTruncated
	}
	u.raw = data[:u.Length]
	u.payload = data[udpHeaderLen:u.Length]
	return nil
}

// VerifyChecksum checks the datagram checksum using the given IPv4
// addresses. A zero checksum means "not computed" and passes, per RFC 768.
func (u *UDP) VerifyChecksum(src, dst Addr4) error {
	if u.Checksum == 0 {
		return nil
	}
	if transportChecksum(u.raw, src, dst, IPProtoUDP) != 0 {
		return ErrBadChecksum
	}
	return nil
}

// SerializeTo prepends the UDP header, fixing Length and Checksum per opts.
func (u *UDP) SerializeTo(b *SerializeBuffer, opts SerializeOptions) error {
	if opts.FixLengths {
		u.Length = uint16(udpHeaderLen + b.Len())
	}
	h := b.PrependBytes(udpHeaderLen)
	binary.BigEndian.PutUint16(h[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(h[2:4], u.DstPort)
	binary.BigEndian.PutUint16(h[4:6], u.Length)
	binary.BigEndian.PutUint16(h[6:8], 0)
	if opts.ComputeChecksums {
		u.Checksum = transportChecksum(b.Bytes(), u.SrcIP, u.DstIP, IPProtoUDP)
		if u.Checksum == 0 {
			u.Checksum = 0xFFFF // RFC 768: transmitted as all-ones
		}
	}
	binary.BigEndian.PutUint16(h[6:8], u.Checksum)
	return nil
}
