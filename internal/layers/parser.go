package layers

// LayerKind identifies a decoded layer in a Parser (the LayerType of this
// codec, minus the global registry we do not need).
type LayerKind uint8

// Layer kinds a Parser can decode.
const (
	LayerEthernet LayerKind = iota
	LayerARP
	LayerIPv4
	LayerICMPEcho
	LayerUDP
	LayerTCPLite
	LayerPathCtl
	LayerBPDU
	LayerPayload
)

// String names the kind.
func (k LayerKind) String() string {
	switch k {
	case LayerEthernet:
		return "Ethernet"
	case LayerARP:
		return "ARP"
	case LayerIPv4:
		return "IPv4"
	case LayerICMPEcho:
		return "ICMPEcho"
	case LayerUDP:
		return "UDP"
	case LayerTCPLite:
		return "TCPLite"
	case LayerPathCtl:
		return "PathCtl"
	case LayerBPDU:
		return "BPDU"
	case LayerPayload:
		return "Payload"
	default:
		return "Layer(?)"
	}
}

// Parser decodes a frame's full layer stack into preallocated layer
// structs without any allocation — gopacket's DecodingLayerParser idiom.
// After Parse, the fields corresponding to the kinds listed in Decoded
// hold the frame's values; earlier contents of the other fields are
// stale and must not be read.
//
//	var p layers.Parser
//	for frame := range frames {
//	    if err := p.Parse(frame); err != nil { continue }
//	    if p.Has(layers.LayerICMPEcho) {
//	        use(p.IP.Src, p.ICMP.Seq)
//	    }
//	}
//
// Parsers are not safe for concurrent use; give each goroutine its own.
type Parser struct {
	Eth  Ethernet
	ARP  ARP
	IP   IPv4
	ICMP ICMPEcho
	UDP  UDP
	TCP  TCPLite
	Ctl  PathCtl
	BPDU BPDU
	// Payload is the innermost undecoded bytes (transport payload, or the
	// bytes after a layer the parser has no decoder for). Aliases the
	// input frame.
	Payload []byte
	// Decoded lists the layers recognized, outermost first.
	Decoded []LayerKind
	// Truncated is set when an inner layer failed to decode; Decoded then
	// holds the layers that did parse (gopacket DecodeFeedback-style).
	Truncated bool
}

// Has reports whether kind was decoded by the last Parse.
func (p *Parser) Has(kind LayerKind) bool {
	for _, k := range p.Decoded {
		if k == kind {
			return true
		}
	}
	return false
}

// Parse resets the parser and decodes frame as deep as it can. It returns
// an error only when the outermost Ethernet header is unparseable; inner
// failures set Truncated and keep whatever was decoded.
func (p *Parser) Parse(frame []byte) error {
	p.Decoded = p.Decoded[:0]
	p.Payload = nil
	p.Truncated = false
	if err := p.Eth.DecodeFromBytes(frame); err != nil {
		return err
	}
	p.Decoded = append(p.Decoded, LayerEthernet)
	body := p.Eth.Payload()
	switch p.Eth.EtherType {
	case EtherTypeARP:
		p.decodeInner(LayerARP, &p.ARP, body, nil)
	case EtherTypePathCtl:
		p.decodeInner(LayerPathCtl, &p.Ctl, body, nil)
	case EtherTypeBPDU:
		p.decodeInner(LayerBPDU, &p.BPDU, body, nil)
	case EtherTypeIPv4:
		p.decodeInner(LayerIPv4, &p.IP, body, p.parseTransport)
	default:
		p.setPayload(body)
	}
	return nil
}

// parseTransport continues below a decoded IPv4 header.
func (p *Parser) parseTransport() {
	body := p.IP.Payload()
	switch p.IP.Protocol {
	case IPProtoICMP:
		p.decodeInner(LayerICMPEcho, &p.ICMP, body, func() { p.setPayload(p.ICMP.Payload()) })
	case IPProtoUDP:
		p.decodeInner(LayerUDP, &p.UDP, body, func() { p.setPayload(p.UDP.Payload()) })
	case IPProtoTCPLite:
		p.decodeInner(LayerTCPLite, &p.TCP, body, func() { p.setPayload(p.TCP.Payload()) })
	default:
		p.setPayload(body)
	}
}

// decodeInner decodes one nested layer, marking truncation on failure and
// descending via next on success.
func (p *Parser) decodeInner(kind LayerKind, layer DecodingLayer, data []byte, next func()) {
	if err := layer.DecodeFromBytes(data); err != nil {
		p.Truncated = true
		p.setPayload(data)
		return
	}
	p.Decoded = append(p.Decoded, kind)
	if next != nil {
		next()
	}
}

// setPayload records the innermost bytes and the payload pseudo-layer.
func (p *Parser) setPayload(data []byte) {
	p.Payload = data
	if len(data) > 0 {
		p.Decoded = append(p.Decoded, LayerPayload)
	}
}

// IsStreamData reports whether the last parsed frame is a TCP-lite
// segment carrying payload toward dstMAC — the hot predicate of the
// Figure 3 measurement taps.
func (p *Parser) IsStreamData(dstMAC MAC) bool {
	return p.Has(LayerTCPLite) && len(p.TCP.Payload()) > 0 && p.Eth.Dst == dstMAC
}
