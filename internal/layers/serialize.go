package layers

// SerializeBuffer collects packet bytes while layers are written
// innermost-first, so headers are prepended in front of the existing
// contents. It is the stdlib-only equivalent of gopacket.SerializeBuffer:
// a slice with spare capacity kept at the front.
//
// The zero value is not ready to use; call NewSerializeBuffer. Buffers are
// reusable via Clear, which (as in gopacket) invalidates slices returned by
// earlier Bytes calls.
type SerializeBuffer struct {
	buf   []byte // backing storage
	start int    // first used byte in buf
	head  int    // headroom high-water mark restored by Clear
}

// defaultHeadroom leaves room for the usual header stack
// (Ethernet+IPv4+transport) without copying.
const defaultHeadroom = 64

// NewSerializeBuffer returns an empty buffer with default headroom.
func NewSerializeBuffer() *SerializeBuffer {
	return NewSerializeBufferExpectedSize(defaultHeadroom, 512)
}

// NewSerializeBufferExpectedSize returns an empty buffer pre-sized for the
// expected number of prepended and appended bytes.
func NewSerializeBufferExpectedSize(prepend, append int) *SerializeBuffer {
	if prepend < 0 || append < 0 {
		panic("layers: negative buffer size hint")
	}
	return &SerializeBuffer{
		buf:   make([]byte, prepend, prepend+append),
		start: prepend,
		head:  prepend,
	}
}

// Bytes returns the serialized contents. The slice is invalidated by the
// next Clear or Prepend/Append call that reallocates.
func (b *SerializeBuffer) Bytes() []byte { return b.buf[b.start:] }

// Len returns the number of serialized bytes.
func (b *SerializeBuffer) Len() int { return len(b.buf) - b.start }

// PrependBytes returns an n-byte slice in front of the current contents.
// The bytes are uninitialized and must be fully overwritten by the caller.
func (b *SerializeBuffer) PrependBytes(n int) []byte {
	if n < 0 {
		panic("layers: negative prepend size")
	}
	if b.start < n {
		// Grow at the front: new headroom is max(2*need, defaultHeadroom).
		head := 2 * n
		if head < defaultHeadroom {
			head = defaultHeadroom
		}
		nb := make([]byte, head+b.Len(), head+len(b.buf))
		copy(nb[head:], b.Bytes())
		b.buf = nb
		b.start = head
		b.head = head
	}
	b.start -= n
	return b.buf[b.start : b.start+n]
}

// AppendBytes returns an n-byte slice after the current contents. The bytes
// are uninitialized and must be fully overwritten by the caller.
func (b *SerializeBuffer) AppendBytes(n int) []byte {
	if n < 0 {
		panic("layers: negative append size")
	}
	old := len(b.buf)
	if cap(b.buf) >= old+n {
		b.buf = b.buf[:old+n]
	} else {
		nb := make([]byte, old+n, 2*(old+n))
		copy(nb, b.buf)
		b.buf = nb
	}
	return b.buf[old:]
}

// Clear resets the buffer to empty, restoring headroom for the next packet.
// Previously returned Bytes slices are invalidated. The headroom restored
// is the largest the buffer has ever had, not whatever a previous packet
// left over — a reused buffer reaches a steady state where packets of the
// same shape serialize with no allocation at all.
func (b *SerializeBuffer) Clear() {
	head := b.head
	if head == 0 {
		head = defaultHeadroom
		if cap(b.buf) < head {
			b.buf = make([]byte, head, head+512)
		}
		b.head = head
	}
	b.buf = b.buf[:head]
	b.start = head
}
