package stp

import (
	"testing"
	"time"

	"repro/internal/layers"
	"repro/internal/netsim"
)

// TestTCNStopsAfterTCA: a bridge that detected a topology change must
// retransmit TCNs on its root port only until the designated bridge
// acknowledges with the TCA flag.
func TestTCNStopsAfterTCA(t *testing.T) {
	net := netsim.NewNetwork(1)
	timers := DefaultTimers()
	root := New(net, "root", 1, 0x1000, timers)
	mid := New(net, "mid", 2, 0x8000, timers)
	leaf := New(net, "leaf", 3, 0x8000, timers)
	cfg := netsim.DefaultLinkConfig()
	net.Connect(root, mid, cfg)
	net.Connect(mid, leaf, cfg)
	// A host port on the leaf to create a topology change when it opens.
	h := newEndpoint("h", 1)
	hostLink := net.Connect(leaf, h, cfg)
	hostLink.SetUp(false)
	for _, b := range []*Bridge{root, mid, leaf} {
		b.Start()
	}
	net.RunFor(settle)

	// Opening the host port drives it to forwarding ⇒ topology change ⇒
	// TCNs from leaf toward the root until acknowledged.
	net.Engine.At(net.Now(), func() { hostLink.SetUp(true) })
	net.RunFor(settle)
	tcnSent := leaf.Stats().TCNTx
	if tcnSent == 0 {
		t.Fatal("leaf never raised a TCN")
	}
	if mid.Stats().TCNRx == 0 {
		t.Fatal("mid never saw the TCN")
	}
	// Once acknowledged, the retransmission stops: over the next several
	// hello intervals the count must not keep climbing unboundedly.
	net.RunFor(10 * timers.Hello)
	if leaf.Stats().TCNTx > tcnSent+2 {
		t.Fatalf("TCN kept retransmitting after TCA: %d → %d", tcnSent, leaf.Stats().TCNTx)
	}
}

// TestFastAgingDuringTopologyChange: the TC flag from the root must drop
// the FIB aging to forward-delay, and normal aging must return after the
// TC period lapses.
func TestFastAgingDuringTopologyChange(t *testing.T) {
	net := netsim.NewNetwork(1)
	timers := DefaultTimers()
	bs := buildRing(net, 3, timers)
	h1, h2 := newEndpoint("h1", 1), newEndpoint("h2", 2)
	net.Connect(h1, bs[0], cfg())
	net.Connect(h2, bs[1], cfg())
	net.RunFor(settle)

	// Seed the FIBs.
	net.Engine.At(net.Now(), func() { h1.send(layers.BroadcastMAC, 1) })
	net.RunFor(time.Second)

	normal := bs[1].FIB().Aging()
	// Cut a forwarding ring link → TC propagates → fast aging at the
	// bridges that hear the root's TC flag.
	var cut *netsim.Link
	for _, l := range net.Links() {
		pa, pb := l.A(), l.B()
		ba, okA := pa.Node().(*Bridge)
		bb, okB := pb.Node().(*Bridge)
		if okA && okB && ba.State(pa) == StateForwarding && bb.State(pb) == StateForwarding {
			cut = l
			break
		}
	}
	net.Engine.At(net.Now(), func() { cut.SetUp(false) })
	net.RunFor(10 * time.Second)
	fastSeen := false
	for _, b := range bs {
		if b.FIB().Aging() == timers.ForwardDelay {
			fastSeen = true
		}
	}
	if !fastSeen {
		t.Fatal("no bridge entered fast aging after the topology change")
	}
	// After the TC period (max-age + forward-delay) plus margin, traffic
	// through the dataplane restores normal aging lazily.
	net.RunFor(timers.MaxAge + timers.ForwardDelay + 5*time.Second)
	net.Engine.At(net.Now(), func() { h1.send(layers.BroadcastMAC, 2) })
	net.RunFor(5 * time.Second)
	for _, b := range bs {
		if got := b.FIB().Aging(); got != normal {
			t.Fatalf("%s aging = %v after TC period, want %v", b.Name(), got, normal)
		}
	}
}

// TestBPDUIgnoredOnDownPort: BPDUs that arrive racing a link-down event
// must not resurrect state on a disabled port.
func TestBPDUIgnoredOnDownPort(t *testing.T) {
	net := netsim.NewNetwork(1)
	b1 := New(net, "b1", 1, 0x8000, DefaultTimers())
	b2 := New(net, "b2", 2, 0x8000, DefaultTimers())
	l := net.Connect(b1, b2, cfg())
	b1.Start()
	b2.Start()
	net.RunFor(settle)
	net.Engine.At(net.Now(), func() { l.SetUp(false) })
	net.RunFor(time.Second)
	if b2.State(b2.Port(0)) != StateDisabled {
		t.Fatalf("port state %v after link down", b2.State(b2.Port(0)))
	}
	// Both bridges must now consider themselves root of their own island.
	if !b1.IsRoot() || !b2.IsRoot() {
		t.Fatal("isolated bridges did not reclaim root")
	}
}

// TestStopCancelsTimers: after Stop, a drained engine must terminate.
func TestStopCancelsTimers(t *testing.T) {
	net := netsim.NewNetwork(1)
	bs := buildRing(net, 3, DefaultTimers())
	net.RunFor(10 * time.Second)
	for _, b := range bs {
		b.Stop()
	}
	// With every periodic timer cancelled the queue drains; Run returning
	// is the assertion (a live hello timer would loop forever and trip
	// the event limit instead).
	net.Engine.SetEventLimit(100_000)
	net.Run()
}
