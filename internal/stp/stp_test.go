package stp

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/layers"
	"repro/internal/netsim"
)

// endpoint is a minimal host that records frames addressed to it.
type endpoint struct {
	name string
	mac  layers.MAC
	port *netsim.Port
	got  [][]byte
}

func newEndpoint(name string, n int) *endpoint {
	return &endpoint{name: name, mac: layers.HostMAC(n)}
}

func (e *endpoint) Name() string                             { return e.name }
func (e *endpoint) AttachPort(p *netsim.Port)                { e.port = p }
func (e *endpoint) PortStatusChanged(_ *netsim.Port, _ bool) {}
func (e *endpoint) HandleFrame(_ *netsim.Port, f *netsim.Frame) {
	frame := append([]byte(nil), f.Bytes()...) // borrowed: copy to keep
	dst := layers.FrameDst(frame)
	if dst == e.mac || dst.IsBroadcast() {
		e.got = append(e.got, frame)
	}
}

func (e *endpoint) send(dst layers.MAC, tag byte) {
	frame, err := layers.Serialize(
		&layers.Ethernet{Dst: dst, Src: e.mac, EtherType: layers.EtherTypeIPv4},
		layers.Payload([]byte{tag}),
	)
	if err != nil {
		panic(err)
	}
	e.port.Send(frame)
}

func cfg() netsim.LinkConfig { return netsim.DefaultLinkConfig() }

// buildRing builds n STP bridges in a ring and starts them.
func buildRing(net *netsim.Network, n int, timers Timers) []*Bridge {
	bs := make([]*Bridge, n)
	for i := range bs {
		bs[i] = New(net, "b"+string(rune('0'+i)), i+1, 0x8000, timers)
	}
	for i := range bs {
		net.Connect(bs[i], bs[(i+1)%n], cfg())
	}
	for _, b := range bs {
		b.Start()
	}
	return bs
}

// convergence time for default timers: listening+learning = 30s, plus
// hello propagation slack.
const settle = 35 * time.Second

func TestRootElectionLowestID(t *testing.T) {
	net := netsim.NewNetwork(1)
	bs := buildRing(net, 4, DefaultTimers())
	net.RunFor(settle)
	want := bs[0].ID() // lowest numID → lowest MAC → lowest bridge ID
	for _, b := range bs {
		if b.RootID() != want {
			t.Fatalf("%s believes root %x, want %x", b.Name(), b.RootID(), want)
		}
	}
	if !bs[0].IsRoot() || bs[1].IsRoot() {
		t.Fatal("IsRoot misassigned")
	}
}

func TestPriorityOverridesMAC(t *testing.T) {
	net := netsim.NewNetwork(1)
	timers := DefaultTimers()
	b1 := New(net, "b1", 1, 0x8000, timers)
	b2 := New(net, "b2", 2, 0x1000, timers) // lower priority value wins
	net.Connect(b1, b2, cfg())
	b1.Start()
	b2.Start()
	net.RunFor(settle)
	if !b2.IsRoot() {
		t.Fatal("priority did not win election")
	}
	if b1.IsRoot() {
		t.Fatal("b1 still believes it is root")
	}
}

func TestRingBlocksExactlyOnePort(t *testing.T) {
	net := netsim.NewNetwork(1)
	bs := buildRing(net, 4, DefaultTimers())
	net.RunFor(settle)
	blocked := 0
	for _, b := range bs {
		for _, p := range b.Ports() {
			switch b.State(p) {
			case StateForwarding:
			case StateBlocking:
				blocked++
			default:
				t.Fatalf("%s port %d in transient state %v after settle", b.Name(), p.Index(), b.State(p))
			}
		}
	}
	if blocked != 1 {
		t.Fatalf("blocked ports = %d, want exactly 1 in a ring", blocked)
	}
}

func TestActiveTopologyIsTree(t *testing.T) {
	net := netsim.NewNetwork(1)
	bs := buildRing(net, 5, DefaultTimers())
	net.RunFor(settle)
	assertSpanningTree(t, bs)
}

// assertSpanningTree checks the forwarding adjacencies form a spanning tree
// over the bridges: an edge is active only if both ends forward.
func assertSpanningTree(t *testing.T, bs []*Bridge) {
	t.Helper()
	idx := map[*Bridge]int{}
	for i, b := range bs {
		idx[b] = i
	}
	stateOf := func(p *netsim.Port) PortState {
		b := p.Node().(*Bridge)
		return b.State(p)
	}
	// Collect active bridge-bridge edges.
	type edge struct{ a, b int }
	var edges []edge
	seen := map[*netsim.Link]bool{}
	for _, b := range bs {
		for _, p := range b.Ports() {
			l := p.Link()
			if seen[l] || !l.Up() {
				continue
			}
			seen[l] = true
			pa, pb := l.A(), l.B()
			ba, okA := pa.Node().(*Bridge)
			bb, okB := pb.Node().(*Bridge)
			if !okA || !okB {
				continue
			}
			if stateOf(pa) == StateForwarding && stateOf(pb) == StateForwarding {
				edges = append(edges, edge{idx[ba], idx[bb]})
			}
		}
	}
	if len(edges) != len(bs)-1 {
		t.Fatalf("active edges = %d, want %d (spanning tree)", len(edges), len(bs)-1)
	}
	// Connectivity via union-find.
	parent := make([]int, len(bs))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range edges {
		ra, rb := find(e.a), find(e.b)
		if ra == rb {
			t.Fatal("cycle in active topology")
		}
		parent[ra] = rb
	}
	root := find(0)
	for i := range bs {
		if find(i) != root {
			t.Fatal("active topology not connected")
		}
	}
}

func TestHostPortsReachForwarding(t *testing.T) {
	net := netsim.NewNetwork(1)
	timers := DefaultTimers()
	b := New(net, "b", 1, 0x8000, timers)
	h := newEndpoint("h", 1)
	net.Connect(h, b, cfg())
	b.Start()
	net.RunFor(time.Second)
	if st := b.State(b.Port(0)); st != StateListening {
		t.Fatalf("state after 1s = %v, want listening", st)
	}
	net.RunFor(15 * time.Second)
	if st := b.State(b.Port(0)); st != StateLearning {
		t.Fatalf("state after 16s = %v, want learning", st)
	}
	net.RunFor(15 * time.Second)
	if st := b.State(b.Port(0)); st != StateForwarding {
		t.Fatalf("state after 31s = %v, want forwarding", st)
	}
}

func TestNoForwardingBeforeConvergence(t *testing.T) {
	net := netsim.NewNetwork(1)
	h1, h2 := newEndpoint("h1", 1), newEndpoint("h2", 2)
	b := New(net, "b", 1, 0x8000, DefaultTimers())
	net.Connect(h1, b, cfg())
	net.Connect(h2, b, cfg())
	b.Start()
	net.Engine.At(time.Second, func() { h1.send(layers.BroadcastMAC, 1) })
	net.RunFor(5 * time.Second)
	if len(h2.got) != 0 {
		t.Fatal("frame forwarded while listening")
	}
	if b.Stats().DiscardedByState == 0 {
		t.Fatal("discard not counted")
	}
}

func TestEndToEndForwardingAfterConvergence(t *testing.T) {
	net := netsim.NewNetwork(1)
	bs := buildRing(net, 4, DefaultTimers())
	h1, h2 := newEndpoint("h1", 1), newEndpoint("h2", 2)
	net.Connect(h1, bs[0], cfg())
	net.Connect(h2, bs[2], cfg())
	net.RunFor(settle)
	net.Engine.At(net.Now(), func() { h1.send(layers.BroadcastMAC, 1) })
	net.RunFor(time.Second)
	if len(h2.got) != 1 {
		t.Fatalf("h2 got %d broadcasts, want exactly 1 (no loop duplicates)", len(h2.got))
	}
	net.Engine.At(net.Now(), func() { h2.send(layers.HostMAC(1), 2) })
	net.RunFor(time.Second)
	if len(h1.got) != 1 {
		t.Fatalf("h1 got %d frames, want 1", len(h1.got))
	}
}

func TestBroadcastNoDuplicatesInMesh(t *testing.T) {
	// Full mesh of 4 bridges: heavily looped; a converged tree must
	// deliver exactly one copy.
	net := netsim.NewNetwork(1)
	bs := make([]*Bridge, 4)
	for i := range bs {
		bs[i] = New(net, "m"+string(rune('0'+i)), i+1, 0x8000, DefaultTimers())
	}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			net.Connect(bs[i], bs[j], cfg())
		}
	}
	h1, h2 := newEndpoint("h1", 1), newEndpoint("h2", 2)
	net.Connect(h1, bs[0], cfg())
	net.Connect(h2, bs[3], cfg())
	for _, b := range bs {
		b.Start()
	}
	net.RunFor(settle)
	assertSpanningTree(t, bs)
	net.Engine.At(net.Now(), func() { h1.send(layers.BroadcastMAC, 7) })
	net.RunFor(time.Second)
	if len(h2.got) != 1 {
		t.Fatalf("h2 got %d copies, want 1", len(h2.got))
	}
}

func TestReconvergenceAfterLinkFailure(t *testing.T) {
	// Ring of 4: cut a tree link; traffic must flow again after max-age /
	// fwd-delay reconvergence, and the blocked port must open.
	net := netsim.NewNetwork(1)
	bs := buildRing(net, 4, DefaultTimers())
	h1, h2 := newEndpoint("h1", 1), newEndpoint("h2", 2)
	net.Connect(h1, bs[0], cfg())
	net.Connect(h2, bs[2], cfg())
	net.RunFor(settle)

	// Verify connectivity, then cut the b0-b1 ring link.
	net.Engine.At(net.Now(), func() { h1.send(layers.HostMAC(2), 1) })
	net.RunFor(time.Second)
	if len(h2.got) != 1 {
		t.Fatal("no connectivity before failure")
	}
	cut := bs[0].Port(1).Link() // bs[0] port1 connects to bs[1]
	net.Engine.At(net.Now(), func() { cut.SetUp(false) })
	// Give 802.1D its reconvergence budget (≤ max-age + 2×fwd-delay).
	net.RunFor(55 * time.Second)
	net.Engine.At(net.Now(), func() { h1.send(layers.HostMAC(2), 2) })
	net.RunFor(2 * time.Second)
	if len(h2.got) != 2 {
		t.Fatalf("h2 got %d frames after reconvergence, want 2", len(h2.got))
	}
	// The previously blocked port must now forward.
	assertSpanningTree(t, bs)
}

func TestRootDeathReelection(t *testing.T) {
	net := netsim.NewNetwork(1)
	bs := buildRing(net, 4, DefaultTimers())
	net.RunFor(settle)
	if !bs[0].IsRoot() {
		t.Fatal("expected bs[0] as initial root")
	}
	// Kill both of the root's links (it vanishes from the topology).
	l0, l1 := bs[0].Port(0).Link(), bs[0].Port(1).Link()
	net.Engine.At(net.Now(), func() { l0.SetUp(false); l1.SetUp(false) })
	net.RunFor(60 * time.Second)
	want := bs[1].ID()
	for _, b := range bs[1:] {
		if b.RootID() != want {
			t.Fatalf("%s root = %x, want %x after re-election", b.Name(), b.RootID(), want)
		}
	}
}

func TestFastTimersConvergeFaster(t *testing.T) {
	net := netsim.NewNetwork(1)
	timers := FastTimers()
	bs := make([]*Bridge, 3)
	for i := range bs {
		bs[i] = New(net, "f"+string(rune('0'+i)), i+1, 0x8000, timers)
	}
	net.Connect(bs[0], bs[1], cfg())
	net.Connect(bs[1], bs[2], cfg())
	net.Connect(bs[2], bs[0], cfg())
	for _, b := range bs {
		b.Start()
	}
	net.RunFor(4 * time.Second) // 10× faster than the 35s default budget
	blocked := 0
	for _, b := range bs {
		for _, p := range b.Ports() {
			switch b.State(p) {
			case StateForwarding:
			case StateBlocking:
				blocked++
			default:
				t.Fatalf("transient state %v after fast settle", b.State(p))
			}
		}
	}
	if blocked != 1 {
		t.Fatalf("blocked = %d, want 1", blocked)
	}
}

func TestTopologyChangeCounted(t *testing.T) {
	net := netsim.NewNetwork(1)
	bs := buildRing(net, 3, DefaultTimers())
	net.RunFor(settle)
	var tcn uint64
	for _, b := range bs {
		tcn += b.Stats().TCNTx
	}
	before := tcn
	// Cut a forwarding link: some bridge must raise a TCN.
	var cut *netsim.Link
	for _, l := range net.Links() {
		pa, pb := l.A(), l.B()
		if pa.Node().(*Bridge).State(pa) == StateForwarding &&
			pb.Node().(*Bridge).State(pb) == StateForwarding {
			cut = l
			break
		}
	}
	if cut == nil {
		t.Fatal("no forwarding link found")
	}
	net.Engine.At(net.Now(), func() { cut.SetUp(false) })
	net.RunFor(40 * time.Second)
	tcn = 0
	for _, b := range bs {
		tcn += b.Stats().TCNTx
	}
	if tcn <= before {
		t.Fatal("no TCN transmitted after topology change")
	}
}

func TestBPDUCounters(t *testing.T) {
	net := netsim.NewNetwork(1)
	bs := buildRing(net, 3, DefaultTimers())
	net.RunFor(10 * time.Second)
	if bs[0].Stats().ConfigTx == 0 {
		t.Fatal("root sent no configs")
	}
	if bs[1].Stats().ConfigRx == 0 {
		t.Fatal("bridge received no configs")
	}
}

func TestPortRolesInRing(t *testing.T) {
	net := netsim.NewNetwork(1)
	bs := buildRing(net, 4, DefaultTimers())
	net.RunFor(settle)
	// Root's ports are all designated.
	for _, p := range bs[0].Ports() {
		if bs[0].Role(p) != RoleDesignated {
			t.Fatalf("root port role %v", bs[0].Role(p))
		}
	}
	// Every non-root bridge has exactly one root port.
	for _, b := range bs[1:] {
		rootPorts := 0
		for _, p := range b.Ports() {
			if b.Role(p) == RoleRoot {
				rootPorts++
			}
		}
		if rootPorts != 1 {
			t.Fatalf("%s has %d root ports", b.Name(), rootPorts)
		}
	}
}

func TestRoleAndStateStrings(t *testing.T) {
	if RoleDesignated.String() != "designated" || RoleRoot.String() != "root" || RoleBlocked.String() != "blocked" {
		t.Fatal("role strings")
	}
	states := map[PortState]string{
		StateDisabled: "disabled", StateBlocking: "blocking", StateListening: "listening",
		StateLearning: "learning", StateForwarding: "forwarding",
	}
	for s, want := range states {
		if s.String() != want {
			t.Fatalf("%v != %s", s, want)
		}
	}
}

func TestCostForRates(t *testing.T) {
	for rate, want := range map[int64]uint32{
		10_000_000_000: 2, 1_000_000_000: 4, 100_000_000: 19, 10_000_000: 100, 1_000_000: 250,
	} {
		if got := costFor(rate); got != want {
			t.Fatalf("costFor(%d) = %d, want %d", rate, got, want)
		}
	}
}

// Property: STP converges to a spanning tree on random connected graphs.
func TestRandomGraphsConvergeToSpanningTree(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 8; trial++ {
		n := 3 + rng.Intn(5)
		net := netsim.NewNetwork(int64(trial))
		bs := make([]*Bridge, n)
		for i := range bs {
			bs[i] = New(net, "r"+string(rune('a'+i)), i+1, 0x8000, DefaultTimers())
		}
		// Random spanning tree first (guarantees connectivity)...
		for i := 1; i < n; i++ {
			net.Connect(bs[i], bs[rng.Intn(i)], cfg())
		}
		// ...plus random extra edges for loops.
		extra := rng.Intn(n)
		for e := 0; e < extra; e++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i != j {
				net.Connect(bs[i], bs[j], cfg())
			}
		}
		for _, b := range bs {
			b.Start()
		}
		net.RunFor(90 * time.Second) // deep topologies need extra relay time
		assertSpanningTree(t, bs)
	}
}

func BenchmarkConvergenceRing8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		net := netsim.NewNetwork(1)
		bs := buildRing(net, 8, DefaultTimers())
		net.RunFor(settle)
		_ = bs
	}
}
