// Package stp implements the IEEE 802.1D spanning tree protocol baseline
// the paper's demo compares ARP-Path against (§3.1): config BPDU exchange,
// root election, port roles and states with listening/learning delays,
// message-age expiry, and topology-change notification with fast FIB aging.
// Forwarding is a learning switch constrained to forwarding-state ports.
//
// The demo ran Linux bridge_utils STP on the NIC bridges and NetFPPGA
// bridges; this package reproduces that behaviour including the slow
// reconvergence (max-age plus twice forward-delay) that the Figure 3
// experiment contrasts with ARP-Path repair.
package stp

import (
	"fmt"
	"time"

	"repro/internal/bridge"
	"repro/internal/layers"
	"repro/internal/learning"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// Timers groups the 802.1D protocol timers.
type Timers struct {
	Hello        time.Duration
	MaxAge       time.Duration
	ForwardDelay time.Duration
	// MsgAgeIncrement is added to the message age at each relay hop.
	MsgAgeIncrement time.Duration
	// Aging is the normal filtering-database aging time.
	Aging time.Duration
}

// DefaultTimers returns the standard's default values, as used by the
// demo's Linux bridges.
func DefaultTimers() Timers {
	return Timers{
		Hello:           2 * time.Second,
		MaxAge:          20 * time.Second,
		ForwardDelay:    15 * time.Second,
		MsgAgeIncrement: time.Second,
		Aging:           learning.DefaultAging,
	}
}

// WithDefaults fills every unset (zero) timer with its standard default,
// field by field: tuning only MaxAge no longer silently discards the
// adjustment because Hello was left zero.
func (t Timers) WithDefaults() Timers {
	d := DefaultTimers()
	if t.Hello == 0 {
		t.Hello = d.Hello
	}
	if t.MaxAge == 0 {
		t.MaxAge = d.MaxAge
	}
	if t.ForwardDelay == 0 {
		t.ForwardDelay = d.ForwardDelay
	}
	if t.MsgAgeIncrement == 0 {
		t.MsgAgeIncrement = d.MsgAgeIncrement
	}
	if t.Aging == 0 {
		t.Aging = d.Aging
	}
	return t
}

// FastTimers returns a 10x-accelerated profile for the repair-ablation
// experiment (T4): the fastest STP can legally be tuned, still orders of
// magnitude slower than ARP-Path repair.
func FastTimers() Timers {
	return Timers{
		Hello:           200 * time.Millisecond,
		MaxAge:          2 * time.Second,
		ForwardDelay:    1500 * time.Millisecond,
		MsgAgeIncrement: 100 * time.Millisecond,
		Aging:           30 * time.Second,
	}
}

// PortRole is the spanning-tree role assigned to a port.
type PortRole uint8

// Port roles.
const (
	RoleDesignated PortRole = iota
	RoleRoot
	RoleBlocked
)

// String names the role.
func (r PortRole) String() string {
	switch r {
	case RoleDesignated:
		return "designated"
	case RoleRoot:
		return "root"
	case RoleBlocked:
		return "blocked"
	default:
		return "role(?)"
	}
}

// PortState is the 802.1D port state.
type PortState uint8

// Port states, in transition order.
const (
	StateDisabled PortState = iota
	StateBlocking
	StateListening
	StateLearning
	StateForwarding
)

// String names the state.
func (s PortState) String() string {
	switch s {
	case StateDisabled:
		return "disabled"
	case StateBlocking:
		return "blocking"
	case StateListening:
		return "listening"
	case StateLearning:
		return "learning"
	case StateForwarding:
		return "forwarding"
	default:
		return "state(?)"
	}
}

// Stats counts protocol and dataplane events.
type Stats struct {
	ConfigTx, ConfigRx uint64
	TCNTx, TCNRx       uint64
	TopologyChanges    uint64
	Forwarded          uint64
	Flooded            uint64
	Filtered           uint64
	DiscardedByState   uint64
}

// priorityVector is the 802.1D comparison vector; lower is better.
type priorityVector struct {
	rootID   layers.BridgeID
	cost     uint32
	senderID layers.BridgeID
	portID   uint16
}

// better reports whether a beats b.
func (a priorityVector) better(b priorityVector) bool {
	if a.rootID != b.rootID {
		return a.rootID < b.rootID
	}
	if a.cost != b.cost {
		return a.cost < b.cost
	}
	if a.senderID != b.senderID {
		return a.senderID < b.senderID
	}
	return a.portID < b.portID
}

// port is the per-port protocol state.
type port struct {
	np    *netsim.Port
	id    uint16
	cost  uint32
	role  PortRole
	state PortState

	info       priorityVector // best config received here
	infoValid  bool
	infoAge    time.Duration // message age at storage time
	infoTC     bool          // TC flag of the stored config
	infoExpiry *sim.Timer

	transition *sim.Timer // pending state progression
	tcaPending bool       // set TCA on next config out this port
}

// Bridge is an 802.1D bridge.
type Bridge struct {
	*bridge.Chassis
	id     layers.BridgeID
	timers Timers
	fib    *learning.Table
	ports  map[*netsim.Port]*port
	plist  []*port // cabling order, for deterministic iteration

	rootID   layers.BridgeID
	rootCost uint32
	rootPort *port // nil when this bridge is root

	helloTimer *sim.Timer
	tcnTimer   *sim.Timer // TCN retransmission while unacknowledged
	tcDeadline time.Duration
	fastAging  bool
	stopped    bool

	stats Stats
}

// New creates an STP bridge with the given priority (lower wins root
// election; 0x8000 is the standard default, making the election fall to
// the lowest MAC — the paper's "tree rooted at an arbitrary switch").
func New(net *netsim.Network, name string, numID int, priority uint16, timers Timers) *Bridge {
	b := &Bridge{
		timers: timers,
		fib:    learning.NewTable(timers.Aging),
		ports:  make(map[*netsim.Port]*port),
	}
	b.Chassis = bridge.NewChassis(net, name, numID, b)
	b.id = layers.MakeBridgeID(priority, b.MAC())
	b.rootID = b.id
	return b
}

// ID returns the bridge identifier.
func (b *Bridge) ID() layers.BridgeID { return b.id }

// FIB exposes the forwarding table.
func (b *Bridge) FIB() *learning.Table { return b.fib }

// Stats returns a snapshot of the counters.
func (b *Bridge) Stats() Stats { return b.stats }

// IsRoot reports whether this bridge currently believes it is the root.
func (b *Bridge) IsRoot() bool { return b.rootID == b.id }

// RootID returns the believed root bridge ID.
func (b *Bridge) RootID() layers.BridgeID { return b.rootID }

// RootCost returns the believed cost to the root.
func (b *Bridge) RootCost() uint32 { return b.rootCost }

// Role returns the spanning-tree role of p.
func (b *Bridge) Role(p *netsim.Port) PortRole { return b.ports[p].role }

// State returns the 802.1D state of p.
func (b *Bridge) State(p *netsim.Port) PortState { return b.ports[p].state }

// ForwardingPorts returns the ports currently in the forwarding state.
func (b *Bridge) ForwardingPorts() []*netsim.Port {
	var out []*netsim.Port
	for _, sp := range b.plist {
		if sp.state == StateForwarding {
			out = append(out, sp.np)
		}
	}
	return out
}

// costFor maps a link rate to the 802.1D-1998 recommended path cost.
func costFor(rate int64) uint32 {
	switch {
	case rate >= 10_000_000_000:
		return 2
	case rate >= 1_000_000_000:
		return 4
	case rate >= 100_000_000:
		return 19
	case rate >= 10_000_000:
		return 100
	default:
		return 250
	}
}

// OnStart implements bridge.Protocol: assume root, open all ports.
func (b *Bridge) OnStart() {
	for i, np := range b.Ports() {
		sp := &port{
			np:   np,
			id:   uint16(0x80)<<8 | uint16(i+1),
			cost: costFor(np.Link().Config().Rate),
		}
		b.ports[np] = sp
		b.plist = append(b.plist, sp)
		if np.Up() {
			sp.state = StateBlocking
		} else {
			sp.state = StateDisabled
		}
	}
	b.recompute()
	b.helloTick()
}

// helloTick originates configs if root, then reschedules itself.
func (b *Bridge) helloTick() {
	if b.stopped {
		return
	}
	if b.IsRoot() {
		b.txAllDesignated()
	}
	b.helloTimer = b.After(b.timers.Hello, b.helloTick)
}

// Stop quiesces the bridge: periodic timers are cancelled and incoming
// BPDUs no longer arm new ones, so a drained simulation terminates. Used
// by tests; a stopped bridge keeps forwarding data frames.
func (b *Bridge) Stop() {
	b.stopped = true
	if b.helloTimer != nil {
		b.helloTimer.Stop()
	}
	if b.tcnTimer != nil {
		b.tcnTimer.Stop()
	}
	for _, sp := range b.plist {
		if sp.transition != nil {
			sp.transition.Stop()
		}
		if sp.infoExpiry != nil {
			sp.infoExpiry.Stop()
		}
	}
}

// OnPortStatus implements bridge.Protocol.
func (b *Bridge) OnPortStatus(np *netsim.Port, up bool) {
	sp := b.ports[np]
	if sp == nil { // link event before OnStart; OnStart will see Up()
		return
	}
	wasForwarding := sp.state == StateForwarding
	sp.infoValid = false
	if sp.infoExpiry != nil {
		sp.infoExpiry.Stop()
	}
	if sp.transition != nil {
		sp.transition.Stop()
	}
	if up {
		sp.state = StateBlocking
	} else {
		sp.state = StateDisabled
		b.fib.FlushPort(np)
	}
	b.recompute()
	if wasForwarding && !up {
		b.topologyChange()
	}
}

// OnFrame implements bridge.Protocol.
func (b *Bridge) OnFrame(in *netsim.Port, f *netsim.Frame) {
	v := f.View()
	if v.EtherType == layers.EtherTypeBPDU && v.Dst == layers.BPDUMulticast {
		b.handleBPDU(in, f)
		return
	}
	b.forward(in, f)
}

// forward is the state-gated learning dataplane, running entirely on the
// frame's pre-decoded view.
func (b *Bridge) forward(in *netsim.Port, f *netsim.Frame) {
	sp := b.ports[in]
	if sp == nil {
		return
	}
	now := b.Now()
	v := f.View()
	b.maybeRestoreAging(now)
	switch sp.state {
	case StateLearning:
		b.fib.LearnKey(v.SrcKey, in, now)
		b.stats.DiscardedByState++
		return
	case StateForwarding:
		b.fib.LearnKey(v.SrcKey, in, now)
	default:
		b.stats.DiscardedByState++
		return
	}
	if v.IsMulticast() {
		b.stats.Flooded++
		b.floodForwarding(in, f)
		return
	}
	out, ok := b.fib.LookupKey(v.DstKey, now)
	if ok && b.ports[out] != nil && b.ports[out].state != StateForwarding {
		ok = false // stale binding behind a non-forwarding port
	}
	switch {
	case !ok:
		b.stats.Flooded++
		b.floodForwarding(in, f)
	case out == in:
		b.stats.Filtered++
	default:
		b.stats.Forwarded++
		out.SendFrame(f)
	}
}

// floodForwarding sends f on every forwarding port except in.
func (b *Bridge) floodForwarding(in *netsim.Port, f *netsim.Frame) {
	for _, sp := range b.plist {
		if sp.np != in && sp.state == StateForwarding && sp.np.Up() {
			sp.np.SendFrame(f)
		}
	}
}

// handleBPDU processes a received BPDU. BPDUs are consumed, never
// forwarded, so decoding from the borrowed frame here is safe.
func (b *Bridge) handleBPDU(in *netsim.Port, f *netsim.Frame) {
	sp := b.ports[in]
	if sp == nil || sp.state == StateDisabled || b.stopped {
		return
	}
	var eth layers.Ethernet
	var bpdu layers.BPDU
	if eth.DecodeFromBytes(f.Bytes()) != nil || bpdu.DecodeFromBytes(eth.Payload()) != nil {
		return
	}
	if bpdu.Type == layers.BPDUTypeTCN {
		b.stats.TCNRx++
		if sp.role == RoleDesignated {
			sp.tcaPending = true
			b.txConfig(sp) // immediate ack
			b.propagateTC()
		}
		return
	}
	b.stats.ConfigRx++
	recv := priorityVector{bpdu.RootID, bpdu.RootCost, bpdu.SenderID, bpdu.PortID}
	stored := sp.info
	if !sp.infoValid || recv.better(stored) || (recv.senderID == stored.senderID && recv.portID == stored.portID) {
		// Superior info, or a refresh from the same designated port.
		sp.info = recv
		sp.infoValid = true
		sp.infoAge = bpdu.MessageAge
		sp.infoTC = bpdu.Flags&layers.BPDUFlagTopologyChange != 0
		b.armInfoExpiry(sp, bpdu.MessageAge, bpdu.MaxAge)
		b.recompute()
		if sp == b.rootPort {
			if bpdu.Flags&layers.BPDUFlagTopologyChangeAck != 0 && b.tcnTimer != nil {
				b.tcnTimer.Stop()
				b.tcnTimer = nil
			}
			if sp.infoTC {
				b.enterFastAging()
			} else {
				b.maybeRestoreAging(b.Now())
			}
			// Relay through to our designated ports.
			b.txAllDesignated()
		}
		return
	}
	// Inferior config on a designated port: reassert ourselves.
	if sp.role == RoleDesignated {
		b.txConfig(sp)
	}
}

// armInfoExpiry (re)starts the message-age expiry for stored port info.
func (b *Bridge) armInfoExpiry(sp *port, msgAge, maxAge time.Duration) {
	if sp.infoExpiry != nil {
		sp.infoExpiry.Stop()
	}
	if maxAge <= 0 {
		maxAge = b.timers.MaxAge
	}
	life := maxAge - msgAge
	if life <= 0 {
		life = b.timers.MsgAgeIncrement
	}
	sp.infoExpiry = b.After(life, func() {
		// The designated bridge behind this port went silent for max-age:
		// discard its information and re-run the election. Any port that
		// reaches forwarding as a result triggers the topology-change
		// machinery from enterState.
		sp.infoValid = false
		b.recompute()
		if b.IsRoot() {
			b.txAllDesignated()
		}
	})
}

// recompute runs root election and role assignment, then drives the port
// state machines.
func (b *Bridge) recompute() {
	// Root election.
	b.rootID = b.id
	b.rootCost = 0
	b.rootPort = nil
	var bestVec priorityVector
	for _, sp := range b.plist {
		if !sp.infoValid || sp.state == StateDisabled {
			continue
		}
		cand := priorityVector{sp.info.rootID, sp.info.cost + sp.cost, sp.info.senderID, sp.info.portID}
		if cand.rootID < b.id {
			if b.rootPort == nil || cand.better(bestVec) ||
				(cand == bestVec && sp.id < b.rootPort.id) {
				bestVec = cand
				b.rootPort = sp
			}
		}
	}
	if b.rootPort != nil {
		b.rootID = bestVec.rootID
		b.rootCost = bestVec.cost
	}

	// Role assignment.
	for _, sp := range b.plist {
		if sp.state == StateDisabled {
			continue
		}
		var role PortRole
		switch {
		case sp == b.rootPort:
			role = RoleRoot
		case !sp.infoValid:
			role = RoleDesignated
		default:
			ours := priorityVector{b.rootID, b.rootCost, b.id, sp.id}
			if ours.better(sp.info) {
				role = RoleDesignated
			} else {
				role = RoleBlocked
			}
		}
		b.setRole(sp, role)
	}
}

// setRole applies a role and advances the state machine accordingly.
func (b *Bridge) setRole(sp *port, role PortRole) {
	sp.role = role
	if role == RoleBlocked {
		if sp.state != StateBlocking {
			wasForwarding := sp.state == StateForwarding
			sp.state = StateBlocking
			if sp.transition != nil {
				sp.transition.Stop()
			}
			b.fib.FlushPort(sp.np)
			if wasForwarding {
				b.topologyChange()
			}
		}
		return
	}
	// Root or designated: progress toward forwarding.
	if sp.state == StateBlocking {
		b.enterState(sp, StateListening)
	}
}

// enterState sets a port state and schedules the next transition.
func (b *Bridge) enterState(sp *port, st PortState) {
	sp.state = st
	if sp.transition != nil {
		sp.transition.Stop()
		sp.transition = nil
	}
	switch st {
	case StateListening:
		sp.transition = b.After(b.timers.ForwardDelay, func() {
			b.enterState(sp, StateLearning)
		})
	case StateLearning:
		sp.transition = b.After(b.timers.ForwardDelay, func() {
			b.enterState(sp, StateForwarding)
		})
	case StateForwarding:
		b.stats.TopologyChanges++
		b.topologyChange()
	}
}

// topologyChange reacts to a detected topology change per 802.1D §8.8.
func (b *Bridge) topologyChange() {
	if b.stopped {
		return
	}
	if b.IsRoot() {
		b.tcDeadline = b.Now() + b.timers.MaxAge + b.timers.ForwardDelay
		b.enterFastAging()
		return
	}
	// Notify the root via TCN on the root port, retransmitting each hello
	// until acknowledged.
	if b.tcnTimer != nil {
		b.tcnTimer.Stop()
	}
	var send func()
	send = func() {
		b.txTCN()
		b.tcnTimer = b.After(b.timers.Hello, send)
	}
	send()
}

// propagateTC pushes a received TCN toward the root.
func (b *Bridge) propagateTC() {
	b.topologyChange()
}

// enterFastAging shortens FIB aging for the TC period.
func (b *Bridge) enterFastAging() {
	now := b.Now()
	if deadline := now + b.timers.MaxAge + b.timers.ForwardDelay; deadline > b.tcDeadline {
		b.tcDeadline = deadline
	}
	if !b.fastAging {
		b.fastAging = true
		b.fib.SetAging(b.timers.ForwardDelay)
		b.fib.FlushExpired(now)
	}
}

// maybeRestoreAging returns to normal aging once the TC period lapses.
func (b *Bridge) maybeRestoreAging(now time.Duration) {
	if b.fastAging && now >= b.tcDeadline {
		b.fastAging = false
		b.fib.SetAging(b.timers.Aging)
	}
}

// txAllDesignated transmits a config BPDU on every designated port.
func (b *Bridge) txAllDesignated() {
	for _, sp := range b.plist {
		if sp.role == RoleDesignated && sp.state != StateDisabled {
			b.txConfig(sp)
		}
	}
}

// txConfig transmits one config BPDU on sp.
func (b *Bridge) txConfig(sp *port) {
	var flags uint8
	if sp.tcaPending {
		flags |= layers.BPDUFlagTopologyChangeAck
		sp.tcaPending = false
	}
	msgAge := time.Duration(0)
	if !b.IsRoot() {
		if b.rootPort != nil {
			msgAge = b.rootPort.infoAge + b.timers.MsgAgeIncrement
		}
		if b.rootPort != nil && b.rootPort.infoTC {
			flags |= layers.BPDUFlagTopologyChange
		}
	} else if b.Now() < b.tcDeadline {
		flags |= layers.BPDUFlagTopologyChange
	}
	frame, err := layers.Serialize(
		&layers.Ethernet{Dst: layers.BPDUMulticast, Src: b.MAC(), EtherType: layers.EtherTypeBPDU},
		&layers.BPDU{
			Type:         layers.BPDUTypeConfig,
			Flags:        flags,
			RootID:       b.rootID,
			RootCost:     b.rootCost,
			SenderID:     b.id,
			PortID:       sp.id,
			MessageAge:   msgAge,
			MaxAge:       b.timers.MaxAge,
			HelloTime:    b.timers.Hello,
			ForwardDelay: b.timers.ForwardDelay,
		},
	)
	if err != nil {
		panic(fmt.Sprintf("stp: serialize config BPDU: %v", err))
	}
	b.stats.ConfigTx++
	sp.np.Send(frame)
}

// txTCN transmits a TCN BPDU on the root port.
func (b *Bridge) txTCN() {
	if b.rootPort == nil {
		return
	}
	frame, err := layers.Serialize(
		&layers.Ethernet{Dst: layers.BPDUMulticast, Src: b.MAC(), EtherType: layers.EtherTypeBPDU},
		&layers.BPDU{Type: layers.BPDUTypeTCN},
	)
	if err != nil {
		panic(fmt.Sprintf("stp: serialize TCN: %v", err))
	}
	b.stats.TCNTx++
	b.rootPort.np.Send(frame)
}

var _ bridge.Protocol = (*Bridge)(nil)
var _ netsim.Node = (*Bridge)(nil)
