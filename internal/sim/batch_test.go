package sim

import (
	"math/rand"
	"testing"
	"time"
)

// TestPendingCountsBufferedEvents pins the queue-size accounting across
// the batched path's three pending structures: a handler that schedules
// work mid-batch must see it in Pending() whether the engine staged it in
// the run buffer, the spill buffer, or the heap.
func TestPendingCountsBufferedEvents(t *testing.T) {
	for _, batched := range []bool{true, false} {
		e := New(1)
		e.SetBatched(batched)
		var inside []int
		for i := 0; i < 5; i++ {
			e.Schedule(time.Duration(i)*time.Microsecond, func() {})
		}
		// At t=10µs: schedule one event into the current window (same
		// timestamp ⇒ spill or heap), one at a future time (heap), then
		// record what Pending reports from inside the handler.
		e.Schedule(10*time.Microsecond, func() {
			e.Schedule(10*time.Microsecond, func() {})
			e.Schedule(20*time.Microsecond, func() {})
			inside = append(inside, e.Pending())
		})
		e.Run()
		if len(inside) != 1 || inside[0] != 2 {
			t.Fatalf("batched=%v: Pending inside handler = %v, want [2]", batched, inside)
		}
		if got := e.Pending(); got != 0 {
			t.Fatalf("batched=%v: Pending after Run = %d, want 0", batched, got)
		}
		if e.Processed() != 8 {
			t.Fatalf("batched=%v: processed %d events, want 8", batched, e.Processed())
		}
	}
}

// TestPendingCountsCanceledInBuffers mirrors the long-standing heap
// semantics on the batched path: canceled events still count in Pending
// until the queue discards them lazily.
func TestPendingCountsCanceledInBuffers(t *testing.T) {
	e := New(1)
	var tm *Timer
	e.Schedule(time.Microsecond, func() {
		tm = e.At(5*time.Microsecond, func() { t.Fatal("canceled event ran") })
		tm.Stop()
	})
	e.Run()
	if !tm.Stopped() {
		t.Fatal("Stop did not take")
	}
	if got := e.Pending(); got != 0 {
		t.Fatalf("Pending after Run = %d, want 0", got)
	}
}

// execRecord is one executed event in a differential log.
type execRecord struct {
	at          time.Duration
	owner, oseq uint64
	tag         int
}

// runRandomWorkload drives one randomized scheduling storm on a fresh
// engine and returns the execution log. The workload is built to stress
// every batched-path structure: bursts of events sharing one timestamp
// (shuffled owner order, so spill appends go out of order and fall back
// to the heap), cascades scheduled from inside handlers at the current
// timestamp and at tiny deltas (landing inside the live window), timer
// cancellations (stale entries in run/spill/heap), and occasional far
// jumps (forcing window turnover).
func runRandomWorkload(seed int64, batched bool) []execRecord {
	e := New(seed)
	e.SetBatched(batched)
	rng := rand.New(rand.NewSource(seed))
	procs := make([]*Proc, 8)
	for i := range procs {
		procs[i] = NewProc(e, uint64(i+1))
	}
	var log []execRecord
	var timers []*Timer
	tag := 0
	var spawn func(depth int) func()
	spawn = func(depth int) func() {
		id := tag
		tag++
		return func() {
			at, owner, oseq := e.CurKey()
			log = append(log, execRecord{at: at, owner: owner, oseq: oseq, tag: id})
			if depth >= 3 {
				return
			}
			n := rng.Intn(4)
			for i := 0; i < n; i++ {
				p := procs[rng.Intn(len(procs))]
				var d time.Duration
				switch rng.Intn(4) {
				case 0: // same timestamp, possibly smaller owner: window head
					d = 0
				case 1: // inside the live window
					d = time.Duration(rng.Intn(3)) * time.Nanosecond
				case 2: // near future
					d = time.Duration(rng.Intn(500)) * time.Nanosecond
				default: // far jump
					d = time.Duration(1+rng.Intn(5)) * time.Microsecond
				}
				if rng.Intn(5) == 0 {
					timers = append(timers, p.At(p.Now()+d, spawn(depth+1)))
				} else {
					p.Schedule(p.Now()+d, spawn(depth+1))
				}
			}
			// Cancel a random outstanding timer now and then, wherever its
			// entry happens to be staged.
			if len(timers) > 0 && rng.Intn(3) == 0 {
				i := rng.Intn(len(timers))
				timers[i].Stop()
				timers[i] = timers[len(timers)-1]
				timers = timers[:len(timers)-1]
			}
		}
	}
	// Seed bursts: many events at identical timestamps under shuffled
	// owners, plus a sprinkle of distinct times.
	for burst := 0; burst < 6; burst++ {
		at := time.Duration(burst) * 300 * time.Nanosecond
		order := rng.Perm(len(procs))
		for _, pi := range order {
			for k := 0; k < 3; k++ {
				procs[pi].Schedule(at, spawn(0))
			}
		}
	}
	e.Run()
	return log
}

// TestBatchedMatchesUnbatchedDifferential is the engine-level half of the
// batch determinism argument: for a sweep of seeds, a randomized workload
// executes in the byte-identical order on the batched window-drain path
// and the unbatched one-pop-per-event reference path.
func TestBatchedMatchesUnbatchedDifferential(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		a := runRandomWorkload(seed, true)
		b := runRandomWorkload(seed, false)
		if len(a) != len(b) {
			t.Fatalf("seed %d: batched ran %d events, unbatched %d", seed, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: execution diverges at event %d: batched %+v, unbatched %+v",
					seed, i, a[i], b[i])
			}
		}
	}
}

// TestSpillOverflowKeepsOrder overflows the spill cap from inside a single
// window — far more same-timestamp events than maxSpill, scheduled in
// shuffled owner order so most inserts also fail the monotonic-append rule
// — and asserts the engine still executes every event in exact
// (time, owner, oseq) order via the heap-merge fallback.
func TestSpillOverflowKeepsOrder(t *testing.T) {
	e := New(7)
	rng := rand.New(rand.NewSource(7))
	const owners = 64
	procs := make([]*Proc, owners)
	for i := range procs {
		procs[i] = NewProc(e, uint64(i+1))
	}
	var log []execRecord
	record := func() {
		at, owner, oseq := e.CurKey()
		log = append(log, execRecord{at: at, owner: owner, oseq: oseq})
	}
	const at = time.Microsecond
	e.Schedule(at, func() {
		// 2×maxSpill+64 events, all at the executing timestamp, owners
		// shuffled: the window bound is beyond them all, so every one is
		// spill-eligible and most must overflow or divert to the heap.
		for i := 0; i < 2*maxSpill+64; i++ {
			procs[rng.Intn(owners)].Schedule(at, record)
		}
	})
	e.Run()
	if len(log) != 2*maxSpill+64 {
		t.Fatalf("ran %d events, want %d", len(log), 2*maxSpill+64)
	}
	for i := 1; i < len(log); i++ {
		p, c := log[i-1], log[i]
		if c.at != p.at {
			t.Fatalf("event %d: time moved %v -> %v inside a same-time burst", i, p.at, c.at)
		}
		if c.owner < p.owner || (c.owner == p.owner && c.oseq <= p.oseq) {
			t.Fatalf("event %d: key order violated: (%d,%d) after (%d,%d)",
				i, c.owner, c.oseq, p.owner, p.oseq)
		}
	}
}

// TestSetDefaultBatched pins the package-level switch the differential
// fabric tests rely on to force every engine of a sharded run (control
// plus shards) onto the reference path.
func TestSetDefaultBatched(t *testing.T) {
	prev := SetDefaultBatched(false)
	defer SetDefaultBatched(prev)
	if e := New(1); e.Batched() {
		t.Fatal("New ignored SetDefaultBatched(false)")
	}
	SetDefaultBatched(true)
	if e := New(1); !e.Batched() {
		t.Fatal("New ignored SetDefaultBatched(true)")
	}
}
