package sim

import (
	"testing"
	"time"
)

// TestTimerWhenZeroValue is the regression test for the nil-guard in
// Timer.When: a zero or nil Timer must report zero instead of panicking,
// matching the nil-safety of Stop and Stopped.
func TestTimerWhenZeroValue(t *testing.T) {
	var zero Timer
	if got := zero.When(); got != 0 {
		t.Fatalf("zero Timer.When() = %v, want 0", got)
	}
	var nilT *Timer
	if got := nilT.When(); got != 0 {
		t.Fatalf("nil Timer.When() = %v, want 0", got)
	}
	e := New(1)
	tm := e.After(5*time.Millisecond, func() {})
	if got := tm.When(); got != 5*time.Millisecond {
		t.Fatalf("When() = %v, want 5ms", got)
	}
}

func TestScheduleRunsWithoutHandle(t *testing.T) {
	e := New(1)
	var order []int
	e.Schedule(2*time.Millisecond, func() { order = append(order, 2) })
	e.Schedule(time.Millisecond, func() { order = append(order, 1) })
	e.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v", order)
	}
}

// counterRunner counts RunEvent invocations per arg.
type counterRunner struct {
	args []int32
}

func (c *counterRunner) RunEvent(arg int32) { c.args = append(c.args, arg) }

func TestScheduleRunnerPassesArgs(t *testing.T) {
	e := New(1)
	r := &counterRunner{}
	e.ScheduleRunner(time.Millisecond, r, 7)
	e.ScheduleRunner(time.Millisecond, r, 9)
	e.Run()
	if len(r.args) != 2 || r.args[0] != 7 || r.args[1] != 9 {
		t.Fatalf("args = %v", r.args)
	}
}

// TestPooledEventsInterleaveWithTimers checks that recycled events and
// Timer-bearing events share one queue with FIFO tie-breaking intact.
func TestPooledEventsInterleaveWithTimers(t *testing.T) {
	e := New(1)
	var order []string
	e.At(time.Millisecond, func() { order = append(order, "timer") })
	e.Schedule(time.Millisecond, func() { order = append(order, "pooled") })
	e.At(time.Millisecond, func() { order = append(order, "timer2") })
	e.Run()
	want := []string{"timer", "pooled", "timer2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestPooledEventRecyclingIsSafe hammers Schedule from inside events so
// recycled event objects are reused while earlier callbacks still run.
func TestPooledEventRecyclingIsSafe(t *testing.T) {
	e := New(1)
	count := 0
	var chain func()
	chain = func() {
		count++
		if count < 1000 {
			e.Schedule(e.Now()+time.Microsecond, chain)
		}
	}
	e.Schedule(0, chain)
	e.Run()
	if count != 1000 {
		t.Fatalf("count = %d, want 1000", count)
	}
}

func TestWheelFiresAtTickBoundary(t *testing.T) {
	e := New(1)
	w := NewWheel(e, time.Millisecond)
	var firedAt time.Duration = -1
	w.After(2500*time.Microsecond, func() { firedAt = e.Now() })
	e.Run()
	// Deadline 2.5ms rounds up to the 3ms boundary: never early, at most
	// one tick late.
	if firedAt != 3*time.Millisecond {
		t.Fatalf("fired at %v, want 3ms", firedAt)
	}
}

func TestWheelStop(t *testing.T) {
	e := New(1)
	w := NewWheel(e, time.Millisecond)
	fired := false
	tm := w.After(5*time.Millisecond, func() { fired = true })
	if !w.Active(tm) {
		t.Fatal("timer not active after After")
	}
	if !w.Stop(tm) {
		t.Fatal("Stop reported failure on a live timer")
	}
	if w.Stop(tm) {
		t.Fatal("second Stop succeeded")
	}
	if w.Active(tm) {
		t.Fatal("timer active after Stop")
	}
	e.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
	if w.Len() != 0 {
		t.Fatalf("Len = %d, want 0", w.Len())
	}
}

func TestWheelZeroHandleInert(t *testing.T) {
	e := New(1)
	w := NewWheel(e, time.Millisecond)
	var zero WheelTimer
	if w.Stop(zero) || w.Active(zero) {
		t.Fatal("zero WheelTimer must be inert")
	}
}

// TestWheelCoarseCascade arms a timer beyond the fine horizon (64 ticks)
// and far beyond the coarse horizon (64*64 ticks) to exercise cascading.
func TestWheelCoarseCascade(t *testing.T) {
	e := New(1)
	w := NewWheel(e, time.Millisecond)
	var fired []time.Duration
	w.After(100*time.Millisecond, func() { fired = append(fired, e.Now()) })  // coarse level
	w.After(5000*time.Millisecond, func() { fired = append(fired, e.Now()) }) // beyond one coarse lap
	e.Run()
	if len(fired) != 2 {
		t.Fatalf("fired %d timers, want 2", len(fired))
	}
	if fired[0] != 100*time.Millisecond {
		t.Fatalf("coarse timer fired at %v, want 100ms", fired[0])
	}
	if fired[1] != 5000*time.Millisecond {
		t.Fatalf("multi-lap timer fired at %v, want 5s", fired[1])
	}
}

// TestWheelRearmAfterIdle lets the wheel drain and virtual time advance,
// then arms again: the cursor must fast-forward instead of scheduling a
// tick in the past (which would panic the engine).
func TestWheelRearmAfterIdle(t *testing.T) {
	e := New(1)
	w := NewWheel(e, time.Millisecond)
	w.After(time.Millisecond, func() {})
	e.Run()
	// Advance time with unrelated events while the wheel sleeps.
	e.At(500*time.Millisecond, func() {})
	e.Run()
	var firedAt time.Duration
	w.After(3*time.Millisecond, func() { firedAt = e.Now() })
	e.Run()
	if firedAt < 503*time.Millisecond || firedAt > 504*time.Millisecond {
		t.Fatalf("re-armed timer fired at %v, want ~503ms", firedAt)
	}
}

// TestWheelMassCancel arms a batch and cancels them all, the pattern the
// repair path leans on; the arena must recycle without growth on re-arm.
func TestWheelMassCancel(t *testing.T) {
	e := New(1)
	w := NewWheel(e, time.Millisecond)
	handles := make([]WheelTimer, 100)
	for i := range handles {
		handles[i] = w.After(50*time.Millisecond, func() { t.Fatal("canceled timer fired") })
	}
	arenaAfterFirst := len(w.gen)
	for _, h := range handles {
		if !w.Stop(h) {
			t.Fatal("Stop failed")
		}
	}
	// Re-arm the same count: the arena must not grow.
	fired := 0
	for range handles {
		w.After(10*time.Millisecond, func() { fired++ })
	}
	if len(w.gen) != arenaAfterFirst {
		t.Fatalf("arena grew from %d to %d on re-arm", arenaAfterFirst, len(w.gen))
	}
	e.Run()
	if fired != 100 {
		t.Fatalf("fired = %d, want 100", fired)
	}
}

// TestWheelMixedDueAndMultiLapSlot puts due entries and one-lap-later
// entries in the same coarse slot: the cascade must fire the former on
// time and re-park the latter for the next lap without losing either.
func TestWheelMixedDueAndMultiLapSlot(t *testing.T) {
	e := New(1)
	w := NewWheel(e, time.Millisecond)
	const lap = wheelFineSlots * wheelCoarseSlots // 4096 ticks
	var due, late int
	for i := 0; i < 5; i++ {
		w.After((100+time.Duration(i))*time.Millisecond, func() { due++ })
		w.After((100+time.Duration(i)+lap)*time.Millisecond, func() { late++ })
	}
	e.RunUntil(200 * time.Millisecond)
	if due != 5 || late != 0 {
		t.Fatalf("after first lap: due=%d late=%d, want 5/0", due, late)
	}
	e.Run()
	if late != 5 {
		t.Fatalf("multi-lap timers fired %d, want 5", late)
	}
}

// TestWheelDoesNotKeepRunAlive: with no timers armed the wheel schedules
// nothing, so Network.Run-style full drains terminate.
func TestWheelDoesNotKeepRunAlive(t *testing.T) {
	e := New(1)
	w := NewWheel(e, time.Millisecond)
	fired := false
	w.After(2*time.Millisecond, func() { fired = true })
	e.Run() // must terminate
	if !fired {
		t.Fatal("timer did not fire")
	}
	if e.Pending() != 0 {
		t.Fatalf("pending events after drain: %d", e.Pending())
	}
}
