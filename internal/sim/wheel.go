package sim

import (
	"fmt"
	"time"
)

// Wheel geometry: 64 fine slots of one tick each, backed by 64 coarse
// slots of 64 ticks each. Timers beyond the coarse horizon stay in the
// coarse level and cascade again when their slot comes around.
const (
	wheelFineSlots   = 64
	wheelCoarseSlots = 64
)

// WheelTimer is a handle to a timer armed on a Wheel. The zero value is
// not a valid handle; Stop and Active treat it as already fired.
type WheelTimer struct {
	idx int32  // arena slot + 1 (0 = invalid)
	gen uint32 // generation guard against arena reuse
}

// wheelLive marks a live arena slot in the nextFree column: free slots
// hold the next free index (or -1 at the list tail), so one sentinel
// doubles as the liveness flag and keeps the arena at four columns.
const wheelLive int32 = -2

// slotRef is a reference from a slot to an arena entry. The generation is
// checked when the slot drains so canceled timers are skipped without the
// cancel path ever touching slot storage.
type slotRef struct {
	idx int32
	gen uint32
}

// Wheel is a coarse hierarchical timer wheel driven by an Engine. It
// exists for the protocol timers that are armed per flow and usually
// canceled (ARP-Path repair and lock windows): a heap timer costs one
// event allocation and O(log n) heap churn per arm/cancel, while the
// wheel arms into a recycled arena slot and cancels with a generation
// bump. The price is coarseness — callbacks fire on the first tick
// boundary at or after their deadline, never early, up to one tick late.
//
// The timer arena is laid out struct-of-arrays: the drain and cascade
// loops touch only the gen column (stale-ref check) and the fireTick
// column (due check), so skipping a canceled timer reads eight bytes
// instead of dragging a 40-byte entry with its callback pointer through
// the cache. The fn column is loaded only for timers that actually fire.
//
// The wheel only ticks while timers are armed, so it never keeps an
// otherwise-drained Engine.Run alive.
type Wheel struct {
	p      *Proc
	tick   time.Duration
	fine   [wheelFineSlots][]slotRef
	coarse [wheelCoarseSlots][]slotRef
	// Arena columns, indexed by slot. Entries are reused through the free
	// list threaded into nextFree, so arming timers in steady state does
	// not allocate; the generation counter invalidates stale WheelTimer
	// handles cheaply, which is what makes cancellation O(1) with no heap
	// fix-up.
	gen      []uint32
	fireTick []int64
	fn       []func()
	nextFree []int32
	free     int32     // head of the arena free list, -1 when empty
	active   int       // armed (non-canceled) timers
	curTick  int64     // last processed tick number
	ticking  bool      // a tick event is pending on the engine
	scratch  []slotRef // cascade staging: slot slices share storage with
	// the refs being walked, and a multi-lap entry may re-place into the
	// very slot being drained, so cascading iterates a detached copy.
}

// NewWheel creates a wheel with the given tick granularity on e, with tick
// events carried by the engine's root identity.
func NewWheel(e *Engine, tick time.Duration) *Wheel {
	return NewWheelOn(e.Root(), tick)
}

// NewWheelOn creates a wheel whose tick events are scheduled under the
// given identity — a bridge's repair wheel ticks as that bridge, keeping
// the event order partition-independent.
func NewWheelOn(p *Proc, tick time.Duration) *Wheel {
	if tick <= 0 {
		panic("sim: wheel tick must be positive")
	}
	return &Wheel{p: p, tick: tick, free: -1, curTick: int64(p.Now() / tick)}
}

// Tick returns the wheel's granularity.
func (w *Wheel) Tick() time.Duration { return w.tick }

// Len returns the number of armed timers.
func (w *Wheel) Len() int { return w.active }

// After arms fn to fire on the first tick boundary at or after d from
// now. It returns a handle for Stop; unlike Engine.After no per-timer
// event is allocated.
func (w *Wheel) After(d time.Duration, fn func()) WheelTimer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative wheel delay %v", d))
	}
	if fn == nil {
		panic("sim: nil wheel callback")
	}
	// The wheel stops ticking when it empties, so the cursor may lag far
	// behind virtual time; catch it up before arming or the next tick
	// would be scheduled in the past. Stale slot references from before
	// the jump are dead (their arena generations were bumped) and get
	// skipped when their slots eventually drain.
	if w.active == 0 && !w.ticking {
		if nt := int64(w.p.Now() / w.tick); nt > w.curTick {
			w.curTick = nt
		}
	}
	deadline := w.p.Now() + d
	// ceil(deadline/tick), but at least one tick ahead of the cursor so
	// the callback never fires synchronously or in the past.
	fire := int64((deadline + w.tick - 1) / w.tick)
	if fire <= w.curTick {
		fire = w.curTick + 1
	}

	idx := w.alloc()
	w.fireTick[idx] = fire
	w.fn[idx] = fn
	g := w.gen[idx]
	w.place(slotRef{idx: idx, gen: g}, fire)
	w.active++
	w.ensureTicking()
	return WheelTimer{idx: idx + 1, gen: g}
}

// Stop cancels the timer. It reports whether the call prevented the
// callback from firing; stopping a zero, fired, or already-stopped timer
// returns false. Cancellation is O(1): the arena entry is invalidated by
// a generation bump and freed, and the stale slot reference is skipped
// when its slot drains.
func (w *Wheel) Stop(t WheelTimer) bool {
	if t.idx == 0 {
		return false
	}
	idx := t.idx - 1
	if int(idx) >= len(w.gen) {
		return false
	}
	if w.nextFree[idx] != wheelLive || w.gen[idx] != t.gen {
		return false
	}
	w.release(idx)
	w.active--
	return true
}

// Active reports whether the timer is still armed.
func (w *Wheel) Active(t WheelTimer) bool {
	if t.idx == 0 {
		return false
	}
	idx := t.idx - 1
	return int(idx) < len(w.gen) && w.nextFree[idx] == wheelLive && w.gen[idx] == t.gen
}

// alloc takes an arena index from the free list, growing every column
// when it is dry.
//
//fabric:hotpath
func (w *Wheel) alloc() int32 {
	if w.free >= 0 {
		idx := w.free
		w.free = w.nextFree[idx]
		w.nextFree[idx] = wheelLive
		return idx
	}
	w.gen = append(w.gen, 0)
	w.fireTick = append(w.fireTick, 0)
	w.fn = append(w.fn, nil)
	w.nextFree = append(w.nextFree, wheelLive)
	return int32(len(w.gen) - 1)
}

// release invalidates and frees one arena entry.
//
//fabric:hotpath
func (w *Wheel) release(idx int32) {
	w.gen[idx]++
	w.fn[idx] = nil
	w.nextFree[idx] = w.free
	w.free = idx
}

// place files a reference into the fine or coarse level by distance from
// the cursor.
//
//fabric:hotpath
func (w *Wheel) place(r slotRef, fire int64) {
	if fire-w.curTick < wheelFineSlots {
		s := int(fire % wheelFineSlots)
		w.fine[s] = append(w.fine[s], r)
	} else {
		s := int((fire / wheelFineSlots) % wheelCoarseSlots)
		w.coarse[s] = append(w.coarse[s], r)
	}
}

// ensureTicking schedules the next tick event unless one is pending.
func (w *Wheel) ensureTicking() {
	if w.ticking || w.active == 0 {
		return
	}
	w.ticking = true
	w.p.ScheduleRunner(time.Duration(w.curTick+1)*w.tick, w, 0)
}

// RunEvent implements Runner: one wheel tick. It advances the cursor,
// cascades the coarse slot on fine-wheel wrap-around, drains the due fine
// slot, and re-arms itself while timers remain.
//
//fabric:hotpath
func (w *Wheel) RunEvent(int32) {
	w.ticking = false
	w.curTick++

	// Cascade the coarse slot that covers the fine window we just entered.
	if w.curTick%wheelFineSlots == 0 {
		s := int((w.curTick / wheelFineSlots) % wheelCoarseSlots)
		w.scratch = append(w.scratch[:0], w.coarse[s]...)
		w.coarse[s] = w.coarse[s][:0]
		for _, r := range w.scratch {
			if w.gen[r.idx] != r.gen {
				continue // canceled; reference was stale
			}
			w.place(r, w.fireTick[r.idx])
		}
	}

	// Drain the due fine slot.
	s := int(w.curTick % wheelFineSlots)
	refs := w.fine[s]
	w.fine[s] = w.fine[s][:0]
	for _, r := range refs {
		if w.gen[r.idx] != r.gen {
			continue
		}
		if ft := w.fireTick[r.idx]; ft > w.curTick {
			// A coarse resident parked here >64 ticks out: not due yet.
			w.place(r, ft)
			continue
		}
		fn := w.fn[r.idx]
		w.release(r.idx)
		w.active--
		fn()
	}
	w.ensureTicking()
}

var _ Runner = (*Wheel)(nil)
