// Package sim provides the deterministic discrete-event simulation kernel
// used by every other package in this repository.
//
// The kernel models virtual time as a time.Duration measured from the start
// of the run. Events are callbacks scheduled at absolute virtual times and
// are executed in (time, scheduling-order) order, which makes every run with
// the same seed and the same inputs bit-for-bit reproducible. The paper's
// NetFPGA testbed resolves races between flooded frame copies in hardware;
// here the same races are resolved by the deterministic event order.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// DefaultEventLimit bounds the number of events a single Run may process.
// It exists purely as a runaway-loop backstop for buggy protocols (for
// example a bridge that floods its own flood); well-formed simulations stay
// far below it. Use SetEventLimit to raise it for very long runs.
const DefaultEventLimit = 50_000_000

// Timer is a handle to a scheduled event. The zero value is not a valid
// Timer; handles are produced by Engine.At and Engine.After.
type Timer struct {
	ev *event
}

// Stop cancels the timer. It reports whether the call prevented the event
// from firing: false means the event already ran (or was already stopped).
// Stopping a nil Timer is a no-op that returns false.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.canceled || t.ev.done {
		return false
	}
	t.ev.canceled = true
	return true
}

// Stopped reports whether the timer was canceled before it fired.
func (t *Timer) Stopped() bool { return t != nil && t.ev != nil && t.ev.canceled }

// When returns the virtual time the event is (or was) scheduled to fire
// at. A nil or zero Timer has no event and reports zero, mirroring the
// nil-safety of Stop and Stopped.
func (t *Timer) When() time.Duration {
	if t == nil || t.ev == nil {
		return 0
	}
	return t.ev.at
}

// Runner is the allocation-free event callback: an object whose RunEvent
// method fires when the event comes due. Unlike a closure handed to At,
// a Runner carries its own state, so scheduling one allocates nothing —
// the engine recycles the internal event object after it fires. arg
// distinguishes multiple events pending on the same Runner (netsim uses
// it to tell a serializer-free event from a frame arrival).
type Runner interface {
	RunEvent(arg int32)
}

type event struct {
	at       time.Duration
	seq      uint64 // tie-breaker: FIFO among events with equal timestamps
	fn       func()
	runner   Runner // alternative to fn for pooled, closure-free events
	rarg     int32  // argument passed to runner.RunEvent
	pooled   bool   // recycle after firing (no Timer handle exists)
	canceled bool
	done     bool
	index    int // heap index, -1 once popped
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; all protocol code runs inside event callbacks on the
// loop's goroutine, which is how the real dataplane pipeline of a bridge is
// serialized per port anyway.
type Engine struct {
	now       time.Duration
	seq       uint64
	queue     eventHeap
	free      []*event // recycled pooled events (Schedule/ScheduleRunner)
	rng       *rand.Rand
	seed      int64
	processed uint64
	limit     uint64
}

// New returns an Engine whose random source is seeded with seed. Two engines
// built with the same seed and fed the same schedule produce identical runs.
func New(seed int64) *Engine {
	return &Engine{
		rng:   rand.New(rand.NewSource(seed)),
		seed:  seed,
		limit: DefaultEventLimit,
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Seed returns the seed the engine was created with.
func (e *Engine) Seed() int64 { return e.seed }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events still queued (including canceled
// events that have not yet been discarded).
func (e *Engine) Pending() int { return len(e.queue) }

// SetEventLimit replaces the runaway-loop backstop. n must be positive.
func (e *Engine) SetEventLimit(n uint64) {
	if n == 0 {
		panic("sim: event limit must be positive")
	}
	e.limit = n
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// is a programming error and panics; scheduling at the current time is
// allowed and runs after all previously scheduled events for that time.
func (e *Engine) At(t time.Duration, fn func()) *Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event callback")
	}
	ev := &event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return &Timer{ev: ev}
}

// newPooled takes an event object from the free list (or allocates one)
// and enqueues it. Pooled events have no Timer handle and cannot be
// canceled, which is what makes recycling them safe.
func (e *Engine) newPooled(t time.Duration) *event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		*ev = event{}
	} else {
		ev = &event{}
	}
	ev.at = t
	ev.seq = e.seq
	ev.pooled = true
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// Schedule runs fn at absolute virtual time t like At, but returns no
// Timer handle: the event cannot be canceled, and in exchange the engine
// recycles the event object, so steady-state scheduling does not allocate
// beyond the closure itself.
func (e *Engine) Schedule(t time.Duration, fn func()) {
	if fn == nil {
		panic("sim: nil event callback")
	}
	e.newPooled(t).fn = fn
}

// ScheduleRunner enqueues r.RunEvent(arg) at absolute virtual time t.
// Like Schedule it returns no handle and recycles the event; because the
// callback is an interface rather than a closure, a caller that reuses
// its Runner objects schedules with zero allocations — the netsim hot
// path depends on this.
func (e *Engine) ScheduleRunner(t time.Duration, r Runner, arg int32) {
	if r == nil {
		panic("sim: nil event runner")
	}
	ev := e.newPooled(t)
	ev.runner = r
	ev.rarg = arg
}

// After schedules fn to run d after the current virtual time. Negative d
// panics.
func (e *Engine) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Step executes the next pending event, if any, and reports whether one ran.
// Canceled events are discarded without counting as a step.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.canceled {
			continue
		}
		if ev.at < e.now {
			panic("sim: event queue went backwards") // unreachable by construction
		}
		e.now = ev.at
		ev.done = true
		e.processed++
		if ev.runner != nil {
			r, arg := ev.runner, ev.rarg
			e.recycle(ev)
			r.RunEvent(arg)
		} else {
			fn := ev.fn
			if ev.pooled {
				e.recycle(ev)
			}
			fn()
		}
		return true
	}
	return false
}

// recycle returns a pooled event to the free list. Called before the
// callback runs so the callback may itself schedule and reuse the object.
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	ev.runner = nil
	e.free = append(e.free, ev)
}

// Run executes events until the queue drains. It panics if the event limit
// is exceeded, which in practice means a protocol is generating events
// faster than it consumes them (a forwarding loop).
func (e *Engine) Run() {
	start := e.processed
	for e.Step() {
		if e.processed-start > e.limit {
			panic(fmt.Sprintf("sim: event limit %d exceeded at t=%v — probable forwarding loop", e.limit, e.now))
		}
	}
}

// RunUntil executes every event scheduled at or before t, then advances the
// clock to exactly t. It panics on event-limit overrun like Run.
func (e *Engine) RunUntil(t time.Duration) {
	if t < e.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) before now %v", t, e.now))
	}
	start := e.processed
	for {
		next, ok := e.peek()
		if !ok || next > t {
			break
		}
		e.Step()
		if e.processed-start > e.limit {
			panic(fmt.Sprintf("sim: event limit %d exceeded at t=%v — probable forwarding loop", e.limit, e.now))
		}
	}
	e.now = t
}

// RunFor executes events for the next d of virtual time (RunUntil(Now()+d)).
func (e *Engine) RunFor(d time.Duration) { e.RunUntil(e.now + d) }

// peek returns the timestamp of the next live event.
func (e *Engine) peek() (time.Duration, bool) {
	for len(e.queue) > 0 {
		if e.queue[0].canceled {
			heap.Pop(&e.queue)
			continue
		}
		return e.queue[0].at, true
	}
	return 0, false
}

// NextEventAt returns the virtual time of the next pending live event.
func (e *Engine) NextEventAt() (time.Duration, bool) { return e.peek() }
