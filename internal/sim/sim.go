// Package sim provides the deterministic discrete-event simulation kernel
// used by every other package in this repository.
//
// The kernel models virtual time as a time.Duration measured from the start
// of the run. Events are callbacks scheduled at absolute virtual times and
// are executed in (time, owner, owner-sequence) order — see Proc — which
// makes every run with the same seed and the same inputs bit-for-bit
// reproducible. The paper's NetFPGA testbed resolves races between flooded
// frame copies in hardware; here the same races are resolved by the
// deterministic event order.
//
// The ordering key deserves a word, because it is what makes the sharded
// parallel engine (DESIGN.md §8) possible. Every event is stamped by the
// Proc that scheduled it: a scheduling identity owned by exactly one
// simulated entity (a node, one direction of a link, or the root driver).
// Ties at equal virtual times break by (owner id, per-owner sequence), and
// both components are functions of that one entity's own deterministic
// history — never of how events from unrelated entities interleave. Two
// events that tie across owners touch disjoint state, so their relative
// order is fixed arbitrarily (by owner id) but consistently. The result is
// an execution order that does not depend on how the fabric is partitioned
// into shards, which is the determinism bedrock the parallel coordinator
// in internal/netsim builds on.
//
// Representation (DESIGN.md §11): events live in a generation-guarded
// arena and the pending queue is a binary heap of pointer-free 32-byte
// entries carrying the full ordering key inline. Comparisons during heap
// maintenance touch only the contiguous entry slice — no pointer chasing,
// no interface dispatch, no GC write barriers on sift swaps — and
// cancellation is a generation bump, with stale entries skipped lazily
// when the queue reaches them. On top of that sits batched window-drain
// execution (Run/RunUntil/RunWindowKey): the heap's front window is popped
// into a reusable run buffer and dispatched as a batch, with events
// scheduled *during* the batch that fall inside the window going to a
// small insertion-sorted spill buffer instead of the heap. Execution
// always takes the minimum pending key across run buffer, spill buffer
// and heap, so the order is exactly the classic one-pop-per-event order —
// the batching is invisible everywhere except the wall clock.
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// DefaultEventLimit bounds the number of events a single Run may process.
// It exists purely as a runaway-loop backstop for buggy protocols (for
// example a bridge that floods its own flood); well-formed simulations stay
// far below it. Use SetEventLimit to raise it for very long runs.
const DefaultEventLimit = 50_000_000

// Batch geometry. maxBatch is how many heap-front events one refill moves
// into the run buffer: big enough to amortize the per-batch bookkeeping,
// small enough that the window (bounded by the next heap key after the
// refill) stays short and the spill buffer stays cache-resident. maxSpill
// caps the *pending* spill tail; events past it fall back to the heap,
// which the dispatch merge also consumes, so overflow affects cost, never
// order.
const (
	maxBatch = 128
	maxSpill = 512
)

// defaultBatched is the execution mode New hands to fresh engines. The
// differential determinism tests flip it to force entire fabrics (shard
// engines included) onto the unbatched reference path; see
// SetDefaultBatched.
var defaultBatched = true

// SetDefaultBatched sets whether engines created by New use batched
// window-drain execution (the default) or the unbatched one-pop-per-event
// reference path. It exists for differential testing — run a workload both
// ways, require byte-identical traces — and must not be called while
// engines are running. Returns the previous value.
func SetDefaultBatched(on bool) bool {
	prev := defaultBatched
	defaultBatched = on
	return prev
}

// Timer is a handle to a scheduled event. The zero value is not a valid
// Timer; handles are produced by Engine.At and Engine.After.
type Timer struct {
	eng     *Engine
	at      time.Duration
	idx     int32 // arena slot + 1; 0 = no event
	gen     uint32
	stopped bool
}

// Stop cancels the timer. It reports whether the call prevented the event
// from firing: false means the event already ran (or was already stopped).
// Stopping a nil Timer is a no-op that returns false. Cancellation is
// O(1): the arena slot is released under a generation bump and the queue
// entry is skipped when the queue reaches it.
func (t *Timer) Stop() bool {
	if t == nil || t.idx == 0 || t.stopped {
		return false
	}
	e := t.eng
	a := &e.arena[t.idx-1]
	if a.free || a.gen != t.gen {
		return false // already fired
	}
	e.release(t.idx - 1)
	t.stopped = true
	return true
}

// Stopped reports whether the timer was canceled before it fired.
func (t *Timer) Stopped() bool { return t != nil && t.stopped }

// When returns the virtual time the event is (or was) scheduled to fire
// at. A nil or zero Timer has no event and reports zero, mirroring the
// nil-safety of Stop and Stopped.
func (t *Timer) When() time.Duration {
	if t == nil {
		return 0
	}
	return t.at
}

// Runner is the allocation-free event callback: an object whose RunEvent
// method fires when the event comes due. Unlike a closure handed to At,
// a Runner carries its own state, so scheduling one allocates nothing —
// the engine recycles the arena slot after it fires. arg distinguishes
// multiple events pending on the same Runner (netsim uses it to tell a
// serializer-free event from a frame arrival).
type Runner interface {
	RunEvent(arg int32)
}

// event is one arena slot: the payload of a scheduled event. The ordering
// key does not live here — it rides in the queue entry — so heap
// maintenance never touches the arena. Slots are recycled through a free
// list; the generation counter invalidates stale queue entries and Timer
// handles cheaply, which is what makes cancellation O(1) with no heap
// fix-up.
type event struct {
	fn       func()
	runner   Runner // alternative to fn for pooled, closure-free events
	rarg     int32  // argument passed to runner.RunEvent
	gen      uint32 // bumped on release; guards entries and Timer handles
	free     bool
	nextFree int32
}

// entry is one pending event in the queue, run buffer or spill buffer:
// the full ordering key inline plus the generation-guarded arena
// reference. Entries are 32 pointer-free bytes, so sift swaps are plain
// memory moves with no GC write barrier and key comparisons stay inside
// the contiguous slice.
type entry struct {
	at          time.Duration
	owner, oseq uint64 // scheduling identity (owner 0 = the root driver) + per-owner seq
	idx         int32
	gen         uint32
}

// entryLess orders entries by (time, owner, owner-sequence).
func entryLess(a, b *entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.owner != b.owner {
		return a.owner < b.owner
	}
	return a.oseq < b.oseq
}

// keyBelow reports whether (at, owner, oseq) sorts strictly before the
// bound key.
func keyBelow(at time.Duration, owner, oseq uint64, bAt time.Duration, bOwner, bOseq uint64) bool {
	if at != bAt {
		return at < bAt
	}
	if owner != bOwner {
		return owner < bOwner
	}
	return oseq < bOseq
}

// eventHeap is a binary min-heap of entries with the comparison inlined —
// no container/heap interface dispatch on the hot path.
type eventHeap []entry

//fabric:hotpath
func (h *eventHeap) push(en entry) {
	q := append(*h, en)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !entryLess(&q[i], &q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
	*h = q
}

//fabric:hotpath
func (h *eventHeap) popMin() entry {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q = q[:n]
	*h = q
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && entryLess(&q[r], &q[l]) {
			m = r
		}
		if !entryLess(&q[m], &q[i]) {
			break
		}
		q[i], q[m] = q[m], q[i]
		i = m
	}
	return top
}

// Proc is a deterministic scheduling identity bound to one Engine: the
// handle a simulated entity (a node, one direction of a link, the root
// driver) schedules its events through. Events stamped by a Proc carry the
// key (time, proc id, per-proc sequence); because the sequence advances
// only with that one entity's own scheduling actions, the key — and
// therefore the global execution order — is independent of how entities
// are distributed across shards. Procs are created by the network layer
// with globally unique ids in construction order, and rebound to a shard's
// engine when the fabric is partitioned.
//
// A Proc is not safe for concurrent use; it is driven by the single
// goroutine executing its engine's events (or by the coordinator while all
// shards are paused).
type Proc struct {
	eng *Engine
	id  uint64
	seq uint64
}

// NewProc creates a scheduling identity with the given globally unique id
// on engine e. Id 0 is reserved for the engine's own root identity.
func NewProc(e *Engine, id uint64) *Proc {
	if id == 0 {
		panic("sim: Proc id 0 is reserved for the engine root")
	}
	return &Proc{eng: e, id: id}
}

// Rebind moves the identity to another engine (fabric partitioning). The
// per-owner sequence is preserved: the entity's history is what keys its
// events, not the engine that happens to execute them.
func (p *Proc) Rebind(e *Engine) { p.eng = e }

// Engine returns the engine the identity is currently bound to.
func (p *Proc) Engine() *Engine { return p.eng }

// ID returns the owner id stamped into this identity's events.
func (p *Proc) ID() uint64 { return p.id }

// NextSeq consumes and returns the next per-owner sequence number. Normal
// scheduling does this implicitly; the cross-shard transport uses it to
// stamp an arrival's key on the sending side before shipping the event to
// the destination shard.
func (p *Proc) NextSeq() uint64 {
	s := p.seq
	p.seq++
	return s
}

// Now returns the bound engine's current virtual time.
func (p *Proc) Now() time.Duration { return p.eng.now }

// At schedules fn at absolute virtual time t under this identity.
func (p *Proc) At(t time.Duration, fn func()) *Timer {
	return p.eng.at(t, p.id, p.NextSeq(), fn)
}

// After schedules fn d after the bound engine's current time.
func (p *Proc) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return p.At(p.eng.now+d, fn)
}

// Schedule is the pooled, non-cancellable variant of At (see
// Engine.Schedule).
func (p *Proc) Schedule(t time.Duration, fn func()) {
	if fn == nil {
		panic("sim: nil event callback")
	}
	p.eng.scheduleFunc(t, p.id, p.NextSeq(), fn)
}

// ScheduleRunner enqueues r.RunEvent(arg) at absolute time t under this
// identity (see Engine.ScheduleRunner).
//
//fabric:hotpath
func (p *Proc) ScheduleRunner(t time.Duration, r Runner, arg int32) {
	if r == nil {
		panic("sim: nil event runner")
	}
	p.eng.scheduleRunner(t, p.id, p.NextSeq(), r, arg)
}

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; all protocol code runs inside event callbacks on the
// loop's goroutine, which is how the real dataplane pipeline of a bridge is
// serialized per port anyway. In a sharded fabric there is one Engine per
// shard, each still single-threaded, synchronized by the netsim
// coordinator.
type Engine struct {
	now       time.Duration
	root      Proc
	queue     eventHeap
	arena     []event
	freeHead  int32 // arena free list head, -1 when empty
	rng       *rand.Rand
	seed      int64
	processed uint64
	limit     uint64
	id        int  // shard index (0 when unsharded)
	unbatched bool // force the one-pop-per-event reference path

	// Batched window-drain state (see drain). run is the heap's popped
	// front window, spill collects events scheduled during the batch that
	// fall inside it; both are consumed by index and reused across
	// batches. While inBatch is set, bound{At,Owner,Seq} is the window's
	// exclusive key bound, and enqueues below it route to the spill.
	run                  []entry
	runPos               int
	spill                []entry
	spillPos             int
	inBatch              bool
	boundAt              time.Duration
	boundOwner, boundSeq uint64

	// Key of the event currently executing — the causal stamp the tap
	// buffering layer records so per-shard tap streams can be merged into
	// the one deterministic total order.
	curAt            time.Duration
	curOwner, curSeq uint64
}

// New returns an Engine whose random source is seeded with seed. Two engines
// built with the same seed and fed the same schedule produce identical runs.
func New(seed int64) *Engine {
	e := &Engine{
		rng:       rand.New(rand.NewSource(seed)),
		seed:      seed,
		limit:     DefaultEventLimit,
		freeHead:  -1,
		unbatched: !defaultBatched,
	}
	e.root = Proc{eng: e}
	return e
}

// Root returns the engine's root scheduling identity (owner id 0): the
// identity of driver code outside any simulated entity. Root events sort
// before every entity's events at the same timestamp, which is what lets
// fault injection and experiment phases act as barriers in sharded runs.
func (e *Engine) Root() *Proc { return &e.root }

// ID returns the engine's shard index (0 unless assigned by SetID).
func (e *Engine) ID() int { return e.id }

// SetID assigns the engine's shard index.
func (e *Engine) SetID(id int) { e.id = id }

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Seed returns the seed the engine was created with.
func (e *Engine) Seed() int64 { return e.seed }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events still queued (including canceled
// events that have not yet been discarded). During batched execution,
// events pending in the run and spill buffers count exactly like events
// still in the heap — a handler that schedules work observes it here
// wherever the engine happens to have staged it.
func (e *Engine) Pending() int {
	return len(e.queue) + (len(e.run) - e.runPos) + (len(e.spill) - e.spillPos)
}

// Batched reports whether the engine uses batched window-drain execution.
func (e *Engine) Batched() bool { return !e.unbatched }

// SetBatched selects between batched window-drain execution (the default)
// and the unbatched one-pop-per-event reference path. Both produce the
// identical execution order; the differential determinism tests run
// workloads both ways and require byte-identical traces. Call between
// runs, not from inside an event.
func (e *Engine) SetBatched(on bool) { e.unbatched = !on }

// SetEventLimit replaces the runaway-loop backstop. n must be positive.
func (e *Engine) SetEventLimit(n uint64) {
	if n == 0 {
		panic("sim: event limit must be positive")
	}
	e.limit = n
}

// EventLimit returns the runaway-loop backstop (the sharded coordinator
// enforces the control engine's limit across all shards of one run).
func (e *Engine) EventLimit() uint64 { return e.limit }

// At schedules fn to run at absolute virtual time t under the root
// identity. Scheduling in the past is a programming error and panics;
// scheduling at the current time is allowed and runs after all previously
// scheduled root events for that time.
func (e *Engine) At(t time.Duration, fn func()) *Timer {
	return e.root.At(t, fn)
}

// alloc takes an arena slot from the free list, growing the arena when it
// is dry.
//
//fabric:hotpath
func (e *Engine) alloc() int32 {
	if e.freeHead >= 0 {
		idx := e.freeHead
		a := &e.arena[idx]
		e.freeHead = a.nextFree
		a.free = false
		return idx
	}
	e.arena = append(e.arena, event{})
	return int32(len(e.arena) - 1)
}

// release invalidates and frees one arena slot. Called before the callback
// runs so the callback may itself schedule into the recycled slot.
//
//fabric:hotpath
func (e *Engine) release(idx int32) {
	a := &e.arena[idx]
	a.gen++
	a.fn = nil
	a.runner = nil
	a.free = true
	a.nextFree = e.freeHead
	e.freeHead = idx
}

// enqueue routes a new entry to the pending structure that owns its key.
// The spill buffer takes it when a batch is executing, the key falls
// inside the current window, and it extends the spill's sorted tail —
// handlers overwhelmingly schedule in increasing key order (a fixed delta
// ahead of a non-decreasing now), so this append-only fast path catches
// nearly everything and costs O(1). Anything else — no batch running, key
// beyond the window, or out of order against the spill tail — goes to the
// heap, which the batch dispatch also merges from, so routing is a cost
// decision, never a correctness one. (An earlier draft binary-inserted
// out-of-order keys into the spill; same-timestamp bursts with shuffled
// owner ids turned that into quadratic memmove traffic.)
//
//fabric:hotpath
func (e *Engine) enqueue(en entry) {
	if e.inBatch && keyBelow(en.at, en.owner, en.oseq, e.boundAt, e.boundOwner, e.boundSeq) {
		if n := len(e.spill); n-e.spillPos < maxSpill &&
			(n == e.spillPos || !entryLess(&en, &e.spill[n-1])) {
			e.spill = append(e.spill, en)
			return
		}
	}
	e.queue.push(en)
}

// at is the common keyed scheduling path behind Proc.At and Engine.At.
func (e *Engine) at(t time.Duration, owner, oseq uint64, fn func()) *Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event callback")
	}
	idx := e.alloc()
	a := &e.arena[idx]
	a.fn = fn
	e.enqueue(entry{at: t, owner: owner, oseq: oseq, idx: idx, gen: a.gen})
	return &Timer{eng: e, at: t, idx: idx + 1, gen: a.gen}
}

// scheduleFunc enqueues a non-cancellable closure event under the given
// key. No Timer handle exists, so the arena slot recycles the moment it
// fires.
func (e *Engine) scheduleFunc(t time.Duration, owner, oseq uint64, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	idx := e.alloc()
	a := &e.arena[idx]
	a.fn = fn
	e.enqueue(entry{at: t, owner: owner, oseq: oseq, idx: idx, gen: a.gen})
}

// scheduleRunner is scheduleFunc for Runner events: fully allocation-free.
//
//fabric:hotpath
func (e *Engine) scheduleRunner(t time.Duration, owner, oseq uint64, r Runner, arg int32) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	idx := e.alloc()
	a := &e.arena[idx]
	a.runner = r
	a.rarg = arg
	e.enqueue(entry{at: t, owner: owner, oseq: oseq, idx: idx, gen: a.gen})
}

// Schedule runs fn at absolute virtual time t like At, but returns no
// Timer handle: the event cannot be canceled, and in exchange the engine
// recycles the arena slot immediately, so steady-state scheduling does not
// allocate beyond the closure itself. The event carries the root identity.
func (e *Engine) Schedule(t time.Duration, fn func()) {
	e.root.Schedule(t, fn)
}

// ScheduleRunner enqueues r.RunEvent(arg) at absolute virtual time t under
// the root identity. Like Schedule it returns no handle and recycles the
// slot; because the callback is an interface rather than a closure, a
// caller that reuses its Runner objects schedules with zero allocations —
// the netsim hot path depends on this (via Proc.ScheduleRunner).
//
//fabric:hotpath
func (e *Engine) ScheduleRunner(t time.Duration, r Runner, arg int32) {
	e.root.ScheduleRunner(t, r, arg)
}

// ScheduleKeyed enqueues r.RunEvent(arg) at absolute time t with an
// explicit, caller-computed key. This is the cross-shard injection
// primitive: the sending shard stamps an arrival with its link identity's
// (owner, seq) before shipping it, and the coordinator inserts it here
// between windows — the key, not the insertion moment, decides where the
// event sorts, so the destination shard's execution order is independent
// of exchange timing.
func (e *Engine) ScheduleKeyed(t time.Duration, owner, oseq uint64, r Runner, arg int32) {
	if r == nil {
		panic("sim: nil event runner")
	}
	e.scheduleRunner(t, owner, oseq, r, arg)
}

// ScheduleKeyedFunc enqueues fn at absolute time t with an explicit,
// caller-computed key (the closure counterpart of ScheduleKeyed). netsim
// uses it to give fault-injection events an entity's partition-independent
// identity while choosing the executing engine separately: the same key
// lands on a shard engine when the fault is shard-local and on the control
// engine (a coordinator barrier) when it spans shards.
func (e *Engine) ScheduleKeyedFunc(t time.Duration, owner, oseq uint64, fn func()) {
	if fn == nil {
		panic("sim: nil event callback")
	}
	e.scheduleFunc(t, owner, oseq, fn)
}

// After schedules fn to run d after the current virtual time under the
// root identity. Negative d panics.
func (e *Engine) After(d time.Duration, fn func()) *Timer {
	return e.root.After(d, fn)
}

// execute runs one validated entry's callback: clock advance, causal
// stamp, slot release (before the call, so the callback can reuse it),
// dispatch.
//
//fabric:hotpath
func (e *Engine) execute(en *entry, a *event) {
	e.now = en.at
	e.curAt, e.curOwner, e.curSeq = en.at, en.owner, en.oseq
	e.processed++
	if r := a.runner; r != nil {
		arg := a.rarg
		e.release(en.idx)
		r.RunEvent(arg)
	} else {
		fn := a.fn
		e.release(en.idx)
		fn()
	}
}

// Step executes the next pending event, if any, and reports whether one ran.
// Canceled events are discarded without counting as a step.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		en := e.queue.popMin()
		a := &e.arena[en.idx]
		if a.free || a.gen != en.gen {
			continue // canceled; entry was stale
		}
		e.execute(&en, a)
		return true
	}
	return false
}

// drain executes every pending event whose key sorts strictly before
// (boundAt, boundOwner, boundSeq), in exact (time, owner, oseq) order, and
// returns how many ran. It panics when the total processed count would
// exceed stopAt (the hoisted event-limit check: one predictable branch per
// event against a precomputed register value, instead of the old
// per-iteration limit arithmetic).
//
// Mechanics: the heap's front window — up to maxBatch entries below the
// caller bound — is popped into the run buffer; the window's own exclusive
// bound is the smaller of the caller bound and the next heap key. The
// batch then dispatches by merging three sorted sources: the run buffer,
// the spill buffer (events scheduled during the batch that fall inside the
// window — they skip the heap entirely, which is the point), and the heap
// itself (reached when enqueue declined the spill: out-of-order key or
// cap overflow). Taking the minimum key across the three sources every
// step makes the execution order identical to the unbatched engine's,
// whatever the routing decided.
//
//fabric:hotpath
func (e *Engine) drain(boundAt time.Duration, boundOwner, boundSeq uint64, stopAt uint64) int {
	n := 0
	for {
		// Refill: pop the heap's front window into the run buffer.
		e.run = e.run[:0]
		e.runPos = 0
		for len(e.run) < maxBatch && len(e.queue) > 0 {
			h := &e.queue[0]
			if !keyBelow(h.at, h.owner, h.oseq, boundAt, boundOwner, boundSeq) {
				break
			}
			en := e.queue.popMin()
			if a := &e.arena[en.idx]; a.free || a.gen != en.gen {
				continue // canceled; entry was stale
			}
			e.run = append(e.run, en)
		}
		if len(e.run) == 0 {
			return n // nothing below the bound (spill drains with its batch)
		}
		// The window bound: where the refill stopped.
		wAt, wOwner, wSeq := boundAt, boundOwner, boundSeq
		if len(e.queue) > 0 {
			if h := &e.queue[0]; keyBelow(h.at, h.owner, h.oseq, wAt, wOwner, wSeq) {
				wAt, wOwner, wSeq = h.at, h.owner, h.oseq
			}
		}
		e.inBatch = true
		e.boundAt, e.boundOwner, e.boundSeq = wAt, wOwner, wSeq

		for {
			var en entry
			src := -1
			if e.runPos < len(e.run) {
				en = e.run[e.runPos]
				src = 0
			}
			if e.spillPos < len(e.spill) {
				if s := &e.spill[e.spillPos]; src < 0 || entryLess(s, &en) {
					en = *s
					src = 1
				}
			}
			if len(e.queue) > 0 { // keys enqueue routed past the spill
				if h := &e.queue[0]; keyBelow(h.at, h.owner, h.oseq, wAt, wOwner, wSeq) &&
					(src < 0 || entryLess(h, &en)) {
					src = 2
				}
			}
			switch src {
			case 0:
				e.runPos++
			case 1:
				e.spillPos++
			case 2:
				en = e.queue.popMin()
			default:
				goto batchDone
			}
			a := &e.arena[en.idx]
			if a.free || a.gen != en.gen {
				continue // canceled mid-batch
			}
			e.execute(&en, a)
			n++
			if e.processed > stopAt {
				e.inBatch = false
				panic(fmt.Sprintf("sim: event limit %d exceeded at t=%v — probable forwarding loop", e.limit, e.now))
			}
		}
	batchDone:
		e.inBatch = false
		e.spill = e.spill[:0]
		e.spillPos = 0
	}
}

// maxBound is the exclusive drain bound that admits every real key.
const maxBoundAt = time.Duration(math.MaxInt64)

// Run executes events until the queue drains. It panics if the event limit
// is exceeded, which in practice means a protocol is generating events
// faster than it consumes them (a forwarding loop).
func (e *Engine) Run() {
	stopAt := e.processed + e.limit
	if e.unbatched {
		for e.Step() {
			if e.processed > stopAt {
				panic(fmt.Sprintf("sim: event limit %d exceeded at t=%v — probable forwarding loop", e.limit, e.now))
			}
		}
		return
	}
	e.drain(maxBoundAt, math.MaxUint64, math.MaxUint64, stopAt)
}

// RunUntil executes every event scheduled at or before t, then advances the
// clock to exactly t. It panics on event-limit overrun like Run.
func (e *Engine) RunUntil(t time.Duration) {
	if t < e.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) before now %v", t, e.now))
	}
	stopAt := e.processed + e.limit
	if e.unbatched {
		for {
			next, ok := e.peek()
			if !ok || next > t {
				break
			}
			e.Step()
			if e.processed > stopAt {
				panic(fmt.Sprintf("sim: event limit %d exceeded at t=%v — probable forwarding loop", e.limit, e.now))
			}
		}
		e.now = t
		return
	}
	// Inclusive of events at exactly t: the exclusive bound is the first
	// key of t+1 (saturating at the horizon).
	boundAt := t + 1
	if t == maxBoundAt {
		boundAt = maxBoundAt
	}
	e.drain(boundAt, 0, 0, stopAt)
	e.now = t
}

// RunFor executes events for the next d of virtual time (RunUntil(Now()+d)).
func (e *Engine) RunFor(d time.Duration) { e.RunUntil(e.now + d) }

// peek returns the timestamp of the next live event.
func (e *Engine) peek() (time.Duration, bool) {
	for len(e.queue) > 0 {
		h := &e.queue[0]
		if a := &e.arena[h.idx]; a.free || a.gen != h.gen {
			e.queue.popMin()
			continue
		}
		return h.at, true
	}
	return 0, false
}

// NextEventAt returns the virtual time of the next pending live event.
func (e *Engine) NextEventAt() (time.Duration, bool) { return e.peek() }

// NextKey returns the full ordering key of the next pending live event.
// The coordinator uses it to pre-stamp shard engines before executing a
// barrier event, so taps the barrier emits carry the barrier's key.
func (e *Engine) NextKey() (at time.Duration, owner, oseq uint64, ok bool) {
	if _, live := e.peek(); !live {
		return 0, 0, 0, false
	}
	h := &e.queue[0]
	return h.at, h.owner, h.oseq, true
}

// CurKey returns the ordering key of the event currently (or most
// recently) executing. The netsim tap layer records it with every buffered
// tap event so per-shard streams merge into the deterministic total order.
func (e *Engine) CurKey() (at time.Duration, owner, oseq uint64) {
	return e.curAt, e.curOwner, e.curSeq
}

// RunWindow executes every event strictly before bound and reports how
// many ran. It is the per-shard half of one conservative synchronization
// window: the coordinator guarantees no other shard can inject an event
// before bound, so everything below it is safe to run without looking up.
// Unlike RunUntil it does not advance the clock to the bound — the next
// window recomputes its horizon from the real queue heads.
func (e *Engine) RunWindow(bound time.Duration) int {
	return e.RunWindowKey(bound, 0, 0)
}

// RunWindowKey executes every event whose full ordering key sorts
// strictly before (at, owner, oseq) and reports how many ran. The key-
// exact bound is what lets a pending coordinator barrier carry an entity
// identity (owner > 0): shard events at the barrier's own timestamp with
// smaller keys must still run inside the window, exactly where the
// single-engine run would have executed them. The event-limit backstop for
// sharded runs lives in the coordinator (it spans all shards of one run),
// so the per-engine check is disarmed here.
func (e *Engine) RunWindowKey(at time.Duration, owner, oseq uint64) int {
	if e.unbatched {
		n := 0
		for {
			if _, ok := e.peek(); !ok {
				return n
			}
			h := &e.queue[0]
			if !keyBelow(h.at, h.owner, h.oseq, at, owner, oseq) {
				return n
			}
			e.Step()
			n++
		}
	}
	return e.drain(at, owner, oseq, math.MaxUint64)
}

// SetNow advances the clock to exactly t without running anything. It
// panics when t is in the past or when an event older than t is still
// pending — the coordinator uses it to line all shards up on a barrier
// timestamp after their queues have been drained below it.
func (e *Engine) SetNow(t time.Duration) {
	if t < e.now {
		panic(fmt.Sprintf("sim: SetNow(%v) before now %v", t, e.now))
	}
	if next, ok := e.peek(); ok && next < t {
		panic(fmt.Sprintf("sim: SetNow(%v) with event pending at %v", t, next))
	}
	e.now = t
}
