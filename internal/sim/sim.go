// Package sim provides the deterministic discrete-event simulation kernel
// used by every other package in this repository.
//
// The kernel models virtual time as a time.Duration measured from the start
// of the run. Events are callbacks scheduled at absolute virtual times and
// are executed in (time, owner, owner-sequence) order — see Proc — which
// makes every run with the same seed and the same inputs bit-for-bit
// reproducible. The paper's NetFPGA testbed resolves races between flooded
// frame copies in hardware; here the same races are resolved by the
// deterministic event order.
//
// The ordering key deserves a word, because it is what makes the sharded
// parallel engine (DESIGN.md §8) possible. Every event is stamped by the
// Proc that scheduled it: a scheduling identity owned by exactly one
// simulated entity (a node, one direction of a link, or the root driver).
// Ties at equal virtual times break by (owner id, per-owner sequence), and
// both components are functions of that one entity's own deterministic
// history — never of how events from unrelated entities interleave. Two
// events that tie across owners touch disjoint state, so their relative
// order is fixed arbitrarily (by owner id) but consistently. The result is
// an execution order that does not depend on how the fabric is partitioned
// into shards, which is the determinism bedrock the parallel coordinator
// in internal/netsim builds on.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// DefaultEventLimit bounds the number of events a single Run may process.
// It exists purely as a runaway-loop backstop for buggy protocols (for
// example a bridge that floods its own flood); well-formed simulations stay
// far below it. Use SetEventLimit to raise it for very long runs.
const DefaultEventLimit = 50_000_000

// Timer is a handle to a scheduled event. The zero value is not a valid
// Timer; handles are produced by Engine.At and Engine.After.
type Timer struct {
	ev *event
}

// Stop cancels the timer. It reports whether the call prevented the event
// from firing: false means the event already ran (or was already stopped).
// Stopping a nil Timer is a no-op that returns false.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.canceled || t.ev.done {
		return false
	}
	t.ev.canceled = true
	return true
}

// Stopped reports whether the timer was canceled before it fired.
func (t *Timer) Stopped() bool { return t != nil && t.ev != nil && t.ev.canceled }

// When returns the virtual time the event is (or was) scheduled to fire
// at. A nil or zero Timer has no event and reports zero, mirroring the
// nil-safety of Stop and Stopped.
func (t *Timer) When() time.Duration {
	if t == nil || t.ev == nil {
		return 0
	}
	return t.ev.at
}

// Runner is the allocation-free event callback: an object whose RunEvent
// method fires when the event comes due. Unlike a closure handed to At,
// a Runner carries its own state, so scheduling one allocates nothing —
// the engine recycles the internal event object after it fires. arg
// distinguishes multiple events pending on the same Runner (netsim uses
// it to tell a serializer-free event from a frame arrival).
type Runner interface {
	RunEvent(arg int32)
}

type event struct {
	at       time.Duration
	owner    uint64 // scheduling identity (Proc id; 0 = the root driver)
	oseq     uint64 // per-owner sequence: FIFO among one owner's equal-time events
	fn       func()
	runner   Runner // alternative to fn for pooled, closure-free events
	rarg     int32  // argument passed to runner.RunEvent
	pooled   bool   // recycle after firing (no Timer handle exists)
	canceled bool
	done     bool
	index    int // heap index, -1 once popped
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].owner != h[j].owner {
		return h[i].owner < h[j].owner
	}
	return h[i].oseq < h[j].oseq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Proc is a deterministic scheduling identity bound to one Engine: the
// handle a simulated entity (a node, one direction of a link, the root
// driver) schedules its events through. Events stamped by a Proc carry the
// key (time, proc id, per-proc sequence); because the sequence advances
// only with that one entity's own scheduling actions, the key — and
// therefore the global execution order — is independent of how entities
// are distributed across shards. Procs are created by the network layer
// with globally unique ids in construction order, and rebound to a shard's
// engine when the fabric is partitioned.
//
// A Proc is not safe for concurrent use; it is driven by the single
// goroutine executing its engine's events (or by the coordinator while all
// shards are paused).
type Proc struct {
	eng *Engine
	id  uint64
	seq uint64
}

// NewProc creates a scheduling identity with the given globally unique id
// on engine e. Id 0 is reserved for the engine's own root identity.
func NewProc(e *Engine, id uint64) *Proc {
	if id == 0 {
		panic("sim: Proc id 0 is reserved for the engine root")
	}
	return &Proc{eng: e, id: id}
}

// Rebind moves the identity to another engine (fabric partitioning). The
// per-owner sequence is preserved: the entity's history is what keys its
// events, not the engine that happens to execute them.
func (p *Proc) Rebind(e *Engine) { p.eng = e }

// Engine returns the engine the identity is currently bound to.
func (p *Proc) Engine() *Engine { return p.eng }

// ID returns the owner id stamped into this identity's events.
func (p *Proc) ID() uint64 { return p.id }

// NextSeq consumes and returns the next per-owner sequence number. Normal
// scheduling does this implicitly; the cross-shard transport uses it to
// stamp an arrival's key on the sending side before shipping the event to
// the destination shard.
func (p *Proc) NextSeq() uint64 {
	s := p.seq
	p.seq++
	return s
}

// Now returns the bound engine's current virtual time.
func (p *Proc) Now() time.Duration { return p.eng.now }

// At schedules fn at absolute virtual time t under this identity.
func (p *Proc) At(t time.Duration, fn func()) *Timer {
	return p.eng.at(t, p.id, p.NextSeq(), fn)
}

// After schedules fn d after the bound engine's current time.
func (p *Proc) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return p.At(p.eng.now+d, fn)
}

// Schedule is the pooled, non-cancellable variant of At (see
// Engine.Schedule).
func (p *Proc) Schedule(t time.Duration, fn func()) {
	if fn == nil {
		panic("sim: nil event callback")
	}
	p.eng.newPooled(t, p.id, p.NextSeq()).fn = fn
}

// ScheduleRunner enqueues r.RunEvent(arg) at absolute time t under this
// identity (see Engine.ScheduleRunner).
func (p *Proc) ScheduleRunner(t time.Duration, r Runner, arg int32) {
	if r == nil {
		panic("sim: nil event runner")
	}
	ev := p.eng.newPooled(t, p.id, p.NextSeq())
	ev.runner = r
	ev.rarg = arg
}

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; all protocol code runs inside event callbacks on the
// loop's goroutine, which is how the real dataplane pipeline of a bridge is
// serialized per port anyway. In a sharded fabric there is one Engine per
// shard, each still single-threaded, synchronized by the netsim
// coordinator.
type Engine struct {
	now       time.Duration
	root      Proc
	queue     eventHeap
	free      []*event // recycled pooled events (Schedule/ScheduleRunner)
	rng       *rand.Rand
	seed      int64
	processed uint64
	limit     uint64
	id        int // shard index (0 when unsharded)

	// Key of the event currently executing — the causal stamp the tap
	// buffering layer records so per-shard tap streams can be merged into
	// the one deterministic total order.
	curAt            time.Duration
	curOwner, curSeq uint64
}

// New returns an Engine whose random source is seeded with seed. Two engines
// built with the same seed and fed the same schedule produce identical runs.
func New(seed int64) *Engine {
	e := &Engine{
		rng:   rand.New(rand.NewSource(seed)),
		seed:  seed,
		limit: DefaultEventLimit,
	}
	e.root = Proc{eng: e}
	return e
}

// Root returns the engine's root scheduling identity (owner id 0): the
// identity of driver code outside any simulated entity. Root events sort
// before every entity's events at the same timestamp, which is what lets
// fault injection and experiment phases act as barriers in sharded runs.
func (e *Engine) Root() *Proc { return &e.root }

// ID returns the engine's shard index (0 unless assigned by SetID).
func (e *Engine) ID() int { return e.id }

// SetID assigns the engine's shard index.
func (e *Engine) SetID(id int) { e.id = id }

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Seed returns the seed the engine was created with.
func (e *Engine) Seed() int64 { return e.seed }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events still queued (including canceled
// events that have not yet been discarded).
func (e *Engine) Pending() int { return len(e.queue) }

// SetEventLimit replaces the runaway-loop backstop. n must be positive.
func (e *Engine) SetEventLimit(n uint64) {
	if n == 0 {
		panic("sim: event limit must be positive")
	}
	e.limit = n
}

// EventLimit returns the runaway-loop backstop (the sharded coordinator
// enforces the control engine's limit across all shards of one run).
func (e *Engine) EventLimit() uint64 { return e.limit }

// At schedules fn to run at absolute virtual time t under the root
// identity. Scheduling in the past is a programming error and panics;
// scheduling at the current time is allowed and runs after all previously
// scheduled root events for that time.
func (e *Engine) At(t time.Duration, fn func()) *Timer {
	return e.root.At(t, fn)
}

// at is the common keyed scheduling path behind Proc.At and Engine.At.
func (e *Engine) at(t time.Duration, owner, oseq uint64, fn func()) *Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event callback")
	}
	ev := &event{at: t, owner: owner, oseq: oseq, fn: fn}
	heap.Push(&e.queue, ev)
	return &Timer{ev: ev}
}

// newPooled takes an event object from the free list (or allocates one)
// and enqueues it under the given key. Pooled events have no Timer handle
// and cannot be canceled, which is what makes recycling them safe.
func (e *Engine) newPooled(t time.Duration, owner, oseq uint64) *event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		*ev = event{}
	} else {
		ev = &event{}
	}
	ev.at = t
	ev.owner = owner
	ev.oseq = oseq
	ev.pooled = true
	heap.Push(&e.queue, ev)
	return ev
}

// Schedule runs fn at absolute virtual time t like At, but returns no
// Timer handle: the event cannot be canceled, and in exchange the engine
// recycles the event object, so steady-state scheduling does not allocate
// beyond the closure itself. The event carries the root identity.
func (e *Engine) Schedule(t time.Duration, fn func()) {
	e.root.Schedule(t, fn)
}

// ScheduleRunner enqueues r.RunEvent(arg) at absolute virtual time t under
// the root identity. Like Schedule it returns no handle and recycles the
// event; because the callback is an interface rather than a closure, a
// caller that reuses its Runner objects schedules with zero allocations —
// the netsim hot path depends on this (via Proc.ScheduleRunner).
func (e *Engine) ScheduleRunner(t time.Duration, r Runner, arg int32) {
	e.root.ScheduleRunner(t, r, arg)
}

// ScheduleKeyed enqueues r.RunEvent(arg) at absolute time t with an
// explicit, caller-computed key. This is the cross-shard injection
// primitive: the sending shard stamps an arrival with its link identity's
// (owner, seq) before shipping it, and the coordinator inserts it here
// between windows — the key, not the insertion moment, decides where the
// event sorts, so the destination shard's execution order is independent
// of exchange timing.
func (e *Engine) ScheduleKeyed(t time.Duration, owner, oseq uint64, r Runner, arg int32) {
	if r == nil {
		panic("sim: nil event runner")
	}
	ev := e.newPooled(t, owner, oseq)
	ev.runner = r
	ev.rarg = arg
}

// ScheduleKeyedFunc enqueues fn at absolute time t with an explicit,
// caller-computed key (the closure counterpart of ScheduleKeyed). netsim
// uses it to give fault-injection events an entity's partition-independent
// identity while choosing the executing engine separately: the same key
// lands on a shard engine when the fault is shard-local and on the control
// engine (a coordinator barrier) when it spans shards.
func (e *Engine) ScheduleKeyedFunc(t time.Duration, owner, oseq uint64, fn func()) {
	if fn == nil {
		panic("sim: nil event callback")
	}
	e.newPooled(t, owner, oseq).fn = fn
}

// After schedules fn to run d after the current virtual time under the
// root identity. Negative d panics.
func (e *Engine) After(d time.Duration, fn func()) *Timer {
	return e.root.After(d, fn)
}

// Step executes the next pending event, if any, and reports whether one ran.
// Canceled events are discarded without counting as a step.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.canceled {
			continue
		}
		if ev.at < e.now {
			panic("sim: event queue went backwards") // unreachable by construction
		}
		e.now = ev.at
		e.curAt, e.curOwner, e.curSeq = ev.at, ev.owner, ev.oseq
		ev.done = true
		e.processed++
		if ev.runner != nil {
			r, arg := ev.runner, ev.rarg
			e.recycle(ev)
			r.RunEvent(arg)
		} else {
			fn := ev.fn
			if ev.pooled {
				e.recycle(ev)
			}
			fn()
		}
		return true
	}
	return false
}

// recycle returns a pooled event to the free list. Called before the
// callback runs so the callback may itself schedule and reuse the object.
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	ev.runner = nil
	e.free = append(e.free, ev)
}

// Run executes events until the queue drains. It panics if the event limit
// is exceeded, which in practice means a protocol is generating events
// faster than it consumes them (a forwarding loop).
func (e *Engine) Run() {
	start := e.processed
	for e.Step() {
		if e.processed-start > e.limit {
			panic(fmt.Sprintf("sim: event limit %d exceeded at t=%v — probable forwarding loop", e.limit, e.now))
		}
	}
}

// RunUntil executes every event scheduled at or before t, then advances the
// clock to exactly t. It panics on event-limit overrun like Run.
func (e *Engine) RunUntil(t time.Duration) {
	if t < e.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) before now %v", t, e.now))
	}
	start := e.processed
	for {
		next, ok := e.peek()
		if !ok || next > t {
			break
		}
		e.Step()
		if e.processed-start > e.limit {
			panic(fmt.Sprintf("sim: event limit %d exceeded at t=%v — probable forwarding loop", e.limit, e.now))
		}
	}
	e.now = t
}

// RunFor executes events for the next d of virtual time (RunUntil(Now()+d)).
func (e *Engine) RunFor(d time.Duration) { e.RunUntil(e.now + d) }

// peek returns the timestamp of the next live event.
func (e *Engine) peek() (time.Duration, bool) {
	for len(e.queue) > 0 {
		if e.queue[0].canceled {
			heap.Pop(&e.queue)
			continue
		}
		return e.queue[0].at, true
	}
	return 0, false
}

// NextEventAt returns the virtual time of the next pending live event.
func (e *Engine) NextEventAt() (time.Duration, bool) { return e.peek() }

// NextKey returns the full ordering key of the next pending live event.
// The coordinator uses it to pre-stamp shard engines before executing a
// barrier event, so taps the barrier emits carry the barrier's key.
func (e *Engine) NextKey() (at time.Duration, owner, oseq uint64, ok bool) {
	if _, live := e.peek(); !live {
		return 0, 0, 0, false
	}
	ev := e.queue[0]
	return ev.at, ev.owner, ev.oseq, true
}

// CurKey returns the ordering key of the event currently (or most
// recently) executing. The netsim tap layer records it with every buffered
// tap event so per-shard streams merge into the deterministic total order.
func (e *Engine) CurKey() (at time.Duration, owner, oseq uint64) {
	return e.curAt, e.curOwner, e.curSeq
}

// RunWindow executes every event strictly before bound and reports how
// many ran. It is the per-shard half of one conservative synchronization
// window: the coordinator guarantees no other shard can inject an event
// before bound, so everything below it is safe to run without looking up.
// Unlike RunUntil it does not advance the clock to the bound — the next
// window recomputes its horizon from the real queue heads.
func (e *Engine) RunWindow(bound time.Duration) int {
	return e.RunWindowKey(bound, 0, 0)
}

// RunWindowKey executes every event whose full ordering key sorts
// strictly before (at, owner, oseq) and reports how many ran. The key-
// exact bound is what lets a pending coordinator barrier carry an entity
// identity (owner > 0): shard events at the barrier's own timestamp with
// smaller keys must still run inside the window, exactly where the
// single-engine run would have executed them.
func (e *Engine) RunWindowKey(at time.Duration, owner, oseq uint64) int {
	n := 0
	for {
		if _, ok := e.peek(); !ok {
			return n
		}
		head := e.queue[0]
		if head.at > at || (head.at == at && (head.owner > owner ||
			(head.owner == owner && head.oseq >= oseq))) {
			return n
		}
		e.Step()
		n++
	}
}

// SetNow advances the clock to exactly t without running anything. It
// panics when t is in the past or when an event older than t is still
// pending — the coordinator uses it to line all shards up on a barrier
// timestamp after their queues have been drained below it.
func (e *Engine) SetNow(t time.Duration) {
	if t < e.now {
		panic(fmt.Sprintf("sim: SetNow(%v) before now %v", t, e.now))
	}
	if next, ok := e.peek(); ok && next < t {
		panic(fmt.Sprintf("sim: SetNow(%v) with event pending at %v", t, next))
	}
	e.now = t
}
