package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := New(1)
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestAfterRunsInOrder(t *testing.T) {
	e := New(1)
	var got []int
	e.After(30*time.Millisecond, func() { got = append(got, 3) })
	e.After(10*time.Millisecond, func() { got = append(got, 1) })
	e.After(20*time.Millisecond, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30*time.Millisecond {
		t.Fatalf("Now() = %v, want 30ms", e.Now())
	}
}

func TestEqualTimestampsFIFO(t *testing.T) {
	e := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(time.Millisecond, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("FIFO violated: got %v", got)
		}
	}
}

func TestSchedulingInsideEvent(t *testing.T) {
	e := New(1)
	var times []time.Duration
	e.After(time.Millisecond, func() {
		times = append(times, e.Now())
		e.After(time.Millisecond, func() {
			times = append(times, e.Now())
		})
	})
	e.Run()
	if len(times) != 2 || times[0] != time.Millisecond || times[1] != 2*time.Millisecond {
		t.Fatalf("times = %v", times)
	}
}

func TestScheduleAtNowRunsAfterEarlierEvents(t *testing.T) {
	e := New(1)
	var got []string
	e.At(0, func() { got = append(got, "a") })
	e.At(0, func() {
		got = append(got, "b")
		e.At(e.Now(), func() { got = append(got, "c") })
	})
	e.Run()
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("got %v", got)
	}
}

func TestTimerStop(t *testing.T) {
	e := New(1)
	fired := false
	tm := e.After(time.Millisecond, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop() = false on pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop() = true")
	}
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if !tm.Stopped() {
		t.Fatal("Stopped() = false after Stop")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	e := New(1)
	tm := e.After(0, func() {})
	e.Run()
	if tm.Stop() {
		t.Fatal("Stop() = true after event ran")
	}
}

func TestStopNilTimer(t *testing.T) {
	var tm *Timer
	if tm.Stop() {
		t.Fatal("nil.Stop() = true")
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	e := New(1)
	ran := false
	e.After(5*time.Millisecond, func() { ran = true })
	e.After(20*time.Millisecond, func() { t.Fatal("future event ran") })
	e.RunUntil(10 * time.Millisecond)
	if !ran {
		t.Fatal("due event did not run")
	}
	if e.Now() != 10*time.Millisecond {
		t.Fatalf("Now() = %v, want 10ms", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
}

func TestRunUntilInclusive(t *testing.T) {
	e := New(1)
	ran := false
	e.At(10*time.Millisecond, func() { ran = true })
	e.RunUntil(10 * time.Millisecond)
	if !ran {
		t.Fatal("event exactly at boundary did not run")
	}
}

func TestRunForAccumulates(t *testing.T) {
	e := New(1)
	e.RunFor(time.Second)
	e.RunFor(time.Second)
	if e.Now() != 2*time.Second {
		t.Fatalf("Now() = %v, want 2s", e.Now())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := New(1)
	e.After(time.Millisecond, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(0, func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	e := New(1)
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	e.After(-time.Millisecond, func() {})
}

func TestNilCallbackPanics(t *testing.T) {
	e := New(1)
	defer func() {
		if recover() == nil {
			t.Fatal("nil callback did not panic")
		}
	}()
	e.After(0, nil)
}

func TestEventLimitPanics(t *testing.T) {
	e := New(1)
	e.SetEventLimit(100)
	var loop func()
	loop = func() { e.After(time.Nanosecond, loop) }
	e.After(0, loop)
	defer func() {
		if recover() == nil {
			t.Fatal("runaway loop did not trip the event limit")
		}
	}()
	e.Run()
}

func TestDeterminismSameSeed(t *testing.T) {
	run := func(seed int64) []int64 {
		e := New(seed)
		var out []int64
		var tick func()
		n := 0
		tick = func() {
			out = append(out, int64(e.Now()), e.Rand().Int63n(1000))
			n++
			if n < 50 {
				e.After(time.Duration(1+e.Rand().Intn(100))*time.Microsecond, tick)
			}
		}
		e.After(0, tick)
		e.Run()
		return out
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestNextEventAt(t *testing.T) {
	e := New(1)
	if _, ok := e.NextEventAt(); ok {
		t.Fatal("NextEventAt on empty queue reported an event")
	}
	tm := e.After(7*time.Millisecond, func() {})
	if at, ok := e.NextEventAt(); !ok || at != 7*time.Millisecond {
		t.Fatalf("NextEventAt = %v,%v", at, ok)
	}
	tm.Stop()
	if _, ok := e.NextEventAt(); ok {
		t.Fatal("NextEventAt reported a canceled event")
	}
}

func TestProcessedCountsOnlyLiveEvents(t *testing.T) {
	e := New(1)
	e.After(time.Millisecond, func() {})
	tm := e.After(2*time.Millisecond, func() {})
	tm.Stop()
	e.Run()
	if e.Processed() != 1 {
		t.Fatalf("Processed() = %d, want 1", e.Processed())
	}
}

// Property: for any batch of events with arbitrary non-negative delays,
// execution order is sorted by (time, insertion order) and the clock never
// goes backwards.
func TestQuickEventOrdering(t *testing.T) {
	f := func(delaysMs []uint8) bool {
		if len(delaysMs) == 0 {
			return true
		}
		e := New(7)
		type fired struct {
			at  time.Duration
			idx int
		}
		var out []fired
		for i, d := range delaysMs {
			i, at := i, time.Duration(d)*time.Millisecond
			e.At(at, func() { out = append(out, fired{e.Now(), i}) })
		}
		e.Run()
		if len(out) != len(delaysMs) {
			return false
		}
		for i := 1; i < len(out); i++ {
			if out[i].at < out[i-1].at {
				return false
			}
			if out[i].at == out[i-1].at && out[i].idx < out[i-1].idx {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: stopping a random subset of timers fires exactly the complement.
func TestQuickTimerCancellation(t *testing.T) {
	f := func(cancel []bool) bool {
		e := New(3)
		firedCount := 0
		var timers []*Timer
		for range cancel {
			timers = append(timers, e.After(time.Millisecond, func() { firedCount++ }))
		}
		want := 0
		for i, c := range cancel {
			if c {
				timers[i].Stop()
			} else {
				want++
			}
		}
		e.Run()
		return firedCount == want
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	e := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(time.Microsecond, func() {})
		e.Step()
	}
}
