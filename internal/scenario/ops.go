package scenario

// The fault-op vocabulary and its codec. Ops are the engine's unit of
// replay: pure data (indices into a scenario's sorted name lists plus
// parameters) that can be re-applied to a rebuilt instance, shrunk to a
// minimal failing subset, or — via the exported Index — streamed against
// a live fabric by a driver that never saw the generating seed. The batch
// sweep (Run/Replay/Shrink) and the serving daemon (pkg/fabric/serve)
// share this one vocabulary: an op means exactly the same state change in
// both, and the JSON codec below is the wire/op-log form both agree on.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/host"
	"repro/internal/host/app"
	"repro/internal/topo"
)

// FaultKind discriminates the ops a schedule is made of.
type FaultKind uint8

// Fault op kinds.
const (
	OpLinkDown FaultKind = iota
	OpLinkUp
	OpBridgeRestart
	OpSetLoss
	OpClearLoss
	OpBurst
	OpHostMove   // station re-homes to its spare jack and announces
	OpHostReturn // station re-homes back to its original jack and announces

	numFaultKinds // count sentinel, keep last
)

// faultKindNames is the codec's stable wire vocabulary, indexed by kind.
var faultKindNames = [numFaultKinds]string{
	OpLinkDown:      "link-down",
	OpLinkUp:        "link-up",
	OpBridgeRestart: "bridge-restart",
	OpSetLoss:       "set-loss",
	OpClearLoss:     "clear-loss",
	OpBurst:         "burst",
	OpHostMove:      "host-move",
	OpHostReturn:    "host-return",
}

// MarshalText renders the kind's wire name ("link-down", "burst", …).
func (k FaultKind) MarshalText() ([]byte, error) {
	if k >= numFaultKinds {
		return nil, fmt.Errorf("scenario: unknown fault kind %d", k)
	}
	return []byte(faultKindNames[k]), nil
}

// UnmarshalText parses a wire name strictly: unknown names are errors.
func (k *FaultKind) UnmarshalText(b []byte) error {
	for i, name := range faultKindNames {
		if name == string(b) {
			*k = FaultKind(i)
			return nil
		}
	}
	return fmt.Errorf("scenario: unknown fault kind %q", b)
}

// FaultOp is one replayable fault action. Ops are pure data — indices into
// the scenario's sorted name lists plus parameters — so a failing
// schedule can be re-applied to a rebuilt instance, and shrunk to a
// minimal failing subset by replaying subsets (see Shrink). At is relative
// to the start of the fault phase.
type FaultOp struct {
	At   time.Duration
	Kind FaultKind

	Link int     // linkNames index (OpLinkDown/OpLinkUp/OpSetLoss/OpClearLoss)
	Side int     // transmitting side for loss ops: 0 = A, 1 = B
	Rate float64 // loss probability (OpSetLoss)

	Bridge int // Bridges index (OpBridgeRestart)

	Host int // hostNames index (OpHostMove/OpHostReturn)

	Src, Dst int           // host indices (OpBurst)
	Port     uint16        // UDP port the burst runs on (unique per op)
	Count    int           // datagrams in the burst
	Interval time.Duration // datagram spacing
	Payload  int           // datagram payload bytes
}

// String renders the op for failure reports.
func (op FaultOp) String() string {
	switch op.Kind {
	case OpLinkDown:
		return fmt.Sprintf("t=%v link %d down", op.At, op.Link)
	case OpLinkUp:
		return fmt.Sprintf("t=%v link %d up", op.At, op.Link)
	case OpBridgeRestart:
		return fmt.Sprintf("t=%v bridge %d restart", op.At, op.Bridge)
	case OpSetLoss:
		return fmt.Sprintf("t=%v link %d side %d loss %.2f", op.At, op.Link, op.Side, op.Rate)
	case OpClearLoss:
		return fmt.Sprintf("t=%v link %d side %d loss clear", op.At, op.Link, op.Side)
	case OpBurst:
		return fmt.Sprintf("t=%v burst host %d -> host %d (%d x %dB @ %v)", op.At, op.Src, op.Dst, op.Count, op.Payload, op.Interval)
	case OpHostMove:
		return fmt.Sprintf("t=%v host %d moves to spare jack", op.At, op.Host)
	case OpHostReturn:
		return fmt.Sprintf("t=%v host %d returns to home jack", op.At, op.Host)
	default:
		return fmt.Sprintf("t=%v op(?)", op.At)
	}
}

// faultOpWire is the strict JSON shape of one op: every field is optional
// on the wire, and marshal/unmarshal enforce that exactly the fields the
// kind reads are present — a schedule that names a rate on a link-down op
// is rejected, not silently half-applied. Durations use the human-readable
// "150ms" form shared with pkg/fabric specs.
type faultOpWire struct {
	At   topo.Duration `json:"at"`
	Kind FaultKind     `json:"kind"`

	Link *int     `json:"link,omitempty"`
	Side *int     `json:"side,omitempty"`
	Rate *float64 `json:"rate,omitempty"`

	Bridge *int `json:"bridge,omitempty"`

	Host *int `json:"host,omitempty"`

	Src      *int           `json:"src,omitempty"`
	Dst      *int           `json:"dst,omitempty"`
	Port     *uint16        `json:"port,omitempty"`
	Count    *int           `json:"count,omitempty"`
	Interval *topo.Duration `json:"interval,omitempty"`
	Payload  *int           `json:"payload,omitempty"`
}

// fieldsOf reports which wire fields the kind reads, in wire order.
func fieldsOf(k FaultKind) []string {
	switch k {
	case OpLinkDown, OpLinkUp:
		return []string{"link"}
	case OpBridgeRestart:
		return []string{"bridge"}
	case OpSetLoss:
		return []string{"link", "side", "rate"}
	case OpClearLoss:
		return []string{"link", "side"}
	case OpBurst:
		return []string{"src", "dst", "port", "count", "interval", "payload"}
	case OpHostMove, OpHostReturn:
		return []string{"host"}
	default:
		return nil
	}
}

// MarshalJSON emits the op in wire form: at, kind, and exactly the fields
// the kind reads.
func (op FaultOp) MarshalJSON() ([]byte, error) {
	if op.Kind >= numFaultKinds {
		return nil, fmt.Errorf("scenario: unknown fault kind %d", op.Kind)
	}
	w := faultOpWire{At: topo.Duration(op.At), Kind: op.Kind}
	for _, f := range fieldsOf(op.Kind) {
		switch f {
		case "link":
			v := op.Link
			w.Link = &v
		case "side":
			v := op.Side
			w.Side = &v
		case "rate":
			v := op.Rate
			w.Rate = &v
		case "bridge":
			v := op.Bridge
			w.Bridge = &v
		case "host":
			v := op.Host
			w.Host = &v
		case "src":
			v := op.Src
			w.Src = &v
		case "dst":
			v := op.Dst
			w.Dst = &v
		case "port":
			v := op.Port
			w.Port = &v
		case "count":
			v := op.Count
			w.Count = &v
		case "interval":
			v := topo.Duration(op.Interval)
			w.Interval = &v
		case "payload":
			v := op.Payload
			w.Payload = &v
		}
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes the wire form strictly: unknown JSON fields are
// rejected by the decoder, and fields that are present but not read by the
// kind (or read but absent) are errors.
func (op *FaultOp) UnmarshalJSON(data []byte) error {
	var w faultOpWire
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&w); err != nil {
		return fmt.Errorf("scenario op: %w", err)
	}
	want := fieldsOf(w.Kind)
	wanted := func(name string) bool {
		for _, f := range want {
			if f == name {
				return true
			}
		}
		return false
	}
	present := map[string]bool{
		"link": w.Link != nil, "side": w.Side != nil, "rate": w.Rate != nil,
		"bridge": w.Bridge != nil, "host": w.Host != nil,
		"src": w.Src != nil, "dst": w.Dst != nil, "port": w.Port != nil,
		"count": w.Count != nil, "interval": w.Interval != nil, "payload": w.Payload != nil,
	}
	for name, ok := range present {
		if ok && !wanted(name) {
			return fmt.Errorf("scenario op: field %q is not read by kind %q", name, faultKindNames[w.Kind])
		}
	}
	for _, name := range want {
		if !present[name] {
			return fmt.Errorf("scenario op: kind %q requires field %q", faultKindNames[w.Kind], name)
		}
	}
	*op = FaultOp{At: w.At.D(), Kind: w.Kind}
	if w.Link != nil {
		op.Link = *w.Link
	}
	if w.Side != nil {
		op.Side = *w.Side
	}
	if w.Rate != nil {
		op.Rate = *w.Rate
	}
	if w.Bridge != nil {
		op.Bridge = *w.Bridge
	}
	if w.Host != nil {
		op.Host = *w.Host
	}
	if w.Src != nil {
		op.Src = *w.Src
	}
	if w.Dst != nil {
		op.Dst = *w.Dst
	}
	if w.Port != nil {
		op.Port = *w.Port
	}
	if w.Count != nil {
		op.Count = *w.Count
	}
	if w.Interval != nil {
		op.Interval = w.Interval.D()
	}
	if w.Payload != nil {
		op.Payload = *w.Payload
	}
	return nil
}

// EncodeOps renders a schedule as a compact JSON array, one canonical
// wire-form op per element. DecodeOps(EncodeOps(ops)) == ops.
func EncodeOps(ops []FaultOp) ([]byte, error) {
	if ops == nil {
		ops = []FaultOp{}
	}
	return json.Marshal(ops)
}

// DecodeOps parses a schedule strictly (see FaultOp.UnmarshalJSON).
func DecodeOps(data []byte) ([]FaultOp, error) {
	var ops []FaultOp
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&ops); err != nil {
		return nil, err
	}
	if dec.More() {
		return nil, fmt.Errorf("scenario ops: trailing data after JSON document")
	}
	return ops, nil
}

// Index is the exported face of a built network's stable integer handles:
// the sorted name lists fault ops index into. The scenario engine resolves
// a generated schedule through the same structure internally; external
// drivers (the serving daemon) use Index to translate entity names into
// replayable ops and to apply them with the identical shard-routing and
// rehoming machinery the batch sweep uses.
type Index struct {
	ix *netIndex
}

// NewIndex builds the handle table for a built topology. The lists are
// sorted name order, so two builds of the same spec index identically.
func NewIndex(built *topo.Built) *Index {
	return &Index{ix: newNetIndex(built)}
}

// Links returns the sorted link names (index i names link i).
func (x *Index) Links() []string { return append([]string(nil), x.ix.linkNames...) }

// Hosts returns the sorted host names (index i names host i).
func (x *Index) Hosts() []string { return append([]string(nil), x.ix.hostNames...) }

// Bridges returns bridge names in build order (index i names bridge i).
func (x *Index) Bridges() []string {
	names := make([]string, len(x.ix.built.Bridges))
	for i, b := range x.ix.built.Bridges {
		names[i] = b.Name()
	}
	return names
}

// Trunks returns the link indices of bridge–bridge links.
func (x *Index) Trunks() []int { return append([]int(nil), x.ix.trunks...) }

// MobileHosts returns the host indices with a pre-cabled spare jack —
// the only legal targets of OpHostMove/OpHostReturn.
func (x *Index) MobileHosts() []int { return append([]int(nil), x.ix.mobile...) }

// LinkIndex resolves a link name to its op index.
func (x *Index) LinkIndex(name string) (int, bool) { return findName(x.ix.linkNames, name) }

// HostIndex resolves a host name to its op index.
func (x *Index) HostIndex(name string) (int, bool) { return findName(x.ix.hostNames, name) }

// BridgeIndex resolves a bridge name to its op index.
func (x *Index) BridgeIndex(name string) (int, bool) {
	for i, b := range x.ix.built.Bridges {
		if b.Name() == name {
			return i, true
		}
	}
	return 0, false
}

func findName(names []string, name string) (int, bool) {
	for i, n := range names {
		if n == name {
			return i, true
		}
	}
	return 0, false
}

// Host returns host i's handle (for drivers that attach workloads to the
// same endpoints ops reference).
func (x *Index) Host(i int) *host.Host { return x.ix.host(i) }

// Describe renders an op against the concrete instance (names, not
// indices).
func (x *Index) Describe(op FaultOp) string { return x.ix.describe(op) }

// Validate bounds-checks an op against the instance without applying it:
// indices must name real entities, loss sides/rates and burst parameters
// must be well-formed, and moves must target mobile hosts. Apply assumes
// validated ops; a daemon validates at the trust boundary instead of
// panicking mid-simulation.
func (x *Index) Validate(op FaultOp) error {
	ix := x.ix
	checkLink := func() error {
		if op.Link < 0 || op.Link >= len(ix.linkNames) {
			return fmt.Errorf("link index %d out of range [0,%d)", op.Link, len(ix.linkNames))
		}
		return nil
	}
	checkHost := func(i int, what string) error {
		if i < 0 || i >= len(ix.hostNames) {
			return fmt.Errorf("%s index %d out of range [0,%d)", what, i, len(ix.hostNames))
		}
		return nil
	}
	if op.At < 0 {
		return fmt.Errorf("op time %v is negative", op.At)
	}
	switch op.Kind {
	case OpLinkDown, OpLinkUp:
		return checkLink()
	case OpBridgeRestart:
		if op.Bridge < 0 || op.Bridge >= len(ix.built.Bridges) {
			return fmt.Errorf("bridge index %d out of range [0,%d)", op.Bridge, len(ix.built.Bridges))
		}
		// Apply restarts through a bare type assertion; catch a
		// non-restartable protocol here instead of panicking mid-run.
		if _, ok := ix.built.Bridges[op.Bridge].(restartable); !ok {
			return fmt.Errorf("bridge %d (%T) does not support restart", op.Bridge, ix.built.Bridges[op.Bridge])
		}
		return nil
	case OpSetLoss, OpClearLoss:
		if err := checkLink(); err != nil {
			return err
		}
		if op.Side != 0 && op.Side != 1 {
			return fmt.Errorf("loss side %d must be 0 or 1", op.Side)
		}
		if op.Kind == OpSetLoss && (op.Rate < 0 || op.Rate > 1) {
			return fmt.Errorf("loss rate %v outside [0,1]", op.Rate)
		}
		return nil
	case OpBurst:
		if err := checkHost(op.Src, "src host"); err != nil {
			return err
		}
		if err := checkHost(op.Dst, "dst host"); err != nil {
			return err
		}
		if op.Src == op.Dst {
			return fmt.Errorf("burst src and dst are both host %d", op.Src)
		}
		if op.Count <= 0 {
			return fmt.Errorf("burst count %d must be positive", op.Count)
		}
		if op.Interval <= 0 {
			return fmt.Errorf("burst interval %v must be positive", op.Interval)
		}
		if op.Payload <= 0 || op.Payload > 1472 {
			return fmt.Errorf("burst payload %d outside (0,1472]", op.Payload)
		}
		return nil
	case OpHostMove, OpHostReturn:
		if err := checkHost(op.Host, "host"); err != nil {
			return err
		}
		if _, ok := ix.spareJack[op.Host]; !ok {
			return fmt.Errorf("host %d (%s) has no spare jack", op.Host, ix.hostNames[op.Host])
		}
		return nil
	default:
		return fmt.Errorf("unknown fault kind %d", op.Kind)
	}
}

// Apply schedules every op at base+op.At with the engine's shard-aware
// routing (shard-local where possible, coordinator barrier where an op
// genuinely spans shards). Burst sinks are bound immediately; the returned
// sinks report burst delivery. Apply is legal from driver context only —
// between runs, exactly like the batch engine's fault phase.
func (x *Index) Apply(ops []FaultOp, base time.Duration) (offered int, sinks []*app.Sink) {
	return applyOps(x.ix, ops, base)
}

// Heal returns every link to service: all links up, loss cleared, and any
// station stranded on its spare jack re-homed and re-announced.
func (x *Index) Heal() { heal(x.ix) }

// PartitionCut draws a seeded bisection of the bridge graph and returns
// the crossing trunk links as op indices — plain link ops, so a partition
// streamed at a daemon replays and heals like any other schedule.
func (x *Index) PartitionCut(seed int64) []int {
	return x.ix.partitionCut(rand.New(rand.NewSource(seed)))
}
