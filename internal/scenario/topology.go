package scenario

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/host"
	"repro/internal/netsim"
	"repro/internal/topo"
)

// TopologyFamily names a class of seeded random topologies the engine can
// draw a concrete instance from.
type TopologyFamily string

// Topology families. Each instance's shape parameters are drawn from the
// scenario's plan RNG, so one (family, seed) pair names exactly one graph.
const (
	// TopoErdosRenyi is a connected G(n,p) random graph, the shape of the
	// All-Path scalability study's sweeps.
	TopoErdosRenyi TopologyFamily = "erdos-renyi"
	// TopoRingOfRings is a hierarchical ring of rings (metro topology).
	TopoRingOfRings TopologyFamily = "ring-of-rings"
	// TopoRandomRegular is an approximately 3-regular random graph.
	TopoRandomRegular TopologyFamily = "random-regular"
	// TopoGrid is a rows×cols mesh with corner hosts.
	TopoGrid TopologyFamily = "grid"
	// TopoFatTree is a k=4 fat tree, the data-center fabric of the
	// paper's introduction.
	TopoFatTree TopologyFamily = "fat-tree"
)

// TopologyFamilies lists every family, sweep order.
func TopologyFamilies() []TopologyFamily {
	return []TopologyFamily{TopoErdosRenyi, TopoRingOfRings, TopoRandomRegular, TopoGrid, TopoFatTree}
}

// buildTopology draws the family's shape parameters from plan and builds
// the instance with the scenario seed (which also seeds the simulation
// engine, so wiring, delays and race outcomes are all functions of the
// seed alone). cfg.Shards > 1 partitions the instance onto the parallel
// engine; cfg.Big selects the larger tier — both leave the plan stream of
// the corresponding non-big draw untouched only for shards (a Big run is
// a different scenario, a sharded run of the same scenario is the same
// one). cfg.Proxy builds every bridge with the in-switch ARP proxy; the
// host-mobility family pre-cables spare jacks (neither changes any other
// scenario's build, so existing fingerprints are untouched).
func buildTopology(cfg Config, plan *rand.Rand) *topo.Built {
	f, seed, big := cfg.Topology, cfg.Seed, cfg.Big
	opts := topo.DefaultOptions(cfg.Protocol, seed)
	opts.Shards = cfg.Shards
	opts.SpareJacks = cfg.Faults == FaultsHostMobility
	if cfg.Proxy {
		// The proxy is an ARP-Path knob; Options.ARPPath enforces it.
		opts.ARPPath().Proxy = true
	}
	if big {
		switch f {
		case TopoErdosRenyi:
			n := 40 + plan.Intn(17)
			p := 0.04 + 0.06*plan.Float64()
			return topo.ErdosRenyi(opts, n, p)
		case TopoRingOfRings:
			return topo.RingOfRings(opts, 4+plan.Intn(2), 6+plan.Intn(3))
		case TopoRandomRegular:
			return topo.RandomRegular(opts, 40+2*plan.Intn(9), 3)
		case TopoGrid:
			return topo.Grid(opts, 6, 7+plan.Intn(3))
		case TopoFatTree:
			return topo.FatTree(opts, 6)
		}
	}
	switch f {
	case TopoErdosRenyi:
		n := 8 + plan.Intn(6)
		p := 0.1 + 0.2*plan.Float64()
		return topo.ErdosRenyi(opts, n, p)
	case TopoRingOfRings:
		return topo.RingOfRings(opts, 2+plan.Intn(2), 3+plan.Intn(3))
	case TopoRandomRegular:
		return topo.RandomRegular(opts, 8+2*plan.Intn(3), 3)
	case TopoGrid:
		return topo.Grid(opts, 3, 3+plan.Intn(2))
	case TopoFatTree:
		return topo.FatTree(opts, 4)
	default:
		panic(fmt.Sprintf("scenario: unknown topology family %q", f))
	}
}

// netIndex gives the engine stable integer handles into a built network:
// fault ops reference links, bridges and hosts by index into these sorted
// name lists, which is what makes an op list replayable (and shrinkable)
// against a rebuilt instance of the same scenario.
type netIndex struct {
	built     *topo.Built
	linkNames []string
	hostNames []string
	trunks    []int // indices into linkNames of bridge–bridge links

	// Host-mobility bookkeeping (SpareJacks builds). A "spare:H<i>-..."
	// link is host i's other wall jack; isSpare marks those links so trunk
	// selection and heal treat them specially, and mobile lists the hosts
	// a move op may pick.
	isSpare    []bool      // parallel to linkNames
	spareOwner map[int]int // linkNames index -> hostNames index
	homeJack   map[int]int // hostNames index -> linkNames index
	spareJack  map[int]int // hostNames index -> linkNames index
	mobile     []int       // hostNames indices with a spare jack, sorted
}

func newNetIndex(built *topo.Built) *netIndex {
	ix := &netIndex{
		built:      built,
		spareOwner: make(map[int]int),
		homeJack:   make(map[int]int),
		spareJack:  make(map[int]int),
	}
	for name := range built.Links {
		ix.linkNames = append(ix.linkNames, name)
	}
	sort.Strings(ix.linkNames)
	for name := range built.Hosts {
		ix.hostNames = append(ix.hostNames, name)
	}
	sort.Strings(ix.hostNames)
	hostIdx := make(map[string]int, len(ix.hostNames))
	for i, name := range ix.hostNames {
		hostIdx[name] = i
	}
	bridges := make(map[string]bool, len(built.Bridges))
	for _, b := range built.Bridges {
		bridges[b.Name()] = true
	}
	ix.isSpare = make([]bool, len(ix.linkNames))
	for i, name := range ix.linkNames {
		l := built.Links[name]
		if bridges[l.A().Node().Name()] && bridges[l.B().Node().Name()] {
			ix.trunks = append(ix.trunks, i)
			continue
		}
		// Access links: tie each one to its host's index. Spare jacks are
		// named by the builder; home jacks are whichever access link the
		// host's name prefixes.
		hostEnd := l.A().Node().Name()
		if !bridges[hostEnd] {
			// ok: A side is the host
		} else {
			hostEnd = l.B().Node().Name()
		}
		h, isHost := hostIdx[hostEnd]
		if !isHost {
			continue
		}
		if strings.HasPrefix(name, "spare:") {
			ix.isSpare[i] = true
			ix.spareOwner[i] = h
			ix.spareJack[h] = i
		} else {
			ix.homeJack[h] = i
		}
	}
	for h := range ix.spareJack {
		if _, ok := ix.homeJack[h]; ok {
			ix.mobile = append(ix.mobile, h)
		}
	}
	sort.Ints(ix.mobile)
	return ix
}

func (ix *netIndex) link(i int) *netsim.Link  { return ix.built.Links[ix.linkNames[i]] }
func (ix *netIndex) host(i int) *host.Host    { return ix.built.Hosts[ix.hostNames[i]] }
func (ix *netIndex) bridge(i int) topo.Bridge { return ix.built.Bridges[i] }

// partitionCut draws a seeded bisection of the bridge graph: BFS from a
// plan-chosen bridge claims half the bridges, and the cut is every trunk
// link with exactly one end inside the claimed set. The result is a list
// of linkNames indices — plain link ops, so partition schedules replay
// and shrink like any others.
func (ix *netIndex) partitionCut(plan *rand.Rand) []int {
	nb := len(ix.built.Bridges)
	if nb < 2 {
		return nil
	}
	idx := make(map[string]int, nb)
	for i, b := range ix.built.Bridges {
		idx[b.Name()] = i
	}
	adj := make([][]int, nb)
	ends := func(li int) (int, int) {
		l := ix.link(li)
		return idx[l.A().Node().Name()], idx[l.B().Node().Name()]
	}
	for _, li := range ix.trunks {
		a, b := ends(li)
		if a != b {
			adj[a] = append(adj[a], b)
			adj[b] = append(adj[b], a)
		}
	}
	target := nb / 2
	in := make([]bool, nb)
	in[plan.Intn(nb)] = true
	queue := []int{}
	for i, ok := range in {
		if ok {
			queue = append(queue, i)
		}
	}
	count := 1
	for len(queue) > 0 && count < target {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range adj[cur] {
			if !in[next] && count < target {
				in[next] = true
				count++
				queue = append(queue, next)
			}
		}
	}
	var cut []int
	for _, li := range ix.trunks {
		a, b := ends(li)
		if in[a] != in[b] {
			cut = append(cut, li)
		}
	}
	return cut
}
