package scenario

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/flowpath"
	"repro/internal/topo"
)

// sweepTopos × sweepFaults × sweepSeeds is the tier-1 sweep: 4 topology
// families × 6 fault-schedule families × 4 seeds = 96 scenarios. The
// mixed schedule and the fat tree are exercised separately (determinism
// test, cmd/scenario) to keep tier-1 wall-clock in check.
var (
	sweepTopos  = []TopologyFamily{TopoErdosRenyi, TopoRingOfRings, TopoRandomRegular, TopoGrid}
	sweepFaults = []FaultFamily{FaultsLinkFlaps, FaultsBridgeRestarts, FaultsUnidirLoss, FaultsQueuePressure, FaultsPartition, FaultsHostMobility}
	sweepSeeds  = []int64{1, 2, 3, 4}
)

// TestScenarioSweep runs the full 96-scenario grid and requires every
// invariant to hold in every one. A failure seed reproduces exactly with
//
//	go run ./cmd/scenario -topo <family> -faults <family> -seed0 <n> -seeds 1
func TestScenarioSweep(t *testing.T) {
	ran := 0
	for _, tf := range sweepTopos {
		for _, ff := range sweepFaults {
			for _, seed := range sweepSeeds {
				cfg := Config{Seed: seed, Topology: tf, Faults: ff}
				t.Run(cfg.Name(), func(t *testing.T) {
					r := Run(cfg)
					if r.Failed() {
						for _, v := range r.Violations {
							t.Errorf("%v", v)
						}
						if r.ViolationsDropped > 0 {
							t.Errorf("+%d further violations", r.ViolationsDropped)
						}
						for _, op := range r.OpsApplied {
							t.Logf("schedule: %s", op)
						}
					}
					if !r.Drained {
						t.Errorf("scenario did not drain")
					}
					if r.ProbesAnswered != r.ProbesSent {
						t.Errorf("probes answered %d/%d", r.ProbesAnswered, r.ProbesSent)
					}
				})
				ran++
			}
		}
	}
	if ran < 96 {
		t.Fatalf("sweep ran %d scenarios, want >= 96", ran)
	}
}

// TestScenarioSweepProxy runs a proxy-enabled slice of the sweep: the
// same invariants must hold when every bridge runs the in-switch ARP
// proxy, plus the proxy-consistency check (no blind spot for proxy mode).
// Mobility is included deliberately — snooped bindings must stay correct
// across station moves.
func TestScenarioSweepProxy(t *testing.T) {
	for _, tf := range sweepTopos {
		for _, ff := range []FaultFamily{FaultsLinkFlaps, FaultsHostMobility} {
			for _, seed := range []int64{1, 2} {
				cfg := Config{Seed: seed, Topology: tf, Faults: ff, Proxy: true}
				t.Run(cfg.Name(), func(t *testing.T) {
					r := Run(cfg)
					if r.Failed() {
						for _, v := range r.Violations {
							t.Errorf("%v", v)
						}
						for _, op := range r.OpsApplied {
							t.Logf("schedule: %s", op)
						}
					}
					if !r.Drained {
						t.Errorf("scenario did not drain")
					}
				})
			}
		}
	}
}

// TestHostMobilitySchedulesMove pins that the mobility family really
// moves stations on the host-per-bridge families (spare jacks exist and
// the generated schedule uses them) and that such scenarios verify: the
// fabric re-locks every moved station from its gratuitous ARP alone.
func TestHostMobilitySchedulesMove(t *testing.T) {
	moves := 0
	for _, tf := range []TopologyFamily{TopoErdosRenyi, TopoRingOfRings, TopoRandomRegular} {
		for _, seed := range sweepSeeds {
			r := Run(Config{Seed: seed, Topology: tf, Faults: FaultsHostMobility})
			if r.Failed() {
				t.Fatalf("%s/host-mobility/seed=%d failed: %v", tf, seed, r.Violations)
			}
			for _, op := range r.Ops {
				if op.Kind == OpHostMove {
					moves++
				}
			}
		}
	}
	if moves == 0 {
		t.Fatal("no OpHostMove generated across the mobility sweep — spare jacks missing?")
	}
}

// TestScenarioShardedMatchesSingle is PR 2's machinery meeting PR 3's
// engine: the same scenario run on 1 shard and on a partitioned parallel
// engine must produce the identical trace fingerprint, event count,
// violation list and probe accounting. One scenario per topology family,
// mixed faults where the fabric is meshy enough to take them.
func TestScenarioShardedMatchesSingle(t *testing.T) {
	cases := []Config{
		{Seed: 5, Topology: TopoErdosRenyi, Faults: FaultsMixed},
		{Seed: 6, Topology: TopoGrid, Faults: FaultsPartition},
		{Seed: 7, Topology: TopoRingOfRings, Faults: FaultsLinkFlaps},
		{Seed: 8, Topology: TopoFatTree, Faults: FaultsBridgeRestarts},
		{Seed: 9, Topology: TopoRandomRegular, Faults: FaultsHostMobility},
		{Seed: 10, Topology: TopoErdosRenyi, Faults: FaultsLinkFlaps, Proxy: true},
		{Seed: 11, Topology: TopoErdosRenyi, Faults: FaultsMixed, Protocol: flowpath.ProtoFlowPath},
		{Seed: 12, Topology: TopoRingOfRings, Faults: FaultsBridgeRestarts, Protocol: flowpath.ProtoTCPPath},
	}
	for _, base := range cases {
		base := base
		t.Run(base.Name(), func(t *testing.T) {
			single := Run(base)
			for _, k := range []int{2, 4} {
				cfg := base
				cfg.Shards = k
				sharded := Run(cfg)
				if sharded.Fingerprint != single.Fingerprint || sharded.Events != single.Events {
					t.Fatalf("shards=%d trace diverged: fp=%#x events=%d, want fp=%#x events=%d",
						k, sharded.Fingerprint, sharded.Events, single.Fingerprint, single.Events)
				}
				if fmt.Sprint(sharded.Violations) != fmt.Sprint(single.Violations) {
					t.Fatalf("shards=%d violations diverged:\n%v\nvs\n%v", k, sharded.Violations, single.Violations)
				}
				if sharded.ProbesAnswered != single.ProbesAnswered ||
					sharded.WarmProbesAnswered != single.WarmProbesAnswered ||
					sharded.BackgroundDelivered != single.BackgroundDelivered {
					t.Fatalf("shards=%d accounting diverged: %+v vs %+v", k, sharded, single)
				}
			}
		})
	}
}

// TestScenarioDeterminism runs one scenario per family pairing twice
// (plus a mixed-fault fat tree) and requires bit-identical traces: same
// seed, same fingerprint, same event count, same violations.
func TestScenarioDeterminism(t *testing.T) {
	cfgs := []Config{
		{Seed: 7, Topology: TopoErdosRenyi, Faults: FaultsMixed},
		{Seed: 7, Topology: TopoRingOfRings, Faults: FaultsLinkFlaps},
		{Seed: 7, Topology: TopoRandomRegular, Faults: FaultsBridgeRestarts},
		{Seed: 7, Topology: TopoGrid, Faults: FaultsUnidirLoss},
		{Seed: 7, Topology: TopoFatTree, Faults: FaultsMixed},
	}
	for _, cfg := range cfgs {
		t.Run(cfg.Name(), func(t *testing.T) {
			a, b := Run(cfg), Run(cfg)
			if a.Fingerprint != b.Fingerprint || a.Events != b.Events {
				t.Fatalf("trace diverged: run1 fp=%#x events=%d, run2 fp=%#x events=%d",
					a.Fingerprint, a.Events, b.Fingerprint, b.Events)
			}
			if len(a.Violations) != len(b.Violations) {
				t.Fatalf("violations diverged: %d vs %d", len(a.Violations), len(b.Violations))
			}
			// Replaying the generated schedule must also reproduce the trace.
			c := Replay(cfg, a.Ops)
			if c.Fingerprint != a.Fingerprint {
				t.Fatalf("replay diverged: fp=%#x want %#x", c.Fingerprint, a.Fingerprint)
			}
		})
	}
}

// TestScenarioFrameAccountingAcrossFailures checks the refcount invariant
// specifically across the faults that exercise Retain/Release edge cases:
// bridge restarts (buffered repair frames dropped mid-flight) and flaps
// (in-flight frames killed by epoch bumps) must still drain to zero.
func TestScenarioFrameAccountingAcrossFailures(t *testing.T) {
	for _, ff := range []FaultFamily{FaultsBridgeRestarts, FaultsLinkFlaps, FaultsMixed} {
		r := Run(Config{Seed: 11, Topology: TopoErdosRenyi, Faults: ff})
		if !r.Drained {
			t.Fatalf("%s: did not drain", ff)
		}
		for _, v := range r.Violations {
			if v.Invariant == InvFrameDrain {
				t.Errorf("%s: %v", ff, v)
			}
		}
	}
}

// TestShrinkOps pins the delta-debugging reduction: a failure caused by
// the interaction of two specific ops out of twelve shrinks to exactly
// those two, and the predicate is never handed an empty schedule.
func TestShrinkOps(t *testing.T) {
	ops := make([]FaultOp, 12)
	for i := range ops {
		ops[i] = FaultOp{At: time.Duration(i) * time.Millisecond, Kind: OpLinkDown, Link: i}
	}
	calls := 0
	fails := func(sub []FaultOp) bool {
		calls++
		if len(sub) == 0 {
			t.Fatal("predicate called with empty schedule")
		}
		has := func(link int) bool {
			for _, op := range sub {
				if op.Link == link {
					return true
				}
			}
			return false
		}
		return has(3) && has(7)
	}
	min := ShrinkOps(ops, fails)
	if len(min) != 2 || min[0].Link != 3 || min[1].Link != 7 {
		t.Fatalf("shrunk to %v, want ops for links 3 and 7", min)
	}
	if calls > 100 {
		t.Fatalf("shrink used %d replays for 12 ops", calls)
	}

	// A passing schedule is returned unchanged.
	same := ShrinkOps(ops, func([]FaultOp) bool { return false })
	if len(same) != len(ops) {
		t.Fatalf("passing schedule was shrunk to %d ops", len(same))
	}
}

// TestShrinkEndToEnd exercises Shrink against real replays: a passing
// scenario reports ok=false (nothing to shrink), deterministically.
func TestShrinkEndToEnd(t *testing.T) {
	cfg := Config{Seed: 3, Topology: TopoRingOfRings, Faults: FaultsLinkFlaps}
	r := Run(cfg)
	if r.Failed() {
		t.Fatalf("expected passing scenario, got %v", r.Violations)
	}
	if _, _, ok := Shrink(cfg, r.Ops); ok {
		t.Fatal("Shrink reproduced a failure from a passing scenario")
	}
}

func ExampleConfig_Name() {
	fmt.Println(Config{Seed: 42, Topology: TopoErdosRenyi, Faults: FaultsMixed}.Name())
	// Output: erdos-renyi/mixed/seed=42
}

// TestShardLocalOpsReduceBarriers pins the barrier-reduction half of the
// shard-local fault routing: the same -big scenario, run at shards=2 with
// classification on and with every op forced onto the barrier path, must
// pass both ways — and the classified run must use strictly fewer
// coordinator barriers. (Trace equivalence across shard counts is pinned
// separately by TestScenarioShardedMatchesSingle; barrier-forced mode
// re-keys the ops, so its fingerprint is not comparable.)
func TestShardLocalOpsReduceBarriers(t *testing.T) {
	cfg := Config{Seed: 2, Topology: TopoErdosRenyi, Faults: FaultsMixed, Shards: 2, Big: true}
	classified := Run(cfg)
	if classified.Failed() {
		t.Fatalf("classified run failed: %v", classified.Violations)
	}
	forceBarrierOps = true
	defer func() { forceBarrierOps = false }()
	forced := Run(cfg)
	if forced.Failed() {
		t.Fatalf("barrier-forced run failed: %v", forced.Violations)
	}
	if classified.Barriers >= forced.Barriers {
		t.Fatalf("barriers: classified=%d, forced=%d — intra-shard ops did not leave the barrier path",
			classified.Barriers, forced.Barriers)
	}
	t.Logf("barriers: classified=%d forced=%d (ops=%d)", classified.Barriers, forced.Barriers, len(classified.Ops))
}

// TestScenarioSweepVariants runs the invariant library against the
// All-Path variants: Flow-Path and TCP-Path fabrics under the same
// seeded topologies and fault schedules must hold loop-freedom, flood
// bounds, table consistency (per-pair walks for flowpath, MAC + conn
// walks for tcppath), eventual delivery and frame-drain — and tcppath
// runs must complete a post-quiescence TCP transfer through a fresh
// SYN-flood-raced connection path.
func TestScenarioSweepVariants(t *testing.T) {
	for _, proto := range []topo.Protocol{flowpath.ProtoFlowPath, flowpath.ProtoTCPPath} {
		for _, tf := range sweepTopos {
			for _, ff := range []FaultFamily{FaultsLinkFlaps, FaultsBridgeRestarts, FaultsQueuePressure, FaultsPartition} {
				for _, seed := range []int64{1, 2} {
					cfg := Config{Seed: seed, Topology: tf, Faults: ff, Protocol: proto}
					t.Run(cfg.Name(), func(t *testing.T) {
						r := Run(cfg)
						if r.Failed() {
							for _, v := range r.Violations {
								t.Errorf("%v", v)
							}
							if r.ViolationsDropped > 0 {
								t.Errorf("+%d further violations", r.ViolationsDropped)
							}
							for _, op := range r.OpsApplied {
								t.Logf("schedule: %s", op)
							}
						}
						if !r.Drained {
							t.Errorf("scenario did not drain")
						}
						if r.ProbesAnswered != r.ProbesSent {
							t.Errorf("probes answered %d/%d", r.ProbesAnswered, r.ProbesSent)
						}
					})
				}
			}
		}
	}
}
