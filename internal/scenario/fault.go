package scenario

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/host/app"
	"repro/internal/netsim"
)

// FaultFamily names a class of seeded fault schedules.
type FaultFamily string

// Fault schedule families.
const (
	// FaultsLinkFlaps cuts trunk links and restores them after a pause —
	// the paper's §3.2 path-repair stimulus, randomized.
	FaultsLinkFlaps FaultFamily = "link-flaps"
	// FaultsBridgeRestarts power-cycles bridges with total table loss.
	FaultsBridgeRestarts FaultFamily = "bridge-restarts"
	// FaultsUnidirLoss degrades single link directions with random frame
	// loss (the wARP-Path lossy-link regime).
	FaultsUnidirLoss FaultFamily = "unidir-loss"
	// FaultsQueuePressure fires line-rate UDP bursts that overflow output
	// queues, so discovery races and repairs run under congestion drop.
	FaultsQueuePressure FaultFamily = "queue-pressure"
	// FaultsPartition splits the fabric in two along a seeded cut of the
	// bridge graph (every crossing trunk goes down at once), runs traffic
	// against the halves, then heals the cut — the harshest repair
	// stimulus: both sides keep stale state about the other for the whole
	// partition, and reconciliation must not loop or blackhole.
	FaultsPartition FaultFamily = "partition-heal"
	// FaultsMixed combines one of each of the single-fault families.
	FaultsMixed FaultFamily = "mixed"
	// FaultsHostMobility re-homes stations to a pre-cabled spare wall
	// jack on another edge bridge and back, announcing each move with a
	// gratuitous ARP (host.AnnounceLocation) the way a real OS does on
	// link-up. The fabric must re-lock the station's position from the
	// announcement flood alone — no bridge configuration, no
	// reconvergence (§2.1.1's first-port rule under churn). Topology
	// families without spare jacks (grid, fat-tree) yield empty
	// schedules: the instance still runs and must still verify.
	FaultsHostMobility FaultFamily = "host-mobility"
)

// FaultFamilies lists every schedule family, sweep order.
func FaultFamilies() []FaultFamily {
	return []FaultFamily{FaultsLinkFlaps, FaultsBridgeRestarts, FaultsUnidirLoss, FaultsQueuePressure, FaultsPartition, FaultsMixed, FaultsHostMobility}
}

// FaultKind, FaultOp and their strict JSON codec live in ops.go: the op
// vocabulary is exported (shared with the serving daemon), the schedule
// generation below is the batch engine's own.

// Describe renders an op against a concrete instance (names, not indices).
func (ix *netIndex) describe(op FaultOp) string {
	s := op.String()
	switch op.Kind {
	case OpLinkDown, OpLinkUp, OpSetLoss, OpClearLoss:
		if op.Link >= 0 && op.Link < len(ix.linkNames) {
			s += " (" + ix.linkNames[op.Link] + ")"
		}
	case OpBridgeRestart:
		if op.Bridge >= 0 && op.Bridge < len(ix.built.Bridges) {
			s += " (" + ix.built.Bridges[op.Bridge].Name() + ")"
		}
	case OpBurst:
		if op.Src < len(ix.hostNames) && op.Dst < len(ix.hostNames) {
			s += " (" + ix.hostNames[op.Src] + " -> " + ix.hostNames[op.Dst] + ")"
		}
	case OpHostMove, OpHostReturn:
		if op.Host >= 0 && op.Host < len(ix.hostNames) {
			s += " (" + ix.hostNames[op.Host] + ")"
		}
	}
	return s
}

// generateOps draws one schedule of the given family. All randomness comes
// from plan; times land inside [0, phase) with repairs-in-flight room at
// the end left to the quiescence period.
func generateOps(family FaultFamily, plan *rand.Rand, ix *netIndex, phase time.Duration, burstPort *uint16) []FaultOp {
	var ops []FaultOp
	at := func(frac float64) time.Duration {
		return time.Duration(plan.Float64() * frac * float64(phase))
	}
	flap := func() {
		if len(ix.trunks) == 0 {
			return
		}
		link := ix.trunks[plan.Intn(len(ix.trunks))]
		start := at(0.6)
		dur := 20*time.Millisecond + time.Duration(plan.Intn(int(100*time.Millisecond)))
		ops = append(ops,
			FaultOp{At: start, Kind: OpLinkDown, Link: link},
			FaultOp{At: start + dur, Kind: OpLinkUp, Link: link})
	}
	restart := func() {
		ops = append(ops, FaultOp{At: at(0.8), Kind: OpBridgeRestart, Bridge: plan.Intn(len(ix.built.Bridges))})
	}
	loss := func() {
		if len(ix.trunks) == 0 {
			return
		}
		link := ix.trunks[plan.Intn(len(ix.trunks))]
		side := plan.Intn(2)
		start := at(0.5)
		dur := 50*time.Millisecond + time.Duration(plan.Intn(int(150*time.Millisecond)))
		ops = append(ops,
			FaultOp{At: start, Kind: OpSetLoss, Link: link, Side: side, Rate: 0.2 + 0.5*plan.Float64()},
			FaultOp{At: start + dur, Kind: OpClearLoss, Link: link, Side: side})
	}
	burst := func() {
		src := plan.Intn(len(ix.hostNames))
		dst := plan.Intn(len(ix.hostNames))
		if dst == src {
			dst = (dst + 1) % len(ix.hostNames)
		}
		*burstPort++
		ops = append(ops, FaultOp{
			At: at(0.5), Kind: OpBurst, Src: src, Dst: dst, Port: *burstPort,
			Count:    1000 + plan.Intn(1500),
			Interval: time.Duration(6+plan.Intn(8)) * time.Microsecond,
			Payload:  1000 + plan.Intn(400),
		})
	}
	part := func() {
		cut := ix.partitionCut(plan)
		if len(cut) == 0 {
			return
		}
		start := at(0.3)
		dur := 80*time.Millisecond + time.Duration(plan.Intn(int(120*time.Millisecond)))
		for _, li := range cut {
			ops = append(ops,
				FaultOp{At: start, Kind: OpLinkDown, Link: li},
				FaultOp{At: start + dur, Kind: OpLinkUp, Link: li})
		}
	}
	move := func() {
		if len(ix.mobile) == 0 {
			return
		}
		h := ix.mobile[plan.Intn(len(ix.mobile))]
		// Bound move+return (plus the 5 ms link-up announcement) inside
		// the fault phase so generated schedules always restore cabling
		// before heal.
		start := at(0.4)
		dur := 60*time.Millisecond + time.Duration(plan.Intn(int(120*time.Millisecond)))
		ops = append(ops,
			FaultOp{At: start, Kind: OpHostMove, Host: h},
			FaultOp{At: start + dur, Kind: OpHostReturn, Host: h})
	}
	switch family {
	case FaultsLinkFlaps:
		for i, n := 0, 2+plan.Intn(3); i < n; i++ {
			flap()
		}
	case FaultsBridgeRestarts:
		for i, n := 0, 1+plan.Intn(2); i < n; i++ {
			restart()
		}
	case FaultsUnidirLoss:
		for i, n := 0, 1+plan.Intn(2); i < n; i++ {
			loss()
		}
	case FaultsQueuePressure:
		for i, n := 0, 2+plan.Intn(2); i < n; i++ {
			burst()
		}
	case FaultsPartition:
		part()
	case FaultsHostMobility:
		for i, n := 0, 1+plan.Intn(2); i < n; i++ {
			move()
		}
	case FaultsMixed:
		flap()
		restart()
		loss()
		burst()
	default:
		panic(fmt.Sprintf("scenario: unknown fault family %q", family))
	}
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].At < ops[j].At })
	return ops
}

// forceBarrierOps is a test knob: when set, every fault op schedules on
// the control engine the pre-classification way (a coordinator barrier in
// sharded runs, whatever it touches). The barrier-reduction regression
// compares a run against this mode to pin that intra-shard ops really
// left the barrier path.
var forceBarrierOps bool

// scheduleOp routes one fault action: keyed by owner's identity, executed
// shard-locally when everything it touches lives in owner's shard, as a
// coordinator barrier otherwise (netsim.ScheduleScoped).
func (ix *netIndex) scheduleOp(at time.Duration, owner netsim.Node, touch []netsim.Node, fn func()) {
	if forceBarrierOps {
		ix.built.Engine.At(at, fn)
		return
	}
	ix.built.Network.ScheduleScoped(at, owner, touch, fn)
}

// linkEnds returns a link's two end nodes.
func linkEnds(l *netsim.Link) (netsim.Node, netsim.Node) {
	return l.A().Node(), l.B().Node()
}

// applyOps schedules every op at base+op.At. Each op is keyed by the
// entity it acts on and classified by the set of nodes whose state it
// touches: a flap of an intra-shard link, a loss knob, a burst, a restart
// whose neighbours are co-sharded all run inside their shard's parallel
// windows; only ops that genuinely span shards pause the fabric as
// coordinator barriers. Burst sinks are bound up front (port bindings are
// not time-dependent); the returned sinks report burst delivery for the
// result's traffic accounting.
func applyOps(ix *netIndex, ops []FaultOp, base time.Duration) (offered int, sinks []*app.Sink) {
	for _, op := range ops {
		op := op
		switch op.Kind {
		case OpLinkDown, OpLinkUp:
			// SetUp purges both directions and notifies both end nodes.
			l := ix.link(op.Link)
			a, b := linkEnds(l)
			up := op.Kind == OpLinkUp
			ix.scheduleOp(base+op.At, a, []netsim.Node{a, b}, func() { l.SetUp(up) })
		case OpBridgeRestart:
			// Restart wipes the bridge and bounces every attached link,
			// which notifies each peer node.
			br := ix.bridge(op.Bridge)
			touch := []netsim.Node{br}
			for _, p := range br.Ports() {
				touch = append(touch, p.Peer().Node())
			}
			ix.scheduleOp(base+op.At, br, touch, func() { ix.bridge(op.Bridge).(restartable).Restart() })
		case OpSetLoss, OpClearLoss:
			// A direction's loss state is owned by the transmitting side.
			l := ix.link(op.Link)
			from := l.Ports()[op.Side]
			rate := op.Rate
			if op.Kind == OpClearLoss {
				rate = 0
			}
			ix.scheduleOp(base+op.At, from.Node(), []netsim.Node{from.Node()}, func() {
				l.SetLoss(from, rate)
			})
		case OpBurst:
			offered += op.Count
			sinks = append(sinks, app.NewSink(ix.host(op.Dst), op.Port))
			src := ix.host(op.Src)
			ix.scheduleOp(base+op.At, src, []netsim.Node{src}, func() {
				app.StartFlow(src, app.FlowConfig{
					DstIP: ix.host(op.Dst).IP(), DstPort: op.Port, SrcPort: op.Port,
					PayloadSize: op.Payload, Interval: op.Interval, Count: op.Count,
				}, nil)
			})
		case OpHostMove, OpHostReturn:
			h := ix.host(op.Host)
			toSpare := op.Kind == OpHostMove
			ix.scheduleOp(base+op.At, h, ix.rehomeTouch(op.Host), func() { ix.rehome(op.Host, toSpare) })
		}
	}
	return offered, sinks
}

// rehomeTouch is the node set a host move touches: the station plus the
// edge bridges at both wall jacks (both links flip state).
func (ix *netIndex) rehomeTouch(host int) []netsim.Node {
	h := ix.host(host)
	touch := []netsim.Node{h}
	for _, li := range []int{ix.homeJack[host], ix.spareJack[host]} {
		a, b := linkEnds(ix.link(li))
		touch = append(touch, a, b)
	}
	return touch
}

// rehome swaps a station between its home and spare jacks and schedules
// the gratuitous ARP a real OS sends shortly after link-up. Without that
// announcement the fabric would keep the old position and (correctly,
// §2.1.1) discard the station's frames — see core's mobility tests.
func (ix *netIndex) rehome(host int, toSpare bool) {
	home, spare := ix.link(ix.homeJack[host]), ix.link(ix.spareJack[host])
	from, to := home, spare
	if !toSpare {
		from, to = spare, home
	}
	from.SetUp(false)
	to.SetUp(true)
	h := ix.host(host)
	// Under the host's identity (not the control engine's): the
	// announcement must fire whether the move ran as a barrier, as a
	// shard-local event, or from heal's driver context — and carry the
	// same partition-independent key in all three.
	h.After(5*time.Millisecond, func() {
		// The link may have flapped again (replayed/shrunk schedules);
		// announce only while the new jack is still the live one.
		if to.Up() {
			h.AnnounceLocation()
		}
	})
}

// restartable is the fault injector's view of a bridge that can lose all
// state (core.Bridge implements it).
type restartable interface{ Restart() }

// heal returns every link to service: all links up, all loss cleared —
// except spare jacks, whose healthy state is down (a station's home jack
// is the live one). A station stranded on its spare by a shrunk or
// replayed schedule is re-homed and re-announced, exactly what replugging
// the original cable does.
func heal(ix *netIndex) {
	for i, name := range ix.linkNames {
		l := ix.built.Links[name]
		l.SetLoss(l.A(), 0)
		l.SetLoss(l.B(), 0)
		if ix.isSpare[i] {
			if l.Up() {
				if h, ok := ix.spareOwner[i]; ok {
					ix.rehome(h, false)
				} else {
					l.SetUp(false)
				}
			}
			continue
		}
		if !l.Up() {
			l.SetUp(true)
		}
	}
}
