package scenario

import (
	"testing"
	"time"

	"repro/internal/host"
	"repro/internal/layers"
	"repro/internal/netsim"
	"repro/internal/topo"
)

// ringPort returns the port of bridge on the named ring link.
func ringPort(t *testing.T, built *topo.Built, linkName, bridge string) *netsim.Port {
	t.Helper()
	l := built.Link(linkName)
	for _, p := range l.Ports() {
		if p.Node().Name() == bridge {
			return p
		}
	}
	t.Fatalf("link %s has no port on %s", linkName, bridge)
	return nil
}

// corruptRing rewrites the four ring bridges' tables into a sustained
// forwarding cycle — the corruption ARP-Path's locking discipline exists
// to make impossible. Entries for H3 (the destination) point forward
// around the ring (S1→S2→S3→S4→S1) and entries for H1 (the source) point
// backward, so a looping frame always arrives on its bound source port
// and the src-port discipline cannot cut the loop. This is the PR's
// deliberate-bug regression: the invariant library must catch it.
func corruptRing(t *testing.T, built *topo.Built) {
	t.Helper()
	dst := built.Host("H3").MAC()
	src := built.Host("H1").MAC()
	now := built.Now()
	for _, hop := range [][3]string{
		// bridge, dst's next-hop link, src's previous-hop link
		{"S1", "S1-S2", "S4-S1"},
		{"S2", "S2-S3", "S1-S2"},
		{"S3", "S3-S4", "S2-S3"},
		{"S4", "S4-S1", "S3-S4"},
	} {
		tbl := built.ARPPathBridge(hop[0]).Table()
		tbl.Learn(dst, ringPort(t, built, hop[1], hop[0]), now)
		tbl.Learn(src, ringPort(t, built, hop[2], hop[0]), now)
	}
}

// TestBrokenLockTableCaughtByLoopFreedom corrupts the live tables into a
// ring cycle and pushes one unicast datagram through it: the hop-trace
// loop-freedom checker (or the hop cap) must fire.
func TestBrokenLockTableCaughtByLoopFreedom(t *testing.T) {
	built := topo.Ring(topo.DefaultOptions(topo.ARPPath, 1), 4)
	chk := NewChecker(built)

	// Warm up: establish H1↔H3 paths.
	h1, h3 := built.Host("H1"), built.Host("H3")
	warmed := false
	built.Engine.At(built.Now(), func() {
		h1.Ping(h3.IP(), 56, time.Second, func(r host.PingResult) { warmed = r.Err == nil })
	})
	built.RunFor(1500 * time.Millisecond)
	if !warmed {
		t.Fatal("warmup ping failed")
	}
	chk.MarkStable(built.Now())
	if len(chk.Violations()) != 0 {
		t.Fatalf("clean warmup produced violations: %v", chk.Violations())
	}

	corruptRing(t, built)
	// Inject one H1→H3 data frame into the cycle at S1's ring port; the
	// corrupted tables then forward it around the ring forever.
	frame, err := layers.Serialize(
		&layers.Ethernet{Dst: h3.MAC(), Src: h1.MAC(), EtherType: layers.EtherTypeIPv4},
		layers.Payload(make([]byte, 64)),
	)
	if err != nil {
		t.Fatal(err)
	}
	built.Engine.At(built.Now(), func() {
		ringPort(t, built, "S1-S2", "S1").Send(frame)
	})
	built.RunFor(20 * time.Millisecond)

	if !chk.LoopSuspected() {
		t.Fatalf("corrupted ring produced no loop-class violation; got %v", chk.Violations())
	}
	found := false
	for _, v := range chk.Violations() {
		if v.Invariant == InvLoopFreedom || v.Invariant == InvHopCap {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected loop-freedom/hop-cap violation, got %v", chk.Violations())
	}
}

// TestBrokenLockTableCaughtByConsistency corrupts the tables the same way
// but checks the static table walker instead: the cycle must surface as a
// table-consistency violation without any traffic at all.
func TestBrokenLockTableCaughtByConsistency(t *testing.T) {
	built := topo.Ring(topo.DefaultOptions(topo.ARPPath, 1), 4)
	chk := NewChecker(built)
	built.RunFor(100 * time.Millisecond)

	chk.CheckTables()
	if len(chk.Violations()) != 0 {
		t.Fatalf("clean tables flagged: %v", chk.Violations())
	}

	corruptRing(t, built)
	chk.CheckTables()
	found := false
	for _, v := range chk.Violations() {
		if v.Invariant == InvTableConsistency {
			found = true
		}
	}
	if !found {
		t.Fatalf("corrupted tables not flagged, got %v", chk.Violations())
	}
}

// TestPoisonedProxyCaughtByConsistency warms a proxy-enabled ring (the
// caches snoop real bindings), checks the proxy invariant stays quiet,
// then deliberately poisons one bridge's cache with the wrong MAC: the
// proxy-consistency checker must flag it. This is the deliberate-bug
// regression for the proxy verification blind spot.
func TestPoisonedProxyCaughtByConsistency(t *testing.T) {
	opts := topo.DefaultOptions(topo.ARPPath, 1)
	opts.ARPPath().Proxy = true
	built := topo.Ring(opts, 4)
	chk := NewChecker(built)

	// Warm: H1 and H3 exchange traffic so edge bridges snoop both.
	done := false
	built.Engine.At(built.Now(), func() {
		built.Host("H1").Ping(built.Host("H3").IP(), 56, time.Second, func(r host.PingResult) { done = r.Err == nil })
	})
	built.RunFor(2 * time.Second)
	if !done {
		t.Fatal("warmup ping failed")
	}
	chk.CheckProxyCaches()
	if len(chk.Violations()) != 0 {
		t.Fatalf("clean proxy caches flagged: %v", chk.Violations())
	}

	// Poison: S1 now believes H3's IP belongs to H2's MAC.
	built.ARPPathBridge("S1").PoisonProxy(built.Host("H3").IP(), built.Host("H2").MAC())
	chk.CheckProxyCaches()
	found := false
	for _, v := range chk.Violations() {
		if v.Invariant == InvProxyConsistency {
			found = true
		}
	}
	if !found {
		t.Fatalf("poisoned proxy cache not flagged, got %v", chk.Violations())
	}
}

// TestCheckerFrameDrain verifies the drain check is quiet on a drained
// network and loud when a frame reference is deliberately leaked.
func TestCheckerFrameDrain(t *testing.T) {
	built := topo.Line(topo.DefaultOptions(topo.ARPPath, 1), 2)
	chk := NewChecker(built)
	done := false
	built.Engine.At(built.Now(), func() {
		built.Host("H1").Ping(built.Host("H2").IP(), 56, time.Second, func(r host.PingResult) { done = r.Err == nil })
	})
	built.Run()
	if !done {
		t.Fatal("warmup ping never resolved")
	}
	chk.CheckFrameDrain()
	if len(chk.Violations()) != 0 {
		t.Fatalf("drained network flagged: %v", chk.Violations())
	}

	// The balance is per-network now (cmd/scenario -j runs scenarios
	// concurrently), so the leak must be charged to this network.
	leak := built.Network.NewFrame(make([]byte, 64)) // deliberately never released
	chk.CheckFrameDrain()
	found := false
	for _, v := range chk.Violations() {
		if v.Invariant == InvFrameDrain {
			found = true
		}
	}
	if !found {
		t.Fatal("leaked frame not flagged")
	}
	leak.Release() // restore the baseline for later tests
}
