package scenario

// ShrinkOps minimizes a failing fault schedule with ddmin-style delta
// debugging: it tries dropping progressively finer-grained chunks of ops,
// keeping any subset for which fails still reports a failure, until no
// single-chunk removal at the finest granularity reproduces it. fails must
// be deterministic (replaying a scenario is — that is the point of the
// seeded engine). The input is returned unchanged when it does not fail.
func ShrinkOps(ops []FaultOp, fails func([]FaultOp) bool) []FaultOp {
	if len(ops) == 0 || !fails(ops) {
		return ops
	}
	cur := append([]FaultOp(nil), ops...)
	n := 2
	for len(cur) >= 2 {
		chunk := (len(cur) + n - 1) / n
		reduced := false
		for lo := 0; lo < len(cur); lo += chunk {
			hi := lo + chunk
			if hi > len(cur) {
				hi = len(cur)
			}
			cand := append(append([]FaultOp(nil), cur[:lo]...), cur[hi:]...)
			if len(cand) > 0 && fails(cand) {
				cur = cand
				if n > 2 {
					n--
				}
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(cur) {
				break
			}
			n *= 2
			if n > len(cur) {
				n = len(cur)
			}
		}
	}
	return cur
}

// Shrink minimizes the fault schedule of a failing scenario by replaying
// it with subsets of its ops. It returns the minimal failing schedule and
// its replay result; ok is false when the failure did not reproduce on
// replay of the full schedule (a non-fault-induced failure cannot be
// shrunk this way). No schedule is replayed twice: the last failing
// replay ShrinkOps accepts is, by construction, the minimal one.
func Shrink(cfg Config, ops []FaultOp) (minimal []FaultOp, res *Result, ok bool) {
	var lastFail *Result
	minimal = ShrinkOps(ops, func(sub []FaultOp) bool {
		r := Replay(cfg, sub)
		if r.Failed() {
			lastFail = r
		}
		return r.Failed()
	})
	if lastFail == nil {
		return ops, nil, false
	}
	return minimal, lastFail, true
}
