package scenario

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/flowpath"
	"repro/internal/layers"
	"repro/internal/netsim"
	"repro/internal/topo"
)

// coreTabler is the checker's view of any bridge that forwards on an
// ARP-Path locking table — core.Bridge itself and variants that embed it
// (flowpath.TCPPath). Walks never assert the concrete type, so a
// registered variant gets the table checks for free.
type coreTabler interface {
	Table() *core.LockTable
	EntryFor(layers.MAC) (core.Entry, bool)
}

// proxySnapshotter is the checker's view of a bridge with the in-switch
// ARP proxy.
type proxySnapshotter interface {
	ProxySnapshot(now time.Duration) map[layers.Addr4]layers.MAC
}

// Invariant names a protocol property the checker enforces. Each encodes
// a claim of the paper (DESIGN.md §7 maps them to sections).
type Invariant string

// Checked invariants.
const (
	// InvLoopFreedom: a unicast frame never traverses the same bridge more
	// than the reroute allowance (§2.1.3: no blocked ports, yet loop-free).
	InvLoopFreedom Invariant = "loop-freedom"
	// InvFloodBound: a broadcast frame leaves each bridge port at most
	// once (§2.1.1's first-copy rule bounds flood fan-out to one copy per
	// directed link).
	InvFloodBound Invariant = "flood-bound"
	// InvHopCap: no frame's total delivery count exceeds the network-wide
	// cap (a runaway forwarding loop, however it arose).
	InvHopCap Invariant = "hop-cap"
	// InvTableConsistency: following any destination's entries bridge to
	// bridge never cycles and never terminates at the wrong host (the
	// locked/learned chains of §2.1 form forests rooted at hosts).
	InvTableConsistency Invariant = "table-consistency"
	// InvPathSymmetry: the bridge chain toward B from A's edge is the
	// reverse of the chain toward A from B's edge (§2.1.2: the reply
	// confirms the same path the request locked).
	InvPathSymmetry Invariant = "path-symmetry"
	// InvDelivery: after faults heal and the network quiesces, every
	// offered unicast probe is answered (§2.1.4: repair restores service).
	InvDelivery Invariant = "eventual-delivery"
	// InvFrameDrain: when the simulation drains, every pooled frame has
	// been released (the netsim ownership contract holds under faults).
	InvFrameDrain Invariant = "frame-drain"
	// InvProxyConsistency: every live proxy-cache binding on every bridge
	// maps an IP to the MAC of the host that really owns it (§2.2 — a
	// stale or poisoned binding would convert discovery floods into
	// unicasts toward the wrong station, a silent blackhole no flood-bound
	// or table walk would ever see).
	InvProxyConsistency Invariant = "proxy-consistency"
)

// Violation is one observed invariant breach.
type Violation struct {
	Invariant Invariant
	At        time.Duration // virtual time of the observation (0 for post-run checks)
	Detail    string
}

func (v Violation) String() string {
	if v.At > 0 {
		return fmt.Sprintf("[%s] t=%v %s", v.Invariant, v.At, v.Detail)
	}
	return fmt.Sprintf("[%s] %s", v.Invariant, v.Detail)
}

// Per-frame traversal allowances. Frames originated after the network is
// marked stable get the strict protocol bounds; frames originated during
// the fault phase get looser ones, because a mid-flood table flush
// legitimately re-floods a frame and a repair legitimately reroutes one
// back through an earlier hop — transients, not loops.
const (
	maxUnicastVisitsStable = 2 // the one legitimate repair reroute
	maxUnicastVisitsFaulty = 4
	maxFloodSendsStable    = 1
	maxFloodSendsFaulty    = 3
	maxViolationDetails    = 24
)

// Checker watches a built network through the netsim tap and verifies the
// protocol invariants, online (hop traces, flood bounds) and post-run
// (table shape, delivery, frame drain). It also folds every tap event
// into a fingerprint: two runs of the same scenario must produce equal
// fingerprints, which is the engine's determinism check.
type Checker struct {
	built    *topo.Built
	bridges  map[string]bool
	hopCap   int
	stableAt time.Duration // math.MaxInt64 until MarkStable
	baseLive int64

	tfp       *netsim.TapFingerprint // shared trace digest + frame-id normalization
	firstSeen map[uint64]time.Duration
	uvisits   map[uint64]map[string]int // unicast frame -> bridge -> deliveries
	bsends    map[uint64]map[string]int // broadcast frame -> "bridge[port]" -> sends
	delivered map[uint64]int            // frame -> total deliveries

	// synFloods is armed for tcppath fabrics: a unicast TCP SYN is a
	// legitimate network-wide flood there (the connection's discovery
	// race), so it is held to the per-port flood bound instead of the
	// per-bridge unicast visit limit. fv is the scratch view the
	// classifier decodes into.
	synFloods bool
	fv        layers.FrameView

	violations []Violation
	dropped    int // violations beyond maxViolationDetails
	loops      bool
}

// NewChecker attaches a checker to built. It must be installed before any
// traffic the invariants should cover; the frame-drain baseline is
// snapshotted here.
func NewChecker(built *topo.Built) *Checker {
	c := &Checker{
		built:     built,
		bridges:   make(map[string]bool, len(built.Bridges)),
		hopCap:    8*len(built.Links) + 64,
		stableAt:  math.MaxInt64,
		baseLive:  built.Network.LiveFrames(),
		tfp:       netsim.NewTapFingerprint(),
		firstSeen: make(map[uint64]time.Duration),
		uvisits:   make(map[uint64]map[string]int),
		bsends:    make(map[uint64]map[string]int),
		delivered: make(map[uint64]int),
	}
	for _, b := range built.Bridges {
		c.bridges[b.Name()] = true
	}
	c.synFloods = built.Opts.Protocol == flowpath.ProtoTCPPath
	built.Tap(c.tap)
	return c
}

// synFlood reports whether a frame is a flooded TCP connection opener on
// a tcppath fabric.
func (c *Checker) synFlood(frame []byte) bool {
	if !c.synFloods {
		return false
	}
	c.fv.Decode(frame)
	return c.fv.IsTCPSYN()
}

// MarkStable tells the checker all faults have healed and the network has
// quiesced: frames originated from now on are held to the strict bounds.
func (c *Checker) MarkStable(now time.Duration) { c.stableAt = now }

// Violations returns everything observed so far (post-run checks append).
func (c *Checker) Violations() []Violation { return c.violations }

// Dropped returns how many violations were counted but not recorded in
// detail (a loop produces one per extra traversal).
func (c *Checker) Dropped() int { return c.dropped }

// LoopSuspected reports whether a loop-class violation fired. A live
// forwarding loop regenerates events forever, so a caller must not drain
// the engine to quiescence once this is set.
func (c *Checker) LoopSuspected() bool { return c.loops }

// Fingerprint returns the digest of every tap event seen
// (netsim.TapFingerprint: frame identities normalized to first-seen
// order). Equal scenarios give equal fingerprints regardless of what ran
// earlier in the process, or at how many shards either run executed.
func (c *Checker) Fingerprint() uint64 { return c.tfp.Sum() }

// Events returns the number of tap events folded into the fingerprint.
func (c *Checker) Events() uint64 { return c.tfp.Events() }

func (c *Checker) violate(inv Invariant, at time.Duration, format string, args ...any) {
	if inv == InvLoopFreedom || inv == InvHopCap || inv == InvFloodBound {
		c.loops = true
	}
	if len(c.violations) >= maxViolationDetails {
		c.dropped++
		return
	}
	c.violations = append(c.violations, Violation{Invariant: inv, At: at, Detail: fmt.Sprintf(format, args...)})
}

// tap is the hop-trace hook: every link event flows through here.
func (c *Checker) tap(ev netsim.TapEvent) {
	c.tfp.Observe(ev)
	nid := c.tfp.NormID(ev.FrameID)

	if ev.FrameID == 0 {
		return // origination-side drop, no pooled frame to trace
	}
	if _, ok := c.firstSeen[ev.FrameID]; !ok {
		c.firstSeen[ev.FrameID] = ev.At
	}
	strict := c.firstSeen[ev.FrameID] >= c.stableAt

	switch ev.Kind {
	case netsim.TapDeliver:
		c.delivered[ev.FrameID]++
		if c.delivered[ev.FrameID] == c.hopCap {
			c.violate(InvHopCap, ev.At, "frame %d exceeded %d deliveries (last hop %v->%v)", nid, c.hopCap, ev.From, ev.To)
		}
		to := ev.To.Node().Name()
		if !c.bridges[to] || layers.FrameDst(ev.Frame).IsMulticast() || c.synFlood(ev.Frame) {
			// SYN floods are counted per port on the send side, like any
			// other flood: deliveries to a bridge legitimately repeat
			// (one slower copy per incident link, race-dropped inside).
			return
		}
		m := c.uvisits[ev.FrameID]
		if m == nil {
			m = make(map[string]int)
			c.uvisits[ev.FrameID] = m
		}
		m[to]++
		limit := maxUnicastVisitsFaulty
		if strict {
			limit = maxUnicastVisitsStable
		}
		if m[to] == limit+1 {
			c.violate(InvLoopFreedom, ev.At, "unicast frame %d traversed bridge %s %d times (limit %d, via %v)", nid, to, m[to], limit, ev.From)
		}
	case netsim.TapSend:
		from := ev.From.Node().Name()
		if !c.bridges[from] || (!layers.FrameDst(ev.Frame).IsMulticast() && !c.synFlood(ev.Frame)) {
			return
		}
		m := c.bsends[ev.FrameID]
		if m == nil {
			m = make(map[string]int)
			c.bsends[ev.FrameID] = m
		}
		key := ev.From.String()
		m[key]++
		limit := maxFloodSendsFaulty
		if strict {
			limit = maxFloodSendsStable
		}
		if m[key] == limit+1 {
			c.violate(InvFloodBound, ev.At, "broadcast frame %d flooded %d times out %s (limit %d)", nid, m[key], key, limit)
		}
	}
}

// CheckFrameDrain asserts the pooled-frame population is back at the
// pre-scenario baseline. Only meaningful after the engine has fully
// drained (no event in flight may hold a reference). The balance is
// per-network (Network.LiveFrames), so concurrently running scenarios in
// one process (cmd/scenario -j) cannot pollute each other's verdicts.
func (c *Checker) CheckFrameDrain() {
	if live := c.built.Network.LiveFrames(); live != c.baseLive {
		c.violate(InvFrameDrain, 0, "%d pooled frame(s) still referenced after drain (baseline %d, now %d)", live-c.baseLive, c.baseLive, live)
	}
}

// hostByMAC maps every host's packed MAC to its name.
func (c *Checker) hostByMAC() map[uint64]string {
	owners := make(map[uint64]string, len(c.built.Hosts))
	for name, h := range c.built.Hosts {
		owners[h.MAC().Uint64()] = name
	}
	return owners
}

// CheckProxyCaches verifies the proxy-consistency invariant on a quiesced
// fabric: for every bridge with the in-switch ARP proxy enabled, every
// unexpired cached binding must map an IP to the MAC its true owner
// announces. IPs no host owns (there are none in these topologies, but a
// variant protocol could mint them) are also violations — the cache can
// only ever have learned from a real station's ARP traffic.
func (c *Checker) CheckProxyCaches() {
	now := c.built.Now()
	ownerMAC := make(map[layers.Addr4]layers.MAC, len(c.built.Hosts))
	hostName := make(map[layers.Addr4]string, len(c.built.Hosts))
	for name, h := range c.built.Hosts {
		ownerMAC[h.IP()] = h.MAC()
		hostName[h.IP()] = name
	}
	for _, br := range c.built.Bridges {
		cb, ok := br.(proxySnapshotter)
		if !ok {
			continue
		}
		snap := cb.ProxySnapshot(now)
		ips := make([]layers.Addr4, 0, len(snap))
		for ip := range snap {
			ips = append(ips, ip)
		}
		sort.Slice(ips, func(i, j int) bool { return ips[i].String() < ips[j].String() })
		for _, ip := range ips {
			mac := snap[ip]
			want, owned := ownerMAC[ip]
			if !owned {
				c.violate(InvProxyConsistency, 0, "bridge %s caches %v -> %v but no host owns that IP", br.Name(), ip, mac)
				continue
			}
			if mac != want {
				c.violate(InvProxyConsistency, 0, "bridge %s caches %v -> %v, owner %s has %v", br.Name(), ip, mac, hostName[ip], want)
			}
		}
	}
}

// CheckTables verifies the forwarding tables form per-destination
// forests: following entries bridge to bridge must never revisit a
// bridge, and a walk that reaches a host must have reached the owner.
// Dead ends at entry-less bridges are legal (expiry is lazy and repair
// rebuilds on demand); cycles never are — a cycle is the loop the
// protocol claims cannot form without blocked ports. The walk follows
// whichever tables the protocol keeps: the per-MAC locking table
// (arppath, tcppath's fallback plane) and/or the per-pair table
// (flowpath); tcppath fabrics additionally walk the per-connection
// entries under the same rule.
func (c *Checker) CheckTables() {
	now := c.built.Now()
	owners := c.hostByMAC()
	c.checkMACTables(now, owners)
	c.checkPairTables(now, owners)
	c.checkConnTables(now)
}

// checkChains verifies one keyed family of next-hop maps: no walk may
// revisit a bridge, and walks reaching a host must reach wantHost (when
// non-empty).
func (c *Checker) checkChains(what string, hops map[string]string, wantHost string) {
	starts := make([]string, 0, len(hops))
	for b := range hops {
		starts = append(starts, b)
	}
	sort.Strings(starts)
	for _, start := range starts {
		seen := map[string]bool{start: true}
		cur := start
		for {
			next, ok := hops[cur]
			if !ok {
				break // dead end: legal
			}
			if !c.bridges[next] {
				if wantHost != "" && next != wantHost {
					c.violate(InvTableConsistency, 0, "entries for %s walk from %s to host %s (owner is %s)", what, start, next, wantHost)
				}
				break
			}
			if seen[next] {
				c.violate(InvTableConsistency, 0, "entries for %s cycle: walk from %s revisits %s", what, start, next)
				break
			}
			seen[next] = true
			cur = next
		}
	}
}

// checkMACTables walks the per-destination MAC entries of every bridge
// exposing an ARP-Path locking table.
func (c *Checker) checkMACTables(now time.Duration, owners map[uint64]string) {
	nextHop := make(map[layers.MAC]map[string]string)
	macs := make([]layers.MAC, 0)
	for _, br := range c.built.Bridges {
		cb, ok := br.(coreTabler)
		if !ok {
			continue
		}
		for mac, e := range cb.Table().Snapshot(now) {
			m := nextHop[mac]
			if m == nil {
				m = make(map[string]string)
				nextHop[mac] = m
				macs = append(macs, mac)
			}
			m[br.Name()] = e.Port.Peer().Node().Name()
		}
	}
	sort.Slice(macs, func(i, j int) bool { return macs[i].Uint64() < macs[j].Uint64() })
	for _, mac := range macs {
		c.checkChains(mac.String(), nextHop[mac], owners[mac.Uint64()])
	}
}

// checkKeyedTables gathers one keyed snapshot family across all bridges
// (nil where a bridge keeps no such table) and walks every key's chains:
// acyclic always, ending at the key's owner where one exists.
func (c *Checker) checkKeyedTables(
	snapshot func(topo.Bridge) map[flowpath.PairKey]flowpath.Entry,
	what func(flowpath.PairKey) string,
	owner func(flowpath.PairKey) string,
) {
	nextHop := make(map[flowpath.PairKey]map[string]string)
	keys := make([]flowpath.PairKey, 0)
	for _, br := range c.built.Bridges {
		for k, e := range snapshot(br) {
			m := nextHop[k]
			if m == nil {
				m = make(map[string]string)
				nextHop[k] = m
				keys = append(keys, k)
			}
			m[br.Name()] = e.Port.Peer().Node().Name()
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Hi != keys[j].Hi {
			return keys[i].Hi < keys[j].Hi
		}
		return keys[i].Lo < keys[j].Lo
	})
	for _, k := range keys {
		c.checkChains(what(k), nextHop[k], owner(k))
	}
}

// checkPairTables walks the directed pair entries of flowpath bridges:
// every (src, dst) pair's chain must be acyclic and, when it reaches a
// host, reach dst's owner.
func (c *Checker) checkPairTables(now time.Duration, owners map[uint64]string) {
	c.checkKeyedTables(
		func(br topo.Bridge) map[flowpath.PairKey]flowpath.Entry {
			if fb, ok := br.(*flowpath.Bridge); ok {
				return fb.Pairs().Snapshot(now)
			}
			return nil
		},
		func(k flowpath.PairKey) string {
			return fmt.Sprintf("pair %v->%v", layers.MACFromUint64(k.Hi), layers.MACFromUint64(k.Lo))
		},
		func(k flowpath.PairKey) string { return owners[k.Lo] },
	)
}

// checkConnTables walks tcppath per-connection entries; connections have
// no single host owner to assert, so only the no-cycle half applies.
func (c *Checker) checkConnTables(now time.Duration) {
	c.checkKeyedTables(
		func(br topo.Bridge) map[flowpath.PairKey]flowpath.Entry {
			if tb, ok := br.(*flowpath.TCPPath); ok {
				return tb.Conns().Snapshot(now)
			}
			return nil
		},
		func(k flowpath.PairKey) string { return fmt.Sprintf("conn %x/%x", k.Hi, k.Lo) },
		func(flowpath.PairKey) string { return "" },
	)
}

// walkTo follows dst-MAC entries from a bridge and returns the bridge
// chain, ending when a host is reached (ok true if it is the owner). On
// flowpath fabrics the walk follows the directed (src, dst) pair entries
// instead — the protocol's forwarding state for exactly this
// conversation.
func (c *Checker) walkTo(start string, src, dst layers.MAC, owner string) (chain []string, ok bool) {
	now := c.built.Now()
	cur := start
	for steps := 0; steps <= len(c.built.Bridges); steps++ {
		chain = append(chain, cur)
		br, isBridge := c.bridgeByName(cur)
		if !isBridge {
			return chain, false
		}
		var port *netsim.Port
		switch b := br.(type) {
		case *flowpath.Bridge:
			p, found := b.FlowNextHop(src, dst, now)
			if !found {
				return chain, false
			}
			port = p
		case coreTabler:
			e, found := b.EntryFor(dst)
			if !found {
				return chain, false
			}
			port = e.Port
		default:
			return chain, false
		}
		next := port.Peer().Node().Name()
		if !c.bridges[next] {
			return chain, next == owner
		}
		cur = next
	}
	return chain, false
}

func (c *Checker) bridgeByName(name string) (topo.Bridge, bool) {
	for _, br := range c.built.Bridges {
		if br.Name() == name {
			return br, true
		}
	}
	return nil, false
}

// CheckPathSymmetry verifies §2.1.2's symmetric-path claim for a host
// pair that has just exchanged traffic on a quiesced network: the bridge
// chain toward b starting at a's edge bridge must be the exact reverse of
// the chain toward a starting at b's edge bridge.
func (c *Checker) CheckPathSymmetry(a, b string) {
	ha, hb := c.built.Hosts[a], c.built.Hosts[b]
	edgeA := ha.Port().Peer().Node().Name()
	edgeB := hb.Port().Peer().Node().Name()
	toB, okAB := c.walkTo(edgeA, ha.MAC(), hb.MAC(), b)
	toA, okBA := c.walkTo(edgeB, hb.MAC(), ha.MAC(), a)
	if !okAB || !okBA {
		c.violate(InvPathSymmetry, 0, "path %s<->%s incomplete after quiescence (%s->%s reached=%v, %s->%s reached=%v)",
			a, b, a, b, okAB, b, a, okBA)
		return
	}
	if len(toB) != len(toA) {
		c.violate(InvPathSymmetry, 0, "path %s->%s (%v) and %s->%s (%v) differ in length", a, b, toB, b, a, toA)
		return
	}
	for i := range toB {
		if toB[i] != toA[len(toA)-1-i] {
			c.violate(InvPathSymmetry, 0, "path %s->%s (%v) is not the reverse of %s->%s (%v)", a, b, toB, b, a, toA)
			return
		}
	}
}

// CheckDelivery records the eventual-delivery verdict: every verification
// probe offered after quiescence must have been answered.
func (c *Checker) CheckDelivery(pair string, sent, answered int) {
	if answered != sent {
		c.violate(InvDelivery, 0, "pair %s: %d of %d post-quiescence probes answered", pair, answered, sent)
	}
}

// CheckTCPDelivery records the tcppath post-quiescence transfer verdict:
// on a healed, quiesced fabric a fresh TCP conversation — SYN flood,
// per-connection path, data — must run to completion.
func (c *Checker) CheckTCPDelivery(pair string, completed bool) {
	if !completed {
		c.violate(InvDelivery, 0, "pair %s: post-quiescence TCP transfer did not complete", pair)
	}
}

// CheckWarmDelivery records the warm-cache liveness verdict (the stale-ARP
// blackhole regression, DESIGN.md §7 finding 2). Individual in-flight
// frames may legally die while src-violation repair rebuilds a stale path
// — like every ARP-Path repair, delivery of the frames that *trigger* it
// is best-effort — but the conversation must unblock: the final probe of
// the warm series, sent after the repair machinery had every chance to
// run, must be answered. Before the fix, a blackholed pair failed this
// forever.
func (c *Checker) CheckWarmDelivery(pair string, sent, answered int, lastOK bool) {
	if !lastOK {
		c.violate(InvDelivery, 0, "pair %s: warm-cache conversation stayed blocked (%d of %d probes answered, final probe unanswered)", pair, answered, sent)
	}
}
