package scenario

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// sampleOps covers every kind with representative parameters.
func sampleOps() []FaultOp {
	return []FaultOp{
		{At: 10 * time.Millisecond, Kind: OpLinkDown, Link: 3},
		{At: 60 * time.Millisecond, Kind: OpLinkUp, Link: 3},
		{At: 15 * time.Millisecond, Kind: OpBridgeRestart, Bridge: 1},
		{At: 20 * time.Millisecond, Kind: OpSetLoss, Link: 0, Side: 1, Rate: 0.35},
		{At: 90 * time.Millisecond, Kind: OpClearLoss, Link: 0, Side: 1},
		{At: 5 * time.Millisecond, Kind: OpBurst, Src: 2, Dst: 4, Port: 7001,
			Count: 1200, Interval: 8 * time.Microsecond, Payload: 1100},
		{At: 30 * time.Millisecond, Kind: OpHostMove, Host: 2},
		{At: 120 * time.Millisecond, Kind: OpHostReturn, Host: 2},
	}
}

// TestOpCodecRoundTrip pins that every kind survives encode → decode
// unchanged, and that encoding is canonical (stable bytes).
func TestOpCodecRoundTrip(t *testing.T) {
	ops := sampleOps()
	data, err := EncodeOps(ops)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeOps(data)
	if err != nil {
		t.Fatalf("decode: %v\n%s", err, data)
	}
	if !reflect.DeepEqual(got, ops) {
		t.Fatalf("round trip changed ops:\n got %+v\nwant %+v", got, ops)
	}
	again, err := EncodeOps(got)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if string(again) != string(data) {
		t.Fatalf("encoding not canonical:\n first %s\nsecond %s", data, again)
	}
}

// TestOpCodecGeneratedSchedules round-trips real generated schedules of
// every family on a real instance: whatever the generator can produce, the
// codec must carry.
func TestOpCodecGeneratedSchedules(t *testing.T) {
	for _, fam := range FaultFamilies() {
		cfg := Config{Seed: 5, Topology: TopoErdosRenyi, Faults: fam}.withDefaults()
		plan := rand.New(rand.NewSource(cfg.Seed))
		built := buildTopology(cfg, plan)
		ix := newNetIndex(built)
		burstPort := uint16(7000)
		ops := generateOps(fam, plan, ix, cfg.FaultPhase, &burstPort)
		data, err := EncodeOps(ops)
		if err != nil {
			t.Fatalf("%s: encode: %v", fam, err)
		}
		got, err := DecodeOps(data)
		if err != nil {
			t.Fatalf("%s: decode: %v\n%s", fam, err, data)
		}
		if len(ops) == 0 {
			if len(got) != 0 {
				t.Fatalf("%s: empty schedule decoded to %d ops", fam, len(got))
			}
			continue
		}
		if !reflect.DeepEqual(got, ops) {
			t.Fatalf("%s: round trip changed ops:\n got %+v\nwant %+v", fam, got, ops)
		}
	}
}

// TestOpCodecStrict rejects unknown fields, fields foreign to the kind,
// missing required fields, and unknown kinds.
func TestOpCodecStrict(t *testing.T) {
	cases := []struct{ name, doc string }{
		{"unknown field", `[{"at":"1ms","kind":"link-down","link":0,"bogus":1}]`},
		{"foreign field", `[{"at":"1ms","kind":"link-down","link":0,"rate":0.5}]`},
		{"missing field", `[{"at":"1ms","kind":"set-loss","link":0,"side":1}]`},
		{"unknown kind", `[{"at":"1ms","kind":"melt-down","link":0}]`},
		{"trailing data", `[] []`},
	}
	for _, tc := range cases {
		if _, err := DecodeOps([]byte(tc.doc)); err == nil {
			t.Errorf("%s: decoded without error: %s", tc.name, tc.doc)
		}
	}
}

// TestFaultKindText pins the wire names — they are an op-log compatibility
// surface, not an implementation detail.
func TestFaultKindText(t *testing.T) {
	want := map[FaultKind]string{
		OpLinkDown: "link-down", OpLinkUp: "link-up",
		OpBridgeRestart: "bridge-restart",
		OpSetLoss:       "set-loss", OpClearLoss: "clear-loss",
		OpBurst:    "burst",
		OpHostMove: "host-move", OpHostReturn: "host-return",
	}
	for k, name := range want {
		b, err := k.MarshalText()
		if err != nil || string(b) != name {
			t.Errorf("kind %d marshals to %q, %v; want %q", k, b, err, name)
		}
		var back FaultKind
		if err := back.UnmarshalText([]byte(name)); err != nil || back != k {
			t.Errorf("%q unmarshals to %d, %v; want %d", name, back, err, k)
		}
	}
}

// TestIndexResolvesAndValidates exercises the exported Index against a
// built instance: name lookups invert the name lists, Describe matches the
// internal renderer, and Validate accepts a generated schedule while
// rejecting out-of-range and malformed ops.
func TestIndexResolvesAndValidates(t *testing.T) {
	cfg := Config{Seed: 3, Topology: TopoErdosRenyi, Faults: FaultsMixed}.withDefaults()
	plan := rand.New(rand.NewSource(cfg.Seed))
	built := buildTopology(cfg, plan)
	x := NewIndex(built)

	for i, name := range x.Links() {
		if j, ok := x.LinkIndex(name); !ok || j != i {
			t.Fatalf("LinkIndex(%q) = %d,%v; want %d,true", name, j, ok, i)
		}
	}
	for i, name := range x.Hosts() {
		if j, ok := x.HostIndex(name); !ok || j != i {
			t.Fatalf("HostIndex(%q) = %d,%v; want %d,true", name, j, ok, i)
		}
	}
	for i, name := range x.Bridges() {
		if j, ok := x.BridgeIndex(name); !ok || j != i {
			t.Fatalf("BridgeIndex(%q) = %d,%v; want %d,true", name, j, ok, i)
		}
	}
	if _, ok := x.LinkIndex("no-such-link"); ok {
		t.Fatal("LinkIndex resolved a nonexistent name")
	}

	burstPort := uint16(7000)
	ops := generateOps(FaultsMixed, plan, x.ix, cfg.FaultPhase, &burstPort)
	for _, op := range ops {
		if err := x.Validate(op); err != nil {
			t.Fatalf("generated op %s rejected: %v", x.Describe(op), err)
		}
	}

	bad := []FaultOp{
		{Kind: OpLinkDown, Link: len(x.Links())},
		{Kind: OpBridgeRestart, Bridge: -1},
		{Kind: OpSetLoss, Link: 0, Side: 2, Rate: 0.5},
		{Kind: OpSetLoss, Link: 0, Side: 0, Rate: 1.5},
		{Kind: OpBurst, Src: 0, Dst: 0, Port: 1, Count: 10, Interval: time.Microsecond, Payload: 100},
		{Kind: OpBurst, Src: 0, Dst: 1, Port: 1, Count: 0, Interval: time.Microsecond, Payload: 100},
		{Kind: OpHostMove, Host: 0}, // no spare jacks on this build
		{At: -time.Millisecond, Kind: OpLinkDown, Link: 0},
	}
	for _, op := range bad {
		if err := x.Validate(op); err == nil {
			t.Errorf("invalid op %v validated clean", op)
		}
	}

	// PartitionCut is seeded and must return trunk indices crossing a cut.
	cut := x.PartitionCut(42)
	trunks := map[int]bool{}
	for _, li := range x.Trunks() {
		trunks[li] = true
	}
	for _, li := range cut {
		if !trunks[li] {
			t.Fatalf("partition cut link %d is not a trunk", li)
		}
	}
	if again := x.PartitionCut(42); !reflect.DeepEqual(again, cut) {
		t.Fatalf("PartitionCut not deterministic: %v then %v", cut, again)
	}
}

// TestReplayAcceptsDecodedSchedule pins the codec end to end: a generated
// schedule that took a round trip through JSON replays to the same verdict
// and fingerprint as the original run.
func TestReplayAcceptsDecodedSchedule(t *testing.T) {
	cfg := Config{Seed: 7, Topology: TopoErdosRenyi, Faults: FaultsLinkFlaps}
	orig := Run(cfg)
	data, err := json.Marshal(orig.Ops)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	ops, err := DecodeOps(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	rep := Replay(cfg, ops)
	if rep.Fingerprint != orig.Fingerprint || rep.Events != orig.Events {
		t.Fatalf("replay of decoded schedule diverged: fp %#x/%d events, want %#x/%d",
			rep.Fingerprint, rep.Events, orig.Fingerprint, orig.Events)
	}
	if rep.Failed() != orig.Failed() {
		t.Fatalf("replay verdict changed: %v vs %v", rep.Failed(), orig.Failed())
	}
}
