// Package scenario is the adversarial verification harness of the
// reproduction: it generates seeded random topologies, drives seeded
// fault schedules (link flaps, bridge restarts with table loss,
// unidirectional link degradation, queue-pressure bursts) against the
// running simulation, and checks a library of protocol invariants after
// every run — loop-freedom, flood bounds, lock-table consistency and
// path symmetry, eventual delivery, and pooled-frame refcount balance.
//
// The paper validates ARP-Path on one 4-NetFPGA testbed; its claims are
// really invariants that must hold on any topology under any failure
// schedule. A Scenario is one (topology family, fault family, seed)
// triple; Run executes it deterministically (same seed ⇒ same trace,
// checked by fingerprint), Replay re-executes it with an explicit fault
// schedule, and Shrink minimizes a failing schedule by replaying subsets.
package scenario

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/flowpath"
	"repro/internal/host"
	"repro/internal/host/app"
	"repro/internal/topo"
)

// Config names one scenario. Topology, Faults and Seed fully determine
// the run; the remaining knobs default via withDefaults.
type Config struct {
	Seed     int64
	Topology TopologyFamily
	Faults   FaultFamily

	// Protocol selects the bridging protocol under test by registry name
	// ("" = arppath). The invariant library adapts: the loop/flood/
	// delivery/drain checks are protocol-independent, table walks follow
	// whichever tables the protocol keeps (per-host for arppath and
	// tcppath's fallback plane, per-pair for flowpath), and tcppath runs
	// additionally classify flooded TCP SYNs as floods and must complete
	// a post-quiescence TCP transfer. A variant run of a seed is a
	// different scenario from the arppath run.
	Protocol topo.Protocol

	// Shards runs the simulation on a parallel engine partitioned into
	// that many shards (0/1 = classic single engine). A scenario's trace,
	// fingerprint and verdict are bit-identical at every value — that
	// equivalence is itself a tested invariant of the sharded engine.
	Shards int
	// Big selects the larger topology tier (cmd/scenario -big): the same
	// families, drawn several times bigger now that sweeps run in
	// parallel. Big and non-Big runs of one seed are different scenarios.
	Big bool
	// Proxy builds every bridge with the in-switch ARP proxy (§2.2,
	// EtherProxy) enabled, and arms the proxy-consistency invariant:
	// after quiescence no bridge may cache a binding that contradicts the
	// fabric's true IP→MAC ownership. A proxy run of a seed is a
	// different scenario from the plain run.
	Proxy bool

	// FaultPhase is how long faults and background traffic run.
	FaultPhase time.Duration
	// Quiesce is the settle time between healing and verification; it
	// must exceed the repair timeout so no repair spans the boundary.
	Quiesce time.Duration
	// VerifyPairs is how many host pairs probe after quiescence.
	VerifyPairs int
	// VerifyPings is how many probes each pair sends.
	VerifyPings int
}

func (c Config) withDefaults() Config {
	if c.Protocol == "" {
		c.Protocol = topo.ARPPath
	}
	if c.Topology == "" {
		c.Topology = TopoErdosRenyi
	}
	if c.Faults == "" {
		c.Faults = FaultsLinkFlaps
	}
	if c.FaultPhase == 0 {
		c.FaultPhase = 400 * time.Millisecond
	}
	if c.Quiesce == 0 {
		c.Quiesce = 700 * time.Millisecond
	}
	if c.VerifyPairs == 0 {
		c.VerifyPairs = 4
	}
	if c.VerifyPings == 0 {
		c.VerifyPings = 3
	}
	return c
}

// Name renders the scenario triple for reports.
func (c Config) Name() string {
	name := fmt.Sprintf("%s/%s/seed=%d", c.Topology, c.Faults, c.Seed)
	if c.Protocol != "" && c.Protocol != topo.ARPPath {
		name += "/" + string(c.Protocol)
	}
	if c.Big {
		name += "/big"
	}
	if c.Proxy {
		name += "/proxy"
	}
	return name
}

// Result is one scenario's outcome.
type Result struct {
	Config Config
	// Ops is the fault schedule that ran (generated, or the one given to
	// Replay). Feed it back to Replay to reproduce, or to Shrink.
	Ops []FaultOp
	// OpsApplied describes the schedule against the concrete instance.
	OpsApplied []string
	// Violations is every invariant breach; empty means the scenario
	// passed. ViolationsDropped counts breaches beyond the detail cap.
	Violations        []Violation
	ViolationsDropped int
	// Fingerprint digests the full tap trace; equal configs must yield
	// equal fingerprints. Events is the trace length.
	Fingerprint uint64
	Events      uint64
	// Topology shape.
	Bridges, Hosts, Links int
	// Traffic accounting: background/burst datagrams offered and
	// delivered during the fault phase (losses there are legal), and
	// verification probes offered and answered after quiescence (losses
	// there are an eventual-delivery violation). The warm wave re-probes
	// the same pairs without flushing ARP caches — the stale-ARP blackhole
	// regression (DESIGN.md §7 finding 2): before src-violation repair, a
	// warm-cache sender whose peer's position moved could blackhole here.
	BackgroundOffered, BackgroundDelivered int
	ProbesSent, ProbesAnswered             int
	WarmProbesSent, WarmProbesAnswered     int
	// Drained reports the engine ran to full quiescence (skipped when a
	// loop-class violation fires, since a live loop never drains).
	Drained bool
	// Barriers counts coordinator barriers of a sharded run (0 at shards
	// ≤ 1): the serial section the shard-local fault routing shrinks.
	Barriers uint64
}

// Failed reports whether any invariant was violated.
func (r *Result) Failed() bool { return len(r.Violations) > 0 || r.ViolationsDropped > 0 }

// Run executes the scenario cfg names, generating its fault schedule from
// the seed.
func Run(cfg Config) *Result { return run(cfg, nil) }

// Replay executes cfg with an explicit fault schedule instead of the
// generated one (everything else — topology, traffic, timing — is
// rebuilt identically from the seed). It is the primitive Shrink uses.
func Replay(cfg Config, ops []FaultOp) *Result { return run(cfg, ops) }

func run(cfg Config, replayOps []FaultOp) *Result {
	cfg = cfg.withDefaults()
	plan := rand.New(rand.NewSource(cfg.Seed))
	built := buildTopology(cfg, plan)
	ix := newNetIndex(built)
	chk := NewChecker(built)

	// The plan RNG stream must be identical between Run and Replay so the
	// background traffic and verification pairs stay fixed while the fault
	// schedule varies: always draw the generated schedule, then discard it
	// when an explicit one was provided.
	burstPort := uint16(7000)
	ops := generateOps(cfg.Faults, plan, ix, cfg.FaultPhase, &burstPort)
	if replayOps != nil {
		ops = replayOps
	}

	res := &Result{
		Config:  cfg,
		Ops:     ops,
		Bridges: len(built.Bridges),
		Hosts:   len(built.Hosts),
		Links:   len(built.Links),
	}
	for _, op := range ops {
		res.OpsApplied = append(res.OpsApplied, ix.describe(op))
	}

	base := built.Now()
	burstOffered, burstSinks := applyOps(ix, ops, base)
	bgOffered, bgSinks := startBackground(plan, ix, cfg.FaultPhase)
	pairs := choosePairs(plan, ix, cfg.VerifyPairs)

	// Phase 1: faults + background traffic.
	built.RunFor(cfg.FaultPhase)

	// Phase 2: heal everything, then quiesce. Guard windows close and
	// in-flight repairs resolve before verification starts.
	heal(ix)
	built.RunFor(cfg.Quiesce)
	chk.MarkStable(built.Now())

	// Phase 3: verification probes — fresh unicast exchanges between the
	// chosen pairs, each of which the healed fabric must deliver. The
	// pairs' ARP caches are flushed first so every exchange begins with
	// the discovery flood that establishes its paths: ARP-Path's delivery
	// promise is for ARP-initiated conversations. (Warm-cache delivery is
	// probed separately by the wave below.)
	for _, pr := range pairs {
		ix.host(pr[0]).ARP().Flush()
		ix.host(pr[1]).ARP().Flush()
	}
	answered := make([]int, len(pairs))
	completed := make([]bool, len(pairs))
	for i, pr := range pairs {
		i, pr := i, pr
		a, b := ix.host(pr[0]), ix.host(pr[1])
		built.Engine.At(built.Now()+time.Duration(i)*5*time.Millisecond, func() {
			a.PingSeries(b.IP(), cfg.VerifyPings, 56, 20*time.Millisecond, time.Second, func(rs []host.PingResult) {
				for _, r := range rs {
					if r.Err == nil {
						answered[i]++
					}
				}
				completed[i] = true
			})
		})
	}
	res.ProbesSent = len(pairs) * cfg.VerifyPings
	verifyWindow := time.Duration(len(pairs))*5*time.Millisecond +
		time.Duration(cfg.VerifyPings)*20*time.Millisecond + 2*time.Second
	// Step through the window in slices and walk the tables of freshly
	// completed pairs between slices, while their locked-state entries are
	// still alive (a post-drain walk would see legal dead ends). The walk
	// happens with the fabric paused at a deterministic virtual instant —
	// in a sharded run that means every shard lined up on the slice
	// boundary — so the verdict is identical at any shard count.
	checked := make([]bool, len(pairs))
	walkFresh := func() {
		for i, pr := range pairs {
			if completed[i] && !checked[i] {
				checked[i] = true
				if answered[i] == cfg.VerifyPings {
					chk.CheckPathSymmetry(ix.hostNames[pr[0]], ix.hostNames[pr[1]])
				}
			}
		}
	}
	runSliced(built, verifyWindow, walkFresh)

	// Phase 3b: the warm wave — the same pairs probe again WITHOUT
	// flushing ARP caches, exercising exactly the stale-ARP src-port
	// blackhole: a warm sender whose peer's locked position moved during
	// the preceding floods used to have its unicasts silently discarded
	// forever. With src-violation repair (core), these probes must also
	// deliver. This wave is the scenario-engine regression for that fix.
	// Probes are spaced wider than the lock window: a src-violation repair
	// floods a fresh PathRequest, and until its race guards expire,
	// stale-path frames are still (correctly, §2.1.1) filtered — the
	// conversation can only be observed unblocked once the guards are
	// gone. The pairs are a host-disjoint subset of the verification
	// pairs: two warm conversations sharing an endpoint can re-arm each
	// other's guards indefinitely (each repair flood guards the shared
	// host's position for another lock window), which is legal protocol
	// behavior, not a blackhole — the invariant needs interference-free
	// conversations to be meaningful.
	const warmSpacing = 250 * time.Millisecond
	warmPairs := disjointPairs(pairs)
	warmAnswered := make([]int, len(warmPairs))
	warmLastOK := make([]bool, len(warmPairs))
	for i, pr := range warmPairs {
		i, pr := i, pr
		a, b := ix.host(pr[0]), ix.host(pr[1])
		built.Engine.At(built.Now()+time.Duration(i)*5*time.Millisecond, func() {
			a.PingSeries(b.IP(), cfg.VerifyPings, 56, warmSpacing, time.Second, func(rs []host.PingResult) {
				for _, r := range rs {
					if r.Err == nil {
						warmAnswered[i]++
					}
				}
				warmLastOK[i] = len(rs) > 0 && rs[len(rs)-1].Err == nil
			})
		})
	}
	res.WarmProbesSent = len(warmPairs) * cfg.VerifyPings
	warmWindow := time.Duration(len(pairs))*5*time.Millisecond +
		time.Duration(cfg.VerifyPings)*warmSpacing + 2*time.Second
	built.RunFor(warmWindow)

	// Phase 3c (tcppath only): a post-quiescence TCP transfer must
	// complete — the per-connection machinery's delivery analog, opening
	// with a SYN flood through whatever state the healed fabric kept.
	var tcpRep *app.StreamReport
	tcpProbe := cfg.Protocol == flowpath.ProtoTCPPath && len(pairs) > 0
	if tcpProbe {
		srv, cli := ix.host(pairs[0][0]), ix.host(pairs[0][1])
		scfg := app.DefaultStreamConfig()
		scfg.Size = 64 << 10
		built.Engine.At(built.Now(), func() {
			app.StartStream(srv, cli, scfg, func(r *app.StreamReport) { tcpRep = r })
		})
		built.RunFor(15 * time.Second)
	}

	// Phase 4: drain to full quiescence and run the post-mortem checks.
	// A live forwarding loop regenerates events forever, so when the
	// online checkers already caught one the drain is skipped — the
	// loop-class violation is the verdict.
	if !chk.LoopSuspected() {
		built.Run()
		res.Drained = true
		chk.CheckFrameDrain()
		chk.CheckTables()
		chk.CheckProxyCaches()
		for i, pr := range pairs {
			pairName := ix.hostNames[pr[0]] + "<->" + ix.hostNames[pr[1]]
			chk.CheckDelivery(pairName, cfg.VerifyPings, answered[i])
		}
		for i, pr := range warmPairs {
			pairName := ix.hostNames[pr[0]] + "<->" + ix.hostNames[pr[1]]
			chk.CheckWarmDelivery(pairName, cfg.VerifyPings, warmAnswered[i], warmLastOK[i])
		}
		if tcpProbe {
			pairName := ix.hostNames[pairs[0][0]] + "<->" + ix.hostNames[pairs[0][1]]
			chk.CheckTCPDelivery(pairName, tcpRep != nil && tcpRep.Complete)
		}
	}

	res.BackgroundOffered = burstOffered
	for _, s := range burstSinks {
		res.BackgroundDelivered += s.Count()
	}
	res.BackgroundOffered += bgOffered
	for _, s := range bgSinks {
		res.BackgroundDelivered += s.Count()
	}
	for _, n := range answered {
		res.ProbesAnswered += n
	}
	for _, n := range warmAnswered {
		res.WarmProbesAnswered += n
	}
	res.Violations = chk.Violations()
	res.ViolationsDropped = chk.Dropped()
	res.Fingerprint = chk.Fingerprint()
	res.Events = chk.Events()
	res.Barriers = built.Network.Barriers()
	return res
}

// runSliced advances the simulation by window in fixed slices, invoking
// between (with the fabric paused at a deterministic virtual instant) after
// each slice. Sharded runs pause with every shard lined up on the slice
// boundary, so anything `between` reads — lock tables across shards, probe
// completions — observes the same state at any shard count.
func runSliced(built *topo.Built, window time.Duration, between func()) {
	const slice = 10 * time.Millisecond
	end := built.Now() + window
	for built.Now() < end {
		d := slice
		if rem := end - built.Now(); rem < d {
			d = rem
		}
		built.RunFor(d)
		between()
	}
}

// startBackground launches the steady low-rate UDP flows that run during
// the fault phase, so faults always hit a network carrying traffic.
// Losses here are legal (the network is being actively broken); the
// counts feed the result's traffic accounting only.
func startBackground(plan *rand.Rand, ix *netIndex, phase time.Duration) (offered int, sinks []*app.Sink) {
	flows := 2 + plan.Intn(2)
	const interval = time.Millisecond
	count := int(phase / (2 * interval))
	port := uint16(6000)
	for i := 0; i < flows; i++ {
		src := plan.Intn(len(ix.hostNames))
		dst := plan.Intn(len(ix.hostNames))
		if dst == src {
			dst = (dst + 1) % len(ix.hostNames)
		}
		port++
		sinks = append(sinks, app.NewSink(ix.host(dst), port))
		offered += count
		srcHost, dstIP := ix.host(src), ix.host(dst).IP()
		p := port
		ix.built.Engine.At(ix.built.Now(), func() {
			app.StartFlow(srcHost, app.FlowConfig{
				DstIP: dstIP, DstPort: p, SrcPort: p,
				PayloadSize: 200, Interval: interval, Count: count,
			}, nil)
		})
	}
	return offered, sinks
}

// disjointPairs greedily selects (in order, deterministically) a maximal
// subset of pairs sharing no host.
func disjointPairs(pairs [][2]int) [][2]int {
	used := make(map[int]bool)
	var out [][2]int
	for _, pr := range pairs {
		if used[pr[0]] || used[pr[1]] {
			continue
		}
		used[pr[0]] = true
		used[pr[1]] = true
		out = append(out, pr)
	}
	return out
}

// choosePairs draws n distinct host pairs for verification.
func choosePairs(plan *rand.Rand, ix *netIndex, n int) [][2]int {
	hosts := len(ix.hostNames)
	if n > hosts*(hosts-1)/2 {
		n = hosts * (hosts - 1) / 2
	}
	seen := make(map[[2]int]bool)
	var pairs [][2]int
	for len(pairs) < n {
		a, b := plan.Intn(hosts), plan.Intn(hosts)
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		if seen[[2]int{a, b}] {
			continue
		}
		seen[[2]int{a, b}] = true
		pairs = append(pairs, [2]int{a, b})
	}
	return pairs
}
