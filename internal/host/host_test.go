package host

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/layers"
	"repro/internal/netsim"
)

// pair builds h1 - bridge - h2 over ARP-Path so the full stack (ARP,
// discovery, forwarding) is exercised end to end.
func pair(seed int64) (*netsim.Network, *Host, *Host) {
	net := netsim.NewNetwork(seed)
	h1 := New(net, "h1", 1)
	h2 := New(net, "h2", 2)
	b := core.New(net, "b", 1, core.DefaultConfig())
	cfg := netsim.DefaultLinkConfig()
	net.Connect(h1, b, cfg)
	net.Connect(b, h2, cfg)
	b.Start()
	net.RunFor(time.Millisecond)
	return net, h1, h2
}

func TestHostIdentity(t *testing.T) {
	net := netsim.NewNetwork(1)
	h := New(net, "h", 7)
	if h.MAC() != layers.HostMAC(7) || h.IP() != layers.HostIP(7) || h.Name() != "h" {
		t.Fatal("identity mismatch")
	}
	if h.Net() != net {
		t.Fatal("network accessor")
	}
}

func TestActivePortSelection(t *testing.T) {
	// A mobile station is pre-cabled to two bridges with one link up at a
	// time; Port() always returns the live uplink.
	net := netsim.NewNetwork(1)
	h := New(net, "h", 1)
	g1 := New(net, "g1", 2)
	g2 := New(net, "g2", 3)
	l1 := net.Connect(h, g1, netsim.DefaultLinkConfig())
	l2 := net.Connect(h, g2, netsim.DefaultLinkConfig())
	l2.SetUp(false)
	if h.Port() != l1.A() {
		t.Fatal("active port should be the first up port")
	}
	l1.SetUp(false)
	l2.SetUp(true)
	if h.Port() != l2.A() {
		t.Fatal("active port did not follow the up link")
	}
	l2.SetUp(false)
	if h.Port() != l1.A() {
		t.Fatal("all-down fallback should be the first port")
	}
}

func TestNoNICPanics(t *testing.T) {
	net := netsim.NewNetwork(1)
	h := New(net, "h", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Port() on uncabled host did not panic")
		}
	}()
	h.Port()
}

func TestARPResolution(t *testing.T) {
	net, h1, h2 := pair(1)
	var got layers.MAC
	var gotErr error
	done := false
	net.Engine.At(net.Now(), func() {
		h1.arp.resolve(h2.IP(), func(mac layers.MAC, err error) {
			got, gotErr, done = mac, err, true
		})
	})
	net.RunFor(100 * time.Millisecond)
	if !done || gotErr != nil || got != h2.MAC() {
		t.Fatalf("resolve: done=%v mac=%s err=%v", done, got, gotErr)
	}
	// Cached now: second resolve must not transmit.
	before := h1.Stats().ARPRequestsTx
	net.Engine.At(net.Now(), func() {
		h1.arp.resolve(h2.IP(), func(layers.MAC, error) {})
	})
	net.RunFor(10 * time.Millisecond)
	if h1.Stats().ARPRequestsTx != before {
		t.Fatal("cached resolve retransmitted")
	}
	if mac, ok := h1.ARP().Lookup(h2.IP()); !ok || mac != h2.MAC() {
		t.Fatal("ARPView lookup failed")
	}
}

func TestARPTimeoutAndRetries(t *testing.T) {
	net, h1, _ := pair(1)
	var gotErr error
	net.Engine.At(net.Now(), func() {
		h1.arp.resolve(layers.HostIP(99), func(_ layers.MAC, err error) { gotErr = err })
	})
	net.RunFor(10 * time.Second)
	if gotErr != ErrARPTimeout {
		t.Fatalf("err = %v, want ErrARPTimeout", gotErr)
	}
	if h1.Stats().ARPRequestsTx != 3 {
		t.Fatalf("requests sent = %d, want 3 retries", h1.Stats().ARPRequestsTx)
	}
	if h1.Stats().ARPFailures != 1 {
		t.Fatal("failure not counted")
	}
}

func TestARPCacheExpiry(t *testing.T) {
	net, h1, h2 := pair(1)
	net.Engine.At(net.Now(), func() { h1.arp.resolve(h2.IP(), func(layers.MAC, error) {}) })
	net.RunFor(100 * time.Millisecond)
	if _, ok := h1.ARP().Lookup(h2.IP()); !ok {
		t.Fatal("not cached")
	}
	net.RunFor(61 * time.Second)
	if _, ok := h1.ARP().Lookup(h2.IP()); ok {
		t.Fatal("cache entry survived expiry")
	}
}

func TestPendingCallbacksShareOneExchange(t *testing.T) {
	net, h1, h2 := pair(1)
	resolved := 0
	net.Engine.At(net.Now(), func() {
		for i := 0; i < 5; i++ {
			h1.arp.resolve(h2.IP(), func(_ layers.MAC, err error) {
				if err == nil {
					resolved++
				}
			})
		}
	})
	net.RunFor(100 * time.Millisecond)
	if resolved != 5 {
		t.Fatalf("resolved = %d, want 5", resolved)
	}
	if h1.Stats().ARPRequestsTx != 1 {
		t.Fatalf("requests = %d, want 1 shared exchange", h1.Stats().ARPRequestsTx)
	}
}

func TestPing(t *testing.T) {
	net, h1, h2 := pair(1)
	var res PingResult
	net.Engine.At(net.Now(), func() {
		h1.Ping(h2.IP(), 56, time.Second, func(r PingResult) { res = r })
	})
	net.RunFor(2 * time.Second)
	if res.Err != nil {
		t.Fatalf("ping error: %v", res.Err)
	}
	if res.RTT <= 0 || res.RTT > time.Millisecond {
		t.Fatalf("RTT = %v, implausible for two gigabit hops", res.RTT)
	}
	if h2.Stats().EchoRequestsRx != 1 || h2.Stats().EchoRepliesTx != 1 {
		t.Fatal("echo counters wrong")
	}
}

func TestPingTimeout(t *testing.T) {
	net, h1, h2 := pair(1)
	// Resolve first so the ping itself is what gets lost.
	net.Engine.At(net.Now(), func() { h1.Ping(h2.IP(), 0, time.Second, func(PingResult) {}) })
	net.RunFor(2 * time.Second)
	net.Engine.At(net.Now(), func() { h1.Port().Link().SetUp(false) })
	var res PingResult
	net.Engine.At(net.Now()+time.Millisecond, func() {
		h1.Ping(h2.IP(), 0, 500*time.Millisecond, func(r PingResult) { res = r })
	})
	net.RunFor(2 * time.Second)
	if res.Err != ErrPingTimeout {
		t.Fatalf("err = %v, want timeout", res.Err)
	}
}

func TestPingSeries(t *testing.T) {
	net, h1, h2 := pair(1)
	var got []PingResult
	net.Engine.At(net.Now(), func() {
		h1.PingSeries(h2.IP(), 10, 56, 10*time.Millisecond, time.Second, func(rs []PingResult) { got = rs })
	})
	net.RunFor(5 * time.Second)
	if len(got) != 10 {
		t.Fatalf("results = %d, want 10", len(got))
	}
	for _, r := range got {
		if r.Err != nil {
			t.Fatalf("seq %d failed: %v", r.Seq, r.Err)
		}
	}
	// First ping pays the ARP+discovery cost; later pings ride the
	// established path and must not be slower.
	if got[1].RTT > got[0].RTT+time.Microsecond {
		t.Fatalf("established-path RTT %v exceeds discovery RTT %v", got[1].RTT, got[0].RTT)
	}
}

func TestUDPDelivery(t *testing.T) {
	net, h1, h2 := pair(1)
	var rx []Datagram
	h2.UDP(9000, func(d Datagram) { rx = append(rx, d) })
	s := h1.UDP(9001, nil)
	net.Engine.At(net.Now(), func() { s.SendTo(h2.IP(), 9000, []byte("hello")) })
	net.RunFor(time.Second)
	if len(rx) != 1 || string(rx[0].Data) != "hello" || rx[0].SrcPort != 9001 || rx[0].SrcIP != h1.IP() {
		t.Fatalf("rx = %+v", rx)
	}
	if s.Sent() != 1 {
		t.Fatal("tx counter")
	}
}

func TestUDPUnknownPortDropped(t *testing.T) {
	net, h1, h2 := pair(1)
	s := h1.UDP(9001, nil)
	net.Engine.At(net.Now(), func() { s.SendTo(h2.IP(), 4444, []byte("x")) })
	net.RunFor(time.Second)
	if h2.Stats().DroppedUnknownProto == 0 {
		t.Fatal("datagram to unbound port not counted as dropped")
	}
}

func TestUDPDoubleBindPanics(t *testing.T) {
	net := netsim.NewNetwork(1)
	h := New(net, "h", 1)
	h.UDP(5, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("double bind accepted")
		}
	}()
	h.UDP(5, nil)
}

// transfer pushes size bytes h1→h2 over TCP-lite and returns the received
// bytes once the sender closes.
func transfer(t *testing.T, net *netsim.Network, h1, h2 *Host, size int, budget time.Duration) []byte {
	t.Helper()
	var rx bytes.Buffer
	closed := false
	h2.Listen(80, func(c *Conn) {
		c.OnData = func(p []byte) { rx.Write(p) }
		c.OnClose = func() { closed = true }
	})
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	net.Engine.At(net.Now(), func() {
		h1.Dial(h2.IP(), 80, func(c *Conn) {
			c.Write(payload)
			c.Close()
		})
	})
	net.RunFor(budget)
	if !closed {
		t.Fatalf("transfer incomplete: %d/%d bytes", rx.Len(), size)
	}
	if !bytes.Equal(rx.Bytes(), payload) {
		t.Fatalf("byte stream corrupted: got %d bytes, want %d", rx.Len(), size)
	}
	return rx.Bytes()
}

func TestTCPSmallTransfer(t *testing.T) {
	net, h1, h2 := pair(1)
	transfer(t, net, h1, h2, 10_000, 5*time.Second)
}

func TestTCPLargeTransfer(t *testing.T) {
	net, h1, h2 := pair(2)
	transfer(t, net, h1, h2, 2_000_000, 30*time.Second)
}

func TestTCPEmptyTransfer(t *testing.T) {
	net, h1, h2 := pair(3)
	transfer(t, net, h1, h2, 0, 5*time.Second)
}

func TestTCPThroughputReasonable(t *testing.T) {
	// 2 MB over two gigabit hops should move at hundreds of Mb/s.
	net, h1, h2 := pair(4)
	start := net.Now()
	transfer(t, net, h1, h2, 2_000_000, 30*time.Second)
	// Find when the receiver finished by probing stats (transfer ran to
	// completion within the budget; approximate with elapsed sim time).
	elapsed := net.Now() - start
	_ = elapsed // budget-bound check below is the real assertion
	if elapsed <= 0 {
		t.Fatal("no virtual time elapsed")
	}
}

func TestTCPSurvivesOutage(t *testing.T) {
	// Diamond fabric with redundancy; cut the active branch mid-transfer.
	// ARP-Path repairs the path and TCP-lite retransmission recovers: the
	// byte stream must arrive complete and intact.
	net := netsim.NewNetwork(5)
	h1 := New(net, "h1", 1)
	h2 := New(net, "h2", 2)
	cfgL := netsim.DefaultLinkConfig()
	a := core.New(net, "A", 1, core.DefaultConfig())
	f := core.New(net, "F", 2, core.DefaultConfig())
	w := core.New(net, "W", 3, core.DefaultConfig())
	z := core.New(net, "Z", 4, core.DefaultConfig())
	net.Connect(h1, a, cfgL)
	net.Connect(a, f, cfgL)
	net.Connect(a, w, cfgL.WithDelay(20*time.Microsecond))
	lf := net.Connect(f, z, cfgL)
	net.Connect(w, z, cfgL.WithDelay(20*time.Microsecond))
	net.Connect(z, h2, cfgL)
	for _, b := range []*core.Bridge{a, f, w, z} {
		b.Start()
	}
	net.RunFor(time.Millisecond)

	var rx bytes.Buffer
	closed := false
	h2.Listen(80, func(c *Conn) {
		c.OnData = func(p []byte) { rx.Write(p) }
		c.OnClose = func() { closed = true }
	})
	payload := make([]byte, 4_000_000)
	for i := range payload {
		payload[i] = byte(i >> 8)
	}
	net.Engine.At(net.Now(), func() {
		h1.Dial(h2.IP(), 80, func(c *Conn) {
			c.Write(payload)
			c.Close()
		})
	})
	// Cut the fast branch early in the transfer.
	net.Engine.At(net.Now()+5*time.Millisecond, func() { lf.SetUp(false) })
	net.RunFor(2 * time.Minute)
	if !closed {
		t.Fatalf("transfer died after outage: %d/%d bytes", rx.Len(), len(payload))
	}
	if !bytes.Equal(rx.Bytes(), payload) {
		t.Fatal("stream corrupted across repair")
	}
}

func TestTCPAbortsWhenPartitioned(t *testing.T) {
	net, h1, h2 := pair(6)
	aborted := false
	var conn *Conn
	net.Engine.At(net.Now(), func() {
		conn = h1.Dial(h2.IP(), 80, nil) // nobody listens? connect to listener below
	})
	_ = conn
	h2.Listen(80, func(c *Conn) {})
	net.RunFor(time.Second)
	// Partition permanently mid-connection and keep writing.
	net.Engine.At(net.Now(), func() { h1.Port().Link().SetUp(false) })
	net.Engine.At(net.Now()+time.Millisecond, func() {
		if conn.State() == StateEstablished {
			conn.OnAbort = func() { aborted = true }
			conn.Write([]byte("doomed"))
		}
	})
	net.RunFor(5 * time.Minute)
	if conn.State() == StateEstablished && !aborted {
		t.Fatal("connection survived a permanent partition")
	}
}

func TestTCPConnStateStrings(t *testing.T) {
	for s, want := range map[ConnState]string{
		StateClosed: "closed", StateSynSent: "syn-sent", StateSynReceived: "syn-received",
		StateEstablished: "established", StateFinWait: "fin-wait", StateCloseWait: "close-wait",
	} {
		if s.String() != want {
			t.Fatalf("%d.String() = %q", s, s.String())
		}
	}
}

func TestTCPStatsAccounting(t *testing.T) {
	net, h1, h2 := pair(7)
	var serverConn *Conn
	h2.Listen(80, func(c *Conn) { serverConn = c })
	var clientConn *Conn
	net.Engine.At(net.Now(), func() {
		clientConn = h1.Dial(h2.IP(), 80, func(c *Conn) {
			c.Write(make([]byte, 50_000))
			c.Close()
		})
	})
	net.RunFor(10 * time.Second)
	cs := clientConn.Stats()
	if cs.BytesSent != 50_000 || cs.BytesAcked != 50_000 {
		t.Fatalf("client stats %+v", cs)
	}
	ss := serverConn.Stats()
	if ss.BytesReceived != 50_000 {
		t.Fatalf("server received %d", ss.BytesReceived)
	}
}

// Property: the byte stream survives random loss induced by a tiny
// bottleneck queue (frames are tail-dropped under load).
func TestTCPLossRecoveryUnderTinyQueue(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 3; trial++ {
		net := netsim.NewNetwork(int64(trial))
		h1 := New(net, "h1", 1)
		h2 := New(net, "h2", 2)
		b := core.New(net, "b", 1, core.DefaultConfig())
		tiny := netsim.LinkConfig{
			Rate:  100_000_000, // 100 Mb/s bottleneck
			Delay: time.Duration(5+rng.Intn(100)) * time.Microsecond,
			Queue: 5000, // a handful of frames
		}
		net.Connect(h1, b, netsim.DefaultLinkConfig())
		net.Connect(b, h2, tiny)
		b.Start()
		net.RunFor(time.Millisecond)
		size := 300_000 + rng.Intn(200_000)
		transfer(t, net, h1, h2, size, 5*time.Minute)
	}
}

func BenchmarkTCPTransfer1MB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		net := netsim.NewNetwork(1)
		h1 := New(net, "h1", 1)
		h2 := New(net, "h2", 2)
		br := core.New(net, "b", 1, core.DefaultConfig())
		cfg := netsim.DefaultLinkConfig()
		net.Connect(h1, br, cfg)
		net.Connect(br, h2, cfg)
		br.Start()
		net.RunFor(time.Millisecond)
		done := false
		h2.Listen(80, func(c *Conn) {
			c.OnClose = func() { done = true }
			c.OnData = func([]byte) {}
		})
		net.Engine.At(net.Now(), func() {
			h1.Dial(h2.IP(), 80, func(c *Conn) {
				c.Write(make([]byte, 1<<20))
				c.Close()
			})
		})
		net.RunFor(time.Minute)
		if !done {
			b.Fatal("transfer incomplete")
		}
	}
}
