package host

import (
	"fmt"
	"time"

	"repro/internal/layers"
	"repro/internal/sim"
)

// TCP-lite: the reliable byte-stream transport the Figure 3 demo streams
// "HTTP video" over. It keeps TCP's essential machinery — three-way
// handshake, byte sequence numbers, cumulative ACKs, go-back-N
// retransmission with an adaptive RTO, fast retransmit on triplicate ACKs,
// and Reno-style congestion control — and drops everything the experiment
// does not exercise (SACK, urgent data, window scaling, TIME_WAIT). See
// DESIGN.md's substitution table.

// TCPConfig tunes the transport.
type TCPConfig struct {
	// MSS is the maximum segment payload size.
	MSS int
	// Window is the advertised receive window in bytes (fixed; the
	// receiver consumes immediately so it never shrinks).
	Window int
	// MinRTO and MaxRTO clamp the adaptive retransmission timeout.
	MinRTO, MaxRTO time.Duration
	// InitialRTO is used before any RTT sample exists.
	InitialRTO time.Duration
	// MaxRetries aborts the connection after this many consecutive
	// unanswered retransmissions of the same data.
	MaxRetries int
	// IdleTimeout aborts an established connection that has received no
	// segments at all for this long — the stand-in for TCP keepalive, so
	// a pure receiver notices a dead peer (a partitioned video client,
	// say) instead of waiting forever.
	IdleTimeout time.Duration
}

// DefaultTCPConfig suits the simulated gigabit fabric: RTTs are tens of
// microseconds, but repair outages last milliseconds, so the RTO floor
// stays low enough to probe during recovery without melting the fabric.
func DefaultTCPConfig() TCPConfig {
	return TCPConfig{
		MSS:         1400,
		Window:      256 << 10,
		MinRTO:      10 * time.Millisecond,
		MaxRTO:      2 * time.Second,
		InitialRTO:  50 * time.Millisecond,
		MaxRetries:  30,
		IdleTimeout: 2 * time.Minute,
	}
}

// ConnState is a TCP-lite connection state.
type ConnState uint8

// Connection states.
const (
	StateClosed ConnState = iota
	StateSynSent
	StateSynReceived
	StateEstablished
	StateFinWait   // we sent FIN, awaiting its ACK
	StateCloseWait // peer sent FIN; we may still send
)

// String names the state.
func (s ConnState) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateSynSent:
		return "syn-sent"
	case StateSynReceived:
		return "syn-received"
	case StateEstablished:
		return "established"
	case StateFinWait:
		return "fin-wait"
	case StateCloseWait:
		return "close-wait"
	default:
		return "state(?)"
	}
}

// ConnStats counts per-connection transport events.
type ConnStats struct {
	BytesSent       uint64 // application bytes accepted for sending
	BytesAcked      uint64
	BytesReceived   uint64 // in-order application bytes delivered
	SegmentsSent    uint64
	SegmentsRcvd    uint64
	Retransmissions uint64
	FastRetransmits uint64
	Timeouts        uint64
	OutOfOrderDrops uint64 // go-back-N discards
}

type connKey struct {
	rip   layers.Addr4
	rport uint16
	lport uint16
}

// Conn is one TCP-lite connection endpoint. All callbacks run on the
// simulation goroutine.
type Conn struct {
	h   *Host
	cfg TCPConfig
	key connKey

	state ConnState

	// Send side (byte sequence space).
	sndBuf  []byte // unacked + unsent bytes, sndUna is sndBuf[0]
	sndUna  uint32
	sndNxt  uint32
	sndFin  bool // FIN queued after the buffer drains
	finSeq  uint32
	peerWnd int

	// Receive side.
	rcvNxt  uint32
	peerFin bool

	// Congestion control (Reno, byte-based).
	cwnd     int
	ssthresh int
	dupAcks  int
	// recover is the highest sequence outstanding when loss was last
	// detected; until sndUna passes it, every partial ACK immediately
	// retransmits the segment at the new hole (NewReno §3.2). Without
	// this, a burst loss degenerates to one segment per RTO.
	recover uint32

	// RTO machinery.
	srtt, rttvar time.Duration
	rto          time.Duration
	rtxTimer     *sim.Timer
	idleTimer    *sim.Timer
	retries      int
	// One RTT sample at a time (Karn's algorithm: never sample
	// retransmitted data).
	rttSeq   uint32
	rttStart time.Duration
	rttValid bool

	// Application callbacks.
	OnData    func([]byte) // in-order payload delivery
	OnClose   func()       // peer finished sending (EOF after data)
	OnAbort   func()       // connection reset / gave up
	onConnect func(*Conn)  // dial success

	stats ConnStats
}

// Listener accepts TCP-lite connections on a port.
type Listener struct {
	h      *Host
	port   uint16
	accept func(*Conn)
}

// tcpHost is the per-host transport demultiplexer.
type tcpHost struct {
	h         *Host
	listeners map[uint16]*Listener
	conns     map[connKey]*Conn
	nextPort  uint16
}

func newTCPHost(h *Host) *tcpHost {
	return &tcpHost{
		h:         h,
		listeners: make(map[uint16]*Listener),
		conns:     make(map[connKey]*Conn),
		nextPort:  49152,
	}
}

// Listen registers accept for incoming connections on port.
func (h *Host) Listen(port uint16, accept func(*Conn)) *Listener {
	th := h.tcp
	if _, taken := th.listeners[port]; taken {
		panic(fmt.Sprintf("host %s: TCP port %d already listening", h.name, port))
	}
	l := &Listener{h: h, port: port, accept: accept}
	th.listeners[port] = l
	return l
}

// Close stops accepting new connections.
func (l *Listener) Close() { delete(l.h.tcp.listeners, l.port) }

// Dial opens a connection to dst:port with the default configuration;
// onConnect fires when the handshake completes.
func (h *Host) Dial(dst layers.Addr4, port uint16, onConnect func(*Conn)) *Conn {
	return h.DialConfig(dst, port, DefaultTCPConfig(), onConnect)
}

// DialConfig opens a connection with an explicit configuration.
func (h *Host) DialConfig(dst layers.Addr4, port uint16, cfg TCPConfig, onConnect func(*Conn)) *Conn {
	th := h.tcp
	lport := th.nextPort
	th.nextPort++
	c := newConn(h, cfg, connKey{rip: dst, rport: port, lport: lport})
	c.onConnect = onConnect
	th.conns[c.key] = c
	c.state = StateSynSent
	c.sndNxt = c.sndUna + 1 // SYN consumes one sequence number
	c.sendFlags(layers.TCPFlagSYN, c.sndUna, 0, nil)
	c.armRTX()
	return c
}

func newConn(h *Host, cfg TCPConfig, key connKey) *Conn {
	isn := uint32(h.rng.Int63()) // deterministic per seed
	return &Conn{
		h:        h,
		cfg:      cfg,
		key:      key,
		sndUna:   isn,
		sndNxt:   isn,
		recover:  isn,
		peerWnd:  cfg.Window,
		cwnd:     2 * cfg.MSS,
		ssthresh: cfg.Window,
		rto:      cfg.InitialRTO,
	}
}

// State returns the connection state.
func (c *Conn) State() ConnState { return c.state }

// Stats returns a snapshot of the connection counters.
func (c *Conn) Stats() ConnStats { return c.stats }

// RemoteIP returns the peer address.
func (c *Conn) RemoteIP() layers.Addr4 { return c.key.rip }

// Write queues application bytes for transmission.
func (c *Conn) Write(p []byte) {
	if c.state == StateClosed || c.sndFin {
		panic("host: Write on closed/closing TCP-lite connection")
	}
	c.stats.BytesSent += uint64(len(p))
	c.sndBuf = append(c.sndBuf, p...)
	c.pump()
}

// Close queues a FIN after any buffered data; the peer sees EOF once
// everything is delivered.
func (c *Conn) Close() {
	if c.sndFin || c.state == StateClosed {
		return
	}
	c.sndFin = true
	c.pump()
}

// abort tears the connection down and notifies the application.
func (c *Conn) abort() {
	if c.state == StateClosed {
		return
	}
	c.state = StateClosed
	if c.rtxTimer != nil {
		c.rtxTimer.Stop()
	}
	if c.idleTimer != nil {
		c.idleTimer.Stop()
	}
	delete(c.h.tcp.conns, c.key)
	if c.OnAbort != nil {
		c.OnAbort()
	}
}

// flightSize returns the bytes in flight.
func (c *Conn) flightSize() int { return int(c.sndNxt - c.sndUna) }

// window returns the current usable send window.
func (c *Conn) window() int {
	w := c.cwnd
	if c.peerWnd < w {
		w = c.peerWnd
	}
	return w
}

// pump transmits as much buffered data as the window allows.
func (c *Conn) pump() {
	if c.state != StateEstablished && c.state != StateCloseWait && c.state != StateFinWait {
		return
	}
	for {
		inFlight := c.flightSize()
		// Sequence offset of the next unsent byte within sndBuf.
		unsent := len(c.sndBuf) - inFlightData(inFlight, c)
		if unsent <= 0 {
			break
		}
		avail := c.window() - inFlight
		if avail <= 0 {
			break
		}
		n := unsent
		if n > c.cfg.MSS {
			n = c.cfg.MSS
		}
		if n > avail {
			n = avail
		}
		start := len(c.sndBuf) - unsent
		seg := c.sndBuf[start : start+n]
		c.sendFlags(layers.TCPFlagACK|layers.TCPFlagPSH, c.sndNxt, c.rcvNxt, seg)
		if !c.rttValid {
			c.rttValid = true
			c.rttSeq = c.sndNxt + uint32(n)
			c.rttStart = c.h.now()
		}
		c.sndNxt += uint32(n)
		c.armRTX()
	}
	// Send FIN once the buffer is fully in flight or acked.
	if c.sndFin && c.state != StateFinWait && c.flightSize() == len(c.sndBuf) {
		c.finSeq = c.sndNxt
		c.sndNxt++
		if c.state == StateEstablished || c.state == StateCloseWait {
			c.state = StateFinWait
		}
		c.sendFlags(layers.TCPFlagFIN|layers.TCPFlagACK, c.finSeq, c.rcvNxt, nil)
		c.armRTX()
	}
}

// inFlightData converts the in-flight sequence span to in-flight *data*
// bytes, excluding a FIN that may occupy one sequence number.
func inFlightData(inFlight int, c *Conn) int {
	if c.state == StateFinWait && inFlight > 0 {
		return inFlight - 1
	}
	return inFlight
}

// sendFlags emits one segment.
func (c *Conn) sendFlags(flags uint8, seq, ack uint32, payload []byte) {
	c.stats.SegmentsSent++
	ls := []layers.SerializableLayer{
		&layers.TCPLite{
			SrcPort: c.key.lport, DstPort: c.key.rport,
			Seq: seq, Ack: ack, Flags: flags,
			Window: uint16(min(c.cfg.Window, 0xFFFF)),
			SrcIP:  c.h.ip, DstIP: c.key.rip,
		},
	}
	if len(payload) > 0 {
		ls = append(ls, layers.Payload(payload))
	}
	c.h.sendIP(c.key.rip, layers.IPProtoTCPLite, ls...)
}

// armRTX (re)starts the retransmission timer if data is outstanding.
func (c *Conn) armRTX() {
	if c.rtxTimer != nil {
		c.rtxTimer.Stop()
		c.rtxTimer = nil
	}
	if c.flightSize() == 0 && c.state != StateSynSent && c.state != StateSynReceived {
		return
	}
	c.rtxTimer = c.h.After(c.rto, c.onRTO)
}

// onRTO fires when the oldest outstanding data went unacknowledged.
func (c *Conn) onRTO() {
	c.retries++
	if c.retries > c.cfg.MaxRetries {
		c.abort()
		return
	}
	c.stats.Timeouts++
	// Reno: multiplicative backoff, collapse to one segment.
	c.ssthresh = max(c.flightSize()/2, 2*c.cfg.MSS)
	c.cwnd = c.cfg.MSS
	c.dupAcks = 0
	c.recover = c.sndNxt
	c.rto *= 2
	if c.rto > c.cfg.MaxRTO {
		c.rto = c.cfg.MaxRTO
	}
	c.rttValid = false // Karn: no samples across retransmission
	c.retransmit()
	c.armRTX()
}

// retransmit resends from sndUna (go-back-N restart: one segment; the ACK
// clock recovers the rest).
func (c *Conn) retransmit() {
	switch c.state {
	case StateSynSent:
		c.sendFlags(layers.TCPFlagSYN, c.sndUna, 0, nil)
		return
	case StateSynReceived:
		c.sendFlags(layers.TCPFlagSYN|layers.TCPFlagACK, c.sndUna, c.rcvNxt, nil)
		return
	case StateClosed:
		return
	}
	c.stats.Retransmissions++
	if c.state == StateFinWait && c.sndUna == c.finSeq {
		c.sendFlags(layers.TCPFlagFIN|layers.TCPFlagACK, c.finSeq, c.rcvNxt, nil)
		return
	}
	n := len(c.sndBuf)
	if n > c.cfg.MSS {
		n = c.cfg.MSS
	}
	if n == 0 {
		return
	}
	c.sendFlags(layers.TCPFlagACK|layers.TCPFlagPSH, c.sndUna, c.rcvNxt, c.sndBuf[:n])
}

// handle processes a received TCP-lite packet for this host.
func (t *tcpHost) handle(ip *layers.IPv4) {
	var seg layers.TCPLite
	if seg.DecodeFromBytes(ip.Payload()) != nil {
		return
	}
	if seg.VerifyChecksum(ip.Src, ip.Dst) != nil {
		return
	}
	key := connKey{rip: ip.Src, rport: seg.SrcPort, lport: seg.DstPort}
	if c, ok := t.conns[key]; ok {
		c.handleSegment(&seg)
		return
	}
	// New connection?
	if seg.HasFlag(layers.TCPFlagSYN) && !seg.HasFlag(layers.TCPFlagACK) {
		l, ok := t.listeners[seg.DstPort]
		if !ok {
			return // silently ignore (no RST machinery needed)
		}
		c := newConn(t.h, DefaultTCPConfig(), key)
		t.conns[key] = c
		c.state = StateSynReceived
		c.rcvNxt = seg.Seq + 1
		c.sndNxt = c.sndUna + 1
		c.onConnect = l.accept
		c.sendFlags(layers.TCPFlagSYN|layers.TCPFlagACK, c.sndUna, c.rcvNxt, nil)
		c.armRTX()
	}
}

// armIdle (re)starts the keepalive-substitute idle timer.
func (c *Conn) armIdle() {
	if c.cfg.IdleTimeout <= 0 {
		return
	}
	if c.idleTimer != nil {
		c.idleTimer.Stop()
	}
	c.idleTimer = c.h.After(c.cfg.IdleTimeout, c.abort)
}

// handleSegment is the connection state machine.
func (c *Conn) handleSegment(seg *layers.TCPLite) {
	c.stats.SegmentsRcvd++
	if c.state != StateClosed {
		c.armIdle()
	}
	switch c.state {
	case StateSynSent:
		if seg.HasFlag(layers.TCPFlagSYN|layers.TCPFlagACK) && seg.Ack == c.sndNxt {
			c.rcvNxt = seg.Seq + 1
			c.sndUna = seg.Ack
			c.retries = 0
			c.state = StateEstablished
			c.sendFlags(layers.TCPFlagACK, c.sndNxt, c.rcvNxt, nil)
			c.armRTX()
			if c.onConnect != nil {
				c.onConnect(c)
			}
		}
		return
	case StateSynReceived:
		if seg.HasFlag(layers.TCPFlagACK) && seg.Ack == c.sndNxt {
			c.sndUna = seg.Ack
			c.retries = 0
			c.state = StateEstablished
			c.armRTX()
			if c.onConnect != nil {
				c.onConnect(c)
			}
			// Fall through: the ACK may carry data.
		} else if seg.HasFlag(layers.TCPFlagSYN) && !seg.HasFlag(layers.TCPFlagACK) {
			// Duplicate SYN: re-answer.
			c.sendFlags(layers.TCPFlagSYN|layers.TCPFlagACK, c.sndUna, c.rcvNxt, nil)
			return
		} else {
			return
		}
	case StateClosed:
		return
	}

	if seg.HasFlag(layers.TCPFlagRST) {
		c.abort()
		return
	}

	// ACK processing.
	if seg.HasFlag(layers.TCPFlagACK) {
		c.processAck(seg)
	}

	// In-order payload delivery (go-back-N: anything else is dropped and
	// re-acked so the sender retransmits from the gap).
	payload := seg.Payload()
	advanced := false
	if len(payload) > 0 {
		if seg.Seq == c.rcvNxt {
			c.rcvNxt += uint32(len(payload))
			c.stats.BytesReceived += uint64(len(payload))
			advanced = true
			if c.OnData != nil {
				c.OnData(payload)
			}
		} else {
			c.stats.OutOfOrderDrops++
		}
		// Acknowledge cumulatively either way.
		c.sendFlags(layers.TCPFlagACK, c.sndNxt, c.rcvNxt, nil)
	}

	// Peer FIN, only honoured in order.
	if seg.HasFlag(layers.TCPFlagFIN) && seg.Seq+uint32(len(payload)) == c.rcvNxt && !c.peerFin {
		c.peerFin = true
		c.rcvNxt++
		c.sendFlags(layers.TCPFlagACK, c.sndNxt, c.rcvNxt, nil)
		if c.state == StateEstablished {
			c.state = StateCloseWait
		}
		if c.OnClose != nil {
			c.OnClose()
		}
		c.maybeFinish()
		return
	}
	_ = advanced
	c.maybeFinish()
}

// processAck advances the send window and drives Reno.
func (c *Conn) processAck(seg *layers.TCPLite) {
	ack := seg.Ack
	acked := int32(ack - c.sndUna)
	switch {
	case acked > 0:
		// New data acknowledged.
		dataAcked := acked
		if c.state == StateFinWait && ack == c.sndNxt && c.sndFin {
			dataAcked-- // the FIN's sequence slot
		}
		if int(dataAcked) > len(c.sndBuf) {
			dataAcked = int32(len(c.sndBuf))
		}
		c.sndBuf = c.sndBuf[dataAcked:]
		c.sndUna = ack
		c.stats.BytesAcked += uint64(dataAcked)
		c.retries = 0
		c.dupAcks = 0
		// RTT sample (Karn-safe).
		if c.rttValid && int32(ack-c.rttSeq) >= 0 {
			c.rttValid = false
			c.updateRTT(c.h.now() - c.rttStart)
		}
		// Reno growth.
		if c.cwnd < c.ssthresh {
			c.cwnd += c.cfg.MSS // slow start
		} else {
			c.cwnd += max(c.cfg.MSS*c.cfg.MSS/c.cwnd, 1) // AIMD
		}
		// NewReno partial ACK: while recovering from a burst loss, the
		// cumulative ACK exposes the next hole at sndUna — refill it now
		// rather than waiting out an RTO per segment.
		if int32(c.recover-c.sndUna) > 0 && c.flightSize() > 0 {
			c.retransmit()
		}
		c.armRTX()
		c.pump()
	case acked == 0 && c.flightSize() > 0 && len(seg.Payload()) == 0:
		// Duplicate ACK.
		c.dupAcks++
		if c.dupAcks == 3 {
			c.stats.FastRetransmits++
			c.ssthresh = max(c.flightSize()/2, 2*c.cfg.MSS)
			c.cwnd = c.ssthresh
			c.recover = c.sndNxt
			c.retransmit()
			c.armRTX()
		}
	}
}

// updateRTT runs Jacobson/Karels estimation.
func (c *Conn) updateRTT(sample time.Duration) {
	if c.srtt == 0 {
		c.srtt = sample
		c.rttvar = sample / 2
	} else {
		diff := c.srtt - sample
		if diff < 0 {
			diff = -diff
		}
		c.rttvar = (3*c.rttvar + diff) / 4
		c.srtt = (7*c.srtt + sample) / 8
	}
	c.rto = c.srtt + 4*c.rttvar
	if c.rto < c.cfg.MinRTO {
		c.rto = c.cfg.MinRTO
	}
	if c.rto > c.cfg.MaxRTO {
		c.rto = c.cfg.MaxRTO
	}
}

// maybeFinish closes the connection once both directions are done.
func (c *Conn) maybeFinish() {
	finAcked := !c.sndFin || (c.state == StateFinWait && c.sndUna == c.sndNxt)
	if c.peerFin && c.sndFin && finAcked {
		c.state = StateClosed
		if c.rtxTimer != nil {
			c.rtxTimer.Stop()
		}
		if c.idleTimer != nil {
			c.idleTimer.Stop()
		}
		delete(c.h.tcp.conns, c.key)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
