// Package host implements the simulated end stations of the demo: an
// unmodified Ethernet/ARP/IPv4 stack with ICMP echo, UDP sockets and the
// TCP-lite reliable transport. Hosts are deliberately ordinary — the
// paper's central transparency claim (§2.2) is that ARP-Path needs no host
// changes, so everything here is plain textbook networking with no
// knowledge of the bridging protocol underneath.
package host

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/layers"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// Stats counts host-level traffic.
type Stats struct {
	FramesRx, FramesTx   uint64
	ARPRequestsTx        uint64
	ARPRepliesTx         uint64
	ARPResolves          uint64 // successful resolutions
	ARPFailures          uint64 // resolutions that timed out
	EchoRequestsRx       uint64
	EchoRepliesTx        uint64
	IPRx, IPTx           uint64
	DroppedUnknownProto  uint64
	DroppedPendingARP    uint64 // packets dropped from a full pending queue
	DroppedForeignFrames uint64 // frames not addressed to this host
}

// Host is one simulated end station. It normally has a single NIC; for
// mobility scenarios it may be cabled to several ports with at most one
// link up at a time (a station that re-homes to another edge bridge), and
// it always transmits on its first up port.
type Host struct {
	net   *netsim.Network
	name  string
	mac   layers.MAC
	ip    layers.Addr4
	ports []*netsim.Port

	proc  *sim.Proc
	rng   *rand.Rand
	arp   *arpCache
	icmp  *icmpEndpoint
	udp   map[uint16]*UDPSocket
	tcp   *tcpHost
	stats Stats

	// Reusable transmit scratch for the cached-resolution fast path of
	// sendIP. Safe to share across sends: serialization is synchronous and
	// Port.Send copies the bytes into a pooled frame before returning.
	txBuf *layers.SerializeBuffer
	txEth layers.Ethernet
	txIP  layers.IPv4
	txLs  [6]layers.SerializableLayer
}

// New creates host number n named name: MAC 02:00:00::n, IP 10.0.n.
func New(net *netsim.Network, name string, n int) *Host {
	h := &Host{
		net:   net,
		name:  name,
		mac:   layers.HostMAC(n),
		ip:    layers.HostIP(n),
		udp:   make(map[uint16]*UDPSocket),
		txBuf: layers.NewSerializeBuffer(),
	}
	h.arp = newARPCache(h, DefaultARPConfig())
	h.icmp = newICMPEndpoint(h)
	h.tcp = newTCPHost(h)
	net.AddNode(h)
	h.proc = net.Proc(name)
	// The host's own random stream (TCP ISNs): a function of the network
	// seed and the host number, never of event interleaving, so draws are
	// identical at any shard count.
	h.rng = rand.New(rand.NewSource(net.Seed() ^ (int64(n)+1)*0x2545F4914F6CDD1D))
	return h
}

// Name implements netsim.Node.
func (h *Host) Name() string { return h.name }

// MAC returns the host's hardware address.
func (h *Host) MAC() layers.MAC { return h.mac }

// IP returns the host's IPv4 address.
func (h *Host) IP() layers.Addr4 { return h.ip }

// Net returns the owning network.
func (h *Host) Net() *netsim.Network { return h.net }

// Stats returns a snapshot of the traffic counters.
func (h *Host) Stats() Stats { return h.stats }

// ARP returns the host's ARP resolver (exposed for experiments measuring
// cache behaviour).
func (h *Host) ARP() *ARPView { return &ARPView{h.arp} }

// now returns the current virtual time (the host's shard clock).
func (h *Host) now() time.Duration { return h.proc.Now() }

// Now returns the current virtual time as this host observes it —
// application code (internal/host/app) must use this, not the network's
// control clock, which stands still during parallel windows.
func (h *Host) Now() time.Duration { return h.proc.Now() }

// Sched returns the host's scheduling identity; all host timers go
// through it (sim.Proc), keeping event order shard-independent.
func (h *Host) Sched() *sim.Proc { return h.proc }

// After schedules fn d from now under the host's identity. Application
// code driving a host (internal/host/app) must use this, not the engine.
func (h *Host) After(d time.Duration, fn func()) *sim.Timer {
	return h.proc.After(d, fn)
}

// AttachPort implements netsim.Node.
func (h *Host) AttachPort(p *netsim.Port) { h.ports = append(h.ports, p) }

// Port returns the host's active NIC port: the first attached port whose
// link is up (or the first port if all are down). It panics when the host
// was never cabled.
func (h *Host) Port() *netsim.Port {
	if len(h.ports) == 0 {
		panic(fmt.Sprintf("host %s: no NIC attached", h.name))
	}
	for _, p := range h.ports {
		if p.Up() {
			return p
		}
	}
	return h.ports[0]
}

// PortStatusChanged implements netsim.Node. Hosts keep their state across
// link flaps; TCP retransmission handles the outage.
func (h *Host) PortStatusChanged(_ *netsim.Port, _ bool) {}

// send transmits a fully framed packet on the active port.
func (h *Host) send(frame []byte) {
	h.stats.FramesTx++
	h.Port().Send(frame)
}

// HandleFrame implements netsim.Node: the NIC filter plus protocol
// dispatch. The frame is borrowed (netsim ownership contract); the host
// consumes it synchronously, and any payload that outlives this call —
// UDP datagrams handed to sockets — is copied on the way out.
func (h *Host) HandleFrame(_ *netsim.Port, f *netsim.Frame) {
	v := f.View()
	if v.Dst != h.mac && !v.Dst.IsBroadcast() {
		h.stats.DroppedForeignFrames++
		return
	}
	h.stats.FramesRx++
	var eth layers.Ethernet
	if eth.DecodeFromBytes(f.Bytes()) != nil {
		return
	}
	switch eth.EtherType {
	case layers.EtherTypeARP:
		h.arp.handleFrame(&eth)
	case layers.EtherTypeIPv4:
		h.handleIPv4(&eth)
	default:
		// PathCtl, BPDUs, anything else: hosts ignore bridge traffic.
		h.stats.DroppedUnknownProto++
	}
}

// handleIPv4 dispatches a received IPv4 packet.
func (h *Host) handleIPv4(eth *layers.Ethernet) {
	var ip layers.IPv4
	if ip.DecodeFromBytes(eth.Payload()) != nil {
		return
	}
	if ip.Dst != h.ip && !ip.Dst.IsBroadcast() {
		return
	}
	h.stats.IPRx++
	switch ip.Protocol {
	case layers.IPProtoICMP:
		h.icmp.handle(&ip)
	case layers.IPProtoUDP:
		h.handleUDP(&ip)
	case layers.IPProtoTCPLite:
		h.tcp.handle(&ip)
	default:
		h.stats.DroppedUnknownProto++
	}
}

// sendIP resolves dst's MAC and transmits the transport layers under an
// IPv4 header. Packets are queued while resolution is in flight.
//
// The cached-binding case — every packet of an established conversation —
// serializes into the host's reusable scratch instead of allocating a
// resolution closure, a layer slice and a fresh buffer per packet. The
// miss path keeps the allocating closure: its captures must survive until
// the ARP exchange completes.
func (h *Host) sendIP(dst layers.Addr4, proto uint8, transport ...layers.SerializableLayer) {
	if mac, ok := h.arp.lookup(dst); ok {
		h.txEth = layers.Ethernet{Dst: mac, Src: h.mac, EtherType: layers.EtherTypeIPv4}
		h.txIP = layers.IPv4{TTL: 64, Protocol: proto, Src: h.ip, Dst: dst}
		ls := append(h.txLs[:0], &h.txEth, &h.txIP)
		ls = append(ls, transport...)
		if err := layers.SerializeLayers(h.txBuf, layers.FixAll, ls...); err != nil {
			panic(fmt.Sprintf("host %s: serialize: %v", h.name, err))
		}
		h.stats.IPTx++
		h.send(h.txBuf.Bytes())
		return
	}
	h.arp.resolve(dst, func(mac layers.MAC, err error) {
		if err != nil {
			return // resolution failed; transports retransmit on their own
		}
		ls := make([]layers.SerializableLayer, 0, 2+len(transport))
		ls = append(ls,
			&layers.Ethernet{Dst: mac, Src: h.mac, EtherType: layers.EtherTypeIPv4},
			&layers.IPv4{TTL: 64, Protocol: proto, Src: h.ip, Dst: dst},
		)
		ls = append(ls, transport...)
		frame, err := layers.Serialize(ls...)
		if err != nil {
			panic(fmt.Sprintf("host %s: serialize: %v", h.name, err))
		}
		h.stats.IPTx++
		h.send(frame)
	})
}
