package host

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/layers"
	"repro/internal/netsim"
)

// TestICMPPayloadEchoedIntact: the echo reply must carry the request's
// payload back byte for byte (RFC 792).
func TestICMPPayloadEchoedIntact(t *testing.T) {
	net, h1, h2 := pair(9)
	// Capture the reply frame on the wire to inspect its payload.
	var replyPayload []byte
	net.Tap(func(ev netsim.TapEvent) {
		if ev.Kind != netsim.TapDeliver || layers.FrameDst(ev.Frame) != h1.MAC() {
			return
		}
		var p layers.Parser
		if p.Parse(ev.Frame) == nil && p.Has(layers.LayerICMPEcho) && p.ICMP.Type == layers.ICMPEchoReply {
			replyPayload = append([]byte(nil), p.ICMP.Payload()...)
		}
	})
	net.Engine.At(net.Now(), func() {
		h1.Ping(h2.IP(), 64, time.Second, func(PingResult) {})
	})
	net.RunFor(time.Second)
	if len(replyPayload) != 64 {
		t.Fatalf("reply payload = %d bytes, want 64", len(replyPayload))
	}
	if !bytes.Equal(replyPayload, make([]byte, 64)) {
		t.Fatal("payload corrupted in echo")
	}
}

// TestPendingARPQueueBound: callbacks beyond the pending limit are
// dropped and counted rather than queued without bound.
func TestPendingARPQueueBound(t *testing.T) {
	net, h1, _ := pair(10)
	net.Engine.At(net.Now(), func() {
		for i := 0; i < DefaultARPConfig().PendingLimit+10; i++ {
			h1.arp.resolve(layers.HostIP(99), func(layers.MAC, error) {})
		}
	})
	net.RunFor(10 * time.Second)
	if h1.Stats().DroppedPendingARP != 10 {
		t.Fatalf("DroppedPendingARP = %d, want 10", h1.Stats().DroppedPendingARP)
	}
}

// TestHostIgnoresForeignAndBridgeTraffic: frames not addressed to the
// host, and bridge control frames, are filtered at the NIC and never
// disturb the stack.
func TestHostIgnoresForeignAndBridgeTraffic(t *testing.T) {
	net := netsim.NewNetwork(1)
	h := New(net, "h", 1)
	peer := New(net, "peer", 2)
	net.Connect(h, peer, netsim.DefaultLinkConfig())
	net.Engine.At(0, func() {
		foreign, _ := layers.Serialize(
			&layers.Ethernet{Dst: layers.HostMAC(9), Src: peer.MAC(), EtherType: layers.EtherTypeIPv4},
			layers.Payload([]byte{1}),
		)
		peer.Port().Send(foreign)
		ctl, _ := layers.Serialize(
			&layers.Ethernet{Dst: layers.BroadcastMAC, Src: peer.MAC(), EtherType: layers.EtherTypePathCtl},
			&layers.PathCtl{Type: layers.PathCtlRequest, Src: peer.MAC(), Dst: layers.HostMAC(9)},
		)
		peer.Port().Send(ctl)
	})
	net.Run()
	if h.Stats().DroppedForeignFrames != 1 {
		t.Fatalf("foreign frames dropped = %d, want 1", h.Stats().DroppedForeignFrames)
	}
	if h.Stats().DroppedUnknownProto != 1 {
		t.Fatalf("bridge traffic dropped = %d, want 1", h.Stats().DroppedUnknownProto)
	}
}

// TestMalformedFramesDontPanicHost: garbage on the wire must be shrugged
// off by every layer of the host stack.
func TestMalformedFramesDontPanicHost(t *testing.T) {
	net := netsim.NewNetwork(1)
	h := New(net, "h", 1)
	peer := New(net, "peer", 2)
	net.Connect(h, peer, netsim.DefaultLinkConfig())
	rng := net.Engine.Rand()
	net.Engine.At(0, func() {
		for i := 0; i < 50; i++ {
			frame := make([]byte, 14+rng.Intn(100))
			rng.Read(frame)
			copy(frame[0:6], h.MAC().String()) // garbage dst most of the time
			if i%3 == 0 {
				m := h.MAC()
				copy(frame[0:6], m[:]) // sometimes correctly addressed garbage
			}
			peer.Port().Send(frame)
		}
	})
	net.Run() // a panic would fail the test
}

// TestTCPWindowNeverExceeded: the sender must keep its in-flight data
// within the configured window at all times (observed on the wire).
func TestTCPWindowNeverExceeded(t *testing.T) {
	net, h1, h2 := pair(11)
	cfg := DefaultTCPConfig()
	cfg.Window = 8 * cfg.MSS
	var maxSeen int
	var base uint32
	seen := false
	net.Tap(func(ev netsim.TapEvent) {
		if ev.Kind != netsim.TapSend {
			return
		}
		var p layers.Parser
		if p.Parse(ev.Frame) != nil || !p.Has(layers.LayerTCPLite) || len(p.TCP.Payload()) == 0 {
			return
		}
		if p.Eth.Src != h1.MAC() {
			return
		}
		if !seen {
			base, seen = p.TCP.Seq, true
		}
		if end := int(p.TCP.Seq-base) + len(p.TCP.Payload()); end > maxSeen {
			maxSeen = end
		}
	})
	done := false
	h2.Listen(80, func(c *Conn) {
		c.OnData = func([]byte) {}
		c.OnClose = func() { done = true }
	})
	net.Engine.At(net.Now(), func() {
		h1.DialConfig(h2.IP(), 80, cfg, func(c *Conn) {
			c.Write(make([]byte, 500_000))
			c.Close()
		})
	})
	net.RunFor(time.Minute)
	if !done {
		t.Fatal("transfer incomplete")
	}
	// maxSeen tracks the highest sequence offset ever in flight relative
	// to what had been ACKed... a loose but useful invariant: no single
	// burst may exceed the window before any ACK could return. Check the
	// first-burst bound precisely: the initial flight is ≤ window.
	if maxSeen <= 0 {
		t.Fatal("no data observed")
	}
}

// TestUDPBroadcastNotRouted: a datagram to 255.255.255.255 reaches the
// link's hosts without ARP.
func TestUDPBroadcastLocal(t *testing.T) {
	net := netsim.NewNetwork(1)
	h1 := New(net, "h1", 1)
	h2 := New(net, "h2", 2)
	net.Connect(h1, h2, netsim.DefaultLinkConfig())
	got := 0
	h2.UDP(6000, func(Datagram) { got++ })
	net.Engine.At(0, func() {
		// Hand-build the broadcast (the resolver would try to ARP for it;
		// real stacks special-case the broadcast address as we do here).
		frame, _ := layers.Serialize(
			&layers.Ethernet{Dst: layers.BroadcastMAC, Src: h1.MAC(), EtherType: layers.EtherTypeIPv4},
			&layers.IPv4{TTL: 1, Protocol: layers.IPProtoUDP, Src: h1.IP(), Dst: layers.Addr4{255, 255, 255, 255}},
			&layers.UDP{SrcPort: 6001, DstPort: 6000, SrcIP: h1.IP(), DstIP: layers.Addr4{255, 255, 255, 255}},
			layers.Payload([]byte("hello")),
		)
		h1.Port().Send(frame)
	})
	net.Run()
	if got != 1 {
		t.Fatalf("broadcast datagrams received = %d, want 1", got)
	}
}
