package host

import (
	"fmt"

	"repro/internal/layers"
)

// Datagram is a received UDP payload with its source. Data is a private
// copy the receiver may retain — unless the socket opted into Borrow
// delivery, in which case it aliases the pooled frame and is valid only
// for the duration of the callback.
type Datagram struct {
	SrcIP   layers.Addr4
	SrcPort uint16
	Data    []byte
}

// UDPSocket is a bound UDP port on a host.
type UDPSocket struct {
	h      *Host
	port   uint16
	onRx   func(Datagram)
	borrow bool
	rx     uint64
	tx     uint64
	drops  uint64
}

// UDP binds port on the host. onRx is invoked for each received datagram
// on the simulation goroutine; it may be nil for transmit-only sockets.
func (h *Host) UDP(port uint16, onRx func(Datagram)) *UDPSocket {
	if _, taken := h.udp[port]; taken {
		panic(fmt.Sprintf("host %s: UDP port %d already bound", h.name, port))
	}
	s := &UDPSocket{h: h, port: port, onRx: onRx}
	h.udp[port] = s
	return s
}

// Close releases the port.
func (s *UDPSocket) Close() { delete(s.h.udp, s.port) }

// Borrow switches the socket to zero-copy delivery: Datagram.Data handed
// to onRx aliases the pooled frame buffer and is valid only until the
// callback returns. Receivers that never retain the payload (counters,
// request/response handlers that answer inline) skip a per-datagram copy
// on the hot path. Returns the socket for chaining at bind time.
func (s *UDPSocket) Borrow() *UDPSocket {
	s.borrow = true
	return s
}

// Port returns the bound local port.
func (s *UDPSocket) Port() uint16 { return s.port }

// Received returns the number of datagrams delivered to onRx.
func (s *UDPSocket) Received() uint64 { return s.rx }

// Sent returns the number of datagrams transmitted.
func (s *UDPSocket) Sent() uint64 { return s.tx }

// SendTo transmits payload to dst:dstPort.
func (s *UDPSocket) SendTo(dst layers.Addr4, dstPort uint16, payload []byte) {
	s.tx++
	s.h.sendIP(dst, layers.IPProtoUDP,
		&layers.UDP{SrcPort: s.port, DstPort: dstPort, SrcIP: s.h.ip, DstIP: dst},
		layers.Payload(payload),
	)
}

// handleUDP dispatches a received UDP datagram to its socket.
func (h *Host) handleUDP(ip *layers.IPv4) {
	var u layers.UDP
	if u.DecodeFromBytes(ip.Payload()) != nil {
		return
	}
	if u.VerifyChecksum(ip.Src, ip.Dst) != nil {
		return
	}
	s, ok := h.udp[u.DstPort]
	if !ok {
		h.stats.DroppedUnknownProto++
		return
	}
	s.rx++
	if s.onRx != nil {
		// The frame buffer is pooled and recycled after delivery, but
		// sockets routinely retain datagrams past the callback (tests,
		// request/response apps), so hand them a private copy — unless the
		// socket declared itself borrow-safe.
		data := u.Payload()
		if !s.borrow {
			data = append([]byte(nil), data...)
		}
		s.onRx(Datagram{SrcIP: ip.Src, SrcPort: u.SrcPort, Data: data})
	}
}
