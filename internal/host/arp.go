package host

import (
	"errors"
	"time"

	"repro/internal/layers"
	"repro/internal/sim"
)

// ErrARPTimeout is reported to resolution callbacks when every ARP retry
// went unanswered.
var ErrARPTimeout = errors.New("host: ARP resolution timed out")

// ARPConfig tunes the resolver.
type ARPConfig struct {
	// CacheTimeout is the lifetime of a learned binding.
	CacheTimeout time.Duration
	// RetryInterval separates retransmitted requests.
	RetryInterval time.Duration
	// Retries is the number of requests sent before giving up.
	Retries int
	// PendingLimit bounds callbacks queued per unresolved address.
	PendingLimit int
}

// DefaultARPConfig mirrors a typical OS resolver.
func DefaultARPConfig() ARPConfig {
	return ARPConfig{
		CacheTimeout:  60 * time.Second,
		RetryInterval: time.Second,
		Retries:       3,
		PendingLimit:  128,
	}
}

type arpEntry struct {
	mac     layers.MAC
	expires time.Duration
}

type arpPending struct {
	callbacks []func(layers.MAC, error)
	attempts  int
	timer     *sim.Timer
}

// arpCache is the host's ARP cache and resolution engine.
type arpCache struct {
	h       *Host
	cfg     ARPConfig
	entries map[layers.Addr4]arpEntry
	pending map[layers.Addr4]*arpPending
}

func newARPCache(h *Host, cfg ARPConfig) *arpCache {
	return &arpCache{
		h:       h,
		cfg:     cfg,
		entries: make(map[layers.Addr4]arpEntry),
		pending: make(map[layers.Addr4]*arpPending),
	}
}

// lookup returns a live cached binding.
func (c *arpCache) lookup(ip layers.Addr4) (layers.MAC, bool) {
	e, ok := c.entries[ip]
	if !ok || e.expires <= c.h.now() {
		delete(c.entries, ip)
		return layers.MAC{}, false
	}
	return e.mac, true
}

// learn stores a binding and completes any pending resolutions for it.
func (c *arpCache) learn(ip layers.Addr4, mac layers.MAC) {
	if ip.IsZero() || mac.IsZero() || mac.IsMulticast() {
		return
	}
	c.entries[ip] = arpEntry{mac: mac, expires: c.h.now() + c.cfg.CacheTimeout}
	if p, ok := c.pending[ip]; ok {
		delete(c.pending, ip)
		p.timer.Stop()
		c.h.stats.ARPResolves++
		for _, cb := range p.callbacks {
			cb(mac, nil)
		}
	}
}

// resolve invokes cb with dst's MAC, now if cached, otherwise after an ARP
// exchange. Callbacks run on the simulation goroutine.
func (c *arpCache) resolve(dst layers.Addr4, cb func(layers.MAC, error)) {
	if mac, ok := c.lookup(dst); ok {
		cb(mac, nil)
		return
	}
	if p, ok := c.pending[dst]; ok {
		if len(p.callbacks) >= c.cfg.PendingLimit {
			c.h.stats.DroppedPendingARP++
			return
		}
		p.callbacks = append(p.callbacks, cb)
		return
	}
	p := &arpPending{callbacks: []func(layers.MAC, error){cb}}
	c.pending[dst] = p
	c.transmitRequest(dst, p)
}

// transmitRequest sends one broadcast request and arms the retry timer.
func (c *arpCache) transmitRequest(dst layers.Addr4, p *arpPending) {
	p.attempts++
	frame, err := layers.Serialize(
		&layers.Ethernet{Dst: layers.BroadcastMAC, Src: c.h.mac, EtherType: layers.EtherTypeARP},
		&layers.ARP{
			Operation: layers.ARPRequest,
			SenderHW:  c.h.mac, SenderIP: c.h.ip,
			TargetHW: layers.ZeroMAC, TargetIP: dst,
		},
	)
	if err != nil {
		panic("host: serialize ARP request: " + err.Error())
	}
	c.h.stats.ARPRequestsTx++
	c.h.send(frame)
	p.timer = c.h.After(c.cfg.RetryInterval, func() {
		if p.attempts < c.cfg.Retries {
			c.transmitRequest(dst, p)
			return
		}
		delete(c.pending, dst)
		c.h.stats.ARPFailures++
		for _, cb := range p.callbacks {
			cb(layers.MAC{}, ErrARPTimeout)
		}
	})
}

// handleFrame processes a received ARP packet: learn the sender, answer
// requests for our address.
func (c *arpCache) handleFrame(eth *layers.Ethernet) {
	var arp layers.ARP
	if arp.DecodeFromBytes(eth.Payload()) != nil {
		return
	}
	// Standard opportunistic learning: any ARP naming the sender updates
	// the cache (this is also how the in-switch proxy's replies land).
	c.learn(arp.SenderIP, arp.SenderHW)
	if arp.Operation != layers.ARPRequest || arp.TargetIP != c.h.ip {
		return
	}
	reply, err := layers.Serialize(
		&layers.Ethernet{Dst: arp.SenderHW, Src: c.h.mac, EtherType: layers.EtherTypeARP},
		&layers.ARP{
			Operation: layers.ARPReply,
			SenderHW:  c.h.mac, SenderIP: c.h.ip,
			TargetHW: arp.SenderHW, TargetIP: arp.SenderIP,
		},
	)
	if err != nil {
		panic("host: serialize ARP reply: " + err.Error())
	}
	c.h.stats.ARPRepliesTx++
	c.h.send(reply)
}

// AnnounceLocation broadcasts a gratuitous ARP (sender IP == target IP).
// Real stacks send one when an interface comes up or moves; under
// ARP-Path the flood re-locks the host's position at every bridge, which
// is how a station that moved to another edge port re-establishes its
// paths without any bridge configuration.
func (h *Host) AnnounceLocation() {
	frame, err := layers.Serialize(
		&layers.Ethernet{Dst: layers.BroadcastMAC, Src: h.mac, EtherType: layers.EtherTypeARP},
		&layers.ARP{
			Operation: layers.ARPRequest,
			SenderHW:  h.mac, SenderIP: h.ip,
			TargetHW: layers.ZeroMAC, TargetIP: h.ip,
		},
	)
	if err != nil {
		panic("host: serialize gratuitous ARP: " + err.Error())
	}
	h.stats.ARPRequestsTx++
	h.send(frame)
}

// Resolve invokes cb with dst's MAC address, immediately when cached or
// after an ARP exchange. It is the public entry point experiments use to
// time address resolution (and, under ARP-Path, the path discovery that
// rides on it). The callback runs on the simulation goroutine.
func (h *Host) Resolve(dst layers.Addr4, cb func(layers.MAC, error)) {
	h.arp.resolve(dst, cb)
}

// ARPView is the read-only window experiments get onto a host's resolver.
type ARPView struct{ c *arpCache }

// Lookup reports the live cached binding for ip.
func (v *ARPView) Lookup(ip layers.Addr4) (layers.MAC, bool) { return v.c.lookup(ip) }

// Flush drops the whole cache, forcing re-resolution (used by experiments
// to trigger fresh discovery races).
func (v *ARPView) Flush() { clear(v.c.entries) }

// Len returns the number of cached bindings (including unswept expired
// ones).
func (v *ARPView) Len() int { return len(v.c.entries) }
