package host

import (
	"errors"
	"time"

	"repro/internal/layers"
	"repro/internal/sim"
)

// ErrPingTimeout is reported when an echo reply does not arrive in time.
var ErrPingTimeout = errors.New("host: ping timed out")

// PingResult is the outcome of one echo exchange.
type PingResult struct {
	Seq  uint16
	RTT  time.Duration
	Err  error
	Sent time.Duration // virtual time the request left the host
}

// icmpEndpoint implements echo request/reply for a host.
type icmpEndpoint struct {
	h       *Host
	ident   uint16
	nextSeq uint16
	// outstanding echo requests by sequence number.
	waiting map[uint16]*pingWait
}

type pingWait struct {
	sent  time.Duration
	timer *sim.Timer
	cb    func(PingResult)
}

func newICMPEndpoint(h *Host) *icmpEndpoint {
	return &icmpEndpoint{
		h:       h,
		ident:   uint16(h.mac.Uint64() & 0xFFFF),
		waiting: make(map[uint16]*pingWait),
	}
}

// Ping sends one echo request of the given payload size to dst and calls
// cb with the outcome. The callback runs on the simulation goroutine.
func (h *Host) Ping(dst layers.Addr4, size int, timeout time.Duration, cb func(PingResult)) {
	if size < 0 {
		size = 0
	}
	e := h.icmp
	seq := e.nextSeq
	e.nextSeq++
	w := &pingWait{sent: h.now(), cb: cb}
	e.waiting[seq] = w
	w.timer = h.After(timeout, func() {
		delete(e.waiting, seq)
		cb(PingResult{Seq: seq, Err: ErrPingTimeout, Sent: w.sent})
	})
	h.sendIP(dst, layers.IPProtoICMP,
		&layers.ICMPEcho{Type: layers.ICMPEchoRequest, Ident: e.ident, Seq: seq},
		layers.Payload(make([]byte, size)),
	)
}

// PingSeries sends count pings separated by interval and calls done with
// all results once the last one resolves or times out.
func (h *Host) PingSeries(dst layers.Addr4, count, size int, interval, timeout time.Duration, done func([]PingResult)) {
	results := make([]PingResult, 0, count)
	var fire func(i int)
	fire = func(i int) {
		h.Ping(dst, size, timeout, func(r PingResult) {
			results = append(results, r)
			if len(results) == count {
				done(results)
			}
		})
		if i+1 < count {
			h.After(interval, func() { fire(i + 1) })
		}
	}
	if count <= 0 {
		done(nil)
		return
	}
	fire(0)
}

// handle processes a received ICMP message.
func (e *icmpEndpoint) handle(ip *layers.IPv4) {
	var echo layers.ICMPEcho
	if echo.DecodeFromBytes(ip.Payload()) != nil {
		return
	}
	switch echo.Type {
	case layers.ICMPEchoRequest:
		e.h.stats.EchoRequestsRx++
		e.h.stats.EchoRepliesTx++
		e.h.sendIP(ip.Src, layers.IPProtoICMP,
			&layers.ICMPEcho{Type: layers.ICMPEchoReply, Ident: echo.Ident, Seq: echo.Seq},
			layers.Payload(echo.Payload()),
		)
	case layers.ICMPEchoReply:
		if echo.Ident != e.ident {
			return
		}
		w, ok := e.waiting[echo.Seq]
		if !ok {
			return // late reply after timeout
		}
		delete(e.waiting, echo.Seq)
		w.timer.Stop()
		w.cb(PingResult{Seq: echo.Seq, RTT: e.h.now() - w.sent, Sent: w.sent})
	}
}
