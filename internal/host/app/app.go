// Package app contains the workloads the demo runs on its hosts: the
// latency pinger of the Figure 2 comparison, the HTTP-like video streamer
// of the Figure 3 path-repair demo, and a UDP load generator for the
// load-distribution experiment (T2).
package app

import (
	"time"

	"repro/internal/host"
	"repro/internal/layers"
	"repro/internal/metrics"
)

// PingReport is the outcome of a ping series.
type PingReport struct {
	Sent, Lost int
	RTTs       metrics.Distribution
	// Series holds per-ping RTT in microseconds over virtual time (the
	// demo UI's latency graph).
	Series *metrics.Series
}

// RunPingSeries runs count pings from a to dstIP spaced by interval and
// returns the report through done.
func RunPingSeries(a *host.Host, dstIP layers.Addr4, count int, interval time.Duration, done func(*PingReport)) {
	rep := &PingReport{Series: metrics.NewSeries("rtt", "µs")}
	a.PingSeries(dstIP, count, 56, interval, 2*time.Second, func(results []host.PingResult) {
		rep.Sent = len(results)
		for _, r := range results {
			if r.Err != nil {
				rep.Lost++
				continue
			}
			rep.RTTs.Add(r.RTT)
			rep.Series.Add(r.Sent, float64(r.RTT)/float64(time.Microsecond))
		}
		done(rep)
	})
}
