package app

import (
	"time"

	"repro/internal/host"
	"repro/internal/metrics"
)

// StreamConfig describes the Figure 3 video stream.
type StreamConfig struct {
	// Port is the server's listening port (the demo's HTTP server).
	Port uint16
	// Size is the total video size in bytes.
	Size int
	// Bucket is the goodput-timeline bucket width.
	Bucket time.Duration
	// StallThreshold: a gap between deliveries longer than this counts as
	// a playback stall (the visible glitch in the demo's video).
	StallThreshold time.Duration
}

// DefaultStreamConfig matches the demo scale: an 8 MiB clip over HTTP.
func DefaultStreamConfig() StreamConfig {
	return StreamConfig{
		Port:           80,
		Size:           8 << 20,
		Bucket:         50 * time.Millisecond,
		StallThreshold: 100 * time.Millisecond,
	}
}

// Stall is one playback interruption observed by the client.
type Stall struct {
	Start    time.Duration // when delivery stopped (virtual time)
	Duration time.Duration // how long until bytes flowed again
}

// StreamReport is the client-side account of one streaming session.
type StreamReport struct {
	Started   time.Duration
	Connected time.Duration
	Finished  time.Duration // zero if the stream never completed
	Received  int
	Complete  bool
	Aborted   bool
	Stalls    []Stall
	// Goodput is delivered bits per second per bucket (the demo's
	// throughput graph).
	Goodput *metrics.Series
	// TotalStall sums all stall durations — the demo's "minimal effect on
	// the streamed video" claim, quantified.
	TotalStall time.Duration
}

// Streamer runs a video streaming session between two hosts.
type Streamer struct {
	cfg    StreamConfig
	report *StreamReport
	onDone func(*StreamReport)

	server *host.Host
	client *host.Host

	lastByteAt  time.Duration
	bucketStart time.Duration
	bucketBits  float64
	finished    bool
}

// StartStream makes server serve cfg.Size bytes on cfg.Port and client
// fetch them, HTTP-style. onDone fires when the stream completes or
// aborts. The returned Streamer exposes the live report for mid-stream
// probes.
func StartStream(server, client *host.Host, cfg StreamConfig, onDone func(*StreamReport)) *Streamer {
	if cfg.Size <= 0 || cfg.Bucket <= 0 || cfg.StallThreshold <= 0 {
		panic("app: invalid stream config")
	}
	now := client.Now()
	s := &Streamer{
		cfg:    cfg,
		onDone: onDone,
		server: server,
		client: client,
		report: &StreamReport{
			Started: now,
			Goodput: metrics.NewSeries("goodput", "Mb/s"),
		},
		lastByteAt:  now,
		bucketStart: now,
	}
	server.Listen(cfg.Port, func(c *host.Conn) {
		// Serve the whole "video file"; TCP-lite paces it out.
		c.Write(make([]byte, cfg.Size))
		c.Close()
	})
	client.Dial(server.IP(), cfg.Port, func(c *host.Conn) {
		s.report.Connected = client.Now()
		s.lastByteAt = s.report.Connected
		c.OnData = s.onData
		c.OnClose = s.onClose
		c.OnAbort = s.onAbort
	})
	return s
}

// Report returns the live report (final once onDone has fired).
func (s *Streamer) Report() *StreamReport { return s.report }

func (s *Streamer) onData(p []byte) {
	now := s.client.Now()
	if gap := now - s.lastByteAt; gap > s.cfg.StallThreshold {
		s.report.Stalls = append(s.report.Stalls, Stall{Start: s.lastByteAt, Duration: gap})
		s.report.TotalStall += gap
	}
	s.lastByteAt = now
	s.report.Received += len(p)
	// Goodput bucketing.
	for now-s.bucketStart >= s.cfg.Bucket {
		s.flushBucket()
	}
	s.bucketBits += float64(len(p) * 8)
}

func (s *Streamer) flushBucket() {
	mbps := s.bucketBits / s.cfg.Bucket.Seconds() / 1e6
	s.report.Goodput.Add(s.bucketStart, mbps)
	s.bucketStart += s.cfg.Bucket
	s.bucketBits = 0
}

func (s *Streamer) onClose() {
	if s.finished {
		return
	}
	s.finished = true
	s.flushBucket()
	s.report.Finished = s.client.Now()
	s.report.Complete = s.report.Received == s.cfg.Size
	if s.onDone != nil {
		s.onDone(s.report)
	}
}

func (s *Streamer) onAbort() {
	if s.finished {
		return
	}
	s.finished = true
	s.report.Aborted = true
	if s.onDone != nil {
		s.onDone(s.report)
	}
}
