package app

import (
	"testing"
	"time"

	"repro/internal/host"
	"repro/internal/netsim"
	"repro/internal/topo"
)

func figure2(proto topo.Protocol) *topo.Built {
	return topo.Figure2(topo.DefaultOptions(proto, 1), topo.ProfileUniform)
}

func TestRunPingSeries(t *testing.T) {
	n := figure2(topo.ARPPath)
	var rep *PingReport
	n.Engine.At(n.Now(), func() {
		RunPingSeries(n.Host("A"), n.Host("B").IP(), 20, 10*time.Millisecond, func(r *PingReport) { rep = r })
	})
	n.RunFor(10 * time.Second)
	if rep == nil {
		t.Fatal("report never delivered")
	}
	if rep.Sent != 20 || rep.Lost != 0 {
		t.Fatalf("sent=%d lost=%d", rep.Sent, rep.Lost)
	}
	if rep.RTTs.Count() != 20 || rep.Series.Len() != 20 {
		t.Fatal("sample accounting")
	}
	if rep.RTTs.Max() <= 0 {
		t.Fatal("implausible RTTs")
	}
}

func TestStreamCompletes(t *testing.T) {
	n := figure2(topo.ARPPath)
	cfg := DefaultStreamConfig()
	cfg.Size = 1 << 20
	var rep *StreamReport
	n.Engine.At(n.Now(), func() {
		StartStream(n.Host("A"), n.Host("B"), cfg, func(r *StreamReport) { rep = r })
	})
	n.RunFor(time.Minute)
	if rep == nil {
		t.Fatal("stream never finished")
	}
	if !rep.Complete || rep.Aborted || rep.Received != cfg.Size {
		t.Fatalf("report: complete=%v aborted=%v received=%d", rep.Complete, rep.Aborted, rep.Received)
	}
	if len(rep.Stalls) != 0 {
		t.Fatalf("unexpected stalls on a healthy fabric: %v", rep.Stalls)
	}
	if rep.Goodput.Len() == 0 {
		t.Fatal("no goodput samples")
	}
	if rep.Finished <= rep.Connected || rep.Connected < rep.Started {
		t.Fatal("timeline out of order")
	}
}

func TestStreamObservesOutageAsStall(t *testing.T) {
	// Cut the only path briefly mid-stream on a line topology: the client
	// must record a stall roughly as long as the outage, then finish.
	opts := topo.DefaultOptions(topo.ARPPath, 1)
	n := topo.Line(opts, 2)
	cfg := DefaultStreamConfig()
	cfg.Size = 4 << 20
	var rep *StreamReport
	n.Engine.At(n.Now(), func() {
		StartStream(n.Host("H1"), n.Host("H2"), cfg, func(r *StreamReport) { rep = r })
	})
	mid := n.Link("S1-S2")
	outage := 300 * time.Millisecond
	n.Engine.At(n.Now()+10*time.Millisecond, func() { mid.SetUp(false) })
	n.Engine.At(n.Now()+10*time.Millisecond+outage, func() { mid.SetUp(true) })
	n.RunFor(5 * time.Minute)
	if rep == nil || !rep.Complete {
		t.Fatal("stream did not survive the outage")
	}
	if len(rep.Stalls) == 0 {
		t.Fatal("outage not recorded as a stall")
	}
	if rep.TotalStall < outage/2 {
		t.Fatalf("TotalStall = %v, outage was %v", rep.TotalStall, outage)
	}
}

func TestStreamAbortReported(t *testing.T) {
	// Permanently partition mid-stream; the client must eventually report
	// an abort rather than hanging.
	n := topo.Line(topo.DefaultOptions(topo.ARPPath, 1), 2)
	cfg := DefaultStreamConfig()
	cfg.Size = 4 << 20
	var rep *StreamReport
	n.Engine.At(n.Now(), func() {
		StartStream(n.Host("H1"), n.Host("H2"), cfg, func(r *StreamReport) { rep = r })
	})
	n.Engine.At(n.Now()+10*time.Millisecond, func() { n.Link("S1-S2").SetUp(false) })
	n.RunFor(10 * time.Minute)
	if rep == nil {
		t.Fatal("no report after permanent partition")
	}
	if !rep.Aborted || rep.Complete {
		t.Fatalf("report: aborted=%v complete=%v", rep.Aborted, rep.Complete)
	}
}

func TestStreamConfigValidation(t *testing.T) {
	n := topo.Line(topo.DefaultOptions(topo.ARPPath, 1), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size stream accepted")
		}
	}()
	StartStream(n.Host("H1"), n.Host("H2"), StreamConfig{Port: 80}, nil)
}

func TestFlowAndSink(t *testing.T) {
	net := netsim.NewNetwork(1)
	h1 := host.New(net, "h1", 1)
	h2 := host.New(net, "h2", 2)
	net.Connect(h1, h2, netsim.DefaultLinkConfig()) // direct cable
	sink := NewSink(h2, 7000)
	var res FlowResult
	net.Engine.At(0, func() {
		StartFlow(h1, FlowConfig{
			DstIP: h2.IP(), DstPort: 7000, SrcPort: 7001,
			PayloadSize: 500, Interval: time.Millisecond, Count: 25,
		}, func(r FlowResult) { res = r })
	})
	net.RunFor(10 * time.Second)
	if res.Sent != 25 {
		t.Fatalf("sent = %d", res.Sent)
	}
	if sink.Count() != 25 {
		t.Fatalf("sink got %d datagrams", sink.Count())
	}
}

func TestFlowConfigValidation(t *testing.T) {
	net := netsim.NewNetwork(1)
	h := host.New(net, "h", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("bad flow config accepted")
		}
	}()
	StartFlow(h, FlowConfig{Count: 0}, nil)
}
