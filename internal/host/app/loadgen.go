package app

import (
	"time"

	"repro/internal/host"
	"repro/internal/layers"
)

// FlowConfig describes one constant-bit-rate UDP flow.
type FlowConfig struct {
	DstIP       layers.Addr4
	DstPort     uint16
	SrcPort     uint16
	PayloadSize int           // bytes per datagram
	Interval    time.Duration // datagram spacing
	Count       int           // datagrams to send
}

// FlowResult summarizes one finished flow.
type FlowResult struct {
	Sent     int
	Received int // filled by the matching sink
}

// Sink counts datagrams arriving at a UDP port.
type Sink struct {
	count int
}

// NewSink binds a counting receiver on h:port. The sink never reads the
// payload, so it takes borrowed (zero-copy) delivery.
func NewSink(h *host.Host, port uint16) *Sink {
	s := &Sink{}
	h.UDP(port, func(host.Datagram) { s.count++ }).Borrow()
	return s
}

// Count returns the datagrams received so far.
func (s *Sink) Count() int { return s.count }

// StartFlow sends cfg.Count datagrams from h per cfg and calls done with
// the sender-side result when the last datagram has been handed to the
// stack.
func StartFlow(h *host.Host, cfg FlowConfig, done func(FlowResult)) {
	if cfg.Count <= 0 || cfg.PayloadSize < 0 || cfg.Interval <= 0 {
		panic("app: invalid flow config")
	}
	sock := h.UDP(cfg.SrcPort, nil)
	payload := make([]byte, cfg.PayloadSize)
	sent := 0
	var tick func()
	tick = func() {
		sock.SendTo(cfg.DstIP, cfg.DstPort, payload)
		sent++
		if sent < cfg.Count {
			h.After(cfg.Interval, tick)
			return
		}
		if done != nil {
			done(FlowResult{Sent: sent})
		}
	}
	tick()
}
