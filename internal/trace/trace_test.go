package trace

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/host"
	"repro/internal/layers"
	"repro/internal/netsim"
)

// build wires h1 - bridge - h2 and returns the parts.
func build(opts ...Option) (*netsim.Network, *host.Host, *host.Host, *Capture) {
	net := netsim.NewNetwork(1)
	cap := Attach(net, opts...)
	h1 := host.New(net, "h1", 1)
	h2 := host.New(net, "h2", 2)
	b := core.New(net, "b", 1, core.DefaultConfig())
	net.Connect(h1, b, netsim.DefaultLinkConfig())
	net.Connect(b, h2, netsim.DefaultLinkConfig())
	b.Start()
	net.RunFor(time.Millisecond)
	return net, h1, h2, cap
}

func TestCaptureRecordsTraffic(t *testing.T) {
	net, h1, h2, cap := build()
	net.Engine.At(net.Now(), func() {
		h1.Ping(h2.IP(), 0, time.Second, func(host.PingResult) {})
	})
	net.RunFor(time.Second)
	if len(cap.Records()) == 0 {
		t.Fatal("nothing captured")
	}
	dump := cap.Dump()
	if !strings.Contains(dump, "who-has") || !strings.Contains(dump, "echo-request") {
		t.Fatalf("dump missing expected traffic:\n%s", dump)
	}
}

func TestCaptureFilter(t *testing.T) {
	net, h1, h2, cap := build(WithFilter(EtherTypeFilter(layers.EtherTypeARP)))
	net.Engine.At(net.Now(), func() {
		h1.Ping(h2.IP(), 0, time.Second, func(host.PingResult) {})
	})
	net.RunFor(time.Second)
	for _, r := range cap.Records() {
		if !strings.Contains(r.Summary, "ARP") && !strings.Contains(r.Summary, "who-has") && !strings.Contains(r.Summary, "is-at") {
			t.Fatalf("non-ARP record passed filter: %s", r)
		}
	}
	if len(cap.Records()) == 0 {
		t.Fatal("filter dropped everything")
	}
}

func TestDeliveriesOnlyFilter(t *testing.T) {
	net, h1, h2, cap := build(WithFilter(DeliveriesOnly))
	net.Engine.At(net.Now(), func() {
		h1.Ping(h2.IP(), 0, time.Second, func(host.PingResult) {})
	})
	net.RunFor(time.Second)
	for _, r := range cap.Records() {
		if r.Kind != netsim.TapDeliver {
			t.Fatalf("non-delivery captured: %s", r)
		}
	}
}

func TestCaptureRingBound(t *testing.T) {
	net, h1, h2, cap := build(WithLimit(16))
	net.Engine.At(net.Now(), func() {
		h1.PingSeries(h2.IP(), 50, 0, time.Millisecond, time.Second, func([]host.PingResult) {})
	})
	net.RunFor(5 * time.Second)
	if len(cap.Records()) > 16 {
		t.Fatalf("ring grew to %d records", len(cap.Records()))
	}
	if cap.Dropped() == 0 {
		t.Fatal("evictions not counted")
	}
}

func TestWithWriterStreams(t *testing.T) {
	var sb strings.Builder
	net, h1, h2, _ := build(WithWriter(&sb))
	net.Engine.At(net.Now(), func() {
		h1.Ping(h2.IP(), 0, time.Second, func(host.PingResult) {})
	})
	net.RunFor(time.Second)
	if !strings.Contains(sb.String(), "echo-request") {
		t.Fatal("writer saw no traffic")
	}
}

func TestBadLimitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero limit accepted")
		}
	}()
	Attach(netsim.NewNetwork(1), WithLimit(0))
}

func TestRecordString(t *testing.T) {
	r := Record{At: time.Millisecond, Kind: netsim.TapDeliver, From: "a[0]", To: "b[0]", Summary: "x", Len: 60}
	s := r.String()
	if !strings.Contains(s, "deliver") || !strings.Contains(s, "a[0]") || !strings.Contains(s, "60B") {
		t.Fatalf("Record.String() = %q", s)
	}
}

func TestFlowFilterBothDirections(t *testing.T) {
	net, h1, h2, cap := build(WithFilter(FlowFilter(layers.MACFlow(h1Mac(), h2Mac()))))
	net.Engine.At(net.Now(), func() {
		h1.Ping(h2.IP(), 0, time.Second, func(host.PingResult) {})
	})
	net.RunFor(time.Second)
	sawForward, sawReverse := false, false
	for _, r := range cap.Records() {
		switch {
		case strings.HasPrefix(r.Summary, h1Mac().String()):
			sawForward = true
		case strings.HasPrefix(r.Summary, h2Mac().String()):
			sawReverse = true
		default:
			t.Fatalf("foreign frame passed the flow filter: %s", r)
		}
	}
	if !sawForward || !sawReverse {
		t.Fatalf("flow filter missed a direction: fwd=%v rev=%v", sawForward, sawReverse)
	}
}

// h1Mac/h2Mac mirror the fixed host numbering of build().
func h1Mac() layers.MAC { return layers.HostMAC(1) }
func h2Mac() layers.MAC { return layers.HostMAC(2) }
