// Package trace captures frames crossing the simulated network for
// debugging and for the demo binaries' -trace flag: a bounded ring of
// decoded one-line summaries, with optional filters.
package trace

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/layers"
	"repro/internal/netsim"
)

// Record is one captured frame event.
type Record struct {
	At      time.Duration
	Kind    netsim.TapKind
	From    string
	To      string
	Summary string
	Len     int
}

// String renders the record as a tcpdump-style line.
func (r Record) String() string {
	return fmt.Sprintf("%12v %-10s %s > %s  %s (%dB)",
		r.At, r.Kind, r.From, r.To, r.Summary, r.Len)
}

// Capture is a bounded ring buffer of frame records attached to a network.
type Capture struct {
	limit   int
	records []Record
	dropped uint64
	filter  func(netsim.TapEvent) bool
	sink    io.Writer
}

// Option configures a capture.
type Option func(*Capture)

// WithLimit bounds the ring (default 4096 records).
func WithLimit(n int) Option {
	return func(c *Capture) {
		if n <= 0 {
			panic("trace: limit must be positive")
		}
		c.limit = n
	}
}

// WithFilter keeps only events the predicate accepts.
func WithFilter(f func(netsim.TapEvent) bool) Option {
	return func(c *Capture) { c.filter = f }
}

// WithWriter streams each record to w as it is captured (the -trace flag).
func WithWriter(w io.Writer) Option {
	return func(c *Capture) { c.sink = w }
}

// EtherTypeFilter keeps only frames of the given EtherTypes.
func EtherTypeFilter(types ...layers.EtherType) func(netsim.TapEvent) bool {
	set := make(map[layers.EtherType]bool, len(types))
	for _, t := range types {
		set[t] = true
	}
	return func(ev netsim.TapEvent) bool { return set[layers.FrameEtherType(ev.Frame)] }
}

// DeliveriesOnly keeps only TapDeliver events (one record per hop
// traversal instead of two).
func DeliveriesOnly(ev netsim.TapEvent) bool { return ev.Kind == netsim.TapDeliver }

// FlowFilter keeps only frames belonging to the given link-layer flow, in
// either direction (the symmetric-flow idiom: a conversation is one
// thing, whichever way the frame travels).
func FlowFilter(flow layers.Flow) func(netsim.TapEvent) bool {
	rev := flow.Reverse()
	return func(ev netsim.TapEvent) bool {
		f := layers.MACFlow(layers.FrameSrc(ev.Frame), layers.FrameDst(ev.Frame))
		return f == flow || f == rev
	}
}

// Attach registers a capture on net and returns it.
func Attach(net *netsim.Network, opts ...Option) *Capture {
	c := &Capture{limit: 4096}
	for _, o := range opts {
		o(c)
	}
	net.Tap(c.observe)
	return c
}

func (c *Capture) observe(ev netsim.TapEvent) {
	if c.filter != nil && !c.filter(ev) {
		return
	}
	r := Record{
		At:      ev.At,
		Kind:    ev.Kind,
		From:    ev.From.String(),
		To:      ev.To.String(),
		Summary: layers.Summarize(ev.Frame),
		Len:     len(ev.Frame),
	}
	if c.sink != nil {
		fmt.Fprintln(c.sink, r)
	}
	if len(c.records) >= c.limit {
		// Drop the oldest half rather than one-at-a-time shifting.
		n := copy(c.records, c.records[len(c.records)/2:])
		c.records = c.records[:n]
		c.dropped += uint64(c.limit - n)
	}
	c.records = append(c.records, r)
}

// Records returns the retained records, oldest first.
func (c *Capture) Records() []Record { return c.records }

// Dropped returns how many records were evicted by the ring bound.
func (c *Capture) Dropped() uint64 { return c.dropped }

// Dump renders all retained records as text.
func (c *Capture) Dump() string {
	var sb strings.Builder
	for _, r := range c.records {
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
