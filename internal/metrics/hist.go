package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"time"
)

// Histogram is an HDR-style latency histogram: a fixed log-linear bucket
// layout covering every non-negative duration with bounded relative error,
// a zero-allocation record path, and deterministic merge. It trades the
// exact quantiles of Distribution for O(1) memory under unbounded sample
// streams — the long-running daemon regime, where keeping every RTT of an
// hours-long soak is not an option.
//
// Layout: values below 2^histSubBits ns land in exact width-1 buckets;
// above that, each power-of-two octave [2^e, 2^(e+1)) splits into
// 2^histSubBits equal sub-buckets, so a bucket's width is always at most
// value/2^histSubBits and every quantile is overestimated by strictly
// less than 2^-histSubBits (≈1.6%) relative. The layout is a pure function
// of the value — no rescaling, no allocation, no data-dependent state —
// which is what makes Merge a plain counter sum and quantiles identical
// regardless of arrival or merge order.
type Histogram struct {
	counts [histBuckets]uint64
	count  uint64
	sum    int64
	min    int64
	max    int64
}

const (
	// histSubBits fixes the precision: 2^6 = 64 sub-buckets per octave.
	histSubBits = 6
	histSubCnt  = 1 << histSubBits
	// histBuckets covers the full non-negative int64 range: 64 exact
	// buckets plus 64 sub-buckets for each octave e = 6..62 (int64
	// durations never reach octave 63).
	histBuckets = histSubCnt + (63-histSubBits)*histSubCnt
)

// NewHistogram returns an empty histogram. The zero value is also ready to
// use; the constructor exists for the idiomatic pointer spelling.
func NewHistogram() *Histogram {
	return &Histogram{}
}

// histIndex maps a non-negative value to its bucket.
func histIndex(v int64) int {
	if v < histSubCnt {
		return int(v)
	}
	e := bits.Len64(uint64(v)) - 1 // 2^e ≤ v < 2^(e+1), e ≥ histSubBits
	sub := (v - 1<<e) >> (e - histSubBits)
	return (e-histSubBits)*histSubCnt + histSubCnt + int(sub)
}

// histBounds returns bucket i's half-open value range [lo, hi).
func histBounds(i int) (lo, hi int64) {
	if i < histSubCnt {
		return int64(i), int64(i) + 1
	}
	e := i/histSubCnt + histSubBits - 1
	sub := int64(i % histSubCnt)
	width := int64(1) << (e - histSubBits)
	lo = 1<<e + sub*width
	return lo, lo + width
}

// Record adds one sample. Negative durations clamp to zero. The path is
// allocation-free (gated by a test) so per-frame recording is safe on the
// hot path.
func (h *Histogram) Record(v time.Duration) {
	n := int64(v)
	if n < 0 {
		n = 0
	}
	h.counts[histIndex(n)]++
	if h.count == 0 || n < h.min {
		h.min = n
	}
	if n > h.max {
		h.max = n
	}
	h.count++
	h.sum += n
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count }

// Min returns the smallest recorded sample exactly, or 0 when empty.
func (h *Histogram) Min() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.min)
}

// Max returns the largest recorded sample exactly, or 0 when empty.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max) }

// Mean returns the arithmetic mean of the exact sample sum.
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / int64(h.count))
}

// Percentile returns the p-th percentile (0 < p ≤ 100) by nearest rank,
// reported as the highest value of the rank's bucket — an overestimate by
// strictly less than 2^-histSubBits relative (and exact below 64ns, where
// buckets have width 1). The rank rule matches Distribution.Percentile,
// so the two agree within the bucket error on identical samples.
func (h *Histogram) Percentile(p float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if p <= 0 || p > 100 {
		panic(fmt.Sprintf("metrics: percentile %v out of range", p))
	}
	rank := uint64(math.Ceil(p / 100 * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		if cum >= rank {
			_, hi := histBounds(i)
			if hi-1 > h.max {
				return time.Duration(h.max)
			}
			return time.Duration(hi - 1)
		}
	}
	return time.Duration(h.max)
}

// Merge folds o into h bucket-wise. Because the layout is fixed, merging
// is commutative and associative over any partition of the samples: the
// merged histogram is identical to recording every sample into one.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.count == 0 {
		return
	}
	for i, c := range o.counts {
		if c != 0 {
			h.counts[i] += c
		}
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
}

// EachBucket calls fn for every non-empty bucket in value order with the
// bucket's half-open range and count — the iteration a cumulative
// ("le"-labelled) text exposition walks.
func (h *Histogram) EachBucket(fn func(lo, hi time.Duration, count uint64)) {
	for i, c := range h.counts {
		if c != 0 {
			lo, hi := histBounds(i)
			fn(time.Duration(lo), time.Duration(hi), c)
		}
	}
}
