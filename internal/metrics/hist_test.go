package metrics

import (
	"math/rand"
	"testing"
	"time"
)

// TestHistBucketBoundaries pins the layout: exact width-1 buckets below
// 2^6, then 64 sub-buckets per octave, index↔bounds mutually inverse, and
// monotone non-overlapping coverage of the whole range.
func TestHistBucketBoundaries(t *testing.T) {
	// Exact region.
	for v := int64(0); v < 64; v++ {
		if got := histIndex(v); got != int(v) {
			t.Fatalf("histIndex(%d) = %d, want %d", v, got, v)
		}
	}
	// Octave starts: 2^e must open a fresh sub-bucket block with width
	// 2^(e-6).
	for e := 6; e <= 40; e++ {
		v := int64(1) << e
		i := histIndex(v)
		lo, hi := histBounds(i)
		if lo != v {
			t.Fatalf("bucket %d for 2^%d opens at %d, want %d", i, e, lo, v)
		}
		if want := v >> 6; hi-lo != want {
			t.Fatalf("bucket %d for 2^%d has width %d, want %d", i, e, hi-lo, want)
		}
		// The value one below the octave boundary belongs to the previous
		// bucket.
		if j := histIndex(v - 1); j != i-1 {
			t.Fatalf("histIndex(2^%d-1) = %d, want %d", e, j, i-1)
		}
	}
	// Every bucket's bounds contain exactly the values that map to it, and
	// consecutive buckets tile without gaps.
	prevHi := int64(0)
	for i := 0; i < 64+64*10; i++ {
		lo, hi := histBounds(i)
		if lo != prevHi {
			t.Fatalf("bucket %d opens at %d, previous closed at %d", i, lo, prevHi)
		}
		prevHi = hi
		if histIndex(lo) != i || histIndex(hi-1) != i {
			t.Fatalf("bounds of bucket %d [%d,%d) do not map back to it", i, lo, hi)
		}
	}
}

// TestHistQuantileAccuracy compares against the exact Distribution on
// random samples across several magnitudes: the histogram quantile must
// never undershoot and must stay within the 2^-6 relative error bound.
func TestHistQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	h := NewHistogram()
	var d Distribution
	for i := 0; i < 20000; i++ {
		// Log-uniform over ~6 decades: nanoseconds to milliseconds.
		v := time.Duration(float64(time.Nanosecond) * pow10(rng.Float64()*6))
		h.Record(v)
		d.Add(v)
	}
	if h.Count() != uint64(d.Count()) {
		t.Fatalf("count %d != %d", h.Count(), d.Count())
	}
	if h.Min() != d.Min() || h.Max() != d.Max() {
		t.Fatalf("min/max %v/%v != %v/%v", h.Min(), h.Max(), d.Min(), d.Max())
	}
	for _, p := range []float64{1, 10, 25, 50, 75, 90, 99, 99.9, 100} {
		exact := d.Percentile(p)
		got := h.Percentile(p)
		if got < exact {
			t.Fatalf("p%v: histogram %v undershoots exact %v", p, got, exact)
		}
		if limit := exact + exact>>6 + 1; got > limit {
			t.Fatalf("p%v: histogram %v exceeds error bound %v (exact %v)", p, got, limit, exact)
		}
	}
	// Mean is computed from the exact sum, not the buckets.
	if h.Mean() != d.Mean() {
		t.Fatalf("mean %v != %v", h.Mean(), d.Mean())
	}
}

func pow10(x float64) float64 {
	v := 1.0
	for x >= 1 {
		v *= 10
		x--
	}
	for f := x; f > 0; f -= 1.0 / 16 {
		v *= 1.1547819846894583 // 10^(1/16)
	}
	return v
}

// TestHistSmallExact pins that the sub-64ns region is lossless: quantiles
// of small samples are exact, not approximations.
func TestHistSmallExact(t *testing.T) {
	h := NewHistogram()
	for v := 1; v <= 50; v++ {
		h.Record(time.Duration(v))
	}
	if got := h.Percentile(50); got != 25 {
		t.Fatalf("p50 = %v, want 25ns exactly", got)
	}
	if got := h.Percentile(100); got != 50 {
		t.Fatalf("p100 = %v, want 50ns exactly", got)
	}
}

// TestHistNegativeClamps pins that negative durations record as zero
// rather than corrupting the layout.
func TestHistNegativeClamps(t *testing.T) {
	h := NewHistogram()
	h.Record(-5 * time.Millisecond)
	if h.Count() != 1 || h.Min() != 0 || h.Percentile(100) != 0 {
		t.Fatalf("negative sample recorded as count=%d min=%v p100=%v", h.Count(), h.Min(), h.Percentile(100))
	}
}

// TestHistMergeDeterministic pins that merging any partition of a sample
// stream, in any order, equals recording it into one histogram.
func TestHistMergeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	samples := make([]time.Duration, 5000)
	for i := range samples {
		samples[i] = time.Duration(rng.Int63n(int64(10 * time.Millisecond)))
	}
	whole := NewHistogram()
	for _, v := range samples {
		whole.Record(v)
	}
	parts := make([]*Histogram, 7)
	for i := range parts {
		parts[i] = NewHistogram()
	}
	for i, v := range samples {
		parts[i%len(parts)].Record(v)
	}
	// Merge in two different orders; both must equal the whole.
	for name, order := range map[string][]int{
		"forward": {0, 1, 2, 3, 4, 5, 6},
		"shuffle": {3, 6, 0, 5, 1, 4, 2},
	} {
		m := NewHistogram()
		for _, i := range order {
			m.Merge(parts[i])
		}
		if *m != *whole {
			t.Fatalf("%s merge differs from direct recording", name)
		}
	}
	// Merging an empty histogram is the identity.
	before := *whole
	whole.Merge(NewHistogram())
	whole.Merge(nil)
	if *whole != before {
		t.Fatal("merging empty changed the histogram")
	}
}

// TestHistRecordDoesNotAllocate gates the zero-allocation record path.
func TestHistRecordDoesNotAllocate(t *testing.T) {
	h := NewHistogram()
	v := time.Duration(0)
	if n := testing.AllocsPerRun(1000, func() {
		h.Record(v)
		v += 977 * time.Nanosecond
	}); n != 0 {
		t.Fatalf("Record allocates %.1f objects per call", n)
	}
}

// TestHistEachBucketCumulates pins that EachBucket walks non-empty buckets
// in value order and accounts for every sample.
func TestHistEachBucketCumulates(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	var total uint64
	last := time.Duration(-1)
	h.EachBucket(func(lo, hi time.Duration, count uint64) {
		if lo <= last {
			t.Fatalf("bucket order violated: lo %v after %v", lo, last)
		}
		if hi <= lo {
			t.Fatalf("degenerate bucket [%v,%v)", lo, hi)
		}
		last = lo
		total += count
	})
	if total != h.Count() {
		t.Fatalf("buckets hold %d samples, recorded %d", total, h.Count())
	}
}
