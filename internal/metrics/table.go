package metrics

import (
	"fmt"
	"strings"
)

// Table accumulates rows and renders them as aligned text or CSV — the
// form every experiment reports its results in.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	if len(cells) != len(t.headers) {
		panic(fmt.Sprintf("metrics: row has %d cells, table has %d columns", len(cells), len(t.headers)))
	}
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Cell returns the formatted cell at (row, col); test helper.
func (t *Table) Cell(row, col int) string { return t.rows[row][col] }

// String renders the aligned-text form.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title + "\n")
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteString("\n")
	}
	writeRow(t.headers)
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	sb.WriteString(strings.Repeat("-", total) + "\n")
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}

// CSV renders the comma-separated form (quoting cells containing commas
// or quotes).
func (t *Table) CSV() string {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			sb.WriteString(c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}
