package metrics

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestDistributionBasics(t *testing.T) {
	var d Distribution
	if d.String() != "no samples" || d.Min() != 0 || d.Max() != 0 || d.Mean() != 0 || d.Stddev() != 0 {
		t.Fatal("empty distribution not zeroed")
	}
	for _, v := range []time.Duration{30, 10, 20} {
		d.Add(v * time.Millisecond)
	}
	if d.Count() != 3 || d.Min() != 10*time.Millisecond || d.Max() != 30*time.Millisecond {
		t.Fatalf("summary wrong: %s", d.String())
	}
	if d.Mean() != 20*time.Millisecond {
		t.Fatalf("mean = %v", d.Mean())
	}
	if d.Percentile(50) != 20*time.Millisecond {
		t.Fatalf("p50 = %v", d.Percentile(50))
	}
	if d.Percentile(100) != 30*time.Millisecond {
		t.Fatalf("p100 = %v", d.Percentile(100))
	}
	if !strings.Contains(d.String(), "n=3") {
		t.Fatalf("String() = %q", d.String())
	}
}

func TestDistributionPercentileValidation(t *testing.T) {
	var d Distribution
	d.Add(time.Second)
	defer func() {
		if recover() == nil {
			t.Fatal("percentile 0 accepted")
		}
	}()
	d.Percentile(0)
}

func TestDistributionStddev(t *testing.T) {
	var d Distribution
	for i := 0; i < 10; i++ {
		d.Add(time.Duration(100) * time.Millisecond)
	}
	if d.Stddev() != 0 {
		t.Fatalf("stddev of constant = %v", d.Stddev())
	}
	d.Add(200 * time.Millisecond)
	if d.Stddev() == 0 {
		t.Fatal("stddev of varied samples is zero")
	}
}

// Property: percentiles are monotone and bounded by min/max.
func TestQuickPercentilesMonotone(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		var d Distribution
		for _, v := range raw {
			d.Add(time.Duration(v))
		}
		prev := time.Duration(0)
		for _, p := range []float64{1, 25, 50, 75, 90, 99, 100} {
			v := d.Percentile(p)
			if v < prev || v < d.Min() || v > d.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("rtt", "µs")
	s.Add(0, 10)
	s.Add(time.Second, 30)
	s.Add(2*time.Second, 20)
	if s.Len() != 3 || s.Mean() != 20 || s.Max() != 30 {
		t.Fatalf("series stats: len=%d mean=%v max=%v", s.Len(), s.Mean(), s.Max())
	}
	vals := s.Values()
	if len(vals) != 3 || vals[1] != 30 {
		t.Fatalf("values = %v", vals)
	}
}

func TestSeriesRejectsTimeTravel(t *testing.T) {
	s := NewSeries("x", "")
	s.Add(time.Second, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("decreasing timestamp accepted")
		}
	}()
	s.Add(0, 2)
}

func TestSeriesASCII(t *testing.T) {
	s := NewSeries("latency", "µs")
	for i := 0; i < 40; i++ {
		v := 10.0
		if i >= 20 {
			v = 50.0
		}
		s.Add(time.Duration(i)*time.Second, v)
	}
	art := s.ASCII(40, 6)
	if !strings.Contains(art, "latency") || !strings.Contains(art, "*") {
		t.Fatalf("ASCII chart malformed:\n%s", art)
	}
	lines := strings.Split(strings.TrimRight(art, "\n"), "\n")
	if len(lines) != 8 { // header + 6 rows + axis
		t.Fatalf("chart has %d lines", len(lines))
	}
	empty := NewSeries("none", "")
	if !strings.Contains(empty.ASCII(10, 3), "empty") {
		t.Fatal("empty chart not labelled")
	}
	flat := NewSeries("flat", "")
	flat.Add(0, 5)
	if !strings.Contains(flat.ASCII(10, 3), "*") {
		t.Fatal("flat series not plotted")
	}
}

func TestSeriesMaxEmpty(t *testing.T) {
	if NewSeries("e", "").Max() != 0 {
		t.Fatal("empty Max != 0")
	}
}

func TestJain(t *testing.T) {
	if j := Jain([]float64{1, 1, 1, 1}); j != 1 {
		t.Fatalf("Jain(even) = %v", j)
	}
	if j := Jain([]float64{1, 0, 0, 0}); j != 0.25 {
		t.Fatalf("Jain(concentrated) = %v", j)
	}
	if Jain(nil) != 0 {
		t.Fatal("Jain(nil)")
	}
	if Jain([]float64{0, 0}) != 1 {
		t.Fatal("Jain(zeros)")
	}
}

// Property: Jain's index lies in [1/n, 1] for non-negative non-zero input.
func TestQuickJainBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		nonzero := false
		for i, v := range raw {
			vals[i] = float64(v)
			if v != 0 {
				nonzero = true
			}
		}
		if !nonzero {
			return Jain(vals) == 1
		}
		j := Jain(vals)
		return j >= 1/float64(len(vals))-1e-12 && j <= 1+1e-12
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("Results", "name", "value")
	tb.AddRow("alpha", 1)
	tb.AddRow("beta, the second", 2.5)
	if tb.Rows() != 2 || tb.Cell(0, 0) != "alpha" || tb.Cell(1, 1) != "2.5" {
		t.Fatal("cell accounting")
	}
	text := tb.String()
	if !strings.Contains(text, "Results") || !strings.Contains(text, "alpha") {
		t.Fatalf("text table:\n%s", text)
	}
	csv := tb.CSV()
	if !strings.Contains(csv, "\"beta, the second\"") {
		t.Fatalf("CSV quoting:\n%s", csv)
	}
	if !strings.HasPrefix(csv, "name,value\n") {
		t.Fatalf("CSV header:\n%s", csv)
	}
}

func TestTableArityPanics(t *testing.T) {
	tb := NewTable("x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong arity accepted")
		}
	}()
	tb.AddRow(1)
}

func TestTableCSVQuoteEscaping(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRow(`say "hi"`)
	if !strings.Contains(tb.CSV(), `"say ""hi"""`) {
		t.Fatalf("CSV = %q", tb.CSV())
	}
}
