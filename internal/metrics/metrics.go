// Package metrics collects and renders the measurements the experiments
// report: latency distributions, time series (the demo UI's "graphs",
// rendered as ASCII), counters, and aligned-text/CSV tables.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Distribution summarizes a set of duration samples.
type Distribution struct {
	samples []time.Duration
	sorted  bool
}

// Add records one sample.
func (d *Distribution) Add(v time.Duration) {
	d.samples = append(d.samples, v)
	d.sorted = false
}

// Count returns the number of samples.
func (d *Distribution) Count() int { return len(d.samples) }

// Min returns the smallest sample, or 0 with no samples.
func (d *Distribution) Min() time.Duration {
	if len(d.samples) == 0 {
		return 0
	}
	d.sortSamples()
	return d.samples[0]
}

// Max returns the largest sample, or 0 with no samples.
func (d *Distribution) Max() time.Duration {
	if len(d.samples) == 0 {
		return 0
	}
	d.sortSamples()
	return d.samples[len(d.samples)-1]
}

// Mean returns the arithmetic mean.
func (d *Distribution) Mean() time.Duration {
	if len(d.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, v := range d.samples {
		sum += v
	}
	return sum / time.Duration(len(d.samples))
}

// Percentile returns the p-th percentile (0 < p ≤ 100) by
// nearest-rank.
func (d *Distribution) Percentile(p float64) time.Duration {
	if len(d.samples) == 0 {
		return 0
	}
	if p <= 0 || p > 100 {
		panic(fmt.Sprintf("metrics: percentile %v out of range", p))
	}
	d.sortSamples()
	rank := int(math.Ceil(p / 100 * float64(len(d.samples))))
	if rank < 1 {
		rank = 1
	}
	return d.samples[rank-1]
}

// Stddev returns the population standard deviation.
func (d *Distribution) Stddev() time.Duration {
	n := len(d.samples)
	if n == 0 {
		return 0
	}
	mean := float64(d.Mean())
	var ss float64
	for _, v := range d.samples {
		diff := float64(v) - mean
		ss += diff * diff
	}
	return time.Duration(math.Sqrt(ss / float64(n)))
}

// Samples returns a copy of the raw samples in insertion order is not
// preserved after percentile queries; callers get the sorted view.
func (d *Distribution) Samples() []time.Duration {
	d.sortSamples()
	out := make([]time.Duration, len(d.samples))
	copy(out, d.samples)
	return out
}

func (d *Distribution) sortSamples() {
	if !d.sorted {
		sort.Slice(d.samples, func(i, j int) bool { return d.samples[i] < d.samples[j] })
		d.sorted = true
	}
}

// String renders a one-line summary.
func (d *Distribution) String() string {
	if d.Count() == 0 {
		return "no samples"
	}
	return fmt.Sprintf("n=%d min=%v mean=%v p50=%v p99=%v max=%v",
		d.Count(), d.Min(), d.Mean(), d.Percentile(50), d.Percentile(99), d.Max())
}

// Point is one time-series observation.
type Point struct {
	At    time.Duration // virtual time
	Value float64
}

// Series is an append-only time series (ping RTTs over time, goodput per
// bucket, ...).
type Series struct {
	Name   string
	Unit   string
	points []Point
}

// NewSeries creates a named series; unit is a display label ("µs",
// "Mb/s").
func NewSeries(name, unit string) *Series { return &Series{Name: name, Unit: unit} }

// Add appends an observation. Timestamps must not decrease.
func (s *Series) Add(at time.Duration, v float64) {
	if n := len(s.points); n > 0 && s.points[n-1].At > at {
		panic("metrics: series timestamps must not decrease")
	}
	s.points = append(s.points, Point{At: at, Value: v})
}

// Points returns the underlying observations (shared slice; do not
// modify).
func (s *Series) Points() []Point { return s.points }

// Len returns the number of points.
func (s *Series) Len() int { return len(s.points) }

// Values returns just the observation values.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.points))
	for i, p := range s.points {
		out[i] = p.Value
	}
	return out
}

// Mean returns the mean value of the series.
func (s *Series) Mean() float64 {
	if len(s.points) == 0 {
		return 0
	}
	var sum float64
	for _, p := range s.points {
		sum += p.Value
	}
	return sum / float64(len(s.points))
}

// Max returns the largest value in the series.
func (s *Series) Max() float64 {
	m := math.Inf(-1)
	for _, p := range s.points {
		if p.Value > m {
			m = p.Value
		}
	}
	if math.IsInf(m, -1) {
		return 0
	}
	return m
}

// ASCII renders the series as a fixed-height terminal chart — the
// stand-in for the demo UI's latency graphs.
func (s *Series) ASCII(width, height int) string {
	if width < 8 {
		width = 8
	}
	if height < 2 {
		height = 2
	}
	if len(s.points) == 0 {
		return fmt.Sprintf("%s: (empty)\n", s.Name)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range s.points {
		lo = math.Min(lo, p.Value)
		hi = math.Max(hi, p.Value)
	}
	if hi == lo {
		hi = lo + 1
	}
	// Downsample/bucket points onto the width.
	cols := make([]float64, width)
	filled := make([]bool, width)
	for i, p := range s.points {
		c := i * width / len(s.points)
		if !filled[c] || p.Value > cols[c] {
			cols[c], filled[c] = p.Value, true
		}
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for c := 0; c < width; c++ {
		if !filled[c] {
			continue
		}
		level := int((cols[c] - lo) / (hi - lo) * float64(height-1))
		row := height - 1 - level
		grid[row][c] = '*'
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s [%s]  max=%.3g min=%.3g\n", s.Name, s.Unit, hi, lo)
	for _, row := range grid {
		sb.WriteString("  |")
		sb.Write(row)
		sb.WriteByte('\n')
	}
	sb.WriteString("  +" + strings.Repeat("-", width) + "\n")
	return sb.String()
}

// Jain computes Jain's fairness index of the values: 1 means perfectly
// even, 1/n means maximally concentrated. Used by the load-distribution
// experiment (T2).
func Jain(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, v := range values {
		sum += v
		sumSq += v * v
	}
	if sumSq == 0 {
		return 1 // all zeros: degenerate but "even"
	}
	return sum * sum / (float64(len(values)) * sumSq)
}
