package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression comments
//
// A diagnostic is suppressed by a comment of the form
//
//	//fabriclint:<kind> <justification>
//
// placed either at the end of the offending line or alone on the line
// immediately above it. The justification is mandatory: a suppression
// explains *why* the contract does not apply at this site (e.g. "wall
// clock feeds wake-latency stats only, never event order"). A bare
// //fabriclint:<kind> with no justification is itself reported — an
// unexplained exemption is how contracts rot.
//
// Kinds in use: wallclock (time.Now in trace-affecting code),
// nondeterministic (global rand, ordered map iteration, goroutine
// spawns), ownership (frame borrow/Retain contract), alloc (hot-path
// allocation constructs). The grammar is shared; each analyzer consults
// only its own kinds.

const suppressPrefix = "//fabriclint:"

type suppression struct {
	kind          string
	justification string
	pos           token.Pos
}

// buildSuppressions indexes every fabriclint comment in the pass by
// (filename, line). A whole-line comment suppresses the next line; a
// trailing comment suppresses its own line.
func (p *Pass) buildSuppressions() {
	if p.suppressions != nil {
		return
	}
	p.suppressions = map[string]map[int][]suppression{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, suppressPrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, suppressPrefix)
				kind := rest
				just := ""
				if i := strings.IndexAny(rest, " \t"); i >= 0 {
					kind, just = rest[:i], strings.TrimSpace(rest[i+1:])
				}
				pos := p.Fset.Position(c.Pos())
				byLine := p.suppressions[pos.Filename]
				if byLine == nil {
					byLine = map[int][]suppression{}
					p.suppressions[pos.Filename] = byLine
				}
				s := suppression{kind: kind, justification: just, pos: c.Pos()}
				// A comment on its own line covers the following line;
				// a trailing comment covers its own.
				line := pos.Line
				if p.commentOwnsLine(f, c, line) {
					line++
				}
				byLine[line] = append(byLine[line], s)
			}
		}
	}
}

// commentOwnsLine reports whether c is the first thing on its line (a
// whole-line comment) rather than trailing code.
func (p *Pass) commentOwnsLine(f *ast.File, c *ast.Comment, line int) bool {
	tf := p.Fset.File(c.Pos())
	if tf == nil {
		return false
	}
	// If any non-comment node of the file starts earlier on the same
	// line, the comment trails code. Scanning the raw offsets would need
	// the source; comparing against the line start via column is enough:
	// a whole-line comment's column is its indentation, and code before
	// it would have produced a smaller column for some token — but we do
	// not have per-token lines here. Use the cheap exact rule instead:
	// the comment owns the line iff no AST node on that line begins
	// before it.
	owns := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !owns {
			return false
		}
		if n.Pos() == token.NoPos {
			return true
		}
		if p.Fset.Position(n.Pos()).Line == line && n.Pos() < c.Pos() {
			if _, isComment := n.(*ast.Comment); !isComment {
				if _, isGroup := n.(*ast.CommentGroup); !isGroup {
					if _, isFile := n.(*ast.File); !isFile {
						owns = false
					}
				}
			}
		}
		return n.Pos() <= c.Pos() || p.Fset.Position(n.Pos()).Line <= line
	})
	return owns
}

// Suppressed reports whether a diagnostic of the given kind at pos is
// covered by a well-formed suppression comment. A matching comment with
// an empty justification does not suppress; instead it is reported once
// as malformed.
func (p *Pass) Suppressed(kind string, pos token.Pos) bool {
	p.buildSuppressions()
	position := p.Fset.Position(pos)
	for _, s := range p.suppressions[position.Filename][position.Line] {
		if s.kind != kind {
			continue
		}
		if s.justification == "" {
			p.Reportf(s.pos, "fabriclint:%s suppression requires a justification", kind)
			return true // suppressed-but-malformed: one diagnostic, not two
		}
		return true
	}
	return false
}
