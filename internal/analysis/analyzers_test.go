package analysis_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "sim", analysis.DeterminismAnalyzer)
}

// The blessed coordinator file may spawn goroutines without suppression.
func TestDeterminismBlessedCoordinator(t *testing.T) {
	analysistest.Run(t, "netsim", analysis.DeterminismAnalyzer)
}

func TestFrameOwnership(t *testing.T) {
	analysistest.Run(t, "frameown", analysis.FrameOwnershipAnalyzer)
}

func TestHotPath(t *testing.T) {
	analysistest.Run(t, "hotpath", analysis.HotPathAnalyzer)
}

func TestStrictSpec(t *testing.T) {
	analysistest.Run(t, "strictspec", analysis.StrictSpecAnalyzer)
}

// A suppression without a justification reports the comment itself and
// swallows the underlying diagnostic: one finding, not two.
func TestMalformedSuppression(t *testing.T) {
	diags := analysistest.Diagnostics(t, "suppress/sim", analysis.DeterminismAnalyzer)
	if len(diags) != 1 || !strings.Contains(diags[0], "requires a justification") {
		t.Fatalf("want exactly one malformed-suppression diagnostic, got %v", diags)
	}
}
