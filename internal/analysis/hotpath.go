package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPathAnalyzer guards the zero-allocation dataplane (DESIGN.md §3,
// §11). Functions annotated with a `//fabric:hotpath` doc-comment line
// — the batched window drain, frame forwarding, the timer wheel and the
// outbox exchange, i.e. exactly the paths the AllocsPerRun gates
// measure — are checked for the allocation constructs that most often
// sneak past review:
//
//   - func literals (closures allocate when they capture);
//   - calls into fmt (every fmt call allocates its argument slice);
//   - string concatenation and string<->[]byte conversions;
//   - append whose destination is a slice declared locally in the
//     function (a reused buffer lives on the receiver or package — a
//     fresh local grows on every call);
//   - implicit interface conversions of non-pointer values at call
//     boundaries (boxing allocates unless the value is pointer-shaped).
//
// Arguments of panic(...) are exempt: a dying process may format its
// last words. Deliberate exceptions are annotated //fabriclint:alloc
// <why>. The analyzer is a static screen in front of the runtime
// gates, not a replacement: the gates measure, this names the culprit
// at compile time.
var HotPathAnalyzer = &Analyzer{
	Name: "hotpath",
	Doc: "functions marked //fabric:hotpath must avoid obvious allocation constructs " +
		"(closures, fmt, string concat, non-reused append, interface boxing)",
	Run: runHotPath,
}

// HotPathMarker is the annotation that opts a function into the check.
const HotPathMarker = "//fabric:hotpath"

func runHotPath(pass *Pass) error {
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !funcHasMarker(fn, HotPathMarker) {
				continue
			}
			checkHotFunc(pass, fn)
		}
	}
	return nil
}

func checkHotFunc(pass *Pass, fn *ast.FuncDecl) {
	panicRanges := panicArgRanges(fn.Body)
	exempt := func(pos token.Pos) bool { return inRanges(panicRanges, pos) }

	// Local slice variables declared in this function: appends to them
	// grow a fresh backing array per call instead of reusing a buffer.
	localSlices := map[types.Object]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if obj := pass.TypesInfo.Defs[id]; obj != nil {
							if _, isSlice := types.Unalias(obj.Type()).Underlying().(*types.Slice); isSlice {
								localSlices[obj] = true
							}
						}
					}
				}
			}
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, id := range vs.Names {
							if obj := pass.TypesInfo.Defs[id]; obj != nil {
								if _, isSlice := types.Unalias(obj.Type()).Underlying().(*types.Slice); isSlice {
									localSlices[obj] = true
								}
							}
						}
					}
				}
			}
		}
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if exempt(n.Pos()) {
				return false
			}
			if !pass.Suppressed("alloc", n.Pos()) {
				pass.Reportf(n.Pos(),
					"closure in //fabric:hotpath function %s: capturing func literals allocate; "+
						"use a Runner object or hoist the closure (//fabriclint:alloc <why> to keep it)",
					fn.Name.Name)
			}
			return false
		case *ast.BinaryExpr:
			if n.Op == token.ADD && !exempt(n.Pos()) {
				if tv, ok := pass.TypesInfo.Types[n]; ok {
					if basic, ok := types.Unalias(tv.Type).Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
						if !pass.Suppressed("alloc", n.Pos()) {
							pass.Reportf(n.Pos(),
								"string concatenation in //fabric:hotpath function %s allocates", fn.Name.Name)
						}
					}
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, fn, n, localSlices, exempt)
		}
		return true
	})
}

func checkHotCall(pass *Pass, fn *ast.FuncDecl, call *ast.CallExpr, localSlices map[types.Object]bool, exempt func(token.Pos) bool) {
	if exempt(call.Pos()) {
		return
	}
	// Conversions: string(b), []byte(s).
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := types.Unalias(tv.Type).Underlying()
		if argTV, ok := pass.TypesInfo.Types[call.Args[0]]; ok {
			from := types.Unalias(argTV.Type).Underlying()
			if isStringByteConv(from, to) && !pass.Suppressed("alloc", call.Pos()) {
				pass.Reportf(call.Pos(),
					"string<->[]byte conversion in //fabric:hotpath function %s copies and allocates", fn.Name.Name)
			}
			if _, isIface := to.(*types.Interface); isIface {
				if !pointerShaped(from) && !isInterface(from) && !pass.Suppressed("alloc", call.Pos()) {
					pass.Reportf(call.Pos(),
						"interface conversion of a non-pointer value in //fabric:hotpath function %s boxes (allocates)",
						fn.Name.Name)
				}
			}
		}
		return
	}

	obj := calleeObj(pass.TypesInfo, call)
	if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
		if !pass.Suppressed("alloc", call.Pos()) {
			pass.Reportf(call.Pos(),
				"fmt.%s in //fabric:hotpath function %s allocates (argument boxing + formatting)",
				obj.Name(), fn.Name.Name)
		}
		return
	}

	// append to a function-local slice.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 0 {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			if dst, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
				var dobj types.Object = pass.TypesInfo.Uses[dst]
				if dobj == nil {
					dobj = pass.TypesInfo.Defs[dst]
				}
				if dobj != nil && localSlices[dobj] && !pass.Suppressed("alloc", call.Pos()) {
					pass.Reportf(call.Pos(),
						"append to function-local slice %s in //fabric:hotpath function %s: the buffer is not reused "+
							"across calls, so steady-state growth allocates — hoist it to the receiver or a pool",
						dst.Name, fn.Name.Name)
				}
			}
		}
		return
	}

	// Implicit boxing at call boundaries: a non-pointer concrete value
	// passed where an interface is expected.
	sigTV, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := types.Unalias(sigTV.Type).Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if s, ok := types.Unalias(params.At(params.Len() - 1).Type()).Underlying().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, isIface := types.Unalias(pt).Underlying().(*types.Interface); !isIface {
			continue
		}
		argTV, ok := pass.TypesInfo.Types[arg]
		if !ok || argTV.Type == nil {
			continue
		}
		at := types.Unalias(argTV.Type).Underlying()
		if isInterface(at) || pointerShaped(at) || argTV.IsNil() {
			continue
		}
		if exempt(arg.Pos()) || pass.Suppressed("alloc", arg.Pos()) {
			continue
		}
		pass.Reportf(arg.Pos(),
			"non-pointer value boxed into interface parameter in //fabric:hotpath function %s (allocates); "+
				"pass a pointer or restructure the call", fn.Name.Name)
	}
}

func isStringByteConv(from, to types.Type) bool {
	return (isString(from) && isByteSlice(to)) || (isByteSlice(from) && isString(to))
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := types.Unalias(s.Elem()).Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func isInterface(t types.Type) bool {
	_, ok := t.(*types.Interface)
	return ok
}

// pointerShaped reports whether boxing t into an interface stores the
// value directly in the interface word (no allocation): pointers,
// channels, maps, funcs and unsafe pointers.
func pointerShaped(t types.Type) bool {
	switch t.(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}
