package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// FrameOwnershipAnalyzer enforces the pooled-frame borrow contract
// (DESIGN.md §3, netsim.Frame): a *netsim.Frame received as a function
// parameter is borrowed — valid only until the function returns. The
// analyzer checks every non-test function outside netsim itself that
// takes a *netsim.Frame parameter (OnFrame/HandleFrame handlers and the
// helpers they delegate to):
//
//   - the frame may not be stored into a field, slice element, map,
//     channel, or package variable, nor captured by a deferred or
//     scheduled closure, unless a Retain dominates the store — either
//     chained (`buf = append(buf, f.Retain())`, the idiomatic form) or
//     as a preceding statement;
//   - Retain/Release must balance per function body: a bare Retain
//     whose reference is neither stored nor Released before return
//     leaks a pooled buffer, and a Release without a dominating Retain
//     gives away the caller's reference — the classic recycled-buffer
//     stale read.
//
// The check is a lexical abstract interpretation (statements in source
// order carry an owned-reference count), which matches how the
// handlers are written; genuinely path-dependent ownership can be
// annotated //fabriclint:ownership <why>.
var FrameOwnershipAnalyzer = &Analyzer{
	Name: "frameownership",
	Doc: "borrowed *netsim.Frame parameters must not be stored or captured without a dominating Retain, " +
		"and Retain/Release must balance per function body",
	Run: runFrameOwnership,
}

func runFrameOwnership(pass *Pass) error {
	if pass.PkgBase() == "netsim" {
		// netsim implements the contract; its delivery machinery owns
		// the references it releases.
		return nil
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || fn.Type.Params == nil {
				continue
			}
			for _, field := range fn.Type.Params.List {
				for _, name := range field.Names {
					obj := pass.TypesInfo.Defs[name]
					if obj == nil || !isFramePtr(obj.Type()) {
						continue
					}
					checkBorrowedFrame(pass, fn, obj)
				}
			}
		}
	}
	return nil
}

// ownEvent is one ownership-relevant action on the borrowed frame, in
// source order.
type ownEvent struct {
	pos  token.Pos
	kind int // evRetain, evRetainStore, evStore, evRelease
	desc string
}

const (
	evRetain      = iota // bare f.Retain(): takes a reference this function must hand off
	evRetainStore        // f.Retain() chained into a store/argument: reference transferred
	evStore              // bare f stored into a field/slice/map/chan/closure
	evRelease            // f.Release()
)

// checkBorrowedFrame runs the lexical ownership simulation for one
// borrowed frame parameter.
func checkBorrowedFrame(pass *Pass, fn *ast.FuncDecl, frame types.Object) {
	isFrame := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && pass.TypesInfo.Uses[id] == frame
	}
	// retainCall returns the CallExpr when e is f.Retain().
	retainCall := func(e ast.Expr) *ast.CallExpr {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return nil
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Retain" || !isFrame(sel.X) {
			return nil
		}
		return call
	}
	// containsBareFrame reports whether e mentions f outside any
	// f.Retain() chain, returning the innermost offending position.
	var containsBareFrame func(e ast.Expr) (token.Pos, bool)
	containsBareFrame = func(e ast.Expr) (token.Pos, bool) {
		if retainCall(e) != nil {
			return token.NoPos, false
		}
		var found token.Pos
		ast.Inspect(e, func(n ast.Node) bool {
			if found != token.NoPos {
				return false
			}
			if expr, ok := n.(ast.Expr); ok {
				if retainCall(expr) != nil {
					return false // retained sub-expression: fine
				}
				if isFrame(expr) {
					found = expr.Pos()
					return false
				}
			}
			return true
		})
		return found, found != token.NoPos
	}

	var events []ownEvent
	handledRetains := map[*ast.CallExpr]bool{}

	// storeTargets classifies an assignment LHS: does writing to it
	// persist the value past this call frame?
	persists := func(lhs ast.Expr) bool {
		switch l := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[l]
			if obj == nil {
				obj = pass.TypesInfo.Defs[l]
			}
			if obj == nil || obj.Parent() == nil {
				return false
			}
			// Package-level variable: persists. Locals are aliases.
			return obj.Parent() == obj.Pkg().Scope()
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			return true
		}
		return false
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				var lhs ast.Expr
				if len(n.Lhs) == len(n.Rhs) {
					lhs = n.Lhs[i]
				} else if len(n.Lhs) > 0 {
					lhs = n.Lhs[0]
				}
				classifyStoredValue(pass, rhs, lhs, persists, isFrame, retainCall, &events, handledRetains, containsBareFrame)
			}
		case *ast.SendStmt:
			if pos, ok := containsBareFrame(n.Value); ok {
				events = append(events, ownEvent{pos: pos, kind: evStore, desc: "sent on a channel"})
			} else if rc := retainCall(n.Value); rc != nil {
				events = append(events, ownEvent{pos: rc.Pos(), kind: evRetainStore})
				handledRetains[rc] = true
			}
		case *ast.CallExpr:
			if rc := retainCall(n); rc == n && !handledRetains[n] {
				// Classified later by parent context; ExprStmt parents
				// mark it bare via the deferred sweep below.
				return true
			}
		case *ast.FuncLit:
			// A closure capturing the frame persists it when the
			// closure outlives the call: deferred, spawned, or handed
			// to a scheduler.
			if pos, ok := containsBareFrame(n); ok && deferredClosure(pass, fn.Body, n) {
				events = append(events, ownEvent{pos: pos, kind: evStore, desc: "captured by a deferred/scheduled closure"})
				return false // don't double-count inner mentions
			}
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if rc := retainCall(call); rc != nil {
					events = append(events, ownEvent{pos: rc.Pos(), kind: evRetain})
					handledRetains[rc] = true
					return false
				}
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Release" && isFrame(sel.X) {
					events = append(events, ownEvent{pos: call.Pos(), kind: evRelease})
					return false
				}
			}
		}
		return true
	})

	// Any Retain not consumed by a store/send context above is a bare
	// retain (e.g. `x := f.Retain()` handled in classifyStoredValue, so
	// what is left are argument positions: f.Retain() passed to a call
	// transfers the reference to the callee).
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, arg := range call.Args {
			if rc := retainCall(arg); rc != nil && !handledRetains[rc] {
				events = append(events, ownEvent{pos: rc.Pos(), kind: evRetainStore})
				handledRetains[rc] = true
			}
		}
		return true
	})

	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	owned := 0
	var lastRetain token.Pos
	for _, ev := range events {
		switch ev.kind {
		case evRetain:
			owned++
			lastRetain = ev.pos
		case evRetainStore:
			// Retain chained into a store or argument: self-balancing.
		case evStore:
			if owned > 0 {
				owned--
			} else if !pass.Suppressed("ownership", ev.pos) {
				pass.Reportf(ev.pos,
					"borrowed frame %s %s without a dominating Retain: the pooled buffer is recycled after "+
						"the handler returns, so the stored reference will observe a later frame's bytes "+
						"(Retain it — idiomatically, store f.Retain())",
					frame.Name(), ev.desc)
			}
		case evRelease:
			if owned > 0 {
				owned--
			} else if !pass.Suppressed("ownership", ev.pos) {
				pass.Reportf(ev.pos,
					"Release of borrowed frame %s without a matching Retain in %s: this gives away the "+
						"caller's reference and over-releases the pool",
					frame.Name(), fn.Name.Name)
			}
		}
	}
	if owned > 0 && !pass.Suppressed("ownership", lastRetain) {
		pass.Reportf(lastRetain,
			"frame %s Retained but neither stored nor Released before %s returns: the pooled buffer leaks",
			frame.Name(), fn.Name.Name)
	}
}

// classifyStoredValue records ownership events for one assignment pair.
func classifyStoredValue(
	pass *Pass,
	rhs, lhs ast.Expr,
	persists func(ast.Expr) bool,
	isFrame func(ast.Expr) bool,
	retainCall func(ast.Expr) *ast.CallExpr,
	events *[]ownEvent,
	handledRetains map[*ast.CallExpr]bool,
	containsBareFrame func(ast.Expr) (token.Pos, bool),
) {
	persistent := lhs != nil && persists(lhs)
	// append(...) persists into its destination slice; treat the append
	// result like its own first argument's storage class. The common
	// `x.buffered = append(x.buffered, f)` is caught by the field LHS
	// already; `local = append(local, f)` genuinely borrows only until
	// return unless local itself escapes, which is beyond this check.
	if rc := retainCall(rhs); rc != nil {
		// x = f.Retain(): a local alias transfers nothing we can track;
		// a persistent store transfers the reference. Both balance.
		*events = append(*events, ownEvent{pos: rc.Pos(), kind: evRetainStore})
		handledRetains[rc] = true
		return
	}
	if pos, ok := containsBareFrame(rhs); ok {
		if retainPos := nestedRetain(rhs, retainCall); retainPos != nil {
			*events = append(*events, ownEvent{pos: retainPos.Pos(), kind: evRetainStore})
			handledRetains[retainPos] = true
			return
		}
		if persistent {
			*events = append(*events, ownEvent{pos: pos, kind: evStore, desc: storeDesc(lhs)})
		}
		// Stores into plain locals are aliases within the borrow
		// window; allowed.
	}
}

// nestedRetain finds an f.Retain() call nested anywhere in e (e.g. as
// an append argument), which makes the whole stored expression a
// retained store.
func nestedRetain(e ast.Expr, retainCall func(ast.Expr) *ast.CallExpr) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(e, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if expr, ok := n.(ast.Expr); ok {
			if rc := retainCall(expr); rc != nil {
				found = rc
				return false
			}
		}
		return true
	})
	return found
}

func storeDesc(lhs ast.Expr) string {
	switch ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		return "stored into a field"
	case *ast.IndexExpr:
		return "stored into a slice or map element"
	case *ast.StarExpr:
		return "stored through a pointer"
	}
	return "stored into a package variable"
}

// deferredClosure reports whether lit escapes the call frame: it is the
// subject of a defer/go statement or an argument to a scheduling call
// (After/At/Schedule*/AfterFunc), which runs it after the borrow window
// has closed.
func deferredClosure(pass *Pass, body *ast.BlockStmt, lit *ast.FuncLit) bool {
	deferred := false
	ast.Inspect(body, func(n ast.Node) bool {
		if deferred {
			return false
		}
		switch n := n.(type) {
		case *ast.DeferStmt:
			if callUsesLit(n.Call, lit) {
				deferred = true
			}
		case *ast.GoStmt:
			if callUsesLit(n.Call, lit) {
				deferred = true
			}
		case *ast.CallExpr:
			name, _ := calleeName(pass.TypesInfo, n)
			switch name {
			case "After", "At", "AfterFunc", "Schedule", "ScheduleRunner", "ScheduleKeyedFunc":
				for _, arg := range n.Args {
					if ast.Unparen(arg) == lit {
						deferred = true
					}
				}
			}
		}
		return true
	})
	return deferred
}

func callUsesLit(call *ast.CallExpr, lit *ast.FuncLit) bool {
	if ast.Unparen(call.Fun) == lit {
		return true
	}
	for _, arg := range call.Args {
		if ast.Unparen(arg) == lit {
			return true
		}
	}
	return false
}
