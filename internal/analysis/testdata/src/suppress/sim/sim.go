// Package sim (under suppress/) carries a malformed suppression: the
// comment has no justification, so the analyzer reports the comment
// itself instead of the suppressed diagnostic. Checked by a direct
// diagnostics test — a want comment cannot share the suppression's line.
package sim

import "time"

func bad() {
	//fabriclint:wallclock
	_ = time.Now()
}
