// Package strictspec exercises the strictspec analyzer: a package that
// registers protocols/topologies must decode spec JSON strictly, into
// fully json-tagged structs.
package strictspec

import (
	"bytes"
	"encoding/json"

	"fabric"
	"topo"
)

type looseConfig struct {
	LockTimeout int  `json:"lock_timeout"`
	Proxy       bool // want "no json tag"
}

type taggedConfig struct {
	LockTimeout int  `json:"lock_timeout"`
	Proxy       bool `json:"proxy"`
}

type badSpec struct {
	Nodes int // want "no json tag"
}

type goodSpec struct {
	Nodes int `json:"nodes"`
}

type legacyConfig struct {
	//fabriclint:spec frozen pre-tagging wire format; key equals the field name by construction
	Count int
}

func strictUnmarshal(raw []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func register() {
	topo.RegisterProtocol(topo.Definition{
		Name:      "loose",
		NewConfig: func() any { return new(taggedConfig) },
		DecodeConfig: func(raw []byte) (any, error) {
			var c looseConfig
			if err := json.Unmarshal(raw, &c); err != nil { // want "accepts unknown fields"
				return nil, err
			}
			return &c, nil
		},
	})
	fabric.RegisterTopology("bad", func(opts int, t badSpec) int { return 0 })
	fabric.RegisterTopology("good", func(opts int, t goodSpec) int { return 0 })
}

func laxDecode(raw []byte) (*taggedConfig, error) {
	var c taggedConfig
	dec := json.NewDecoder(bytes.NewReader(raw))
	if err := dec.Decode(&c); err != nil { // want "without DisallowUnknownFields"
		return nil, err
	}
	return &c, nil
}

func strictDecode(raw []byte) (*taggedConfig, error) {
	var c taggedConfig
	if err := strictUnmarshal(raw, &c); err != nil {
		return nil, err
	}
	return &c, nil
}

func legacyDecode(raw []byte) (*legacyConfig, error) {
	var c legacyConfig
	err := strictUnmarshal(raw, &c)
	return &c, err
}

func scalarOK(raw []byte) (string, error) {
	// Non-struct targets (custom scalar codecs) are outside the contract.
	var s string
	err := json.Unmarshal(raw, &s)
	return s, err
}
