// Package sim is a determinism fixture: its import-path base matches a
// trace-affecting package, so every rule of the determinism analyzer
// applies. The want comments pin the exact diagnostics.
package sim

import (
	"math/rand"
	"time"
)

// Sched stands in for the engine's scheduling surface.
type Sched struct{}

func (s *Sched) Schedule(k int) {}

func badClock() {
	_ = time.Now() // want "time.Now in trace-affecting package sim"
}

func okClock() {
	_ = time.Now() //fabriclint:wallclock feeds a latency gauge only, never event order
}

func badRand() int {
	return rand.Intn(10) // want "process-global random source"
}

func goodRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func badSweep(s *Sched, m map[int]int) {
	for k := range m { // want "map iteration order flows into Schedule"
		s.Schedule(k)
	}
}

func okReduce(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v // order-independent: reductions commute
	}
	return total
}

func okSorted(s *Sched, keys []int) {
	for _, k := range keys {
		s.Schedule(k)
	}
}

func badSpawn() {
	go func() {}() // want "goroutine spawned outside the blessed coordinator"
}

func okSpawn() {
	//fabriclint:nondeterministic joins before any event executes; cannot reorder the trace
	go func() {}()
}
