// Package hotpath exercises the hotpath analyzer: functions annotated
// //fabric:hotpath must avoid the usual allocation constructs.
package hotpath

import "fmt"

type ring struct {
	buf []int
	msg string
}

func sink(v any) {}

//fabric:hotpath
func (r *ring) badClosure(k int) func() int {
	return func() int { return k } // want "capturing func literals allocate"
}

//fabric:hotpath
func (r *ring) badFmt(k int) {
	r.msg = fmt.Sprintf("k=%d", k) // want "fmt.Sprintf .* allocates"
}

//fabric:hotpath
func badConcat(a, b string) string {
	return a + b // want "string concatenation"
}

//fabric:hotpath
func badAppend(vals []int) []int {
	out := make([]int, 0, len(vals))
	for _, v := range vals {
		out = append(out, v) // want "append to function-local slice out"
	}
	return out
}

//fabric:hotpath
func (r *ring) goodReuse(vals []int) {
	r.buf = r.buf[:0] // receiver-owned buffer: reused across calls
	for _, v := range vals {
		r.buf = append(r.buf, v)
	}
}

//fabric:hotpath
func badBox(k int) {
	sink(k) // want "boxed into interface parameter"
}

//fabric:hotpath
func okBoxPtr(r *ring) {
	sink(r) // pointers fit the interface word: no allocation
}

//fabric:hotpath
func badConv(b []byte) string {
	return string(b) // want "copies and allocates"
}

//fabric:hotpath
func okPanic(k int) {
	if k < 0 {
		panic(fmt.Sprintf("negative %d", k)) // dying words may format
	}
}

//fabric:hotpath
func okSuppressed(k int) string {
	return fmt.Sprintf("%d", k) //fabriclint:alloc cold slow path; AllocsPerRun gate covers the hot one
}

func notHot(k int) string {
	return fmt.Sprintf("%d", k) // unannotated: out of scope
}
