// Package fabric is a fixture stand-in for repro/pkg/fabric's topology
// registry surface.
package fabric

// RegisterTopology mirrors the real registration entry point. The
// builder is typed any so fixtures can pass literals of any signature;
// the analyzer reads the literal's own type.
func RegisterTopology(name string, build any) {}
