// Package frameown exercises the frameownership analyzer: borrowed
// *netsim.Frame parameters must not outlive the call without a
// dominating Retain, and Retain/Release must balance.
package frameown

import "netsim"

type handler struct {
	last *netsim.Frame
	buf  []*netsim.Frame
	ch   chan *netsim.Frame
}

func (h *handler) OnFrame(f *netsim.Frame) {
	h.last = f // want "without a dominating Retain"
}

func (h *handler) storeRetained(f *netsim.Frame) {
	h.buf = append(h.buf, f.Retain()) // the idiomatic chained form
}

func (h *handler) retainThenStore(f *netsim.Frame) {
	f.Retain()
	h.last = f
}

func (h *handler) releaseBorrow(f *netsim.Frame) {
	f.Release() // want "gives away the caller's reference"
}

func (h *handler) leakRetain(f *netsim.Frame) {
	f.Retain() // want "pooled buffer leaks"
}

func (h *handler) sendBorrow(f *netsim.Frame) {
	h.ch <- f // want "sent on a channel"
}

func (h *handler) sendRetained(f *netsim.Frame) {
	h.ch <- f.Retain()
}

func (h *handler) deferCapture(f *netsim.Frame) {
	defer func() { h.last = f }() // want "captured by a deferred/scheduled closure"
}

func (h *handler) inlineClosure(f *netsim.Frame) bool {
	// A closure that runs inside the borrow window is an alias, not an
	// escape.
	valid := func() bool { return f != nil }
	return valid()
}

func (h *handler) localAlias(f *netsim.Frame) *netsim.Frame {
	g := f // locals are aliases within the borrow window
	return g
}

func (h *handler) stashSuppressed(f *netsim.Frame) {
	//fabriclint:ownership copied out synchronously by flush before this handler returns
	h.last = f
}
