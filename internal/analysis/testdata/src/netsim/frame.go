// Package netsim is a fixture stand-in for repro/internal/netsim: just
// enough surface for the frameownership fixtures (a pooled Frame with
// Retain/Release), plus the blessed coordinator file for the
// determinism goroutine rule.
package netsim

// Frame mimics the pooled, refcounted frame.
type Frame struct{ refs int }

// Retain takes a reference and returns the frame for chaining.
func (f *Frame) Retain() *Frame { f.refs++; return f }

// Release drops a reference.
func (f *Frame) Release() { f.refs-- }
