package netsim

// startWorkers spawns the worker pool. netsim/shard.go is the blessed
// coordinator file, so these goroutines need no suppression comment.
func startWorkers(n int) {
	for i := 0; i < n; i++ {
		go func() {}()
	}
}
