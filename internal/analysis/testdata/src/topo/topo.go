// Package topo is a fixture stand-in for repro/internal/topo's registry
// surface: just enough for the strictspec fixtures to register a
// protocol.
package topo

// Definition mirrors the registry entry shape.
type Definition struct {
	Name         string
	NewConfig    func() any
	DecodeConfig func(raw []byte) (any, error)
}

// RegisterProtocol mirrors the real registration entry point.
func RegisterProtocol(def Definition) {}
