package analysis_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis"
)

// TestTreeIsClean runs the full fabricvet suite over the repository and
// requires zero diagnostics: the contracts hold on the shipped tree,
// and every suppression carries a justification. This is the tier-1
// face of the CI lint job — a contract regression fails `go test ./...`
// before it ever reaches the vettool.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root := wd
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			t.Fatalf("no go.mod above %s", wd)
		}
		root = parent
	}
	pkgs, err := analysis.Load(root, "./...")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	diags := analysis.Run(analysis.All(), pkgs)
	for _, d := range diags {
		pos := pkgs[0].Fset.Position(d.Pos)
		rel, relErr := filepath.Rel(root, pos.Filename)
		if relErr != nil {
			rel = pos.Filename
		}
		t.Errorf("%s:%d:%d: [%s] %s", rel, pos.Line, pos.Column, d.Analyzer, d.Message)
	}
}
