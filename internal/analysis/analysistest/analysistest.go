// Package analysistest runs an analyzer over a fixture package under
// testdata/src and checks its diagnostics against `// want "regexp"`
// comments, mirroring golang.org/x/tools/go/analysis/analysistest so
// the fixtures stay portable to the real framework.
//
// A want comment names, by position, every diagnostic expected on its
// line; multiple quoted regexps mean multiple diagnostics. Every
// diagnostic must be wanted and every want must be matched — unmatched
// in either direction fails the test.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"

	"repro/internal/analysis"
)

// Run loads the fixture package rooted at testdata/src/<path> (relative
// to the calling test's directory) and runs the analyzers over it,
// comparing diagnostics to want comments.
func Run(t *testing.T, path string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	moduleDir := findModuleRoot(t, wd)
	srcRoot := filepath.Join(wd, "testdata", "src")
	pkg, err := analysis.LoadFixtureDir(moduleDir, srcRoot, path)
	if err != nil {
		t.Fatalf("load fixture %s: %v", path, err)
	}

	diags := analysis.Run(analyzers, []*analysis.Package{pkg})
	wants := collectWants(t, pkg)

	matched := make([]bool, len(wants))
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s:%d:%d: unexpected diagnostic [%s]: %s",
				filepath.Base(pos.Filename), pos.Line, pos.Column, d.Analyzer, d.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none",
				filepath.Base(w.file), w.line, w.re)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)`)
var quotedRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// collectWants parses every `// want "re" ["re"...]` comment in the
// fixture. A want comment refers to its own line.
func collectWants(t *testing.T, pkg *analysis.Package) []want {
	t.Helper()
	var wants []want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				qs := quotedRE.FindAllString(m[1], -1)
				if len(qs) == 0 {
					t.Fatalf("%s:%d: malformed want comment: %s", pos.Filename, pos.Line, c.Text)
				}
				for _, q := range qs {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// Diagnostics loads and runs like Run but returns the raw diagnostics,
// for tests asserting on messages the want grammar cannot express (e.g.
// malformed suppression comments, which cannot share a line with a want
// comment).
func Diagnostics(t *testing.T, path string, analyzers ...*analysis.Analyzer) []string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	moduleDir := findModuleRoot(t, wd)
	pkg, err := analysis.LoadFixtureDir(moduleDir, filepath.Join(wd, "testdata", "src"), path)
	if err != nil {
		t.Fatalf("load fixture %s: %v", path, err)
	}
	var out []string
	for _, d := range analysis.Run(analyzers, []*analysis.Package{pkg}) {
		pos := pkg.Fset.Position(d.Pos)
		out = append(out, fmt.Sprintf("%s:%d: [%s] %s", filepath.Base(pos.Filename), pos.Line, d.Analyzer, d.Message))
	}
	return out
}

func findModuleRoot(t *testing.T, dir string) string {
	t.Helper()
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			t.Fatalf("no go.mod above %s", dir)
		}
		d = parent
	}
}
