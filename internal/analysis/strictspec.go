package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
)

// StrictSpecAnalyzer enforces the Spec codec contract (DESIGN.md §9) at
// registration sites. The fabric's one wire format is strict JSON —
// unknown fields are rejected so a typo'd spec key fails loudly instead
// of silently running the default experiment. Extensions plug in via
// topo.RegisterProtocol / fabric.RegisterTopology, which places two
// obligations on the registering package:
//
//   - every struct it decodes spec JSON into (the shadow *JSON configs,
//     a topology builder's spec parameter) must carry a json tag on
//     every exported field, so the wire name is declared rather than
//     inherited from the Go identifier and renames cannot silently
//     change the spec format;
//   - the decode itself must go through a strict decoder
//     (json.NewDecoder + DisallowUnknownFields, usually via a
//     strictUnmarshal helper) — plain json.Unmarshal into a config
//     struct accepts unknown keys and breaks the contract.
//
// Scope: packages that call RegisterProtocol or RegisterTopology.
// Decodes into non-struct targets (scalars in custom UnmarshalJSON
// methods, the SetOption merge map) are outside the contract and pass.
// Suppress with //fabriclint:spec <why>.
var StrictSpecAnalyzer = &Analyzer{
	Name: "strictspec",
	Doc: "packages registering protocols/topologies must decode spec JSON via a strict decoder " +
		"into fully json-tagged structs",
	Run: runStrictSpec,
}

func runStrictSpec(pass *Pass) error {
	if !registersExtensions(pass) {
		return nil
	}
	strictWrappers := strictWrapperFuncs(pass)
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkSpecFunc(pass, fn, strictWrappers)
		}
	}
	return nil
}

// isRegisterCall recognises topo.RegisterProtocol / fabric.RegisterTopology
// (and same-package calls inside topo/fabric themselves), matching the
// defining package by base name so fixtures exercise the real predicate.
func isRegisterCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	obj := calleeObj(pass.TypesInfo, call)
	if obj == nil {
		return "", false
	}
	name := obj.Name()
	base := pkgBaseOf(obj)
	if name == "RegisterProtocol" && (base == "topo" || base == "fabric") {
		return name, true
	}
	if name == "RegisterTopology" && base == "fabric" {
		return name, true
	}
	return "", false
}

func registersExtensions(pass *Pass) bool {
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		found := false
		ast.Inspect(file, func(n ast.Node) bool {
			if found {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if _, ok := isRegisterCall(pass, call); ok {
					found = true
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// strictWrapperFuncs collects package-level functions whose body calls
// DisallowUnknownFields — strictUnmarshal-style helpers. A decode routed
// through one inherits its strictness, and its pointer-to-struct
// arguments are decode targets for the tag check.
func strictWrapperFuncs(pass *Pass) map[types.Object]bool {
	wrappers := map[types.Object]bool{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if bodyCallsDisallowUnknown(fn.Body) {
				if obj := pass.TypesInfo.Defs[fn.Name]; obj != nil {
					wrappers[obj] = true
				}
			}
		}
	}
	return wrappers
}

func bodyCallsDisallowUnknown(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "DisallowUnknownFields" {
				found = true
			}
		}
		return true
	})
	return found
}

func checkSpecFunc(pass *Pass, fn *ast.FuncDecl, strictWrappers map[types.Object]bool) {
	// Decoder variables made strict somewhere in this function.
	strictDecoders := map[types.Object]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "DisallowUnknownFields" {
			return true
		}
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil {
				strictDecoders[obj] = true
			}
		}
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := calleeObj(pass.TypesInfo, call)

		// json.Unmarshal into a struct: inherently lax.
		if isPkgFunc(obj, "encoding/json", "Unmarshal") && len(call.Args) == 2 {
			if st, _ := structTarget(pass, call.Args[1]); st != nil {
				if !pass.Suppressed("spec", call.Pos()) {
					pass.Reportf(call.Pos(),
						"json.Unmarshal into a config struct in a registering package accepts unknown fields: "+
							"decode through a strict decoder (json.NewDecoder + DisallowUnknownFields)")
				}
				checkStructTags(pass, call.Pos(), st, structTargetName(call.Args[1]))
			}
			return true
		}

		// (*json.Decoder).Decode: strict only if the decoder variable was
		// DisallowUnknownFields'd in this function.
		if obj != nil && obj.Name() == "Decode" {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && isJSONDecoder(pass.TypesInfo, sel.X) {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
					dobj := pass.TypesInfo.Uses[id]
					if dobj != nil && !strictDecoders[dobj] && !pass.Suppressed("spec", call.Pos()) {
						pass.Reportf(call.Pos(),
							"Decode on a json.Decoder without DisallowUnknownFields in a registering package: "+
								"unknown spec keys must be rejected, not dropped")
					}
				}
				if len(call.Args) == 1 {
					if st, _ := structTarget(pass, call.Args[0]); st != nil {
						checkStructTags(pass, call.Pos(), st, structTargetName(call.Args[0]))
					}
				}
			}
			return true
		}

		// Same-package strict wrapper (strictUnmarshal): its
		// pointer-to-struct arguments are decode targets.
		if obj != nil && strictWrappers[obj] {
			for _, arg := range call.Args {
				if st, _ := structTarget(pass, arg); st != nil {
					checkStructTags(pass, call.Pos(), st, structTargetName(arg))
				}
			}
			return true
		}

		// RegisterTopology: the builder's spec parameter is decoded from
		// the Spec file, so its struct type must be fully tagged.
		if name, ok := isRegisterCall(pass, call); ok && name == "RegisterTopology" && len(call.Args) == 2 {
			if tv, ok := pass.TypesInfo.Types[call.Args[1]]; ok {
				if sig, ok := types.Unalias(tv.Type).Underlying().(*types.Signature); ok && sig.Params().Len() >= 2 {
					pt := sig.Params().At(1).Type()
					if st, ok := types.Unalias(pt).Underlying().(*types.Struct); ok {
						checkStructTags(pass, call.Pos(), st, typeName(pt))
					}
				}
			}
		}
		return true
	})
}

// isJSONDecoder reports whether e has type *encoding/json.Decoder (or a
// fixture stand-in: *Decoder from a package with base name "json").
func isJSONDecoder(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	n := namedOrNil(tv.Type)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == "Decoder" && pkgBaseOf(n.Obj()) == "json"
}

// structTarget resolves a decode-target argument (&x, or a
// pointer-to-struct expression) to the struct type being populated.
// Named types with a custom UnmarshalJSON are their own codec and are
// skipped — the contract applies to the default field-wise decode.
func structTarget(pass *Pass, arg ast.Expr) (*types.Struct, types.Type) {
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok || tv.Type == nil {
		return nil, nil
	}
	t := types.Unalias(tv.Type)
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return nil, nil
	}
	elem := types.Unalias(ptr.Elem())
	if hasCustomUnmarshal(elem) {
		return nil, nil
	}
	st, ok := elem.Underlying().(*types.Struct)
	if !ok {
		return nil, nil
	}
	return st, elem
}

func hasCustomUnmarshal(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	for _, typ := range []types.Type{named, types.NewPointer(named)} {
		if m, _, _ := types.LookupFieldOrMethod(typ, true, named.Obj().Pkg(), "UnmarshalJSON"); m != nil {
			return true
		}
	}
	return false
}

func structTargetName(arg ast.Expr) string {
	if un, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && un.Op == token.AND {
		if id, ok := ast.Unparen(un.X).(*ast.Ident); ok {
			return id.Name
		}
	}
	return "target"
}

func typeName(t types.Type) string {
	if n := namedOrNil(t); n != nil {
		return n.Obj().Name()
	}
	return "spec"
}

// checkStructTags reports every exported, non-embedded field of st that
// lacks a json tag. Fields with positions in the current fset are
// reported in place; imported structs fall back to the decode site.
func checkStructTags(pass *Pass, callPos token.Pos, st *types.Struct, what string) {
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() || f.Embedded() {
			continue
		}
		// Custom-codec field types (e.g. topo.Duration) still need a tag;
		// the tag names the key, the codec shapes the value.
		if reflect.StructTag(st.Tag(i)).Get("json") != "" {
			continue
		}
		pos := f.Pos()
		if pos == token.NoPos || pass.Fset.File(pos) == nil {
			pos = callPos
		}
		if pass.Suppressed("spec", pos) {
			continue
		}
		pass.Reportf(pos,
			"exported field %s of spec-decoded struct %s has no json tag: the wire name must be declared, "+
				"not inherited from the Go identifier (renames would silently change the spec format)",
			f.Name(), what)
	}
}
