package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// DeterminismAnalyzer enforces the reproduction's headline property at
// compile time: same seed ⇒ byte-identical traces at every shard count
// (DESIGN.md §6). The paper's discovery race (PAPER.md §2) only
// reproduces when event order is exact, so inside trace-affecting
// packages the analyzer forbids the four ways wall-clock or scheduler
// nondeterminism classically leaks into a discrete-event core:
//
//  1. time.Now — virtual time comes from the engine; a wall clock read
//     in protocol or engine code silently couples traces to host speed.
//     Suppress with //fabriclint:wallclock <why> (timing *stats* that
//     never feed event order are the legitimate use).
//  2. math/rand global functions (rand.Intn, rand.Shuffle, ...) — the
//     process-wide source is shared across shards and seeded who knows
//     where. Per-entity seeded *rand.Rand streams (rand.New) are the
//     blessed pattern and pass.
//  3. map range statements whose body reaches an order-sensitive sink
//     (scheduling, frame emission, tap/fingerprint recording): Go
//     randomizes map iteration order per run, so any event or trace
//     byte produced inside such a loop varies run to run. Sweeps and
//     snapshots whose effect is order-independent pass untouched.
//  4. go statements outside the blessed coordinator file — the sharded
//     engine's one sanctioned source of parallelism (netsim/shard.go).
//     Anything else reintroduces scheduling races the coordinator's
//     barrier protocol exists to prevent.
//
// Scope: the packages whose code can affect a trace. Matching is by
// package-path base so the analysistest fixtures exercise the real
// predicate.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc: "forbid wall clocks, global rand, order-sensitive map iteration and stray goroutines " +
		"in trace-affecting packages (same seed must mean byte-identical traces)",
	Run: runDeterminism,
}

// tracePkgBases are the trace-affecting packages, keyed by import-path
// base name: the event engine, the network simulator, every protocol
// implementation, topology/partitioning, the scenario engine, hosts,
// the chassis, the timed experiments and the live serving loop.
var tracePkgBases = map[string]bool{
	"sim": true, "netsim": true, "core": true, "flowpath": true,
	"topo": true, "scenario": true, "host": true, "bridge": true,
	"experiments": true, "serve": true,
}

// blessedGoFiles are the files allowed to spawn goroutines without a
// suppression comment: the shard coordinator's worker pool is the
// parallel engine itself.
var blessedGoFiles = map[string]bool{
	"netsim/shard.go": true,
}

// orderSinkNames are method/function names through which an iteration
// order becomes an event order or a trace byte: scheduling primitives,
// frame transmission and flooding, tap emission and fingerprinting.
var orderSinkNames = map[string]bool{
	"Schedule": true, "ScheduleRunner": true, "ScheduleKeyed": true,
	"ScheduleKeyedFunc": true, "At": true, "After": true,
	"Send": true, "SendFrame": true, "FloodExcept": true,
	"FloodBytesExcept": true, "emit": true, "Emit": true,
}

func runDeterminism(pass *Pass) error {
	if !tracePkgBases[pass.PkgBase()] {
		return nil
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDeterminismCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			case *ast.GoStmt:
				checkGoStmt(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkDeterminismCall(pass *Pass, call *ast.CallExpr) {
	obj := calleeObj(pass.TypesInfo, call)
	if obj == nil || obj.Pkg() == nil {
		return
	}
	if isPkgFunc(obj, "time", "Now") {
		if !pass.Suppressed("wallclock", call.Pos()) {
			pass.Reportf(call.Pos(),
				"time.Now in trace-affecting package %s: virtual time comes from the engine; "+
					"use sim clocks, or annotate //fabriclint:wallclock <why> for timing stats that never feed event order",
				pass.PkgBase())
		}
		return
	}
	if path := obj.Pkg().Path(); path == "math/rand" || path == "math/rand/v2" {
		// Only the package-level convenience functions draw from the
		// shared global source; constructors and methods on explicit
		// per-entity sources are the blessed pattern.
		if _, isFunc := obj.(*types.Func); !isFunc {
			return
		}
		if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
			return // method on *rand.Rand etc.
		}
		switch obj.Name() {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			return
		}
		if !pass.Suppressed("nondeterministic", call.Pos()) {
			pass.Reportf(call.Pos(),
				"%s.%s draws from the process-global random source: use a per-entity seeded *rand.Rand "+
					"(rand.New(rand.NewSource(seed))) so draws are a function of one entity's history",
				path, obj.Name())
		}
	}
}

// checkMapRange flags `for ... range m` over a map when the loop body
// lexically reaches an order-sensitive sink. Go randomizes map
// iteration, so everything such a loop schedules or emits lands in a
// different order every run.
func checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := types.Unalias(tv.Type).Underlying().(*types.Map); !isMap {
		return
	}
	var sink *ast.CallExpr
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if sink != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, obj := calleeName(pass.TypesInfo, call); orderSinkNames[name] || strings.Contains(name, "Fingerprint") {
			// time.Time.After etc. are value methods, not schedulers.
			if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "time" {
				return true
			}
			sink = call
			return false
		}
		return true
	})
	if sink == nil {
		return
	}
	if pass.Suppressed("nondeterministic", rng.Pos()) {
		return
	}
	name, _ := calleeName(pass.TypesInfo, sink)
	pass.Reportf(rng.Pos(),
		"map iteration order flows into %s: Go randomizes map range order, so scheduled events and trace bytes "+
			"produced here differ run to run; iterate a sorted key slice, or annotate //fabriclint:nondeterministic <why>",
		name)
}

func calleeName(info *types.Info, call *ast.CallExpr) (string, types.Object) {
	obj := calleeObj(info, call)
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name, obj
	case *ast.SelectorExpr:
		return fn.Sel.Name, obj
	}
	return "", obj
}

func checkGoStmt(pass *Pass, g *ast.GoStmt) {
	position := pass.Fset.Position(g.Pos())
	key := filepath.Base(filepath.Dir(position.Filename)) + "/" + filepath.Base(position.Filename)
	if blessedGoFiles[key] {
		return
	}
	if pass.Suppressed("nondeterministic", g.Pos()) {
		return
	}
	pass.Reportf(g.Pos(),
		"goroutine spawned outside the blessed coordinator (netsim/shard.go): parallelism in trace-affecting "+
			"code must go through the shard barrier protocol, or be annotated //fabriclint:nondeterministic <why>")
}
