// Package analysis is the fabric's static-analysis suite: four analyzers
// that machine-check the contracts the rest of the repository only
// enforces at runtime — determinism of trace-affecting code (DESIGN.md
// §6), the pooled-frame borrow/Retain ownership contract (§3), the
// zero-allocation hot-path budget (§11), and the strict Spec codec rule
// for registry extensions (§9). See DESIGN.md §14 for each analyzer's
// exact contract and the suppression-comment grammar.
//
// The package deliberately reimplements the small slice of the
// golang.org/x/tools/go/analysis surface it needs (Analyzer, Pass,
// Diagnostic) on the standard library alone: the toolchain image builds
// hermetically, and the suite must be runnable anywhere the repo
// compiles — `go vet -vettool=$(fabricvet)` in CI, `go test ./...` via
// the tree gate in tree_test.go, and standalone `fabricvet ./...`.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named static check, shaped like
// golang.org/x/tools/go/analysis.Analyzer so the suite can migrate to
// the real framework without touching the analyzer bodies.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags.
	Name string
	// Doc is the one-paragraph contract statement shown by -help.
	Doc string
	// Run executes the analyzer over one package.
	Run func(*Pass) error
}

// Pass carries one package's parsed and type-checked state to an
// analyzer, plus the Report sink for diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)

	suppressions map[string]map[int][]suppression // filename → line → comments
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// PkgBase returns the last element of the package's import path — the
// key the analyzers scope themselves by, so the analysistest fixture
// packages (import path "sim", "netsim", ...) exercise exactly the same
// matching as the real tree ("repro/internal/sim").
func (p *Pass) PkgBase() string {
	path := p.Pkg.Path()
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// IsTestFile reports whether pos is inside a _test.go file. The
// contracts guard shipped fabric code; tests are covered by the runtime
// gates (differential traces, AllocsPerRun, the race suite) and freely
// use wall clocks and goroutines.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Run executes the analyzers over pkgs and returns every diagnostic,
// sorted by position.
func Run(analyzers []*Analyzer, pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Report:    func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				diags = append(diags, Diagnostic{
					Pos:      token.NoPos,
					Analyzer: a.Name,
					Message:  fmt.Sprintf("internal error: %v", err),
				})
			}
		}
		sortDiags(pkg.Fset, diags)
	}
	return diags
}

func sortDiags(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
}

// All returns the full fabricvet suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		FrameOwnershipAnalyzer,
		HotPathAnalyzer,
		StrictSpecAnalyzer,
	}
}

// --- small shared AST/type helpers -------------------------------------

// calleeObj resolves a call expression to the types.Object of its callee
// (a *types.Func for both plain calls and method calls), or nil.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			return sel.Obj()
		}
		return info.Uses[fn.Sel] // package-qualified call
	}
	return nil
}

// isPkgFunc reports whether obj is the package-level function pkgPath.name,
// matching pkgPath by full path ("time") — used for std packages.
func isPkgFunc(obj types.Object, pkgPath, name string) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// pkgBaseOf returns the last path element of obj's defining package.
func pkgBaseOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	path := obj.Pkg().Path()
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// namedOrNil unwraps t to its *types.Named core, looking through
// pointers and aliases.
func namedOrNil(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// isFramePtr reports whether t is *Frame from a package whose base name
// is netsim (the real repro/internal/netsim or a fixture stand-in).
func isFramePtr(t types.Type) bool {
	p, ok := types.Unalias(t).(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := types.Unalias(p.Elem()).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Name() != "Frame" || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "netsim" || strings.HasSuffix(path, "/netsim")
}

// enclosingFuncDoc finds the doc comment of the function declaration a
// walk is currently inside; used by the hotpath annotation lookup.
func funcHasMarker(decl *ast.FuncDecl, marker string) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), marker) {
			return true
		}
	}
	return false
}

// insidePanicArg reports whether node lies inside an argument of a
// panic(...) call within body. Allocation on a failing path that ends
// the process is not a hot-path violation: the panic formats once and
// dies, so fmt/concat there is deliberate and free at steady state.
func panicArgRanges(body ast.Node) [][2]token.Pos {
	var ranges [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
			for _, arg := range call.Args {
				ranges = append(ranges, [2]token.Pos{arg.Pos(), arg.End()})
			}
		}
		return true
	})
	return ranges
}

func inRanges(ranges [][2]token.Pos, pos token.Pos) bool {
	for _, r := range ranges {
		if pos >= r[0] && pos < r[1] {
			return true
		}
	}
	return false
}
