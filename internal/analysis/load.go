package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	DepOnly    bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// newInfo allocates the types.Info maps every analyzer relies on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// Load lists, parses and type-checks the packages matching patterns
// (relative to dir), resolving imports through the build cache's export
// data — `go list -export` compiles dependencies as needed, so the
// loader works wherever `go build` does, with no extra toolchain
// dependencies. Test files are excluded by construction (GoFiles only):
// the contracts guard shipped code, and `go vet -vettool` covers test
// variants separately through its own per-unit configs.
func Load(dir string, patterns ...string) ([]*Package, error) {
	exports, targets, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, gf := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, gf), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parse %s: %w", gf, err)
			}
			files = append(files, f)
		}
		info := newInfo()
		conf := types.Config{Importer: imp, FakeImportC: true}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{PkgPath: t.ImportPath, Fset: fset, Files: files, Types: tpkg, Info: info})
	}
	return pkgs, nil
}

// goList runs `go list -export -deps` and splits the result into the
// export-data index (every package in the closure) and the analysis
// targets (the packages the patterns named directly).
func goList(dir string, patterns []string) (map[string]string, []listedPkg, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,DepOnly,GoFiles,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list: %v: %s", err, stderr.String())
	}
	exports := map[string]string{}
	var targets []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list decode: %w", err)
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("go list %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	return exports, targets, nil
}

// exportImporter resolves imports from a path→export-file map via the
// standard library's gc export-data reader.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// moduleExports returns the export-data index for the whole module
// rooted at dir (`./...` plus its std dependencies). The fixture loader
// uses it so analysistest packages may import any std or repro package
// the repository itself uses.
func moduleExports(dir string) (map[string]string, error) {
	exports, _, err := goList(dir, []string{"./..."})
	return exports, err
}

// LoadFixtureDir parses and type-checks one analysistest fixture package
// rooted at srcRoot/<path>, GOPATH-style: imports resolve first against
// sibling fixture directories under srcRoot (type-checked from source,
// recursively), then against the surrounding module's build closure.
func LoadFixtureDir(moduleDir, srcRoot, path string) (*Package, error) {
	exports, err := moduleExports(moduleDir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	cache := map[string]*types.Package{}
	var imp importerFunc
	fallback := exportImporter(fset, exports)
	imp = func(ipath string) (*types.Package, error) {
		if tp, ok := cache[ipath]; ok {
			return tp, nil
		}
		if fixDir := filepath.Join(srcRoot, ipath); dirExists(fixDir) {
			pkg, err := checkFixture(fset, imp, ipath, fixDir)
			if err != nil {
				return nil, err
			}
			cache[ipath] = pkg.Types
			return pkg.Types, nil
		}
		tp, err := fallback.Import(ipath)
		if err != nil {
			return nil, err
		}
		cache[ipath] = tp
		return tp, nil
	}
	return checkFixture(fset, imp, path, filepath.Join(srcRoot, path))
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func dirExists(dir string) bool {
	st, err := os.Stat(dir)
	return err == nil && st.IsDir()
}

// checkFixture parses every .go file in dir and type-checks the package
// under the given import path.
func checkFixture(fset *token.FileSet, imp types.Importer, ipath, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse fixture %s: %w", e.Name(), err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture %s: no Go files in %s", ipath, dir)
	}
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(ipath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck fixture %s: %w", ipath, err)
	}
	return &Package{PkgPath: ipath, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
