package netsim

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/layers"
)

// testNode records every frame it receives.
type testNode struct {
	name   string
	ports  []*Port
	frames []received
	status []bool
	onRecv func(p *Port, frame []byte)
}

type received struct {
	port  *Port
	frame []byte
	at    time.Duration
}

func newTestNode(name string) *testNode { return &testNode{name: name} }

func (n *testNode) Name() string       { return n.name }
func (n *testNode) AttachPort(p *Port) { n.ports = append(n.ports, p) }
func (n *testNode) HandleFrame(p *Port, f *Frame) {
	// Frames are borrowed; copy the bytes to keep them past the call.
	frame := append([]byte(nil), f.Bytes()...)
	n.frames = append(n.frames, received{p, frame, p.Link().net.Now()})
	if n.onRecv != nil {
		n.onRecv(p, frame)
	}
}
func (n *testNode) PortStatusChanged(_ *Port, up bool) { n.status = append(n.status, up) }

func gigabit(delay time.Duration) LinkConfig {
	return LinkConfig{Rate: 1_000_000_000, Delay: delay, Queue: 128 << 10}
}

func TestConnectAssignsPortIndices(t *testing.T) {
	net := NewNetwork(1)
	a, b, c := newTestNode("a"), newTestNode("b"), newTestNode("c")
	l1 := net.Connect(a, b, gigabit(0))
	l2 := net.Connect(a, c, gigabit(0))
	if l1.A().Index() != 0 || l2.A().Index() != 1 {
		t.Fatalf("a port indices: %d, %d", l1.A().Index(), l2.A().Index())
	}
	if l1.B().Index() != 0 || l2.B().Index() != 0 {
		t.Fatal("b/c should each start at port 0")
	}
	if l1.A().Peer() != l1.B() || l1.B().Peer() != l1.A() {
		t.Fatal("Peer() broken")
	}
	if len(net.Nodes()) != 3 {
		t.Fatalf("Nodes() = %d, want 3", len(net.Nodes()))
	}
	if net.NodeByName("b") != Node(b) {
		t.Fatal("NodeByName lookup failed")
	}
}

func TestDuplicateNodeNamePanics(t *testing.T) {
	net := NewNetwork(1)
	net.AddNode(newTestNode("x"))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate name did not panic")
		}
	}()
	net.AddNode(newTestNode("x"))
}

func TestBadLinkConfigPanics(t *testing.T) {
	net := NewNetwork(1)
	a, b := newTestNode("a"), newTestNode("b")
	for i, cfg := range []LinkConfig{
		{Rate: 0, Delay: 0, Queue: 1},
		{Rate: 1, Delay: -time.Second, Queue: 1},
		{Rate: 1, Delay: 0, Queue: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("config %d did not panic", i)
				}
			}()
			net.Connect(a, b, cfg)
		}()
	}
}

func TestFrameDeliveryTiming(t *testing.T) {
	net := NewNetwork(1)
	a, b := newTestNode("a"), newTestNode("b")
	delay := 10 * time.Microsecond
	l := net.Connect(a, b, gigabit(delay))
	frame := make([]byte, 1000)
	net.Engine.At(0, func() { l.A().Send(frame) })
	net.Run()
	if len(b.frames) != 1 {
		t.Fatalf("b received %d frames, want 1", len(b.frames))
	}
	// 1000-byte frame → 1024 wire bytes → 8192 ns at 1 Gb/s, plus 10 µs.
	wire := layers.WireBytes(1000)
	want := time.Duration(wire)*8*time.Nanosecond + delay
	if got := b.frames[0].at; got != want {
		t.Fatalf("delivery at %v, want %v", got, want)
	}
}

func TestFrameIsCopiedOnSend(t *testing.T) {
	net := NewNetwork(1)
	a, b := newTestNode("a"), newTestNode("b")
	l := net.Connect(a, b, gigabit(0))
	frame := []byte{1, 2, 3}
	net.Engine.At(0, func() {
		l.A().Send(frame)
		frame[0] = 99 // mutation after send must not reach the receiver
	})
	net.Run()
	if b.frames[0].frame[0] != 1 {
		t.Fatal("frame was not copied on send")
	}
}

func TestSerializationQueuesBackToBackFrames(t *testing.T) {
	net := NewNetwork(1)
	a, b := newTestNode("a"), newTestNode("b")
	l := net.Connect(a, b, gigabit(0))
	frame := make([]byte, 1000)
	net.Engine.At(0, func() {
		l.A().Send(frame)
		l.A().Send(frame)
	})
	net.Run()
	if len(b.frames) != 2 {
		t.Fatalf("received %d frames, want 2", len(b.frames))
	}
	per := time.Duration(layers.WireBytes(1000)) * 8 * time.Nanosecond
	if b.frames[0].at != per || b.frames[1].at != 2*per {
		t.Fatalf("arrivals %v, %v; want %v, %v", b.frames[0].at, b.frames[1].at, per, 2*per)
	}
}

func TestPerLinkFIFOOrder(t *testing.T) {
	net := NewNetwork(1)
	a, b := newTestNode("a"), newTestNode("b")
	l := net.Connect(a, b, gigabit(3*time.Microsecond))
	net.Engine.At(0, func() {
		for i := 0; i < 20; i++ {
			l.A().Send([]byte{byte(i)})
		}
	})
	net.Run()
	if len(b.frames) != 20 {
		t.Fatalf("received %d frames", len(b.frames))
	}
	for i, r := range b.frames {
		if r.frame[0] != byte(i) {
			t.Fatalf("FIFO violated at %d: got %d", i, r.frame[0])
		}
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	net := NewNetwork(1)
	a, b := newTestNode("a"), newTestNode("b")
	cfg := LinkConfig{Rate: 1_000_000_000, Delay: 0, Queue: 3000}
	l := net.Connect(a, b, cfg)
	var drops int
	net.Tap(func(ev TapEvent) {
		if ev.Kind == TapDropQueue {
			drops++
		}
	})
	frame := make([]byte, 1000) // 1024 wire bytes each → 2 fit in 3000
	net.Engine.At(0, func() {
		for i := 0; i < 5; i++ {
			l.A().Send(frame)
		}
	})
	net.Run()
	if len(b.frames) != 2 {
		t.Fatalf("delivered %d, want 2", len(b.frames))
	}
	if drops != 3 {
		t.Fatalf("drops = %d, want 3", drops)
	}
	if l.A().Stats().DropsQueue != 3 {
		t.Fatalf("stats drops = %d", l.A().Stats().DropsQueue)
	}
}

func TestQueueDrainsOverTime(t *testing.T) {
	net := NewNetwork(1)
	a, b := newTestNode("a"), newTestNode("b")
	cfg := LinkConfig{Rate: 1_000_000_000, Delay: 0, Queue: 3000}
	l := net.Connect(a, b, cfg)
	frame := make([]byte, 1000)
	// Send two, wait for the serializer to drain, send two more: all pass.
	net.Engine.At(0, func() { l.A().Send(frame); l.A().Send(frame) })
	net.Engine.At(time.Millisecond, func() { l.A().Send(frame); l.A().Send(frame) })
	net.Run()
	if len(b.frames) != 4 {
		t.Fatalf("delivered %d, want 4", len(b.frames))
	}
}

func TestLinkDownDropsAndNotifies(t *testing.T) {
	net := NewNetwork(1)
	a, b := newTestNode("a"), newTestNode("b")
	l := net.Connect(a, b, gigabit(time.Microsecond))
	net.Engine.At(0, func() { l.SetUp(false) })
	net.Engine.At(time.Millisecond, func() { l.A().Send([]byte{1}) })
	net.Run()
	if len(b.frames) != 0 {
		t.Fatal("frame delivered over down link")
	}
	if l.A().Stats().DropsDown != 1 {
		t.Fatalf("DropsDown = %d", l.A().Stats().DropsDown)
	}
	if len(a.status) != 1 || a.status[0] != false || len(b.status) != 1 {
		t.Fatalf("status notifications: a=%v b=%v", a.status, b.status)
	}
	if l.Up() || l.A().Up() {
		t.Fatal("Up() still true")
	}
}

func TestLinkDownKillsInFlightFrames(t *testing.T) {
	net := NewNetwork(1)
	a, b := newTestNode("a"), newTestNode("b")
	l := net.Connect(a, b, gigabit(100*time.Microsecond))
	net.Engine.At(0, func() { l.A().Send([]byte{1}) })
	net.Engine.At(50*time.Microsecond, func() { l.SetUp(false) }) // mid-flight
	net.Run()
	if len(b.frames) != 0 {
		t.Fatal("in-flight frame survived a link cut")
	}
}

func TestLinkFlapKillsInFlightFrames(t *testing.T) {
	net := NewNetwork(1)
	a, b := newTestNode("a"), newTestNode("b")
	l := net.Connect(a, b, gigabit(100*time.Microsecond))
	net.Engine.At(0, func() { l.A().Send([]byte{1}) })
	// Down and straight back up while the frame propagates: it still dies.
	net.Engine.At(10*time.Microsecond, func() { l.SetUp(false) })
	net.Engine.At(20*time.Microsecond, func() { l.SetUp(true) })
	net.Engine.At(time.Millisecond, func() { l.A().Send([]byte{2}) })
	net.Run()
	if len(b.frames) != 1 || b.frames[0].frame[0] != 2 {
		t.Fatalf("frames after flap: %v", b.frames)
	}
}

func TestSetUpIdempotent(t *testing.T) {
	net := NewNetwork(1)
	a, b := newTestNode("a"), newTestNode("b")
	l := net.Connect(a, b, gigabit(0))
	net.Engine.At(0, func() {
		l.SetUp(true) // already up: no notification
		l.SetUp(false)
		l.SetUp(false) // already down: no notification
	})
	net.Run()
	if len(a.status) != 1 {
		t.Fatalf("a.status = %v, want one down notification", a.status)
	}
}

func TestScheduleLinkDownUp(t *testing.T) {
	net := NewNetwork(1)
	a, b := newTestNode("a"), newTestNode("b")
	l := net.Connect(a, b, gigabit(0))
	net.ScheduleLinkDown(time.Millisecond, l)
	net.ScheduleLinkUp(2*time.Millisecond, l)
	net.Engine.At(3*time.Millisecond, func() { l.A().Send([]byte{7}) })
	net.Run()
	if len(b.frames) != 1 {
		t.Fatal("frame lost after link restore")
	}
	if len(a.status) != 2 || a.status[0] || !a.status[1] {
		t.Fatalf("status sequence %v, want [false true]", a.status)
	}
}

func TestTapSequence(t *testing.T) {
	net := NewNetwork(1)
	a, b := newTestNode("a"), newTestNode("b")
	l := net.Connect(a, b, gigabit(time.Microsecond))
	var kinds []TapKind
	net.Tap(func(ev TapEvent) { kinds = append(kinds, ev.Kind) })
	net.Engine.At(0, func() { l.A().Send([]byte{1}) })
	net.Run()
	if len(kinds) != 2 || kinds[0] != TapSend || kinds[1] != TapDeliver {
		t.Fatalf("tap kinds = %v", kinds)
	}
}

func TestTapKindStrings(t *testing.T) {
	for k, want := range map[TapKind]string{
		TapSend: "send", TapDeliver: "deliver",
		TapDropQueue: "drop-queue", TapDropDown: "drop-down",
	} {
		if k.String() != want {
			t.Fatalf("%d.String() = %q", k, k.String())
		}
	}
}

func TestPortAndLinkStrings(t *testing.T) {
	net := NewNetwork(1)
	a, b := newTestNode("alpha"), newTestNode("beta")
	l := net.Connect(a, b, gigabit(0))
	if l.A().String() != "alpha[0]" {
		t.Fatalf("port string %q", l.A().String())
	}
	if l.String() != "alpha[0]<->beta[0]" {
		t.Fatalf("link string %q", l.String())
	}
}

func TestStatsCounting(t *testing.T) {
	net := NewNetwork(1)
	a, b := newTestNode("a"), newTestNode("b")
	l := net.Connect(a, b, gigabit(0))
	net.Engine.At(0, func() {
		l.A().Send(make([]byte, 100))
		l.B().Send(make([]byte, 200))
	})
	net.Run()
	as, bs := l.A().Stats(), l.B().Stats()
	if as.TxFrames != 1 || as.TxBytes != 100 || as.RxFrames != 1 || as.RxBytes != 200 {
		t.Fatalf("a stats %+v", as)
	}
	if bs.TxFrames != 1 || bs.TxBytes != 200 || bs.RxFrames != 1 || bs.RxBytes != 100 {
		t.Fatalf("b stats %+v", bs)
	}
}

func TestBusyTimeAccumulates(t *testing.T) {
	net := NewNetwork(1)
	a, b := newTestNode("a"), newTestNode("b")
	l := net.Connect(a, b, gigabit(0))
	net.Engine.At(0, func() { l.A().Send(make([]byte, 1000)) })
	net.Run()
	want := time.Duration(layers.WireBytes(1000)) * 8 * time.Nanosecond
	if got := l.BusyTime(l.A()); got != want {
		t.Fatalf("BusyTime = %v, want %v", got, want)
	}
	if l.BusyTime(l.B()) != 0 {
		t.Fatal("reverse direction should be idle")
	}
}

func TestFullDuplexIndependence(t *testing.T) {
	net := NewNetwork(1)
	a, b := newTestNode("a"), newTestNode("b")
	l := net.Connect(a, b, gigabit(0))
	frame := make([]byte, 1000)
	net.Engine.At(0, func() {
		l.A().Send(frame)
		l.B().Send(frame)
	})
	net.Run()
	per := time.Duration(layers.WireBytes(1000)) * 8 * time.Nanosecond
	// Both directions finish at the same time: no shared serializer.
	if a.frames[0].at != per || b.frames[0].at != per {
		t.Fatalf("duplex arrivals %v / %v, want both %v", a.frames[0].at, b.frames[0].at, per)
	}
}

func TestSelfLoopGetsDistinctIndices(t *testing.T) {
	net := NewNetwork(1)
	a := newTestNode("a")
	l := net.Connect(a, a, gigabit(0))
	if l.A().Index() == l.B().Index() {
		t.Fatal("self-loop ports share an index")
	}
}

// relayNode forwards every received frame out all other ports — enough to
// build a two-node forwarding loop for the event-limit backstop test.
type relayNode struct {
	testNode
}

func (r *relayNode) HandleFrame(p *Port, f *Frame) {
	for _, q := range r.ports {
		if q != p {
			q.SendFrame(f)
		}
	}
}

func TestForwardingLoopTripsEventLimit(t *testing.T) {
	net := NewNetwork(1)
	a, b := &relayNode{testNode{name: "a"}}, &relayNode{testNode{name: "b"}}
	l1 := net.Connect(a, b, gigabit(time.Microsecond))
	net.Connect(a, b, gigabit(time.Microsecond)) // parallel link → loop
	net.Engine.SetEventLimit(10_000)
	net.Engine.At(0, func() { l1.A().Send([]byte{1}) })
	defer func() {
		if recover() == nil {
			t.Fatal("forwarding loop did not trip the event limit")
		}
	}()
	net.Run()
}

// Property: delivery time is monotone in send order for a single direction
// (per-link FIFO), for arbitrary frame sizes.
func TestQuickPerLinkFIFO(t *testing.T) {
	f := func(sizes []uint16) bool {
		net := NewNetwork(1)
		a, b := newTestNode("a"), newTestNode("b")
		l := net.Connect(a, b, LinkConfig{Rate: 1_000_000_000, Delay: time.Microsecond, Queue: 64 << 20})
		net.Engine.At(0, func() {
			for i, s := range sizes {
				frame := make([]byte, int(s%1400)+1)
				frame[0] = byte(i)
				l.A().Send(frame)
			}
		})
		net.Run()
		if len(b.frames) != len(sizes) {
			return false
		}
		for i := 1; i < len(b.frames); i++ {
			if b.frames[i].at <= b.frames[i-1].at {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: conservation — every sent frame is delivered exactly once or
// dropped exactly once, never duplicated, on an always-up link.
func TestQuickFrameConservation(t *testing.T) {
	f := func(sizes []uint16, queueKB uint8) bool {
		net := NewNetwork(1)
		a, b := newTestNode("a"), newTestNode("b")
		q := (int(queueKB%64) + 1) << 10
		l := net.Connect(a, b, LinkConfig{Rate: 1_000_000_000, Delay: time.Microsecond, Queue: q})
		var sent, delivered, dropped int
		net.Tap(func(ev TapEvent) {
			switch ev.Kind {
			case TapSend:
				sent++
			case TapDeliver:
				delivered++
			case TapDropQueue, TapDropDown:
				dropped++
			}
		})
		net.Engine.At(0, func() {
			for _, s := range sizes {
				l.A().Send(make([]byte, int(s%1400)+1))
			}
		})
		net.Run()
		return sent+dropped == len(sizes) && delivered == sent && len(b.frames) == delivered
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(6))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLinkThroughput(b *testing.B) {
	net := NewNetwork(1)
	src, dst := newTestNode("src"), newTestNode("dst")
	l := net.Connect(src, dst, gigabit(time.Microsecond))
	frame := make([]byte, 1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.A().Send(frame)
		net.Run()
	}
	_ = fmt.Sprint(len(dst.frames))
}
