package netsim

// This file is the parallel half of the simulator: a conservative
// discrete-event coordinator that runs a partitioned fabric on one worker
// goroutine per shard while preserving, bit for bit, the event order of
// the single-engine run (DESIGN.md §8).
//
// The synchronization protocol is a null-message-free window barrier. Let
// L (the lookahead) be the minimum latency — serialization of a minimum
// frame plus propagation — over all links whose two ends live in
// different shards. If the earliest pending event anywhere sits at time T,
// then no shard can receive a cross-shard arrival before T+L (a send at
// s ≥ T arrives strictly after s+L), so every shard may run all events in
// [T, T+L) without looking up. After the window, the shards' outboxes are
// exchanged: each cross-shard arrival was stamped by the *sending* link
// direction with the key it would have carried in the unsharded run, so
// where it sorts in the destination heap does not depend on when the
// exchange happened to deliver it.
//
// Driver events — fault injection, experiment phases, anything scheduled
// on the control engine — execute as barriers: all shards drain below the
// event's timestamp, line their clocks up on it, and the event runs alone
// with the whole fabric paused. That is what makes "global" actions like
// cutting a boundary link or walking every bridge's table safe and
// deterministic in a parallel run.

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/layers"
	"repro/internal/sim"
)

// remoteRec is one cross-shard arrival waiting in a sender's outbox: the
// destination-shard event (key + payload) in wire form.
type remoteRec struct {
	at          time.Duration
	owner, oseq uint64
	link        *Link
	side        int8 // transmitting side
	epoch       uint64
	frame       *Frame // destination shard's own clone (ownership transfers)
}

// tapRec is one buffered tap observation: the TapEvent fields plus the
// ordering key of the event that emitted it and the byte range of the
// frame copy in the shard's arena.
type tapRec struct {
	at          time.Duration
	owner, oseq uint64
	kind        TapKind
	from, to    *Port
	frameID     uint64
	off, ln     int32
}

// tapShard buffers one shard's tap stream for the deterministic merge.
type tapShard struct {
	recs  []tapRec
	arena []byte
}

// coordinator drives a partitioned network.
type coordinator struct {
	net       *Network
	shards    []*sim.Engine
	shardOf   map[Node]int
	lookahead time.Duration     // global minimum (reporting; la drives the windows)
	la        [][]time.Duration // la[from][to]: min latency over boundary links from→to (maxInt64 = none)
	barriers  uint64            // root events executed with all shards paused
	out       [][][]remoteRec   // [from][to] outboxes, written only by `from`'s worker
	tap       []tapShard        // per-shard tap buffers, written only by that shard's worker

	// inWindow is true while shard workers are executing a parallel
	// window. Written only while every worker is idle (the window channel
	// send/receive pairs are the synchronization edges), read by workers
	// inside the window to route tap emissions into the shard buffers.
	inWindow bool

	mu       sync.Mutex
	panicked any // first worker panic, re-raised on the coordinator goroutine
}

// Partition splits the fabric into k shards: shardOf assigns every node,
// nodes' and link directions' scheduling identities are rebound to their
// shard's engine, and subsequent Run/RunFor/RunUntil calls execute shards
// in parallel under the conservative coordinator. Partitioning must happen
// before the simulation has run (topologies partition between cabling and
// Start). k <= 1 is a no-op. Multi-homed nodes are legal but every
// boundary link must have positive latency — the lookahead window is
// derived from the smallest one.
func (n *Network) Partition(k int, shardOf func(Node) int) {
	if k <= 1 {
		return
	}
	if n.co != nil {
		panic("netsim: network already partitioned")
	}
	if n.Engine.Processed() != 0 {
		panic("netsim: Partition after the simulation has run")
	}
	shards := make([]*sim.Engine, k)
	for i := range shards {
		e := sim.New(n.seed + int64(i) + 1)
		e.SetID(i)
		e.SetEventLimit(n.Engine.EventLimit())
		shards[i] = e
	}
	co := &coordinator{
		net:     n,
		shards:  shards,
		shardOf: make(map[Node]int, len(n.nodes)),
		tap:     make([]tapShard, k),
	}
	co.out = make([][][]remoteRec, k)
	for i := range co.out {
		co.out[i] = make([][]remoteRec, k)
	}
	for _, node := range n.nodes {
		s := shardOf(node)
		if s < 0 || s >= k {
			panic(fmt.Sprintf("netsim: node %q assigned to shard %d of %d", node.Name(), s, k))
		}
		co.shardOf[node] = s
		n.procs[node.Name()].Rebind(shards[s])
	}
	// Lookahead is computed per shard pair: one short boundary link only
	// throttles the windows of the shards it joins (and paths through
	// them), not the whole fabric. The global minimum is kept for
	// reporting (Lookahead).
	co.la = make([][]time.Duration, k)
	for i := range co.la {
		co.la[i] = make([]time.Duration, k)
		for j := range co.la[i] {
			co.la[i][j] = time.Duration(math.MaxInt64)
		}
	}
	la := time.Duration(math.MaxInt64)
	for _, l := range n.links {
		sa := co.shardOf[l.ports[0].node]
		sb := co.shardOf[l.ports[1].node]
		l.shard = [2]int{sa, sb}
		l.proc[0].Rebind(shards[sa])
		l.proc[1].Rebind(shards[sb])
		if sa != sb {
			lb := l.cfg.Delay + serTime(l.cfg.Rate, layers.WireBytes(0))
			if lb <= 0 {
				panic(fmt.Sprintf("netsim: boundary link %v needs positive latency", l))
			}
			// Both directions share the link config, so the pair matrix is
			// symmetric; a frame from sa lands in sb no earlier than lb
			// after its send, and vice versa.
			if lb < co.la[sa][sb] {
				co.la[sa][sb] = lb
				co.la[sb][sa] = lb
			}
			if lb < la {
				la = lb
			}
		}
	}
	if la == time.Duration(math.MaxInt64) {
		// No boundary links: shards are independent; any window will do.
		la = time.Millisecond
	}
	co.lookahead = la

	// Close the pair matrix over multi-hop paths (Floyd–Warshall; k is
	// small). An event pending in shard t can influence shard s through
	// any chain of boundary crossings, each materializing at a window
	// exchange, so the binding constraint is the cheapest path t→s — and
	// for t = s the cheapest round trip: a shard's own events can come
	// back at it through a currently-idle neighbour, which is why the
	// diagonal stays ∞-initialized instead of 0 (the relaxation fills in
	// real cycle costs).
	const inf = time.Duration(math.MaxInt64)
	for via := 0; via < k; via++ {
		for i := 0; i < k; i++ {
			if co.la[i][via] == inf {
				continue
			}
			for j := 0; j < k; j++ {
				if co.la[via][j] == inf {
					continue
				}
				if d := co.la[i][via] + co.la[via][j]; d < co.la[i][j] {
					co.la[i][j] = d
				}
			}
		}
	}
	n.co = co
}

// Sharded reports whether the network has been partitioned, and into how
// many shards.
func (n *Network) Sharded() (int, bool) {
	if n.co == nil {
		return 1, false
	}
	return len(n.co.shards), true
}

// Lookahead returns the coordinator's synchronization window (0 when
// unsharded).
func (n *Network) Lookahead() time.Duration {
	if n.co == nil {
		return 0
	}
	return n.co.lookahead
}

// Processed returns the total number of events executed across the
// control engine and every shard.
func (n *Network) Processed() uint64 {
	total := n.Engine.Processed()
	if n.co != nil {
		for _, e := range n.co.shards {
			total += e.Processed()
		}
	}
	return total
}

// ship queues one cross-shard arrival; called by the sending shard's
// worker during a window, drained by exchange between windows.
func (co *coordinator) ship(from, to int, rec remoteRec) {
	co.out[from][to] = append(co.out[from][to], rec)
}

// exchange injects every outbox record into its destination shard and
// reports how many moved. Runs between windows, all workers paused.
func (co *coordinator) exchange() int {
	n := 0
	for from := range co.out {
		for to := range co.out[from] {
			recs := co.out[from][to]
			for i := range recs {
				rec := &recs[i]
				rf := remoteFlightPool.Get().(*remoteFlight)
				rf.eng = co.shards[to]
				rf.link = rec.link
				rf.from = rec.link.ports[rec.side]
				rf.frame = rec.frame
				rf.epoch = rec.epoch
				co.shards[to].ScheduleKeyed(rec.at, rec.owner, rec.oseq, rf, 0)
				recs[i] = remoteRec{}
				n++
			}
			co.out[from][to] = recs[:0]
		}
	}
	return n
}

// buffer records a tap observation in the emitting shard's buffer, frame
// bytes copied into the shard arena, stamped with the executing event's
// ordering key.
func (co *coordinator) buffer(e *sim.Engine, ev TapEvent) {
	ts := &co.tap[e.ID()]
	_, owner, oseq := e.CurKey()
	off := int32(len(ts.arena))
	ts.arena = append(ts.arena, ev.Frame...)
	ts.recs = append(ts.recs, tapRec{
		at: ev.At, owner: owner, oseq: oseq,
		kind: ev.Kind, from: ev.From, to: ev.To, frameID: ev.FrameID,
		off: off, ln: int32(len(ev.Frame)),
	})
}

// flushTaps drains every buffered tap observation (end of a run).
func (co *coordinator) flushTaps() { co.flushTapsBelow(maxKey) }

// flushTapsBelow merges the per-shard tap buffers up to (strictly below)
// the watermark key and delivers them to the registered taps, keeping
// later records buffered. Within a shard the buffer is already key-sorted
// (events execute in key order); across shards a stable k-way merge on
// (at, owner, oseq) reconstructs exactly the emission order of the
// unsharded run. Keys never tie across buffers: only shard events are
// buffered (barrier and driver emissions deliver inline), and every shard
// event's owner is a distinct node or link direction.
//
// The watermark matters because windows are bounded per shard: one shard
// may already have executed — and buffered taps for — events keyed after
// another shard's next pending event. Flushing only below the minimum
// pending key everywhere keeps the delivered stream in global key order;
// the tails stay buffered until the lagging shards catch up.
func (co *coordinator) flushTapsBelow(watermark evKey) {
	if len(co.net.taps) == 0 {
		for s := range co.tap {
			co.tap[s].recs = co.tap[s].recs[:0]
			co.tap[s].arena = co.tap[s].arena[:0]
		}
		return
	}
	idx := make([]int, len(co.tap))
	for {
		best := -1
		for s := range co.tap {
			if idx[s] >= len(co.tap[s].recs) {
				continue
			}
			if best == -1 || tapKeyLess(&co.tap[s].recs[idx[s]], &co.tap[best].recs[idx[best]]) {
				best = s
			}
		}
		if best == -1 {
			break
		}
		r := &co.tap[best].recs[idx[best]]
		if k := (evKey{r.at, r.owner, r.oseq}); !keyLess(k, watermark) {
			break
		}
		idx[best]++
		ev := TapEvent{
			At: r.at, Kind: r.kind, From: r.from, To: r.to,
			Frame: co.tap[best].arena[r.off : r.off+r.ln], FrameID: r.frameID,
		}
		for _, t := range co.net.taps {
			t(ev)
		}
	}
	for s := range co.tap {
		ts := &co.tap[s]
		n := copy(ts.recs, ts.recs[idx[s]:])
		ts.recs = ts.recs[:n]
		if n == 0 {
			// Frame bytes are only referenced through live records; the
			// arena resets (and its offsets restart) once all are flushed.
			ts.arena = ts.arena[:0]
		}
	}
}

// tapKeyLess orders buffered tap records by the emitting event's key.
func tapKeyLess(a, b *tapRec) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.owner != b.owner {
		return a.owner < b.owner
	}
	return a.oseq < b.oseq
}

// noteWorkerPanic records the first panic raised inside a shard worker.
func (co *coordinator) noteWorkerPanic(r any) {
	co.mu.Lock()
	if co.panicked == nil {
		co.panicked = r
	}
	co.mu.Unlock()
}

// evKey is a full event ordering key: the coordinator compares them
// lexicographically to decide barriers and per-shard window bounds.
type evKey struct {
	at          time.Duration
	owner, oseq uint64
}

// keyLess orders two keys the way the event heap does.
func keyLess(a, b evKey) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.owner != b.owner {
		return a.owner < b.owner
	}
	return a.oseq < b.oseq
}

// maxKey sorts after every real event key.
var maxKey = evKey{at: time.Duration(math.MaxInt64), owner: math.MaxUint64, oseq: math.MaxUint64}

// run is the coordinator's main loop: alternate parallel lookahead windows
// with root-event barriers until the horizon (bounded) or quiescence.
// When bounded, events at exactly `until` run too and every clock ends at
// `until`, mirroring Engine.RunUntil.
//
// Barriers are key-exact: a control-engine event may carry an entity's
// identity (owner > 0, from ScheduleScoped's cross-shard case), and shard
// events at the same timestamp with smaller keys run inside the preceding
// window, so the global execution order is the single-engine key order
// whatever the event's venue. Windows are bounded per shard pair: shard s
// may run to min over senders t of (t's earliest event + la[t][s]) — one
// short boundary link only throttles its own two shards.
func (co *coordinator) run(until time.Duration, bounded bool) {
	defer co.flushTaps()
	root := co.net.Engine
	k := len(co.shards)

	// Workers for the duration of this run — one per shard, window bounds
	// in, completions out — spawned lazily at the first parallel window,
	// so barrier-only calls (driver code slicing time in small steps) pay
	// no goroutine churn. They are not kept across run() calls: a parked
	// pool would outlive the Network (blocked goroutines never collect),
	// and the spawn cost is microseconds against any window-bearing run.
	var bounds []chan evKey
	var done chan struct{}
	startWorkers := func() {
		bounds = make([]chan evKey, k)
		done = make(chan struct{}, k)
		for s := 0; s < k; s++ {
			bounds[s] = make(chan evKey, 1)
			go func(s int) {
				for b := range bounds[s] {
					func() {
						defer func() {
							if r := recover(); r != nil {
								co.noteWorkerPanic(r)
							}
						}()
						co.shards[s].RunWindowKey(b.at, b.owner, b.oseq)
					}()
					done <- struct{}{}
				}
			}(s)
		}
	}
	defer func() {
		for s := range bounds {
			close(bounds[s])
		}
	}()

	startProcessed := co.net.Processed()
	limit := root.EventLimit()
	next := make([]evKey, k) // per-shard next event key this iteration
	for {
		co.exchange()
		// Runaway-loop backstop, checked every iteration so both code
		// paths — parallel windows and root-event barriers — are covered;
		// a self-rescheduling driver event must panic here exactly like
		// it would under Engine.Run at shards=1.
		if co.net.Processed()-startProcessed > limit {
			panic(fmt.Sprintf("netsim: event limit %d exceeded across shards — probable forwarding loop", limit))
		}

		rootKey := maxKey
		rootAt, rootOwner, rootSeq, rootOK := root.NextKey()
		if rootOK {
			rootKey = evKey{rootAt, rootOwner, rootSeq}
		}
		minShard := maxKey
		minT := time.Duration(math.MaxInt64)
		for s, e := range co.shards {
			next[s] = maxKey
			if at, owner, oseq, ok := e.NextKey(); ok {
				next[s] = evKey{at, owner, oseq}
				if keyLess(next[s], minShard) {
					minShard = next[s]
				}
				if at < minT {
					minT = at
				}
			}
		}
		shardOK := minShard != maxKey

		// Everything keyed below both the pending barrier and every
		// shard's next event is final: no later execution, injection or
		// inline barrier emission can carry a smaller key (arrivals land
		// strictly after their sender's pending events), so the buffered
		// taps below that watermark flush now, in global key order.
		watermark := minShard
		if keyLess(rootKey, watermark) {
			watermark = rootKey
		}
		co.flushTapsBelow(watermark)

		if !rootOK && !shardOK {
			if bounded {
				co.setAllNow(until)
			} else {
				co.levelClocks()
			}
			return
		}
		earliest := minT
		if rootOK && rootKey.at < earliest {
			earliest = rootKey.at
		}
		if bounded && earliest > until {
			co.setAllNow(until)
			return
		}

		if rootOK && keyLess(rootKey, minShard) {
			// Barrier: no shard event keyed before the root event is
			// pending anywhere, so line every clock up on its timestamp
			// and run it alone. Root events at one instant run in key
			// order; anything they schedule re-enters the loop. Taps the
			// barrier emits deliver inline (emit), in program order,
			// after everything the windows already flushed.
			co.setAllNow(rootKey.at)
			co.barriers++
			root.Step()
			continue
		}

		// Parallel window: shard s may run everything keyed strictly below
		// its own bound. Any future arrival into s traces back to an event
		// currently pending in some shard t (exchanges only happen between
		// windows, so an idle shard cannot wake up and send mid-window)
		// and crosses boundary paths costing at least la[t][s] — the
		// closed matrix, t = s included via its cheapest round trip. The
		// pending root event, if any, caps every shard key-exactly.
		if bounds == nil {
			startWorkers()
		}
		co.inWindow = true
		for s := 0; s < k; s++ {
			b := rootKey // maxKey when no root event is pending
			if bounded {
				// Inclusive of events at exactly `until`.
				if lim := (evKey{at: until + 1}); keyLess(lim, b) {
					b = lim
				}
			}
			for t := 0; t < k; t++ {
				if next[t] == maxKey || co.la[t][s] == time.Duration(math.MaxInt64) {
					continue
				}
				if lim := (evKey{at: next[t].at + co.la[t][s]}); keyLess(lim, b) {
					b = lim
				}
			}
			bounds[s] <- b
		}
		for s := 0; s < k; s++ {
			<-done
		}
		co.inWindow = false
		if co.panicked != nil {
			panic(co.panicked)
		}
	}
}

// setAllNow lines the control engine and every shard up on t.
func (co *coordinator) setAllNow(t time.Duration) {
	co.net.Engine.SetNow(t)
	for _, e := range co.shards {
		e.SetNow(t)
	}
}

// levelClocks advances every engine to the maximum current time after an
// unbounded drain, so Now() is consistent across the fabric.
func (co *coordinator) levelClocks() {
	max := co.net.Engine.Now()
	for _, e := range co.shards {
		if n := e.Now(); n > max {
			max = n
		}
	}
	co.setAllNow(max)
}
