package netsim

// This file is the parallel half of the simulator: a conservative
// discrete-event coordinator that runs a partitioned fabric on one
// persistent worker goroutine per shard while preserving, bit for bit,
// the event order of the single-engine run (DESIGN.md §8).
//
// The synchronization protocol is a null-message-free window barrier. Let
// L (the lookahead) be the minimum latency — serialization of a minimum
// frame plus propagation — over all links whose two ends live in
// different shards. If the earliest pending event anywhere sits at time T,
// then no shard can receive a cross-shard arrival before T+L (a send at
// s ≥ T arrives strictly after s+L), so every shard may run all events in
// [T, T+L) without looking up. Windows are delimited by an epoch/countdown
// barrier on a single mutex: the coordinator publishes per-shard bounds,
// bumps the epoch and broadcasts; each parked worker wakes once, runs its
// window, decrements the countdown and the last one signals the
// coordinator. One wake plus one arrive per shard per window — no channel
// churn, no per-window goroutines.
//
// Cross-shard arrivals are double-buffered: during window n every sender
// appends into the fill-side outbox matrix out[fill][from][to], and at the
// start of window n+1 each destination shard drains its own inbox column
// of the other buffer — written only during the previous window, so the
// drain needs no lock and never contends with in-window sends. Each
// arrival was stamped by the *sending* link direction with the key it
// would have carried in the unsharded run, so where it sorts in the
// destination heap does not depend on when the exchange delivered it.
//
// Driver events — fault injection, experiment phases, anything scheduled
// on the control engine — execute as barriers: all shards drain below the
// event's timestamp, line their clocks up on it, and the event runs alone
// with the whole fabric paused. That is what makes "global" actions like
// cutting a boundary link or walking every bridge's table safe and
// deterministic in a parallel run.

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/layers"
	"repro/internal/sim"
)

// remoteRec is one cross-shard arrival waiting in a sender's outbox: the
// destination-shard event (key + payload) in wire form.
type remoteRec struct {
	at          time.Duration
	owner, oseq uint64
	link        *Link
	side        int8 // transmitting side
	epoch       uint64
	frame       *Frame // destination shard's own clone (ownership transfers)
}

// tapRec is one buffered tap observation: the TapEvent fields plus the
// ordering key of the event that emitted it and the byte range of the
// frame copy in the shard's arena.
type tapRec struct {
	at          time.Duration
	owner, oseq uint64
	kind        TapKind
	from, to    *Port
	frameID     uint64
	off, ln     int32
}

// tapShard buffers one shard's tap stream for the deterministic merge.
type tapShard struct {
	recs  []tapRec
	arena []byte
}

// Tap flushing is amortized: buffered records are merged out every
// tapFlushWindows parallel windows, before every barrier (whose inline
// emissions must land after everything the windows produced), and
// whenever a shard's buffer grows past the backlog bounds.
const (
	tapFlushWindows = 32
	tapFlushRecs    = 1 << 13
	tapFlushBytes   = 1 << 20
)

// laEdge is one finite lookahead constraint into a shard: events pending
// in shard from cap the window at their timestamp plus d.
type laEdge struct {
	from int
	d    time.Duration
}

// workerStats is one shard worker's counter block, padded so concurrent
// workers never share a cache line.
type workerStats struct {
	exchanged uint64 // cross-shard arrivals this worker drained
	wakes     uint64 // windows this worker ran
	wakeNS    int64  // total dispatch→running latency
	_         [5]uint64
}

// CoordStats reports the coordinator's per-run overhead counters.
// Windows, Barriers and Exchanged are deterministic functions of the
// workload and the shard count; WakeNS is wall-clock (machine-dependent).
// Read it between runs — never from driver code racing a window.
type CoordStats struct {
	Windows   uint64 // parallel windows dispatched
	Barriers  uint64 // control-engine events run with all shards paused
	Exchanged uint64 // cross-shard arrivals moved between engines
	Wakes     uint64 // worker wake-ups (≈ Windows × shards)
	WakeNS    int64  // total worker wake latency, summed over wakes
}

// workerSync is the epoch/countdown barrier the persistent workers park
// on. One mutex guards everything; it is also the happens-before edge for
// all coordinator↔worker shared state (bounds, outboxes, cached next
// keys, tap buffers): the coordinator only touches that state while
// remaining == 0, workers only inside a window.
type workerSync struct {
	mu        sync.Mutex
	wake      sync.Cond // workers wait here for an epoch bump
	done      sync.Cond // the coordinator waits here for the countdown
	epoch     uint64
	remaining int
	stop      bool
	running   int // workers spawned and not yet exited
}

// coordinator drives a partitioned network.
type coordinator struct {
	net       *Network
	shards    []*sim.Engine
	shardOf   map[Node]int
	lookahead time.Duration     // global minimum (reporting; la drives the windows)
	la        [][]time.Duration // la[from][to]: min latency over boundary paths from→to (maxInt64 = none)
	laIn      [][]laEdge        // laIn[s]: the finite rows of la[·][s], hoisted off the window loop

	// Double-buffered outbox matrices: senders append to out[fill] during
	// a window, destinations drain their column of out[fill^1] at window
	// start. outMin mirrors the matrices with each cell's smallest key so
	// the coordinator can fold undrained arrivals into its pending minima
	// without touching the records.
	out    [2][][][]remoteRec
	outMin [2][][]evKey
	fill   int

	tap      []tapShard // per-shard tap buffers, written only by that shard's worker
	mergeIdx []int      // flushTapsBelow merge cursors (reused across calls)

	bounds    []evKey // per-shard window bounds, published before each epoch bump
	next      []evKey // cached engine next keys: worker-written at window end
	nextValid bool    // false when engines were scheduled into outside a window
	pend      []evKey // scratch: next folded with the fill-side outbox minima

	wg        workerSync
	wstats    []workerStats
	wakeStamp time.Time // dispatch instant of the current window

	windows  uint64 // parallel windows dispatched
	barriers uint64 // root events executed with all shards paused

	// inWindow is true while shard workers are executing a parallel
	// window. Written only while every worker is parked (the barrier
	// mutex provides the synchronization edges), read by workers inside
	// the window to route tap emissions into the shard buffers.
	inWindow bool

	mu       sync.Mutex
	panicked any // first worker panic, re-raised on the coordinator goroutine
}

// Partition splits the fabric into k shards: shardOf assigns every node,
// nodes' and link directions' scheduling identities are rebound to their
// shard's engine, and subsequent Run/RunFor/RunUntil calls execute shards
// in parallel under the conservative coordinator. Partitioning must happen
// before the simulation has run (topologies partition between cabling and
// Start). k <= 1 is a no-op. Multi-homed nodes are legal but every
// boundary link must have positive latency — the lookahead window is
// derived from the smallest one.
func (n *Network) Partition(k int, shardOf func(Node) int) {
	if k <= 1 {
		return
	}
	if n.co != nil {
		panic("netsim: network already partitioned")
	}
	if n.Engine.Processed() != 0 {
		panic("netsim: Partition after the simulation has run")
	}
	shards := make([]*sim.Engine, k)
	for i := range shards {
		e := sim.New(n.seed + int64(i) + 1)
		e.SetID(i)
		e.SetEventLimit(n.Engine.EventLimit())
		shards[i] = e
	}
	co := &coordinator{
		net:      n,
		shards:   shards,
		shardOf:  make(map[Node]int, len(n.nodes)),
		tap:      make([]tapShard, k),
		mergeIdx: make([]int, k),
		bounds:   make([]evKey, k),
		next:     make([]evKey, k),
		pend:     make([]evKey, k),
		wstats:   make([]workerStats, k),
	}
	co.wg.wake.L = &co.wg.mu
	co.wg.done.L = &co.wg.mu
	for b := range co.out {
		co.out[b] = make([][][]remoteRec, k)
		co.outMin[b] = make([][]evKey, k)
		for i := 0; i < k; i++ {
			co.out[b][i] = make([][]remoteRec, k)
			co.outMin[b][i] = make([]evKey, k)
			for j := 0; j < k; j++ {
				co.outMin[b][i][j] = maxKey
			}
		}
	}
	for _, node := range n.nodes {
		s := shardOf(node)
		if s < 0 || s >= k {
			panic(fmt.Sprintf("netsim: node %q assigned to shard %d of %d", node.Name(), s, k))
		}
		co.shardOf[node] = s
		n.procs[node.Name()].Rebind(shards[s])
	}
	// Lookahead is computed per shard pair: one short boundary link only
	// throttles the windows of the shards it joins (and paths through
	// them), not the whole fabric. The global minimum is kept for
	// reporting (Lookahead).
	co.la = make([][]time.Duration, k)
	for i := range co.la {
		co.la[i] = make([]time.Duration, k)
		for j := range co.la[i] {
			co.la[i][j] = time.Duration(math.MaxInt64)
		}
	}
	la := time.Duration(math.MaxInt64)
	for _, l := range n.links {
		sa := co.shardOf[l.ports[0].node]
		sb := co.shardOf[l.ports[1].node]
		l.shard = [2]int{sa, sb}
		l.proc[0].Rebind(shards[sa])
		l.proc[1].Rebind(shards[sb])
		if sa != sb {
			lb := l.cfg.Delay + serTime(l.cfg.Rate, layers.WireBytes(0))
			if lb <= 0 {
				panic(fmt.Sprintf("netsim: boundary link %v needs positive latency", l))
			}
			// Both directions share the link config, so the pair matrix is
			// symmetric; a frame from sa lands in sb no earlier than lb
			// after its send, and vice versa.
			if lb < co.la[sa][sb] {
				co.la[sa][sb] = lb
				co.la[sb][sa] = lb
			}
			if lb < la {
				la = lb
			}
		}
	}
	if la == time.Duration(math.MaxInt64) {
		// No boundary links: shards are independent; any window will do.
		la = time.Millisecond
	}
	co.lookahead = la

	// Close the pair matrix over multi-hop paths (Floyd–Warshall; k is
	// small). An event pending in shard t can influence shard s through
	// any chain of boundary crossings, each materializing at a window
	// exchange, so the binding constraint is the cheapest path t→s — and
	// for t = s the cheapest round trip: a shard's own events can come
	// back at it through a currently-idle neighbour, which is why the
	// diagonal stays ∞-initialized instead of 0 (the relaxation fills in
	// real cycle costs).
	const inf = time.Duration(math.MaxInt64)
	for via := 0; via < k; via++ {
		for i := 0; i < k; i++ {
			if co.la[i][via] == inf {
				continue
			}
			for j := 0; j < k; j++ {
				if co.la[via][j] == inf {
					continue
				}
				if d := co.la[i][via] + co.la[via][j]; d < co.la[i][j] {
					co.la[i][j] = d
				}
			}
		}
	}
	// The window loop only ever walks the finite constraints into each
	// shard, so hoist them out of the matrix once.
	co.laIn = make([][]laEdge, k)
	for s := 0; s < k; s++ {
		for t := 0; t < k; t++ {
			if co.la[t][s] != inf {
				co.laIn[s] = append(co.laIn[s], laEdge{from: t, d: co.la[t][s]})
			}
		}
	}
	n.co = co
}

// Sharded reports whether the network has been partitioned, and into how
// many shards.
func (n *Network) Sharded() (int, bool) {
	if n.co == nil {
		return 1, false
	}
	return len(n.co.shards), true
}

// Lookahead returns the coordinator's synchronization window (0 when
// unsharded).
func (n *Network) Lookahead() time.Duration {
	if n.co == nil {
		return 0
	}
	return n.co.lookahead
}

// Processed returns the total number of events executed across the
// control engine and every shard.
func (n *Network) Processed() uint64 {
	total := n.Engine.Processed()
	if n.co != nil {
		for _, e := range n.co.shards {
			total += e.Processed()
		}
	}
	return total
}

// ship queues one cross-shard arrival into the fill-side outbox; called by
// the sending shard's worker during a window (or by a barrier event),
// drained by the destination's worker at the start of the next window.
//
//fabric:hotpath
func (co *coordinator) ship(from, to int, rec remoteRec) {
	f := co.fill
	co.out[f][from][to] = append(co.out[f][from][to], rec)
	if k := (evKey{rec.at, rec.owner, rec.oseq}); keyLess(k, co.outMin[f][from][to]) {
		co.outMin[f][from][to] = k
	}
}

// inject materializes one outbox record as a keyed event on its
// destination engine and clears the record (frame ownership transfers).
//
//fabric:hotpath
func (co *coordinator) inject(to int, rec *remoteRec) {
	rf := remoteFlightPool.Get().(*remoteFlight)
	rf.eng = co.shards[to]
	rf.link = rec.link
	rf.from = rec.link.ports[rec.side]
	rf.frame = rec.frame
	rf.epoch = rec.epoch
	co.shards[to].ScheduleKeyed(rec.at, rec.owner, rec.oseq, rf, 0)
	*rec = remoteRec{}
}

// drainInbox injects everything buffered for shard s in outbox buffer buf
// and reports how many records moved. During a window only shard s's own
// worker touches column s of the drain-side buffer, so no lock is needed.
//
//fabric:hotpath
func (co *coordinator) drainInbox(buf, s int) uint64 {
	var n uint64
	for from := range co.out[buf] {
		cell := co.out[buf][from][s]
		if len(cell) == 0 {
			continue
		}
		for i := range cell {
			co.inject(s, &cell[i])
		}
		n += uint64(len(cell))
		co.out[buf][from][s] = cell[:0]
		co.outMin[buf][from][s] = maxKey
	}
	return n
}

// drainOutboxes serially injects every buffered record from both outbox
// buffers, restoring the invariant that run() returns with empty
// outboxes. Safe whenever the workers are parked; the records' keys all
// sit above the bounded horizon (that is what made returning legal).
//
//fabric:hotpath
func (co *coordinator) drainOutboxes() {
	for buf := 0; buf < 2; buf++ {
		for s := range co.shards {
			co.wstats[s].exchanged += co.drainInbox(buf, s)
		}
	}
	co.nextValid = false
}

// buffer records a tap observation in the emitting shard's buffer, frame
// bytes copied into the shard arena, stamped with the executing event's
// ordering key.
//
//fabric:hotpath
func (co *coordinator) buffer(e *sim.Engine, ev TapEvent) {
	ts := &co.tap[e.ID()]
	_, owner, oseq := e.CurKey()
	off := int32(len(ts.arena))
	ts.arena = append(ts.arena, ev.Frame...)
	ts.recs = append(ts.recs, tapRec{
		at: ev.At, owner: owner, oseq: oseq,
		kind: ev.Kind, from: ev.From, to: ev.To, frameID: ev.FrameID,
		off: off, ln: int32(len(ev.Frame)),
	})
}

// flushTaps drains every buffered tap observation (end of a run).
func (co *coordinator) flushTaps() { co.flushTapsBelow(maxKey) }

// tapBacklogged reports whether any shard's tap buffer has outgrown the
// backlog bounds and should flush ahead of the periodic schedule.
func (co *coordinator) tapBacklogged() bool {
	for s := range co.tap {
		if len(co.tap[s].recs) >= tapFlushRecs || len(co.tap[s].arena) >= tapFlushBytes {
			return true
		}
	}
	return false
}

// flushTapsBelow merges the per-shard tap buffers up to (strictly below)
// the watermark key and delivers them to the registered taps, keeping
// later records buffered. Within a shard the buffer is already key-sorted
// (events execute in key order); across shards a stable k-way merge on
// (at, owner, oseq) reconstructs exactly the emission order of the
// unsharded run. Keys never tie across buffers: only shard events are
// buffered (barrier and driver emissions deliver inline), and every shard
// event's owner is a distinct node or link direction.
//
// The watermark matters because windows are bounded per shard: one shard
// may already have executed — and buffered taps for — events keyed after
// another shard's next pending event. Flushing only below the minimum
// pending key everywhere keeps the delivered stream in global key order;
// the tails stay buffered until the lagging shards catch up. Flushes are
// amortized (every tapFlushWindows windows, before barriers, on backlog):
// the watermark argument is exactly why batching windows up changes
// nothing in the delivered order.
func (co *coordinator) flushTapsBelow(watermark evKey) {
	if len(co.net.taps) == 0 {
		for s := range co.tap {
			co.tap[s].recs = co.tap[s].recs[:0]
			co.tap[s].arena = co.tap[s].arena[:0]
		}
		return
	}
	idx := co.mergeIdx
	for s := range idx {
		idx[s] = 0
	}
	for {
		best := -1
		for s := range co.tap {
			if idx[s] >= len(co.tap[s].recs) {
				continue
			}
			if best == -1 || tapKeyLess(&co.tap[s].recs[idx[s]], &co.tap[best].recs[idx[best]]) {
				best = s
			}
		}
		if best == -1 {
			break
		}
		r := &co.tap[best].recs[idx[best]]
		if k := (evKey{r.at, r.owner, r.oseq}); !keyLess(k, watermark) {
			break
		}
		idx[best]++
		ev := TapEvent{
			At: r.at, Kind: r.kind, From: r.from, To: r.to,
			Frame: co.tap[best].arena[r.off : r.off+r.ln], FrameID: r.frameID,
		}
		for _, t := range co.net.taps {
			t(ev)
		}
	}
	for s := range co.tap {
		ts := &co.tap[s]
		n := copy(ts.recs, ts.recs[idx[s]:])
		ts.recs = ts.recs[:n]
		if n == 0 {
			// Frame bytes are only referenced through live records; the
			// arena resets (and its offsets restart) once all are flushed.
			ts.arena = ts.arena[:0]
		}
	}
}

// tapKeyLess orders buffered tap records by the emitting event's key.
func tapKeyLess(a, b *tapRec) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.owner != b.owner {
		return a.owner < b.owner
	}
	return a.oseq < b.oseq
}

// noteWorkerPanic records the first panic raised inside a shard worker.
func (co *coordinator) noteWorkerPanic(r any) {
	co.mu.Lock()
	if co.panicked == nil {
		co.panicked = r
	}
	co.mu.Unlock()
}

// takePanic reads the first worker panic, if any, with the happens-before
// edge the recording worker established through co.mu.
func (co *coordinator) takePanic() any {
	co.mu.Lock()
	p := co.panicked
	co.mu.Unlock()
	return p
}

// evKey is a full event ordering key: the coordinator compares them
// lexicographically to decide barriers and per-shard window bounds.
type evKey struct {
	at          time.Duration
	owner, oseq uint64
}

// keyLess orders two keys the way the event heap does.
func keyLess(a, b evKey) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.owner != b.owner {
		return a.owner < b.owner
	}
	return a.oseq < b.oseq
}

// maxKey sorts after every real event key.
var maxKey = evKey{at: time.Duration(math.MaxInt64), owner: math.MaxUint64, oseq: math.MaxUint64}

// engineNextKey reads an engine's earliest pending key as an evKey.
func engineNextKey(e *sim.Engine) evKey {
	if at, owner, oseq, ok := e.NextKey(); ok {
		return evKey{at, owner, oseq}
	}
	return maxKey
}

// startWorkers spawns the persistent shard workers for one run. The epoch
// baseline is captured under the barrier mutex before any spawn so a
// worker scheduled late can never mistake the first dispatch for one it
// already ran.
func (co *coordinator) startWorkers() {
	g := &co.wg
	g.mu.Lock()
	base := g.epoch
	g.running = len(co.shards)
	g.mu.Unlock()
	for s := range co.shards {
		go co.worker(s, base)
	}
}

// stopWorkers tears the persistent workers down at the end of a run and
// waits for the last one to exit, so no parked goroutine outlives the
// run (a parked pool would pin the Network — blocked goroutines never
// collect).
func (co *coordinator) stopWorkers() {
	g := &co.wg
	g.mu.Lock()
	g.stop = true
	g.wake.Broadcast()
	for g.running > 0 {
		g.done.Wait()
	}
	g.stop = false
	g.mu.Unlock()
}

// dispatchWindow runs one epoch of the barrier: wake every worker, wait
// for the countdown. Bounds and the fill swap were published before the
// epoch bump; the mutex carries them to the workers.
func (co *coordinator) dispatchWindow() {
	g := &co.wg
	g.mu.Lock()
	g.remaining = len(co.shards)
	co.wakeStamp = time.Now() //fabriclint:wallclock wake-latency stats only; never read by event scheduling
	g.epoch++
	g.wake.Broadcast()
	for g.remaining > 0 {
		g.done.Wait()
	}
	g.mu.Unlock()
}

// worker is one shard's persistent loop: park on the barrier, run the
// published window, arrive, repeat until stopped.
func (co *coordinator) worker(s int, seen uint64) {
	g := &co.wg
	g.mu.Lock()
	for {
		for g.epoch == seen && !g.stop {
			g.wake.Wait()
		}
		if g.stop {
			g.running--
			if g.running == 0 {
				g.done.Signal()
			}
			g.mu.Unlock()
			return
		}
		seen = g.epoch
		bound := co.bounds[s]
		stamp := co.wakeStamp
		g.mu.Unlock()

		co.runShardWindow(s, bound, stamp)

		g.mu.Lock()
		g.remaining--
		if g.remaining == 0 {
			g.done.Signal()
		}
	}
}

// runShardWindow is one worker's window body: drain the shard's inbox
// column from the previous window, run the engine up to the bound, cache
// the next pending key for the coordinator. Panics are recorded and
// re-raised on the coordinator goroutine after the window.
func (co *coordinator) runShardWindow(s int, bound evKey, stamp time.Time) {
	defer func() {
		if r := recover(); r != nil {
			co.noteWorkerPanic(r)
		}
	}()
	w := &co.wstats[s]
	w.wakes++
	w.wakeNS += int64(time.Since(stamp))
	w.exchanged += co.drainInbox(co.fill^1, s)
	e := co.shards[s]
	e.RunWindowKey(bound.at, bound.owner, bound.oseq)
	co.next[s] = engineNextKey(e)
}

// run is the coordinator's main loop: alternate parallel lookahead windows
// with root-event barriers until the horizon (bounded) or quiescence.
// When bounded, events at exactly `until` run too and every clock ends at
// `until`, mirroring Engine.RunUntil.
//
// Barriers are key-exact: a control-engine event may carry an entity's
// identity (owner > 0, from ScheduleScoped's cross-shard case), and shard
// events at the same timestamp with smaller keys run inside the preceding
// window, so the global execution order is the single-engine key order
// whatever the event's venue. Windows are bounded per shard pair: shard s
// may run to min over senders t of (t's earliest pending key + la[t][s])
// — one short boundary link only throttles its own two shards. "Pending"
// folds the engines' cached next keys with the minima of the undrained
// outboxes, so the coordinator never has to serialize an exchange to
// reason about what is coming.
func (co *coordinator) run(until time.Duration, bounded bool) {
	defer co.flushTaps()
	root := co.net.Engine
	k := len(co.shards)

	// Workers persist for the duration of this run, spawned lazily at the
	// first parallel window so barrier-only calls (driver code slicing
	// time in small steps) pay no goroutine churn.
	started := false
	defer func() {
		if started {
			co.stopWorkers()
		}
	}()

	startProcessed := co.net.Processed()
	limit := root.EventLimit()
	tracing := len(co.net.taps) > 0
	flushIn := tapFlushWindows
	co.nextValid = false
	for {
		// Runaway-loop backstop, checked every iteration so both code
		// paths — parallel windows and root-event barriers — are covered;
		// a self-rescheduling driver event must panic here exactly like
		// it would under Engine.Run at shards=1.
		if co.net.Processed()-startProcessed > limit {
			panic(fmt.Sprintf("netsim: event limit %d exceeded across shards — probable forwarding loop", limit))
		}

		rootKey := maxKey
		rootAt, rootOwner, rootSeq, rootOK := root.NextKey()
		if rootOK {
			rootKey = evKey{rootAt, rootOwner, rootSeq}
		}

		// Per-shard pending minima: the workers cached each engine's next
		// key at the end of the last window; anything scheduled outside a
		// window (barriers, driver code before the run) invalidates the
		// cache and is recomputed here, serially, once.
		if !co.nextValid {
			for s, e := range co.shards {
				co.next[s] = engineNextKey(e)
			}
			co.nextValid = true
		}
		pend := co.pend
		copy(pend, co.next)
		for from := 0; from < k; from++ {
			mins := co.outMin[co.fill][from]
			for to := 0; to < k; to++ {
				if keyLess(mins[to], pend[to]) {
					pend[to] = mins[to]
				}
			}
		}
		minShard := maxKey
		for s := 0; s < k; s++ {
			if keyLess(pend[s], minShard) {
				minShard = pend[s]
			}
		}
		shardOK := minShard != maxKey

		// Everything keyed below both the pending barrier and every
		// shard's pending minimum is final: no later execution, injection
		// or inline barrier emission can carry a smaller key (arrivals
		// land strictly after their sender's pending events), so the
		// buffered taps below that watermark may flush, in global key
		// order. Flushing is amortized; a barrier forces it because the
		// barrier's own inline emissions must come after the buffers.
		barrierNext := rootOK && keyLess(rootKey, minShard)
		if tracing && (barrierNext || flushIn <= 0 || co.tapBacklogged()) {
			watermark := minShard
			if keyLess(rootKey, watermark) {
				watermark = rootKey
			}
			co.flushTapsBelow(watermark)
			flushIn = tapFlushWindows
		}

		if !rootOK && !shardOK {
			// Quiescent: pending minima cover the outboxes, so they are
			// empty too.
			if bounded {
				co.setAllNow(until)
			} else {
				co.levelClocks()
			}
			return
		}
		earliest := minShard.at
		if rootOK && rootKey.at < earliest {
			earliest = rootKey.at
		}
		if bounded && earliest > until {
			co.drainOutboxes()
			co.setAllNow(until)
			return
		}

		if barrierNext {
			// Barrier: no shard event keyed before the root event is
			// pending anywhere, so line every clock up on its timestamp
			// and run it alone. Root events at one instant run in key
			// order; anything they schedule re-enters the loop. Taps the
			// barrier emits deliver inline (emit), in program order,
			// after everything already flushed.
			co.setAllNow(rootKey.at)
			co.barriers++
			root.Step()
			// The barrier may have scheduled onto shard engines
			// (ScheduleScoped, port flaps): recompute the cached keys.
			co.nextValid = false
			continue
		}

		// Parallel window: shard s may run everything keyed strictly below
		// its own bound. Any future arrival into s traces back to an event
		// currently pending in some shard t — in its heap or still in an
		// outbox (exchanges happen at window start, so an idle shard
		// cannot wake up and send mid-window) — and crosses boundary paths
		// costing at least la[t][s], the closed matrix, t = s included via
		// its cheapest round trip. The pending root event, if any, caps
		// every shard key-exactly.
		if !started {
			co.startWorkers()
			started = true
		}
		for s := 0; s < k; s++ {
			b := rootKey // maxKey when no root event is pending
			if bounded {
				// Inclusive of events at exactly `until`.
				if lim := (evKey{at: until + 1}); keyLess(lim, b) {
					b = lim
				}
			}
			for _, e := range co.laIn[s] {
				if p := pend[e.from]; p != maxKey {
					if lim := (evKey{at: p.at + e.d}); keyLess(lim, b) {
						b = lim
					}
				}
			}
			co.bounds[s] = b
		}
		co.fill ^= 1 // workers drain what senders filled last window
		co.windows++
		flushIn--
		co.inWindow = true
		co.dispatchWindow()
		co.inWindow = false
		if p := co.takePanic(); p != nil {
			panic(p)
		}
	}
}

// setAllNow lines the control engine and every shard up on t.
func (co *coordinator) setAllNow(t time.Duration) {
	co.net.Engine.SetNow(t)
	for _, e := range co.shards {
		e.SetNow(t)
	}
}

// levelClocks advances every engine to the maximum current time after an
// unbounded drain, so Now() is consistent across the fabric.
func (co *coordinator) levelClocks() {
	max := co.net.Engine.Now()
	for _, e := range co.shards {
		if n := e.Now(); n > max {
			max = n
		}
	}
	co.setAllNow(max)
}
