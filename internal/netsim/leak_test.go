// Pool-leak gate: every figure/table experiment must drain to zero
// outstanding pooled-frame references. The test lives with netsim (whose
// get/put instrumentation it gates) as an external test package so it can
// drive the experiment runners above it in the dependency graph.
package netsim_test

import (
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/netsim"
	"repro/internal/topo"
)

// TestExperimentsDrainToZeroFrameRefs hooks every network the experiment
// runners build, drains it to full quiescence once its measurements are
// done, and asserts the pooled-frame population returns to the baseline:
// any residue is a Retain without a matching Release somewhere on the
// dataplane (netsim ownership contract, DESIGN.md §3).
func TestExperimentsDrainToZeroFrameRefs(t *testing.T) {
	base := netsim.LiveFrames()
	nets := 0
	experiments.OnNetworkDone = func(n *topo.Built) {
		nets++
		if n.Opts.Protocol == topo.ARPPath {
			// ARP-Path fabrics drain to silence: every queued event runs
			// (flights, repair timers, retries) and then nothing may hold
			// a frame.
			n.Run()
		} else {
			// STP re-arms its hello timers forever, so those cells never
			// quiesce; they also never Retain a frame, so it suffices to
			// land whatever is in flight. Step until a frame-free instant
			// (flights last microseconds, hello bursts are seconds apart).
			for i := 0; i < 5000 && netsim.LiveFrames() != base; i++ {
				n.RunFor(200 * time.Microsecond)
			}
		}
		if live := netsim.LiveFrames(); live != base {
			t.Errorf("network %d (%s, %d bridges): %d frame(s) still referenced after drain",
				nets, n.Opts.Protocol, len(n.Bridges), live-base)
		}
	}
	defer func() { experiments.OnNetworkDone = nil }()

	t.Run("figure1", func(t *testing.T) { experiments.RunFigure1(1) })
	t.Run("figure2", func(t *testing.T) {
		cfg := experiments.DefaultFigure2Config()
		cfg.Pings = 3 // smoke depth: the full run is the experiments suite's job
		experiments.RunFigure2(cfg)
	})
	t.Run("figure3", func(t *testing.T) {
		cfg := experiments.DefaultFigure3Config()
		experiments.RunFigure3(cfg, topo.ARPPath)
	})
	t.Run("t1-properties", func(t *testing.T) { experiments.RunT1Properties(1, 3) })
	t.Run("t2-load", func(t *testing.T) { experiments.RunT2Load(1, topo.ARPPath) })
	t.Run("t3-proxy", func(t *testing.T) { experiments.RunT3Proxy(1, []int{6}) })
	t.Run("t4-repair", func(t *testing.T) { experiments.RunT4Repair(1) })
	t.Run("t5-lock-window", func(t *testing.T) {
		experiments.RunT5LockWindow(1, []time.Duration{5 * time.Millisecond, 200 * time.Millisecond})
	})
	t.Run("t6-table-size", func(t *testing.T) { experiments.RunT6TableSize(1, []int{8}) })
	t.Run("forward", func(t *testing.T) { experiments.RunForwardBench(1, 2000) })

	if nets == 0 {
		t.Fatal("no networks reported through OnNetworkDone")
	}
	t.Logf("drained %d experiment networks", nets)
}
